// Quickstart: a four-rank MPI program on a simulated SCI cluster —
// hello-world rank identification, a ring exchange, and an allreduce.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

func main() {
	// Four single-process nodes on one SCI network.
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "n0", Procs: 1}, {Name: "n1", Procs: 1},
			{Name: "n2", Procs: 1}, {Name: "n3", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"n0", "n1", "n2", "n3"}},
		},
	}

	sess, err := cluster.Build(topo)
	if err != nil {
		log.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		fmt.Printf("[t=%v] hello from rank %d of %d\n", sess.S.Now(), rank, comm.Size())

		// Ring: pass a counter once around, each rank incrementing it.
		n := comm.Size()
		right, left := (rank+1)%n, (rank-1+n)%n
		token := make([]byte, 8)
		if rank == 0 {
			copy(token, mpi.Int64Bytes([]int64{1}))
			if err := comm.Send(token, 1, mpi.Int64, right, 0); err != nil {
				return err
			}
			if _, err := comm.Recv(token, 1, mpi.Int64, left, 0); err != nil {
				return err
			}
			fmt.Printf("[t=%v] ring complete: token=%d (expected %d)\n",
				sess.S.Now(), mpi.BytesInt64(token)[0], n)
		} else {
			if _, err := comm.Recv(token, 1, mpi.Int64, left, 0); err != nil {
				return err
			}
			v := mpi.BytesInt64(token)[0] + 1
			if err := comm.Send(mpi.Int64Bytes([]int64{v}), 1, mpi.Int64, right, 0); err != nil {
				return err
			}
		}

		// Allreduce: global sum of (rank+1)^2.
		mine := mpi.Int64Bytes([]int64{int64((rank + 1) * (rank + 1))})
		sum := make([]byte, 8)
		if err := comm.Allreduce(mine, sum, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if rank == 0 {
			fmt.Printf("[t=%v] allreduce: sum of squares 1..%d = %d\n",
				sess.S.Now(), n, mpi.BytesInt64(sum)[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at virtual time %v\n", sess.S.Now())
}
