// Heterocluster: the paper's motivating scenario (§1) — a cluster of
// clusters. An SCI island and a Myrinet island are joined by a
// Fast-Ethernet backbone; a single MPI session spans all six ranks, and
// every pair communicates over the best network available to it
// simultaneously (the paper's headline capability). The per-link device
// mux classifies each pair's link — the two ranks sharing node sci0
// ride the smp shared-memory class, island pairs their SAN class,
// cross-island pairs the wan class — and each link runs its own
// eager/rendez-vous switch point. The example prints rank 0's link map
// (class and effective switch point per peer) and the measured pairwise
// latency matrix, which makes the multi-protocol routing visible:
// ~30 us inside the SCI and Myrinet islands (the idle TCP backbone
// poller adds its Fig. 9 overhead on every node), ~150 us across the
// backbone.
//
//	go run ./examples/heterocluster
package main

import (
	"fmt"
	"log"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

func main() {
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "sci0", Procs: 2}, {Name: "sci1", Procs: 1}, {Name: "sci2", Procs: 1},
			{Name: "myri0", Procs: 1}, {Name: "myri1", Procs: 1}, {Name: "myri2", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sci0", "sci1", "sci2"}},
			{Name: "myrinet", Protocol: "bip", Nodes: []string{"myri0", "myri1", "myri2"}},
			{Name: "ethernet", Protocol: "tcp",
				Nodes: []string{"sci0", "sci1", "sci2", "myri0", "myri1", "myri2"}},
		},
	}
	sess, err := cluster.Build(topo)
	if err != nil {
		log.Fatal(err)
	}

	// The session discovers the cluster-of-clusters structure from the
	// declarative topology; the two-level collectives dispatch on it.
	h := sess.Hierarchy()
	fmt.Printf("discovered hierarchy: %d clusters\n", h.NumClusters())
	for ci, ranks := range sess.Clusters() {
		link := h.Intra[ci]
		fmt.Printf("  cluster %d %-9s (%6.1f MB/s, %5.1f us) ranks %v leader %d\n",
			ci, link.Net, link.BandwidthMBs, link.LatencyUS, ranks, ranks[0])
	}
	fmt.Printf("  backbone  %-9s (%6.1f MB/s, %5.1f us) pipeline segment %d B\n",
		h.Inter.Net, h.Inter.BandwidthMBs, h.Inter.LatencyUS, h.Inter.SegmentBytes)
	fmt.Println("rank 0 link map (device class and channel carrying traffic to each peer):")
	for dst := 1; dst < len(sess.Ranks); dst++ {
		class := sess.LinkClassOf(0, dst)
		if name, params, ok := sess.Ranks[0].ChMad.RouteNet(dst); ok {
			fmt.Printf("  -> rank %d (%-6s) class %-4s via %s/%s, switch point %d B\n",
				dst, sess.RankNode(dst), class, name, params.Protocol,
				sess.Ranks[0].ChMad.SwitchPointTo(dst))
		} else {
			fmt.Printf("  -> rank %d (%-6s) class %-4s (off the ch_mad device)\n",
				dst, sess.RankNode(dst), class)
		}
	}
	fmt.Println()

	n := len(sess.Ranks)
	latency := make([][]float64, n)
	for i := range latency {
		latency[i] = make([]float64, n)
	}

	const iters = 3
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, 4)
		// Deterministic pairwise schedule: for each ordered pair (i, j),
		// i drives a ping-pong while j echoes; everyone else waits at
		// the next barrier.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if rank == i {
					start := sess.S.Now()
					for k := 0; k < iters; k++ {
						if err := comm.Send(buf, 4, mpi.Byte, j, 0); err != nil {
							return err
						}
						if _, err := comm.Recv(buf, 4, mpi.Byte, j, 0); err != nil {
							return err
						}
					}
					latency[i][j] = sess.S.Now().Sub(start).Micros() / (2 * iters)
				}
				if rank == j {
					for k := 0; k < iters; k++ {
						if _, err := comm.Recv(buf, 4, mpi.Byte, i, 0); err != nil {
							return err
						}
						if err := comm.Send(buf, 4, mpi.Byte, i, 0); err != nil {
							return err
						}
					}
				}
				if err := comm.Barrier(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pairwise 4-byte one-way latency (us) — multi-protocol routing at work:")
	fmt.Printf("%8s", "")
	for j := 0; j < n; j++ {
		fmt.Printf(" %8s", sess.Ranks[j].Node)
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%8s", sess.Ranks[i].Node)
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf(" %8s", "-")
			} else {
				fmt.Printf(" %8.1f", latency[i][j])
			}
		}
		fmt.Println()
	}
	fmt.Println()
	for name, net := range sess.Networks {
		fmt.Printf("network %-9s carried %6d packets, %9d bytes\n",
			name, net.Stats.Packets, net.Stats.Bytes)
	}
}
