// Stencil: a 1-D heat-diffusion solver with halo exchange — the classic
// workload the paper's clusters ran. The domain is decomposed across an
// SCI island and a Myrinet island joined by Fast-Ethernet; halo exchanges
// inside an island ride the fast network, the one exchange that crosses
// the island boundary rides the backbone, all in one MPI session.
//
// The example verifies the parallel result against a serial solver and
// reports where the virtual time went.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

const (
	globalCells = 4096
	steps       = 50
	alpha       = 0.25
)

func main() {
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "sci0", Procs: 1}, {Name: "sci1", Procs: 1},
			{Name: "myri0", Procs: 1}, {Name: "myri1", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sci0", "sci1"}},
			{Name: "myrinet", Protocol: "bip", Nodes: []string{"myri0", "myri1"}},
			{Name: "ethernet", Protocol: "tcp", Nodes: []string{"sci0", "sci1", "myri0", "myri1"}},
		},
	}
	sess, err := cluster.Build(topo)
	if err != nil {
		log.Fatal(err)
	}

	var parallelResult []float64
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		n := comm.Size()
		local := globalCells / n
		// Local domain with one ghost cell on each side.
		u := make([]float64, local+2)
		next := make([]float64, local+2)
		for i := 1; i <= local; i++ {
			u[i] = initial(rank*local + i - 1)
		}

		left, right := rank-1, rank+1
		ghost := make([]byte, 8)
		for step := 0; step < steps; step++ {
			// Halo exchange (boundary ranks keep fixed 0 boundaries).
			if left >= 0 {
				if _, err := comm.Sendrecv(
					mpi.Float64Bytes(u[1:2]), 1, mpi.Float64, left, 0,
					ghost, 1, mpi.Float64, left, 0); err != nil {
					return err
				}
				u[0] = mpi.BytesFloat64(ghost)[0]
			}
			if right < n {
				if _, err := comm.Sendrecv(
					mpi.Float64Bytes(u[local:local+1]), 1, mpi.Float64, right, 0,
					ghost, 1, mpi.Float64, right, 0); err != nil {
					return err
				}
				u[local+1] = mpi.BytesFloat64(ghost)[0]
			}
			for i := 1; i <= local; i++ {
				next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
			}
			u, next = next, u
		}

		// Gather the full field at rank 0 for verification.
		recv := make([]byte, 0)
		if rank == 0 {
			recv = make([]byte, 8*globalCells)
		}
		if err := comm.Gather(mpi.Float64Bytes(u[1:local+1]), recv, local, mpi.Float64, 0); err != nil {
			return err
		}
		if rank == 0 {
			parallelResult = mpi.BytesFloat64(recv)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	serial := serialSolve()
	var maxErr float64
	for i := range serial {
		if d := math.Abs(serial[i] - parallelResult[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("heat equation: %d cells, %d steps, 4 ranks over SCI+Myrinet+Ethernet\n", globalCells, steps)
	fmt.Printf("max |parallel - serial| = %.3e\n", maxErr)
	fmt.Printf("virtual time: %v\n", sess.S.Now())
	for name, net := range sess.Networks {
		fmt.Printf("  %-9s %6d packets %10d bytes\n", name, net.Stats.Packets, net.Stats.Bytes)
	}
	if maxErr > 1e-12 {
		log.Fatal("parallel result diverges from serial solver")
	}
	fmt.Println("verified: parallel result matches the serial solver bit-for-bit tolerance")

	overlapDemo(topo)
}

// overlapDemo shows the schedule-driven nonblocking collectives hiding a
// global residual reduction behind local compute: each iteration starts
// an Iallreduce of a 64 KB residual vector, runs the "update loop" (a
// chunked CPU charge, as the real update would be), and only then waits.
// The blocking variant pays reduction and compute back to back.
func overlapDemo(topo cluster.Topology) {
	const (
		resVec = 64 << 10 // residual vector bytes
		iters  = 5
		chunks = 256
	)
	run := func(nonblocking bool) vtime.Duration {
		sess, err := cluster.Build(topo)
		if err != nil {
			log.Fatal(err)
		}
		compute := 10 * vtime.Millisecond
		var elapsed vtime.Duration
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			local := make([]byte, resVec)
			global := make([]byte, resVec)
			proc := sess.Ranks[rank].Proc
			start := sess.S.Now()
			for i := 0; i < iters; i++ {
				if nonblocking {
					req, err := comm.Iallreduce(local, global, resVec, mpi.Byte, mpi.OpMax)
					if err != nil {
						return err
					}
					for k := 0; k < chunks; k++ {
						proc.Compute(compute / chunks)
					}
					if err := req.Wait(); err != nil {
						return err
					}
				} else {
					if err := comm.Allreduce(local, global, resVec, mpi.Byte, mpi.OpMax); err != nil {
						return err
					}
					for k := 0; k < chunks; k++ {
						proc.Compute(compute / chunks)
					}
				}
			}
			if rank == 0 {
				elapsed = sess.S.Now().Sub(start)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return elapsed
	}
	blocking := run(false)
	overlapped := run(true)
	fmt.Printf("\noverlap demo: %d iterations of 64KB residual Allreduce + 10ms update\n", iters)
	fmt.Printf("  blocking Allreduce then compute: %v\n", blocking)
	fmt.Printf("  Iallreduce overlapped:           %v (%.0f%% of the reduction hidden)\n",
		overlapped, 100*float64(blocking-overlapped)/float64(blocking-vtime.Duration(iters)*10*vtime.Millisecond))
}

func initial(i int) float64 {
	x := float64(i) / globalCells
	return math.Sin(math.Pi*x) + 0.5*math.Sin(3*math.Pi*x)
}

func serialSolve() []float64 {
	u := make([]float64, globalCells+2)
	next := make([]float64, globalCells+2)
	for i := 1; i <= globalCells; i++ {
		u[i] = initial(i - 1)
	}
	for step := 0; step < steps; step++ {
		for i := 1; i <= globalCells; i++ {
			next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
		}
		u, next = next, u
	}
	return u[1 : globalCells+1]
}
