// Collectives: MPI collective operations on a forwarding topology — the
// paper's §6 future-work scenario. Two islands (SCI, Myrinet) have NO
// shared backbone; they are joined only through a dual-homed gateway node,
// and ch_mad's store-and-forward extension relays traffic. On top of that
// topology the example runs communicator surgery (Split into islands) and
// the full collective suite, printing a small timing report.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

func main() {
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "sci0", Procs: 1}, {Name: "sci1", Procs: 1},
			{Name: "gw", Procs: 1},
			{Name: "myri0", Procs: 1}, {Name: "myri1", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sci0", "sci1", "gw"}},
			{Name: "myrinet", Protocol: "bip", Nodes: []string{"gw", "myri0", "myri1"}},
		},
		Forwarding: true,
	}
	sess, err := cluster.Build(topo)
	if err != nil {
		log.Fatal(err)
	}

	type timing struct {
		name string
		at   vtime.Duration
	}
	var report []timing
	mark := func(rank int, name string, start vtime.Time) {
		if rank == 0 {
			report = append(report, timing{name, sess.S.Now().Sub(start)})
		}
	}

	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		n := comm.Size()

		t0 := sess.S.Now()
		if err := comm.Barrier(); err != nil {
			return err
		}
		mark(rank, "Barrier (5 ranks, via gateway)", t0)

		// Bcast a 64 KB block from an SCI node to everyone, including
		// the Myrinet island (forwarded through gw).
		block := make([]byte, 64<<10)
		if rank == 0 {
			for i := range block {
				block[i] = byte(i)
			}
		}
		t0 = sess.S.Now()
		if err := comm.Bcast(block, len(block), mpi.Byte, 0); err != nil {
			return err
		}
		mark(rank, "Bcast 64KB", t0)
		for i := range block {
			if block[i] != byte(i) {
				return fmt.Errorf("rank %d: bcast corrupted at %d", rank, i)
			}
		}

		// Allreduce across the islands.
		t0 = sess.S.Now()
		sum := make([]byte, 8)
		if err := comm.Allreduce(mpi.Int64Bytes([]int64{int64(rank + 1)}), sum, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		mark(rank, "Allreduce int64", t0)
		if got := mpi.BytesInt64(sum)[0]; got != int64(n*(n+1)/2) {
			return fmt.Errorf("allreduce = %d", got)
		}

		// Split into islands: color by node prefix; the gateway joins
		// the SCI island.
		color := 0
		if rank >= 3 { // myri0, myri1
			color = 1
		}
		island, err := comm.Split(color, rank)
		if err != nil {
			return err
		}
		t0 = sess.S.Now()
		local := make([]byte, 8)
		if err := island.Allreduce(mpi.Int64Bytes([]int64{1}), local, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		mark(rank, "island Allreduce (SCI island only)", t0)
		if rank == 0 && mpi.BytesInt64(local)[0] != 3 {
			return fmt.Errorf("island size = %d", mpi.BytesInt64(local)[0])
		}

		// Alltoall across everything.
		out := make([]int64, n)
		for k := range out {
			out[k] = int64(rank*n + k)
		}
		in := make([]byte, 8*n)
		t0 = sess.S.Now()
		if err := comm.Alltoall(mpi.Int64Bytes(out), in, 1, mpi.Int64); err != nil {
			return err
		}
		mark(rank, "Alltoall int64", t0)
		vals := mpi.BytesInt64(in)
		for r := 0; r < n; r++ {
			if vals[r] != int64(r*n+rank) {
				return fmt.Errorf("alltoall[%d] = %d", r, vals[r])
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("collectives over a gateway-forwarded cluster of clusters (no shared backbone):")
	for _, t := range report {
		fmt.Printf("  %-38s %10.1f us\n", t.name, t.at.Micros())
	}
	gw := sess.Ranks[2]
	fmt.Printf("gateway %s forwarded %d messages\n", gw.Node, gw.ChMad.NForwarded)
	fmt.Printf("virtual time: %v\n", sess.S.Now())
}
