// Package chself implements the ch_self loop-back device: intra-process
// communication (a rank sending to itself), one of the three devices of
// the paper's Fig. 3 configuration. It is part of the SMP implementation
// of MPI-BIP that the paper reuses (§4.1).
package chself

import (
	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
)

// Device is the per-process loop-back device. A self-send is always
// "eager": the data moves with one charged memcpy through the matching
// queues of the process's own engine.
type Device struct {
	proc   *marcel.Proc
	eng    *adi.Engine
	params netsim.Params

	// NMessages counts loop-back messages for tests.
	NMessages uint64
}

// New creates the loop-back device with the standard intra-process cost
// model.
func New(p *marcel.Proc, eng *adi.Engine) *Device {
	return &Device{proc: p, eng: eng, params: netsim.Loopback()}
}

// Name implements adi.Device.
func (d *Device) Name() string { return "ch_self" }

// SwitchPoint implements adi.Device: a self-send has no remote side to
// rendez-vous with, so every message is eager.
func (d *Device) SwitchPoint() int { return d.params.SwitchPoint }

// Shutdown implements adi.Device (nothing to stop).
func (d *Device) Shutdown() {}

// Send implements adi.Device. The message is matched immediately against
// the process's own posted queue; unmatched data is stashed (one extra
// copy) exactly like a network device's unexpected path.
func (d *Device) Send(sr *adi.SendReq) {
	d.NMessages++
	env := sr.Env
	d.proc.Compute(d.params.SendOverhead)
	if r := d.eng.MatchPosted(env); r != nil {
		n, err := adi.CheckLen(r, env)
		d.proc.Compute(d.params.CopyTime(n))
		copy(r.Buf, sr.Data[:n])
		adi.FinishRecv(r, env, err)
		sr.Done.Fire()
		return
	}
	// Unexpected: snapshot now so the sender may reuse its buffer the
	// moment Send completes (MPI contract), deliver on match.
	stash := make([]byte, len(sr.Data))
	d.proc.Compute(d.params.CopyTime(len(sr.Data)))
	copy(stash, sr.Data)
	d.eng.AddUnexpected(env, func(r *adi.RecvReq) {
		n, err := adi.CheckLen(r, env)
		d.proc.Compute(d.params.CopyTime(n))
		copy(r.Buf, stash[:n])
		adi.FinishRecv(r, env, err)
		if sr.Sync {
			sr.Done.Fire()
		}
	})
	if !sr.Sync {
		sr.Done.Fire()
	}
	// Synchronous self-sends complete at match time (above). A
	// synchronous self-send with no posted receive and no later match
	// deadlocks — exactly MPI's semantics for MPI_Ssend to self.
}

var _ adi.Device = (*Device)(nil)
