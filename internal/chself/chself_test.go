package chself

import (
	"bytes"
	"errors"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/vtime"
)

func rig(t *testing.T) (*vtime.Scheduler, *marcel.Proc, *adi.Engine, *Device) {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(vtime.Second))
	p := marcel.NewProc(s, "n0")
	eng := adi.NewEngine(p, 0)
	return s, p, eng, New(p, eng)
}

func send(s *vtime.Scheduler, d *Device, tag int, data []byte) *adi.SendReq {
	sr := &adi.SendReq{
		Env:  adi.Envelope{Src: 0, Tag: tag, Context: 0, Len: len(data)},
		Dst:  0,
		Data: data,
		Done: vtime.NewEvent(s, "send"),
	}
	d.Send(sr)
	return sr
}

func TestSelfSendPosted(t *testing.T) {
	s, p, eng, d := rig(t)
	p.Spawn("main", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 1, Context: 0, Buf: make([]byte, 5),
			Done: vtime.NewEvent(s, "recv")}
		eng.PostRecv(rr)
		sr := send(s, d, 1, []byte("hello"))
		sr.Done.Wait()
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, []byte("hello")) {
			t.Error("payload corrupted")
		}
		if rr.Status.Source != 0 || rr.Status.Len != 5 {
			t.Errorf("status %+v", rr.Status)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d.NMessages != 1 {
		t.Fatalf("NMessages = %d", d.NMessages)
	}
}

func TestSelfSendUnexpectedAllowsBufferReuse(t *testing.T) {
	s, p, eng, d := rig(t)
	p.Spawn("main", func() {
		buf := []byte("first")
		sr := send(s, d, 2, buf)
		sr.Done.Wait()
		copy(buf, "XXXXX") // MPI contract: reusable after send completes
		rr := &adi.RecvReq{Src: 0, Tag: 2, Context: 0, Buf: make([]byte, 5),
			Done: vtime.NewEvent(s, "recv")}
		eng.PostRecv(rr)
		rr.Done.Wait()
		if string(rr.Buf) != "first" {
			t.Errorf("got %q, want first", rr.Buf)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfTruncation(t *testing.T) {
	s, p, eng, d := rig(t)
	p.Spawn("main", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 0, Context: 0, Buf: make([]byte, 2),
			Done: vtime.NewEvent(s, "recv")}
		eng.PostRecv(rr)
		send(s, d, 0, []byte("long")).Done.Wait()
		rr.Done.Wait()
		if !errors.Is(rr.Err, adi.ErrTruncate) {
			t.Errorf("err = %v", rr.Err)
		}
		if string(rr.Buf) != "lo" {
			t.Errorf("prefix = %q", rr.Buf)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfCostsCharged(t *testing.T) {
	s, p, eng, d := rig(t)
	p.Spawn("main", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 0, Context: 0, Buf: make([]byte, 1<<20),
			Done: vtime.NewEvent(s, "recv")}
		eng.PostRecv(rr)
		send(s, d, 0, make([]byte, 1<<20)).Done.Wait()
		rr.Done.Wait()
		// One memcpy of 1 MB at 350 MB/s ~ 2857 us.
		got := s.Now().Micros()
		if got < 2000 || got > 4000 {
			t.Errorf("1MB self-send took %.0fus, want ~2860us", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceIdentity(t *testing.T) {
	_, _, _, d := rig(t)
	if d.Name() != "ch_self" || d.SwitchPoint() <= 0 {
		t.Fatal("identity wrong")
	}
	d.Shutdown() // no-op
}
