// Package chp4 implements the ch_p4 baseline: MPICH's classic TCP device,
// built as the paper describes MPICH's portable path (§2.2.1) — the
// generic ADI short/eager/rendez-vous protocol engine running over the
// five-function channel interface, here bound to the simulated
// TCP/Fast-Ethernet transport.
//
// ch_p4's defining costs versus ch_mad (Fig. 6): every payload crosses a
// socket buffer on both sides (one extra copy each way, capping bandwidth
// near 10 MB/s), and the device adds its own per-message control overhead.
package chp4

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// p4Kind discriminates ch_p4's packets on the simulated socket stream.
// A named type so the delivery dispatch is provably exhaustive
// (madlint/pktswitch).
type p4Kind int

// Packet kinds on the simulated socket stream.
const (
	pktCtrl p4Kind = 1
	pktBulk p4Kind = 2
)

// CtlOverhead is ch_p4's per-control-message bookkeeping cost on each
// side (listener dispatch, queue locks), beyond the raw TCP stack cost.
// Calibrated so ch_p4's small-message latency sits slightly above
// ch_mad's, as in Fig. 6(a) beyond 256 bytes.
const CtlOverhead = 16 * vtime.Microsecond

// Transport is the per-process TCP channel-interface implementation.
type Transport struct {
	proc   *marcel.Proc
	ep     *netsim.Endpoint
	params netsim.Params

	rankOf map[string]int // node -> rank
	nodeOf map[int]string // rank -> node

	ctrl *vtime.Queue[ctrlMsg]
	bulk map[int]*vtime.Queue[[]byte]
}

type ctrlMsg struct {
	src int
	pkt []byte
}

// NewTransport attaches a process to the TCP network. ranks maps world
// rank to node name for every peer (including self).
func NewTransport(p *marcel.Proc, net *netsim.Network, ranks map[int]string) *Transport {
	t := &Transport{
		proc:   p,
		params: net.Params,
		rankOf: make(map[string]int),
		nodeOf: make(map[int]string),
		ctrl:   vtime.NewQueue[ctrlMsg](p.S, p.Name+".p4.ctrl"),
		bulk:   make(map[int]*vtime.Queue[[]byte]),
	}
	for r, node := range ranks {
		t.rankOf[node] = r
		t.nodeOf[r] = node
	}
	ep := net.Attach(p.Name)
	if ep.OnDeliver != nil {
		panic(fmt.Sprintf("chp4: node %s already attached to %s", p.Name, net.Name))
	}
	ep.OnDeliver = t.deliver
	t.ep = ep
	return t
}

func (t *Transport) deliver(pkt *netsim.Packet) {
	src, ok := t.rankOf[pkt.Src]
	if !ok {
		panic(fmt.Sprintf("chp4[%s]: packet from unknown node %q", t.proc.Name, pkt.Src))
	}
	switch p4Kind(pkt.Kind) {
	case pktCtrl:
		t.ctrl.Push(ctrlMsg{src: src, pkt: pkt.Header})
	case pktBulk:
		t.bulkFrom(src).Push(pkt.Body)
	default:
		// Same contextual format as ch_mad's dispatch panic: who, which
		// kind, from which rank/node — diagnosable at 1000 ranks.
		panic(fmt.Sprintf("chp4[%s]: unknown packet kind %d from rank %d (%s)",
			t.proc.Name, pkt.Kind, src, pkt.Src))
	}
}

func (t *Transport) bulkFrom(src int) *vtime.Queue[[]byte] {
	if q, ok := t.bulk[src]; ok {
		return q
	}
	q := vtime.NewQueue[[]byte](t.proc.S, fmt.Sprintf("%s.p4.bulk.%d", t.proc.Name, src))
	t.bulk[src] = q
	return q
}

// SendControl implements adi.ChannelDevice: control packets cross the
// socket with a kernel copy plus ch_p4's own bookkeeping.
func (t *Transport) SendControl(dst int, pkt []byte) {
	node, ok := t.nodeOf[dst]
	if !ok {
		panic(fmt.Sprintf("chp4: no node for rank %d", dst))
	}
	t.proc.Compute(CtlOverhead)
	t.proc.Compute(t.params.SendOverhead)
	t.proc.Compute(t.params.CopyTime(len(pkt))) // into the socket buffer
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	if err := t.ep.Send(&netsim.Packet{Dst: node, Kind: int(pktCtrl), Header: cp}); err != nil {
		panic(fmt.Sprintf("chp4[%s]: control to rank %d (%s): %v", t.proc.Name, dst, node, err))
	}
}

// SendBulk implements adi.ChannelDevice: bulk data also crosses the
// socket buffer — this is the copy ch_mad's rendez-vous avoids.
func (t *Transport) SendBulk(dst int, data []byte) {
	node := t.nodeOf[dst]
	t.proc.Compute(t.params.SendOverhead)
	t.proc.Compute(t.params.CopyTime(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	pkt := &netsim.Packet{Dst: node, Kind: int(pktBulk), Body: cp}
	if err := t.ep.Send(pkt); err != nil {
		panic(fmt.Sprintf("chp4[%s]: bulk to rank %d (%s): %v", t.proc.Name, dst, node, err))
	}
	// Blocking socket semantics: the call returns when the kernel has
	// consumed the buffer (injection complete).
	injected := pkt.ArriveAt.Add(-t.params.WireLatency)
	if injected > t.proc.S.Now() {
		t.proc.S.Sleep(injected.Sub(t.proc.S.Now()))
	}
}

// RecvControl implements adi.ChannelDevice: blocking select-style wait.
func (t *Transport) RecvControl() (int, []byte) {
	spec := marcel.PollSpec{IdleCost: t.params.PollCost, Interval: t.params.PollInterval}
	m := marcel.WaitPoll(t.proc, t.ctrl, spec)
	t.proc.Compute(CtlOverhead)
	t.proc.Compute(t.params.RecvOverhead)
	t.proc.Compute(t.params.CopyTime(len(m.pkt)))
	return m.src, m.pkt
}

// RecvBulk implements adi.ChannelDevice: drain the stream into dst with
// the receive-side socket copy.
func (t *Transport) RecvBulk(src int, dst []byte) {
	data := t.bulkFrom(src).Pop()
	if len(data) != len(dst) {
		panic(fmt.Sprintf("chp4[%s]: bulk from rank %d of %d bytes, expected %d",
			t.proc.Name, src, len(data), len(dst)))
	}
	t.proc.Compute(t.params.RecvOverhead)
	t.proc.Compute(t.params.CopyTime(len(dst)))
	copy(dst, data)
}

// CopyCost implements adi.ChannelDevice.
func (t *Transport) CopyCost(n int) vtime.Duration { return t.params.CopyTime(n) }

// Close implements adi.ChannelDevice.
func (t *Transport) Close() {}

// New builds the complete ch_p4 device (protocol engine + TCP transport)
// for one process. Per MPICH defaults, short messages ride in the control
// packet up to 1 KB and rendez-vous starts at the TCP switch point.
func New(p *marcel.Proc, eng *adi.Engine, net *netsim.Network, ranks map[int]string) *adi.ProtoDevice {
	tr := NewTransport(p, net, ranks)
	return adi.NewProtoDevice("ch_p4", eng, tr, adi.ProtoConfig{
		ShortLimit:    1 << 10,
		RndvThreshold: tr.params.SwitchPoint,
	})
}

var _ adi.ChannelDevice = (*Transport)(nil)
