package chp4

import (
	"bytes"
	"math"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

type rig struct {
	s     *vtime.Scheduler
	procs []*marcel.Proc
	engs  []*adi.Engine
	devs  []*adi.ProtoDevice
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(100 * vtime.Second))
	net := netsim.NewNetwork(s, "tcp", netsim.FastEthernetTCP())
	ranks := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ranks[i] = nodeName(i)
	}
	r := &rig{s: s}
	for i := 0; i < n; i++ {
		p := marcel.NewProc(s, nodeName(i))
		eng := adi.NewEngine(p, i)
		r.procs = append(r.procs, p)
		r.engs = append(r.engs, eng)
		r.devs = append(r.devs, New(p, eng, net, ranks))
	}
	return r
}

func nodeName(i int) string { return string(rune('a' + i)) }

func (r *rig) exchange(t *testing.T, size int) vtime.Duration {
	t.Helper()
	payload := bytes.Repeat([]byte{0xC3}, size)
	var done vtime.Time
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 1, Context: 0, Len: size},
			Dst: 1, Data: payload, Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Error(sr.Err)
		}
	})
	r.procs[1].Spawn("recv", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 1, Context: 0, Buf: make([]byte, size),
			Done: vtime.NewEvent(r.s, "recv")}
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, payload) {
			t.Error("payload corrupted")
		}
		done = r.s.Now()
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	return done.Sub(0)
}

func TestShortEagerRndvPaths(t *testing.T) {
	// Short (<=1K inline), eager (<=64K), rendez-vous (beyond).
	for _, size := range []int{0, 100, 1 << 10, 8 << 10, 64 << 10, 256 << 10} {
		r := newRig(t, 2)
		r.exchange(t, size)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// ch_p4's defining behaviour (Fig. 6b): the double socket copy caps
	// bandwidth near 10 MB/s even for huge rendez-vous messages.
	r := newRig(t, 2)
	oneWay := r.exchange(t, 8*netsim.MB)
	bw := float64(8*netsim.MB) / oneWay.Seconds() / netsim.MB
	if math.Abs(bw-10.0) > 0.5 {
		t.Fatalf("ch_p4 8MB bandwidth = %.2f MB/s, want ~10", bw)
	}
}

func TestSmallLatencyAboveRaw(t *testing.T) {
	// ch_p4 4-byte latency must sit above raw TCP (121 us) with its own
	// control overhead, in the ~150-170 us band of Fig. 6a.
	r := newRig(t, 2)
	lat := r.exchange(t, 4).Micros()
	if lat < 140 || lat > 180 {
		t.Fatalf("ch_p4 4B latency = %.1fus, want 140-180", lat)
	}
}

func TestThreeRanksCrossTraffic(t *testing.T) {
	r := newRig(t, 3)
	// Ranks 1 and 2 both send to 0; rank 0 receives by wildcard.
	for _, src := range []int{1, 2} {
		src := src
		r.procs[src].Spawn("send", func() {
			sr := &adi.SendReq{
				Env: adi.Envelope{Src: src, Tag: src, Context: 0, Len: 2000},
				Dst: 0, Data: bytes.Repeat([]byte{byte(src)}, 2000),
				Done: vtime.NewEvent(r.s, "send"),
			}
			r.devs[src].Send(sr)
			sr.Done.Wait()
		})
	}
	r.procs[0].Spawn("recv", func() {
		for i := 0; i < 2; i++ {
			rr := &adi.RecvReq{Src: adi.AnySource, Tag: adi.AnyTag, Context: 0,
				Buf: make([]byte, 2000), Done: vtime.NewEvent(r.s, "recv")}
			r.engs[0].PostRecv(rr)
			rr.Done.Wait()
			if rr.Buf[0] != byte(rr.Status.Source) {
				t.Errorf("message from %d carries %d", rr.Status.Source, rr.Buf[0])
			}
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	s := vtime.New()
	net := netsim.NewNetwork(s, "tcp", netsim.FastEthernetTCP())
	p := marcel.NewProc(s, "a")
	eng := adi.NewEngine(p, 0)
	New(p, eng, net, map[int]string{0: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("second attach should panic")
		}
	}()
	NewTransport(p, net, map[int]string{0: "a"})
}
