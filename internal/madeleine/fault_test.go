package madeleine

import (
	"strings"
	"testing"

	"mpichmad/internal/netsim"
)

// The paper's protocols assume reliable links (SISCI, BIP and TCP all
// guarantee delivery). These tests verify the failure-injection plumbing
// that lets us check that assumption is load-bearing: a dropped packet
// must surface as a diagnosable deadlock naming the stuck receiver, not
// as silent corruption.

func TestDroppedHeadIsDiagnosableDeadlock(t *testing.T) {
	p := newPair(t, netsim.SCISISCI())
	p.net.SetFaults(netsim.Faults{DropEvery: 1}) // drop everything
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		conn.PackInt(42, SendCheaper, ReceiveExpress)
		conn.EndPacking()
	})
	p.pb.Spawn("recv", func() {
		conn, err := p.chB.BeginUnpacking()
		if err == nil {
			conn.UnpackInt(SendCheaper, ReceiveExpress)
			conn.EndUnpacking()
			t.Error("received a message that was dropped on the wire")
		}
	})
	err := p.s.Run()
	if err == nil {
		t.Fatal("want deadlock from the lost message")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "recv") {
		t.Fatalf("deadlock report not diagnosable: %v", err)
	}
}

func TestDroppedBodyStallsOnlyTheUnpack(t *testing.T) {
	// Drop the second packet (the zero-copy body): the head arrives and
	// BeginUnpacking succeeds, but the body Unpack blocks forever.
	p := newPair(t, netsim.FastEthernetTCP())
	p.net.SetFaults(netsim.Faults{DropEvery: 2})
	big := make([]byte, 100000)
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		conn.PackInt(len(big), SendCheaper, ReceiveExpress)
		conn.Pack(big, SendCheaper, ReceiveCheaper) // own packet: dropped
		conn.EndPacking()
	})
	reachedBody := false
	p.pb.Spawn("recv", func() {
		conn, err := p.chB.BeginUnpacking()
		if err != nil {
			t.Error(err)
			return
		}
		if n, err := conn.UnpackInt(SendCheaper, ReceiveExpress); err != nil || n != len(big) {
			t.Errorf("express part should arrive intact: n=%d err=%v", n, err)
			return
		}
		reachedBody = true
		conn.Unpack(make([]byte, len(big)), SendCheaper, ReceiveCheaper) // stalls
		t.Error("body unpack returned despite the drop")
	})
	err := p.s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock, got %v", err)
	}
	if !reachedBody {
		t.Fatal("head packet should have been delivered (only every 2nd packet drops)")
	}
}

func TestJitterDoesNotBreakMessageIntegrity(t *testing.T) {
	// Heavy deterministic jitter reorders nothing (per-pair FIFO) and
	// messages still roundtrip bit-exactly.
	p := newPair(t, netsim.MyrinetBIP())
	p.net.SetFaults(netsim.Faults{JitterPct: 90, Seed: 99})
	const msgs = 20
	p.pa.Spawn("send", func() {
		for i := 0; i < msgs; i++ {
			conn, _ := p.chA.BeginPacking("b")
			conn.PackInt(i, SendCheaper, ReceiveExpress)
			conn.Pack(make([]byte, 5000), SendCheaper, ReceiveCheaper)
			conn.EndPacking()
		}
	})
	p.pb.Spawn("recv", func() {
		for i := 0; i < msgs; i++ {
			conn, err := p.chB.BeginUnpacking()
			if err != nil {
				t.Error(err)
				return
			}
			v, _ := conn.UnpackInt(SendCheaper, ReceiveExpress)
			if v != i {
				t.Errorf("message %d arrived as %d under jitter", i, v)
			}
			conn.Unpack(make([]byte, 5000), SendCheaper, ReceiveCheaper)
			conn.EndUnpacking()
		}
	})
	p.run(t)
}
