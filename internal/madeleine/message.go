package madeleine

import (
	"encoding/binary"
	"fmt"
)

// Block placement on the wire: either coalesced into the head packet's
// aggregation area, or shipped as a standalone body packet.
type blockPlacement uint8

const (
	placeAgg blockPlacement = iota
	placeBody
)

// blockDesc describes one packed block inside a message.
type blockDesc struct {
	place    blockPlacement
	sendMode SendMode
	recvMode RecvMode
	length   uint32
}

// Wire encoding of a message head:
//
//	u32 seq | u16 nblocks | nblocks x (u8 place | u8 sendMode | u8 recvMode | u32 len) | agg bytes
//
// Body packets carry their block's bytes verbatim and reference the block
// by index through Packet.Kind's payload (see pktBody).
const headFixed = 4 + 2
const perBlock = 1 + 1 + 1 + 4

// encodeHead serializes the descriptor table and aggregation area.
func encodeHead(seq uint32, blocks []blockDesc, agg []byte) []byte {
	buf := make([]byte, headFixed+perBlock*len(blocks)+len(agg))
	binary.LittleEndian.PutUint32(buf[0:], seq)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(blocks)))
	off := headFixed
	for _, b := range blocks {
		buf[off] = byte(b.place)
		buf[off+1] = byte(b.sendMode)
		buf[off+2] = byte(b.recvMode)
		binary.LittleEndian.PutUint32(buf[off+3:], b.length)
		off += perBlock
	}
	copy(buf[off:], agg)
	return buf
}

// decodeHead parses a head packet produced by encodeHead.
func decodeHead(buf []byte) (seq uint32, blocks []blockDesc, agg []byte, err error) {
	if len(buf) < headFixed {
		return 0, nil, nil, fmt.Errorf("madeleine: truncated head (%d bytes)", len(buf))
	}
	seq = binary.LittleEndian.Uint32(buf[0:])
	n := int(binary.LittleEndian.Uint16(buf[4:]))
	need := headFixed + perBlock*n
	if len(buf) < need {
		return 0, nil, nil, fmt.Errorf("madeleine: truncated descriptor table (%d blocks, %d bytes)", n, len(buf))
	}
	blocks = make([]blockDesc, n)
	off := headFixed
	aggLen := 0
	for i := range blocks {
		blocks[i] = blockDesc{
			place:    blockPlacement(buf[off]),
			sendMode: SendMode(buf[off+1]),
			recvMode: RecvMode(buf[off+2]),
			length:   binary.LittleEndian.Uint32(buf[off+3:]),
		}
		if blocks[i].place == placeAgg {
			aggLen += int(blocks[i].length)
		}
		off += perBlock
	}
	if len(buf) != need+aggLen {
		return 0, nil, nil, fmt.Errorf("madeleine: head size %d, want %d (+%d agg)", len(buf), need, aggLen)
	}
	return seq, blocks, buf[need:], nil
}

// outMessage is the sender-side state of a message under construction.
type outMessage struct {
	conn   *Connection
	seq    uint32
	blocks []blockDesc
	agg    []byte
	bodies [][]byte // snapshots of placeBody blocks, in block order
	packs  int
	total  int
}

// inMessage is the receiver-side state of a message being consumed.
type inMessage struct {
	conn    *Connection
	seq     uint32
	blocks  []blockDesc
	agg     []byte
	aggOff  int
	next    int // index of the next block to unpack
	unpacks int
}
