// Package madeleine reimplements the Madeleine II multi-protocol
// communication library (§3 of the paper): channels bound to one network
// protocol, reliable in-order point-to-point connections, and incremental
// message construction through pack/unpack primitives whose send/receive
// mode flags let the library choose the optimal transfer strategy for each
// data block on each network.
package madeleine

import "fmt"

// SendMode qualifies how the sender's buffer may be used (§3.2).
type SendMode int

const (
	// SendSafer requires the library to snapshot the data immediately;
	// the application may modify the buffer as soon as Pack returns.
	// This forces a copy on every network.
	SendSafer SendMode = iota
	// SendLater requires the buffer to stay untouched until EndPacking.
	SendLater
	// SendCheaper lets the library pick the cheapest strategy for the
	// underlying network (the common choice, and the one ch_mad uses
	// for both headers and bodies).
	SendCheaper
)

func (m SendMode) String() string {
	switch m {
	case SendSafer:
		return "send_SAFER"
	case SendLater:
		return "send_LATER"
	case SendCheaper:
		return "send_CHEAPER"
	}
	return fmt.Sprintf("SendMode(%d)", int(m))
}

// RecvMode qualifies when the receiver needs the data (§3.2).
type RecvMode int

const (
	// ReceiveExpress guarantees the data is available as soon as the
	// corresponding Unpack returns; used for control information that
	// later Unpacks depend on (e.g. a length field). Express data
	// travels with the message header.
	ReceiveExpress RecvMode = iota
	// ReceiveCheaper lets the library defer/optimize extraction; data
	// is only guaranteed after EndUnpacking. Large blocks travel
	// zero-copy where the network allows it.
	ReceiveCheaper
)

func (m RecvMode) String() string {
	switch m {
	case ReceiveExpress:
		return "receive_EXPRESS"
	case ReceiveCheaper:
		return "receive_CHEAPER"
	}
	return fmt.Sprintf("RecvMode(%d)", int(m))
}

// Errors returned by mis-sequenced pack/unpack operations. They surface
// protocol bugs in devices built on the library, so they are sentinel
// values tests can match on.
var (
	ErrNotPacking     = fmt.Errorf("madeleine: no message being packed on this connection")
	ErrAlreadyPacking = fmt.Errorf("madeleine: a message is already being packed on this connection")
	ErrNotUnpacking   = fmt.Errorf("madeleine: no message being unpacked on this connection")
	ErrBlockMismatch  = fmt.Errorf("madeleine: unpack does not match the packed block sequence")
	ErrShortMessage   = fmt.Errorf("madeleine: message has fewer blocks than unpacked")
	ErrChannelClosed  = fmt.Errorf("madeleine: channel closed")
)
