package madeleine

import (
	"fmt"

	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// wireKind discriminates Madeleine's packets on the simulated wire
// (netsim.Packet.Kind is device-defined; this names our values). A named
// type so the delivery dispatch is provably exhaustive (madlint/pktswitch).
type wireKind int

// Packet kinds on the simulated wire.
const (
	pktHead wireKind = 1 // descriptor table + aggregated express/small-cheaper data
	pktBody wireKind = 2 // one standalone block, shipped zero-copy
)

// Instance is the per-process Madeleine library state. One instance per
// simulated process (MPI rank).
type Instance struct {
	P        *marcel.Proc
	channels map[string]*Channel
}

// New creates a Madeleine instance for proc.
func New(p *marcel.Proc) *Instance {
	return &Instance{P: p, channels: make(map[string]*Channel)}
}

// Channel is a closed communication world bound to one network protocol
// and adapter (§3.1): "much like an MPI communicator". In-order delivery
// is guaranteed per point-to-point connection within the channel.
type Channel struct {
	Inst   *Instance
	Name   string
	Net    *netsim.Network
	Params netsim.Params

	ep       *netsim.Endpoint
	conns    map[string]*Connection
	incoming *vtime.Queue[*Connection] // connections with a pending head, FIFO by arrival
	closed   bool

	// Messages counts fully received messages (introspection/tests).
	Messages uint64
}

// Connection virtualizes a reliable in-order point-to-point link between
// two processes inside a channel (§3.1).
type Connection struct {
	Ch     *Channel
	Remote string

	heads  *vtime.Queue[*netsim.Packet]
	bodies *vtime.Queue[*netsim.Packet]

	// sendLock serializes concurrent senders (Isend temporary threads,
	// rendez-vous control threads) onto the single outgoing message
	// slot; FIFO, in virtual time.
	sendLock *vtime.Sem

	out    *outMessage
	in     *inMessage
	outSeq uint32
}

// NewChannel binds a channel to a network, attaching this process's
// endpoint. A process may open at most one channel per network (one
// channel maps to one protocol + adapter, per the paper's configuration).
func (inst *Instance) NewChannel(name string, net *netsim.Network) (*Channel, error) {
	if _, dup := inst.channels[name]; dup {
		return nil, fmt.Errorf("madeleine: channel %q already exists on %s", name, inst.P.Name)
	}
	ep := net.Attach(inst.P.Name)
	if ep.OnDeliver != nil {
		return nil, fmt.Errorf("madeleine: process %s already has a channel on network %q", inst.P.Name, net.Name)
	}
	ch := &Channel{
		Inst:     inst,
		Name:     name,
		Net:      net,
		Params:   net.Params,
		ep:       ep,
		conns:    make(map[string]*Connection),
		incoming: vtime.NewQueue[*Connection](inst.P.S, name+".incoming"),
	}
	ep.OnDeliver = ch.deliver
	inst.channels[name] = ch
	return ch, nil
}

// Channel returns a channel by name.
func (inst *Instance) Channel(name string) (*Channel, bool) {
	ch, ok := inst.channels[name]
	return ch, ok
}

// deliver runs in scheduler context at each packet arrival: route the
// packet to its connection and, for message heads, enqueue the connection
// for BeginUnpacking pickup.
func (ch *Channel) deliver(pkt *netsim.Packet) {
	conn := ch.connFor(pkt.Src)
	switch wireKind(pkt.Kind) {
	case pktHead:
		conn.heads.Push(pkt)
		ch.incoming.Push(conn)
	case pktBody:
		conn.bodies.Push(pkt)
	default:
		// Same contextual format as ch_mad's dispatch panic: who, on which
		// channel, which kind, from where — diagnosable at 1000 ranks.
		panic(fmt.Sprintf("madeleine[%s]: channel %q: unknown packet kind %d from %s",
			ch.Inst.P.Name, ch.Name, pkt.Kind, pkt.Src))
	}
}

func (ch *Channel) connFor(remote string) *Connection {
	if c, ok := ch.conns[remote]; ok {
		return c
	}
	c := &Connection{
		Ch:       ch,
		Remote:   remote,
		heads:    vtime.NewQueue[*netsim.Packet](ch.Inst.P.S, ch.Name+"->"+remote+".heads"),
		bodies:   vtime.NewQueue[*netsim.Packet](ch.Inst.P.S, ch.Name+"->"+remote+".bodies"),
		sendLock: vtime.NewSem(ch.Inst.P.S, ch.Name+"->"+remote+".send", 1),
	}
	ch.conns[remote] = c
	return c
}

// PollSpec returns the channel's Marcel polling discipline.
func (ch *Channel) PollSpec() marcel.PollSpec {
	return marcel.PollSpec{IdleCost: ch.Params.PollCost, Interval: ch.Params.PollInterval}
}

// Close marks the channel closed; subsequent BeginPacking fails.
func (ch *Channel) Close() { ch.closed = true }

// BeginPacking starts building a message toward remote (§3.2,
// mad_begin_packing). At most one outgoing message per connection is
// under construction at a time; concurrent senders queue FIFO on the
// connection's send lock until the current message's EndPacking.
func (ch *Channel) BeginPacking(remote string) (*Connection, error) {
	if ch.closed {
		return nil, ErrChannelClosed
	}
	if remote == ch.Inst.P.Name {
		return nil, fmt.Errorf("madeleine: self-connection on channel %q (use ch_self)", ch.Name)
	}
	conn := ch.connFor(remote)
	conn.sendLock.Acquire()
	if ch.closed { // may have closed while we queued
		conn.sendLock.Release()
		return nil, ErrChannelClosed
	}
	if conn.out != nil {
		conn.sendLock.Release()
		return nil, ErrAlreadyPacking
	}
	conn.outSeq++
	conn.out = &outMessage{conn: conn, seq: conn.outSeq}
	return conn, nil
}

// Pack appends one data block to the message under construction (§3.2,
// mad_pack). Express blocks and small cheaper blocks are coalesced into
// the head packet (a real copy, charged at the driver's copy bandwidth);
// large cheaper blocks become standalone zero-copy body packets.
//
// Every pack operation beyond the first charges the network's extra-pack
// cost (half here, half at the matching Unpack), reproducing the overhead
// decomposition of §5.2–§5.4.
func (c *Connection) Pack(data []byte, sm SendMode, rm RecvMode) error {
	m := c.out
	if m == nil {
		return ErrNotPacking
	}
	p := &c.Ch.Params
	proc := c.Ch.Inst.P

	m.packs++
	if m.packs > 1 {
		proc.Compute(vtime.Duration(p.ExtraPackCost) / 2)
	}
	m.total += len(data)

	aggregate := rm == ReceiveExpress || sm == SendSafer || len(data) <= p.AggLimit
	if aggregate {
		proc.Compute(p.CopyTime(len(data)))
		m.agg = append(m.agg, data...)
		m.blocks = append(m.blocks, blockDesc{place: placeAgg, sendMode: sm, recvMode: rm, length: uint32(len(data))})
		return nil
	}
	// Zero-copy injection: snapshot without a time charge (the NIC DMAs
	// straight from user memory; the snapshot only exists because the
	// simulator and the application share an address space).
	snap := make([]byte, len(data))
	copy(snap, data)
	m.bodies = append(m.bodies, snap)
	m.blocks = append(m.blocks, blockDesc{place: placeBody, sendMode: sm, recvMode: rm, length: uint32(len(data))})
	return nil
}

// EndPacking finalizes and transmits the message (§3.2, mad_end_packing).
// It blocks (in virtual time) until every packet has been injected on the
// wire, i.e. until the application may safely reuse SendLater/SendCheaper
// buffers — matching Madeleine's blocking primitives.
func (c *Connection) EndPacking() error {
	m := c.out
	if m == nil {
		return ErrNotPacking
	}
	c.out = nil
	p := &c.Ch.Params
	proc := c.Ch.Inst.P
	s := proc.S

	if p.LargeMsgLimit > 0 && m.total > p.LargeMsgLimit {
		proc.Compute(p.LargeMsgPenalty)
	}

	// Head packet: descriptor table + aggregated data.
	proc.Compute(p.SendOverhead)
	head := &netsim.Packet{
		Dst:    c.Remote,
		Kind:   int(pktHead),
		Header: encodeHead(m.seq, m.blocks, m.agg),
	}
	if err := c.Ch.ep.Send(head); err != nil {
		c.sendLock.Release()
		return err
	}
	last := head.ArriveAt

	// Body packets, in block order, pipelined behind the head.
	for _, body := range m.bodies {
		proc.Compute(p.SendOverhead)
		pkt := &netsim.Packet{Dst: c.Remote, Kind: int(pktBody), Body: body}
		if err := c.Ch.ep.Send(pkt); err != nil {
			c.sendLock.Release()
			return err
		}
		last = pkt.ArriveAt
	}

	// Block until the wire has consumed our buffers: the last packet's
	// injection completes one wire latency before its arrival.
	injected := last.Add(-p.WireLatency)
	if injected > s.Now() {
		s.Sleep(injected.Sub(s.Now()))
	}
	c.sendLock.Release()
	return nil
}

// BeginUnpacking blocks until a message head is available on any
// connection of the channel and selects it (§3.2, mad_begin_unpacking).
// The wait follows the protocol's polling discipline (idle polls burn CPU
// on TCP-like networks).
func (ch *Channel) BeginUnpacking() (*Connection, error) {
	conn := marcel.WaitPoll(ch.Inst.P, ch.incoming, ch.PollSpec())
	return ch.startUnpack(conn)
}

// TryBeginUnpacking is the non-blocking variant; ok=false when no message
// is pending.
func (ch *Channel) TryBeginUnpacking() (*Connection, bool, error) {
	conn, ok := ch.incoming.TryPop()
	if !ok {
		return nil, false, nil
	}
	c, err := ch.startUnpack(conn)
	return c, true, err
}

func (ch *Channel) startUnpack(conn *Connection) (*Connection, error) {
	if conn.in != nil {
		return nil, fmt.Errorf("madeleine: connection %s already unpacking", conn.Remote)
	}
	pkt := conn.heads.Pop() // must be present: incoming was signalled
	ch.Inst.P.Compute(ch.Params.RecvOverhead)
	seq, blocks, agg, err := decodeHead(pkt.Header)
	if err != nil {
		return nil, err
	}
	conn.in = &inMessage{conn: conn, seq: seq, blocks: blocks, agg: agg}
	return conn, nil
}

// Unpack extracts the next block of the current incoming message into dst
// (§3.2, mad_unpack). The block sequence (length, placement, receive
// mode) must mirror the sender's Pack sequence; mismatches return
// ErrBlockMismatch.
func (c *Connection) Unpack(dst []byte, sm SendMode, rm RecvMode) error {
	m := c.in
	if m == nil {
		return ErrNotUnpacking
	}
	if m.next >= len(m.blocks) {
		return ErrShortMessage
	}
	p := &c.Ch.Params
	proc := c.Ch.Inst.P

	b := m.blocks[m.next]
	if int(b.length) != len(dst) || b.recvMode != rm {
		return fmt.Errorf("%w: block %d is %d bytes %v, unpacking %d bytes %v",
			ErrBlockMismatch, m.next, b.length, b.recvMode, len(dst), rm)
	}
	m.next++
	m.unpacks++
	if m.unpacks > 1 {
		proc.Compute(vtime.Duration(p.ExtraPackCost) / 2)
	}

	switch b.place {
	case placeAgg:
		// Copy out of the head packet's aggregation area.
		proc.Compute(p.CopyTime(len(dst)))
		copy(dst, m.agg[m.aggOff:m.aggOff+int(b.length)])
		m.aggOff += int(b.length)
	case placeBody:
		// The body packet follows the head in order on this
		// connection; it may still be in flight, so this can block.
		pkt := c.bodies.Pop()
		proc.Compute(p.RecvOverhead)
		if len(pkt.Body) != int(b.length) {
			return fmt.Errorf("madeleine: body packet is %d bytes, descriptor says %d", len(pkt.Body), b.length)
		}
		// Zero-copy landing: the NIC deposited the block directly at
		// the address the unpack designates, so no copy is charged.
		copy(dst, pkt.Body)
	}
	return nil
}

// UnpackInt is a convenience for the §3.2 example pattern: unpack a
// 4-byte little-endian length field with EXPRESS semantics.
func (c *Connection) UnpackInt(sm SendMode, rm RecvMode) (int, error) {
	var b [4]byte
	if err := c.Unpack(b[:], sm, rm); err != nil {
		return 0, err
	}
	return int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24), nil
}

// PackInt packs a 4-byte little-endian integer.
func (c *Connection) PackInt(v int, sm SendMode, rm RecvMode) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return c.Pack(b[:], sm, rm)
}

// EndUnpacking finishes consumption of the current message (§3.2,
// mad_end_unpacking). Every packed block must have been unpacked.
func (c *Connection) EndUnpacking() error {
	m := c.in
	if m == nil {
		return ErrNotUnpacking
	}
	if m.next != len(m.blocks) {
		return fmt.Errorf("%w: %d of %d blocks unpacked", ErrBlockMismatch, m.next, len(m.blocks))
	}
	c.in = nil
	c.Ch.Messages++
	return nil
}
