package madeleine

import (
	"testing"

	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// Wall-clock cost of a full Madeleine message round trip through the
// simulator (pack, wire, unpack), per payload size.
func benchRoundtrip(b *testing.B, size int) {
	s := vtime.New()
	net := netsim.NewNetwork(s, "sci", netsim.SCISISCI())
	pa, pb := marcel.NewProc(s, "a"), marcel.NewProc(s, "b")
	chA, err := New(pa).NewChannel("ch", net)
	if err != nil {
		b.Fatal(err)
	}
	chB, err := New(pb).NewChannel("ch", net)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, size)
	pa.Spawn("ping", func() {
		for i := 0; i < b.N; i++ {
			conn, _ := chA.BeginPacking("b")
			conn.Pack(buf, SendCheaper, ReceiveCheaper)
			conn.EndPacking()
			conn2, _ := chA.BeginUnpacking()
			conn2.Unpack(buf, SendCheaper, ReceiveCheaper)
			conn2.EndUnpacking()
		}
	})
	pb.Spawn("pong", func() {
		for i := 0; i < b.N; i++ {
			conn, _ := chB.BeginUnpacking()
			conn.Unpack(buf, SendCheaper, ReceiveCheaper)
			conn.EndUnpacking()
			conn2, _ := chB.BeginPacking("a")
			conn2.Pack(buf, SendCheaper, ReceiveCheaper)
			conn2.EndPacking()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * size))
}

func BenchmarkRoundtrip4B(b *testing.B)   { benchRoundtrip(b, 4) }
func BenchmarkRoundtrip4KB(b *testing.B)  { benchRoundtrip(b, 4<<10) }
func BenchmarkRoundtrip64KB(b *testing.B) { benchRoundtrip(b, 64<<10) }

func BenchmarkHeadEncodeDecode(b *testing.B) {
	blocks := []blockDesc{
		{place: placeAgg, recvMode: ReceiveExpress, length: 29},
		{place: placeBody, recvMode: ReceiveCheaper, length: 1 << 20},
	}
	agg := make([]byte, 29)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := encodeHead(uint32(i), blocks, agg)
		if _, _, _, err := decodeHead(buf); err != nil {
			b.Fatal(err)
		}
	}
}
