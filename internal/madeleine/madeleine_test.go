package madeleine

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// pair is a two-process test harness on one network.
type pair struct {
	s        *vtime.Scheduler
	net      *netsim.Network
	pa, pb   *marcel.Proc
	ia, ib   *Instance
	chA, chB *Channel
}

func newPair(t *testing.T, params netsim.Params) *pair {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(100 * vtime.Second))
	net := netsim.NewNetwork(s, params.Network, params)
	pa, pb := marcel.NewProc(s, "a"), marcel.NewProc(s, "b")
	ia, ib := New(pa), New(pb)
	chA, err := ia.NewChannel("ch", net)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := ib.NewChannel("ch", net)
	if err != nil {
		t.Fatal(err)
	}
	return &pair{s: s, net: net, pa: pa, pb: pb, ia: ia, ib: ib, chA: chA, chB: chB}
}

func (p *pair) run(t *testing.T) {
	t.Helper()
	if err := p.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExpressCheaperRoundtrip(t *testing.T) {
	// The §3.2 example: an EXPRESS length followed by a CHEAPER array
	// whose size the receiver only learns from the first unpack.
	p := newPair(t, netsim.SCISISCI())
	payload := make([]byte, 30000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.pa.Spawn("send", func() {
		conn, err := p.chA.BeginPacking("b")
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.PackInt(len(payload), SendCheaper, ReceiveExpress); err != nil {
			t.Error(err)
		}
		if err := conn.Pack(payload, SendCheaper, ReceiveCheaper); err != nil {
			t.Error(err)
		}
		if err := conn.EndPacking(); err != nil {
			t.Error(err)
		}
	})
	p.pb.Spawn("recv", func() {
		conn, err := p.chB.BeginUnpacking()
		if err != nil {
			t.Error(err)
			return
		}
		if conn.Remote != "a" {
			t.Errorf("message from %q, want a", conn.Remote)
		}
		size, err := conn.UnpackInt(SendCheaper, ReceiveExpress)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, size)
		if err := conn.Unpack(buf, SendCheaper, ReceiveCheaper); err != nil {
			t.Error(err)
			return
		}
		if err := conn.EndUnpacking(); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Error("payload corrupted in transit")
		}
	})
	p.run(t)
}

func TestSmallBlocksAggregateIntoOnePacket(t *testing.T) {
	p := newPair(t, netsim.FastEthernetTCP()) // AggLimit 1460
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		conn.Pack(make([]byte, 100), SendCheaper, ReceiveExpress)
		conn.Pack(make([]byte, 200), SendCheaper, ReceiveCheaper)
		conn.EndPacking()
	})
	p.pb.Spawn("recv", func() {
		conn, _ := p.chB.BeginUnpacking()
		conn.Unpack(make([]byte, 100), SendCheaper, ReceiveExpress)
		conn.Unpack(make([]byte, 200), SendCheaper, ReceiveCheaper)
		conn.EndUnpacking()
	})
	p.run(t)
	if p.net.Stats.Packets != 1 {
		t.Fatalf("sent %d packets, want 1 (full aggregation)", p.net.Stats.Packets)
	}
}

func TestLargeCheaperBlockGetsOwnPacket(t *testing.T) {
	p := newPair(t, netsim.FastEthernetTCP())
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		conn.Pack(make([]byte, 4), SendCheaper, ReceiveExpress)
		conn.Pack(make([]byte, 100000), SendCheaper, ReceiveCheaper)
		conn.EndPacking()
	})
	p.pb.Spawn("recv", func() {
		conn, _ := p.chB.BeginUnpacking()
		conn.Unpack(make([]byte, 4), SendCheaper, ReceiveExpress)
		conn.Unpack(make([]byte, 100000), SendCheaper, ReceiveCheaper)
		conn.EndUnpacking()
	})
	p.run(t)
	if p.net.Stats.Packets != 2 {
		t.Fatalf("sent %d packets, want 2 (head + zero-copy body)", p.net.Stats.Packets)
	}
}

func TestSendSaferForcesEagerCopyButStaysCorrect(t *testing.T) {
	// With SendSafer the application may scribble on the buffer right
	// after Pack; the receiver must still see the original bytes.
	p := newPair(t, netsim.SCISISCI())
	buf := []byte("precious-data")
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		if err := conn.Pack(buf, SendSafer, ReceiveCheaper); err != nil {
			t.Error(err)
		}
		copy(buf, "XXXXXXXXXXXXX") // legal under SendSafer
		conn.EndPacking()
	})
	p.pb.Spawn("recv", func() {
		conn, _ := p.chB.BeginUnpacking()
		got := make([]byte, len(buf))
		conn.Unpack(got, SendSafer, ReceiveCheaper)
		conn.EndUnpacking()
		if string(got) != "precious-data" {
			t.Errorf("got %q, want precious-data", got)
		}
	})
	p.run(t)
}

func TestCheaperBufferStableUntilEndPacking(t *testing.T) {
	// SendCheaper contract: buffer must stay untouched until EndPacking
	// returns; after that the application may reuse it freely without
	// corrupting the in-flight message.
	p := newPair(t, netsim.FastEthernetTCP())
	big := make([]byte, 50000)
	for i := range big {
		big[i] = 0xAB
	}
	p.pa.Spawn("send", func() {
		conn, _ := p.chA.BeginPacking("b")
		conn.Pack(big, SendCheaper, ReceiveCheaper)
		conn.EndPacking()
		for i := range big {
			big[i] = 0xCD // reuse after EndPacking
		}
	})
	p.pb.Spawn("recv", func() {
		conn, _ := p.chB.BeginUnpacking()
		got := make([]byte, len(big))
		conn.Unpack(got, SendCheaper, ReceiveCheaper)
		conn.EndUnpacking()
		for i := range got {
			if got[i] != 0xAB {
				t.Fatalf("byte %d = %#x, want 0xAB", i, got[i])
			}
		}
	})
	p.run(t)
}

func TestMessagesInOrderOnConnection(t *testing.T) {
	p := newPair(t, netsim.MyrinetBIP())
	const n = 10
	p.pa.Spawn("send", func() {
		for i := 0; i < n; i++ {
			conn, _ := p.chA.BeginPacking("b")
			conn.PackInt(i, SendCheaper, ReceiveExpress)
			conn.EndPacking()
		}
	})
	p.pb.Spawn("recv", func() {
		for i := 0; i < n; i++ {
			conn, _ := p.chB.BeginUnpacking()
			v, err := conn.UnpackInt(SendCheaper, ReceiveExpress)
			if err != nil {
				t.Error(err)
				return
			}
			if v != i {
				t.Errorf("message %d carried %d: out of order", i, v)
			}
			conn.EndUnpacking()
		}
	})
	p.run(t)
	if p.chB.Messages != n {
		t.Fatalf("Messages = %d, want %d", p.chB.Messages, n)
	}
}

func TestTwoSendersFIFOByArrival(t *testing.T) {
	s := vtime.New()
	s.SetDeadline(vtime.Time(vtime.Second))
	params := netsim.SCISISCI()
	net := netsim.NewNetwork(s, "sci", params)
	procs := []*marcel.Proc{marcel.NewProc(s, "a"), marcel.NewProc(s, "b"), marcel.NewProc(s, "c")}
	insts := []*Instance{New(procs[0]), New(procs[1]), New(procs[2])}
	chans := make([]*Channel, 3)
	for i, in := range insts {
		ch, err := in.NewChannel("ch", net)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	// b sends at t=0, c sends at t=50us; a must see b first.
	send := func(ch *Channel, delay vtime.Duration, tag int) func() {
		return func() {
			ch.Inst.P.Sleep(delay)
			conn, _ := ch.BeginPacking("a")
			conn.PackInt(tag, SendCheaper, ReceiveExpress)
			conn.EndPacking()
		}
	}
	procs[1].Spawn("send", send(chans[1], 0, 1))
	procs[2].Spawn("send", send(chans[2], 50*vtime.Microsecond, 2))
	var order []int
	procs[0].Spawn("recv", func() {
		for i := 0; i < 2; i++ {
			conn, err := chans[0].BeginUnpacking()
			if err != nil {
				t.Error(err)
				return
			}
			v, _ := conn.UnpackInt(SendCheaper, ReceiveExpress)
			order = append(order, v)
			conn.EndUnpacking()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestPackSequencingErrors(t *testing.T) {
	p := newPair(t, netsim.SCISISCI())
	p.pa.Spawn("main", func() {
		conn := p.chA.connFor("b")
		if err := conn.Pack([]byte{1}, SendCheaper, ReceiveCheaper); !errors.Is(err, ErrNotPacking) {
			t.Errorf("Pack before BeginPacking: %v", err)
		}
		if err := conn.EndPacking(); !errors.Is(err, ErrNotPacking) {
			t.Errorf("EndPacking before BeginPacking: %v", err)
		}
		if _, err := p.chA.BeginPacking("a"); err == nil {
			t.Error("self-connection should fail")
		}
		if _, err := p.chA.BeginPacking("b"); err != nil {
			t.Error(err)
		}
		if err := conn.Unpack(make([]byte, 1), SendCheaper, ReceiveCheaper); !errors.Is(err, ErrNotUnpacking) {
			t.Errorf("Unpack with no message: %v", err)
		}
		conn.Pack([]byte{1}, SendCheaper, ReceiveExpress)
		conn.EndPacking()
	})
	p.pb.Spawn("recv", func() {
		conn, _ := p.chB.BeginUnpacking()
		// Wrong size.
		if err := conn.Unpack(make([]byte, 2), SendCheaper, ReceiveExpress); !errors.Is(err, ErrBlockMismatch) {
			t.Errorf("size mismatch: %v", err)
		}
		// Wrong mode.
		if err := conn.Unpack(make([]byte, 1), SendCheaper, ReceiveCheaper); !errors.Is(err, ErrBlockMismatch) {
			t.Errorf("mode mismatch: %v", err)
		}
		// Premature end.
		if err := conn.EndUnpacking(); !errors.Is(err, ErrBlockMismatch) {
			t.Errorf("premature EndUnpacking: %v", err)
		}
		if err := conn.Unpack(make([]byte, 1), SendCheaper, ReceiveExpress); err != nil {
			t.Error(err)
		}
		if err := conn.EndUnpacking(); err != nil {
			t.Error(err)
		}
		// Unpacking past the end of a fresh message.
		if err := conn.Unpack(make([]byte, 1), SendCheaper, ReceiveExpress); !errors.Is(err, ErrNotUnpacking) {
			t.Errorf("unpack after end: %v", err)
		}
	})
	p.run(t)
}

func TestClosedChannel(t *testing.T) {
	p := newPair(t, netsim.SCISISCI())
	p.pa.Spawn("main", func() {
		p.chA.Close()
		if _, err := p.chA.BeginPacking("b"); !errors.Is(err, ErrChannelClosed) {
			t.Errorf("got %v, want ErrChannelClosed", err)
		}
	})
	p.run(t)
}

func TestOneChannelPerNetworkPerProcess(t *testing.T) {
	s := vtime.New()
	net := netsim.NewNetwork(s, "sci", netsim.SCISISCI())
	pa := marcel.NewProc(s, "a")
	ia := New(pa)
	if _, err := ia.NewChannel("c1", net); err != nil {
		t.Fatal(err)
	}
	if _, err := ia.NewChannel("c2", net); err == nil {
		t.Fatal("second channel on same network should fail")
	}
	if _, err := ia.NewChannel("c1", net); err == nil {
		t.Fatal("duplicate channel name should fail")
	}
	if _, ok := ia.Channel("c1"); !ok {
		t.Fatal("channel lookup failed")
	}
}

func TestHeadEncodingRoundtrip(t *testing.T) {
	blocks := []blockDesc{
		{place: placeAgg, sendMode: SendCheaper, recvMode: ReceiveExpress, length: 4},
		{place: placeBody, sendMode: SendLater, recvMode: ReceiveCheaper, length: 70000},
		{place: placeAgg, sendMode: SendSafer, recvMode: ReceiveCheaper, length: 3},
	}
	agg := []byte{1, 2, 3, 4, 5, 6, 7}
	buf := encodeHead(42, blocks, agg)
	seq, gotBlocks, gotAgg, err := decodeHead(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || len(gotBlocks) != 3 || !bytes.Equal(gotAgg, agg) {
		t.Fatalf("roundtrip mismatch: seq=%d blocks=%d", seq, len(gotBlocks))
	}
	for i := range blocks {
		if gotBlocks[i] != blocks[i] {
			t.Fatalf("block %d: got %+v, want %+v", i, gotBlocks[i], blocks[i])
		}
	}
}

func TestHeadDecodingRejectsCorruption(t *testing.T) {
	if _, _, _, err := decodeHead([]byte{1, 2}); err == nil {
		t.Error("truncated head accepted")
	}
	buf := encodeHead(1, []blockDesc{{place: placeAgg, length: 10}}, make([]byte, 10))
	if _, _, _, err := decodeHead(buf[:len(buf)-3]); err == nil {
		t.Error("truncated agg accepted")
	}
	if _, _, _, err := decodeHead(buf[:headFixed+2]); err == nil {
		t.Error("truncated descriptor table accepted")
	}
}

// pingPong measures one-way small-message latency (half round trip) at the
// raw Madeleine level, mirroring the paper's Table 1 methodology.
func pingPong(t *testing.T, params netsim.Params, size, iters int) (latency vtime.Duration) {
	t.Helper()
	p := newPair(t, params)
	var elapsed vtime.Duration
	p.pa.Spawn("ping", func() {
		buf := make([]byte, size)
		start := p.s.Now()
		for i := 0; i < iters; i++ {
			conn, _ := p.chA.BeginPacking("b")
			if size > 0 {
				conn.Pack(buf, SendCheaper, ReceiveCheaper)
			}
			conn.EndPacking()
			conn2, _ := p.chA.BeginUnpacking()
			if size > 0 {
				conn2.Unpack(buf, SendCheaper, ReceiveCheaper)
			}
			conn2.EndUnpacking()
		}
		elapsed = p.s.Now().Sub(start)
	})
	p.pb.Spawn("pong", func() {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			conn, _ := p.chB.BeginUnpacking()
			if size > 0 {
				conn.Unpack(buf, SendCheaper, ReceiveCheaper)
			}
			conn.EndUnpacking()
			conn2, _ := p.chB.BeginPacking("a")
			if size > 0 {
				conn2.Pack(buf, SendCheaper, ReceiveCheaper)
			}
			conn2.EndPacking()
		}
	})
	p.run(t)
	return elapsed / vtime.Duration(2*iters)
}

// TestTable1RawLatency checks the calibrated raw Madeleine latencies
// against the paper's Table 1 (TCP 121 us, SISCI 4.4 us, BIP 9.2 us).
func TestTable1RawLatency(t *testing.T) {
	cases := []struct {
		params netsim.Params
		want   float64 // us
		tolPct float64
	}{
		{netsim.FastEthernetTCP(), 121, 5},
		{netsim.SCISISCI(), 4.4, 12},
		{netsim.MyrinetBIP(), 9.2, 8},
	}
	for _, c := range cases {
		got := pingPong(t, c.params, 4, 4).Micros()
		if math.Abs(got-c.want)/c.want*100 > c.tolPct {
			t.Errorf("%s raw latency = %.2fus, want %.1fus ±%.0f%%", c.params.Network, got, c.want, c.tolPct)
		}
	}
}

// TestTable1RawBandwidth checks 8 MB bandwidth against Table 1
// (TCP 11.2 MB/s, SISCI 82.6 MB/s, BIP 122 MB/s).
func TestTable1RawBandwidth(t *testing.T) {
	cases := []struct {
		params netsim.Params
		want   float64 // MB/s
	}{
		{netsim.FastEthernetTCP(), 11.2},
		{netsim.SCISISCI(), 82.6},
		{netsim.MyrinetBIP(), 122},
	}
	for _, c := range cases {
		oneWay := pingPong(t, c.params, 8*netsim.MB, 1)
		got := float64(8*netsim.MB) / oneWay.Seconds() / netsim.MB
		if math.Abs(got-c.want)/c.want*100 > 3 {
			t.Errorf("%s raw bandwidth = %.1f MB/s, want %.1f ±3%%", c.params.Network, got, c.want)
		}
	}
}

// Property: any sequence of blocks with any modes roundtrips bit-exactly
// and consumes the whole message.
func TestPackUnpackProperty(t *testing.T) {
	f := func(lens []uint16, modes []uint8) bool {
		if len(lens) == 0 {
			return true
		}
		if len(lens) > 16 {
			lens = lens[:16]
		}
		p := newPair(t, netsim.MyrinetBIP())
		type blk struct {
			data []byte
			sm   SendMode
			rm   RecvMode
		}
		blks := make([]blk, len(lens))
		for i, l := range lens {
			d := make([]byte, int(l)%5000+1)
			for j := range d {
				d[j] = byte(i + j)
			}
			m := uint8(0)
			if len(modes) > 0 {
				m = modes[i%len(modes)]
			}
			blks[i] = blk{data: d, sm: SendMode(m % 3), rm: RecvMode(m / 3 % 2)}
		}
		ok := true
		p.pa.Spawn("send", func() {
			conn, err := p.chA.BeginPacking("b")
			if err != nil {
				ok = false
				return
			}
			for _, b := range blks {
				if err := conn.Pack(b.data, b.sm, b.rm); err != nil {
					ok = false
				}
			}
			if err := conn.EndPacking(); err != nil {
				ok = false
			}
		})
		p.pb.Spawn("recv", func() {
			conn, err := p.chB.BeginUnpacking()
			if err != nil {
				ok = false
				return
			}
			for _, b := range blks {
				got := make([]byte, len(b.data))
				if err := conn.Unpack(got, b.sm, b.rm); err != nil {
					ok = false
					return
				}
				if !bytes.Equal(got, b.data) {
					ok = false
				}
			}
			if err := conn.EndUnpacking(); err != nil {
				ok = false
			}
		})
		if err := p.s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (§5.2 mechanism): each extra pack operation adds the calibrated
// extra-pack cost to one-way latency, monotonically.
func TestExtraPackCostMonotone(t *testing.T) {
	params := netsim.SCISISCI()
	oneWay := func(nblocks int) vtime.Duration {
		p := newPair(t, params)
		var arrivedAt vtime.Time
		p.pa.Spawn("send", func() {
			conn, _ := p.chA.BeginPacking("b")
			for i := 0; i < nblocks; i++ {
				conn.Pack([]byte{1, 2, 3, 4}, SendCheaper, ReceiveExpress)
			}
			conn.EndPacking()
		})
		p.pb.Spawn("recv", func() {
			conn, _ := p.chB.BeginUnpacking()
			for i := 0; i < nblocks; i++ {
				conn.Unpack(make([]byte, 4), SendCheaper, ReceiveExpress)
			}
			conn.EndUnpacking()
			arrivedAt = p.s.Now()
		})
		p.run(t)
		return arrivedAt.Sub(0)
	}
	t1, t2, t3 := oneWay(1), oneWay(2), oneWay(3)
	d12 := (t2 - t1).Micros()
	d23 := (t3 - t2).Micros()
	want := params.ExtraPackCost.Micros()
	if math.Abs(d12-want) > 0.6 || math.Abs(d23-want) > 0.6 {
		t.Fatalf("per-extra-pack increments = %.2f, %.2f us; want ~%.1f", d12, d23, want)
	}
}
