package madeleine

import (
	"bytes"
	"testing"
)

// FuzzHeadCodec feeds arbitrary bytes to the message-head parser: a head
// that decodes must re-encode bit-identically (the descriptor table and
// aggregation area carry every wire bit), and malformed heads — truncated
// fixed part, descriptor tables longer than the buffer, aggregation
// length mismatches — must be rejected with an error, never a panic or an
// out-of-bounds read.
func FuzzHeadCodec(f *testing.F) {
	f.Add(encodeHead(7, []blockDesc{
		{place: placeAgg, sendMode: SendCheaper, recvMode: ReceiveCheaper, length: 5},
		{place: placeBody, sendMode: SendSafer, recvMode: ReceiveExpress, length: 1 << 20},
	}, []byte("hello")))
	f.Add(encodeHead(0, nil, nil))
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, blocks, agg, err := decodeHead(data)
		if err != nil {
			return
		}
		if re := encodeHead(seq, blocks, agg); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a bijection:\n in %x\nout %x", data, re)
		}
	})
}
