package experiments

import (
	"strings"
	"testing"
)

// TestExperimentsDeterministic pins the bit-identical-runs guarantee the
// madlint determinism rules exist to protect: every source of randomness
// in the simulator is either eliminated (virtual time, cooperative
// scheduling, sorted map iterations) or explicitly seeded (netsim's
// fault-jitter PRNG), so running the same experiment twice in one process
// must render byte-identical stats tables. A diff here means map order,
// wall-clock time or an unseeded generator leaked into simulation
// behavior — exactly the regressions `madlint` hunts statically.
// scaleDeterminismRun pins determinism of the scale experiment. Under the
// race detector a single 1024-rank run costs ~35 s, which pushes the whole
// package past go test's default 10-minute budget, so the race build
// exercises the same code paths — bloc routing, lazy rails and classes,
// capped backbone, leader election — on a quarter-size machine.
func scaleDeterminismRun() (*Result, error) {
	if raceDetectorOn {
		return scaleAt(16, 16)
	}
	return Scale()
}

func TestExperimentsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"gateway", GatewayCollectives},
		{"adaptive", AdaptiveMultipath},
		{"heteromux", HeteroMux},
		{"scale", scaleDeterminismRun},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first, err := tc.run()
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := tc.run()
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if first.Text == second.Text {
				return
			}
			a, b := strings.Split(first.Text, "\n"), strings.Split(second.Text, "\n")
			for i := 0; i < len(a) || i < len(b); i++ {
				var la, lb string
				if i < len(a) {
					la = a[i]
				}
				if i < len(b) {
					lb = b[i]
				}
				if la != lb {
					t.Errorf("line %d diverged:\n  run1: %s\n  run2: %s", i+1, la, lb)
				}
			}
			if !t.Failed() {
				t.Error("texts differ but no line diverged (trailing whitespace?)")
			}
		})
	}
}
