package experiments

import (
	"strings"
	"testing"

	"mpichmad/internal/cluster"
	"mpichmad/internal/trace"
)

// TestTracingLeavesOutputIdentical pins the tracer's observer contract:
// attaching the process-wide default tracer (the -trace flag path) must
// leave an experiment's rendered output byte-identical to an untraced
// run. Tracing only records — it never perturbs virtual time, scheduling
// order, or any measured quantity.
func TestTracingLeavesOutputIdentical(t *testing.T) {
	off, err := GatewayCollectives()
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	tr := trace.New(nil)
	cluster.SetDefaultTracer(tr)
	defer cluster.SetDefaultTracer(nil)
	on, err := GatewayCollectives()
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}

	if len(tr.Events()) == 0 {
		t.Fatal("default tracer attached but recorded nothing")
	}
	if off.Text == on.Text {
		return
	}
	a, b := strings.Split(off.Text, "\n"), strings.Split(on.Text, "\n")
	for i := 0; i < len(a) || i < len(b); i++ {
		var la, lb string
		if i < len(a) {
			la = a[i]
		}
		if i < len(b) {
			lb = b[i]
		}
		if la != lb {
			t.Errorf("line %d diverged with tracing on:\n  off: %s\n  on:  %s", i+1, la, lb)
		}
	}
}
