package experiments

// The multi-leader collectives experiment (id "multileader"): bandwidth
// aggregation across every gateway of the bridged triangle. Each island
// fronts two bridges, so leader-set election widens every cluster's
// leader into a two-member, gateway-diverse set and the 2level-multi
// algorithms shard the inter-cluster phase across both — where the
// single-leader two-level form funnels the whole payload through one
// gateway and leaves the other bridge idle.
//
//   - ML_Bcast_multi / ML_Alltoall_multi: the session autotunes at init
//     (Autotune: true) and the measured run dispatches through the
//     resulting table (CollAuto) — the multi-leader schedules must be
//     *selected*, not forced, for the large-payload brackets.
//   - ML_Bcast_single / ML_Alltoall_single: the same autotuned sessions
//     with the single-leader two-level form forced (CollHier), the
//     baseline the paper's §4.3 two-level collectives correspond to.
//
// The acceptance bar (cmd/benchcheck): multi >= 1.5x on time at 1 MiB
// for both operations.

import (
	"fmt"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// multiLeaderRun measures one collective's per-operation time on an
// autotuned bridged-triangle session with the given selection mode, plus
// each bridge network's wire bytes over the measured window — the
// crossing-split diagnostic.
func multiLeaderRun(mode mpi.CollMode, iters, size int,
	op func(comm *mpi.Comm, size int) error) (vtime.Duration, map[string]uint64, error) {
	topo := triangleTopo()
	topo.Autotune = true
	sess, err := cluster.Build(topo)
	if err != nil {
		return 0, nil, err
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	bridgeBytes := func() map[string]uint64 {
		out := make(map[string]uint64)
		for name, net := range sess.Networks {
			if net.Params.Protocol == "tcp" {
				out[name] = net.Stats.Bytes
			}
		}
		return out
	}
	var perOp vtime.Duration
	var before, after map[string]uint64
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			before = bridgeBytes()
		}
		start := sess.S.Now()
		for i := 0; i < iters; i++ {
			if err := op(comm, size); err != nil {
				return err
			}
		}
		if rank == 0 {
			perOp = sess.S.Now().Sub(start) / vtime.Duration(iters)
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			after = bridgeBytes()
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	crossed := make(map[string]uint64, len(after))
	for name, b := range after {
		crossed[name] = (b - before[name]) / uint64(iters)
	}
	return perOp, crossed, nil
}

// MultiLeader (X9) benchmarks the multi-leader collectives on the
// bridged triangle: autotuner-selected multi-leader Bcast and Alltoall
// against the forced single-leader two-level forms, with a per-bridge
// crossing table at the largest payload showing the inter-cluster phase
// engaging every gateway.
func MultiLeader() (*Result, error) {
	sizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20}
	bcast := func(comm *mpi.Comm, size int) error {
		buf := make([]byte, size)
		return comm.Bcast(buf, size, mpi.Byte, 0)
	}
	alltoall := func(comm *mpi.Comm, size int) error {
		block := size / comm.Size()
		if block < 1 {
			block = 1
		}
		send := make([]byte, block*comm.Size())
		recv := make([]byte, block*comm.Size())
		return comm.Alltoall(send, recv, block, mpi.Byte)
	}
	benches := []struct {
		name string
		mode mpi.CollMode
		op   func(comm *mpi.Comm, size int) error
	}{
		{"ML_Bcast_multi", mpi.CollAuto, bcast},
		{"ML_Bcast_single", mpi.CollHier, bcast},
		{"ML_Alltoall_multi", mpi.CollAuto, alltoall},
		{"ML_Alltoall_single", mpi.CollHier, alltoall},
	}
	const iters = 3
	var series []*stats.Series
	crossings := make(map[string]map[string]uint64)
	for _, bm := range benches {
		s := &stats.Series{Name: bm.name}
		for _, size := range sizes {
			perOp, crossed, err := multiLeaderRun(bm.mode, iters, size, bm.op)
			if err != nil {
				return nil, fmt.Errorf("%s/%d: %w", bm.name, size, err)
			}
			s.Add(size, perOp)
			if size == sizes[len(sizes)-1] {
				crossings[bm.name] = crossed
			}
		}
		series = append(series, s)
	}
	res := render("multileader",
		"Extension X9: multi-leader collectives on the bridged triangle (autotuned vs forced single-leader)",
		'a', series)

	// Per-bridge crossing table at the largest payload: the multi-leader
	// rows must spread bytes over all three bridges, the single-leader
	// rows concentrate them.
	bridges := []string{"gwAB", "gwBC", "gwCA"}
	var b strings.Builder
	b.WriteString(res.Text)
	fmt.Fprintf(&b, "\nBridge bytes per operation at %s:\n", stats.SizeLabel(sizes[len(sizes)-1]))
	fmt.Fprintf(&b, "%-22s %12s %12s %12s\n", "series", bridges[0], bridges[1], bridges[2])
	for _, bm := range benches {
		c := crossings[bm.name]
		fmt.Fprintf(&b, "%-22s %12d %12d %12d\n", bm.name, c[bridges[0]], c[bridges[1]], c[bridges[2]])
	}
	res.Text = b.String()
	return res, nil
}
