package experiments

// The per-link device-mux experiment (id "heteromux"): a heterogeneous
// cluster of clusters where every device class of the mux is exercised
// at once — each rank pair rides the transport its placement calls for:
//
//   - intra-process traffic stays on the chself class ("self"),
//   - intra-node pairs ride the smp_plug shared-memory class ("smp"),
//   - intra-island pairs ride their SAN (SCI or Myrinet/BIP, "san"),
//   - cross-island pairs cross the TCP backbone ("wan"),
//
// and each link runs the eager/rendez-vous switch point its own class
// measured at MPI_Init, not one globally elected compromise. The
// Uniform_* series rerun the identical collectives on the same hardware
// under the seed's single-protocol configuration (Topology.Uniform):
// intra-node pairs fall back to ch_mad over the fastest shared network,
// one global switch point is elected for every link (§4.2.2's unique-
// threshold constraint), and backbone pipeline segments are capped by
// that global election. The Mux_*/Uniform_* ratios are gated by
// cmd/benchcheck.

import (
	"fmt"
	"sort"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// heteroTopo is the heteromux benchmark topology: two dual-processor
// nodes on an SCI island, two more on a Myrinet/BIP island, all four on
// a shared Fast-Ethernet backbone. 8 ranks, four device classes.
// uniform selects the single-protocol ablation wiring.
func heteroTopo(uniform bool) cluster.Topology {
	return cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "sciN0", Procs: 2}, {Name: "sciN1", Procs: 2},
			{Name: "myriN0", Procs: 2}, {Name: "myriN1", Procs: 2},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sciN0", "sciN1"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"myriN0", "myriN1"}},
			{Name: "eth", Protocol: "tcp",
				Nodes: []string{"sciN0", "sciN1", "myriN0", "myriN1"}},
		},
		Uniform:  uniform,
		Autotune: true,
	}
}

// HeteroMux (X6, id "heteromux") benchmarks the per-link device mux
// against the uniform single-protocol transport on the mixed
// SCI+BIP+TCP cluster: the same collectives, the same placement, only
// the link wiring and tuning differ. The report appends rank 0's link
// classification (device class and effective switch point per peer) and
// the per-class thresholds the MPI_Init autotuner measured.
func HeteroMux() (*Result, error) {
	sizes := []int{8, 256, 4 << 10, 64 << 10, 256 << 10}
	type opSpec struct {
		name string
		op   func(comm *mpi.Comm, size int) error
	}
	ops := []opSpec{
		{"Bcast", func(comm *mpi.Comm, size int) error {
			buf := make([]byte, size)
			return comm.Bcast(buf, size, mpi.Byte, 0)
		}},
		{"Allreduce", func(comm *mpi.Comm, size int) error {
			buf := make([]byte, size)
			out := make([]byte, size)
			return comm.Allreduce(buf, out, size, mpi.Byte, mpi.OpMax)
		}},
		{"Alltoall", func(comm *mpi.Comm, size int) error {
			send := make([]byte, size*comm.Size())
			recv := make([]byte, size*comm.Size())
			return comm.Alltoall(send, recv, size, mpi.Byte)
		}},
	}

	// One shared cache per configuration shape: the MPI_Init sweep (and
	// the per-class switch-point probes) run once per shape, and every
	// per-size session after that reloads the measured table.
	cache := cluster.NewTuneCache()
	run := func(uniform bool, op func(*mpi.Comm, int) error, size int) (vtime.Duration, error) {
		topo := heteroTopo(uniform)
		topo.TuneCache = cache
		sess, err := cluster.Build(topo)
		if err != nil {
			return 0, err
		}
		var perOp vtime.Duration
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			const iters = 3
			start := sess.S.Now()
			for i := 0; i < iters; i++ {
				if err := op(comm, size); err != nil {
					return err
				}
			}
			if rank == 0 {
				perOp = sess.S.Now().Sub(start) / iters
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return perOp, nil
	}

	var series []*stats.Series
	for _, spec := range ops {
		mux := &stats.Series{Name: "Mux_" + spec.name}
		uni := &stats.Series{Name: "Uniform_" + spec.name}
		for _, size := range sizes {
			mt, err := run(false, spec.op, size)
			if err != nil {
				return nil, fmt.Errorf("mux %s %d: %w", spec.name, size, err)
			}
			ut, err := run(true, spec.op, size)
			if err != nil {
				return nil, fmt.Errorf("uniform %s %d: %w", spec.name, size, err)
			}
			mux.Add(size, mt)
			uni.Add(size, ut)
		}
		series = append(series, mux, uni)
	}

	res := render("heteromux",
		"Extension X6: per-link device mux vs uniform single-protocol transport (SCI+BIP islands over TCP)",
		'a', series)

	// Introspection session: rank 0's view of the mux — which device
	// class each peer's link resolved to and the switch point in effect
	// on it, plus the per-class thresholds from the autotuner (also
	// visible as the SwitchPoint rows of Process.TuneSnapshot).
	topo := heteroTopo(false)
	topo.TuneCache = cache
	sess, err := cluster.Build(topo)
	if err != nil {
		return nil, err
	}
	if err := sess.Run(func(rank int, comm *mpi.Comm) error { return nil }); err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(res.Text)
	b.WriteString("\nRank 0 link map (per-link device mux):\n")
	fmt.Fprintf(&b, "%-6s %-10s %-8s %14s\n", "peer", "node", "class", "switch point")
	for dst := 0; dst < len(sess.Ranks); dst++ {
		class := sess.LinkClassOf(0, dst)
		sp := "-"
		if class == "san" || class == "wan" {
			sp = stats.SizeLabel(sess.Ranks[0].ChMad.SwitchPointTo(dst))
		}
		fmt.Fprintf(&b, "%-6d %-10s %-8s %14s\n", dst, sess.RankNode(dst), class, sp)
	}
	b.WriteString("\nMeasured per-class eager thresholds (MPI_Init probes):\n")
	classes := sess.Ranks[0].MPI.ClassSwitchPoints()
	names := make([]string, 0, len(classes))
	for class := range classes {
		names = append(names, class)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-8s %14s\n", "class", "threshold")
	for _, class := range names {
		fmt.Fprintf(&b, "%-8s %14s\n", class, stats.SizeLabel(classes[class]))
	}
	fmt.Fprintf(&b, "\nMux speedup over the uniform single-protocol transport:\n")
	fmt.Fprintf(&b, "%-12s", "size")
	for _, spec := range ops {
		fmt.Fprintf(&b, " %12s", spec.name)
	}
	b.WriteString("\n")
	for _, size := range sizes {
		fmt.Fprintf(&b, "%-12s", stats.SizeLabel(size))
		for i := range ops {
			pm, _ := series[2*i].At(size)
			pu, _ := series[2*i+1].At(size)
			fmt.Fprintf(&b, " %11.2fx", pu.LatencyUS()/pm.LatencyUS())
		}
		b.WriteString("\n")
	}
	res.Text = b.String()
	return res, nil
}
