package experiments

// Shape tests of the X5-variant acceptance criteria: striping beats the
// single-path pipelined relay by >= 1.5x at 64 KiB, the adaptive plan
// routes around a loaded bridge (faster transfer AND a quieter hot
// gateway), and no gateway queue ever exceeds its configured bound.

import (
	"testing"
)

func TestAdaptiveMultipathShape(t *testing.T) {
	r, err := AdaptiveMultipath()
	if err != nil {
		t.Fatal(err)
	}
	stripe := byName(t, r.Series, "Relay_stripe")
	single := byName(t, r.Series, "Relay_single")
	for _, size := range []int{64 << 10, 256 << 10, 1 << 20} {
		s, p := get(t, stripe, size), get(t, single, size)
		ratio := float64(p.OneWay) / float64(s.OneWay)
		if ratio < 1.5 {
			t.Errorf("stripe speedup %.2fx at %d B, want >= 1.5x", ratio, size)
		}
	}
	// Below the pipeline-fill floor striping must at least not lose.
	if s, p := get(t, stripe, 16<<10), get(t, single, 16<<10); s.OneWay > p.OneWay {
		t.Errorf("striping slower than single-path at 16K: %v vs %v", s.OneWay, p.OneWay)
	}

	adapt := byName(t, r.Series, "Adapt_adaptive")
	static := byName(t, r.Series, "Adapt_static")
	adaptQ := byName(t, r.Series, "AdaptQ_adaptive")
	staticQ := byName(t, r.Series, "AdaptQ_static")
	for _, size := range []int{64 << 10, 256 << 10} {
		if a, s := get(t, adapt, size), get(t, static, size); a.OneWay >= s.OneWay {
			t.Errorf("adaptive transfer not faster at %d B: %v vs %v", size, a.OneWay, s.OneWay)
		}
		aq, sq := get(t, adaptQ, size), get(t, staticQ, size)
		if aq.OneWay >= sq.OneWay {
			t.Errorf("hot gateway queue did not drop at %d B: %v vs %v", size, aq.OneWay, sq.OneWay)
		}
	}

	// The bounded store-and-forward queue: the deepest gateway queue of
	// the stripe sessions never exceeds the configured window (the series
	// encodes one queue slot per microsecond).
	qmax := byName(t, r.Series, "RelayQPeakMax")
	for _, p := range qmax.Points {
		if p.LatencyUS() > adaptiveRelayWindow {
			t.Errorf("gateway queue peak %.0f at %d B exceeds the window of %d",
				p.LatencyUS(), p.Size, adaptiveRelayWindow)
		}
	}
}
