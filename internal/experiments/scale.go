package experiments

// The scale experiment (X8): the 1000+-rank machine the hierarchical
// routing overhaul exists for. 64 SCI islands of 16 ranks each — 1024
// ranks — chained over one aggregate-bandwidth-capped TCP backbone
// through per-cluster gateways, running Allreduce and Bcast through the
// two-level collectives. At this size the historical all-pairs planner
// state alone (1024² path walks at build, again per re-plan) dominated
// wall time; the bloc-quotient plan plus lazy rails/classes keep the
// session build linear-ish in ranks, which is what lets this experiment
// run in CI at all. Simulated times are deterministic and land in the
// rendered table; wall-clock cost is tracked separately by the scale
// benchmark series (BENCH_scale.json, gated by cmd/benchcheck).

import (
	"fmt"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
)

// The scale machine: 64 clusters × 16 ranks = 1024 ranks.
const (
	scaleClusters   = 64
	scaleRanksPer   = 16
	scaleBcastRoot  = 0
	scaleMaxPayload = 16 << 10
)

// ScaleTopo builds the nClusters×perCluster cluster-of-clusters: one
// sisci island per cluster, the first node of every island multi-homed
// onto a single capped TCP backbone trunk (NetworkBandwidth=Bandwidth:
// concurrent crossings share one trunk instead of private pipes), with
// forwarding on so the island-interior ranks reach other clusters through
// their gateway. Exported for the scale benchmark harness.
func ScaleTopo(nClusters, perCluster int) cluster.Topology {
	bb := netsim.FastEthernetTCP()
	bb.NetworkBandwidth = bb.Bandwidth
	topo := cluster.Topology{
		Forwarding: true,
		// Single-rail: at 1024 ranks the second-rail sweep would double the
		// planner's per-pair work for rails striping never exercises here.
		MaxPaths: 1,
	}
	gateways := make([]string, 0, nClusters)
	for c := 0; c < nClusters; c++ {
		nodes := make([]string, 0, perCluster)
		for n := 0; n < perCluster; n++ {
			name := fmt.Sprintf("c%02dn%02d", c, n)
			topo.Nodes = append(topo.Nodes, cluster.NodeSpec{Name: name, Procs: 1})
			nodes = append(nodes, name)
		}
		topo.Networks = append(topo.Networks, cluster.NetworkSpec{
			Name:     fmt.Sprintf("cl%03d", c),
			Protocol: "sisci",
			Nodes:    nodes,
		})
		gateways = append(gateways, nodes[0])
	}
	topo.Networks = append(topo.Networks, cluster.NetworkSpec{
		Name: "bb", Protocol: "tcp", Params: &bb, Nodes: gateways,
	})
	return topo
}

// Scale (X8) runs Allreduce and Bcast sweeps on the full 1024-rank
// machine and reports per-operation simulated time.
func Scale() (*Result, error) {
	return scaleAt(scaleClusters, scaleRanksPer)
}

// scaleAt is Scale at an arbitrary machine size (the benchmark harness
// sweeps smaller machines for the growth-ratio series).
func scaleAt(nClusters, perCluster int) (*Result, error) {
	topo := ScaleTopo(nClusters, perCluster)
	sess, err := cluster.Build(topo)
	if err != nil {
		return nil, err
	}
	size := nClusters * perCluster
	sizes := []int{64, 1 << 10, scaleMaxPayload}
	allreduce := &stats.Series{Name: "Allreduce"}
	bcast := &stats.Series{Name: "Bcast"}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		for _, n := range sizes {
			in, out := make([]byte, n), make([]byte, n)
			if err := comm.Barrier(); err != nil {
				return err
			}
			start := sess.S.Now()
			if err := comm.Allreduce(in, out, n/8, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			if rank == 0 {
				allreduce.Add(n, sess.S.Now().Sub(start))
			}
			if err := comm.Barrier(); err != nil {
				return err
			}
			start = sess.S.Now()
			if err := comm.Bcast(out, n, mpi.Byte, scaleBcastRoot); err != nil {
				return err
			}
			if rank == 0 {
				bcast.Add(n, sess.S.Now().Sub(start))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	id := "scale"
	title := fmt.Sprintf("Scale: %d-rank machine (%d clusters x %d ranks, capped backbone)",
		size, nClusters, perCluster)
	res := render(id, title, 'a', []*stats.Series{allreduce, bcast})
	var b strings.Builder
	b.WriteString(res.Text)
	// Zero relaying ranks is the election doing its job: leaders sit on
	// the multi-homed gateways, so leader-level exchanges ride the
	// backbone directly instead of being store-and-forwarded.
	b.WriteString(fmt.Sprintf("\nRouting blocs: %d (of %d ranks); store-and-forward relaying ranks: %d\n",
		sess.RoutePlan().BlocCount(), size, len(sess.RelayStats())))
	res.Text = b.String()
	return res, nil
}
