//go:build !race

package experiments

// raceDetectorOn reports whether this test binary was built with -race.
const raceDetectorOn = false
