package experiments

// The adaptive multi-path experiment (X5 variant, id "adaptive"): the
// bridged triangle. Adding the triangle's third side — a direct TCP
// bridge between islands A and C — gives every A<->C pair two
// edge-disjoint rails, which exercises everything the multi-path
// transport added on top of PR 4's single-path planner:
//
//   - Relay_stripe vs Relay_single: a large inter-cluster rendez-vous
//     body striped cost-weighted round-robin across both rails versus
//     the single-path pipelined relay (MaxPaths: 1, the PR-4 baseline).
//     The acceptance bar is >= 1.5x at 64 KiB.
//   - Adapt_adaptive vs Adapt_static: with the gwCA bridge artificially
//     loaded by an in-flight bulk transfer, a session that calls
//     Session.Replan routes the measured transfer around the hot
//     gateway (island-B detour) instead of queueing behind it; the
//     AdaptQ_* series record the hot gateway's relay-queue high-water
//     during the measured window.
//   - RelayQPeakMax: the deepest store-and-forward queue any gateway
//     reached, which the credit window must bound.

import (
	"fmt"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// triangleTopo is gatewayTopo plus the third side: ranks a0..c2 = 0..8,
// bridges a2-b1 (gwAB), b2-c1 (gwBC) and a1-c0 (gwCA). The a0 -> c2
// rails are a0-a1-c0-c2 (one bridge) and a0-a2-b1-b2-c1-c2 (two).
func triangleTopo() cluster.Topology {
	topo := gatewayTopo()
	topo.Networks = append(topo.Networks, cluster.NetworkSpec{
		Name: "gwCA", Protocol: "tcp", Nodes: []string{"a1", "c0"},
	})
	return topo
}

// adaptiveRelayWindow is the gateway queue bound the X5-variant sessions
// run under; the RelayQPeakMax series is gated against it.
const adaptiveRelayWindow = 16

// stripePingPong measures the one-way 0<->8 transfer time on the
// triangle and the deepest gateway queue the session saw. maxPaths: 1 is
// the single-path pipelined baseline, 2 the striped transport.
func stripePingPong(size, maxPaths int) (oneWay vtime.Duration, qPeak int, err error) {
	topo := triangleTopo()
	topo.MaxPaths = maxPaths
	topo.RelayWindow = adaptiveRelayWindow
	sess, err := cluster.Build(topo)
	if err != nil {
		return 0, 0, err
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, size)
		const iters = 2
		switch rank {
		case 0:
			start := sess.S.Now()
			for i := 0; i < iters; i++ {
				if err := comm.Send(buf, size, mpi.Byte, 8, 1); err != nil {
					return err
				}
				if _, err := comm.Recv(buf, size, mpi.Byte, 8, 1); err != nil {
					return err
				}
			}
			oneWay = sess.S.Now().Sub(start) / (2 * iters)
		case 8:
			for i := 0; i < iters; i++ {
				if _, err := comm.Recv(buf, size, mpi.Byte, 0, 1); err != nil {
					return err
				}
				if err := comm.Send(buf, size, mpi.Byte, 0, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, rs := range sess.RelayStats() {
		if rs.QueuePeak > qPeak {
			qPeak = rs.QueuePeak
		}
	}
	return oneWay, qPeak, nil
}

// adaptiveRun measures one loaded transfer: rank 2 launches an in-flight
// 64 KiB bulk send through the gwCA rail (a2 -> a1 -> c0 -> c1), and
// while its segment backlog drains through gateway a1, rank 0 sends the
// measured payload to rank 8. adaptive == true re-plans first — the
// observed queue pressure at a1/c0 steers the measured transfer onto the
// island-B rails — while the static plan queues behind the backlog.
// Striping is disabled so the comparison isolates re-routing. Returns
// the measured transfer time (send start to receive completion) and the
// hot gateway's queue high-water during that window.
//
// Replan's contract is a quiescent collective boundary: no rank may be
// compiling a collective while the hierarchy is re-elected. The opening
// Barrier aligns everyone, rank 0 re-plans 2 ms after it, and every
// other rank sleeps well past that point before returning to the
// Finalize barrier — only the load transfer is (deliberately) in flight
// across the re-plan, which is safe because an in-flight segment train
// keeps the route it captured at its rendez-vous.
func adaptiveRun(size int, adaptive bool) (xfer vtime.Duration, hotPeak int, err error) {
	const floodSize = 64 << 10
	topo := triangleTopo()
	// Deeper window than the stripe runs: the load's standing backlog
	// must stay below the bound, so the hot gateway's queue depth can
	// show the measured transfer routing through vs around it.
	topo.RelayWindow = 2 * adaptiveRelayWindow
	sess, err := cluster.Build(topo)
	if err != nil {
		return 0, 0, err
	}
	for _, rk := range sess.Ranks {
		rk.ChMad.RelayStriping = false
	}
	hot := sess.Ranks[1].ChMad // a1, the gwCA gateway the load drains through
	var start, done vtime.Time
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		hold := func() { sess.Ranks[rank].Proc.Sleep(100 * vtime.Millisecond) }
		switch rank {
		case 2:
			// The artificial load: one bulk transfer whose pipelined
			// segments are in flight (and keep their original gwCA route)
			// for the whole measured window.
			if err := comm.Send(make([]byte, floodSize), floodSize, mpi.Byte, 7, 5); err != nil {
				return err
			}
			hold()
		case 7:
			if _, err := comm.Recv(make([]byte, floodSize), floodSize, mpi.Byte, 2, 5); err != nil {
				return err
			}
			hold()
		case 0:
			// Let the load's backlog build at a1, then (adaptive only)
			// close the loop at the collective boundary.
			sess.Ranks[0].Proc.Sleep(2 * vtime.Millisecond)
			if adaptive {
				sess.Replan()
			}
			hot.TakeRelayHigh() // open the measured window
			start = sess.S.Now()
			if err := comm.Send(make([]byte, size), size, mpi.Byte, 8, 1); err != nil {
				return err
			}
			hold()
		case 8:
			if _, err := comm.Recv(make([]byte, size), size, mpi.Byte, 0, 1); err != nil {
				return err
			}
			done = sess.S.Now()
			hotPeak = hot.TakeRelayHigh() // close the measured window
		default:
			// Stay clear of the Finalize barrier until the re-plan and
			// the measurement are over.
			hold()
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return done.Sub(start), hotPeak, nil
}

// AdaptiveMultipath (X5 variant) benchmarks the multi-path transport on
// the bridged triangle: two-rail striping against the single-path
// pipelined relay, adaptive re-routing around a loaded bridge against
// the static plan, and the bounded gateway queues — the three remaining
// transport criteria, all gated by cmd/benchcheck.
func AdaptiveMultipath() (*Result, error) {
	stripeSizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20}
	stripe := &stats.Series{Name: "Relay_stripe"}
	single := &stats.Series{Name: "Relay_single"}
	qmax := &stats.Series{Name: "RelayQPeakMax"}
	// The configured credit window, recorded alongside the peaks so the
	// benchcheck cap gates against the bound the data was generated
	// under rather than a hardcoded constant.
	qwin := &stats.Series{Name: "RelayQWindow"}
	for _, size := range stripeSizes {
		striped, qs, err := stripePingPong(size, 2)
		if err != nil {
			return nil, fmt.Errorf("stripe %d: %w", size, err)
		}
		solo, q1, err := stripePingPong(size, 1)
		if err != nil {
			return nil, fmt.Errorf("single %d: %w", size, err)
		}
		stripe.Add(size, striped)
		single.Add(size, solo)
		if q1 > qs {
			qs = q1
		}
		// Encoded count, not a time: one queue slot per "microsecond".
		qmax.Add(size, vtime.Duration(qs)*vtime.Microsecond)
		qwin.Add(size, adaptiveRelayWindow*vtime.Microsecond)
	}

	adaptSizes := []int{64 << 10, 256 << 10}
	adapt := &stats.Series{Name: "Adapt_adaptive"}
	static := &stats.Series{Name: "Adapt_static"}
	adaptQ := &stats.Series{Name: "AdaptQ_adaptive"}
	staticQ := &stats.Series{Name: "AdaptQ_static"}
	for _, size := range adaptSizes {
		at, aq, err := adaptiveRun(size, true)
		if err != nil {
			return nil, fmt.Errorf("adaptive %d: %w", size, err)
		}
		st, sq, err := adaptiveRun(size, false)
		if err != nil {
			return nil, fmt.Errorf("static %d: %w", size, err)
		}
		adapt.Add(size, at)
		static.Add(size, st)
		adaptQ.Add(size, vtime.Duration(aq)*vtime.Microsecond)
		staticQ.Add(size, vtime.Duration(sq)*vtime.Microsecond)
	}

	series := []*stats.Series{stripe, single, adapt, static, adaptQ, staticQ, qmax, qwin}
	res := render("adaptive",
		"Extension X5 variant: adaptive multi-path relay on the bridged triangle (third TCP side = second rail)",
		'a', series)

	var b strings.Builder
	b.WriteString(res.Text)
	fmt.Fprintf(&b, "\nStripe speedup over single-path pipelined relay (gateway window %d):\n", adaptiveRelayWindow)
	fmt.Fprintf(&b, "%-10s %12s %12s %9s\n", "size", "single(us)", "stripe(us)", "speedup")
	for _, size := range stripeSizes {
		ps, _ := stripe.At(size)
		p1, _ := single.At(size)
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %8.2fx\n",
			stats.SizeLabel(size), p1.LatencyUS(), ps.LatencyUS(), p1.LatencyUS()/ps.LatencyUS())
	}
	b.WriteString("\nAdaptive re-routing around the loaded gwCA bridge (times are the measured\n" +
		"transfer; queue values are gateway a1's depth high-water during it):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %10s\n", "size", "static(us)", "adapt(us)", "staticQ", "adaptQ")
	for _, size := range adaptSizes {
		st, _ := static.At(size)
		at, _ := adapt.At(size)
		sq, _ := staticQ.At(size)
		aq, _ := adaptQ.At(size)
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %10.0f %10.0f\n",
			stats.SizeLabel(size), st.LatencyUS(), at.LatencyUS(), sq.LatencyUS(), aq.LatencyUS())
	}
	res.Text = b.String()
	return res, nil
}
