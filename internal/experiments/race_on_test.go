//go:build race

package experiments

// raceDetectorOn reports whether this test binary was built with -race.
// The race build trades machine size for instrumentation overhead in the
// heaviest tests; see determinism_test.go.
const raceDetectorOn = true
