// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (raw Madeleine), Figures 6–8 (ch_mad vs
// baselines on TCP, SCI, BIP), Figure 9 (multi-protocol polling overhead),
// Table 2 (ch_mad summary), plus the ablations and the §6 forwarding
// extension. Used by cmd/experiments and by the top-level benchmarks.
package experiments

import (
	"fmt"
	"strings"

	"mpichmad/internal/baselines"
	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/mpptest"
	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// Result is one regenerated artifact: rendered text plus the raw series
// for programmatic checks.
type Result struct {
	ID     string
	Title  string
	Text   string
	Series []*stats.Series
}

// protoTopo returns the mono-protocol two-node ch_mad topology used for
// the paper's per-network curves ("those figures were obtained by
// compiling the device in a mono-protocol fashion", §5).
func protoTopo(protocol string) cluster.Topology {
	return cluster.TwoNodes(protocol)
}

// multiTopo returns the Fig. 9 topology: SCI and TCP both connecting the
// two nodes; traffic routes over SCI while the TCP polling thread idles.
func multiTopo() cluster.Topology {
	return cluster.Topology{
		Nodes: []cluster.NodeSpec{{Name: "n0", Procs: 1}, {Name: "n1", Procs: 1}},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"n0", "n1"}},
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"n0", "n1"}},
		},
	}
}

// Table1 regenerates Table 1: raw Madeleine latency (4 B) and bandwidth
// (8 MB) for TCP, BIP and SISCI.
func Table1() (*Result, error) {
	type row struct {
		params  netsim.Params
		wantLat float64
		wantBW  float64
	}
	rows := []row{
		{netsim.FastEthernetTCP(), 121, 11.2},
		{netsim.MyrinetBIP(), 9.2, 122},
		{netsim.SCISISCI(), 4.4, 82.6},
	}
	var b strings.Builder
	b.WriteString("# Table 1: raw Madeleine latency and bandwidth\n")
	fmt.Fprintf(&b, "%-14s %14s %12s %18s %14s\n", "protocol", "latency(us)", "paper(us)", "bandwidth(MB/s)", "paper(MB/s)")
	for _, r := range rows {
		lat, err := mpptest.RawMadeleine("raw", r.params, []int{4}, mpptest.Config{})
		if err != nil {
			return nil, err
		}
		bw, err := mpptest.RawMadeleine("raw", r.params, []int{8 * netsim.MB}, mpptest.Config{Iters: 1})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-14s %14.1f %12.1f %18.1f %14.1f\n",
			r.params.Protocol+"/"+r.params.Network,
			lat.Points[0].LatencyUS(), r.wantLat,
			bw.Points[0].BandwidthMBs(), r.wantBW)
	}
	return &Result{ID: "table1", Title: "Table 1", Text: b.String()}, nil
}

// figSweep measures ch_mad and raw Madeleine over a size sweep on one
// protocol and appends the given reference models.
func figSweep(protocol string, sizes []int, refs ...*baselines.ReferenceModel) ([]*stats.Series, error) {
	params, _ := netsim.ByProtocol(protocol)
	chmad, err := mpptest.MPIPingPong("ch_mad", protoTopo(protocol), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	raw, err := mpptest.RawMadeleine("raw_Madeleine", params, sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	series := []*stats.Series{chmad, raw}
	for _, m := range refs {
		series = append(series, m.Series(sizes))
	}
	return series, nil
}

// Fig6 regenerates Figure 6: ch_mad vs ch_p4 vs raw Madeleine on
// TCP/Fast-Ethernet. part is 'a' (transfer time, 1 B–1 KB) or 'b'
// (bandwidth, 1 B–1 MB).
func Fig6(part byte) (*Result, error) {
	sizes := stats.Sizes1B1KB()
	if part == 'b' {
		sizes = stats.Sizes1B1MB()
	}
	chmad, err := mpptest.MPIPingPong("ch_mad", protoTopo("tcp"), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	p4topo := protoTopo("tcp")
	p4topo.Device = "ch_p4"
	chp4, err := mpptest.MPIPingPong("ch_p4", p4topo, sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	raw, err := mpptest.RawMadeleine("raw_Madeleine", netsim.FastEthernetTCP(), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	series := []*stats.Series{chmad, chp4, raw}
	return render("fig6"+string(part), "Figure 6: TCP/Fast-Ethernet", part, series), nil
}

// Fig7 regenerates Figure 7: ch_mad vs ScaMPI vs SCI-MPICH vs raw
// Madeleine on SISCI/SCI.
func Fig7(part byte) (*Result, error) {
	sizes := stats.Sizes1B1KB()
	if part == 'b' {
		sizes = stats.Sizes1B1MB()
	}
	series, err := figSweep("sisci", sizes, baselines.ScaMPI(), baselines.SCIMPICH())
	if err != nil {
		return nil, err
	}
	return render("fig7"+string(part), "Figure 7: SISCI/SCI", part, series), nil
}

// Fig8 regenerates Figure 8: ch_mad vs MPI-GM vs MPICH-PM vs raw
// Madeleine on BIP/Myrinet.
func Fig8(part byte) (*Result, error) {
	sizes := stats.Sizes1B1KB()
	if part == 'b' {
		sizes = stats.Sizes1B1MB()
	}
	series, err := figSweep("bip", sizes, baselines.MPIGM(), baselines.MPICHPM())
	if err != nil {
		return nil, err
	}
	return render("fig8"+string(part), "Figure 8: BIP/Myrinet", part, series), nil
}

// Fig9 regenerates Figure 9: SCI performance with the SCI polling thread
// alone versus with an additional (idle) TCP polling thread.
func Fig9(part byte) (*Result, error) {
	sizes := stats.Sizes1B1KB()
	if part == 'b' {
		sizes = stats.Sizes1B1MB()
	}
	alone, err := mpptest.MPIPingPong("SCI_thread_only", protoTopo("sisci"), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	both, err := mpptest.MPIPingPong("SCI_thread_+_TCP_thread", multiTopo(), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	return render("fig9"+string(part), "Figure 9: multi-protocol polling overhead on SCI", part,
		[]*stats.Series{alone, both}), nil
}

// Table2 regenerates Table 2: ch_mad 0 B / 4 B latency and 8 MB bandwidth
// per network.
func Table2() (*Result, error) {
	type row struct {
		protocol string
		paper0   float64
		paper4   float64
		paperBW  float64
	}
	rows := []row{
		{"tcp", 130, 148.7, 11.2},
		{"bip", 16.9, 18.9, 115},
		{"sisci", 13, 20, 82.5},
	}
	var b strings.Builder
	b.WriteString("# Table 2: ch_mad summary of performance\n")
	fmt.Fprintf(&b, "%-8s %11s %10s %11s %10s %12s %12s\n",
		"proto", "lat0B(us)", "paper", "lat4B(us)", "paper", "bw8MB(MB/s)", "paper")
	for _, r := range rows {
		s, err := mpptest.MPIPingPong("ch_mad", protoTopo(r.protocol),
			[]int{0, 4, 8 * netsim.MB}, mpptest.Config{Iters: 2})
		if err != nil {
			return nil, err
		}
		p0, _ := s.At(0)
		p4, _ := s.At(4)
		p8, _ := s.At(8 * netsim.MB)
		fmt.Fprintf(&b, "%-8s %11.1f %10.1f %11.1f %10.1f %12.1f %12.1f\n",
			r.protocol, p0.LatencyUS(), r.paper0, p4.LatencyUS(), r.paper4,
			p8.BandwidthMBs(), r.paperBW)
	}
	return &Result{ID: "table2", Title: "Table 2", Text: b.String()}, nil
}

// AblationSwitchPoint (X1) sweeps the ch_mad eager->rendez-vous threshold
// on the SCI+TCP configuration, showing why §4.2.2 elects SCI's 8 KB.
func AblationSwitchPoint() (*Result, error) {
	msgSizes := []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	var series []*stats.Series
	for _, sp := range []int{2 << 10, 8 << 10, 64 << 10} {
		sp := sp
		s, err := mpptest.MPIPingPong(fmt.Sprintf("switch=%s", stats.SizeLabel(sp)),
			multiTopo(), msgSizes, mpptest.Config{
				Mutate: func(sess *cluster.Session) {
					for _, rk := range sess.Ranks {
						rk.ChMad.SetSwitchPoint(sp)
					}
				},
			})
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return render("ablation-switch",
		"Ablation X1: switch-point election on SCI+TCP (unique threshold forced by MPID_Device)",
		'b', series), nil
}

// AblationHeaderSplit (X2) compares the §4.2.2 header/body split against
// the naive constant-size MPID_PKT_MAX_DATA_SIZE eager buffer on SCI
// (padding waste plus a sender-side copy).
func AblationHeaderSplit() (*Result, error) {
	msgSizes := []int{64, 256, 1 << 10, 4 << 10, 8 << 10}
	split, err := mpptest.MPIPingPong("header/body split", protoTopo("sisci"), msgSizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	mono, err := mpptest.MPIPingPong("monolithic buffer", protoTopo("sisci"), msgSizes, mpptest.Config{
		Mutate: func(sess *cluster.Session) {
			for _, rk := range sess.Ranks {
				rk.ChMad.MonolithicEager = true
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return render("ablation-split",
		"Ablation X2: eager header/body split vs monolithic padded buffer (SCI)",
		'a', []*stats.Series{split, mono}), nil
}

// Forwarding (X3) measures the §6 gateway store-and-forward extension:
// latency SCI->gateway->Myrinet versus the direct SCI path.
func Forwarding() (*Result, error) {
	sizes := []int{4, 256, 4 << 10, 64 << 10, 1 << 20}
	direct, err := mpptest.MPIPingPong("direct SCI", protoTopo("sisci"), sizes, mpptest.Config{})
	if err != nil {
		return nil, err
	}
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "n0", Procs: 1}, {Name: "gw", Procs: 1}, {Name: "n1", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"n0", "gw"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"gw", "n1"}},
		},
		Forwarding: true,
	}
	// Ping-pong between ranks 0 and 2 (through the gateway): reuse the
	// MPI harness via a custom runner.
	series := &stats.Series{Name: "SCI->gw->Myrinet"}
	sess, err := cluster.Build(topo)
	if err != nil {
		return nil, err
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 1 {
			return nil // gateway: forwarding only
		}
		peer := 2 - rank // 0 <-> 2
		for _, size := range sizes {
			buf := make([]byte, size)
			if rank == 0 {
				start := sess.S.Now()
				const iters = 2
				for i := 0; i < iters; i++ {
					if err := comm.Send(buf, size, mpi.Byte, peer, 1); err != nil {
						return err
					}
					if _, err := comm.Recv(buf, size, mpi.Byte, peer, 1); err != nil {
						return err
					}
				}
				series.Add(size, sess.S.Now().Sub(start)/vtime.Duration(2*2))
			} else {
				for i := 0; i < 2; i++ {
					if _, err := comm.Recv(buf, size, mpi.Byte, peer, 1); err != nil {
						return err
					}
					if err := comm.Send(buf, size, mpi.Byte, peer, 1); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return render("forwarding",
		"Extension X3: heterogeneous forwarding through a gateway node (§6 future work)",
		'a', []*stats.Series{direct, series}), nil
}

// HierCollectives (X4) compares the flat (topology-blind), two-level
// (hierarchy-aware) and ring collective algorithms on a two-cluster
// heterogeneous topology: two 4-node SCI islands joined by a TCP
// backbone, with node declarations interleaved so consecutive ranks
// alternate islands (the adversarial placement for a flat binomial tree).
// Reported value is the per-operation completion time at rank 0.
//
// The *_cap series rerun the headline operations with the backbone's
// aggregate-bandwidth arbiter on (netsim.Params.NetworkBandwidth set to
// the TCP rate): every backbone crossing now queues at the shared trunk,
// so flat algorithms stop getting their many crossings for free and the
// two-level Bcast/Allreduce win on *time* from a few hundred bytes up
// (at 8 B the extra leader hop still costs ~1 us), not just on message
// count — flat Bcast pushes n/2 copies of the vector through the trunk
// where two-level pushes one. Alltoall is the honest exception:
// bundling conserves backbone bytes exactly — every (src, dst) block is
// unique — so past the setup-dominated regime both algorithms sit on the
// same trunk serialization floor and two-level only wins below a few KB
// per block. The contention table below the sweep reports the trunk
// queueing delay and peak occupancy each algorithm inflicted at the
// largest payload.
//
// Allreduce_ring is the flat bandwidth-optimal ring (reduce-scatter +
// allgather); Allreduce_ring2l_cap is its two-level form (intra-cluster
// rings around the single leader exchange) under the capped backbone.
//
// The *_ovl series measure the schedule engine's overlap: each iteration
// starts the nonblocking two-level operation, runs a chunked compute loop
// sized to the blocking two-level time at that payload, then waits; the
// reported value is the exposed (non-hidden) communication time, i.e.
// per-iteration wall time minus the injected compute.
func HierCollectives() (*Result, error) {
	sizes := []int{8, 256, 4 << 10, 64 << 10, 256 << 10}
	topo := hierTopo()
	capped := hierTopoCapped()
	type bench struct {
		name string
		topo cluster.Topology
		mode mpi.CollMode
		op   func(comm *mpi.Comm, size int) error
	}
	bcast := func(comm *mpi.Comm, size int) error {
		buf := make([]byte, size)
		return comm.Bcast(buf, size, mpi.Byte, 0)
	}
	allreduce := func(comm *mpi.Comm, size int) error {
		buf := make([]byte, size)
		out := make([]byte, size)
		return comm.Allreduce(buf, out, size, mpi.Byte, mpi.OpMax)
	}
	allgather := func(comm *mpi.Comm, size int) error {
		buf := make([]byte, size)
		big := make([]byte, size*comm.Size())
		return comm.Allgather(buf, big, size, mpi.Byte)
	}
	alltoall := func(comm *mpi.Comm, size int) error {
		send := make([]byte, size*comm.Size())
		recv := make([]byte, size*comm.Size())
		return comm.Alltoall(send, recv, size, mpi.Byte)
	}
	benches := []bench{
		{"Bcast_flat", topo, mpi.CollFlat, bcast},
		{"Bcast_2level", topo, mpi.CollHier, bcast},
		{"Allreduce_flat", topo, mpi.CollFlat, allreduce},
		{"Allreduce_2level", topo, mpi.CollHier, allreduce},
		{"Allreduce_ring", topo, mpi.CollRing, allreduce},
		{"Allgather_flat", topo, mpi.CollFlat, allgather},
		{"Allgather_2level", topo, mpi.CollHier, allgather},
		{"Alltoall_flat", topo, mpi.CollFlat, alltoall},
		{"Alltoall_2level", topo, mpi.CollHier, alltoall},
		{"Bcast_flat_cap", capped, mpi.CollFlat, bcast},
		{"Bcast_2level_cap", capped, mpi.CollHier, bcast},
		{"Allreduce_flat_cap", capped, mpi.CollFlat, allreduce},
		{"Allreduce_2level_cap", capped, mpi.CollHier, allreduce},
		{"Allreduce_ring2l_cap", capped, mpi.CollHierRing, allreduce},
		{"Alltoall_flat_cap", capped, mpi.CollFlat, alltoall},
		{"Alltoall_2level_cap", capped, mpi.CollHier, alltoall},
	}
	perOpTime := make(map[string]map[int]vtime.Duration)
	type contention struct {
		name      string
		queueMS   float64
		peakDepth int
	}
	var contentions []contention
	var series []*stats.Series
	for _, bm := range benches {
		s := &stats.Series{Name: bm.name}
		perOpTime[bm.name] = make(map[int]vtime.Duration)
		for _, size := range sizes {
			sess, err := cluster.Build(bm.topo)
			if err != nil {
				return nil, err
			}
			for _, rk := range sess.Ranks {
				rk.MPI.SetCollMode(bm.mode)
			}
			size := size
			op := bm.op
			var perOp vtime.Duration
			err = sess.Run(func(rank int, comm *mpi.Comm) error {
				const iters = 3
				start := sess.S.Now()
				for i := 0; i < iters; i++ {
					if err := op(comm, size); err != nil {
						return err
					}
				}
				if rank == 0 {
					perOp = sess.S.Now().Sub(start) / iters
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			perOpTime[bm.name][size] = perOp
			s.Add(size, perOp)
			if size == sizes[len(sizes)-1] {
				if st := sess.Networks["wan"].Stats; st.TrunkQueueDelay > 0 || st.TrunkPeak > 0 {
					contentions = append(contentions, contention{
						name:      bm.name,
						queueMS:   st.TrunkQueueDelay.Seconds() * 1e3,
						peakDepth: st.TrunkPeak,
					})
				}
			}
		}
		series = append(series, s)
	}

	// Nonblocking overlap: exposed communication time of the two-level
	// Allreduce and Alltoall when computation fills the collective's
	// blocking duration.
	type ovlBench struct {
		name string
		base string
		op   func(comm *mpi.Comm, size int) (*mpi.CollRequest, error)
	}
	ovls := []ovlBench{
		{"Allreduce_2level_ovl", "Allreduce_2level", func(comm *mpi.Comm, size int) (*mpi.CollRequest, error) {
			buf := make([]byte, size)
			out := make([]byte, size)
			return comm.Iallreduce(buf, out, size, mpi.Byte, mpi.OpMax)
		}},
		{"Alltoall_2level_ovl", "Alltoall_2level", func(comm *mpi.Comm, size int) (*mpi.CollRequest, error) {
			send := make([]byte, size*comm.Size())
			recv := make([]byte, size*comm.Size())
			return comm.Ialltoall(send, recv, size, mpi.Byte)
		}},
	}
	for _, ob := range ovls {
		s := &stats.Series{Name: ob.name}
		for _, size := range sizes {
			sess, err := cluster.Build(topo)
			if err != nil {
				return nil, err
			}
			for _, rk := range sess.Ranks {
				rk.MPI.SetCollMode(mpi.CollHier)
			}
			size := size
			start := ob.op
			compute := perOpTime[ob.base][size]
			var exposed vtime.Duration
			err = sess.Run(func(rank int, comm *mpi.Comm) error {
				const iters = 3
				const chunks = 64
				t0 := sess.S.Now()
				for i := 0; i < iters; i++ {
					req, err := start(comm, size)
					if err != nil {
						return err
					}
					for k := 0; k < chunks; k++ {
						sess.Ranks[rank].Proc.Compute(compute / chunks)
					}
					if err := req.Wait(); err != nil {
						return err
					}
				}
				if rank == 0 {
					per := sess.S.Now().Sub(t0) / iters
					exposed = per - compute
					if exposed < 0 {
						exposed = 0
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			s.Add(size, exposed)
		}
		series = append(series, s)
	}
	res := render("hcoll",
		"Extension X4: flat vs two-level vs ring vs nonblocking-overlap collectives on a 2x4-rank cluster-of-clusters",
		'a', series)

	// Backbone contention table: trunk queueing inflicted at the largest
	// payload by each algorithm on the capped backbone.
	var b strings.Builder
	b.WriteString(res.Text)
	fmt.Fprintf(&b, "\nBackbone contention at %s (wan trunk capped at the TCP rate):\n",
		stats.SizeLabel(sizes[len(sizes)-1]))
	fmt.Fprintf(&b, "%-22s %18s %12s\n", "series", "queue delay(ms)", "peak depth")
	for _, ct := range contentions {
		fmt.Fprintf(&b, "%-22s %18.2f %12d\n", ct.name, ct.queueMS, ct.peakDepth)
	}

	// MPI_Init autotuner: the crossover table measured on the capped
	// topology (what CollAuto dispatches through when Topology.Autotune
	// is on).
	tuned, err := autotunedTable(capped)
	if err != nil {
		return nil, err
	}
	b.WriteString("\nAutotuned crossover table (capped backbone, measured at MPI_Init):\n")
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "operation", "payload <=", "algorithm")
	for _, tc := range tuned {
		bound := "inf"
		if tc.MaxBytes < 1<<40 {
			bound = stats.SizeLabel(tc.MaxBytes)
		}
		fmt.Fprintf(&b, "%-14s %14s %14s\n", tc.Op, bound, tc.Algo)
	}
	res.Text = b.String()
	return res, nil
}

// autotunedTable runs the MPI_Init autotuner on a topology and returns
// rank 0's installed crossover table.
func autotunedTable(topo cluster.Topology) ([]mpi.TuneChoice, error) {
	topo.Autotune = true
	sess, err := cluster.Build(topo)
	if err != nil {
		return nil, err
	}
	if err := sess.Run(func(rank int, comm *mpi.Comm) error { return nil }); err != nil {
		return nil, err
	}
	return sess.Ranks[0].MPI.TuneSnapshot(), nil
}

// hierTopoCapped is hierTopo with the backbone's aggregate-bandwidth
// arbiter on: the wan models one shared trunk at the TCP rate, so
// concurrent crossings queue instead of riding private per-pair pipes.
func hierTopoCapped() cluster.Topology {
	topo := hierTopo()
	wan := netsim.FastEthernetTCP()
	wan.NetworkBandwidth = wan.Bandwidth
	for i := range topo.Networks {
		if topo.Networks[i].Name == "wan" {
			topo.Networks[i].Params = &wan
		}
	}
	return topo
}

// hierTopo is the X4 benchmark topology: two SCI islands, interleaved
// rank placement, TCP backbone.
func hierTopo() cluster.Topology {
	var nodes []cluster.NodeSpec
	var a, b, all []string
	for i := 0; i < 4; i++ {
		an, bn := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		nodes = append(nodes, cluster.NodeSpec{Name: an, Procs: 1}, cluster.NodeSpec{Name: bn, Procs: 1})
		a, b = append(a, an), append(b, bn)
		all = append(all, an, bn)
	}
	return cluster.Topology{
		Nodes: nodes,
		Networks: []cluster.NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: a},
			{Name: "sciB", Protocol: "sisci", Nodes: b},
			{Name: "wan", Protocol: "tcp", Nodes: all},
		},
	}
}

func render(id, title string, part byte, series []*stats.Series) *Result {
	var text string
	if part == 'a' {
		text = stats.Table(title+" — transfer time", "us", series, stats.Point.LatencyUS)
	} else {
		text = stats.Table(title+" — bandwidth", "MB/s", series, stats.Point.BandwidthMBs)
	}
	return &Result{ID: id, Title: title, Text: text, Series: series}
}

// All runs every experiment in paper order.
func All() ([]*Result, error) {
	var out []*Result
	type gen func() (*Result, error)
	gens := []gen{
		Table1,
		func() (*Result, error) { return Fig6('a') },
		func() (*Result, error) { return Fig6('b') },
		func() (*Result, error) { return Fig7('a') },
		func() (*Result, error) { return Fig7('b') },
		func() (*Result, error) { return Fig8('a') },
		func() (*Result, error) { return Fig8('b') },
		func() (*Result, error) { return Fig9('a') },
		func() (*Result, error) { return Fig9('b') },
		Table2,
		AblationSwitchPoint,
		AblationHeaderSplit,
		Forwarding,
		HierCollectives,
		GatewayCollectives,
		AdaptiveMultipath,
		HeteroMux,
		MultiLeader,
		Scale,
	}
	for _, g := range gens {
		r, err := g()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID runs one experiment by its id (e.g. "fig7b").
func ByID(id string) (*Result, error) {
	switch id {
	case "table1":
		return Table1()
	case "fig6a":
		return Fig6('a')
	case "fig6b":
		return Fig6('b')
	case "fig7a":
		return Fig7('a')
	case "fig7b":
		return Fig7('b')
	case "fig8a":
		return Fig8('a')
	case "fig8b":
		return Fig8('b')
	case "fig9a":
		return Fig9('a')
	case "fig9b":
		return Fig9('b')
	case "table2":
		return Table2()
	case "ablation-switch":
		return AblationSwitchPoint()
	case "ablation-split":
		return AblationHeaderSplit()
	case "forwarding":
		return Forwarding()
	case "hcoll":
		return HierCollectives()
	case "gateway":
		return GatewayCollectives()
	case "adaptive":
		return AdaptiveMultipath()
	case "heteromux":
		return HeteroMux()
	case "multileader":
		return MultiLeader()
	case "scale":
		return Scale()
	}
	return nil, fmt.Errorf("experiments: unknown id %q (see DESIGN.md experiment index)", id)
}
