package experiments

// These tests assert the *shape* claims of the paper's evaluation — who
// wins, by roughly what factor, where crossovers fall — on the regenerated
// data. Absolute calibration is asserted in the madeleine (Table 1) and
// core (Table 2) packages.

import (
	"strings"
	"testing"

	"mpichmad/internal/stats"
)

func get(t *testing.T, s *stats.Series, size int) stats.Point {
	t.Helper()
	p, ok := s.At(size)
	if !ok {
		t.Fatalf("series %q has no point at %d", s.Name, size)
	}
	return p
}

func byName(t *testing.T, series []*stats.Series, name string) *stats.Series {
	t.Helper()
	for _, s := range series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q missing", name)
	return nil
}

func TestFig6Shape(t *testing.T) {
	a, err := Fig6('a')
	if err != nil {
		t.Fatal(err)
	}
	chmad, chp4 := byName(t, a.Series, "ch_mad"), byName(t, a.Series, "ch_p4")
	raw := byName(t, a.Series, "raw_Madeleine")
	// §5.2: ch_mad beats ch_p4 up to 256 B; raw is below both.
	for _, sz := range []int{1, 4, 64, 256} {
		if get(t, chmad, sz).OneWay >= get(t, chp4, sz).OneWay {
			t.Errorf("fig6a: ch_mad not faster than ch_p4 at %dB", sz)
		}
		if get(t, raw, sz).OneWay >= get(t, chmad, sz).OneWay {
			t.Errorf("fig6a: raw not below ch_mad at %dB", sz)
		}
	}

	b, err := Fig6('b')
	if err != nil {
		t.Fatal(err)
	}
	chmadB, chp4B := byName(t, b.Series, "ch_mad"), byName(t, b.Series, "ch_p4")
	// §5.2: ch_p4 ceiling ~10 MB/s; ch_mad exceeds 11 MB/s at 1 MB.
	if bw := get(t, chp4B, 1<<20).BandwidthMBs(); bw > 10.3 {
		t.Errorf("fig6b: ch_p4 ceiling %.2f, want <= ~10", bw)
	}
	if bw := get(t, chmadB, 1<<20).BandwidthMBs(); bw < 11.0 {
		t.Errorf("fig6b: ch_mad 1MB bw %.2f, want > 11", bw)
	}
	// Below the 64 KB switch they are similar (within 10%).
	for _, sz := range []int{4 << 10, 16 << 10} {
		m, p := get(t, chmadB, sz).BandwidthMBs(), get(t, chp4B, sz).BandwidthMBs()
		if m < p*0.9 || m > p*1.25 {
			t.Errorf("fig6b: at %d ch_mad %.2f vs ch_p4 %.2f not 'similar'", sz, m, p)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	b, err := Fig7('b')
	if err != nil {
		t.Fatal(err)
	}
	chmad := byName(t, b.Series, "ch_mad")
	sca := byName(t, b.Series, "ScaMPI")
	smi := byName(t, b.Series, "SCI-MPICH")
	// §5.3: before 8 KB ch_mad's bandwidth is inferior or equal; beyond
	// 16 KB it outperforms both with 80 MB/s sustained.
	if get(t, chmad, 1<<10).BandwidthMBs() > get(t, sca, 1<<10).BandwidthMBs() {
		t.Error("fig7b: ch_mad should not beat ScaMPI below the switch point")
	}
	for _, sz := range []int{64 << 10, 256 << 10, 1 << 20} {
		m := get(t, chmad, sz).BandwidthMBs()
		if m <= get(t, sca, sz).BandwidthMBs() || m <= get(t, smi, sz).BandwidthMBs() {
			t.Errorf("fig7b: ch_mad does not win at %d", sz)
		}
	}
	if bw := get(t, chmad, 1<<20).BandwidthMBs(); bw < 80 {
		t.Errorf("fig7b: ch_mad sustained %.1f, want >= 80", bw)
	}

	a, err := Fig7('a')
	if err != nil {
		t.Fatal(err)
	}
	// §5.3: latency comparisons are NOT favourable to ch_mad (the two
	// native SCI ports are lower).
	chmadA := byName(t, a.Series, "ch_mad")
	for _, other := range []string{"ScaMPI", "SCI-MPICH"} {
		if get(t, chmadA, 4).OneWay <= get(t, byName(t, a.Series, other), 4).OneWay {
			t.Errorf("fig7a: ch_mad should lose the small-message latency race to %s", other)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	b, err := Fig8('b')
	if err != nil {
		t.Fatal(err)
	}
	chmad := byName(t, b.Series, "ch_mad")
	gm := byName(t, b.Series, "MPI-GM")
	pm := byName(t, b.Series, "MPICH-PM")
	// §5.4: "MPI-GM is definitely outperformed by both ch_mad and
	// MPICH-PM" for large messages.
	for _, sz := range []int{64 << 10, 1 << 20} {
		g := get(t, gm, sz).BandwidthMBs()
		if get(t, chmad, sz).BandwidthMBs() <= g || get(t, pm, sz).BandwidthMBs() <= g {
			t.Errorf("fig8b: MPI-GM not outperformed at %d", sz)
		}
	}
	// §5.4: PM takes the advantage below 4 KB and above 256 KB;
	// in between they are roughly the same (within 20%).
	if get(t, pm, 1<<10).BandwidthMBs() <= get(t, chmad, 1<<10).BandwidthMBs() {
		t.Error("fig8b: MPICH-PM should lead below 4K")
	}
	m, p := get(t, chmad, 64<<10).BandwidthMBs(), get(t, pm, 64<<10).BandwidthMBs()
	if m < p*0.8 || m > p*1.25 {
		t.Errorf("fig8b: mid-range not 'roughly the same': ch_mad %.1f vs PM %.1f", m, p)
	}

	a, err := Fig8('a')
	if err != nil {
		t.Fatal(err)
	}
	chmadA, gmA := byName(t, a.Series, "ch_mad"), byName(t, a.Series, "MPI-GM")
	// §5.4: ch_mad beats MPI-GM below 512 B, loses beyond.
	if get(t, chmadA, 64).OneWay >= get(t, gmA, 64).OneWay {
		t.Error("fig8a: ch_mad should beat MPI-GM at 64B")
	}
	if get(t, chmadA, 1024).OneWay <= get(t, gmA, 1024).OneWay {
		t.Error("fig8a: MPI-GM should beat ch_mad at 1KB")
	}
}

func TestFig9Shape(t *testing.T) {
	a, err := Fig9('a')
	if err != nil {
		t.Fatal(err)
	}
	alone := byName(t, a.Series, "SCI_thread_only")
	both := byName(t, a.Series, "SCI_thread_+_TCP_thread")
	// §5.5: a measurable but *limited* gap from the extra TCP poller.
	for _, sz := range []int{1, 64, 1024} {
		d := get(t, both, sz).OneWay - get(t, alone, sz).OneWay
		if d <= 0 {
			t.Errorf("fig9a: no overhead at %dB", sz)
		}
		if d.Micros() > 15 {
			t.Errorf("fig9a: gap %.1fus at %dB not 'limited'", d.Micros(), sz)
		}
	}

	b, err := Fig9('b')
	if err != nil {
		t.Fatal(err)
	}
	aloneB := byName(t, b.Series, "SCI_thread_only")
	bothB := byName(t, b.Series, "SCI_thread_+_TCP_thread")
	// Large messages converge: within 2% at 1 MB.
	x, y := get(t, aloneB, 1<<20).BandwidthMBs(), get(t, bothB, 1<<20).BandwidthMBs()
	if y < x*0.98 {
		t.Errorf("fig9b: 1MB bandwidth did not converge: %.1f vs %.1f", x, y)
	}
}

func TestAblations(t *testing.T) {
	sw, err := AblationSwitchPoint()
	if err != nil {
		t.Fatal(err)
	}
	// At 64 KB messages, a 64K switch point (pure eager) must lose to the
	// 8 KB election (zero-copy rendez-vous).
	sp8 := byName(t, sw.Series, "switch=8K")
	sp64 := byName(t, sw.Series, "switch=64K")
	if get(t, sp8, 64<<10).BandwidthMBs() <= get(t, sp64, 64<<10).BandwidthMBs() {
		t.Error("ablation X1: 8K election should beat pure eager at 64KB")
	}

	split, err := AblationHeaderSplit()
	if err != nil {
		t.Fatal(err)
	}
	s := byName(t, split.Series, "header/body split")
	m := byName(t, split.Series, "monolithic buffer")
	// §4.2.2: the monolithic padded buffer wastes wire time on every
	// eager message ("a lot of null data will be sent").
	for _, sz := range []int{64, 1 << 10} {
		if get(t, m, sz).OneWay <= get(t, s, sz).OneWay {
			t.Errorf("ablation X2: monolithic should be slower at %dB", sz)
		}
	}
}

func TestForwardingExperiment(t *testing.T) {
	r, err := Forwarding()
	if err != nil {
		t.Fatal(err)
	}
	direct := byName(t, r.Series, "direct SCI")
	fwd := byName(t, r.Series, "SCI->gw->Myrinet")
	// Store-and-forward costs roughly a second network traversal.
	d, f := get(t, direct, 4).OneWay, get(t, fwd, 4).OneWay
	if f <= d {
		t.Error("forwarding should cost more than a direct link")
	}
	if f > 4*d {
		t.Errorf("forwarding overhead implausibly large: %v vs %v", f, d)
	}
}

func TestAllAndByID(t *testing.T) {
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	r, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "Table 1") {
		t.Fatalf("text: %s", r.Text)
	}
}

// TestAllRegeneratesEveryArtifact runs the complete experiment suite once
// — the same path as `cmd/experiments -exp all` — and checks each
// artifact rendered non-trivially and is reachable through ByID.
func TestAllRegeneratesEveryArtifact(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{
		"table1", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b",
		"fig9a", "fig9b", "table2", "ablation-switch", "ablation-split",
		"forwarding", "hcoll", "gateway", "adaptive", "heteromux",
		"multileader", "scale",
	}
	if len(results) != len(wantIDs) {
		t.Fatalf("All produced %d artifacts, want %d", len(results), len(wantIDs))
	}
	for i, r := range results {
		if r.ID != wantIDs[i] {
			t.Errorf("artifact %d is %q, want %q", i, r.ID, wantIDs[i])
		}
		if len(r.Text) < 40 {
			t.Errorf("%s rendered suspiciously short output", r.ID)
		}
		if _, err := ByID(r.ID); err != nil {
			t.Errorf("ByID(%q): %v", r.ID, err)
		}
	}
}
