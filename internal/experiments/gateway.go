package experiments

// The multi-gateway experiment (X5): the routing subsystem's benchmark
// scenario. A 3-cluster bridged topology — two SCI islands and a Myrinet
// island with NO common network, chained by two point-to-point TCP
// bridges — exercises everything the cost-model router added: multi-hop
// forwarded routes, gateway-aware leader election, pipelined relaying,
// and gateway load accounting.

import (
	"fmt"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// gatewayTopo is the bridged 3-cluster topology (ranks 0-8). The bridge
// endpoints a2, b1, b2, c1 are the gateways; rank numbering makes the
// lowest-rank leader convention pick non-gateway leaders, so the
// gateway-aware election has real work to do.
func gatewayTopo() cluster.Topology {
	return cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "a0", Procs: 1}, {Name: "a1", Procs: 1}, {Name: "a2", Procs: 1},
			{Name: "b0", Procs: 1}, {Name: "b1", Procs: 1}, {Name: "b2", Procs: 1},
			{Name: "c0", Procs: 1}, {Name: "c1", Procs: 1}, {Name: "c2", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"a0", "a1", "a2"}},
			{Name: "sciB", Protocol: "sisci", Nodes: []string{"b0", "b1", "b2"}},
			{Name: "myriC", Protocol: "bip", Nodes: []string{"c0", "c1", "c2"}},
			{Name: "gwAB", Protocol: "tcp", Nodes: []string{"a2", "b1"}},
			{Name: "gwBC", Protocol: "tcp", Nodes: []string{"b2", "c1"}},
		},
		Forwarding: true,
	}
}

// gatewayRun executes iters repetitions of op between bracketing
// barriers on a fresh session and returns rank 0's per-operation time,
// the total gateway-relayed messages in the measurement window (opening
// barrier exit to closing barrier exit), and the session's relay stats.
// op == nil runs the window empty — the baseline whose relays belong to
// the barriers themselves.
func gatewayRun(topo cluster.Topology, mode mpi.CollMode, iters, size int,
	op func(comm *mpi.Comm, size int) error) (vtime.Duration, uint64, []stats.RelayStat, error) {
	sess, err := cluster.Build(topo)
	if err != nil {
		return 0, 0, nil, err
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	forwards := func() uint64 {
		var total uint64
		for _, rk := range sess.Ranks {
			total += rk.ChMad.NForwarded
		}
		return total
	}
	var perOp vtime.Duration
	var relayed uint64
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		var before uint64
		if rank == 0 {
			before = forwards()
		}
		start := sess.S.Now()
		if op != nil {
			for i := 0; i < iters; i++ {
				if err := op(comm, size); err != nil {
					return err
				}
			}
		}
		if rank == 0 {
			perOp = sess.S.Now().Sub(start) / vtime.Duration(iters)
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			relayed = forwards() - before
		}
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return perOp, relayed, sess.RelayStats(), nil
}

// gatewayColl measures one collective's per-operation time on the
// bridged topology and the gateway-relayed message count per operation.
// The relay count of an identical empty window (the bracketing barriers'
// own gateway traffic) is subtracted, so the hop series reports what the
// operation itself costs.
func gatewayColl(topo cluster.Topology, mode mpi.CollMode, sizes []int,
	op func(comm *mpi.Comm, size int) error) (*stats.Series, map[int]uint64, []stats.RelayStat, error) {
	const iters = 3
	s := &stats.Series{}
	hops := make(map[int]uint64)
	var relays []stats.RelayStat
	_, base, _, err := gatewayRun(topo, mode, iters, 0, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, size := range sizes {
		perOp, relayed, rs, err := gatewayRun(topo, mode, iters, size, op)
		if err != nil {
			return nil, nil, nil, err
		}
		s.Add(size, perOp)
		hops[size] = (relayed - base) / iters
		if size == sizes[len(sizes)-1] {
			relays = rs
		}
	}
	return s, hops, relays, nil
}

// GatewayCollectives (X5) benchmarks the bridged 3-cluster topology:
// flat, gateway-aware two-level and leader-oblivious two-level Bcast and
// Allreduce (virtual time and gateway hops per operation), plus the
// pipelined-vs-store-and-forward relay comparison on the longest routed
// pair (a0 -> c2, four gateways). The *_gw two-level series must beat
// flat past 64 KiB and the gateway-aware leaders must relay strictly
// fewer messages than the oblivious ones — both gated by cmd/benchcheck.
func GatewayCollectives() (*Result, error) {
	sizes := []int{8, 4 << 10, 64 << 10, 256 << 10}
	bcast := func(comm *mpi.Comm, size int) error {
		buf := make([]byte, size)
		return comm.Bcast(buf, size, mpi.Byte, 0)
	}
	allreduce := func(comm *mpi.Comm, size int) error {
		in := make([]byte, size)
		out := make([]byte, size)
		return comm.Allreduce(in, out, size, mpi.Byte, mpi.OpMax)
	}
	aware := gatewayTopo()
	naive := gatewayTopo()
	naive.ObliviousLeaders = true

	type bench struct {
		name string
		topo cluster.Topology
		mode mpi.CollMode
		op   func(comm *mpi.Comm, size int) error
	}
	benches := []bench{
		{"Bcast_flat_gw", aware, mpi.CollFlat, bcast},
		{"Bcast_2level_gw", aware, mpi.CollHier, bcast},
		{"Bcast_2level_gwnaive", naive, mpi.CollHier, bcast},
		{"Allreduce_flat_gw", aware, mpi.CollFlat, allreduce},
		{"Allreduce_2level_gw", aware, mpi.CollHier, allreduce},
		{"Allreduce_2level_gwnaive", naive, mpi.CollHier, allreduce},
	}
	var series []*stats.Series
	hopRows := make(map[string]map[int]uint64)
	var awareRelays []stats.RelayStat
	for _, bm := range benches {
		s, hops, relays, err := gatewayColl(bm.topo, bm.mode, sizes, bm.op)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bm.name, err)
		}
		s.Name = bm.name
		series = append(series, s)
		hopRows[bm.name] = hops
		if bm.name == "Bcast_2level_gw" {
			awareRelays = relays
		}
		if bm.mode == mpi.CollHier {
			// Gateway hops as a series of their own: the acceptance
			// criterion ("aware crosses strictly fewer gateway hops than
			// oblivious") rides the same regression gate as the timings.
			// The point value is a message count, not microseconds.
			hs := &stats.Series{Name: "GwHops_" + bm.name}
			for _, size := range sizes {
				hs.Add(size, vtime.Duration(hops[size])*vtime.Microsecond)
			}
			series = append(series, hs)
		}
	}

	// Relay pipelining on the longest routed pair: a0 (rank 0) to c2
	// (rank 8) crosses all four gateways.
	relaySizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20}
	relaySeries := func(name string, pipelined bool) (*stats.Series, error) {
		s := &stats.Series{Name: name}
		for _, size := range relaySizes {
			sess, err := cluster.Build(gatewayTopo())
			if err != nil {
				return nil, err
			}
			if !pipelined {
				for _, rk := range sess.Ranks {
					rk.ChMad.RelayPipelining = false
				}
			}
			size := size
			var oneWay vtime.Duration
			err = sess.Run(func(rank int, comm *mpi.Comm) error {
				buf := make([]byte, size)
				const iters = 2
				switch rank {
				case 0:
					start := sess.S.Now()
					for i := 0; i < iters; i++ {
						if err := comm.Send(buf, size, mpi.Byte, 8, 1); err != nil {
							return err
						}
						if _, err := comm.Recv(buf, size, mpi.Byte, 8, 1); err != nil {
							return err
						}
					}
					oneWay = sess.S.Now().Sub(start) / (2 * iters)
				case 8:
					for i := 0; i < iters; i++ {
						if _, err := comm.Recv(buf, size, mpi.Byte, 0, 1); err != nil {
							return err
						}
						if err := comm.Send(buf, size, mpi.Byte, 0, 1); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			s.Add(size, oneWay)
		}
		return s, nil
	}
	piped, err := relaySeries("Relay_pipelined", true)
	if err != nil {
		return nil, err
	}
	stored, err := relaySeries("Relay_storefwd", false)
	if err != nil {
		return nil, err
	}
	series = append(series, piped, stored)

	res := render("gateway",
		"Extension X5: cost-model routing on a bridged 3-cluster topology (2 TCP bridges, no common network)",
		'a', series)

	var b strings.Builder
	b.WriteString(res.Text)
	b.WriteString("\nGateway hops per operation (relayed messages, 64K payload):\n")
	fmt.Fprintf(&b, "%-26s %14s\n", "series", "gateway hops")
	for _, bm := range benches {
		fmt.Fprintf(&b, "%-26s %14d\n", bm.name, hopRows[bm.name][64<<10])
	}
	b.WriteString("\n")
	b.WriteString(stats.RelayTable(
		"Gateway load, two-level Bcast at 256K (gateway-aware leaders)", awareRelays))
	res.Text = b.String()
	return res, nil
}
