package netsim

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/vtime"
)

// testNet builds a two-node network with simple round numbers:
// 10us wire latency, 100 MB/s (decimal 1e8) bandwidth.
func testNet(s *vtime.Scheduler) (*Network, *Endpoint, *Endpoint) {
	p := Params{
		Protocol:    "test",
		WireLatency: 10 * vtime.Microsecond,
		Bandwidth:   1e8,
	}
	n := NewNetwork(s, "testnet", p)
	a := n.Attach("a")
	b := n.Attach("b")
	return n, a, b
}

func TestDeliveryTiming(t *testing.T) {
	s := vtime.New()
	_, a, b := testNet(s)
	var arrived vtime.Time
	var got *Packet
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(p *Packet) { arrived = s.Now(); rx.Push(p) }
	s.Go("sender", func() {
		pkt := &Packet{Dst: "b", Header: make([]byte, 1000)} // 10us tx at 1e8 B/s
		if err := a.Send(pkt); err != nil {
			t.Error(err)
		}
	})
	s.Go("receiver", func() { got = rx.Pop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// tx 10us + latency 10us = 20us.
	if arrived != vtime.Time(20*vtime.Microsecond) {
		t.Fatalf("arrived at %v, want 20us", arrived)
	}
	if got.Src != "a" || got.SentAt != 0 || got.ArriveAt != arrived {
		t.Fatalf("packet metadata wrong: %+v", got)
	}
}

func TestPipeSerialization(t *testing.T) {
	// Two back-to-back packets must serialize on the wire: second
	// arrival = 2*tx + latency.
	s := vtime.New()
	_, a, b := testNet(s)
	var arrivals []vtime.Time
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(p *Packet) { arrivals = append(arrivals, s.Now()); rx.Push(p) }
	s.Go("sender", func() {
		for i := 0; i < 2; i++ {
			a.Send(&Packet{Dst: "b", Header: make([]byte, 1000)})
		}
	})
	s.Go("receiver", func() { rx.Pop(); rx.Pop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []vtime.Time{vtime.Time(20 * vtime.Microsecond), vtime.Time(30 * vtime.Microsecond)}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestDistinctPairsDoNotSerialize(t *testing.T) {
	s := vtime.New()
	p := Params{WireLatency: 10 * vtime.Microsecond, Bandwidth: 1e8}
	n := NewNetwork(s, "net", p)
	a, b, c := n.Attach("a"), n.Attach("b"), n.Attach("c")
	var tb, tc vtime.Time
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(p *Packet) { tb = s.Now(); rx.Push(p) }
	c.OnDeliver = func(p *Packet) { tc = s.Now(); rx.Push(p) }
	s.Go("sender", func() {
		a.Send(&Packet{Dst: "b", Header: make([]byte, 1000)})
		a.Send(&Packet{Dst: "c", Header: make([]byte, 1000)})
	})
	s.Go("receiver", func() { rx.Pop(); rx.Pop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Separate directed pipes: both arrive at 20us. (A per-NIC TX
	// serialization refinement would stagger these; the model keeps
	// per-pair pipes, which is what Madeleine connections map onto.)
	if tb != tc {
		t.Fatalf("tb=%v tc=%v, want equal", tb, tc)
	}
}

// TestTrunkContention: with an aggregate-bandwidth cap equal to the
// per-pair rate, two concurrent transfers on distinct pipes serialize at
// the shared trunk and take ~2x the solo time, and the contention counters
// record the queueing.
func TestTrunkContention(t *testing.T) {
	run := func(capped bool, pairs int) (last vtime.Time, stats Stats) {
		s := vtime.New()
		p := Params{WireLatency: 10 * vtime.Microsecond, Bandwidth: 1e8}
		if capped {
			p.NetworkBandwidth = 1e8
		}
		n := NewNetwork(s, "net", p)
		src := n.Attach("src")
		rx := vtime.NewQueue[*Packet](s, "rx")
		for i := 0; i < pairs; i++ {
			dst := n.Attach(fmt.Sprintf("d%d", i))
			dst.OnDeliver = func(pk *Packet) {
				if s.Now() > last {
					last = s.Now()
				}
				rx.Push(pk)
			}
		}
		s.Go("sender", func() {
			for i := 0; i < pairs; i++ {
				src.Send(&Packet{Dst: fmt.Sprintf("d%d", i), Header: make([]byte, 1000)}) // 10us tx
			}
		})
		s.Go("receiver", func() {
			for i := 0; i < pairs; i++ {
				rx.Pop()
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last, n.Stats
	}

	solo, _ := run(true, 1) // 10us tx + 10us latency
	if solo != vtime.Time(20*vtime.Microsecond) {
		t.Fatalf("solo capped transfer finished at %v, want 20us", solo)
	}
	dual, stats := run(true, 2) // second packet queues 10us at the trunk
	if dual != vtime.Time(30*vtime.Microsecond) {
		t.Fatalf("two capped transfers finished at %v, want 30us (~2x the 10us solo tx)", dual)
	}
	if stats.TrunkQueueDelay != 10*vtime.Microsecond {
		t.Fatalf("TrunkQueueDelay = %v, want 10us", stats.TrunkQueueDelay)
	}
	if stats.TrunkPeak != 2 {
		t.Fatalf("TrunkPeak = %d, want 2", stats.TrunkPeak)
	}
	// Uncapped control: the same two transfers ride private pipes.
	free, fstats := run(false, 2)
	if free != vtime.Time(20*vtime.Microsecond) {
		t.Fatalf("uncapped transfers finished at %v, want 20us", free)
	}
	if fstats.TrunkQueueDelay != 0 || fstats.TrunkPeak != 0 {
		t.Fatalf("uncapped network recorded trunk stats: %+v", fstats)
	}
}

// TestTrunkSlowerThanPipes: a trunk capacity below the per-pair rate also
// bounds each packet's serialization time.
func TestTrunkSlowerThanPipes(t *testing.T) {
	s := vtime.New()
	p := Params{WireLatency: 10 * vtime.Microsecond, Bandwidth: 1e8, NetworkBandwidth: 5e7}
	n := NewNetwork(s, "net", p)
	a := n.Attach("a")
	b := n.Attach("b")
	var arrived vtime.Time
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(pk *Packet) { arrived = s.Now(); rx.Push(pk) }
	s.Go("sender", func() {
		a.Send(&Packet{Dst: "b", Header: make([]byte, 1000)}) // 20us at 5e7 B/s
	})
	s.Go("receiver", func() { rx.Pop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != vtime.Time(30*vtime.Microsecond) {
		t.Fatalf("arrived at %v, want 30us (20us trunk-rate tx + 10us latency)", arrived)
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	s := vtime.New()
	_, a, _ := testNet(s)
	s.Go("sender", func() {
		if err := a.Send(&Packet{Dst: "nope"}); err == nil {
			t.Error("want error for unknown endpoint")
		}
		if err := a.Send(&Packet{Dst: "a"}); err == nil {
			t.Error("want error for self-send")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDropEvery(t *testing.T) {
	s := vtime.New()
	n, a, b := testNet(s)
	n.SetFaults(Faults{DropEvery: 3})
	delivered := 0
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(p *Packet) { delivered++; rx.Push(p) }
	s.Go("sender", func() {
		for i := 0; i < 9; i++ {
			a.Send(&Packet{Dst: "b", Header: []byte{1}})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 6; i++ {
			rx.Pop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 6 {
		t.Fatalf("delivered = %d, want 6 (3 of 9 dropped)", delivered)
	}
	if n.Stats.Dropped != 3 {
		t.Fatalf("Stats.Dropped = %d, want 3", n.Stats.Dropped)
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	s := vtime.New()
	n, a, b := testNet(s)
	n.SetFaults(Faults{JitterPct: 80, Seed: 42})
	var seqs []uint64
	last := vtime.Time(-1)
	rx := vtime.NewQueue[*Packet](s, "rx")
	b.OnDeliver = func(p *Packet) {
		seqs = append(seqs, p.Seq)
		if s.Now() < last {
			t.Error("arrival time ran backwards")
		}
		last = s.Now()
		rx.Push(p)
	}
	s.Go("sender", func() {
		for i := 0; i < 50; i++ {
			a.Send(&Packet{Dst: "b", Header: []byte{byte(i)}})
			s.Sleep(vtime.Microsecond)
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 50; i++ {
			rx.Pop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 50 {
		t.Fatalf("delivered %d, want 50", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("packets reordered despite in-order guarantee: %v", seqs)
		}
	}
}

func TestJitterDeterministic(t *testing.T) {
	run := func() []vtime.Time {
		s := vtime.New()
		n, a, b := testNet(s)
		n.SetFaults(Faults{JitterPct: 50, Seed: 7})
		var arr []vtime.Time
		rx := vtime.NewQueue[*Packet](s, "rx")
		b.OnDeliver = func(p *Packet) { arr = append(arr, s.Now()); rx.Push(p) }
		s.Go("sender", func() {
			for i := 0; i < 10; i++ {
				a.Send(&Packet{Dst: "b", Header: []byte{1}})
				s.Sleep(50 * vtime.Microsecond)
			}
		})
		s.Go("receiver", func() {
			for i := 0; i < 10; i++ {
				rx.Pop()
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arr
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("jitter nondeterministic at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestTxTimeAndCopyTime(t *testing.T) {
	p := Params{Bandwidth: 1e8, CopyBandwidth: 2e8}
	if got := p.TxTime(1e8); got != vtime.Second {
		t.Fatalf("TxTime = %v, want 1s", got)
	}
	if got := p.CopyTime(2e8); got != vtime.Second {
		t.Fatalf("CopyTime = %v, want 1s", got)
	}
	if p.TxTime(0) != 0 || p.CopyTime(-1) != 0 {
		t.Fatal("zero/negative sizes must cost nothing")
	}
	if (&Params{}).TxTime(100) != 0 {
		t.Fatal("zero bandwidth must cost nothing (infinite-speed placeholder)")
	}
}

func TestPresetsSane(t *testing.T) {
	for _, name := range []string{"tcp", "sisci", "bip", "shm", "self"} {
		p, ok := ByProtocol(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if p.Bandwidth <= 0 || p.WireLatency < 0 || p.SwitchPoint <= 0 {
			t.Fatalf("preset %q has nonsense values: %+v", name, p)
		}
	}
	if _, ok := ByProtocol("quantum"); ok {
		t.Fatal("unknown protocol must not resolve")
	}
	// Aliases.
	if p, _ := ByProtocol("sci"); p.Protocol != "sisci" {
		t.Fatal("sci alias broken")
	}
	if p, _ := ByProtocol("myrinet"); p.Protocol != "bip" {
		t.Fatal("myrinet alias broken")
	}
}

func TestPresetLatencyTargets(t *testing.T) {
	// The one-way small-message time (send + wire + recv) must match the
	// paper's Table 1 raw latencies.
	// The sum of static overheads sits slightly below the Table 1
	// latencies; the remainder comes from header serialization and
	// polling interference measured by the end-to-end calibration tests
	// (madeleine.TestTable1RawLatency, core.TestTable2Latencies).
	cases := []struct {
		p    Params
		want float64 // us
		tol  float64
	}{
		{FastEthernetTCP(), 117, 1},
		{SCISISCI(), 4.5, 0.2},
		{MyrinetBIP(), 9.2, 0.2},
	}
	for _, c := range cases {
		got := (c.p.SendOverhead + c.p.WireLatency + c.p.RecvOverhead).Micros()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s: one-way latency %.2fus, want %.1f±%.1f", c.p.Network, got, c.want, c.tol)
		}
	}
}

// Property: for any payload sizes, arrival order on one directed pair
// equals send order, and each arrival >= send + tx + 0.
func TestInOrderProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		s := vtime.New()
		_, a, b := testNet(s)
		var order []uint64
		ok := true
		rx := vtime.NewQueue[*Packet](s, "rx")
		b.OnDeliver = func(p *Packet) {
			order = append(order, p.Seq)
			if p.ArriveAt < p.SentAt {
				ok = false
			}
			rx.Push(p)
		}
		s.Go("sender", func() {
			for _, sz := range sizes {
				a.Send(&Packet{Dst: "b", Header: make([]byte, int(sz)%4096)})
			}
		})
		want := len(sizes)
		s.Go("receiver", func() {
			for i := 0; i < want; i++ {
				rx.Pop()
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(order) != len(sizes) {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] <= order[i-1] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
