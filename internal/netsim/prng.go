package netsim

// PRNG is the simulator's only randomness source: an explicitly seeded
// splitmix64 stream. Simulation packages must not touch math/rand — the
// global generator is process-wide mutable state that makes two runs of
// the same experiment diverge as soon as anything else draws from it
// (madlint/determinism enforces the ban). A PRNG's sequence depends on
// nothing but its seed, so fault jitter is bit-identical across runs and
// across unrelated code changes.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with seed (any value is fine,
// including zero).
func NewPRNG(seed int64) *PRNG {
	return &PRNG{state: uint64(seed)}
}

// next64 advances the splitmix64 stream (Steele et al., the generator
// Go's runtime and rand v2 use for seeding).
func (p *PRNG) next64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n), n > 0. The modulo bias at
// simulation-size bounds (jitter spans of microseconds) is far below the
// cost model's own fidelity, so plain reduction keeps it simple.
func (p *PRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("netsim: PRNG.Int63n with non-positive bound")
	}
	return int64(p.next64() % uint64(n))
}
