// Package netsim is the simulated network fabric substituting for the
// paper's physical hardware (Fast-Ethernet + TCP, Dolphin SCI + SISCI,
// Myrinet + BIP). Each protocol is a calibrated LogGP-style cost model;
// payload bytes genuinely move through simulated NIC pipes, and only time
// is virtual. See DESIGN.md §2 for the substitution rationale.
package netsim

import "mpichmad/internal/vtime"

// MB is the paper's megabyte: "All results are expressed in Megabytes
// where 1 MB represents 2^20 bytes."
const MB = 1 << 20

// Params is the calibrated cost model of one protocol/network pair.
// The constants below are derived from Table 1, Table 2 and §5.2–§5.4 of
// the paper (see DESIGN.md §4 "Calibration constants").
type Params struct {
	// Protocol is the low-level API name: "tcp", "sisci", "bip", "shm",
	// "self".
	Protocol string
	// Network is the hardware name: "Fast-Ethernet", "SCI", "Myrinet".
	Network string

	// WireLatency is the one-way propagation + NIC traversal time.
	WireLatency vtime.Duration
	// Bandwidth is the sustained wire bandwidth in bytes/second.
	Bandwidth float64
	// NetworkBandwidth, when positive, is the network's aggregate capacity
	// in bytes/second shared by ALL directed pipes: every packet must also
	// reserve the shared trunk (FIFO, in injection order), so concurrent
	// transfers on different pipes queue behind each other instead of each
	// enjoying a private full-rate link. Zero keeps the historical
	// per-pair-pipe model (infinite aggregate capacity). Setting it to
	// Bandwidth models a single shared backbone segment — the
	// cluster-of-clusters inter-cluster link the two-level collectives are
	// designed around.
	NetworkBandwidth float64
	// SendOverhead is the CPU cost to inject one packet (syscall, PIO
	// setup, DMA descriptor, ...).
	SendOverhead vtime.Duration
	// RecvOverhead is the CPU cost to extract one delivered packet.
	RecvOverhead vtime.Duration

	// ExtraPackCost is the CPU cost of each pack/unpack operation beyond
	// the first in a Madeleine message (§5.2: 21 us on TCP, §5.3:
	// 6.5 us on SISCI, §5.4: 4.5 us on BIP). The first pack's cost is
	// folded into SendOverhead, matching the paper's raw baselines.
	ExtraPackCost vtime.Duration

	// CopyBandwidth is the effective memcpy rate (bytes/s) through this
	// driver's intermediate buffers, used whenever a protocol path
	// copies (eager receive, socket buffers, shared-memory segments).
	CopyBandwidth float64

	// AggLimit is the maximum number of payload bytes the driver
	// coalesces into a header packet before using a separate body
	// packet.
	AggLimit int

	// PollCost and PollInterval describe the protocol's polling
	// discipline (see marcel.PollSpec). TCP's expensive select is the
	// source of the Fig. 9 multi-protocol interference.
	PollCost     vtime.Duration
	PollInterval vtime.Duration

	// DeviceHandling is the per-message ch_mad handling overhead
	// (polling-thread dispatch, queue management, semaphore wakeup):
	// §5.2: 7 us TCP, §5.3: 8.5 us SCI, §5.4: 6.5 us BIP.
	DeviceHandling vtime.Duration

	// SwitchPoint is the network's native eager->rendez-vous threshold
	// in bytes (§4.2.2: 64 KB TCP, 8 KB SCI, 7 KB BIP).
	SwitchPoint int

	// LargeMsgPenalty is an extra per-message driver cost for messages
	// larger than LargeMsgLimit. Models BIP's internal small/large
	// message boundary, which the paper blames for "the particular
	// point for 1 KB-messages on the ch_mad curve" (§5.4).
	LargeMsgLimit   int
	LargeMsgPenalty vtime.Duration
}

// TxTime returns the wire serialization time for n payload bytes.
func (p *Params) TxTime(n int) vtime.Duration {
	if n <= 0 || p.Bandwidth <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / p.Bandwidth * float64(vtime.Second))
}

// TrunkTime returns the shared-trunk occupancy time for n payload bytes,
// zero when no aggregate capacity is configured.
func (p *Params) TrunkTime(n int) vtime.Duration {
	if n <= 0 || p.NetworkBandwidth <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / p.NetworkBandwidth * float64(vtime.Second))
}

// CopyTime returns the CPU time to memcpy n bytes through the driver's
// buffers.
func (p *Params) CopyTime(n int) vtime.Duration {
	if n <= 0 || p.CopyBandwidth <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / p.CopyBandwidth * float64(vtime.Second))
}

// PollSpecTuple returns the protocol's poll cost and interval.
func (p *Params) PollSpecTuple() (cost, interval vtime.Duration) {
	return p.PollCost, p.PollInterval
}

// LatencyBandwidth returns the link's headline cost pair — one-way
// latency in microseconds and sustained bandwidth in paper MB/s — the
// quantities the collective tuning table reasons about.
func (p *Params) LatencyBandwidth() (latUS, bwMBs float64) {
	return p.WireLatency.Micros(), p.Bandwidth / MB
}

// PipelineSegment recommends a segment size for store-and-forward
// pipelining (segmented broadcast, gateway relaying) over this link:
// large enough that the per-segment fixed costs (wire latency, injection
// and extraction overheads, device handling) stay under ~10% of the
// segment's serialization time, clamped to [4 KB, SwitchPoint] so
// segments stay on the eager path.
func (p *Params) PipelineSegment() int {
	fixed := p.WireLatency + p.SendOverhead + p.RecvOverhead + p.DeviceHandling
	seg := int(10 * fixed.Seconds() * p.Bandwidth)
	if seg < 4<<10 {
		seg = 4 << 10
	}
	if p.SwitchPoint > 0 && seg > p.SwitchPoint {
		seg = p.SwitchPoint
	}
	return seg
}

// FastEthernetTCP returns the calibrated TCP / Fast-Ethernet model.
// Targets (paper): raw Madeleine latency 121 us, bandwidth 11.2 MB/s;
// ch_mad latency 148 us (4 B), 130 us (0 B); ch_p4 ceiling ~10 MB/s.
func FastEthernetTCP() Params {
	return Params{
		Protocol:       "tcp",
		Network:        "Fast-Ethernet",
		WireLatency:    vtime.Microseconds(57),
		Bandwidth:      11.2 * MB,
		SendOverhead:   vtime.Microseconds(30),
		RecvOverhead:   vtime.Microseconds(30),
		ExtraPackCost:  vtime.Microseconds(21),
		CopyBandwidth:  187 * MB,
		AggLimit:       1460, // one ethernet MSS coalesced with the header
		PollCost:       vtime.Microseconds(8),
		PollInterval:   vtime.Microseconds(25),
		DeviceHandling: vtime.Microseconds(7),
		SwitchPoint:    64 << 10,
	}
}

// SCISISCI returns the calibrated SISCI / SCI (Dolphin D310) model.
// Targets: raw latency 4.5 us, bandwidth 82.6 MB/s; ch_mad 13 us (0 B),
// 20 us (4 B), 82.5 MB/s (8 MB); switch point 8 KB.
func SCISISCI() Params {
	return Params{
		Protocol:       "sisci",
		Network:        "SCI",
		WireLatency:    vtime.Microseconds(2.0),
		Bandwidth:      82.6 * MB,
		SendOverhead:   vtime.Microseconds(1.2),
		RecvOverhead:   vtime.Microseconds(1.3),
		ExtraPackCost:  vtime.Microseconds(6.5),
		CopyBandwidth:  350 * MB,
		AggLimit:       64, // PIO write coalescing window
		PollCost:       vtime.Microseconds(0.3),
		PollInterval:   0, // cheap cache-coherent flag poll: wake-on-arrival
		DeviceHandling: vtime.Microseconds(8.5),
		SwitchPoint:    8 << 10,
	}
}

// MyrinetBIP returns the calibrated BIP / Myrinet (LANai 4.3) model.
// Targets: raw latency 9.2 us, bandwidth 122 MB/s raw / 115 MB/s via MPI;
// ch_mad 16.9 us (0 B), 18.9 us (4 B); switch point 7 KB; 1 KB dip from
// BIP's internal small-message boundary.
func MyrinetBIP() Params {
	return Params{
		Protocol:        "bip",
		Network:         "Myrinet",
		WireLatency:     vtime.Microseconds(4.2),
		Bandwidth:       122 * MB,
		SendOverhead:    vtime.Microseconds(2.5),
		RecvOverhead:    vtime.Microseconds(2.5),
		ExtraPackCost:   vtime.Microseconds(4.5),
		CopyBandwidth:   350 * MB,
		AggLimit:        128,
		PollCost:        vtime.Microseconds(0.4),
		PollInterval:    0,
		DeviceHandling:  vtime.Microseconds(6.5),
		SwitchPoint:     7 << 10,
		LargeMsgLimit:   1 << 10,
		LargeMsgPenalty: vtime.Microseconds(18),
	}
}

// SharedMemory returns the smp_plug intra-node model: two memcpy passes
// through a shared segment on a dual-PII 450.
func SharedMemory() Params {
	return Params{
		Protocol:       "shm",
		Network:        "intra-node",
		WireLatency:    vtime.Microseconds(0.8),
		Bandwidth:      175 * MB, // in-copy + out-copy of a 350 MB/s memcpy
		SendOverhead:   vtime.Microseconds(0.5),
		RecvOverhead:   vtime.Microseconds(0.5),
		ExtraPackCost:  vtime.Microseconds(0.3),
		CopyBandwidth:  350 * MB,
		AggLimit:       4096,
		PollCost:       vtime.Microseconds(0.2),
		PollInterval:   0,
		DeviceHandling: vtime.Microseconds(1.0),
		SwitchPoint:    16 << 10,
	}
}

// Loopback returns the ch_self intra-process model: one memcpy.
func Loopback() Params {
	return Params{
		Protocol:       "self",
		Network:        "intra-process",
		WireLatency:    vtime.Microseconds(0.1),
		Bandwidth:      350 * MB,
		SendOverhead:   vtime.Microseconds(0.2),
		RecvOverhead:   vtime.Microseconds(0.2),
		CopyBandwidth:  350 * MB,
		AggLimit:       1 << 30,
		DeviceHandling: vtime.Microseconds(0.5),
		SwitchPoint:    1 << 30, // always eager: no remote side to rendez-vous with
	}
}

// ByProtocol returns the preset for a protocol name, ok=false if unknown.
func ByProtocol(name string) (Params, bool) {
	switch name {
	case "tcp":
		return FastEthernetTCP(), true
	case "sisci", "sci":
		return SCISISCI(), true
	case "bip", "myrinet":
		return MyrinetBIP(), true
	case "shm":
		return SharedMemory(), true
	case "self":
		return Loopback(), true
	}
	return Params{}, false
}
