package netsim

import (
	"fmt"
	"sort"

	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// Packet is one unit of transfer on a simulated link. Header bytes were
// coalesced/copied by the sender (aggregation buffer); Body bytes are the
// bulk payload, which may have been snapshotted without a time charge to
// model zero-copy injection (DMA from user memory).
type Packet struct {
	Src, Dst string // endpoint node names
	Kind     int    // driver/device-defined discriminator
	Header   []byte
	Body     []byte
	Meta     interface{} // device-defined out-of-band data

	Seq      uint64
	SentAt   vtime.Time
	ArriveAt vtime.Time
}

// WireSize returns the number of bytes the packet occupies on the wire.
func (p *Packet) WireSize() int { return len(p.Header) + len(p.Body) }

// Faults configures deterministic fault injection on a network, used by
// reliability tests. The zero value injects nothing.
type Faults struct {
	// DropEvery drops every Nth packet (1-based count) when > 0.
	DropEvery int
	// JitterPct adds up to ±JitterPct% of WireLatency of deterministic
	// pseudo-random jitter to each delivery. In-order delivery per
	// directed pair is still enforced (packets never overtake).
	JitterPct int
	// Seed seeds the jitter PRNG (default 1).
	Seed int64
}

// Stats aggregates per-network traffic counters.
type Stats struct {
	Packets    uint64
	Bytes      uint64
	Dropped    uint64
	MaxInlight int

	// TrunkQueueDelay accumulates, over all packets, the time each spent
	// waiting for the shared trunk behind traffic of *other* pipes (only
	// meaningful when Params.NetworkBandwidth > 0). Pure contention cost:
	// a packet's own serialization and its pipe's in-order backlog are not
	// counted.
	TrunkQueueDelay vtime.Duration
	// TrunkPeak is the peak number of packets simultaneously occupying or
	// waiting for the shared trunk.
	TrunkPeak int
}

// Network is one protocol domain (e.g. "the SCI fabric"): a set of
// endpoints with full pairwise connectivity, a shared cost model, and
// per-directed-pair FIFO pipes.
type Network struct {
	S      *vtime.Scheduler
	Name   string
	Params Params
	Faults Faults

	endpoints map[string]*Endpoint
	pipes     map[[2]string]*pipe
	seq       uint64
	rng       *PRNG
	Stats     Stats

	// Trace, when set, records trunk-contention events on TraceTrack
	// (the network's own Chrome track); Metrics accumulates per-node
	// trunk wait time. Both nil-safe; set by the cluster wiring.
	Trace      *trace.Tracer
	TraceTrack int
	Metrics    *trace.Registry

	// Shared-trunk arbiter state (Params.NetworkBandwidth > 0): the trunk
	// is a single FIFO resource every packet must reserve, in injection
	// order, before its pipe serialization can complete. trunkEnds holds
	// the completion times of packets still in or waiting for the trunk —
	// monotone, because reservations are FIFO — as a head-index ring:
	// live entries are trunkEnds[trunkHead:], the finished front is pruned
	// incrementally by advancing trunkHead at Send time (no per-packet
	// callback, no reslicing that strands the backing array), and the dead
	// prefix is compacted once it dominates so memory stays bounded by the
	// peak trunk occupancy rather than the total packet count.
	trunkBusyUntil vtime.Time
	trunkEnds      []vtime.Time
	trunkHead      int
}

// trunkOccupancy prunes completed reservations off the front of the ring
// and returns the number of packets still in or waiting for the trunk.
func (n *Network) trunkOccupancy() int {
	for n.trunkHead < len(n.trunkEnds) && n.trunkEnds[n.trunkHead] <= n.S.Now() {
		n.trunkHead++
	}
	if n.trunkHead == len(n.trunkEnds) {
		n.trunkEnds, n.trunkHead = n.trunkEnds[:0], 0
	} else if n.trunkHead >= 64 && n.trunkHead > len(n.trunkEnds)-n.trunkHead {
		m := copy(n.trunkEnds, n.trunkEnds[n.trunkHead:])
		n.trunkEnds, n.trunkHead = n.trunkEnds[:m], 0
	}
	return len(n.trunkEnds) - n.trunkHead
}

// NewNetwork creates a network with the given cost model.
func NewNetwork(s *vtime.Scheduler, name string, p Params) *Network {
	return &Network{
		S:         s,
		Name:      name,
		Params:    p,
		endpoints: make(map[string]*Endpoint),
		pipes:     make(map[[2]string]*pipe),
	}
}

// SetFaults installs a fault plan (tests only). The jitter stream is a
// self-contained seeded PRNG: two networks with equal seeds produce
// identical jitter no matter what else the process does.
func (n *Network) SetFaults(f Faults) {
	n.Faults = f
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	n.rng = NewPRNG(seed)
}

// pipe models the directed wire between two endpoints: sender-side
// serialization plus in-order arrival enforcement.
type pipe struct {
	busyUntil   vtime.Time
	lastArrival vtime.Time
	count       uint64
}

// Endpoint is one NIC attached to a network. Deliveries invoke OnDeliver
// in scheduler context (it must not block; typically it pushes into a
// vtime.Queue and returns).
type Endpoint struct {
	Net  *Network
	Node string
	// OnDeliver receives each arriving packet at its arrival time.
	OnDeliver func(*Packet)
}

// Attach creates (or returns) the endpoint for a node on this network.
func (n *Network) Attach(node string) *Endpoint {
	if ep, ok := n.endpoints[node]; ok {
		return ep
	}
	ep := &Endpoint{Net: n, Node: node}
	n.endpoints[node] = ep
	return ep
}

// Endpoint returns the endpoint for node, ok=false if not attached.
func (n *Network) Endpoint(node string) (*Endpoint, bool) {
	ep, ok := n.endpoints[node]
	return ep, ok
}

// Nodes returns the attached node names in lexical order, so callers
// iterating the fabric see the same sequence every run.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Send injects pkt onto the wire from ep toward pkt.Dst. The caller has
// already charged any CPU costs (send overhead, copies, packing); Send
// only models wire serialization and propagation, then delivers to the
// destination endpoint's OnDeliver at the arrival instant.
//
// Must be called from task context or an At callback.
func (ep *Endpoint) Send(pkt *Packet) error {
	n := ep.Net
	dst, ok := n.endpoints[pkt.Dst]
	if !ok {
		return fmt.Errorf("netsim: %s: no endpoint %q on network %q", ep.Node, pkt.Dst, n.Name)
	}
	if dst == ep {
		return fmt.Errorf("netsim: %s: self-send on network %q (use the loopback device)", ep.Node, n.Name)
	}
	pkt.Src = ep.Node
	n.seq++
	pkt.Seq = n.seq
	pkt.SentAt = n.S.Now()

	key := [2]string{ep.Node, pkt.Dst}
	pp := n.pipes[key]
	if pp == nil {
		pp = &pipe{}
		n.pipes[key] = pp
	}
	pp.count++

	n.Stats.Packets++
	n.Stats.Bytes += uint64(pkt.WireSize())

	if n.Faults.DropEvery > 0 && pp.count%uint64(n.Faults.DropEvery) == 0 {
		n.Stats.Dropped++
		return nil // silently lost; reliability layers must recover
	}

	txStart := n.S.Now()
	if pp.busyUntil > txStart {
		txStart = pp.busyUntil
	}
	ser := n.Params.TxTime(pkt.WireSize())
	if n.Params.NetworkBandwidth > 0 {
		// Reserve the shared trunk, FIFO in injection order: waiting for
		// other pipes' traffic to clear is the contention cost the
		// per-pair model never charged.
		if n.trunkBusyUntil > txStart {
			wait := vtime.Duration(n.trunkBusyUntil - txStart)
			n.Stats.TrunkQueueDelay += wait
			n.Metrics.Add("trunk.wait.ns", ep.Node, int64(wait))
			if n.Trace != nil {
				n.Trace.Instant(n.TraceTrack, trace.KNet, "trunk.wait", trace.Args{
					Bytes: int64(pkt.WireSize()), Val: int64(wait), Class: ep.Node,
				})
			}
			txStart = n.trunkBusyUntil
		}
		trunkSer := n.Params.TrunkTime(pkt.WireSize())
		if trunkSer > ser {
			ser = trunkSer // a trunk slower than the pipes also bounds the packet
		}
		trunkEnd := txStart.Add(trunkSer)
		n.trunkBusyUntil = trunkEnd
		occ := n.trunkOccupancy() + 1
		n.trunkEnds = append(n.trunkEnds, trunkEnd)
		if occ > n.Stats.TrunkPeak {
			n.Stats.TrunkPeak = occ
			n.Metrics.SetMax("trunk.peak", n.Name, int64(occ))
		}
		if n.Trace != nil {
			n.Trace.Counter(n.TraceTrack, trace.KNet, "trunk.occ", int64(occ))
		}
	}
	txEnd := txStart.Add(ser)
	pp.busyUntil = txEnd

	lat := n.Params.WireLatency
	if n.Faults.JitterPct > 0 && n.rng != nil {
		span := int64(lat) * int64(n.Faults.JitterPct) / 100
		if span > 0 {
			lat += vtime.Duration(n.rng.Int63n(2*span+1) - span)
		}
	}
	arrive := txEnd.Add(lat)
	if arrive < pp.lastArrival {
		arrive = pp.lastArrival // no overtaking on a directed pair
	}
	pp.lastArrival = arrive
	pkt.ArriveAt = arrive

	n.S.At(arrive, func() {
		if dst.OnDeliver == nil {
			panic(fmt.Sprintf("netsim: endpoint %s/%s has no OnDeliver", n.Name, dst.Node))
		}
		dst.OnDeliver(pkt)
	})
	return nil
}
