// Package stats provides the measurement series and formatting used by the
// benchmark harness: message-size sweeps, latency/bandwidth points, and
// table/gnuplot-style rendering matching the paper's figures (§5.1: "all
// results are expressed in Megabytes where 1 MB represents 2^20 bytes").
package stats

import (
	"fmt"
	"sort"
	"strings"

	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// Point is one measurement: one message size, one transfer time.
type Point struct {
	Size   int            // message size in bytes
	OneWay vtime.Duration // one-way transfer time (half round trip)
}

// LatencyUS returns the transfer time in microseconds.
func (p Point) LatencyUS() float64 { return p.OneWay.Micros() }

// BandwidthMBs returns the achieved bandwidth in the paper's MB/s
// (MB = 2^20 bytes).
func (p Point) BandwidthMBs() float64 {
	if p.OneWay <= 0 {
		return 0
	}
	return float64(p.Size) / p.OneWay.Seconds() / netsim.MB
}

// Series is a named curve, as plotted in the paper's figures.
type Series struct {
	Name   string
	Points []Point

	// index maps size -> Points position, rebuilt lazily by At when it
	// falls behind Points, so Table/CSV (one At per size per series) stay
	// linear in the sweep length instead of quadratic. Later duplicates
	// of a size win, matching the old last-append-invisible scan order:
	// the linear scan returned the first match, but sweeps never repeat a
	// size, so the distinction is unobservable in practice.
	index map[int]int
}

// Add appends a measurement.
func (s *Series) Add(size int, oneWay vtime.Duration) {
	s.Points = append(s.Points, Point{Size: size, OneWay: oneWay})
}

// At returns the point for a given size, ok=false if absent.
func (s *Series) At(size int) (Point, bool) {
	if len(s.index) != len(s.Points) {
		s.index = make(map[int]int, len(s.Points))
		for i, p := range s.Points {
			s.index[p.Size] = i
		}
	}
	i, ok := s.index[size]
	if !ok {
		return Point{}, false
	}
	return s.Points[i], true
}

// RelayStat is one gateway's relay load accounting for a session:
// messages and body bytes it forwarded for other ranks, drops broken out
// by reason (a routing hole vs admission-control overflow of the bounded
// queue — distinguishable so CI triage can tell a misconfigured topology
// from a hot gateway), the admission-control activity (deferred bodies,
// busy-nacked rendez-vous requests), and the peak store-and-forward
// queue depth against its configured bound.
type RelayStat struct {
	Name  string
	Msgs  uint64
	Bytes uint64
	// DropsNoRoute counts relayed messages dropped for lack of an onward
	// route; DropsQueueFull counts admission-control drops at a full
	// bounded queue (lossy-eager mode).
	DropsNoRoute   uint64
	DropsQueueFull uint64
	// Deferred counts relayed bodies that waited for a relay credit;
	// BusyNacks counts rendez-vous requests refused (and retried
	// upstream) because the queue was full.
	Deferred  uint64
	BusyNacks uint64
	// QueuePeak is the peak store-and-forward queue depth; Window is the
	// configured credit bound (0 = unbounded). QueuePeak never exceeds a
	// non-zero Window.
	QueuePeak int
	Window    int
	// TrunkWait is the total time this gateway's outbound packets spent
	// queued for a shared backbone trunk behind other pipes' traffic
	// (netsim trunk arbiter, via the session metrics registry): the
	// column that separates a gateway stalled on the wire from one
	// stalled on its own relay queue.
	TrunkWait vtime.Duration
}

// Drops returns the total dropped messages across all reasons.
func (r RelayStat) Drops() uint64 { return r.DropsNoRoute + r.DropsQueueFull }

// RelayTable renders gateway relay accounting as an aligned table.
func RelayTable(title string, rows []RelayStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-18s %10s %14s %12s %10s %9s %10s %11s %12s\n",
		"gateway", "msgs", "bytes", "drop-noroute", "drop-qfull", "deferred", "busy-nack", "queue-peak", "trunk-wait")
	for _, r := range rows {
		peak := fmt.Sprintf("%d", r.QueuePeak)
		if r.Window > 0 {
			peak = fmt.Sprintf("%d/%d", r.QueuePeak, r.Window)
		}
		fmt.Fprintf(&b, "%-18s %10d %14d %12d %10d %9d %10d %11s %10.1fus\n",
			r.Name, r.Msgs, r.Bytes, r.DropsNoRoute, r.DropsQueueFull,
			r.Deferred, r.BusyNacks, peak, r.TrunkWait.Micros())
	}
	return b.String()
}

// Sizes1B1KB is the paper's transfer-time sweep (Figs. 6a/7a/8a x-axis).
func Sizes1B1KB() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// Sizes1B1MB is the paper's bandwidth sweep (Figs. 6b/7b/8b x-axis).
func Sizes1B1MB() []int {
	return []int{1, 4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}

// SizeLabel formats a byte count like the paper's axes (1, 4K, 1M, ...).
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table renders aligned columns: size plus one column per series, using
// render to extract the value (e.g. Point.LatencyUS).
func Table(title, valueHeader string, series []*Series, render func(Point) float64) string {
	sizeSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			sizeSet[p.Size] = true
		}
	}
	sizes := make([]int, 0, len(sizeSet))
	for sz := range sizeSet {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)

	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s)\n", title, valueHeader)
	fmt.Fprintf(&b, "%-10s", "size")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, sz := range sizes {
		fmt.Fprintf(&b, "%-10s", SizeLabel(sz))
		for _, s := range series {
			if p, ok := s.At(sz); ok {
				fmt.Fprintf(&b, " %16.2f", render(p))
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the same data as comma-separated values for plotting.
func CSV(series []*Series, render func(Point) float64) string {
	sizeSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			sizeSet[p.Size] = true
		}
	}
	sizes := make([]int, 0, len(sizeSet))
	for sz := range sizeSet {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	var b strings.Builder
	b.WriteString("size")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, sz := range sizes {
		fmt.Fprintf(&b, "%d", sz)
		for _, s := range series {
			b.WriteByte(',')
			if p, ok := s.At(sz); ok {
				fmt.Fprintf(&b, "%.3f", render(p))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
