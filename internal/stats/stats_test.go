package stats

import (
	"strings"
	"testing"

	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

func TestPointMath(t *testing.T) {
	p := Point{Size: netsim.MB, OneWay: vtime.Second}
	if p.BandwidthMBs() != 1.0 {
		t.Fatalf("bw = %f", p.BandwidthMBs())
	}
	if p.LatencyUS() != 1e6 {
		t.Fatalf("lat = %f", p.LatencyUS())
	}
	if (Point{Size: 1, OneWay: 0}).BandwidthMBs() != 0 {
		t.Fatal("zero time must not divide")
	}
}

func TestSeriesAtAndAdd(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(4, 10*vtime.Microsecond)
	s.Add(8, 20*vtime.Microsecond)
	if p, ok := s.At(8); !ok || p.OneWay != 20*vtime.Microsecond {
		t.Fatal("At lookup broken")
	}
	if _, ok := s.At(99); ok {
		t.Fatal("phantom point")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		1: "1", 512: "512", 1024: "1K", 8192: "8K",
		1 << 20: "1M", 8 << 20: "8M", 1500: "1500",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSweepsShape(t *testing.T) {
	a := Sizes1B1KB()
	if a[0] != 1 || a[len(a)-1] != 1024 {
		t.Fatal("latency sweep bounds")
	}
	b := Sizes1B1MB()
	if b[0] != 1 || b[len(b)-1] != 1<<20 {
		t.Fatal("bandwidth sweep bounds")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("sweep not increasing")
		}
	}
}

func TestRelayTableDropReasons(t *testing.T) {
	rows := []RelayStat{
		{Name: "rank1(gw)", Msgs: 10, Bytes: 4096, DropsNoRoute: 2,
			DropsQueueFull: 3, Deferred: 5, BusyNacks: 1, QueuePeak: 4, Window: 8},
		{Name: "rank2(gw)", Msgs: 7, Bytes: 2048, QueuePeak: 2},
	}
	if rows[0].Drops() != 5 {
		t.Fatalf("total drops = %d, want 5", rows[0].Drops())
	}
	tab := RelayTable("relays", rows)
	for _, want := range []string{"drop-noroute", "drop-qfull", "deferred", "busy-nack", "4/8"} {
		if !strings.Contains(tab, want) {
			t.Errorf("relay table missing %q:\n%s", want, tab)
		}
	}
	// An unbounded gateway renders a bare peak, not a x/0 bound.
	if strings.Contains(tab, "2/0") {
		t.Errorf("unbounded gateway rendered a bound:\n%s", tab)
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	s1 := &Series{Name: "a"}
	s1.Add(1, 10*vtime.Microsecond)
	s1.Add(1024, 20*vtime.Microsecond)
	s2 := &Series{Name: "b"}
	s2.Add(1024, 40*vtime.Microsecond)

	tab := Table("t", "us", []*Series{s1, s2}, Point.LatencyUS)
	if !strings.Contains(tab, "1K") || !strings.Contains(tab, "40.00") {
		t.Fatalf("table:\n%s", tab)
	}
	// Missing cells render as '-'.
	if !strings.Contains(tab, "-") {
		t.Fatalf("missing-cell marker absent:\n%s", tab)
	}

	csv := CSV([]*Series{s1, s2}, Point.LatencyUS)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "size,a,b" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("csv rows: %v", lines)
	}
	if !strings.HasPrefix(lines[2], "1024,20.000,40.000") {
		t.Fatalf("csv row %q", lines[2])
	}
}
