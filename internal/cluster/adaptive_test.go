package cluster

// Tests of the adaptive multi-path transport at the session level: rail
// installation on the bridged triangle, the closed replan loop (observed
// relay congestion steers the plan around a hot gateway and a drained
// queue steers it back), and striping through a real session.

import (
	"testing"

	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

// bridgedTriangle is bridgedTriple plus the triangle's third side: a
// direct TCP bridge between islands A and C (gateway nodes a1 and c0).
// Every A<->C pair now has two edge-disjoint rails — the one-bridge
// gwCA path and the two-bridge detour through island B.
func bridgedTriangle() Topology {
	topo := bridgedTriple()
	topo.Networks = append(topo.Networks, NetworkSpec{
		Name: "gwCA", Protocol: "tcp", Nodes: []string{"a1", "c0"},
	})
	return topo
}

// relaysThrough reports whether the planned src->dst path relays through
// the given rank (interior hop).
func relaysThrough(t *testing.T, sess *Session, src, dst, rank int) bool {
	t.Helper()
	hops, ok := sess.RoutePlan().Path(src, dst)
	if !ok {
		t.Fatalf("no path %d->%d", src, dst)
	}
	for _, h := range hops[:len(hops)-1] {
		if h.Rank == rank {
			return true
		}
	}
	return false
}

// TestTriangleRailsInstalled: on the bridged triangle the wiring installs
// two edge-disjoint rails between the far corners (primary over the
// gwCA bridge, alternate through island B), tags their costs for the
// striper, and bounds every gateway with the default relay window.
func TestTriangleRailsInstalled(t *testing.T) {
	sess, err := Build(bridgedTriangle())
	if err != nil {
		t.Fatal(err)
	}
	rails := sess.Ranks[0].ChMad.Rails(8)
	if len(rails) != 2 {
		t.Fatalf("rails 0->8: %d, want 2", len(rails))
	}
	if rails[0].Hops != 3 || rails[1].Hops != 5 {
		t.Fatalf("rail hops = %d,%d, want 3,5", rails[0].Hops, rails[1].Hops)
	}
	if rails[0].Cost <= 0 || rails[1].Cost <= rails[0].Cost {
		t.Fatalf("rail costs = %g,%g, want ascending positive", rails[0].Cost, rails[1].Cost)
	}
	if rails[0].SegBytes <= 0 || rails[1].SegBytes <= 0 {
		t.Fatalf("rail segments = %d,%d", rails[0].SegBytes, rails[1].SegBytes)
	}
	for _, rk := range sess.Ranks {
		if rk.ChMad.RelayWindow != DefaultRelayWindow {
			t.Fatalf("rank %d relay window = %d, want %d", rk.Rank, rk.ChMad.RelayWindow, DefaultRelayWindow)
		}
	}
	// The chain topology (no third side) keeps a single rail.
	chain, err := Build(bridgedTriple())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(chain.Ranks[0].ChMad.Rails(8)); n != 1 {
		t.Fatalf("chain rails 0->8: %d, want 1", n)
	}
	// MaxPaths: 1 forces the single-path planner on the triangle too.
	topo := bridgedTriangle()
	topo.MaxPaths = 1
	single, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(single.Ranks[0].ChMad.Rails(8)); n != 1 {
		t.Fatalf("MaxPaths=1 rails 0->8: %d, want 1", n)
	}
}

// TestStripedTransferThroughSession: a large A->C transfer on the
// triangle splits across both bridges (the gwCA gateway a1 and the gwAB
// gateway a2 both relay body bytes) and arrives intact.
func TestStripedTransferThroughSession(t *testing.T) {
	sess, err := Build(bridgedTriangle())
	if err != nil {
		t.Fatal(err)
	}
	const size = 256 << 10
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		switch rank {
		case 0:
			return comm.Send(make([]byte, size), size, mpi.Byte, 8, 3)
		case 8:
			_, err := comm.Recv(make([]byte, size), size, mpi.Byte, 0, 3)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := sess.Ranks[1].ChMad, sess.Ranks[2].ChMad
	if a1.RelayBytes == 0 || a2.RelayBytes == 0 {
		t.Fatalf("stripe used one rail: gwCA=%d gwAB=%d bytes", a1.RelayBytes, a2.RelayBytes)
	}
	// The one-bridge rail is cheaper and must carry the larger share.
	if a1.RelayBytes <= a2.RelayBytes {
		t.Errorf("cost-weighted stripe: gwCA carried %d <= gwAB %d", a1.RelayBytes, a2.RelayBytes)
	}
	for _, rs := range sess.RelayStats() {
		if rs.Window > 0 && rs.QueuePeak > rs.Window {
			t.Errorf("%s queue peak %d exceeds window %d", rs.Name, rs.QueuePeak, rs.Window)
		}
	}
}

// TestReplanClosedLoop: relay load observed through the gwCA gateways
// makes a Replan route the far-corner pair through island B; a second
// Replan after the queues drained restores the one-bridge primary.
func TestReplanClosedLoop(t *testing.T) {
	sess, err := Build(bridgedTriangle())
	if err != nil {
		t.Fatal(err)
	}
	// Isolate re-routing: a striped load would spread itself across both
	// rails and halve the queue pressure the replan is supposed to see.
	for _, rk := range sess.Ranks {
		rk.ChMad.RelayStriping = false
	}
	if relaysThrough(t, sess, 0, 8, 4) {
		t.Fatal("baseline 0->8 should use the gwCA rail, not island B")
	}
	if !relaysThrough(t, sess, 0, 8, 1) {
		t.Fatal("baseline 0->8 should relay through a1 (gwCA)")
	}
	const size = 512 << 10
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		switch rank {
		case 2:
			// Load the gwCA gateways: a2 -> c1 relays through a1 and c0.
			return comm.Send(make([]byte, size), size, mpi.Byte, 7, 5)
		case 7:
			_, err := comm.Recv(make([]byte, size), size, mpi.Byte, 2, 5)
			return err
		case 0:
			// Replan after the load's queue pressure has been observed.
			sess.Ranks[0].Proc.Sleep(500 * vtime.Millisecond)
			plan := sess.Replan()
			if plan == nil {
				t.Error("Replan returned nil on a ch_mad session")
				return nil
			}
			if plan.CongestionOf(1) <= 0 {
				t.Error("a1 relayed a 512K body but has no congestion term")
			}
			if relaysThrough(t, sess, 0, 8, 1) || relaysThrough(t, sess, 0, 8, 6) {
				t.Error("adaptive plan still routes 0->8 through the hot gwCA gateways")
			}
			// The device wiring followed the plan: the first hop toward
			// rank 8 is now a2, the island-B rail.
			if rt, ok := sess.Ranks[0].ChMad.RouteTo(8); !ok || rt.NextNode != "a2" {
				t.Errorf("route 0->8 next hop = %+v, want via a2", rt)
			}
			// Queues drained and consumed: the next replan restores the
			// cheap one-bridge primary.
			sess.Ranks[0].Proc.Sleep(500 * vtime.Millisecond)
			sess.Replan()
			if !relaysThrough(t, sess, 0, 8, 1) {
				t.Error("drained replan did not restore the gwCA primary")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
