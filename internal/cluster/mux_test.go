package cluster

// Tests of the per-link device mux: link classification, the planner
// metadata on fallback rails, the topology-shape hash over the mux
// fields, the per-path backbone segment bound, and the headline safety
// property — mux-routed communication is byte-identical to the uniform
// single-protocol configuration; only the timing may differ.

import (
	"bytes"
	"strings"
	"testing"

	"mpichmad/internal/mpi"
)

// muxTopo is a small heterogeneous cluster exercising every device
// class: a dual-proc SCI island, a dual-proc Myrinet island, a shared
// TCP backbone. uniform selects the single-protocol ablation.
func muxTopo(uniform bool) Topology {
	return Topology{
		Nodes: []NodeSpec{
			{Name: "s0", Procs: 2}, {Name: "s1", Procs: 1},
			{Name: "m0", Procs: 2}, {Name: "m1", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"s0", "s1"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"m0", "m1"}},
			{Name: "eth", Protocol: "tcp", Nodes: []string{"s0", "s1", "m0", "m1"}},
		},
		Uniform: uniform,
	}
}

// TestLinkClassification pins the discovery side of the mux: rank 0 (on
// the SCI island's dual-proc node) sees itself as self-class, its node
// peer as smp-class, the island as SAN-class and the Myrinet island as
// wan-class (reached across the TCP backbone), with each routed link
// carrying its class's native switch point.
func TestLinkClassification(t *testing.T) {
	sess, err := Build(muxTopo(false))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"self", "smp", "san", "wan", "wan", "wan"}
	for dst, class := range want {
		if got := sess.LinkClassOf(0, dst); got != class {
			t.Errorf("LinkClassOf(0, %d) = %q, want %q", dst, got, class)
		}
	}
	if got := sess.Ranks[0].ChMad.SwitchPointTo(2); got != 8<<10 {
		t.Errorf("SAN link switch point = %d, want SCI's 8K", got)
	}
	if got := sess.Ranks[0].ChMad.SwitchPointTo(3); got != 64<<10 {
		t.Errorf("wan link switch point = %d, want TCP's 64K", got)
	}

	// The uniform ablation wires no smp links and elects one threshold.
	uni, err := Build(muxTopo(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := uni.LinkClassOf(0, 1); got != "san" {
		t.Errorf("uniform intra-node class = %q, want san (ch_mad over SCI)", got)
	}
	if _, ok := uni.Ranks[0].ChMad.RouteTo(1); !ok {
		t.Error("uniform session has no ch_mad route to the node peer")
	}
	if got := uni.Ranks[0].ChMad.SwitchPointTo(3); got != 8<<10 {
		t.Errorf("uniform wan link switch point = %d, want the global SCI election 8K", got)
	}
}

// TestRailsForFallbackMetadata: when the planner prefers a relayed path
// but the session has forwarding off, the direct-edge fallback rail must
// carry real planner metadata — a zero cost would make stripe weighting
// and re-plan ranking treat the slow direct edge as free.
func TestRailsForFallbackMetadata(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{
			{Name: "n0", Procs: 1}, {Name: "gw", Procs: 1}, {Name: "n1", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"n0", "gw"}},
			{Name: "sciB", Protocol: "sisci", Nodes: []string{"gw", "n1"}},
			{Name: "slow", Protocol: "tcp", Nodes: []string{"n0", "n1"}},
		},
		// Forwarding off: the two-hop SCI path the planner prefers is
		// unusable, so rank 0 -> 2 must fall back to the direct TCP edge.
	}
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	dev := sess.Ranks[0].ChMad
	rt, ok := dev.RouteTo(2)
	if !ok {
		t.Fatal("no fallback route from rank 0 to rank 2")
	}
	if name, _, _ := dev.RouteNet(2); name != "slow" {
		t.Fatalf("fallback rides %q, want the direct tcp edge", name)
	}
	if rt.Hops != 1 {
		t.Errorf("fallback Hops = %d, want 1", rt.Hops)
	}
	if rt.Cost <= 0 || rt.BottleneckCost <= 0 {
		t.Errorf("fallback rail missing planner metadata: Cost=%g BottleneckCost=%g",
			rt.Cost, rt.BottleneckCost)
	}
	if rt.SegBytes != 0 {
		// Single-hop rails never pipeline through a relay; PathSegmentOf
		// returns 0 for them by convention, fallback included.
		t.Errorf("fallback SegBytes = %d, want 0 for a direct rail", rt.SegBytes)
	}
	if rt.SwitchBytes != 64<<10 {
		t.Errorf("fallback SwitchBytes = %d, want TCP's native 64K", rt.SwitchBytes)
	}
	if rt.Class != "wan" {
		t.Errorf("fallback Class = %q, want wan", rt.Class)
	}
}

// TestShapeHashMuxFields: an unknown protocol is an error (it has no
// cost model, so hashing it would let distinct topologies collide on one
// cached tuning table), and the uniform-ablation flag is part of the
// shape — a mux session must never reuse a uniform session's table.
func TestShapeHashMuxFields(t *testing.T) {
	bad := muxTopo(false)
	bad.Networks[0].Protocol = "carrier-pigeon"
	if _, err := bad.ShapeHash(); err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Errorf("unknown protocol: ShapeHash err = %v, want error naming the protocol", err)
	}
	mux, err := muxTopo(false).ShapeHash()
	if err != nil {
		t.Fatal(err)
	}
	uni, err := muxTopo(true).ShapeHash()
	if err != nil {
		t.Fatal(err)
	}
	if mux == uni {
		t.Error("mux and uniform topologies hash to the same shape key")
	}
	again, err := muxTopo(false).ShapeHash()
	if err != nil {
		t.Fatal(err)
	}
	if mux != again {
		t.Error("ShapeHash is not deterministic")
	}
}

// TestRoutedBackboneSegmentBoundedByPathSwitch: on a forwarded chain of
// mixed islands (SCI 8K, BIP 7K, TCP 64K) the recalibrated backbone's
// pipeline segment must respect the smallest switch point along the
// worst routed leader path — a segment above BIP's 7K would trip a
// rendez-vous round-trip on the Myrinet hop of every broadcast segment.
func TestRoutedBackboneSegmentBoundedByPathSwitch(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{
			{Name: "a0", Procs: 1}, {Name: "a1", Procs: 1},
			{Name: "b0", Procs: 1}, {Name: "b1", Procs: 1},
			{Name: "c0", Procs: 1}, {Name: "c1", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"a0", "a1"}},
			{Name: "myriB", Protocol: "bip", Nodes: []string{"b0", "b1"}},
			{Name: "sciC", Protocol: "sisci", Nodes: []string{"c0", "c1"}},
			{Name: "bridgeAB", Protocol: "tcp", Nodes: []string{"a1", "b0"}},
			{Name: "bridgeBC", Protocol: "tcp", Nodes: []string{"b1", "c0"}},
		},
		Forwarding: true,
	}
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	h := sess.Hierarchy()
	if h.NumClusters() != 3 {
		t.Fatalf("discovered %d clusters, want 3 (%v)", h.NumClusters(), h.ClusterNames)
	}
	if !strings.HasPrefix(h.Inter.Net, "routed(") {
		t.Fatalf("backbone %q was not recalibrated from a routed leader path", h.Inter.Net)
	}
	if h.Inter.SegmentBytes <= 0 || h.Inter.SegmentBytes > 7<<10 {
		t.Errorf("backbone segment %d outside (0, 7K] (BIP's switch point bounds the A-C path)",
			h.Inter.SegmentBytes)
	}
}

// TestMuxUniformEquivalence is the headline safety property: the same
// rank program produces byte-identical results under the per-link mux
// and under the uniform single-protocol transport — the mux changes
// which device carries each link and where eager flips to rendez-vous,
// never the data.
func TestMuxUniformEquivalence(t *testing.T) {
	// Sizes straddling every threshold in play: eager everywhere (64),
	// above BIP/SCI but below smp/TCP (12K), above everything (100K).
	sizes := []int{64, 12 << 10, 100 << 10}
	run := func(uniform bool) [][]byte {
		sess, err := Build(muxTopo(uniform))
		if err != nil {
			t.Fatal(err)
		}
		n := len(sess.Ranks)
		results := make([][]byte, n)
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			var rec bytes.Buffer
			for _, size := range sizes {
				// Ring: every rank forwards a rank-stamped pattern, so every
				// link class carries p2p traffic at every size.
				out := make([]byte, size)
				for i := range out {
					out[i] = byte(rank*31 + i)
				}
				in := make([]byte, size)
				next, prev := (rank+1)%n, (rank+n-1)%n
				if _, err := comm.Sendrecv(out, size, mpi.Byte, next, 7,
					in, size, mpi.Byte, prev, 7); err != nil {
					return err
				}
				rec.Write(in)

				root := make([]byte, size)
				if rank == 2 {
					copy(root, out)
				}
				if err := comm.Bcast(root, size, mpi.Byte, 2); err != nil {
					return err
				}
				rec.Write(root)

				cnt := size / 8
				vec := make([]int64, cnt)
				for i := range vec {
					vec[i] = int64(rank + i)
				}
				sum := make([]byte, 8*cnt)
				if err := comm.Allreduce(mpi.Int64Bytes(vec), sum, cnt, mpi.Int64, mpi.OpSum); err != nil {
					return err
				}
				rec.Write(sum)

				per := size / n
				send := make([]byte, per*n)
				for i := range send {
					send[i] = byte(rank ^ i)
				}
				recv := make([]byte, per*n)
				if err := comm.Alltoall(send, recv, per, mpi.Byte); err != nil {
					return err
				}
				rec.Write(recv)
			}
			results[rank] = rec.Bytes()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	mux := run(false)
	uni := run(true)
	for r := range mux {
		if len(mux[r]) == 0 {
			t.Fatalf("rank %d recorded nothing", r)
		}
		if !bytes.Equal(mux[r], uni[r]) {
			t.Errorf("rank %d: mux and uniform transcripts differ (%d vs %d bytes)",
				r, len(mux[r]), len(uni[r]))
		}
	}
}
