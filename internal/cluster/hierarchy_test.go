package cluster

// Heterogeneous-topology collective tests: verify both the hierarchy
// discovery and the headline property of the two-level collectives — the
// slow inter-cluster backbone is crossed O(#clusters) times per
// operation, not O(log n)/O(n) like the topology-blind binomial trees.

import (
	"fmt"
	"testing"

	"mpichmad/internal/mpi"
)

// interleavedTwoCluster builds 2 SCI islands of 4 single-proc nodes each,
// joined by a TCP backbone. Node declarations alternate islands, so the
// even comm ranks land in cluster A and the odd ranks in cluster B — the
// adversarial placement where a flat binomial tree crosses the backbone
// on roughly half its edges.
func interleavedTwoCluster() Topology {
	var nodes []NodeSpec
	var a, b, all []string
	for i := 0; i < 4; i++ {
		an, bn := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		nodes = append(nodes, NodeSpec{Name: an, Procs: 1}, NodeSpec{Name: bn, Procs: 1})
		a, b = append(a, an), append(b, bn)
		all = append(all, an, bn)
	}
	return Topology{
		Nodes: nodes,
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: a},
			{Name: "sciB", Protocol: "sisci", Nodes: b},
			{Name: "wan", Protocol: "tcp", Nodes: all},
		},
	}
}

func TestDiscoverHierarchyTwoClusters(t *testing.T) {
	sess, err := Build(interleavedTwoCluster())
	if err != nil {
		t.Fatal(err)
	}
	h := sess.Hierarchy()
	if h.NumClusters() != 2 {
		t.Fatalf("discovered %d clusters, want 2 (%v)", h.NumClusters(), h.ClusterNames)
	}
	if h.Inter.Net != "wan" {
		t.Fatalf("backbone = %q, want wan", h.Inter.Net)
	}
	for r := 0; r < 8; r++ {
		want := r % 2 // ranks alternate islands
		if sess.ClusterOf(r) != want {
			t.Fatalf("rank %d in cluster %d, want %d", r, sess.ClusterOf(r), want)
		}
	}
	for _, c := range h.Intra {
		if c.BandwidthMBs <= h.Inter.BandwidthMBs {
			t.Fatalf("intra link %s (%.1f MB/s) not faster than backbone (%.1f MB/s)",
				c.Net, c.BandwidthMBs, h.Inter.BandwidthMBs)
		}
	}
	// Per-link mux: the TCP backbone's segment is bounded by TCP's own
	// native switch point (64K), not dragged down to the SCI islands'
	// 8K election — the backbone hops never cross an SCI link, so an 8K
	// cap would only shrink pipelining for no rendez-vous avoidance.
	if h.Inter.SegmentBytes <= 8<<10 || h.Inter.SegmentBytes > 64<<10 {
		t.Fatalf("backbone segment %d outside (8K, 64K] (TCP-native switch point)", h.Inter.SegmentBytes)
	}

	// Route metadata must agree with the discovered hierarchy: intra-
	// cluster peers are reached over the island fabric, cross-cluster
	// peers over the backbone.
	dev := sess.Ranks[0].ChMad
	if _, ok := dev.RouteTo(0); ok {
		t.Fatal("rank 0 has a ch_mad route to itself")
	}
	for dst := 1; dst < 8; dst++ {
		rt, ok := dev.RouteTo(dst)
		if !ok || rt.Channel == nil {
			t.Fatalf("rank 0 has no route to rank %d", dst)
		}
		name, params, ok := dev.RouteNet(dst)
		if !ok {
			t.Fatalf("rank 0 has no route metadata for rank %d", dst)
		}
		if sess.ClusterOf(dst) == sess.ClusterOf(0) {
			if name != "sciA" || params.Protocol != "sisci" {
				t.Errorf("intra-cluster route to rank %d uses %s/%s, want sciA/sisci", dst, name, params.Protocol)
			}
		} else if name != "wan" || params.Protocol != "tcp" {
			t.Errorf("cross-cluster route to rank %d uses %s/%s, want wan/tcp", dst, name, params.Protocol)
		}
	}
}

// wanPackets runs nOps iterations of op on the interleaved topology with
// the given collective mode forced and returns the number of packets the
// TCP backbone carried. Subtracting a 0-op run isolates the per-operation
// cost exactly (the simulation is deterministic).
func wanPackets(t *testing.T, mode mpi.CollMode, nOps int,
	op func(rank int, comm *mpi.Comm) error) uint64 {
	t.Helper()
	sess, err := Build(interleavedTwoCluster())
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		for i := 0; i < nOps; i++ {
			if err := op(rank, comm); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess.Networks["wan"].Stats.Packets
}

// perOp measures the backbone packets one collective costs under each
// algorithm family.
func perOp(t *testing.T, op func(rank int, comm *mpi.Comm) error) (flat, hier uint64) {
	flat = wanPackets(t, mpi.CollFlat, 1, op) - wanPackets(t, mpi.CollFlat, 0, op)
	hier = wanPackets(t, mpi.CollHier, 1, op) - wanPackets(t, mpi.CollHier, 0, op)
	return flat, hier
}

// TestHierBcastCrossesBackboneOnce: with 2 clusters, the two-level Bcast
// sends exactly one (eager, header+body aggregated) message across the
// slow link; the flat binomial tree on the interleaved placement crosses
// it n/2 times.
func TestHierBcastCrossesBackboneOnce(t *testing.T) {
	payload := make([]byte, 64)
	bcast := func(rank int, comm *mpi.Comm) error {
		return comm.Bcast(payload, len(payload), mpi.Byte, 0)
	}
	flat, hier := perOp(t, bcast)
	t.Logf("bcast backbone packets: flat=%d hier=%d", flat, hier)
	if hier != 1 {
		t.Errorf("hierarchical Bcast crossed the backbone %d times, want exactly 1 (leader-to-leader)", hier)
	}
	if flat < 4 {
		t.Errorf("flat Bcast crossed the backbone only %d times; expected >= n/2 = 4 on interleaved placement", flat)
	}
}

// TestHierAllreduceCrossesBackboneOncePerDirection: the two-level
// Allreduce ships one reduced vector per cluster inbound and one result
// vector outbound — exactly 2 backbone messages for 2 clusters.
func TestHierAllreduceCrossesBackboneOncePerDirection(t *testing.T) {
	allreduce := func(rank int, comm *mpi.Comm) error {
		out := make([]byte, 8)
		return comm.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), out, 1, mpi.Int64, mpi.OpSum)
	}
	flat, hier := perOp(t, allreduce)
	t.Logf("allreduce backbone packets: flat=%d hier=%d", flat, hier)
	if hier != 2 {
		t.Errorf("hierarchical Allreduce crossed the backbone %d times, want exactly 2 (once per direction)", hier)
	}
	if flat <= hier {
		t.Errorf("flat Allreduce (%d crossings) should cost more than hierarchical (%d)", flat, hier)
	}
}

// TestHierBarrierGatherAllgatherBackbone: the remaining two-level
// collectives stay O(#clusters) on the backbone while their flat
// counterparts scale with n.
func TestHierBarrierGatherAllgatherBackbone(t *testing.T) {
	cases := []struct {
		name    string
		op      func(rank int, comm *mpi.Comm) error
		hierMax uint64 // O(#clusters) bound: a small constant for 2 clusters
	}{
		{"barrier", func(rank int, comm *mpi.Comm) error {
			return comm.Barrier()
		}, 2},
		{"gather", func(rank int, comm *mpi.Comm) error {
			buf := make([]byte, 8*8)
			return comm.Gather(mpi.Int64Bytes([]int64{int64(rank)}), buf, 1, mpi.Int64, 0)
		}, 1},
		{"allgather", func(rank int, comm *mpi.Comm) error {
			buf := make([]byte, 8*8)
			return comm.Allgather(mpi.Int64Bytes([]int64{int64(rank)}), buf, 1, mpi.Int64)
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flat, hier := perOp(t, tc.op)
			t.Logf("%s backbone packets: flat=%d hier=%d", tc.name, flat, hier)
			if hier > tc.hierMax {
				t.Errorf("hierarchical %s crossed the backbone %d times, want <= %d", tc.name, hier, tc.hierMax)
			}
			if flat <= hier {
				t.Errorf("flat %s (%d crossings) should cost more than hierarchical (%d)", tc.name, flat, hier)
			}
		})
	}
}

// TestHierAlltoallBackbone: the two-level Alltoall bundles all
// cross-cluster blocks through the leaders, so a 2-cluster backbone
// carries exactly one message per directed leader pair — O(clusters) —
// while the flat pairwise rotation on interleaved placement crosses it
// once per cross-cluster (src, dst) pair, O(n^2).
func TestHierAlltoallBackbone(t *testing.T) {
	alltoall := func(rank int, comm *mpi.Comm) error {
		n := 8
		send := make([]byte, 8*n)
		for i := range send {
			send[i] = byte(rank + i)
		}
		recv := make([]byte, 8*n)
		return comm.Alltoall(send, recv, 1, mpi.Int64)
	}
	flat, hier := perOp(t, alltoall)
	t.Logf("alltoall backbone packets: flat=%d hier=%d", flat, hier)
	if hier != 2 {
		t.Errorf("hierarchical Alltoall crossed the backbone %d times, want exactly 2 (one per directed leader pair)", hier)
	}
	if flat < 8 {
		t.Errorf("flat Alltoall crossed the backbone only %d times; expected >= n = 8 on interleaved placement", flat)
	}
}

// TestHierFasterOnBackbone: fewer slow-link crossings must translate into
// less virtual time where the flat algorithm serializes them. The flat
// ring Allgather on interleaved placement crosses the backbone on every
// one of its n-1 sequential steps; the two-level version pays 2 crossings
// total, so it must win by a wide margin.
func TestHierFasterOnBackbone(t *testing.T) {
	const blockBytes = 64
	elapsed := func(mode mpi.CollMode) float64 {
		sess, err := Build(interleavedTwoCluster())
		if err != nil {
			t.Fatal(err)
		}
		for _, rk := range sess.Ranks {
			rk.MPI.SetCollMode(mode)
		}
		var us float64
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			mine := make([]byte, blockBytes)
			out := make([]byte, blockBytes*comm.Size())
			start := sess.S.Now()
			for i := 0; i < 5; i++ {
				if err := comm.Allgather(mine, out, blockBytes, mpi.Byte); err != nil {
					return err
				}
			}
			if rank == 0 {
				us = sess.S.Now().Sub(start).Micros() / 5
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return us
	}
	flatUS, hierUS := elapsed(mpi.CollFlat), elapsed(mpi.CollHier)
	t.Logf("allgather(64B blocks) virtual time: flat=%.1fus hier=%.1fus", flatUS, hierUS)
	if hierUS >= flatUS/2 {
		t.Errorf("hierarchical Allgather (%.1f us) should be at least 2x faster than flat (%.1f us) on the heterogeneous topology", hierUS, flatUS)
	}
}
