package cluster

// Tests of the autotuner cache's file persistence: round-trip fidelity,
// and the corruption contract — a damaged cache file must degrade to a
// fresh sweep, never an error or a panic.

import (
	"os"
	"path/filepath"
	"testing"

	"mpichmad/internal/mpi"
)

func tuneCacheFixture() *TuneCache {
	tc := NewTuneCache()
	tc.Store("shape-a", []mpi.TuneChoice{
		{Op: "Allreduce", MaxBytes: 16 << 10, Algo: "2level"},
		{Op: "Allreduce", MaxBytes: 1 << 60, Algo: "2level-ring"},
	})
	tc.Store("shape-b", []mpi.TuneChoice{
		{Op: "Bcast", MaxBytes: 1 << 60, Algo: "2level-seg"},
	})
	return tc
}

// TestTuneCacheFileRoundtrip: SaveFile + LoadTuneCacheFile reproduce the
// cached tables exactly.
func TestTuneCacheFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := tuneCacheFixture().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := LoadTuneCacheFile(path)
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d tables, want 2", loaded.Len())
	}
	table, ok := loaded.Lookup("shape-a")
	if !ok || len(table) != 2 {
		t.Fatalf("shape-a table: %v (ok=%v)", table, ok)
	}
	if table[0] != (mpi.TuneChoice{Op: "Allreduce", MaxBytes: 16 << 10, Algo: "2level"}) {
		t.Fatalf("row mismatch: %+v", table[0])
	}
}

// TestTuneCacheFileCorruption: every flavor of damage — missing file,
// truncation mid-JSON, binary garbage, valid JSON with an unknown
// algorithm — yields a usable (empty or partial) cache, and a session
// handed such a cache falls back to a fresh sweep instead of erroring.
func TestTuneCacheFileCorruption(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tune.json")
	if err := tuneCacheFixture().SaveFile(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, content []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"missing":   filepath.Join(dir, "does-not-exist.json"),
		"truncated": write("truncated.json", data[:len(data)/2]),
		"garbage":   write("garbage.json", []byte{0x00, 0xff, 0x13, 0x37, '{', '{'}),
		"empty":     write("empty.json", nil),
	}
	for name, path := range cases {
		tc := LoadTuneCacheFile(path)
		if tc == nil {
			t.Fatalf("%s: nil cache", name)
		}
		if tc.Len() != 0 {
			t.Errorf("%s: loaded %d tables from a corrupt file", name, tc.Len())
		}
	}

	// Valid JSON whose rows could not be installed: the poisoned table is
	// dropped, intact ones survive.
	mixed := write("mixed.json", []byte(`{
		"shape-ok":  [{"Op": "Bcast", "MaxBytes": 1024, "Algo": "2level"}],
		"shape-bad": [{"Op": "Bcast", "MaxBytes": 1024, "Algo": "warp-drive"}],
		"shape-neg": [{"Op": "Allreduce", "MaxBytes": -5, "Algo": "flat"}]
	}`))
	tc := LoadTuneCacheFile(mixed)
	if tc.Len() != 1 {
		t.Fatalf("mixed file: kept %d tables, want only the valid one", tc.Len())
	}
	if _, ok := tc.Lookup("shape-ok"); !ok {
		t.Fatal("valid table dropped alongside the poisoned ones")
	}

	// A session wired with a corruption-degraded (empty) cache runs the
	// sweep from scratch: same table as an uncached autotuned session,
	// no error, and the fresh result lands in the cache.
	degraded := LoadTuneCacheFile(cases["truncated"])
	topo := bridgedTriple()
	topo.Autotune = true
	topo.TuneCache = degraded
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	var snap []mpi.TuneChoice
	if err := sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			snap = sess.Ranks[0].MPI.TuneSnapshot()
		}
		return nil
	}); err != nil {
		t.Fatalf("session with corruption-degraded cache: %v", err)
	}
	if snap == nil {
		t.Fatal("fresh sweep installed no tuning table")
	}
	if degraded.Len() != 1 {
		t.Fatalf("fresh sweep not cached: %d tables", degraded.Len())
	}
	if _, misses := degraded.Stats(); misses != 1 {
		_, m := degraded.Stats()
		t.Fatalf("misses = %d, want 1 (the fresh sweep)", m)
	}
}
