package cluster

// Autotuner persistence: the MPI_Init sweep is deterministic in the
// topology, so its measured crossover table can be cached across sessions
// and reloaded whenever a topology of the same *shape* comes up again —
// repeated benchmark sessions and restarted jobs skip the sweep's virtual
// init time entirely. The key is a hash over everything that can change a
// timing: node placement, per-network cost models, device selection,
// forwarding, and the leader-election policy.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/route"
)

// TuneCache stores measured crossover tables keyed by topology shape.
// Sessions run one at a time under the cooperative vtime scheduler, so the
// cache needs no locking — and the determinism rules (see internal/mpi's
// package documentation) forbid preemptive sync in simulation packages.
type TuneCache struct {
	tables map[string][]mpi.TuneChoice
	hits   int
	misses int
}

// NewTuneCache returns an empty cache, ready to hang on Topology.TuneCache.
func NewTuneCache() *TuneCache {
	return &TuneCache{tables: make(map[string][]mpi.TuneChoice)}
}

// Lookup returns the cached table for a shape key.
func (tc *TuneCache) Lookup(key string) ([]mpi.TuneChoice, bool) {
	t, ok := tc.tables[key]
	if ok {
		tc.hits++
	} else {
		tc.misses++
	}
	return t, ok
}

// Store records a measured table under a shape key.
func (tc *TuneCache) Store(key string, table []mpi.TuneChoice) {
	tc.tables[key] = append([]mpi.TuneChoice(nil), table...)
}

// Stats returns the cache's hit/miss counters (tests, reports).
func (tc *TuneCache) Stats() (hits, misses int) {
	return tc.hits, tc.misses
}

// Len returns the number of cached tables.
func (tc *TuneCache) Len() int {
	return len(tc.tables)
}

// SaveFile persists the cache as JSON (shape hash -> crossover table) so
// a later process can skip the init sweep for topologies it has already
// measured. Written atomically via a temp file in the same directory.
func (tc *TuneCache) SaveFile(path string) error {
	data, err := json.MarshalIndent(tc.tables, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTuneCacheFile rebuilds a cache from a SaveFile snapshot. It always
// returns a usable cache: a missing, truncated or otherwise corrupted
// file yields an empty one (the session simply pays a fresh sweep), and
// individual tables that fail validation — unknown algorithm names,
// nonsense brackets — are dropped rather than poisoning sessions that
// would load them.
func LoadTuneCacheFile(path string) *TuneCache {
	tc := NewTuneCache()
	data, err := os.ReadFile(path)
	if err != nil {
		return tc
	}
	var tables map[string][]mpi.TuneChoice
	if err := json.Unmarshal(data, &tables); err != nil {
		return tc
	}
	for key, table := range tables {
		if mpi.ValidateTuneChoices(table) != nil {
			continue
		}
		tc.tables[key] = table
	}
	return tc
}

// ShapeHash fingerprints everything about the topology that can alter
// autotuner timings — including the per-link device-mux fields (the
// uniform-ablation flag and every network's device class and native
// switch point), so a heterogeneous mux session never reuses a table
// measured on a uniform or differently classed shape. Two topologies
// with equal hashes produce identical sweeps (virtual time has no
// noise), so their crossover tables are interchangeable. An unknown
// protocol is an error, mirroring Build: hashing it as a nil cost model
// would let distinct topologies collide on one cached table.
func (topo Topology) ShapeHash() (string, error) {
	h := fnv.New64a()
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(h, format, args...)
	}
	// The multi-path knobs hash as their resolved effective values, so a
	// spelled-out default (MaxPaths: 2, RelayWindow: 16 on a forwarded
	// topology) shares its cached table with the zero-valued spelling.
	w("device=%s;forwarding=%t;oblivious=%t;maxpaths=%d;window=%d;uniform=%t;",
		topo.Device, topo.Forwarding, topo.ObliviousLeaders,
		topo.resolvedMaxPaths(), topo.resolvedRelayWindow(), topo.Uniform)
	for _, nd := range topo.Nodes {
		w("node=%s:%d;", nd.Name, nd.Procs)
	}
	for _, ns := range topo.Networks {
		params := ns.Params
		if params == nil {
			p, ok := netsim.ByProtocol(ns.Protocol)
			if !ok {
				return "", fmt.Errorf("cluster: ShapeHash: unknown protocol %q", ns.Protocol)
			}
			params = &p
		}
		w("net=%s:%s:%s:%d:%+v:%v;", ns.Name, ns.Protocol,
			route.ClassOf(*params), params.SwitchPoint, params, ns.Nodes)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
