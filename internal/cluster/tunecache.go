package cluster

// Autotuner persistence: the MPI_Init sweep is deterministic in the
// topology, so its measured crossover table can be cached across sessions
// and reloaded whenever a topology of the same *shape* comes up again —
// repeated benchmark sessions and restarted jobs skip the sweep's virtual
// init time entirely. The key is a hash over everything that can change a
// timing: node placement, per-network cost models, device selection,
// forwarding, and the leader-election policy.

import (
	"fmt"
	"hash/fnv"
	"sync"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

// TuneCache stores measured crossover tables keyed by topology shape.
// Safe for concurrent sessions.
type TuneCache struct {
	mu     sync.Mutex
	tables map[string][]mpi.TuneChoice
	hits   int
	misses int
}

// NewTuneCache returns an empty cache, ready to hang on Topology.TuneCache.
func NewTuneCache() *TuneCache {
	return &TuneCache{tables: make(map[string][]mpi.TuneChoice)}
}

// Lookup returns the cached table for a shape key.
func (tc *TuneCache) Lookup(key string) ([]mpi.TuneChoice, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	t, ok := tc.tables[key]
	if ok {
		tc.hits++
	} else {
		tc.misses++
	}
	return t, ok
}

// Store records a measured table under a shape key.
func (tc *TuneCache) Store(key string, table []mpi.TuneChoice) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.tables[key] = append([]mpi.TuneChoice(nil), table...)
}

// Stats returns the cache's hit/miss counters (tests, reports).
func (tc *TuneCache) Stats() (hits, misses int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits, tc.misses
}

// ShapeHash fingerprints everything about the topology that can alter
// autotuner timings. Two topologies with equal hashes produce identical
// sweeps (virtual time has no noise), so their crossover tables are
// interchangeable.
func (topo Topology) ShapeHash() string {
	h := fnv.New64a()
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(h, format, args...)
	}
	w("device=%s;forwarding=%t;oblivious=%t;", topo.Device, topo.Forwarding, topo.ObliviousLeaders)
	for _, nd := range topo.Nodes {
		w("node=%s:%d;", nd.Name, nd.Procs)
	}
	for _, ns := range topo.Networks {
		params := ns.Params
		if params == nil {
			if p, ok := netsim.ByProtocol(ns.Protocol); ok {
				params = &p
			}
		}
		w("net=%s:%s:%+v:%v;", ns.Name, ns.Protocol, params, ns.Nodes)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
