// Package cluster assembles simulated MPI sessions: it turns a declarative
// topology (nodes, networks, rank placement) into wired processes — ch_self
// for intra-process, smp_plug for intra-node, ch_mad over Madeleine
// channels for inter-node — and launches rank programs, reproducing the
// paper's Fig. 3 software organization. It is the substitute for real
// cluster-of-clusters hardware and mpirun (see DESIGN.md §2).
package cluster

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/chp4"
	"mpichmad/internal/chself"
	"mpichmad/internal/core"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/route"
	"mpichmad/internal/smpplug"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// NodeSpec places Procs MPI ranks on one physical node.
type NodeSpec struct {
	Name  string
	Procs int
}

// NetworkSpec declares one physical network and which nodes it connects.
// Protocol selects a netsim preset ("tcp", "sisci", "bip"); Params, if
// non-nil, overrides it entirely.
type NetworkSpec struct {
	Name     string
	Protocol string
	Params   *netsim.Params
	Nodes    []string
}

// Topology is a declarative cluster-of-clusters description.
type Topology struct {
	Nodes    []NodeSpec
	Networks []NetworkSpec

	// Device selects the inter-node MPICH device: "ch_mad" (default)
	// or "ch_p4" (baseline; requires a single tcp network).
	Device string

	// Forwarding enables the §6 gateway store-and-forward extension:
	// nodes without a shared network communicate through multi-homed
	// gateway nodes (ch_mad only).
	Forwarding bool

	// Autotune runs the MPI_Init collective autotuner on every rank
	// before the rank main: candidate algorithms are timed on the live
	// topology and the measured crossover table replaces the analytic
	// tuning thresholds (see mpi.Process.Autotune). Costs a little
	// virtual init time per rank program.
	Autotune bool

	// TuneCache, when set alongside Autotune, caches the measured
	// crossover table across sessions keyed by the topology's shape hash:
	// the first session pays the init sweep, repeated sessions of the
	// same shape load the cached table and skip it.
	TuneCache *TuneCache

	// ObliviousLeaders disables the gateway-aware cluster-leader election
	// (the two-level collectives fall back to the lowest-rank leaders):
	// the ablation baseline for the routing subsystem's benchmarks.
	ObliviousLeaders bool

	// Deadline bounds the session's virtual time (default 1000 s).
	Deadline vtime.Duration
}

// Rank is one wired MPI process.
type Rank struct {
	Rank int
	Node string
	Proc *marcel.Proc
	MPI  *mpi.Process
	Eng  *adi.Engine
	// ChMad is the inter-node device (nil when Device is ch_p4).
	ChMad *core.Device
}

// Session is a fully wired simulated MPI job, ready to Run.
type Session struct {
	S        *vtime.Scheduler
	Topo     Topology
	Ranks    []*Rank
	Networks map[string]*netsim.Network

	nodeOf     map[int]string      // rank -> node
	netsOfNode map[string][]string // node -> attached network names
	places     []placementInfo     // rank -> placement
	hier       *mpi.Hierarchy      // discovered cluster structure
	plan       *route.Plan         // cost-model routing (ch_mad only)
	rankErr    []error
}

// Build wires a session from a topology.
func Build(topo Topology) (*Session, error) {
	if topo.Device == "" {
		topo.Device = "ch_mad"
	}
	if topo.Deadline == 0 {
		topo.Deadline = 1000 * vtime.Second
	}
	s := vtime.New()
	s.SetDeadline(vtime.Time(topo.Deadline))
	sess := &Session{
		S:        s,
		Topo:     topo,
		Networks: make(map[string]*netsim.Network),
		nodeOf:   make(map[int]string),
	}

	nodeNets := make(map[string][]string) // node -> network names
	var nets []*netsim.Network
	for _, ns := range topo.Networks {
		var params netsim.Params
		if ns.Params != nil {
			params = *ns.Params
		} else {
			p, ok := netsim.ByProtocol(ns.Protocol)
			if !ok {
				return nil, fmt.Errorf("cluster: unknown protocol %q", ns.Protocol)
			}
			params = p
		}
		net := netsim.NewNetwork(s, ns.Name, params)
		sess.Networks[ns.Name] = net
		nets = append(nets, net)
		for _, n := range ns.Nodes {
			nodeNets[n] = append(nodeNets[n], ns.Name)
		}
	}

	// Place ranks on nodes.
	var places []placementInfo
	for _, nd := range topo.Nodes {
		if nd.Procs <= 0 {
			return nil, fmt.Errorf("cluster: node %s has %d procs", nd.Name, nd.Procs)
		}
		for i := 0; i < nd.Procs; i++ {
			pname := nd.Name
			if nd.Procs > 1 {
				pname = fmt.Sprintf("%s.p%d", nd.Name, i)
			}
			places = append(places, placementInfo{node: nd.Name, proc: pname})
		}
	}
	size := len(places)
	if size == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	sess.places = places
	sess.netsOfNode = nodeNets

	switch topo.Device {
	case "ch_mad":
		if err := sess.buildChMad(places, nodeNets, nets); err != nil {
			return nil, err
		}
	case "ch_p4":
		if err := sess.buildChP4(places); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown device %q", topo.Device)
	}
	return sess, nil
}

// placementInfo records where one rank lives: its node and its unique
// process/endpoint name.
type placementInfo struct {
	node string
	proc string
}

func (sess *Session) buildChMad(places []placementInfo, nodeNets map[string][]string, nets []*netsim.Network) error {
	s := sess.S
	size := len(places)

	// Per-node shared-memory segments for multi-proc nodes.
	smpNodes := make(map[string]*smpplug.Node)
	perNode := make(map[string]int)
	for _, pl := range places {
		perNode[pl.node]++
	}
	for node, n := range perNode {
		if n > 1 {
			smpNodes[node] = smpplug.NewNode(s, node)
		}
	}

	type rankWiring struct {
		rank   *Rank
		self   *chself.Device
		smp    *smpplug.Device
		chanOf map[string]*madeleine.Channel // network name -> channel
	}
	wirings := make([]*rankWiring, size)

	for r, pl := range places {
		proc := marcel.NewProc(s, pl.proc)
		eng := adi.NewEngine(proc, r)
		dev := core.New(proc, eng, r)
		inst := madeleine.New(proc)
		chanOf := make(map[string]*madeleine.Channel)
		for _, netName := range nodeNets[pl.node] {
			net := sess.Networks[netName]
			ch, err := inst.NewChannel(netName, net)
			if err != nil {
				return err
			}
			dev.AddChannel(ch)
			chanOf[netName] = ch
		}
		w := &rankWiring{
			rank: &Rank{Rank: r, Node: pl.node, Proc: proc,
				Eng: eng, ChMad: dev},
			self:   chself.New(proc, eng),
			chanOf: chanOf,
		}
		if seg := smpNodes[pl.node]; seg != nil {
			w.smp = seg.Join(proc, eng, r)
		}
		wirings[r] = w
		sess.nodeOf[r] = pl.node
	}

	// Inter-node routing: the cost-model routing subsystem plans full
	// shortest-cost paths over the proc graph whose edges are shared
	// networks (internal/route); the device gets the first hop plus the
	// path metadata (hop count, relay pipelining segment). Multi-hop
	// routes through gateways are installed only when Forwarding is on.
	g := route.Graph{
		N:      size,
		NetsOf: make([][]string, size),
		Nets:   make(map[string]netsim.Params, len(sess.Networks)),
	}
	for r, pl := range places {
		g.NetsOf[r] = nodeNets[pl.node]
	}
	for name, net := range sess.Networks {
		g.Nets[name] = net.Params
	}
	plan := route.Compute(g, route.DefaultRefBytes)
	sess.plan = plan

	for r := 0; r < size; r++ {
		w := wirings[r]
		for dst := 0; dst < size; dst++ {
			if dst == r || places[dst].node == places[r].node {
				continue
			}
			hop, netName, ok := plan.NextHop(r, dst)
			if !ok {
				continue // unroutable: Send will error
			}
			hops := plan.Hops(r, dst)
			seg := plan.PathSegment(r, dst)
			if hops > 1 && !sess.Topo.Forwarding {
				// Gateways required but forwarding is off: fall back to a
				// direct shared network if one exists (the planner may
				// have preferred a cheaper relayed path), else unroutable.
				direct, _, shared := plan.DirectEdge(r, dst)
				if !shared {
					continue
				}
				hop, netName, hops, seg = dst, direct, 1, 0
			}
			w.rank.ChMad.AddRoute(dst, core.Route{
				Channel:  w.chanOf[netName],
				NextNode: places[hop].proc,
				Hops:     hops,
				SegBytes: seg,
			})
		}
	}

	// Start the devices first (this elects each ch_mad switch point), then
	// discover the cluster hierarchy: the backbone pipeline segment must
	// stay at or below every device's eager threshold.
	minSwitch := 0
	for r := 0; r < size; r++ {
		wirings[r].rank.ChMad.Start()
		if sp := wirings[r].rank.ChMad.SwitchPoint(); minSwitch == 0 || sp < minSwitch {
			minSwitch = sp
		}
	}
	hier := sess.discoverHierarchy(minSwitch)

	for r := 0; r < size; r++ {
		w := wirings[r]
		devices := []adi.Device{w.self, w.rank.ChMad}
		if w.smp != nil {
			devices = append(devices, w.smp)
		}
		self, smp, chmad := w.self, w.smp, w.rank.ChMad
		myNode := places[r].node
		rr := r
		route := func(dstWorld int) adi.Device {
			switch {
			case dstWorld == rr:
				return self
			case sess.nodeOf[dstWorld] == myNode && smp != nil:
				return smp
			default:
				return chmad
			}
		}
		w.rank.MPI = mpi.NewProcess(w.rank.Proc, w.rank.Eng, r, size, route, devices)
		w.rank.MPI.SetHierarchy(hier)
		sess.Ranks = append(sess.Ranks, w.rank)
	}
	return nil
}

// RoutePlan returns the session's computed routing plan (nil for ch_p4
// sessions, which have a single flat network).
func (sess *Session) RoutePlan() *route.Plan { return sess.plan }

// RelayStats reports the gateway load accounting of every rank that
// relayed traffic this session: messages and body bytes forwarded, drops
// for lack of an onward route, and the peak store-and-forward queue
// depth. Ordered by rank.
func (sess *Session) RelayStats() []stats.RelayStat {
	var out []stats.RelayStat
	for _, rk := range sess.Ranks {
		d := rk.ChMad
		if d == nil || (d.NForwarded == 0 && d.NRelayDrops == 0) {
			continue
		}
		out = append(out, stats.RelayStat{
			Name:      fmt.Sprintf("rank%d(%s)", rk.Rank, rk.Node),
			Msgs:      d.NForwarded,
			Bytes:     d.RelayBytes,
			Drops:     d.NRelayDrops,
			QueuePeak: d.RelayQueuePeak,
		})
	}
	return out
}

func (sess *Session) buildChP4(places []placementInfo) error {
	if len(sess.Networks) != 1 {
		return fmt.Errorf("cluster: ch_p4 requires exactly one network")
	}
	var tcp *netsim.Network
	for _, n := range sess.Networks {
		tcp = n
	}
	size := len(places)
	ranks := make(map[int]string, size)
	for r, pl := range places {
		ranks[r] = pl.proc
	}
	hier := sess.discoverHierarchy(0)
	for r, pl := range places {
		proc := marcel.NewProc(sess.S, pl.proc)
		eng := adi.NewEngine(proc, r)
		p4 := chp4.New(proc, eng, tcp, ranks)
		self := chself.New(proc, eng)
		rr := r
		route := func(dstWorld int) adi.Device {
			if dstWorld == rr {
				return self
			}
			return p4
		}
		mp := mpi.NewProcess(proc, eng, r, size, route, []adi.Device{self, p4})
		mp.SetHierarchy(hier)
		sess.Ranks = append(sess.Ranks, &Rank{Rank: r, Node: pl.node, Proc: proc, Eng: eng, MPI: mp})
		sess.nodeOf[r] = pl.node
	}
	return nil
}

// Run spawns main on every rank (receiving MPI_COMM_WORLD), executes the
// simulation to completion, and returns the first error from any rank or
// the scheduler. Ranks that return without calling Finalize are finalized
// automatically.
func (sess *Session) Run(main func(rank int, comm *mpi.Comm) error) error {
	sess.rankErr = make([]error, len(sess.Ranks))
	// Autotuner persistence: a cached crossover table for this topology
	// shape replaces the init sweep (the sweep is deterministic in the
	// topology, so the cached measurement is exact, not approximate).
	var tuneKey string
	var cachedTune []mpi.TuneChoice
	if sess.Topo.Autotune && sess.Topo.TuneCache != nil {
		tuneKey = sess.Topo.ShapeHash()
		cachedTune, _ = sess.Topo.TuneCache.Lookup(tuneKey)
	}
	for _, rk := range sess.Ranks {
		rk := rk
		rk.Proc.Spawn("main", func() {
			switch {
			case sess.Topo.Autotune && cachedTune != nil:
				if err := rk.MPI.LoadTuneTable(cachedTune); err != nil {
					sess.rankErr[rk.Rank] = fmt.Errorf("rank %d tune cache: %w", rk.Rank, err)
					return
				}
			case sess.Topo.Autotune:
				if err := rk.MPI.Autotune(); err != nil {
					sess.rankErr[rk.Rank] = fmt.Errorf("rank %d autotune: %w", rk.Rank, err)
					return
				}
				if rk.Rank == 0 && sess.Topo.TuneCache != nil {
					sess.Topo.TuneCache.Store(tuneKey, rk.MPI.TuneSnapshot())
				}
			}
			if err := main(rk.Rank, rk.MPI.World); err != nil {
				sess.rankErr[rk.Rank] = fmt.Errorf("rank %d: %w", rk.Rank, err)
				return
			}
			if err := rk.MPI.Finalize(); err != nil {
				sess.rankErr[rk.Rank] = fmt.Errorf("rank %d finalize: %w", rk.Rank, err)
			}
		})
	}
	schedErr := sess.S.Run()
	// A rank error usually deadlocks the rest of the job (they wait for
	// a peer that already failed); report the root cause first.
	for _, err := range sess.rankErr {
		if err != nil {
			if schedErr != nil {
				return fmt.Errorf("%w (then: %v)", err, schedErr)
			}
			return err
		}
	}
	return schedErr
}

// Launch is Build followed by Run.
func Launch(topo Topology, main func(rank int, comm *mpi.Comm) error) (*Session, error) {
	sess, err := Build(topo)
	if err != nil {
		return nil, err
	}
	if err := sess.Run(main); err != nil {
		return sess, err
	}
	return sess, nil
}

// TwoNodes is a convenience topology: two single-proc nodes joined by one
// network of the given protocol.
func TwoNodes(protocol string) Topology {
	return Topology{
		Nodes: []NodeSpec{{Name: "n0", Procs: 1}, {Name: "n1", Procs: 1}},
		Networks: []NetworkSpec{
			{Name: protocol, Protocol: protocol, Nodes: []string{"n0", "n1"}},
		},
	}
}
