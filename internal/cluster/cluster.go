// Package cluster assembles simulated MPI sessions: it turns a declarative
// topology (nodes, networks, rank placement) into wired processes — ch_self
// for intra-process, smp_plug for intra-node, ch_mad over Madeleine
// channels for inter-node — and launches rank programs, reproducing the
// paper's Fig. 3 software organization. It is the substitute for real
// cluster-of-clusters hardware and mpirun (see DESIGN.md §2).
package cluster

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/chp4"
	"mpichmad/internal/chself"
	"mpichmad/internal/core"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/route"
	"mpichmad/internal/smpplug"
	"mpichmad/internal/stats"
	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// defaultTracer is the fallback tracer Build uses when Topology.Trace is
// nil: process-wide plumbing for the experiment driver's -trace flag, so
// every experiment in a run gets traced without per-topology wiring.
var defaultTracer *trace.Tracer

// SetDefaultTracer installs (or, with nil, clears) the process-wide
// fallback tracer picked up by every subsequent Build.
func SetDefaultTracer(t *trace.Tracer) { defaultTracer = t }

// deadlockTailEvents is how many flight-recorder events a traced session
// appends to a vtime.DeadlockError report.
const deadlockTailEvents = 16

// NodeSpec places Procs MPI ranks on one physical node.
type NodeSpec struct {
	Name  string
	Procs int
}

// NetworkSpec declares one physical network and which nodes it connects.
// Protocol selects a netsim preset ("tcp", "sisci", "bip"); Params, if
// non-nil, overrides it entirely.
type NetworkSpec struct {
	Name     string
	Protocol string
	Params   *netsim.Params
	Nodes    []string
}

// Topology is a declarative cluster-of-clusters description.
type Topology struct {
	Nodes    []NodeSpec
	Networks []NetworkSpec

	// Device selects the inter-node MPICH device: "ch_mad" (default)
	// or "ch_p4" (baseline; requires a single tcp network).
	Device string

	// Forwarding enables the §6 gateway store-and-forward extension:
	// nodes without a shared network communicate through multi-homed
	// gateway nodes (ch_mad only).
	Forwarding bool

	// Uniform disables the per-link device mux — the single-protocol
	// ch_mad-only ablation the paper's multi-device design is measured
	// against. No smp_plug wiring (intra-node pairs ride the fastest
	// shared network through ch_mad like any other link) and every device
	// keeps the one globally elected eager->rendez-vous switch point
	// instead of resolving it per destination link (ch_mad only).
	Uniform bool

	// Autotune runs the MPI_Init collective autotuner on every rank
	// before the rank main: candidate algorithms are timed on the live
	// topology and the measured crossover table replaces the analytic
	// tuning thresholds (see mpi.Process.Autotune). Costs a little
	// virtual init time per rank program.
	Autotune bool

	// TuneCache, when set alongside Autotune, caches the measured
	// crossover table across sessions keyed by the topology's shape hash:
	// the first session pays the init sweep, repeated sessions of the
	// same shape load the cached table and skip it.
	TuneCache *TuneCache

	// ObliviousLeaders disables the gateway-aware cluster-leader election
	// (the two-level collectives fall back to the lowest-rank leaders):
	// the ablation baseline for the routing subsystem's benchmarks.
	ObliviousLeaders bool

	// MaxPaths is the number of edge-disjoint paths the routing planner
	// exposes per rank pair (internal/route Options.MaxPaths). 0 defaults
	// to 2 on forwarded topologies — the bridged triangle's third side
	// becomes a real second rail the device stripes large rendez-vous
	// bodies over — and 1 otherwise. Set 1 to force the classic
	// single-path planner (striping ablation).
	MaxPaths int

	// RelayWindow bounds every gateway's store-and-forward queue (the
	// relay credit window, core.Device.RelayWindow): 0 defaults to
	// DefaultRelayWindow on forwarded topologies, negative disables the
	// bound entirely (the historical unbounded queue).
	RelayWindow int

	// Trace, when set, records the session's virtual-time event stream
	// (packet lifecycle, relay hops, schedule rounds, trunk contention)
	// on this tracer. Nil falls back to the tracer installed by
	// SetDefaultTracer; nil both ways leaves tracing off — one dead
	// branch per hot path. The metrics registry is independent of this
	// and always on.
	Trace *trace.Tracer

	// Deadline bounds the session's virtual time (default 1000 s).
	Deadline vtime.Duration
}

// resolvedMaxPaths is the effective planner path count after defaulting:
// 2 on forwarded topologies (the second rail), 1 otherwise.
func (topo Topology) resolvedMaxPaths() int {
	if topo.MaxPaths != 0 {
		return topo.MaxPaths
	}
	if topo.Forwarding {
		return 2
	}
	return 1
}

// resolvedRelayWindow is the effective gateway queue bound after
// defaulting: DefaultRelayWindow on forwarded topologies, 0 (unbounded)
// otherwise or when explicitly negative.
func (topo Topology) resolvedRelayWindow() int {
	w := topo.RelayWindow
	if w == 0 && topo.Forwarding {
		w = DefaultRelayWindow
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Rank is one wired MPI process.
type Rank struct {
	Rank int
	Node string
	Proc *marcel.Proc
	MPI  *mpi.Process
	Eng  *adi.Engine
	// ChMad is the inter-node device (nil when Device is ch_p4).
	ChMad *core.Device
}

// DefaultRelayWindow is the gateway store-and-forward queue bound wired
// onto forwarded topologies when Topology.RelayWindow is zero: deep
// enough that a healthy pipelined relay never stalls, shallow enough
// that a hot gateway backpressures its senders instead of buffering an
// entire collective.
const DefaultRelayWindow = 16

// railCostFactor caps how much worse (in planner wire cost) an alternate
// rail may be than the primary path and still be installed: striping
// round-robin over a rail several times slower would drag the stripe
// down to its pace.
const railCostFactor = 3.0

// Session is a fully wired simulated MPI job, ready to Run.
type Session struct {
	S        *vtime.Scheduler
	Topo     Topology
	Ranks    []*Rank
	Networks map[string]*netsim.Network

	// Tracer is the session's event tracer (nil: tracing off); Metrics
	// is the always-on counter registry every device and network feeds
	// (gateway relay load, trunk contention) — it is what RelayStats
	// reads, so it exists even when tracing is off.
	Tracer  *trace.Tracer
	Metrics *trace.Registry

	traceCtrl int // session-control trace track (replan instants)

	nodeOf     map[int]string      // rank -> node
	netsOfNode map[string][]string // node -> attached network names
	places     []placementInfo     // rank -> placement
	hier       *mpi.Hierarchy      // discovered cluster structure
	plan       *route.Plan         // cost-model routing (ch_mad only)
	graph      route.Graph         // the proc graph the plan was computed on
	maxPaths   int                 // resolved Topology.MaxPaths
	segCap     int                 // global backbone-segment cap (uniform sessions only; 0 = per-path clamping)
	// classMemo caches routed link classes of the session's *current* plan
	// by (source bloc, destination bloc) — on a congestion-free plan the
	// class is a bloc invariant, so the cache stays O(blocs²) no matter how
	// many rank pairs are queried. Reset whenever the plan changes.
	classMemo map[[2]int]string
	devs      []*core.Device // rank -> ch_mad device (nil for ch_p4)
	chanOf    []map[string]*madeleine.Channel
	rankErr   []error
}

// Build wires a session from a topology.
func Build(topo Topology) (*Session, error) {
	if topo.Device == "" {
		topo.Device = "ch_mad"
	}
	if topo.Deadline == 0 {
		topo.Deadline = 1000 * vtime.Second
	}
	s := vtime.New()
	s.SetDeadline(vtime.Time(topo.Deadline))
	sess := &Session{
		S:        s,
		Topo:     topo,
		Networks: make(map[string]*netsim.Network),
		nodeOf:   make(map[int]string),
	}

	nodeNets := make(map[string][]string) // node -> network names
	var nets []*netsim.Network
	for _, ns := range topo.Networks {
		var params netsim.Params
		if ns.Params != nil {
			params = *ns.Params
		} else {
			p, ok := netsim.ByProtocol(ns.Protocol)
			if !ok {
				return nil, fmt.Errorf("cluster: unknown protocol %q", ns.Protocol)
			}
			params = p
		}
		net := netsim.NewNetwork(s, ns.Name, params)
		sess.Networks[ns.Name] = net
		nets = append(nets, net)
		for _, n := range ns.Nodes {
			nodeNets[n] = append(nodeNets[n], ns.Name)
		}
	}

	// Place ranks on nodes.
	var places []placementInfo
	for _, nd := range topo.Nodes {
		if nd.Procs <= 0 {
			return nil, fmt.Errorf("cluster: node %s has %d procs", nd.Name, nd.Procs)
		}
		for i := 0; i < nd.Procs; i++ {
			pname := nd.Name
			if nd.Procs > 1 {
				pname = fmt.Sprintf("%s.p%d", nd.Name, i)
			}
			places = append(places, placementInfo{node: nd.Name, proc: pname})
		}
	}
	size := len(places)
	if size == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	sess.places = places
	sess.netsOfNode = nodeNets

	// Observability wiring: the registry is unconditional (RelayStats
	// and the trunk-delay column read it); the tracer — explicit on the
	// topology or the process-wide default — additionally gets a Chrome
	// track per rank, per network, and one control track, plus the
	// scheduler's deadlock hook pointed at the flight recorder.
	sess.Metrics = trace.NewRegistry()
	tracer := topo.Trace
	if tracer == nil {
		tracer = defaultTracer
	}
	sess.Tracer = tracer
	if tracer != nil {
		tracer.SetClock(s.Now)
		tracer.BeginSession(fmt.Sprintf("%s x%d", topo.Device, size))
		for r, pl := range places {
			tracer.SetTrackName(r, fmt.Sprintf("rank%d(%s)", r, pl.node))
		}
		for i, ns := range topo.Networks {
			net := sess.Networks[ns.Name]
			net.Trace = tracer
			net.TraceTrack = size + i
			tracer.SetTrackName(size+i, "net:"+ns.Name)
		}
		sess.traceCtrl = size + len(topo.Networks)
		tracer.SetTrackName(sess.traceCtrl, "session")
		s.OnDeadlock = func() []string { return tracer.Tail(deadlockTailEvents) }
	}
	for _, ns := range topo.Networks {
		sess.Networks[ns.Name].Metrics = sess.Metrics
	}

	switch topo.Device {
	case "ch_mad":
		if err := sess.buildChMad(places, nodeNets, nets); err != nil {
			return nil, err
		}
	case "ch_p4":
		if err := sess.buildChP4(places); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown device %q", topo.Device)
	}
	return sess, nil
}

// placementInfo records where one rank lives: its node and its unique
// process/endpoint name.
type placementInfo struct {
	node string
	proc string
}

func (sess *Session) buildChMad(places []placementInfo, nodeNets map[string][]string, nets []*netsim.Network) error {
	s := sess.S
	size := len(places)

	uniform := sess.Topo.Uniform

	// Per-node shared-memory segments for multi-proc nodes. The uniform
	// ch_mad-only ablation skips them: intra-node pairs then ride the
	// fastest shared network through ch_mad like any other link.
	smpNodes := make(map[string]*smpplug.Node)
	perNode := make(map[string]int)
	for _, pl := range places {
		perNode[pl.node]++
	}
	for node, n := range perNode {
		if n > 1 && !uniform {
			smpNodes[node] = smpplug.NewNode(s, node)
		}
	}

	type rankWiring struct {
		rank   *Rank
		self   *chself.Device
		smp    *smpplug.Device
		chanOf map[string]*madeleine.Channel // network name -> channel
	}
	wirings := make([]*rankWiring, size)

	for r, pl := range places {
		proc := marcel.NewProc(s, pl.proc)
		eng := adi.NewEngine(proc, r)
		dev := core.New(proc, eng, r)
		dev.Metrics = sess.Metrics
		dev.MetricsLabel = fmt.Sprintf("rank%d(%s)", r, pl.node)
		if sess.Tracer != nil {
			dev.Trace = sess.Tracer
			dev.TraceTrack = r
		}
		inst := madeleine.New(proc)
		chanOf := make(map[string]*madeleine.Channel)
		for _, netName := range nodeNets[pl.node] {
			net := sess.Networks[netName]
			ch, err := inst.NewChannel(netName, net)
			if err != nil {
				return err
			}
			dev.AddChannel(ch)
			chanOf[netName] = ch
		}
		w := &rankWiring{
			rank: &Rank{Rank: r, Node: pl.node, Proc: proc,
				Eng: eng, ChMad: dev},
			self:   chself.New(proc, eng),
			chanOf: chanOf,
		}
		if seg := smpNodes[pl.node]; seg != nil {
			w.smp = seg.Join(proc, eng, r)
		}
		wirings[r] = w
		sess.nodeOf[r] = pl.node
	}

	// Inter-node routing: the cost-model routing subsystem plans full
	// shortest-cost paths over the proc graph whose edges are shared
	// networks (internal/route); the device gets, per destination, up to
	// MaxPaths edge-disjoint rails carrying the path metadata (hop count,
	// relay pipelining segment, wire cost for stripe weighting). Multi-hop
	// routes through gateways are installed only when Forwarding is on.
	g := route.Graph{
		N:      size,
		NetsOf: make([][]string, size),
		Nets:   make(map[string]netsim.Params, len(sess.Networks)),
	}
	for r, pl := range places {
		g.NetsOf[r] = nodeNets[pl.node]
	}
	for name, net := range sess.Networks {
		g.Nets[name] = net.Params
	}
	sess.graph = g
	sess.maxPaths = sess.Topo.resolvedMaxPaths()
	sess.devs = make([]*core.Device, size)
	sess.chanOf = make([]map[string]*madeleine.Channel, size)
	for r := 0; r < size; r++ {
		sess.devs[r] = wirings[r].rank.ChMad
		sess.chanOf[r] = wirings[r].chanOf
	}
	plan := route.ComputeOpts(g, route.Options{RefBytes: route.DefaultRefBytes, MaxPaths: sess.maxPaths})
	sess.plan = plan
	sess.bindLinkClasses()
	sess.installRoutes(plan)

	// Bound every gateway's store-and-forward queue (admission control);
	// RelayWindow < 0 keeps the historical unbounded queue.
	window := sess.Topo.resolvedRelayWindow()

	// Start the devices first (this elects each ch_mad device-wide
	// fallback threshold), then discover the cluster hierarchy. Uniform
	// single-threshold sessions cap every backbone pipeline segment at
	// the globally elected minimum — the historical behaviour; the
	// per-link mux leaves segCap zero and routedInter instead clamps each
	// backbone segment by the switch points along its actual path.
	minSwitch := 0
	for r := 0; r < size; r++ {
		dev := wirings[r].rank.ChMad
		dev.RelayWindow = window
		dev.PerLinkSwitch = !uniform
		dev.Start()
		if sp := dev.SwitchPoint(); minSwitch == 0 || sp < minSwitch {
			minSwitch = sp
		}
	}
	if uniform {
		sess.segCap = minSwitch
	}
	hier := sess.discoverHierarchy(sess.segCap)

	probes := sess.classProbes()
	for r := 0; r < size; r++ {
		w := wirings[r]
		devices := []adi.Device{w.self, w.rank.ChMad}
		if w.smp != nil {
			devices = append(devices, w.smp)
		}
		self, smp, chmad := w.self, w.smp, w.rank.ChMad
		myNode := places[r].node
		rr := r
		route := func(dstWorld int) adi.Device {
			switch {
			case dstWorld == rr:
				return self
			case sess.nodeOf[dstWorld] == myNode && smp != nil:
				return smp
			default:
				return chmad
			}
		}
		w.rank.MPI = mpi.NewProcess(w.rank.Proc, w.rank.Eng, r, size, route, devices)
		if sess.Tracer != nil {
			w.rank.MPI.SetTrace(sess.Tracer, r)
		}
		w.rank.MPI.SetHierarchy(hier)
		// The class resolver binds the build-time plan on purpose: the
		// eager table it replaces was captured here and never refreshed by
		// Replan, and the per-process memo pins those frozen semantics.
		w.rank.MPI.SetLinkClassResolver(func(dst int) string {
			return sess.linkClassIn(plan, rr, dst)
		})
		if !uniform {
			w.rank.MPI.SetClassProbes(probes)
		}
		sess.Ranks = append(sess.Ranks, w.rank)
	}

	// Size the gateway relay credit windows from each backbone's
	// bandwidth-delay product instead of the static DefaultRelayWindow —
	// but only when the session opted into tuning (Autotune) and did not
	// pin RelayWindow explicitly. SetRelayWindows pushes the hints into
	// every ch_mad device (which adopts the largest window among the
	// backbones it fronts) and records them as "RelayWindow" rows of the
	// tune snapshot, so a TuneCache round-trip restores identical windows.
	if sess.Topo.Autotune && sess.Topo.RelayWindow == 0 && sess.Topo.Forwarding {
		if windows := sess.bdpRelayWindows(hier); len(windows) > 0 {
			for _, rk := range sess.Ranks {
				rk.MPI.SetRelayWindows(windows)
			}
		}
	}
	return nil
}

// bindLinkClasses resets the session's link-class cache for the current
// plan. Classes themselves are resolved lazily per queried pair (the
// per-link device mux's topology discovery): intra-process pairs are
// chself-class, intra-node pairs smp-class (when the mux wires smp_plug),
// and routed pairs take the dominating class of their planned path
// (SAN-class intra-cluster, TCP-class across a commodity backbone) —
// memoized per bloc pair, since on a congestion-free plan co-bloc ranks
// route through identical network sequences. Unroutable pairs stay
// unclassified ("").
func (sess *Session) bindLinkClasses() {
	sess.classMemo = make(map[[2]int]string)
}

// linkClassIn resolves the device class of the src->dst link under a
// given plan — the lazy replacement for one cell of the old N×N class
// matrix, byte-identical per pair.
func (sess *Session) linkClassIn(plan *route.Plan, src, dst int) string {
	if dst < 0 || dst >= len(sess.places) {
		return ""
	}
	switch {
	case dst == src:
		return route.ClassSelf.String()
	case sess.places[dst].node == sess.places[src].node && !sess.Topo.Uniform:
		return route.ClassSMP.String()
	}
	if !plan.Congested() {
		// Bloc-invariant on a congestion-free plan: memoize per bloc pair.
		// The memo is shared across congestion-free plans of the session —
		// they are computed from the same graph and options, so their
		// routed classes coincide.
		key := [2]int{plan.BlocOf(src), plan.BlocOf(dst)}
		if c, ok := sess.classMemo[key]; ok {
			return c
		}
		c := ""
		if hops, ok := plan.Path(src, dst); ok {
			c = plan.PathClassOf(hops).String()
		}
		sess.classMemo[key] = c
		return c
	}
	if hops, ok := plan.Path(src, dst); ok {
		return plan.PathClassOf(hops).String()
	}
	return ""
}

// LinkClassOf returns the device class of the link from src toward dst
// ("self", "smp", "san", "wan"), "" for ch_p4 sessions or unroutable
// pairs. Resolved against the session's current plan.
func (sess *Session) LinkClassOf(src, dst int) string {
	if sess.plan == nil {
		return ""
	}
	return sess.linkClassIn(sess.plan, src, dst)
}

// classProbes picks, per inter-node device class present in the session,
// the lowest ordered rank pair of that class: the representative pair the
// MPI_Init autotuner times to measure the class's eager/rendez-vous
// crossover — one probe per class, not a sweep over every pair.
// Deterministic, so every rank installs the identical list. The scan
// resolves classes lazily through the bloc memo, so even the exhaustive
// no-such-class case costs O(N²) cache hits, not O(N²) path walks.
func (sess *Session) classProbes() []mpi.ClassProbe {
	if sess.plan == nil {
		return nil
	}
	size := len(sess.places)
	var probes []mpi.ClassProbe
	for _, class := range []string{route.ClassSAN.String(), route.ClassWAN.String()} {
		found := false
		for i := 0; i < size && !found; i++ {
			for j := i + 1; j < size && !found; j++ {
				if sess.LinkClassOf(i, j) == class {
					probes = append(probes, mpi.ClassProbe{Class: class, A: i, B: j})
					found = true
				}
			}
		}
	}
	return probes
}

// installRoutes points every rank's device at a lazy rail resolver bound
// to the given plan, replacing whatever was wired before (shared by Build
// and Replan — for a re-plan this doubles as the O(1) cache flush that
// makes the new routes take effect immediately). Rails are resolved per
// destination on first use, so a session only ever pays for the pairs
// that actually communicate. Intra-node pairs normally ride smp_plug and
// get no ch_mad route; the uniform ch_mad-only ablation routes them
// through the device too.
func (sess *Session) installRoutes(plan *route.Plan) {
	size := len(sess.places)
	for r := 0; r < size; r++ {
		dev := sess.devs[r]
		if dev == nil {
			continue
		}
		r := r
		dev.SetRailSource(func(dst int) []core.Route {
			if dst == r || dst < 0 || dst >= size {
				return nil
			}
			if sess.places[dst].node == sess.places[r].node && !sess.Topo.Uniform {
				return nil
			}
			return sess.railsFor(plan, r, dst)
		})
	}
}

// railsFor translates a pair's planned path set into device routes:
// rails[0] is the primary, alternates follow while their wire cost stays
// within railCostFactor of the primary's. Gateways required but
// forwarding off falls back to a direct shared network if one exists
// (the planner may have preferred a cheaper relayed path), else the pair
// stays unroutable and Send errors.
func (sess *Session) railsFor(plan *route.Plan, r, dst int) []core.Route {
	paths, ok := plan.Paths(r, dst)
	if !ok || len(paths) == 0 {
		return nil
	}
	if len(paths[0]) > 1 && !sess.Topo.Forwarding {
		direct, _, shared := plan.DirectEdge(r, dst)
		if !shared {
			return nil
		}
		// The fallback rail carries the same planner metadata as every
		// planner-built rail: a zero Cost/BottleneckCost would make stripe
		// weighting and re-plan ranking treat the slow direct edge as free.
		hops := []route.Hop{{Rank: dst, Net: direct}}
		return []core.Route{{
			Channel:        sess.chanOf[r][direct],
			NextNode:       sess.places[dst].proc,
			Hops:           1,
			SegBytes:       plan.PathSegmentOf(hops),
			Cost:           plan.PathCostOf(hops, plan.RefBytes()),
			BottleneckCost: plan.PathBottleneckOf(hops, plan.RefBytes()),
			SwitchBytes:    plan.PathSwitchOf(hops),
			Class:          plan.PathClassOf(hops).String(),
		}}
	}
	primCost := plan.PathCostOf(paths[0], plan.RefBytes())
	var rails []core.Route
	for i, hops := range paths {
		if len(hops) > 1 && !sess.Topo.Forwarding {
			break // no gateway rails in a session without forwarding
		}
		cost := plan.PathCostOf(hops, plan.RefBytes())
		if i > 0 && cost > railCostFactor*primCost {
			break // alternates only get worse from here
		}
		rails = append(rails, core.Route{
			Channel:        sess.chanOf[r][hops[0].Net],
			NextNode:       sess.places[hops[0].Rank].proc,
			Hops:           len(hops),
			SegBytes:       plan.PathSegmentOf(hops),
			Cost:           cost,
			BottleneckCost: plan.PathBottleneckOf(hops, plan.RefBytes()),
			SwitchBytes:    plan.PathSwitchOf(hops),
			Class:          plan.PathClassOf(hops).String(),
		})
	}
	// Direct rails carry no relay segment (PathSegmentOf is 0 for one
	// hop), but once a pair has alternates its bodies stripe, and the
	// stripe deal needs every rail's pacing segment.
	if len(rails) > 1 {
		for i := range rails {
			if rails[i].SegBytes == 0 {
				rails[i].SegBytes = plan.StripeSegmentOf(paths[i])
			}
		}
	}
	return rails
}

// Replan closes the adaptive loop: it recomputes the routing plan with
// every gateway's observed relay-queue pressure (the high-water mark
// since the previous replan, or the live depth if higher) fed back into
// the edge costs as a congestion term, reinstalls routes and rails on
// every device, and re-elects cluster leaders plus the recalibrated
// backbone link from the new plan. Schedules stay deterministic within a
// run because replanning only happens when the caller invokes it — call
// it at a collective boundary (all ranks quiescent, e.g. right after a
// Barrier) from a single rank's program. Communicators pick the new
// routes up immediately (routing is resolved per message) and the new
// leaders at their next collective. No-op for ch_p4 sessions.
func (sess *Session) Replan() *route.Plan {
	if sess.plan == nil {
		return nil
	}
	cong := make([]float64, len(sess.places))
	nCongested := 0
	for r, dev := range sess.devs {
		if dev == nil {
			continue
		}
		depth := dev.TakeRelayHigh()
		if live := dev.RelayQueueDepth(); live > depth {
			depth = live
		}
		if depth == 0 {
			continue
		}
		cong[r] = float64(depth) * sess.congestionUnit(r)
		nCongested++
	}
	plan := route.ComputeOpts(sess.graph, route.Options{
		RefBytes:   route.DefaultRefBytes,
		MaxPaths:   sess.maxPaths,
		Congestion: cong,
	})
	sess.plan = plan
	sess.bindLinkClasses()
	sess.installRoutes(plan)
	if sess.Tracer != nil {
		// Val carries how many gateways fed congestion into the new plan.
		sess.Tracer.Instant(sess.traceCtrl, trace.KCtrl, "replan",
			trace.Args{Val: int64(nCongested)})
	}
	if sess.hier != nil {
		sess.electLeaders(sess.hier)
		sess.routedInter(sess.hier, sess.segCap)
		for _, rk := range sess.Ranks {
			rk.MPI.RefreshHierarchy(sess.hier)
		}
	}
	return plan
}

// congestionUnit is the edge-cost penalty one unit of relay-queue depth
// at rank r contributes: one reference-payload hop on the most expensive
// network attached to it — roughly how long a queued body occupies the
// gateway's bottleneck link.
func (sess *Session) congestionUnit(r int) float64 {
	unit := 0.0
	for _, name := range sess.netsOfNode[sess.places[r].node] {
		if c := route.HopCost(sess.Networks[name].Params, route.DefaultRefBytes); c > unit {
			unit = c
		}
	}
	return unit
}

// RoutePlan returns the session's computed routing plan (nil for ch_p4
// sessions, which have a single flat network).
func (sess *Session) RoutePlan() *route.Plan { return sess.plan }

// RelayStats reports the gateway load accounting of every rank that
// relayed (or refused) traffic this session: messages and body bytes
// forwarded, drops broken out by reason (no-route vs queue-full),
// admission-control activity (deferred bodies, busy nacks) and the peak
// store-and-forward queue depth against the configured window. Ordered
// by rank.
func (sess *Session) RelayStats() []stats.RelayStat {
	var out []stats.RelayStat
	for _, rk := range sess.Ranks {
		d := rk.ChMad
		if d == nil || (d.NForwarded == 0 && d.NRelayDrops == 0 &&
			d.NRelayBusy == 0 && d.NRelayDeferred == 0) {
			continue
		}
		out = append(out, stats.RelayStat{
			Name:           fmt.Sprintf("rank%d(%s)", rk.Rank, rk.Node),
			Msgs:           d.NForwarded,
			Bytes:          d.RelayBytes,
			DropsNoRoute:   d.NDropsNoRoute,
			DropsQueueFull: d.NDropsQueueFull,
			Deferred:       d.NRelayDeferred,
			BusyNacks:      d.NRelayBusy,
			QueuePeak:      d.RelayQueuePeak,
			Window:         d.RelayWindow,
			// Time this rank's outbound packets spent queued behind other
			// pipes' traffic for a shared trunk — a gateway whose relays
			// stall here is bottlenecked by the backbone, not its queue.
			TrunkWait: vtime.Duration(sess.Metrics.Get("trunk.wait.ns", sess.places[rk.Rank].proc)),
		})
	}
	return out
}

func (sess *Session) buildChP4(places []placementInfo) error {
	if len(sess.Networks) != 1 {
		return fmt.Errorf("cluster: ch_p4 requires exactly one network")
	}
	var tcp *netsim.Network
	for _, n := range sess.Networks {
		tcp = n
	}
	size := len(places)
	ranks := make(map[int]string, size)
	for r, pl := range places {
		ranks[r] = pl.proc
	}
	hier := sess.discoverHierarchy(0)
	for r, pl := range places {
		proc := marcel.NewProc(sess.S, pl.proc)
		eng := adi.NewEngine(proc, r)
		p4 := chp4.New(proc, eng, tcp, ranks)
		self := chself.New(proc, eng)
		rr := r
		route := func(dstWorld int) adi.Device {
			if dstWorld == rr {
				return self
			}
			return p4
		}
		mp := mpi.NewProcess(proc, eng, r, size, route, []adi.Device{self, p4})
		mp.SetHierarchy(hier)
		sess.Ranks = append(sess.Ranks, &Rank{Rank: r, Node: pl.node, Proc: proc, Eng: eng, MPI: mp})
		sess.nodeOf[r] = pl.node
	}
	return nil
}

// Run spawns main on every rank (receiving MPI_COMM_WORLD), executes the
// simulation to completion, and returns the first error from any rank or
// the scheduler. Ranks that return without calling Finalize are finalized
// automatically.
func (sess *Session) Run(main func(rank int, comm *mpi.Comm) error) error {
	sess.rankErr = make([]error, len(sess.Ranks))
	// Autotuner persistence: a cached crossover table for this topology
	// shape replaces the init sweep (the sweep is deterministic in the
	// topology, so the cached measurement is exact, not approximate).
	var tuneKey string
	var cachedTune []mpi.TuneChoice
	if sess.Topo.Autotune && sess.Topo.TuneCache != nil {
		key, err := sess.Topo.ShapeHash()
		if err != nil {
			return err
		}
		tuneKey = key
		cachedTune, _ = sess.Topo.TuneCache.Lookup(tuneKey)
	}
	for _, rk := range sess.Ranks {
		rk := rk
		rk.Proc.Spawn("main", func() {
			switch {
			case sess.Topo.Autotune && cachedTune != nil:
				if err := rk.MPI.LoadTuneTable(cachedTune); err != nil {
					sess.rankErr[rk.Rank] = fmt.Errorf("rank %d tune cache: %w", rk.Rank, err)
					return
				}
			case sess.Topo.Autotune:
				if err := rk.MPI.Autotune(); err != nil {
					sess.rankErr[rk.Rank] = fmt.Errorf("rank %d autotune: %w", rk.Rank, err)
					return
				}
				if rk.Rank == 0 && sess.Topo.TuneCache != nil {
					sess.Topo.TuneCache.Store(tuneKey, rk.MPI.TuneSnapshot())
				}
			}
			if err := main(rk.Rank, rk.MPI.World); err != nil {
				sess.rankErr[rk.Rank] = fmt.Errorf("rank %d: %w", rk.Rank, err)
				return
			}
			if err := rk.MPI.Finalize(); err != nil {
				sess.rankErr[rk.Rank] = fmt.Errorf("rank %d finalize: %w", rk.Rank, err)
			}
		})
	}
	schedErr := sess.S.Run()
	// A rank error usually deadlocks the rest of the job (they wait for
	// a peer that already failed); report the root cause first.
	for _, err := range sess.rankErr {
		if err != nil {
			if schedErr != nil {
				return fmt.Errorf("%w (then: %v)", err, schedErr)
			}
			return err
		}
	}
	if schedErr != nil {
		return schedErr
	}
	// Clean completion: every device's protocol state must have returned
	// to rest (credit windows full, no rendez-vous left open, counters
	// consistent) — the Finalize-time invariant audit. A violation here is
	// a transport bug even though the application saw correct data.
	for _, rk := range sess.Ranks {
		if err := rk.MPI.AuditDevices(); err != nil {
			return fmt.Errorf("post-run invariant audit: %w", err)
		}
	}
	return nil
}

// Launch is Build followed by Run.
func Launch(topo Topology, main func(rank int, comm *mpi.Comm) error) (*Session, error) {
	sess, err := Build(topo)
	if err != nil {
		return nil, err
	}
	if err := sess.Run(main); err != nil {
		return sess, err
	}
	return sess, nil
}

// TwoNodes is a convenience topology: two single-proc nodes joined by one
// network of the given protocol.
func TwoNodes(protocol string) Topology {
	return Topology{
		Nodes: []NodeSpec{{Name: "n0", Procs: 1}, {Name: "n1", Procs: 1}},
		Networks: []NetworkSpec{
			{Name: protocol, Protocol: protocol, Nodes: []string{"n0", "n1"}},
		},
	}
}
