package cluster

// Hierarchy discovery: derive the cluster-of-clusters structure the
// two-level MPI collectives need (internal/mpi/topology.go) from the
// declarative topology. A "cluster" is the set of nodes whose fastest
// attached network is the same physical network: the SCI island, the
// Myrinet island, the set of backbone-only nodes. Networks that span more
// than one such cluster are backbones; the fastest of them becomes the
// hierarchy's inter-cluster link.

import (
	"sort"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

// fastestNet returns the highest-bandwidth network attached to a node
// (ties broken by name for determinism), or "" for an unnetworked node.
func (sess *Session) fastestNet(node string) string {
	best := ""
	var bw float64 = -1
	names := append([]string(nil), sess.netsOfNode[node]...)
	sort.Strings(names)
	for _, name := range names {
		if p := sess.Networks[name].Params; p.Bandwidth > bw {
			best, bw = name, p.Bandwidth
		}
	}
	return best
}

// discoverHierarchy groups ranks into clusters and summarizes the intra-
// and inter-cluster links for the collective tuning table. maxSegment,
// when positive, caps the backbone pipeline segment at the devices'
// elected eager threshold so broadcast segments never trigger a
// rendez-vous round-trip per segment.
func (sess *Session) discoverHierarchy(maxSegment int) *mpi.Hierarchy {
	h := &mpi.Hierarchy{ClusterOf: make([]int, len(sess.places))}
	clusterIdx := make(map[string]int) // cluster key -> dense id, by first rank
	for r, pl := range sess.places {
		key := sess.fastestNet(pl.node)
		if key == "" {
			key = "node:" + pl.node // unnetworked node: its own cluster
		}
		id, ok := clusterIdx[key]
		if !ok {
			id = len(h.ClusterNames)
			clusterIdx[key] = id
			h.ClusterNames = append(h.ClusterNames, key)
			h.Intra = append(h.Intra, sess.linkFor(key, 0))
		}
		h.ClusterOf[r] = id
	}

	// The backbone is the fastest network spanning several clusters.
	if len(h.ClusterNames) > 1 {
		best := ""
		var bw float64 = -1
		names := make([]string, 0, len(sess.Networks))
		for name := range sess.Networks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !sess.spansClusters(name, h) {
				continue
			}
			if p := sess.Networks[name].Params; p.Bandwidth > bw {
				best, bw = name, p.Bandwidth
			}
		}
		if best != "" {
			h.Inter = sess.linkFor(best, maxSegment)
		}
	}
	sess.hier = h
	return h
}

// spansClusters reports whether a network connects nodes of at least two
// different clusters.
func (sess *Session) spansClusters(netName string, h *mpi.Hierarchy) bool {
	seen := -1
	for r, pl := range sess.places {
		attached := false
		for _, n := range sess.netsOfNode[pl.node] {
			if n == netName {
				attached = true
				break
			}
		}
		if !attached {
			continue
		}
		if seen == -1 {
			seen = h.ClusterOf[r]
		} else if h.ClusterOf[r] != seen {
			return true
		}
	}
	return false
}

// linkFor summarizes one network as a tuning-table link. maxSegment > 0
// caps the pipeline segment (devices' elected eager threshold).
func (sess *Session) linkFor(netName string, maxSegment int) mpi.Link {
	var params netsim.Params
	if net, ok := sess.Networks[netName]; ok {
		params = net.Params
	} else {
		// Unnetworked single-node cluster: intra-node shared memory.
		params = netsim.SharedMemory()
	}
	lat, bw := params.LatencyBandwidth()
	seg := params.PipelineSegment()
	if maxSegment > 0 && seg > maxSegment {
		seg = maxSegment
	}
	return mpi.Link{
		Net: netName, LatencyUS: lat, BandwidthMBs: bw, SegmentBytes: seg,
		SharedMBs: params.NetworkBandwidth / netsim.MB,
	}
}

// Hierarchy returns the discovered cluster structure (also installed on
// every rank's mpi.Process at build time).
func (sess *Session) Hierarchy() *mpi.Hierarchy { return sess.hier }

// ClusterOf returns the cluster index of a world rank.
func (sess *Session) ClusterOf(rank int) int { return sess.hier.ClusterOf[rank] }

// RankNode returns the node a world rank is placed on.
func (sess *Session) RankNode(rank int) string { return sess.places[rank].node }

// RankNetworks returns the names of the networks attached to a rank's
// node, sorted.
func (sess *Session) RankNetworks(rank int) []string {
	out := append([]string(nil), sess.netsOfNode[sess.places[rank].node]...)
	sort.Strings(out)
	return out
}

// Clusters returns the world ranks of each cluster, in cluster order.
func (sess *Session) Clusters() [][]int {
	out := make([][]int, len(sess.hier.ClusterNames))
	for r, c := range sess.hier.ClusterOf {
		out[c] = append(out[c], r)
	}
	return out
}
