package cluster

// Hierarchy discovery: derive the cluster-of-clusters structure the
// two-level MPI collectives need (internal/mpi/topology.go) from the
// declarative topology. A "cluster" is the set of nodes whose fastest
// attached network is the same physical network: the SCI island, the
// Myrinet island, the set of backbone-only nodes. Networks that span more
// than one such cluster are backbones; the fastest of them becomes the
// hierarchy's inter-cluster link.

import (
	"math"
	"sort"
	"strings"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

// fastestNet returns the highest-bandwidth network attached to a node
// (ties broken by name for determinism), or "" for an unnetworked node.
func (sess *Session) fastestNet(node string) string {
	best := ""
	var bw float64 = -1
	names := append([]string(nil), sess.netsOfNode[node]...)
	sort.Strings(names)
	for _, name := range names {
		if p := sess.Networks[name].Params; p.Bandwidth > bw {
			best, bw = name, p.Bandwidth
		}
	}
	return best
}

// discoverHierarchy groups ranks into clusters and summarizes the intra-
// and inter-cluster links for the collective tuning table. maxSegment,
// when positive, caps the backbone pipeline segment at the session's
// single globally elected eager threshold — only uniform single-threshold
// sessions pass one. Per-link mux sessions pass 0: each network's
// PipelineSegment is already clamped by its own native switch point, and
// routedInter additionally clamps multi-hop backbone paths by the
// smallest switch point actually along them, so broadcast segments never
// trigger a rendez-vous round-trip per segment on any hop.
func (sess *Session) discoverHierarchy(maxSegment int) *mpi.Hierarchy {
	h := &mpi.Hierarchy{ClusterOf: make([]int, len(sess.places))}
	clusterIdx := make(map[string]int) // cluster key -> dense id, by first rank
	for r, pl := range sess.places {
		key := sess.fastestNet(pl.node)
		if key == "" {
			key = "node:" + pl.node // unnetworked node: its own cluster
		}
		id, ok := clusterIdx[key]
		if !ok {
			id = len(h.ClusterNames)
			clusterIdx[key] = id
			h.ClusterNames = append(h.ClusterNames, key)
			h.Intra = append(h.Intra, sess.linkFor(key, 0))
		}
		h.ClusterOf[r] = id
	}

	// The backbone is the fastest network spanning several clusters.
	if len(h.ClusterNames) > 1 {
		best := ""
		var bw float64 = -1
		names := make([]string, 0, len(sess.Networks))
		for name := range sess.Networks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !sess.spansClusters(name, h) {
				continue
			}
			if p := sess.Networks[name].Params; p.Bandwidth > bw {
				best, bw = name, p.Bandwidth
			}
		}
		if best != "" {
			h.Inter = sess.linkFor(best, maxSegment)
		}
	}
	sess.electLeaders(h)
	sess.electLeaderSets(h)
	sess.routedInter(h, maxSegment)
	sess.hier = h
	return h
}

// electLeaders installs the gateway-aware preferred leader of each
// cluster: the member whose routed paths to every rank outside the
// cluster cross the fewest gateways (total hop count), path cost then
// rank breaking ties. On bridged topologies this puts leaders on the
// gateway nodes, so leader-level exchanges skip the extra intra-cluster
// hop the lowest-rank convention would pay. Needs the routing plan
// (ch_mad sessions); single-cluster jobs and the ObliviousLeaders
// ablation keep the default lowest-rank leaders.
//
// On a congestion-free plan only one candidate per routing bloc is
// evaluated: co-bloc members have identical hop and cost sums to every
// outside rank (swapping them is a graph automorphism), and the
// strict-improvement rule below keeps the earliest optimum, so skipping
// the later co-members cannot change the winner — it just cuts the
// election from O(members) to O(blocs) candidates per cluster. Congested
// plans (adaptive re-plans) carry per-rank congestion terms that break
// the symmetry, so there every member is still scored exactly.
func (sess *Session) electLeaders(h *mpi.Hierarchy) {
	if sess.plan == nil || len(h.ClusterNames) < 2 || sess.Topo.ObliviousLeaders {
		return
	}
	nc := len(h.ClusterNames)
	members := make([][]int, nc)
	for r, c := range h.ClusterOf {
		members[c] = append(members[c], r)
	}
	byBloc := !sess.plan.Congested()
	leaders := make([]int, nc)
	for c, ms := range members {
		best, bestHops, bestCost := -1, 0, 0.0
		var scored map[int]bool
		if byBloc {
			scored = make(map[int]bool, 4)
		}
		for _, r := range ms {
			if byBloc {
				b := sess.plan.BlocOf(r)
				if scored[b] {
					continue // co-bloc: identical sums, cannot beat its representative
				}
				scored[b] = true
			}
			hops, cost, reach := 0, 0.0, true
			for s, sc := range h.ClusterOf {
				if sc == c {
					continue
				}
				hp := sess.plan.Hops(r, s)
				if hp < 0 {
					reach = false
					break
				}
				pc, _ := sess.plan.Cost(r, s)
				hops += hp
				cost += pc
			}
			if !reach {
				continue
			}
			if best < 0 || hops < bestHops ||
				(hops == bestHops && cost < bestCost) {
				best, bestHops, bestCost = r, hops, cost
			}
		}
		if best < 0 {
			best = ms[0] // nothing reachable: keep the default
		}
		leaders[c] = best
	}
	h.Leaders = leaders
}

// electLeaderSets widens each cluster's elected leader into a
// gateway-diverse leader *set*: one co-leader per distinct cluster-
// spanning network the cluster touches, so the multi-leader collectives
// can shard the inter-cluster phase across every gateway concurrently.
// The primary leader anchors position 0; each remaining spanning network
// (sorted by name for determinism) elects the attached member with the
// fewest total gateway hops to the outside, scored per routing bloc
// exactly as electLeaders does. Clusters behind a single gateway — or
// none — get a one-element set, which keeps the multi-leader algorithms
// off the autotuner's candidate list there.
func (sess *Session) electLeaderSets(h *mpi.Hierarchy) {
	if h.Leaders == nil {
		return
	}
	nc := len(h.ClusterNames)
	members := make([][]int, nc)
	for r, c := range h.ClusterOf {
		members[c] = append(members[c], r)
	}
	names := make([]string, 0, len(sess.Networks))
	for name := range sess.Networks {
		names = append(names, name)
	}
	sort.Strings(names)
	var spanning []string
	for _, name := range names {
		if sess.spansClusters(name, h) {
			spanning = append(spanning, name)
		}
	}
	if len(spanning) == 0 {
		return
	}
	attached := func(r int, net string) bool {
		for _, n := range sess.netsOfNode[sess.places[r].node] {
			if n == net {
				return true
			}
		}
		return false
	}
	byBloc := !sess.plan.Congested()
	sets := make([][]int, nc)
	gws := make([][]string, nc)
	for c, ms := range members {
		primary := h.Leaders[c]
		set, gw := []int{primary}, []string{""}
		for _, net := range spanning {
			if attached(primary, net) {
				gw[0] = net // the primary's own gateway (first by name)
				break
			}
		}
		for _, net := range spanning {
			if net == gw[0] {
				continue // the primary already fronts this gateway
			}
			best, bestHops, bestCost := -1, 0, 0.0
			var scored map[int]bool
			if byBloc {
				scored = make(map[int]bool, 4)
			}
			for _, r := range ms {
				if !attached(r, net) {
					continue
				}
				if byBloc {
					b := sess.plan.BlocOf(r)
					if scored[b] {
						continue
					}
					scored[b] = true
				}
				hops, cost, reach := 0, 0.0, true
				for s, sc := range h.ClusterOf {
					if sc == c {
						continue
					}
					hp := sess.plan.Hops(r, s)
					if hp < 0 {
						reach = false
						break
					}
					pc, _ := sess.plan.Cost(r, s)
					hops += hp
					cost += pc
				}
				if !reach {
					continue
				}
				if best < 0 || hops < bestHops ||
					(hops == bestHops && cost < bestCost) {
					best, bestHops, bestCost = r, hops, cost
				}
			}
			if best < 0 {
				continue // no member of this cluster fronts net
			}
			dup := false
			for _, x := range set {
				if x == best {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			set = append(set, best)
			gw = append(gw, net)
		}
		sets[c], gws[c] = set, gw
	}
	h.LeaderSets, h.LeaderGateways = sets, gws
}

// routedInter recalibrates the backbone link when leader-level exchanges
// are actually multi-hop (bridged topologies under forwarding): the
// spanning-network summary understates a path that relays through
// gateways, which would mislead the analytic tuning thresholds and the
// broadcast segmentation rule. The link becomes the worst routed
// leader-pair path: latency summed over the hops, bandwidth and pipeline
// segment of the bottleneck hop.
func (sess *Session) routedInter(h *mpi.Hierarchy, maxSegment int) {
	if sess.plan == nil || h.Leaders == nil || !sess.Topo.Forwarding {
		return
	}
	worst, wa, wb := 0.0, -1, -1
	for i := 0; i < len(h.Leaders); i++ {
		for j := i + 1; j < len(h.Leaders); j++ {
			if sess.plan.Hops(h.Leaders[i], h.Leaders[j]) <= 1 {
				continue
			}
			if c, ok := sess.plan.Cost(h.Leaders[i], h.Leaders[j]); ok && c > worst {
				worst, wa, wb = c, h.Leaders[i], h.Leaders[j]
			}
		}
	}
	if wa < 0 {
		return // every leader pair is direct: the spanning link is honest
	}
	hops, _ := sess.plan.Path(wa, wb)
	var latUS float64
	var bwMBs, sharedMBs float64
	seg := 0
	names := make([]string, 0, len(hops))
	for _, hop := range hops {
		p := sess.Networks[hop.Net].Params
		lat, bw := p.LatencyBandwidth()
		latUS += lat
		if bwMBs == 0 || bw < bwMBs {
			bwMBs = bw
		}
		if sh := p.NetworkBandwidth / netsim.MB; sh > 0 && (sharedMBs == 0 || sh < sharedMBs) {
			sharedMBs = sh
		}
		if s := p.PipelineSegment(); seg == 0 || s < seg {
			seg = s
		}
		names = append(names, hop.Net)
	}
	// Per-link thresholds: a pipelined segment must stay on the eager
	// path of every hop of its actual route, so the bound is the smallest
	// native switch point along this path — not one session-global
	// election (which would either over-constrain a fast-threshold path
	// or let a segment trip rendez-vous on a slow-threshold hop).
	if sw := sess.plan.PathSwitchOf(hops); sw > 0 && seg > sw {
		seg = sw
	}
	if maxSegment > 0 && seg > maxSegment {
		seg = maxSegment
	}
	h.Inter = mpi.Link{
		Net:          "routed(" + strings.Join(names, "+") + ")",
		LatencyUS:    latUS,
		BandwidthMBs: bwMBs,
		SegmentBytes: seg,
		SharedMBs:    sharedMBs,
	}
}

// spansClusters reports whether a network connects nodes of at least two
// different clusters.
func (sess *Session) spansClusters(netName string, h *mpi.Hierarchy) bool {
	seen := -1
	for r, pl := range sess.places {
		attached := false
		for _, n := range sess.netsOfNode[pl.node] {
			if n == netName {
				attached = true
				break
			}
		}
		if !attached {
			continue
		}
		if seen == -1 {
			seen = h.ClusterOf[r]
		} else if h.ClusterOf[r] != seen {
			return true
		}
	}
	return false
}

// Bounds on the BDP-derived relay credit window: deep enough that even a
// near-zero-latency backbone keeps a couple of segments in flight, and
// shallow enough that a hot gateway still backpressures its senders
// instead of buffering a whole collective.
const (
	minBDPWindow = 4
	maxBDPWindow = 64
)

// bdpRelayWindows sizes each backbone's relay credit window from its
// bandwidth-delay product: the segments a gateway must hold in flight to
// cover one round trip at full rate (BDP / pipeline segment), plus two
// segments of slack for the store-and-forward handoff, clamped to
// [minBDPWindow, maxBDPWindow]. Purely analytic — netsim parameters, no
// measurement — so the result is deterministic and cheap enough to
// recompute at every Build; the rows a cached tune table carries merely
// restore the same values.
func (sess *Session) bdpRelayWindows(h *mpi.Hierarchy) map[string]int {
	names := make([]string, 0, len(sess.Networks))
	for name := range sess.Networks {
		names = append(names, name)
	}
	sort.Strings(names)
	windows := make(map[string]int)
	for _, name := range names {
		if !sess.spansClusters(name, h) {
			continue
		}
		p := sess.Networks[name].Params
		seg := p.PipelineSegment()
		if seg <= 0 || p.Bandwidth <= 0 {
			continue
		}
		rtt := 2 * (p.WireLatency + p.SendOverhead + p.RecvOverhead + p.DeviceHandling)
		w := int(math.Ceil(p.Bandwidth*rtt.Seconds()/float64(seg))) + 2
		if w < minBDPWindow {
			w = minBDPWindow
		}
		if w > maxBDPWindow {
			w = maxBDPWindow
		}
		windows[name] = w
	}
	return windows
}

// linkFor summarizes one network as a tuning-table link. maxSegment > 0
// caps the pipeline segment (devices' elected eager threshold).
func (sess *Session) linkFor(netName string, maxSegment int) mpi.Link {
	var params netsim.Params
	if net, ok := sess.Networks[netName]; ok {
		params = net.Params
	} else {
		// Unnetworked single-node cluster: intra-node shared memory.
		params = netsim.SharedMemory()
	}
	lat, bw := params.LatencyBandwidth()
	seg := params.PipelineSegment()
	if maxSegment > 0 && seg > maxSegment {
		seg = maxSegment
	}
	return mpi.Link{
		Net: netName, LatencyUS: lat, BandwidthMBs: bw, SegmentBytes: seg,
		SharedMBs: params.NetworkBandwidth / netsim.MB,
	}
}

// Hierarchy returns the discovered cluster structure (also installed on
// every rank's mpi.Process at build time).
func (sess *Session) Hierarchy() *mpi.Hierarchy { return sess.hier }

// ClusterOf returns the cluster index of a world rank.
func (sess *Session) ClusterOf(rank int) int { return sess.hier.ClusterOf[rank] }

// RankNode returns the node a world rank is placed on.
func (sess *Session) RankNode(rank int) string { return sess.places[rank].node }

// RankNetworks returns the names of the networks attached to a rank's
// node, sorted.
func (sess *Session) RankNetworks(rank int) []string {
	out := append([]string(nil), sess.netsOfNode[sess.places[rank].node]...)
	sort.Strings(out)
	return out
}

// Clusters returns the world ranks of each cluster, in cluster order.
func (sess *Session) Clusters() [][]int {
	out := make([][]int, len(sess.hier.ClusterNames))
	for r, c := range sess.hier.ClusterOf {
		out[c] = append(out[c], r)
	}
	return out
}
