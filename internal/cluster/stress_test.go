package cluster

// A larger-scale integration stress test: the full software stack (MPI
// collectives + p2p over ch_self/smp_plug/ch_mad across three networks)
// on a 12-rank heterogeneous cluster of clusters with SMP nodes — the
// deployment the paper's introduction motivates.

import (
	"fmt"
	"testing"

	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

func bigTopology() Topology {
	return Topology{
		Nodes: []NodeSpec{
			// SCI island: two dual-processor nodes.
			{Name: "sci0", Procs: 2}, {Name: "sci1", Procs: 2},
			// Myrinet island: two dual-processor nodes.
			{Name: "myri0", Procs: 2}, {Name: "myri1", Procs: 2},
			// Ethernet-only stragglers.
			{Name: "eth0", Procs: 2}, {Name: "eth1", Procs: 2},
		},
		Networks: []NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sci0", "sci1"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"myri0", "myri1"}},
			{Name: "tcp", Protocol: "tcp",
				Nodes: []string{"sci0", "sci1", "myri0", "myri1", "eth0", "eth1"}},
		},
	}
}

func TestTwelveRankHeterogeneousStress(t *testing.T) {
	sess, err := Build(bigTopology())
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	if len(sess.Ranks) != n {
		t.Fatalf("ranks = %d", len(sess.Ranks))
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		// 1. Collective sanity at scale.
		sum := make([]byte, 8)
		if err := comm.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), sum, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if got := mpi.BytesInt64(sum)[0]; got != n*(n-1)/2 {
			return fmt.Errorf("allreduce = %d", got)
		}

		// 2. Every rank exchanges with every other rank: exercises all
		// three device classes (self excluded, smp for the node peer,
		// ch_mad on the best shared network otherwise), mixing eager
		// (1 KB) and rendez-vous (100 KB) sizes.
		for step := 1; step < n; step++ {
			peer := (rank + step) % n
			size := 1 << 10
			if step%3 == 0 {
				size = 100 << 10 // rendez-vous on every network's threshold
			}
			out := make([]byte, size)
			for i := range out {
				out[i] = byte(rank + step)
			}
			in := make([]byte, size)
			if _, err := comm.Sendrecv(out, size, mpi.Byte, peer, step,
				in, size, mpi.Byte, (rank-step+n)%n, step); err != nil {
				return err
			}
			expect := byte((rank-step+n)%n + step)
			for i := range in {
				if in[i] != expect {
					return fmt.Errorf("rank %d step %d: byte %d = %d, want %d", rank, step, i, in[i], expect)
				}
			}
		}

		// 3. Split by island and run an island barrier + reduce.
		island := rank / 4 // 0: sci, 1: myri, 2: eth
		sub, err := comm.Split(island, rank)
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("island size %d", sub.Size())
		}
		if err := sub.Barrier(); err != nil {
			return err
		}
		one := make([]byte, 8)
		if err := sub.Allreduce(mpi.Int64Bytes([]int64{1}), one, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if mpi.BytesInt64(one)[0] != 4 {
			return fmt.Errorf("island allreduce = %d", mpi.BytesInt64(one)[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every network must have carried real traffic.
	for name, net := range sess.Networks {
		if net.Stats.Packets == 0 {
			t.Errorf("network %s carried nothing", name)
		}
	}
	// SMP traffic must have happened on the dual nodes.
	smpUsed := false
	for _, rk := range sess.Ranks {
		if rk.Eng.NMatched > 0 {
			smpUsed = true
		}
	}
	if !smpUsed {
		t.Error("no matches recorded at all")
	}
}

func TestDeterministicStress(t *testing.T) {
	run := func() int64 {
		sess, err := Build(bigTopology())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Run(func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8*12)
			return comm.Allgather(mpi.Int64Bytes([]int64{int64(rank)}), out, 1, mpi.Int64)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(sess.S.Now())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("12-rank session nondeterministic: %d vs %d", a, b)
	}
}

// chainTopo is a THREE-gateway chain over four networks: a -> g1 -> g2
// -> g3 -> b. protos lists the per-hop protocols.
func chainTopo(protos [4]string) Topology {
	return Topology{
		Nodes: []NodeSpec{
			{Name: "a", Procs: 1}, {Name: "g1", Procs: 1}, {Name: "g2", Procs: 1},
			{Name: "g3", Procs: 1}, {Name: "b", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "hop0", Protocol: protos[0], Nodes: []string{"a", "g1"}},
			{Name: "hop1", Protocol: protos[1], Nodes: []string{"g1", "g2"}},
			{Name: "hop2", Protocol: protos[2], Nodes: []string{"g2", "g3"}},
			{Name: "hop3", Protocol: protos[3], Nodes: []string{"g3", "b"}},
		},
		Forwarding: true,
	}
}

// heteroChain crosses a different fabric on every hop; homoChain is the
// balanced chain where pipelining's full overlap shows (no single hop
// dominates the serialization).
var (
	heteroChain = [4]string{"sisci", "tcp", "bip", "sisci"}
	homoChain   = [4]string{"sisci", "sisci", "sisci", "sisci"}
)

// chainTransfer sends size bytes end to end over the 3-gateway chain
// (with a small reply) and returns the end rank's virtual receive time.
// pipelined=false reverts the gateways to whole-body store-and-forward.
func chainTransfer(t *testing.T, protos [4]string, size int, pipelined bool) vtime.Duration {
	t.Helper()
	sess, err := Build(chainTopo(protos))
	if err != nil {
		t.Fatal(err)
	}
	if !pipelined {
		for _, rk := range sess.Ranks {
			rk.ChMad.RelayPipelining = false
		}
	}
	const end = 4
	var arrived vtime.Duration
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		switch rank {
		case 0:
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i * 11)
			}
			if err := comm.Send(payload, size, mpi.Byte, end, 5); err != nil {
				return err
			}
			// And a reply the other way.
			buf := make([]byte, 4)
			if _, err := comm.Recv(buf, 4, mpi.Byte, end, 6); err != nil {
				return err
			}
			if string(buf) != "pong" {
				return fmt.Errorf("reply = %q", buf)
			}
			return nil
		case end:
			buf := make([]byte, size)
			start := sess.S.Now()
			if _, err := comm.Recv(buf, size, mpi.Byte, 0, 5); err != nil {
				return err
			}
			arrived = sess.S.Now().Sub(start)
			for i := range buf {
				if buf[i] != byte(i*11) {
					return fmt.Errorf("byte %d corrupted over 4 networks", i)
				}
			}
			return comm.Send([]byte("pong"), 4, mpi.Byte, 0, 6)
		}
		return nil // gateways: pure relays
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 2, 3} {
		if sess.Ranks[g].ChMad.NForwarded == 0 {
			t.Fatalf("gateway %d relayed nothing", g)
		}
	}
	return arrived
}

// TestMultiHopForwardingChain routes through THREE gateways: the
// cost-model routing and per-hop ch_mad relays must compose
// transparently, for both relay modes.
func TestMultiHopForwardingChain(t *testing.T) {
	chainTransfer(t, heteroChain, 50000, true)
	chainTransfer(t, heteroChain, 50000, false)
}

// TestPipelinedRelayBeatsStoreAndForward: segmented relaying must beat
// whole-body store-and-forward on virtual time for large (>= 64 KiB)
// rendez-vous payloads — the tentpole's second acceptance criterion.
// On the heterogeneous chain the win is bounded by the slow TCP hop's
// serialization (store-and-forward pays every hop in sequence, the
// pipeline only the bottleneck plus a segment per other hop), so demand
// strict improvement there and the full overlap factor (>= 2x over 4
// balanced hops) on the homogeneous chain.
func TestPipelinedRelayBeatsStoreAndForward(t *testing.T) {
	for _, size := range []int{64 << 10, 256 << 10} {
		piped := chainTransfer(t, heteroChain, size, true)
		stored := chainTransfer(t, heteroChain, size, false)
		t.Logf("hetero %d KiB: pipelined=%v store-and-forward=%v", size>>10, piped, stored)
		if piped >= stored {
			t.Errorf("hetero %d B: pipelined relay (%v) not faster than store-and-forward (%v)",
				size, piped, stored)
		}
		hp := chainTransfer(t, homoChain, size, true)
		hs := chainTransfer(t, homoChain, size, false)
		t.Logf("homo   %d KiB: pipelined=%v store-and-forward=%v (%.2fx)",
			size>>10, hp, hs, float64(hs)/float64(hp))
		if float64(hs) < 2*float64(hp) {
			t.Errorf("homo %d B: pipelining win %.2fx, want >= 2x over 4 balanced hops",
				size, float64(hs)/float64(hp))
		}
	}
}
