package cluster

// A larger-scale integration stress test: the full software stack (MPI
// collectives + p2p over ch_self/smp_plug/ch_mad across three networks)
// on a 12-rank heterogeneous cluster of clusters with SMP nodes — the
// deployment the paper's introduction motivates.

import (
	"fmt"
	"testing"

	"mpichmad/internal/mpi"
)

func bigTopology() Topology {
	return Topology{
		Nodes: []NodeSpec{
			// SCI island: two dual-processor nodes.
			{Name: "sci0", Procs: 2}, {Name: "sci1", Procs: 2},
			// Myrinet island: two dual-processor nodes.
			{Name: "myri0", Procs: 2}, {Name: "myri1", Procs: 2},
			// Ethernet-only stragglers.
			{Name: "eth0", Procs: 2}, {Name: "eth1", Procs: 2},
		},
		Networks: []NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"sci0", "sci1"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"myri0", "myri1"}},
			{Name: "tcp", Protocol: "tcp",
				Nodes: []string{"sci0", "sci1", "myri0", "myri1", "eth0", "eth1"}},
		},
	}
}

func TestTwelveRankHeterogeneousStress(t *testing.T) {
	sess, err := Build(bigTopology())
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	if len(sess.Ranks) != n {
		t.Fatalf("ranks = %d", len(sess.Ranks))
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		// 1. Collective sanity at scale.
		sum := make([]byte, 8)
		if err := comm.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), sum, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if got := mpi.BytesInt64(sum)[0]; got != n*(n-1)/2 {
			return fmt.Errorf("allreduce = %d", got)
		}

		// 2. Every rank exchanges with every other rank: exercises all
		// three device classes (self excluded, smp for the node peer,
		// ch_mad on the best shared network otherwise), mixing eager
		// (1 KB) and rendez-vous (100 KB) sizes.
		for step := 1; step < n; step++ {
			peer := (rank + step) % n
			size := 1 << 10
			if step%3 == 0 {
				size = 100 << 10 // rendez-vous on every network's threshold
			}
			out := make([]byte, size)
			for i := range out {
				out[i] = byte(rank + step)
			}
			in := make([]byte, size)
			if _, err := comm.Sendrecv(out, size, mpi.Byte, peer, step,
				in, size, mpi.Byte, (rank-step+n)%n, step); err != nil {
				return err
			}
			expect := byte((rank-step+n)%n + step)
			for i := range in {
				if in[i] != expect {
					return fmt.Errorf("rank %d step %d: byte %d = %d, want %d", rank, step, i, in[i], expect)
				}
			}
		}

		// 3. Split by island and run an island barrier + reduce.
		island := rank / 4 // 0: sci, 1: myri, 2: eth
		sub, err := comm.Split(island, rank)
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("island size %d", sub.Size())
		}
		if err := sub.Barrier(); err != nil {
			return err
		}
		one := make([]byte, 8)
		if err := sub.Allreduce(mpi.Int64Bytes([]int64{1}), one, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if mpi.BytesInt64(one)[0] != 4 {
			return fmt.Errorf("island allreduce = %d", mpi.BytesInt64(one)[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every network must have carried real traffic.
	for name, net := range sess.Networks {
		if net.Stats.Packets == 0 {
			t.Errorf("network %s carried nothing", name)
		}
	}
	// SMP traffic must have happened on the dual nodes.
	smpUsed := false
	for _, rk := range sess.Ranks {
		if rk.Eng.NMatched > 0 {
			smpUsed = true
		}
	}
	if !smpUsed {
		t.Error("no matches recorded at all")
	}
}

func TestDeterministicStress(t *testing.T) {
	run := func() int64 {
		sess, err := Build(bigTopology())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Run(func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8*12)
			return comm.Allgather(mpi.Int64Bytes([]int64{int64(rank)}), out, 1, mpi.Int64)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(sess.S.Now())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("12-rank session nondeterministic: %d vs %d", a, b)
	}
}

// TestMultiHopForwardingChain routes through TWO gateways: the BFS routing
// and per-hop ch_mad relays must compose transparently.
func TestMultiHopForwardingChain(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{
			{Name: "a", Procs: 1}, {Name: "g1", Procs: 1},
			{Name: "g2", Procs: 1}, {Name: "b", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"a", "g1"}},
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"g1", "g2"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"g2", "b"}},
		},
		Forwarding: true,
	}
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	const size = 50000 // rendez-vous across the whole chain
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		switch rank {
		case 0:
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i * 11)
			}
			if err := comm.Send(payload, size, mpi.Byte, 3, 5); err != nil {
				return err
			}
			// And a reply the other way.
			buf := make([]byte, 4)
			_, err := comm.Recv(buf, 4, mpi.Byte, 3, 6)
			if err != nil {
				return err
			}
			if string(buf) != "pong" {
				return fmt.Errorf("reply = %q", buf)
			}
			return nil
		case 3:
			buf := make([]byte, size)
			if _, err := comm.Recv(buf, size, mpi.Byte, 0, 5); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(i*11) {
					return fmt.Errorf("byte %d corrupted over 3 networks", i)
				}
			}
			return comm.Send([]byte("pong"), 4, mpi.Byte, 0, 6)
		}
		return nil // gateways: pure relays
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Ranks[1].ChMad.NForwarded == 0 || sess.Ranks[2].ChMad.NForwarded == 0 {
		t.Fatalf("both gateways must relay: g1=%d g2=%d",
			sess.Ranks[1].ChMad.NForwarded, sess.Ranks[2].ChMad.NForwarded)
	}
}
