package cluster

// Tests of the routing subsystem at the session level: the 3-cluster
// bridged topology of the acceptance criteria (no common network, one
// gateway node per bridge), gateway-aware leader election, gateway hop
// accounting, and autotuner persistence.

import (
	"testing"

	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

// bridgedTriple is the acceptance topology: three islands (SCI, SCI,
// Myrinet) with no network common to all, chained by two point-to-point
// TCP bridges. The bridge endpoints (a2, b1, b2, c1) are the gateway
// nodes; rank numbering makes the lowest-rank leader convention pick
// non-gateways (a0, b0, c0), so the election has something to fix.
func bridgedTriple() Topology {
	return Topology{
		Nodes: []NodeSpec{
			{Name: "a0", Procs: 1}, {Name: "a1", Procs: 1}, {Name: "a2", Procs: 1},
			{Name: "b0", Procs: 1}, {Name: "b1", Procs: 1}, {Name: "b2", Procs: 1},
			{Name: "c0", Procs: 1}, {Name: "c1", Procs: 1}, {Name: "c2", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"a0", "a1", "a2"}},
			{Name: "sciB", Protocol: "sisci", Nodes: []string{"b0", "b1", "b2"}},
			{Name: "myriC", Protocol: "bip", Nodes: []string{"c0", "c1", "c2"}},
			{Name: "gwAB", Protocol: "tcp", Nodes: []string{"a2", "b1"}},
			{Name: "gwBC", Protocol: "tcp", Nodes: []string{"b2", "c1"}},
		},
		Forwarding: true,
	}
}

// TestRoutableIffForwarding: on the bridged topology every rank pair is
// routable exactly when Forwarding is on — off, only pairs sharing a
// network have routes.
func TestRoutableIffForwarding(t *testing.T) {
	check := func(forwarding bool) {
		topo := bridgedTriple()
		topo.Forwarding = forwarding
		sess, err := Build(topo)
		if err != nil {
			t.Fatal(err)
		}
		plan := sess.RoutePlan()
		if plan == nil {
			t.Fatal("no routing plan")
		}
		n := len(sess.Ranks)
		for r := 0; r < n; r++ {
			for dst := 0; dst < n; dst++ {
				if dst == r {
					continue
				}
				_, direct, shared := plan.DirectEdge(r, dst)
				_ = direct
				_, ok := sess.Ranks[r].ChMad.RouteTo(dst)
				want := shared || forwarding
				if ok != want {
					t.Fatalf("forwarding=%v: route %d->%d present=%v, want %v",
						forwarding, r, dst, ok, want)
				}
			}
		}
	}
	check(true)
	check(false)
}

// TestGatewayAwareLeaderElection: the elected leaders sit on the gateway
// nodes (a2, b1, c1 = ranks 2, 4, 7), and the ObliviousLeaders ablation
// restores the lowest-rank convention.
func TestGatewayAwareLeaderElection(t *testing.T) {
	sess, err := Build(bridgedTriple())
	if err != nil {
		t.Fatal(err)
	}
	h := sess.Hierarchy()
	if h.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", h.NumClusters())
	}
	want := []int{2, 4, 7}
	if len(h.Leaders) != 3 {
		t.Fatalf("leaders = %v", h.Leaders)
	}
	for i, l := range h.Leaders {
		if l != want[i] {
			t.Fatalf("leaders = %v, want %v", h.Leaders, want)
		}
	}
	// The recalibrated backbone link reflects the worst routed leader
	// pair (a2 -> c1: two bridges plus the sciB hop).
	if h.Inter.Net != "routed(gwAB+sciB+gwBC)" {
		t.Fatalf("inter link = %q", h.Inter.Net)
	}

	topo := bridgedTriple()
	topo.ObliviousLeaders = true
	sess2, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Hierarchy().Leaders != nil {
		t.Fatalf("oblivious session elected leaders %v", sess2.Hierarchy().Leaders)
	}
}

// gatewayHops runs one two-level collective on the bridged topology and
// returns the number of gateway-relayed messages it cost (forward deltas
// around the operation, excluding setup and finalize traffic).
func gatewayHops(t *testing.T, oblivious bool, op func(rank int, comm *mpi.Comm) error) uint64 {
	t.Helper()
	topo := bridgedTriple()
	topo.ObliviousLeaders = oblivious
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mpi.CollHier)
	}
	forwards := func() uint64 {
		var total uint64
		for _, rk := range sess.Ranks {
			total += rk.ChMad.NForwarded
		}
		return total
	}
	var before, after uint64
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			before = forwards()
		}
		if err := op(rank, comm); err != nil {
			return err
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if rank == 0 {
			after = forwards()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return after - before
}

// TestGatewayAwareCrossesFewerGateways: on the bridged 3-cluster
// topology, gateway-aware two-level Bcast and Allreduce relay through
// strictly fewer gateway hops than the leader-oblivious two-level forms —
// the acceptance criterion of the routing subsystem.
func TestGatewayAwareCrossesFewerGateways(t *testing.T) {
	bcast := func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, 1<<10)
		return comm.Bcast(buf, 1<<10, mpi.Byte, 0)
	}
	allreduce := func(rank int, comm *mpi.Comm) error {
		in := make([]byte, 1<<10)
		out := make([]byte, 1<<10)
		return comm.Allreduce(in, out, 1<<10, mpi.Byte, mpi.OpMax)
	}
	for _, tc := range []struct {
		name string
		op   func(rank int, comm *mpi.Comm) error
	}{{"bcast", bcast}, {"allreduce", allreduce}} {
		aware := gatewayHops(t, false, tc.op)
		oblivious := gatewayHops(t, true, tc.op)
		t.Logf("%s gateway hops: aware=%d oblivious=%d", tc.name, aware, oblivious)
		if aware >= oblivious {
			t.Errorf("%s: gateway-aware crossed %d gateway hops, oblivious %d — want strictly fewer",
				tc.name, aware, oblivious)
		}
	}
}

// TestRelayStatsAccounting: gateways report the relayed traffic through
// Session.RelayStats (messages, body bytes, queue depth).
func TestRelayStatsAccounting(t *testing.T) {
	sess, err := Build(bridgedTriple())
	if err != nil {
		t.Fatal(err)
	}
	const size = 128 << 10
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		switch rank {
		case 0:
			return comm.Send(make([]byte, size), size, mpi.Byte, 8, 3)
		case 8:
			_, err := comm.Recv(make([]byte, size), size, mpi.Byte, 0, 3)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := sess.RelayStats()
	if len(rs) == 0 {
		t.Fatal("no relay stats despite multi-hop traffic")
	}
	var bytes uint64
	for _, r := range rs {
		bytes += r.Bytes
	}
	// rank0 -> rank8 crosses 4 gateways; each relays the ~128 KB body.
	if bytes < 4*size {
		t.Errorf("relayed bytes = %d, want >= %d (4 gateways x payload)", bytes, 4*size)
	}
	for _, r := range rs {
		if r.Drops() != 0 {
			t.Errorf("gateway %s dropped %d messages", r.Name, r.Drops())
		}
		if r.Window > 0 && r.QueuePeak > r.Window {
			t.Errorf("gateway %s queue peak %d exceeds window %d", r.Name, r.QueuePeak, r.Window)
		}
	}
}

// TestTuneCachePersistence: with a TuneCache installed, the first
// autotuned session pays the sweep and stores its crossover table; a
// second session of the same shape loads it (cache hit), installs an
// identical table, and finishes in strictly less virtual time.
func TestTuneCachePersistence(t *testing.T) {
	cache := NewTuneCache()
	run := func() ([]mpi.TuneChoice, vtime.Duration) {
		topo := bridgedTriple()
		topo.Autotune = true
		topo.TuneCache = cache
		sess, err := Build(topo)
		if err != nil {
			t.Fatal(err)
		}
		var snap []mpi.TuneChoice
		if err := sess.Run(func(rank int, comm *mpi.Comm) error {
			if rank == 0 {
				snap = sess.Ranks[0].MPI.TuneSnapshot()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return snap, vtime.Duration(sess.S.Now())
	}
	first, tFirst := run()
	if first == nil {
		t.Fatal("first session installed no tuning table")
	}
	second, tSecond := run()
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1", hits, misses)
	}
	if len(first) != len(second) {
		t.Fatalf("save/load mismatch: %d vs %d rows", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("save/load row %d: %+v != %+v", i, first[i], second[i])
		}
	}
	if tSecond >= tFirst {
		t.Errorf("cached session took %v, sweep session %v — cache should skip the sweep", tSecond, tFirst)
	}
}
