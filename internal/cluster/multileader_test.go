package cluster

// Multi-leader collective tests: leader-set election shape, byte
// equivalence of the sharded two-level schedules against the single-
// leader and flat references on random multi-cluster topologies, and the
// backbone-crossing split — the inter-cluster phase engaging every
// gateway instead of funneling through one.

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"mpichmad/internal/mpi"
)

// ringClusterTopo builds C SCI islands (sizes per szs) joined by a ring
// of point-to-point TCP bridges: bridge i links the last node of island i
// to the first node of island i+1 mod C. With C >= 3 every island fronts
// two distinct gateways, so leader sets have two members; with C == 2 the
// two bridges share endpoints pairwise and still yield distinct spanning
// nets per island.
func ringClusterTopo(szs []int) Topology {
	var nodes []NodeSpec
	names := make([][]string, len(szs))
	for ci, sz := range szs {
		for i := 0; i < sz; i++ {
			name := fmt.Sprintf("c%dn%d", ci, i)
			nodes = append(nodes, NodeSpec{Name: name, Procs: 1})
			names[ci] = append(names[ci], name)
		}
	}
	var nets []NetworkSpec
	for ci := range szs {
		nets = append(nets, NetworkSpec{
			Name: fmt.Sprintf("sci%d", ci), Protocol: "sisci", Nodes: names[ci],
		})
	}
	for ci := range szs {
		cj := (ci + 1) % len(szs)
		nets = append(nets, NetworkSpec{
			Name:     fmt.Sprintf("gw%d%d", ci, cj),
			Protocol: "tcp",
			Nodes:    []string{names[ci][len(names[ci])-1], names[cj][0]},
		})
	}
	return Topology{Nodes: nodes, Networks: nets, Forwarding: true}
}

// TestLeaderSetsShape: on the bridged ring every island's leader set has
// one member per distinct gateway net, the primary leader first, gateways
// distinct and members in their own cluster.
func TestLeaderSetsShape(t *testing.T) {
	sess, err := Build(ringClusterTopo([]int{3, 3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	h := sess.Hierarchy()
	if h.NumClusters() != 3 {
		t.Fatalf("discovered %d clusters, want 3", h.NumClusters())
	}
	if len(h.LeaderSets) != 3 || len(h.LeaderGateways) != 3 {
		t.Fatalf("LeaderSets/LeaderGateways = %v/%v, want 3 entries each",
			h.LeaderSets, h.LeaderGateways)
	}
	for ci, set := range h.LeaderSets {
		if len(set) != 2 {
			t.Fatalf("cluster %d leader set %v, want 2 members (two bridges per island)", ci, set)
		}
		if set[0] != h.Leaders[ci] {
			t.Fatalf("cluster %d leader set %v does not lead with primary %d", ci, set, h.Leaders[ci])
		}
		gws := h.LeaderGateways[ci]
		if len(gws) != len(set) {
			t.Fatalf("cluster %d gateway labels %v do not match set %v", ci, gws, set)
		}
		seenGW := map[string]bool{}
		seenRank := map[int]bool{}
		for i, r := range set {
			if sess.ClusterOf(r) != ci {
				t.Fatalf("cluster %d co-leader %d lives in cluster %d", ci, r, sess.ClusterOf(r))
			}
			if seenRank[r] {
				t.Fatalf("cluster %d leader set %v repeats rank %d", ci, set, r)
			}
			seenRank[r] = true
			if gws[i] == "" || seenGW[gws[i]] {
				t.Fatalf("cluster %d gateway labels %v not distinct and non-empty", ci, gws)
			}
			seenGW[gws[i]] = true
		}
	}
	// A chain without alternates keeps sets at one member: the middle
	// cluster of the ring minus one bridge... covered by the two-cluster
	// single-bridge shape instead.
	sess2, err := Build(ringClusterTopo([]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	for ci, set := range sess2.Hierarchy().LeaderSets {
		if len(set) != 2 {
			t.Fatalf("two-island ring: cluster %d set %v, want 2 (both bridges)", ci, set)
		}
	}
}

// multiCollOutputs runs the collective suite on a ring-cluster session
// with the given algorithm family forced and returns every observable
// output, keyed for comparison across families.
func multiCollOutputs(t *testing.T, szs []int, mode mpi.CollMode,
	seed byte, count, root int, op mpi.Op) map[string][]byte {
	t.Helper()
	sess, err := Build(ringClusterTopo(szs))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sz := range szs {
		n += sz
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	out := make(map[string][]byte)
	record := func(what string, rank int, buf []byte) {
		out[fmt.Sprintf("%s/r%d", what, rank)] = append([]byte(nil), buf...)
	}
	input := func(rank int) []int64 {
		v := make([]int64, count)
		for i := range v {
			v[i] = int64((int(seed)+rank*11+i*5)%9) - 4 // small: OpProd stays exact
		}
		return v
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, 8*count)
		if rank == root {
			copy(buf, mpi.Int64Bytes(input(rank)))
		}
		if err := comm.Bcast(buf, count, mpi.Int64, root); err != nil {
			return err
		}
		record("bcast", rank, buf)
		all := make([]byte, 8*count)
		if err := comm.Allreduce(mpi.Int64Bytes(input(rank)), all, count, mpi.Int64, op); err != nil {
			return err
		}
		record("allreduce", rank, all)
		ag := make([]byte, 8*count*n)
		if err := comm.Allgather(mpi.Int64Bytes(input(rank)), ag, count, mpi.Int64); err != nil {
			return err
		}
		record("allgather", rank, ag)
		a2a := make([]int64, count*n)
		for i := range a2a {
			a2a[i] = int64(rank*1000 + i)
		}
		a2aOut := make([]byte, 8*count*n)
		if err := comm.Alltoall(mpi.Int64Bytes(a2a), a2aOut, count, mpi.Int64); err != nil {
			return err
		}
		record("alltoall", rank, a2aOut)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMultiLeaderEquivalence: on random ring-cluster shapes, payloads,
// roots and ops, the multi-leader collectives are byte-identical to the
// single-leader two-level form and to the flat reference.
func TestMultiLeaderEquivalence(t *testing.T) {
	f := func(seed, nc, s0, s1, s2, rootSel, opIdx, length uint8) bool {
		ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
		szs := []int{int(s0)%3 + 1, int(s1)%3 + 1, int(s2)%3 + 1}[:int(nc)%2+2]
		n := 0
		for _, sz := range szs {
			n += sz
		}
		root := int(rootSel) % n
		op := ops[int(opIdx)%len(ops)]
		// Counts straddling the shard granularity: smaller than, equal to
		// and larger than typical leader-set sizes.
		count := int(length)%29 + 1
		multi := multiCollOutputs(t, szs, mpi.CollHierMulti, seed, count, root, op)
		single := multiCollOutputs(t, szs, mpi.CollHier, seed, count, root, op)
		flat := multiCollOutputs(t, szs, mpi.CollFlat, seed, count, root, op)
		if len(multi) != len(single) || len(multi) != len(flat) {
			t.Errorf("output key sets differ: multi %d single %d flat %d",
				len(multi), len(single), len(flat))
			return false
		}
		for k, mv := range multi {
			if string(mv) != string(single[k]) {
				t.Errorf("shape %v root %d op %s count %d: %s: multi %v != single %v",
					szs, root, op.Name(), count, k, mpi.BytesInt64(mv), mpi.BytesInt64(single[k]))
				return false
			}
			if string(mv) != string(flat[k]) {
				t.Errorf("shape %v root %d op %s count %d: %s: multi %v != flat %v",
					szs, root, op.Name(), count, k, mpi.BytesInt64(mv), mpi.BytesInt64(flat[k]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// bridgeLoads runs one 512K Bcast from rank 0 on the three-island ring
// with the given mode forced and returns each bridge network's wire bytes.
func bridgeLoads(t *testing.T, mode mpi.CollMode) map[string]uint64 {
	t.Helper()
	const payload = 512 << 10
	sess, err := Build(ringClusterTopo([]int{3, 3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, payload)
		if rank == 0 {
			for i := range buf {
				buf[i] = byte(i * 13)
			}
		}
		return comm.Bcast(buf, payload, mpi.Byte, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	loads := map[string]uint64{}
	for name, net := range sess.Networks {
		if net.Params.Protocol == "tcp" {
			loads[name] = net.Stats.Bytes
		}
	}
	return loads
}

// TestBDPRelayWindows: with Autotune on and RelayWindow unpinned, the
// wiring sizes one relay credit window per backbone from its
// bandwidth-delay product, records the windows as tune rows on every
// rank, and each gateway device adopts the largest window among the
// backbones it fronts — while non-gateway devices keep the static
// default, and sessions without Autotune are untouched.
func TestBDPRelayWindows(t *testing.T) {
	topo := ringClusterTopo([]int{3, 3, 3})
	topo.Autotune = true
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	windows := sess.bdpRelayWindows(sess.hier)
	if len(windows) != 3 {
		t.Fatalf("bdpRelayWindows = %v, want one window per bridge", windows)
	}
	for net, w := range windows {
		if w < minBDPWindow || w > maxBDPWindow {
			t.Errorf("window for %s = %d, outside [%d, %d]", net, w, minBDPWindow, maxBDPWindow)
		}
	}
	for _, rk := range sess.Ranks {
		if got := rk.MPI.RelayWindows(); !reflect.DeepEqual(got, windows) {
			t.Fatalf("rank %d RelayWindows = %v, want %v", rk.Rank, got, windows)
		}
	}
	if err := mpi.ValidateTuneChoices(sess.Ranks[0].MPI.TuneSnapshot()); err != nil {
		t.Fatalf("snapshot with RelayWindow rows fails validation: %v", err)
	}
	tuned := 0
	for r, dev := range sess.devs {
		want := 0
		for _, net := range sess.netsOfNode[sess.places[r].node] {
			if w, ok := windows[net]; ok && w > want {
				want = w
			}
		}
		if want == 0 {
			want = DefaultRelayWindow
		} else {
			tuned++
		}
		if dev.RelayWindow != want {
			t.Errorf("rank %d RelayWindow = %d, want %d", r, dev.RelayWindow, want)
		}
	}
	if tuned == 0 {
		t.Error("no device adopted a BDP window: every rank kept the static default")
	}
	// The resized credit semaphores must survive real relay traffic and
	// the post-run invariant audit.
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, 256<<10)
		if rank == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		return comm.Bcast(buf, len(buf), mpi.Byte, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gate off: no Autotune keeps the historical static default.
	sess2, err := Build(ringClusterTopo([]int{3, 3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	for r, dev := range sess2.devs {
		if dev.RelayWindow != DefaultRelayWindow {
			t.Errorf("untuned session: rank %d RelayWindow = %d, want %d",
				r, dev.RelayWindow, DefaultRelayWindow)
		}
	}
	if sess2.Ranks[0].MPI.RelayWindows() != nil {
		t.Errorf("untuned session recorded relay windows: %v", sess2.Ranks[0].MPI.RelayWindows())
	}
}

// TestMultiLeaderSplitsBackboneCrossings: the multi-leader Bcast's
// inter-cluster phase engages every bridge of the ring with a substantial
// share of the payload, where the single-leader form leaves at least one
// bridge essentially idle (control traffic only).
func TestMultiLeaderSplitsBackboneCrossings(t *testing.T) {
	const payload = 512 << 10
	multi := bridgeLoads(t, mpi.CollHierMulti)
	single := bridgeLoads(t, mpi.CollHier)
	if len(multi) != 3 {
		t.Fatalf("expected 3 bridge networks, got %v", multi)
	}
	busyAt := func(loads map[string]uint64, floor uint64) int {
		busy := 0
		for _, b := range loads {
			if b >= floor {
				busy++
			}
		}
		return busy
	}
	if got := busyAt(multi, payload/8); got != 3 {
		t.Errorf("multi-leader Bcast engaged %d/3 bridges with >= %d bytes: %v",
			got, payload/8, multi)
	}
	if got := busyAt(single, payload/8); got >= 3 {
		t.Errorf("single-leader Bcast engaged all %d bridges (%v); crossing split shows nothing",
			got, single)
	}
}
