package cluster

// Eager==lazy equivalence for the session wiring layer: rails and link
// classes used to be materialized for every rank pair at build time
// (O(N²) planner walks); they are now resolved on first use and cached
// (SetRailSource on the device, the bloc-keyed class memo on the
// session). These tests pin the lazy results byte-identical to a full
// eager materialization — the cluster-layer half of the route package's
// TestHierarchicalMatchesDense property.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mpichmad/internal/core"
	"mpichmad/internal/route"
)

// lazyTopologies is the deterministic corpus: every wiring mode the
// session supports — bridged forwarding with striping rails, forwarding
// off with the direct-edge fallback, the uniform single-protocol
// ablation, and multi-proc nodes for smp-class links.
func lazyTopologies() map[string]Topology {
	bridged := Topology{
		Nodes: []NodeSpec{
			{Name: "a0", Procs: 2}, {Name: "a1", Procs: 1}, {Name: "a2", Procs: 1},
			{Name: "b0", Procs: 1}, {Name: "b1", Procs: 2}, {Name: "b2", Procs: 1},
			{Name: "c0", Procs: 1}, {Name: "c1", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"a0", "a1", "a2"}},
			{Name: "sciB", Protocol: "sisci", Nodes: []string{"b0", "b1", "b2"}},
			{Name: "myriC", Protocol: "bip", Nodes: []string{"c0", "c1"}},
			{Name: "gwAB", Protocol: "tcp", Nodes: []string{"a2", "b1"}},
			{Name: "gwBC", Protocol: "tcp", Nodes: []string{"b2", "c1"}},
		},
		Forwarding: true,
	}
	noForward := bridged
	noForward.Forwarding = false
	noForward.Networks = append(append([]NetworkSpec(nil), bridged.Networks...),
		NetworkSpec{Name: "slowAll", Protocol: "tcp", Nodes: []string{
			"a0", "a1", "a2", "b0", "b1", "b2", "c0", "c1"}})
	uniform := Topology{
		Nodes: []NodeSpec{
			{Name: "u0", Procs: 2}, {Name: "u1", Procs: 1},
			{Name: "u2", Procs: 1}, {Name: "u3", Procs: 2},
		},
		Networks: []NetworkSpec{
			{Name: "lan", Protocol: "tcp", Nodes: []string{"u0", "u1", "u2", "u3"}},
		},
		Uniform: true,
	}
	return map[string]Topology{
		"bridged-forwarding": bridged,
		"no-forwarding":      noForward,
		"uniform":            uniform,
	}
}

// randomLazyTopo builds a random multi-cluster topology: 2-4 islands of
// 1-3 nodes (some multi-proc) on random fast protocols, chained by tcp
// bridges, with forwarding on so multi-hop rails exist.
func randomLazyTopo(rng *rand.Rand) Topology {
	protos := []string{"sisci", "bip", "tcp"}
	var topo Topology
	topo.Forwarding = true
	topo.MaxPaths = rng.Intn(3) + 1
	var islands [][]string
	for c := 0; c < rng.Intn(3)+2; c++ {
		var nodes []string
		for n := 0; n < rng.Intn(3)+1; n++ {
			name := fmt.Sprintf("n%d_%d", c, n)
			topo.Nodes = append(topo.Nodes, NodeSpec{Name: name, Procs: rng.Intn(2) + 1})
			nodes = append(nodes, name)
		}
		if len(nodes) > 1 {
			topo.Networks = append(topo.Networks, NetworkSpec{
				Name:     fmt.Sprintf("isl%d", c),
				Protocol: protos[rng.Intn(len(protos))],
				Nodes:    nodes,
			})
		}
		islands = append(islands, nodes)
	}
	for c := 1; c < len(islands); c++ {
		a := islands[c-1][rng.Intn(len(islands[c-1]))]
		b := islands[c][rng.Intn(len(islands[c]))]
		topo.Networks = append(topo.Networks, NetworkSpec{
			Name: fmt.Sprintf("br%d", c), Protocol: "tcp", Nodes: []string{a, b},
		})
	}
	return topo
}

// eagerRails materializes what the historical eager installRoutes would
// have handed SetRails for one pair: nil for self and smp-plugged pairs,
// railsFor otherwise.
func eagerRails(sess *Session, r, dst int) []core.Route {
	if dst == r || dst < 0 || dst >= len(sess.places) {
		return nil
	}
	if sess.places[dst].node == sess.places[r].node && !sess.Topo.Uniform {
		return nil
	}
	return sess.railsFor(sess.plan, r, dst)
}

// eagerClass replicates the historical classifyLinks cell for one pair:
// self, smp, then the dominating class of the planned path.
func eagerClass(sess *Session, src, dst int) string {
	switch {
	case src == dst:
		return route.ClassSelf.String()
	case sess.places[dst].node == sess.places[src].node && !sess.Topo.Uniform:
		return route.ClassSMP.String()
	}
	if hops, ok := sess.plan.Path(src, dst); ok {
		return sess.plan.PathClassOf(hops).String()
	}
	return ""
}

// checkLazyEqualsEager sweeps every pair of a built session and compares
// the lazily resolved rails and classes against the eager materialization.
func checkLazyEqualsEager(t *testing.T, sess *Session) {
	t.Helper()
	size := len(sess.places)
	for r := 0; r < size; r++ {
		dev := sess.devs[r]
		if dev == nil {
			continue
		}
		for dst := 0; dst < size; dst++ {
			want := eagerRails(sess, r, dst)
			got := dev.Rails(dst)
			if len(want) == 0 && len(got) == 0 {
				// eager SetRails(dst, nil) and a lazy miss both leave the
				// pair unroutable; the representations (nil vs empty) agree.
			} else if !reflect.DeepEqual(got, want) {
				t.Fatalf("rails(%d->%d): lazy %+v, eager %+v", r, dst, got, want)
			}
			// A second query must serve the cached value unchanged.
			if again := dev.Rails(dst); !reflect.DeepEqual(again, got) {
				t.Fatalf("rails(%d->%d): cache replay diverged", r, dst)
			}
			wc := eagerClass(sess, r, dst)
			if gc := sess.LinkClassOf(r, dst); gc != wc {
				t.Fatalf("class(%d->%d): lazy %q, eager %q", r, dst, gc, wc)
			}
			if gc := sess.Ranks[r].MPI.LinkClassOf(dst); gc != wc {
				t.Fatalf("class(%d->%d): process resolver %q, eager %q", r, dst, gc, wc)
			}
		}
	}
}

// TestLazyRailsAndClassesMatchEager pins the lazy session wiring
// byte-identical to the eager scheme it replaced, over every deterministic
// wiring mode and a seeded corpus of random multi-cluster topologies.
func TestLazyRailsAndClassesMatchEager(t *testing.T) {
	for name, topo := range lazyTopologies() {
		topo := topo
		t.Run(name, func(t *testing.T) {
			sess, err := Build(topo)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			checkLazyEqualsEager(t, sess)
		})
	}
	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for iter := 0; iter < 12; iter++ {
			sess, err := Build(randomLazyTopo(rng))
			if err != nil {
				t.Fatalf("iter %d build: %v", iter, err)
			}
			checkLazyEqualsEager(t, sess)
		}
	})
}

// TestLazyRailsFlushOnReplan pins the O(1) cache flush: after a Replan
// the devices must serve rails and the session must serve classes of the
// NEW plan, exactly as an eager reinstall would.
func TestLazyRailsFlushOnReplan(t *testing.T) {
	topo := lazyTopologies()["bridged-forwarding"]
	sess, err := Build(topo)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	size := len(sess.places)
	// Warm every cache against the build-time plan.
	checkLazyEqualsEager(t, sess)
	if sess.Replan() == nil {
		t.Fatal("Replan returned nil plan")
	}
	// Every device lookup must now resolve against the fresh plan.
	for r := 0; r < size; r++ {
		for dst := 0; dst < size; dst++ {
			want := eagerRails(sess, r, dst)
			got := sess.devs[r].Rails(dst)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-replan rails(%d->%d): lazy %+v, eager %+v", r, dst, got, want)
			}
		}
	}
}
