package cluster

import (
	"fmt"
	"strings"
	"testing"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Topology{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := Build(Topology{Nodes: []NodeSpec{{Name: "a", Procs: 0}}}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Build(Topology{
		Nodes:    []NodeSpec{{Name: "a", Procs: 1}},
		Networks: []NetworkSpec{{Name: "x", Protocol: "warp", Nodes: []string{"a"}}},
	}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Build(Topology{
		Nodes:  []NodeSpec{{Name: "a", Procs: 1}},
		Device: "ch_weird",
	}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := Build(Topology{
		Nodes:  []NodeSpec{{Name: "a", Procs: 1}},
		Device: "ch_p4",
	}); err == nil {
		t.Error("ch_p4 without a network accepted")
	}
}

func TestTwoNodesHelper(t *testing.T) {
	topo := TwoNodes("bip")
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Ranks) != 2 {
		t.Fatalf("ranks = %d", len(sess.Ranks))
	}
	if sess.Ranks[0].ChMad == nil {
		t.Fatal("ch_mad device missing")
	}
	// Elected switch point for a BIP-only config is BIP's 7 KB.
	if got := sess.Ranks[0].ChMad.SwitchPoint(); got != 7<<10 {
		t.Fatalf("switch point = %d", got)
	}
}

func TestSwitchPointElectionInSession(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{{Name: "a", Procs: 1}, {Name: "b", Procs: 1}},
		Networks: []NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"a", "b"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"a", "b"}},
		},
	}
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	// §4.2.2: SCI present -> 8 KB even though Myrinet is also there.
	if got := sess.Ranks[0].ChMad.SwitchPoint(); got != 8<<10 {
		t.Fatalf("elected %d, want 8K", got)
	}
}

func TestRankPlacementAndNaming(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{{Name: "dual", Procs: 2}, {Name: "solo", Procs: 1}},
		Networks: []NetworkSpec{
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"dual", "solo"}},
		},
	}
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Ranks) != 3 {
		t.Fatalf("ranks = %d", len(sess.Ranks))
	}
	if sess.Ranks[0].Node != "dual" || sess.Ranks[2].Node != "solo" {
		t.Fatal("placement wrong")
	}
	if !strings.HasPrefix(sess.Ranks[0].Proc.Name, "dual.p") {
		t.Fatalf("multi-proc naming: %q", sess.Ranks[0].Proc.Name)
	}
	if sess.Ranks[2].Proc.Name != "solo" {
		t.Fatalf("single-proc naming: %q", sess.Ranks[2].Proc.Name)
	}
}

func TestUnroutableWithoutForwarding(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{
			{Name: "a", Procs: 1}, {Name: "gw", Procs: 1}, {Name: "b", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "n1", Protocol: "sisci", Nodes: []string{"a", "gw"}},
			{Name: "n2", Protocol: "bip", Nodes: []string{"gw", "b"}},
		},
		// Forwarding off: a cannot reach b.
	}
	err := func() error {
		sess, err := Build(topo)
		if err != nil {
			return err
		}
		return sess.Run(func(rank int, comm *mpi.Comm) error {
			if rank == 0 {
				return comm.Send([]byte{1}, 1, mpi.Byte, 2, 0)
			}
			if rank == 2 {
				_, err := comm.Recv(make([]byte, 1), 1, mpi.Byte, 0, 0)
				return err
			}
			return nil
		})
	}()
	if err == nil {
		t.Fatal("unroutable send should fail the session")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	_, err := Launch(TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if rank == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestParamsOverride(t *testing.T) {
	custom := netsim.SCISISCI()
	custom.WireLatency = 0 // unrealistically fast, to prove the override took
	topo := TwoNodes("sisci")
	topo.Networks[0].Params = &custom
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Networks["sisci"].Params.WireLatency != 0 {
		t.Fatal("params override ignored")
	}
}

func TestDeterministicSessions(t *testing.T) {
	run := func() int64 {
		sess, err := Build(TwoNodes("sisci"))
		if err != nil {
			t.Fatal(err)
		}
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			buf := make([]byte, 1000)
			for i := 0; i < 5; i++ {
				if rank == 0 {
					if err := comm.Send(buf, 1000, mpi.Byte, 1, 0); err != nil {
						return err
					}
					if _, err := comm.Recv(buf, 1000, mpi.Byte, 1, 0); err != nil {
						return err
					}
				} else {
					if _, err := comm.Recv(buf, 1000, mpi.Byte, 0, 0); err != nil {
						return err
					}
					if err := comm.Send(buf, 1000, mpi.Byte, 0, 0); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(sess.S.Now())
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("session nondeterministic: %d vs %d", got, first)
		}
	}
}
