package cluster

// Session-level tests of the observability wiring: the golden-trace pin
// (the virtual-time event stream of a small 2-cluster Bcast is identical
// across runs — tracing inherits the simulator's bit-determinism) and the
// Chrome export's track/tag structure the acceptance criteria name.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/trace"
)

// twoClusterTopo: two SCI islands of two nodes bridged by one TCP link
// whose endpoints (a1, b0) are the gateways; forwarding on, so a 256K
// Bcast from rank 0 crosses the bridge as relayed rendez-vous segments.
func twoClusterTopo(tr *trace.Tracer) Topology {
	return Topology{
		Nodes: []NodeSpec{
			{Name: "a0", Procs: 1}, {Name: "a1", Procs: 1},
			{Name: "b0", Procs: 1}, {Name: "b1", Procs: 1},
		},
		Networks: []NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: []string{"a0", "a1"}},
			{Name: "sciB", Protocol: "sisci", Nodes: []string{"b0", "b1"}},
			{Name: "gwAB", Protocol: "tcp", Nodes: []string{"a1", "b0"}},
		},
		Forwarding: true,
		Trace:      tr,
	}
}

func runTracedBcast(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.New(nil)
	const payload = 256 << 10
	_, err := Launch(twoClusterTopo(tr), func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, payload)
		if rank == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		return comm.Bcast(buf, payload, mpi.Byte, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func renderEvents(tr *trace.Tracer) string {
	var b strings.Builder
	for _, ev := range tr.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenTraceTwoClusterBcast: two runs of the same Bcast produce
// byte-identical event streams, and the stream contains the lifecycle the
// tracer exists to expose — rendez-vous segments tagged with rail/hop,
// gateway relay hops, schedule rounds.
func TestGoldenTraceTwoClusterBcast(t *testing.T) {
	s1 := renderEvents(runTracedBcast(t))
	s2 := renderEvents(runTracedBcast(t))
	if s1 != s2 {
		a, b := strings.Split(s1, "\n"), strings.Split(s2, "\n")
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				t.Fatalf("event %d diverged across runs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d lines", len(a), len(b))
	}
	if s1 == "" {
		t.Fatal("traced Bcast recorded no events")
	}
	for _, want := range []string{
		"rndv.seg",   // segmented rendez-vous body over the bridge
		"rail=",      // ...with rail/hop tags
		"relay.hop",  // the gateway forwarded it
		"sched.",     // collective schedule rounds
		"eager.send", // control/small traffic stayed eager
	} {
		if !strings.Contains(s1, want) {
			t.Errorf("event stream missing %q", want)
		}
	}
}

// runTracedMultiBcast runs a 256K Bcast with the multi-leader two-level
// schedule forced on the bridged ring-of-three (every island fronts two
// gateways, so each cluster's leader set has two members and the payload
// is sharded across both bridges), with a tracer installed.
func runTracedMultiBcast(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.New(nil)
	topo := ringClusterTopo([]int{3, 3, 3})
	topo.Trace = tr
	sess, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mpi.CollHierMulti)
	}
	const payload = 256 << 10
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, payload)
		if rank == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		return comm.Bcast(buf, payload, mpi.Byte, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenTraceMultiLeaderBcast extends the golden-trace pin to the
// multi-leader schedules: two runs are byte-identical, the schedule
// rounds carry the co-leader and gateway tags the multi-leader compilers
// attach, and the stream names more than one gateway — the shards
// visibly travel through distinct bridges instead of one funnel.
func TestGoldenTraceMultiLeaderBcast(t *testing.T) {
	s1 := renderEvents(runTracedMultiBcast(t))
	s2 := renderEvents(runTracedMultiBcast(t))
	if s1 != s2 {
		a, b := strings.Split(s1, "\n"), strings.Split(s2, "\n")
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				t.Fatalf("event %d diverged across runs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d lines", len(a), len(b))
	}
	for _, want := range []string{"sched.", "leader=", "gw="} {
		if !strings.Contains(s1, want) {
			t.Errorf("event stream missing %q", want)
		}
	}
	gws := map[string]bool{}
	for _, line := range strings.Split(s1, "\n") {
		if i := strings.Index(line, "gw="); i >= 0 {
			gws[strings.Fields(line[i:])[0]] = true
		}
	}
	if len(gws) < 2 {
		t.Errorf("multi-leader Bcast trace names %d gateway(s), want >= 2: %v", len(gws), gws)
	}
}

// TestChromeExportTracks: the Perfetto export names one track per rank
// plus the per-network and session-control tracks, and is valid JSON.
func TestChromeExportTracks(t *testing.T) {
	tr := runTracedBcast(t)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("Chrome export is not valid JSON:\n%.400s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"rank0(a0)"`, `"rank1(a1)"`, `"rank2(b0)"`, `"rank3(b1)"`,
		`"net:gwAB"`, `"session"`,
		`"rail":`, `"hop":`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome export missing %s", want)
		}
	}
}

// TestRegistryFeedsRelayStats: the always-on registry supplies the
// trunk-wait column without any tracer attached (nil Topology.Trace).
func TestRegistryFeedsRelayStats(t *testing.T) {
	topo := twoClusterTopo(nil)
	// A capped backbone makes the shared-trunk arbiter real: relayed
	// segments must queue for the bridge and accrue trunk wait.
	p, ok := netsim.ByProtocol(topo.Networks[2].Protocol)
	if !ok {
		t.Fatal("tcp preset missing")
	}
	p.NetworkBandwidth = p.Bandwidth / 4
	topo.Networks[2].Params = &p
	// A simultaneous relayed exchange a0<->b1 puts both directed pipes of
	// the bridge (a1->b0 and b0->a1) on the one trunk at once: whichever
	// direction injects second queues behind the other and accrues wait.
	const n = 256 << 10
	sess, err := Launch(topo, func(rank int, comm *mpi.Comm) error {
		peer := map[int]int{0: 3, 3: 0}[rank]
		if rank != 0 && rank != 3 {
			return nil
		}
		buf := make([]byte, n)
		got := make([]byte, n)
		_, err := comm.Sendrecv(buf, n, mpi.Byte, peer, 7, got, n, mpi.Byte, peer, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer != nil {
		t.Fatal("session grew a tracer without one being installed")
	}
	if sess.Metrics == nil {
		t.Fatal("session has no metrics registry")
	}
	rows := sess.RelayStats()
	if len(rows) == 0 {
		t.Fatal("no relay rows on a forwarded Bcast")
	}
	var waited bool
	for _, r := range rows {
		if r.TrunkWait > 0 {
			waited = true
		}
	}
	if !waited {
		t.Errorf("no gateway accrued trunk wait on a halved backbone: %+v", rows)
	}
}
