package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChrome renders the recorded stream as Chrome trace-event JSON
// (the "JSON array" flavor), loadable in Perfetto or chrome://tracing.
// Each session is a process group (pid), each track a thread (tid) with
// its registered name; timestamps and durations are virtual-time
// microseconds. Spans become complete ("X") events, instants "i",
// counter samples "C". The output is deterministic: metadata is emitted
// in sorted key order and events in record order.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}

	sessIDs := make([]int32, 0, len(t.sessNames))
	for id := range t.sessNames {
		sessIDs = append(sessIDs, id)
	}
	sort.Slice(sessIDs, func(i, j int) bool { return sessIDs[i] < sessIDs[j] })
	for _, id := range sessIDs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			id, strconv.Quote(t.sessNames[id])))
	}

	tracks := make([]trackKey, 0, len(t.trackNames))
	for k := range t.trackNames {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].sess != tracks[j].sess {
			return tracks[i].sess < tracks[j].sess
		}
		return tracks[i].track < tracks[j].track
	})
	for _, k := range tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			k.sess, k.track, strconv.Quote(t.trackNames[k])))
	}

	for _, ev := range t.events {
		emit(chromeEvent(ev))
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func chromeEvent(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%s,"cat":%q,"pid":%d,"tid":%d,"ts":%.3f`,
		strconv.Quote(ev.Name), ev.Kind.String(), ev.Sess, ev.Track, ev.TS.Micros())
	switch {
	case ev.Counter:
		fmt.Fprintf(&b, `,"ph":"C","args":{"value":%d}}`, ev.Args.Val)
		return b.String()
	case ev.Dur > 0:
		fmt.Fprintf(&b, `,"ph":"X","dur":%.3f`, ev.Dur.Micros())
	default:
		b.WriteString(`,"ph":"i","s":"t"`)
	}
	b.WriteString(`,"args":{`)
	argFirst := true
	arg := func(format string, args ...interface{}) {
		if !argFirst {
			b.WriteByte(',')
		}
		argFirst = false
		fmt.Fprintf(&b, format, args...)
	}
	a := ev.Args
	if a.HasPeer {
		arg(`"src":%d,"dst":%d`, a.Src, a.Dst)
	}
	if a.Bytes != 0 {
		arg(`"bytes":%d`, a.Bytes)
	}
	if a.Hop > 0 {
		arg(`"rail":%d,"hop":%d`, a.Rail, a.Hop)
	}
	if a.Seq != 0 {
		arg(`"seq":%d`, a.Seq)
	}
	if a.Val != 0 {
		arg(`"val":%d`, a.Val)
	}
	if a.Class != "" {
		arg(`"class":%s`, strconv.Quote(a.Class))
	}
	if a.Leader > 0 {
		arg(`"leader":%d`, a.Leader-1)
	}
	if a.GW != "" {
		arg(`"gw":%s`, strconv.Quote(a.GW))
	}
	b.WriteString("}}")
	return b.String()
}
