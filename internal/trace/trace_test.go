package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"mpichmad/internal/vtime"
)

func fixedClock(t vtime.Time) func() vtime.Time {
	return func() vtime.Time { return t }
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Instant(0, KPkt, "eager", Args{})
	tr.Span(0, KRndv, "body", 0, Args{})
	tr.Counter(0, KRelay, "depth", 3)
	tr.SetTrackName(0, "rank0")
	tr.SetClock(nil)
	if tr.BeginSession("s") != 0 {
		t.Fatal("nil BeginSession should return 0")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil Events = %v", evs)
	}
	if tail := tr.Tail(8); tail != nil {
		t.Fatalf("nil Tail = %v", tail)
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var arr []interface{}
	if err := json.Unmarshal([]byte(b.String()), &arr); err != nil {
		t.Fatalf("nil WriteChrome output invalid JSON: %v", err)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("a", "b", 1)
	r.SetMax("a", "b", 2)
	if r.Get("a", "b") != 0 {
		t.Fatal("nil Get != 0")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil Snapshot = %v", snap)
	}
}

func TestRingTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Push(Event{TS: vtime.Time(i)})
	}
	tail := r.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("tail len = %d", len(tail))
	}
	for i, want := range []vtime.Time{3, 4, 5} {
		if tail[i].TS != want {
			t.Fatalf("tail[%d].TS = %v, want %v", i, tail[i].TS, want)
		}
	}
	if got := len(r.Tail(0)); got != 4 {
		t.Fatalf("Tail(0) len = %d, want 4 (full ring)", got)
	}
	short := NewRing(4)
	short.Push(Event{TS: 9})
	if got := short.Tail(10); len(got) != 1 || got[0].TS != 9 {
		t.Fatalf("partial ring tail = %v", got)
	}
}

func TestRegistrySnapshotSortedAndAggregated(t *testing.T) {
	r := NewRegistry()
	r.Add("relay.bytes", "gwB", 100)
	r.Add("relay.bytes", "gwA", 7)
	r.Add("relay.bytes", "gwB", 28)
	r.SetMax("relay.qpeak", "gwA", 3)
	r.SetMax("relay.qpeak", "gwA", 2) // lower sample must not regress the peak
	snap := r.Snapshot()
	want := []Metric{
		{"relay.bytes", "gwA", 7},
		{"relay.bytes", "gwB", 128},
		{"relay.qpeak", "gwA", 3},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
	if r.Get("relay.bytes", "gwB") != 128 {
		t.Fatalf("Get = %d", r.Get("relay.bytes", "gwB"))
	}
}

// TestChromeOutput pins the sink end to end: valid JSON, session and
// track metadata, the three phases, and the arg encoding.
func TestChromeOutput(t *testing.T) {
	now := vtime.Time(0)
	tr := New(func() vtime.Time { return now })
	tr.BeginSession("unit")
	tr.SetTrackName(0, "rank0")
	tr.SetTrackName(2, "net:bb")
	now = 1500
	tr.Instant(0, KRndv, "rndv.req", Args{HasPeer: true, Src: 0, Dst: 8, Bytes: 4096, Seq: 7})
	start := now
	now = 3500
	tr.Span(0, KRndv, "rndv.seg", start, Args{HasPeer: true, Src: 0, Dst: 8, Bytes: 1024, Rail: 1, Hop: 2})
	tr.Counter(2, KRelay, "relay.depth", 3)

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := b.String()
	var arr []map[string]interface{}
	if err := json.Unmarshal([]byte(out), &arr); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	// 2 metadata (process + 2 threads = 3) + 3 events.
	if len(arr) != 6 {
		t.Fatalf("got %d records, want 6:\n%s", len(arr), out)
	}
	for _, want := range []string{
		`"process_name"`, `"unit"`, `"rank0"`, `"net:bb"`,
		`"ph":"X"`, `"ph":"i"`, `"ph":"C"`,
		`"ts":1.500`, `"dur":2.000`,
		`"rail":1,"hop":2`, `"seq":7`, `"value":3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s:\n%s", want, out)
		}
	}
}

func TestFlightRecorderTail(t *testing.T) {
	now := vtime.Time(0)
	tr := New(func() vtime.Time { return now })
	tr.BeginSession("unit")
	for i := 0; i < DefaultRingSize+10; i++ {
		now = vtime.Time(i) * 1000
		tr.Instant(0, KPkt, "eager", Args{HasPeer: true, Src: int32(i), Dst: 1})
	}
	tail := tr.Tail(4)
	if len(tail) != 4 {
		t.Fatalf("tail len = %d", len(tail))
	}
	// Oldest-first, ending at the most recent event.
	if !strings.Contains(tail[3], "src=73") {
		t.Fatalf("tail[3] = %q, want the last event (src=73)", tail[3])
	}
	if !strings.Contains(tail[0], "src=70") {
		t.Fatalf("tail[0] = %q, want src=70", tail[0])
	}
}

// BenchmarkNilTracer measures the "tracing disabled" cost the tentpole
// requires to be one branch: a nil-receiver call on the hot path.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	a := Args{HasPeer: true, Src: 1, Dst: 2, Bytes: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(0, KPkt, "eager", a)
	}
}

// BenchmarkNilRegistry: same bar for the metrics side.
func BenchmarkNilRegistry(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("eager.bytes", "san", 4096)
	}
}

// BenchmarkLiveInstant is the enabled-path cost, for scale: recording
// appends one Event value and rotates the flight ring.
func BenchmarkLiveInstant(b *testing.B) {
	tr := New(fixedClock(0))
	tr.BeginSession("bench")
	a := Args{HasPeer: true, Src: 1, Dst: 2, Bytes: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(0, KPkt, "eager", a)
	}
}
