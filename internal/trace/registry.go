package trace

import "sort"

// regKey identifies one metric instance. A struct key (not a formatted
// string) keeps Add/SetMax allocation-free on hot paths; callers cache
// their label strings once (device class, gateway name) and reuse them.
type regKey struct {
	name  string
	label string
}

// Metric is one (name, label, value) row of a registry snapshot.
type Metric struct {
	Name  string
	Label string
	Value int64
}

// Registry aggregates counters and high-water gauges per device class
// and per gateway/network. Like the Tracer, all methods are nil-safe so
// instrumented code needs no wiring checks; unlike the Tracer, sessions
// always carry a registry (it feeds stats.RelayTable), tracing or not.
type Registry struct {
	m map[regKey]*Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[regKey]*Metric{}}
}

func (r *Registry) metric(name, label string) *Metric {
	k := regKey{name, label}
	m := r.m[k]
	if m == nil {
		m = &Metric{Name: name, Label: label}
		r.m[k] = m
	}
	return m
}

// Add accumulates v into the (name, label) counter.
func (r *Registry) Add(name, label string, v int64) {
	if r == nil {
		return
	}
	r.metric(name, label).Value += v
}

// SetMax raises the (name, label) gauge to v if v is higher — the
// high-water pattern (queue depth peaks, trunk backlog peaks).
func (r *Registry) SetMax(name, label string, v int64) {
	if r == nil {
		return
	}
	if m := r.metric(name, label); v > m.Value {
		m.Value = v
	}
}

// Get reads a metric, zero if absent (or the registry is nil).
func (r *Registry) Get(name, label string) int64 {
	if r == nil {
		return 0
	}
	if m := r.m[regKey{name, label}]; m != nil {
		return m.Value
	}
	return 0
}

// Snapshot returns every metric sorted by (name, label) — a
// deterministic structured export regardless of map order.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.m))
	for _, m := range r.m {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}
