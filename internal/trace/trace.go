// Package trace is the observability layer of the simulated stack: a
// virtual-time event tracer, a counter/gauge registry, and a bounded
// flight recorder.
//
// Every event is stamped with vtime (never the wall clock), so traces
// are as deterministic as the simulation itself: the same experiment
// produces a byte-identical event stream on every run, on any machine,
// which makes traces diffable and golden-testable. Events are typed
// (Kind) and carry a fixed-field Args value — no maps, no interface
// boxing — so recording stays allocation-light on the transport's hot
// paths, and a nil *Tracer costs exactly one branch per call site.
//
// Two sinks consume the stream:
//
//   - WriteChrome renders Chrome trace-event JSON loadable in Perfetto
//     (chrome://tracing), one process group per session, one track per
//     rank/gateway/network, timestamps in virtual microseconds.
//   - the flight recorder Ring keeps the last N events; vtime deadlock
//     reports and ch_mad invariant-audit failures dump its tail so the
//     moments before a hang are always in the error text.
package trace

import (
	"fmt"
	"strings"

	"mpichmad/internal/vtime"
)

// Kind classifies an event for filtering and for the Chrome "cat" field.
type Kind uint8

const (
	KCtrl   Kind = iota // session control: replan, run lifecycle
	KPkt                // eager packet lifecycle
	KRndv               // rendez-vous request/ack/body/segments
	KRelay              // gateway store-and-forward hops
	KCredit             // relay credit admission waits
	KSched              // collective schedule rounds
	KNet                // netsim trunk queueing
)

func (k Kind) String() string {
	switch k {
	case KCtrl:
		return "ctrl"
	case KPkt:
		return "pkt"
	case KRndv:
		return "rndv"
	case KRelay:
		return "relay"
	case KCredit:
		return "credit"
	case KSched:
		return "sched"
	case KNet:
		return "net"
	}
	return "?"
}

// Args is the fixed argument set an event may carry. Zero fields are
// elided from rendered output: Src/Dst are elided unless HasPeer is set
// (rank 0 is a valid endpoint), Rail/Hop unless Hop > 0, the rest when
// zero.
type Args struct {
	HasPeer  bool
	Src, Dst int32
	Bytes    int64
	Rail     int16 // stripe rail index (PathID) when Hop > 0
	Hop      int16 // remaining hop budget when relayed
	Seq      uint32
	Val      int64
	Class    string // device class ("self"/"smp"/"san"/"wan") or peer label
	Leader   int16  // 1 + co-leader (shard) index on multi-leader rounds; 0 = none
	GW       string // gateway network a multi-leader lane rides (sched rounds, relay hops)
}

// Event is one recorded trace event. Spans are recorded at completion
// (Dur > 0, Chrome phase "X"); instants have Dur == 0; counters carry
// their sample in Args.Val.
type Event struct {
	TS      vtime.Time
	Dur     vtime.Duration
	Kind    Kind
	Name    string
	Sess    int32 // Chrome pid: one process group per built session
	Track   int32 // Chrome tid: rank, control, or network track
	Counter bool
	Args    Args
}

// String renders the event for flight-recorder tails and golden tests.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%11.3fus s%d/t%-2d %-6s %s", e.TS.Micros(), e.Sess, e.Track, e.Kind, e.Name)
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%.3fus", e.Dur.Micros())
	}
	if e.Counter {
		fmt.Fprintf(&b, " val=%d", e.Args.Val)
		return b.String()
	}
	a := e.Args
	if a.HasPeer {
		fmt.Fprintf(&b, " src=%d dst=%d", a.Src, a.Dst)
	}
	if a.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", a.Bytes)
	}
	if a.Hop > 0 {
		fmt.Fprintf(&b, " rail=%d hop=%d", a.Rail, a.Hop)
	}
	if a.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", a.Seq)
	}
	if a.Val != 0 {
		fmt.Fprintf(&b, " val=%d", a.Val)
	}
	if a.Class != "" {
		fmt.Fprintf(&b, " class=%s", a.Class)
	}
	if a.Leader > 0 {
		fmt.Fprintf(&b, " leader=%d", a.Leader-1)
	}
	if a.GW != "" {
		fmt.Fprintf(&b, " gw=%s", a.GW)
	}
	return b.String()
}

// trackKey identifies one named track within one session.
type trackKey struct {
	sess, track int32
}

// Tracer records the event stream. All recording methods are nil-safe:
// calling them on a nil *Tracer returns immediately, so instrumented
// code pays one branch when tracing is off (measured by
// BenchmarkNilTracer). The simulator is cooperatively scheduled — one
// task runs at a time — so the tracer needs (and, per the determinism
// rules, may have) no locks.
type Tracer struct {
	clock      func() vtime.Time
	events     []Event
	ring       *Ring
	sess       int32
	sessNames  map[int32]string
	trackNames map[trackKey]string
}

// DefaultRingSize is the flight-recorder depth used by New.
const DefaultRingSize = 64

// New creates a Tracer reading virtual time from clock (typically
// Scheduler.Now of the session being traced).
func New(clock func() vtime.Time) *Tracer {
	return &Tracer{
		clock:      clock,
		ring:       NewRing(DefaultRingSize),
		sessNames:  map[int32]string{},
		trackNames: map[trackKey]string{},
	}
}

// SetClock swaps the virtual-time source; sessions built after the
// first one re-point the tracer at their own scheduler.
func (t *Tracer) SetClock(clock func() vtime.Time) {
	if t == nil {
		return
	}
	t.clock = clock
}

// BeginSession starts a new Chrome process group (pid) and returns its
// id. Experiments build many sessions; giving each its own group keeps
// their rank tracks from interleaving in Perfetto.
func (t *Tracer) BeginSession(name string) int32 {
	if t == nil {
		return 0
	}
	t.sess++
	t.sessNames[t.sess] = name
	return t.sess
}

// SetTrackName names a track (Chrome tid) of the current session, e.g.
// "rank3" or "net:bb".
func (t *Tracer) SetTrackName(track int, name string) {
	if t == nil {
		return
	}
	t.trackNames[trackKey{t.sess, int32(track)}] = name
}

func (t *Tracer) now() vtime.Time {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

func (t *Tracer) record(ev Event) {
	ev.Sess = t.sess
	t.events = append(t.events, ev)
	t.ring.Push(ev)
}

// Instant records a point event at the current virtual time.
func (t *Tracer) Instant(track int, kind Kind, name string, a Args) {
	if t == nil {
		return
	}
	t.record(Event{TS: t.now(), Kind: kind, Name: name, Track: int32(track), Args: a})
}

// Span records a completed interval from start to the current virtual
// time. Call sites capture start inside their own `if tracer != nil`
// guard, so the disabled path never reads the clock.
func (t *Tracer) Span(track int, kind Kind, name string, start vtime.Time, a Args) {
	if t == nil {
		return
	}
	now := t.now()
	t.record(Event{TS: start, Dur: now.Sub(start), Kind: kind, Name: name, Track: int32(track), Args: a})
}

// Counter records a counter sample (Chrome "C" event, rendered as a
// stacked area chart in Perfetto), e.g. a relay queue depth.
func (t *Tracer) Counter(track int, kind Kind, name string, v int64) {
	if t == nil {
		return
	}
	t.record(Event{TS: t.now(), Kind: kind, Name: name, Track: int32(track), Counter: true, Args: Args{Val: v}})
}

// Events returns the full recorded stream in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Tail renders the last n flight-recorder events, oldest first. It is
// what deadlock and audit errors embed.
func (t *Tracer) Tail(n int) []string {
	if t == nil {
		return nil
	}
	evs := t.ring.Tail(n)
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.String()
	}
	return out
}
