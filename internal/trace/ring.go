package trace

// Ring is the bounded flight recorder: a fixed-capacity ring of the
// most recent events. The Tracer pushes every recorded event through
// one; error paths (vtime deadlock dumps, ch_mad invariant audits) read
// its tail so the last moments before a failure travel with the error.
type Ring struct {
	buf  []Event
	next int
	full bool
}

// NewRing creates a recorder keeping the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Push appends an event, evicting the oldest once the ring is full.
func (r *Ring) Push(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Tail returns the last n events, oldest first (fewer if the ring holds
// fewer). n <= 0 returns everything held.
func (r *Ring) Tail(n int) []Event {
	held := r.Len()
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, 0, n)
	// Oldest element sits at next when full, else at 0.
	start := 0
	if r.full {
		start = r.next
	}
	for i := held - n; i < held; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
