package core

// Tests of the relay hardening: a gateway with no onward route must not
// crash the simulation — rendez-vous senders get a proper error (nack),
// eager messages are counted and dropped.

import (
	"fmt"
	"strings"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// brokenGatewayRig wires rank0 -> rank1(gateway) -> rank2 over two
// networks but leaves the gateway without a route to rank2: the
// misconfigured multi-hop topology of the satellite issue.
func brokenGatewayRig(t *testing.T) (*vtime.Scheduler, []*marcel.Proc, []*Device) {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(200 * vtime.Second))
	sci := netsim.NewNetwork(s, "SCI", netsim.SCISISCI())
	myri := netsim.NewNetwork(s, "Myrinet", netsim.MyrinetBIP())

	procs := make([]*marcel.Proc, 3)
	devs := make([]*Device, 3)
	for i := 0; i < 3; i++ {
		procs[i] = marcel.NewProc(s, fmt.Sprintf("n%d", i))
		devs[i] = New(procs[i], adi.NewEngine(procs[i], i), i)
	}
	inst0 := madeleine.New(procs[0])
	ch0, err := inst0.NewChannel("sci", sci)
	if err != nil {
		t.Fatal(err)
	}
	inst1 := madeleine.New(procs[1])
	ch1s, err := inst1.NewChannel("sci", sci)
	if err != nil {
		t.Fatal(err)
	}
	ch1m, err := inst1.NewChannel("myri", myri)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := madeleine.New(procs[2])
	ch2, err := inst2.NewChannel("myri", myri)
	if err != nil {
		t.Fatal(err)
	}
	devs[0].AddChannel(ch0)
	devs[1].AddChannel(ch1s)
	devs[1].AddChannel(ch1m)
	devs[2].AddChannel(ch2)

	devs[0].AddRoute(1, Route{Channel: ch0, NextNode: "n1"})
	devs[0].AddRoute(2, Route{Channel: ch0, NextNode: "n1", Hops: 2}) // via gateway
	devs[1].AddRoute(0, Route{Channel: ch1s, NextNode: "n0"})
	// Deliberately missing: devs[1].AddRoute(2, ...).
	devs[2].AddRoute(1, Route{Channel: ch2, NextNode: "n1"})
	for i := 0; i < 3; i++ {
		devs[i].Start()
	}
	return s, procs, devs
}

// TestRelayNoRouteNacksRendezvous: a rendez-vous request relayed into a
// routing hole surfaces as an error on the sender's request instead of a
// panic that kills every rank.
func TestRelayNoRouteNacksRendezvous(t *testing.T) {
	s, procs, devs := brokenGatewayRig(t)
	big := pattern(100000) // above every switch point: rendez-vous
	var sendErr error
	procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 1, Context: 0, Len: len(big)},
			Dst: 2, Data: big, Done: vtime.NewEvent(s, "send"),
		}
		devs[0].Send(sr)
		sr.Done.Wait()
		sendErr = sr.Err
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Fatal("rendez-vous into a routing hole must fail the sender")
	}
	if !strings.Contains(sendErr.Error(), "no route to rank 2") {
		t.Fatalf("unhelpful error: %v", sendErr)
	}
	if devs[1].NRelayDrops != 1 {
		t.Fatalf("gateway drops = %d, want 1", devs[1].NRelayDrops)
	}
	if sends, _ := devs[0].Pending(); sends != 0 {
		t.Fatalf("sender still holds %d pending rendez-vous", sends)
	}
}

// TestRelayNoRouteDropsEager: an eager message into the same hole is
// counted and dropped; the sender (already locally complete, per MPI
// eager semantics) and the rest of the simulation keep running.
func TestRelayNoRouteDropsEager(t *testing.T) {
	s, procs, devs := brokenGatewayRig(t)
	small := pattern(64)
	procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 1, Context: 0, Len: len(small)},
			Dst: 2, Data: small, Done: vtime.NewEvent(s, "send"),
		}
		devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Errorf("eager send should complete locally: %v", sr.Err)
		}
	})
	// The eager sender completes before the packet even arrives at the
	// gateway; keep one application task alive so the gateway's polling
	// daemon is still running when the relay attempt happens.
	procs[1].Spawn("linger", func() { procs[1].Sleep(50 * vtime.Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if devs[1].NRelayDrops != 1 {
		t.Fatalf("gateway drops = %d, want 1", devs[1].NRelayDrops)
	}
}
