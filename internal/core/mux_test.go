package core

import "testing"

// TestSwitchPointToResolution pins the per-link threshold resolution
// order: forced uniform value (SetSwitchPoint / PerLinkSwitch off), then
// the measured per-class override, then the route's native SwitchBytes,
// then the elected device-wide fallback.
func TestSwitchPointToResolution(t *testing.T) {
	d := New(nil, nil, 0)
	d.switchPoint = 8 << 10 // stand-in for the elected fallback

	d.AddRoute(1, Route{SwitchBytes: 64 << 10, Class: "wan"})
	d.AddRoute(2, Route{Class: "san"}) // no native threshold recorded

	if got := d.SwitchPointTo(9); got != 8<<10 {
		t.Errorf("unroutable dst: SwitchPointTo = %d, want elected 8K", got)
	}
	if got := d.SwitchPointTo(1); got != 64<<10 {
		t.Errorf("native SwitchBytes: SwitchPointTo = %d, want 64K", got)
	}
	if got := d.SwitchPointTo(2); got != 8<<10 {
		t.Errorf("class without override or SwitchBytes: SwitchPointTo = %d, want elected 8K", got)
	}

	// A measured per-class override beats the route's native threshold.
	d.SetClassSwitchPoint("wan", 16<<10)
	if got := d.SwitchPointTo(1); got != 16<<10 {
		t.Errorf("class override: SwitchPointTo = %d, want 16K", got)
	}
	if got := d.ClassSwitchPoints()["wan"]; got != 16<<10 {
		t.Errorf("ClassSwitchPoints[wan] = %d, want 16K", got)
	}
	// Removing the override falls back to the native threshold.
	d.SetClassSwitchPoint("wan", 0)
	if got := d.SwitchPointTo(1); got != 64<<10 {
		t.Errorf("override removed: SwitchPointTo = %d, want 64K", got)
	}

	// The uniform ablation pins every link to the device-wide value.
	d.PerLinkSwitch = false
	if got := d.SwitchPointTo(1); got != 8<<10 {
		t.Errorf("PerLinkSwitch off: SwitchPointTo = %d, want 8K", got)
	}
	d.PerLinkSwitch = true

	// A forced SetSwitchPoint (ablation X1) wins over everything.
	d.SetClassSwitchPoint("wan", 16<<10)
	d.SetSwitchPoint(4 << 10)
	if got := d.SwitchPointTo(1); got != 4<<10 {
		t.Errorf("forced uniform: SwitchPointTo = %d, want 4K", got)
	}
}
