package core

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// Route tells the device how to reach a destination rank: which Madeleine
// channel to use and the next-hop node on that channel. When the next hop
// is a gateway (forwarding extension, §6), NextNode differs from the
// destination's own node and intermediate devices relay the message.
type Route struct {
	Channel  *madeleine.Channel
	NextNode string

	// Hops is the full path length to the destination as computed by the
	// routing subsystem (internal/route): 1 for a direct neighbour, more
	// when gateways relay. Zero means unknown (treated as direct).
	Hops int

	// SegBytes is the relay pipelining segment for multi-hop routes: the
	// bottleneck network's recommended pipeline segment along the path.
	// Rendez-vous bodies larger than this are shipped as independent
	// per-segment messages so gateways overlap inbound and outbound
	// transfers instead of store-and-forwarding the whole body. Zero
	// disables segmentation.
	SegBytes int

	// Cost is the planner's wire cost of the full path in seconds at the
	// reference payload (route.Plan.PathCostOf): what rail installation
	// ranks and caps alternates by. Zero means unknown.
	Cost float64

	// BottleneckCost is the most expensive single hop of the path at the
	// reference payload (route.Plan.PathBottleneckOf) — the pacing rate
	// of a pipelined segment train on this rail. The striper weights each
	// rail's share by 1/BottleneckCost (falling back to 1/Cost, then
	// equal shares): two rails whose bottleneck is one bridge each split
	// evenly no matter how many cheap hops the longer one adds.
	BottleneckCost float64

	// SwitchBytes is the per-link eager->rendez-vous threshold of this
	// route: the smallest native switch point of the networks along the
	// path (route.Plan.PathSwitchOf), so a payload at or below it rides
	// the eager path on every hop. Zero means unknown; the device falls
	// back to its elected device-wide threshold.
	SwitchBytes int

	// Class names the route's device class ("smp", "san", "wan" — the
	// dominating tier along the path, route.Plan.PathClassOf), letting
	// measured per-class threshold overrides apply to the right links.
	// Empty means unclassified.
	Class string
}

// Device is the ch_mad MPICH device of one process. It satisfies
// adi.Device and handles all inter-node traffic of that process over any
// number of networks simultaneously.
type Device struct {
	proc *marcel.Proc
	eng  *adi.Engine
	rank int

	channels []*madeleine.Channel
	routes   map[int]Route
	// rails, when a destination has them, is the full ordered set of
	// edge-disjoint routes toward it (rails[dst][0] == routes[dst]); the
	// striper spreads large multi-hop rendez-vous bodies across them and
	// relaying gateways keep stripes on the rail the header's PathID
	// names. Destinations without an entry have the single primary route.
	rails map[int][]Route

	// railSource, when set, resolves a destination's rails on first use
	// (SetRailSource): routes/rails then act as the cache of resolved
	// destinations, so a 1000-rank session never installs the quadratic
	// all-pairs route table — only the pairs that actually talk. A
	// destination the source resolves to nothing is remembered in railMiss
	// so unroutable sends stay O(1) too.
	railSource func(dst int) []Route
	railMiss   map[int]bool

	// switchPoint is the device-wide eager->rendez-vous threshold elected
	// by ElectSwitchPoint — the single value the ADI's MPID_Device
	// structure historically allowed (§4.2.2). With the per-link device
	// mux it is only the fallback: Send resolves the threshold per
	// destination (SwitchPointTo) from the route's SwitchBytes and any
	// measured per-class override, unless PerLinkSwitch is off or
	// SetSwitchPoint forced a uniform value.
	switchPoint int

	// forcedSwitch records that SetSwitchPoint explicitly overrode the
	// threshold (ablation X1): the forced value then governs every link.
	forcedSwitch bool

	// PerLinkSwitch enables per-destination threshold resolution (on by
	// default). Off, the device behaves like the historical
	// single-threshold MPID_Device — the uniform ch_mad-only ablation.
	PerLinkSwitch bool

	// classSwitch holds measured per-device-class threshold overrides
	// installed by the autotuner (adi.ClassTuner); they take precedence
	// over the route's native SwitchBytes for links of that class.
	classSwitch map[string]int

	// MonolithicEager reverts the §4.2.2 header/body split to the naive
	// scheme: eager data is copied into a constant-size
	// MPID_PKT_MAX_DATA_SIZE buffer that is transmitted whole, padding
	// and all. Only used by the X2 ablation benchmark.
	MonolithicEager bool

	// RelayPipelining enables the segmented multi-hop rendez-vous path
	// (on by default). Off, large bodies cross each gateway whole —
	// the original store-and-forward §6 behaviour (ablation/benchmarks).
	RelayPipelining bool

	// RelayStriping enables striping large multi-hop rendez-vous bodies
	// across a destination's edge-disjoint rails (on by default; only
	// takes effect when the routing layer installed more than one rail).
	// Segments are dealt cost-weighted round-robin, tagged with the rail
	// index (header PathID), and reassembled by offset at the receiver.
	RelayStriping bool

	// RelayWindow bounds this device's store-and-forward queue: at most
	// this many relayed bodies may be held for re-emission concurrently
	// (the gateway's credit window). Zero keeps the historical unbounded
	// queue. When the window is full, a relayed rendez-vous REQUEST is
	// refused with a busy nack (the sender backs off and retries — new
	// transfers are not admitted through a full gateway) and in-flight
	// body packets defer the polling thread until a credit frees, which
	// backpressures the inbound channel. Set before Start.
	RelayWindow int

	// RelayLossyEager models a bounded relay with lossy overflow: a
	// relayed eager message arriving at a full gateway is dropped (and
	// counted under NDropsQueueFull) instead of deferred. Off by default —
	// the ablation/robustness-test mode, since MPI eager semantics give
	// the sender no completion to retry from.
	RelayLossyEager bool

	// Trace, when set, records the packet lifecycle (eager send/recv,
	// RNDV request->ack->body, relay hops, credit waits) on TraceTrack
	// (the owning rank's track). Metrics aggregates counters per device
	// class and — under MetricsLabel, the gateway's display name cached
	// once at wiring time so hot paths never format strings — per
	// gateway. Both are nil-safe: a nil Trace/Metrics costs one branch
	// per site. Set by the cluster wiring before Start.
	Trace        *trace.Tracer
	TraceTrack   int
	Metrics      *trace.Registry
	MetricsLabel string

	nextReq  uint32
	nextSync uint32
	pending  map[uint32]*adi.SendReq // ReqID -> rndv send awaiting OK
	retries  map[uint32]int          // ReqID -> busy-nack retry count
	rndvRx   map[uint32]*rndvState   // SyncID -> matched receive

	stopped bool

	// Counters for tests and experiment reports.
	NEager, NRndv, NForwarded uint64
	// RelayBytes counts body bytes this device relayed for other ranks.
	// NRelayDrops counts relayed messages dropped, broken out by reason:
	// NDropsNoRoute for lack of an onward route (rendez-vous requests are
	// additionally nacked back to the sender; other packet types are
	// silently dropped — see relayNoRoute) and NDropsQueueFull for
	// admission-control overflow under RelayLossyEager.
	RelayBytes      uint64
	NRelayDrops     uint64
	NDropsNoRoute   uint64
	NDropsQueueFull uint64
	// NRelayDeferred counts relayed bodies that had to wait for a relay
	// credit (the bounded queue was full); NRelayBusy counts rendez-vous
	// requests refused with a busy nack. NRndvRetries counts this
	// device's own sends that were busy-nacked and retried.
	NRelayDeferred uint64
	NRelayBusy     uint64
	NRndvRetries   uint64
	// RelayQueuePeak is the peak number of concurrently outstanding
	// forward re-emissions — the gateway's store-and-forward queue depth.
	// With a RelayWindow configured it never exceeds the window.
	RelayQueuePeak int
	relayInFlight  int
	relayParking   int        // polling threads parked (or about to park) for a credit
	relayCredits   *vtime.Sem // nil when RelayWindow == 0
	relayHighSince int        // queue-depth high-water since TakeRelayHigh
	// relayWindowHinted marks RelayWindow as tuner-installed
	// (SetRelayWindowHint); later hints only ever widen it.
	relayWindowHinted bool
}

// rndvState is the receiver-side rendez-vous bookkeeping: the paper's
// MPID_RNDV_T synchronization structure (a semaphore plus the owning
// rhandle); here the rhandle's Done event plays the semaphore.
type rndvState struct {
	r   *adi.RecvReq
	env adi.Envelope

	// remaining tracks outstanding body bytes when the data arrives as
	// pipelined segments (PktRndvSeg); scratch is the landing area for
	// truncating receives, allocated on first need.
	remaining int
	scratch   []byte
}

// segLanding returns the landing area for one pipelined segment
// [offset, offset+n) of the body. Truncating receives land in a scratch
// buffer sized to the announced body; either way the bounds are validated
// against that announcement, so a corrupted header surfaces as a protocol
// error instead of a slice panic deep in the poll loop.
func (st *rndvState) segLanding(offset, n int, truncated bool) ([]byte, error) {
	if offset < 0 || n < 0 || offset+n > st.env.Len {
		return nil, fmt.Errorf("RNDV segment [%d,%d) outside announced body of %d bytes",
			offset, offset+n, st.env.Len)
	}
	if truncated {
		if st.scratch == nil {
			st.scratch = make([]byte, st.env.Len)
		}
		return st.scratch[offset : offset+n], nil
	}
	return st.r.Buf[offset : offset+n], nil
}

// segDone marks n landed body bytes and reports whether the transfer is
// complete.
func (st *rndvState) segDone(n int) bool {
	st.remaining -= n
	return st.remaining <= 0
}

// New creates a ch_mad device for one process. Channels are added with
// AddChannel and destinations with AddRoute; call Start once wiring is
// complete to launch the per-channel polling threads (§4.2.3).
func New(p *marcel.Proc, eng *adi.Engine, rank int) *Device {
	return &Device{
		proc:            p,
		eng:             eng,
		rank:            rank,
		RelayPipelining: true,
		RelayStriping:   true,
		PerLinkSwitch:   true,
		routes:          make(map[int]Route),
		rails:           make(map[int][]Route),
		pending:         make(map[uint32]*adi.SendReq),
		retries:         make(map[uint32]int),
		rndvRx:          make(map[uint32]*rndvState),
	}
}

// Name implements adi.Device.
func (d *Device) Name() string { return "ch_mad" }

// Rank returns the owning process's world rank.
func (d *Device) Rank() int { return d.rank }

// AddChannel registers a Madeleine channel (one per network protocol).
func (d *Device) AddChannel(ch *madeleine.Channel) {
	d.channels = append(d.channels, ch)
}

// AddRoute maps a destination world rank to a channel and next-hop node
// (the single primary route; any previously installed rails are replaced).
func (d *Device) AddRoute(rank int, r Route) {
	d.routes[rank] = r
	delete(d.rails, rank)
	delete(d.railMiss, rank)
}

// SetRailSource installs a lazy rail resolver and drops every cached
// route: subsequent lookups resolve destinations on first use through fn
// and cache the result. Called by the cluster wiring at build time and
// again on every re-plan (the reinstall-everything of the eager scheme
// becomes an O(1) cache flush).
func (d *Device) SetRailSource(fn func(dst int) []Route) {
	d.railSource = fn
	d.routes = make(map[int]Route)
	d.rails = make(map[int][]Route)
	d.railMiss = make(map[int]bool)
}

// ensureRoute resolves dst through the rail source if it is not cached
// yet. Resolution is pure computation (no virtual-time events), so it is
// safe from polling threads and cannot perturb schedule determinism —
// lazily resolved sessions replay eager sessions exactly.
func (d *Device) ensureRoute(dst int) {
	if d.railSource == nil || d.railMiss[dst] {
		return
	}
	if _, ok := d.routes[dst]; ok {
		return
	}
	rs := d.railSource(dst)
	if len(rs) == 0 {
		d.railMiss[dst] = true
		return
	}
	d.routes[dst] = rs[0]
	if len(rs) > 1 {
		d.rails[dst] = append([]Route(nil), rs...)
	}
}

// SetRails installs the full ordered set of edge-disjoint routes toward a
// destination: rs[0] becomes the primary route (what Send and control
// traffic use), the rest are the extra rails the striper spreads large
// rendez-vous bodies over. Called by the cluster wiring and by adaptive
// re-plans; an empty rs removes the destination entirely.
func (d *Device) SetRails(rank int, rs []Route) {
	delete(d.railMiss, rank)
	if len(rs) == 0 {
		delete(d.routes, rank)
		delete(d.rails, rank)
		return
	}
	d.routes[rank] = rs[0]
	if len(rs) == 1 {
		delete(d.rails, rank)
		return
	}
	d.rails[rank] = append([]Route(nil), rs...)
}

// Rails returns every installed route toward a destination, primary
// first; nil when the destination is unroutable.
func (d *Device) Rails(rank int) []Route {
	d.ensureRoute(rank)
	if rs, ok := d.rails[rank]; ok {
		return rs
	}
	if rt, ok := d.routes[rank]; ok {
		return []Route{rt}
	}
	return nil
}

// Channels returns the registered channels (for tests and experiments).
func (d *Device) Channels() []*madeleine.Channel { return d.channels }

// RouteTo returns the route used to reach a destination world rank,
// ok=false when the destination is unroutable from this process.
func (d *Device) RouteTo(dst int) (Route, bool) {
	d.ensureRoute(dst)
	rt, ok := d.routes[dst]
	return rt, ok
}

// RouteNet returns the network metadata of the channel that carries
// traffic toward dst: the channel name and its calibrated cost model.
// Topology-aware layers (hierarchy discovery, tuning tables, diagnostics)
// use it to tell fast intra-cluster routes from slow backbone ones.
func (d *Device) RouteNet(dst int) (name string, params netsim.Params, ok bool) {
	rt, ok := d.RouteTo(dst)
	if !ok || rt.Channel == nil {
		return "", netsim.Params{}, false
	}
	return rt.Channel.Name, rt.Channel.Params, true
}

// ElectSwitchPoint applies the §4.2.2 policy to pick the device's single
// threshold: "the switch point value for the ch_mad device is 8 KB if SCI
// is a network supported within the material configuration. If not, the
// switch point of the most performant network is elected."
func (d *Device) ElectSwitchPoint() int {
	best := 0
	var bestBW float64 = -1
	for _, ch := range d.channels {
		p := ch.Params
		if p.Protocol == "sisci" {
			d.switchPoint = p.SwitchPoint
			return d.switchPoint
		}
		if p.Bandwidth > bestBW {
			bestBW = p.Bandwidth
			best = p.SwitchPoint
		}
	}
	if best == 0 {
		best = 64 << 10
	}
	d.switchPoint = best
	return best
}

// SetSwitchPoint overrides the elected threshold (ablation X1) with a
// uniform value that then governs every link, per-link resolution
// included.
func (d *Device) SetSwitchPoint(n int) {
	d.switchPoint = n
	d.forcedSwitch = true
}

// SwitchPoint implements adi.Device: the device-wide fallback threshold.
func (d *Device) SwitchPoint() int { return d.switchPoint }

// SwitchPointTo implements adi.LinkTuner: the eager->rendez-vous
// threshold for the link toward dst. Resolution order: a forced uniform
// value (SetSwitchPoint / PerLinkSwitch off), then a measured per-class
// override for the route's device class, then the route's native
// SwitchBytes (smallest switch point along its path), then the elected
// device-wide fallback.
func (d *Device) SwitchPointTo(dst int) int {
	if d.forcedSwitch || !d.PerLinkSwitch {
		return d.switchPoint
	}
	rt, ok := d.RouteTo(dst)
	if !ok {
		return d.switchPoint
	}
	if rt.Class != "" {
		if sp, ok := d.classSwitch[rt.Class]; ok && sp > 0 {
			return sp
		}
	}
	if rt.SwitchBytes > 0 {
		return rt.SwitchBytes
	}
	return d.switchPoint
}

// SetClassSwitchPoint implements adi.ClassTuner: install (or with
// bytes <= 0 remove) a measured threshold override for every link of a
// device class.
func (d *Device) SetClassSwitchPoint(class string, bytes int) {
	if d.classSwitch == nil {
		d.classSwitch = make(map[string]int)
	}
	if bytes <= 0 {
		delete(d.classSwitch, class)
		return
	}
	d.classSwitch[class] = bytes
}

// SetRelayWindowHint implements adi.RelayTuner: adopt a measured
// bandwidth-delay-product credit window for the store-and-forward queue
// when this device fronts the named network. A gateway bridging several
// tuned backbones keeps the largest window offered — throttling the fat
// pipe to the thin one's product would only idle the fat pipe. After
// Start the semaphore is rebuilt at the new capacity, but only while the
// relay queue is idle (credits all home); mid-traffic hints keep the old
// window rather than strand or mint credits.
func (d *Device) SetRelayWindowHint(net string, window int) {
	if window <= 0 || window == d.RelayWindow {
		return
	}
	attached := false
	for _, ch := range d.channels {
		if ch.Net.Name == net {
			attached = true
			break
		}
	}
	if !attached {
		return
	}
	if d.relayWindowHinted && window < d.RelayWindow {
		return
	}
	d.relayWindowHinted = true
	d.RelayWindow = window
	if d.relayCredits != nil {
		if d.relayInFlight > 0 || d.relayParking > 0 {
			return
		}
		d.relayCredits = vtime.NewSem(d.proc.S, fmt.Sprintf("ch_mad[%d].relay", d.rank), window)
	}
}

// ClassSwitchPoints returns the installed per-class threshold overrides
// (tests, diagnostics); nil when none were installed.
func (d *Device) ClassSwitchPoints() map[string]int {
	if d.classSwitch == nil {
		return nil
	}
	out := make(map[string]int, len(d.classSwitch))
	for k, v := range d.classSwitch {
		out[k] = v
	}
	return out
}

// Start launches one polling thread per channel ("we assign one thread
// per Madeleine channel", §4.1). Polling threads are daemons: they live
// from MPI_Init to the end of the program.
func (d *Device) Start() {
	if d.switchPoint == 0 {
		d.ElectSwitchPoint()
	}
	if d.RelayWindow > 0 {
		d.relayCredits = vtime.NewSem(d.proc.S, fmt.Sprintf("ch_mad[%d].relay", d.rank), d.RelayWindow)
	}
	for _, ch := range d.channels {
		ch := ch
		d.proc.SpawnDaemon("ch_mad.poll."+ch.Name, func() { d.pollLoop(ch) })
	}
}

// RelayQueueDepth returns the live pressure on this device's relay queue:
// bodies currently held for re-emission plus polling threads parked (or
// about to park) waiting for a credit. The adaptive planner's congestion
// signal.
func (d *Device) RelayQueueDepth() int {
	return d.relayInFlight + d.relayParking
}

// TakeRelayHigh returns the relay queue-depth high-water mark observed
// since the previous call (or since Start) and resets it — what a
// re-plan at a collective boundary feeds into route edge costs.
func (d *Device) TakeRelayHigh() int {
	h := d.relayHighSince
	d.relayHighSince = 0
	return h
}

// noteRelayDepth records queue-depth peaks for both the bound check
// (RelayQueuePeak tracks held bodies only) and the congestion signal
// (relayHighSince includes parked waiters).
func (d *Device) noteRelayDepth() {
	if d.relayInFlight > d.RelayQueuePeak {
		d.RelayQueuePeak = d.relayInFlight
	}
	if depth := d.RelayQueueDepth(); depth > d.relayHighSince {
		d.relayHighSince = depth
	}
}

// Shutdown implements adi.Device. It only marks the device stopped:
// channels stay open because a gateway may still have to forward traffic
// for other ranks after its own MPI_Finalize barrier (§6 extension), and
// polling threads are daemons reaped when the simulation's application
// tasks finish.
func (d *Device) Shutdown() {
	d.stopped = true
}

// Send implements adi.Device: select the transfer mode by message size
// ("the mode selection is dynamically performed, according to the message
// size", §4.1) and run it. May block in virtual time until the send is
// locally complete for the eager path; rendez-vous completion is signalled
// asynchronously via sr.Done.
func (d *Device) Send(sr *adi.SendReq) {
	rt, ok := d.RouteTo(sr.Dst)
	if !ok {
		sr.Err = fmt.Errorf("ch_mad: rank %d has no route to rank %d", d.rank, sr.Dst)
		sr.Done.Fire()
		return
	}
	if !sr.Sync && len(sr.Data) <= d.SwitchPointTo(sr.Dst) {
		d.sendEager(sr, rt)
		return
	}
	d.sendRndvRequest(sr, rt)
}

// sendEager transmits a MAD_SHORT_PKT: header EXPRESS, user data as a
// zero-copy CHEAPER body (the §4.2.2 split). Completion is local: Done
// fires when the message is injected.
func (d *Device) sendEager(sr *adi.SendReq, rt Route) {
	d.NEager++
	d.Metrics.Add("eager.msgs", rt.Class, 1)
	d.Metrics.Add("eager.bytes", rt.Class, int64(len(sr.Data)))
	var t0 vtime.Time
	if d.Trace != nil {
		t0 = d.proc.S.Now()
	}
	h := header{
		Type:    PktShort,
		SrcRank: sr.Env.Src,
		DstRank: sr.Dst,
		Tag:     sr.Env.Tag,
		Context: sr.Env.Context,
		Len:     sr.Env.Len,
	}
	conn, err := rt.Channel.BeginPacking(rt.NextNode)
	if err != nil {
		sr.Err = err
		sr.Done.Fire()
		return
	}
	if err == nil {
		err = conn.Pack(h.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress)
	}
	if err == nil && len(sr.Data) > 0 {
		if d.MonolithicEager {
			// Ablation X2: naive ADI short packet with a constant
			// MPID_PKT_MAX_DATA_SIZE buffer: copy the user data in
			// (sender-side copy!) and ship the whole padded buffer.
			bufLen := d.switchPoint
			if len(sr.Data) > bufLen {
				bufLen = len(sr.Data) // per-link threshold above the device-wide one
			}
			padded := make([]byte, bufLen)
			d.proc.Compute(rt.Channel.Params.CopyTime(len(sr.Data)))
			copy(padded, sr.Data)
			err = conn.Pack(padded, madeleine.SendLater, madeleine.ReceiveCheaper)
		} else {
			err = conn.Pack(sr.Data, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		}
	}
	if err == nil {
		err = conn.EndPacking()
	}
	if d.Trace != nil {
		d.Trace.Span(d.TraceTrack, trace.KPkt, "eager.send", t0, trace.Args{
			HasPeer: true, Src: int32(sr.Env.Src), Dst: int32(sr.Dst),
			Bytes: int64(len(sr.Data)), Class: rt.Class,
		})
	}
	sr.Err = err
	sr.Done.Fire()
}

// sendRndvRequest opens a rendez-vous (Fig. 4b): emit MAD_REQUEST_PKT and
// park the request until the SendOK returns.
func (d *Device) sendRndvRequest(sr *adi.SendReq, rt Route) {
	d.NRndv++
	d.Metrics.Add("rndv.msgs", rt.Class, 1)
	d.Metrics.Add("rndv.bytes", rt.Class, int64(sr.Env.Len))
	d.nextReq++
	id := d.nextReq
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRndv, "rndv.req", trace.Args{
			HasPeer: true, Src: int32(sr.Env.Src), Dst: int32(sr.Dst),
			Bytes: int64(sr.Env.Len), Seq: id, Class: rt.Class,
		})
	}
	d.pending[id] = sr
	h := header{
		Type:    PktRequest,
		SrcRank: sr.Env.Src,
		DstRank: sr.Dst,
		Tag:     sr.Env.Tag,
		Context: sr.Env.Context,
		Len:     sr.Env.Len,
		ReqID:   id,
	}
	if err := d.sendHeaderOnly(rt, h); err != nil {
		delete(d.pending, id)
		sr.Err = err
		sr.Done.Fire()
	}
}

// sendHeaderOnly ships a body-less control message (REQUEST/SENDOK/TERM):
// "the other messages do not have a body (thus avoiding unnecessary and
// expensive pack operations)" (§4.2.1).
func (d *Device) sendHeaderOnly(rt Route, h header) error {
	conn, err := rt.Channel.BeginPacking(rt.NextNode)
	if err != nil {
		return err
	}
	if err := conn.Pack(h.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress); err != nil {
		return err
	}
	return conn.EndPacking()
}

// pollLoop is one channel's polling thread (§4.2.3): receive each message
// head, dispatch on packet type. It never sends directly — sends triggered
// by incoming packets run on temporary threads, "because deadlock
// situations might appear" if the poller blocked in a send.
func (d *Device) pollLoop(ch *madeleine.Channel) {
	// One header landing buffer for the lifetime of the polling thread:
	// Unpack copies the express block out of the head packet synchronously
	// and only this thread writes hbuf, so reusing it is safe and saves an
	// allocation per received message.
	hbuf := make([]byte, HeaderSize)
	for {
		conn, err := ch.BeginUnpacking()
		if err != nil {
			panic(fmt.Sprintf("ch_mad[%d] poll %s: %v", d.rank, ch.Name, err))
		}
		if err := conn.Unpack(hbuf, madeleine.SendCheaper, madeleine.ReceiveExpress); err != nil {
			panic(fmt.Sprintf("ch_mad[%d] poll %s: %v", d.rank, ch.Name, err))
		}
		h, err := decodeHeader(hbuf)
		if err != nil {
			panic(err)
		}
		if h.Type == PktTerm {
			conn.EndUnpacking()
			return
		}
		if h.DstRank != d.rank {
			d.forward(ch, conn, h)
			continue
		}
		switch h.Type {
		case PktShort:
			d.inShort(ch, conn, h)
		case PktRequest:
			d.inRequest(ch, conn, h)
		case PktSendOK:
			d.inSendOK(ch, conn, h)
		case PktRndv:
			d.inRndvData(ch, conn, h)
		case PktRndvSeg:
			d.inRndvSeg(ch, conn, h)
		case PktNack:
			d.inNack(ch, conn, h)
		default:
			panic(fmt.Sprintf("ch_mad[%d]: unexpected %s on %s", d.rank, h.Type, ch.Name))
		}
	}
}

// handling charges the per-message device overhead measured in §5.2–§5.4
// (dispatch, queue management, semaphore wakeup).
func (d *Device) handling(ch *madeleine.Channel) {
	d.proc.Compute(ch.Params.DeviceHandling)
}

// inShort lands an eager message: body into the matched buffer via one
// intermediary copy ("optimized for latency, at the cost of an
// intermediary copy on the receiving side", §4.1), or into an unexpected
// stash.
func (d *Device) inShort(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	env := h.envelope()
	bodyLen := h.Len
	if d.MonolithicEager && bodyLen > 0 && bodyLen < d.switchPoint {
		bodyLen = d.switchPoint // padded constant-size buffer on the wire
	}
	var scratch []byte
	if bodyLen > 0 {
		scratch = make([]byte, bodyLen)
		if err := conn.Unpack(scratch, d.eagerBodySendMode(), madeleine.ReceiveCheaper); err != nil {
			panic(fmt.Sprintf("ch_mad[%d]: short body: %v", d.rank, err))
		}
	}
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KPkt, "eager.recv", trace.Args{
			HasPeer: true, Src: int32(env.Src), Dst: int32(d.rank), Bytes: int64(env.Len),
		})
	}
	params := ch.Params
	if r := d.eng.MatchPosted(env); r != nil {
		n, err := adi.CheckLen(r, env)
		d.proc.Compute(params.CopyTime(n)) // the eager intermediary copy
		copy(r.Buf, scratch[:n])
		adi.FinishRecv(r, env, err)
		return
	}
	d.eng.AddUnexpected(env, func(r *adi.RecvReq) {
		n, err := adi.CheckLen(r, env)
		d.proc.Compute(params.CopyTime(n))
		copy(r.Buf, scratch[:n])
		adi.FinishRecv(r, env, err)
	})
}

func (d *Device) eagerBodySendMode() madeleine.SendMode {
	if d.MonolithicEager {
		return madeleine.SendLater
	}
	return madeleine.SendCheaper
}

// inRequest matches a rendez-vous request (Fig. 4b step 1-2): as soon as
// an rhandle is in charge, reply MAD_SENDOK_PKT carrying the sync_address.
// The reply runs on a temporary thread: "each polling thread creates
// threads in order to perform request and acknowledgement operations of
// the rendez-vous transfer mode" (§4.2.3).
func (d *Device) inRequest(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	env := h.envelope()
	if r := d.eng.MatchPosted(env); r != nil {
		d.replySendOK(h, r, env)
		return
	}
	d.eng.AddUnexpected(env, func(r *adi.RecvReq) {
		d.replySendOK(h, r, env)
	})
}

func (d *Device) replySendOK(req header, r *adi.RecvReq, env adi.Envelope) {
	d.nextSync++
	sync := d.nextSync
	d.rndvRx[sync] = &rndvState{r: r, env: env, remaining: env.Len}
	back, ok := d.RouteTo(req.SrcRank)
	if !ok {
		adi.FinishRecv(r, env, fmt.Errorf("ch_mad: no return route to rank %d", req.SrcRank))
		return
	}
	ok2S := header{
		Type:    PktSendOK,
		SrcRank: d.rank,
		DstRank: req.SrcRank,
		ReqID:   req.ReqID,
		SyncID:  sync,
	}
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRndv, "rndv.ok", trace.Args{
			HasPeer: true, Src: int32(d.rank), Dst: int32(req.SrcRank),
			Bytes: int64(env.Len), Seq: req.ReqID, Val: int64(sync),
		})
	}
	d.proc.Spawn("ch_mad.sendok", func() {
		if err := d.sendHeaderOnly(back, ok2S); err != nil {
			panic(fmt.Sprintf("ch_mad[%d]: sendok: %v", d.rank, err))
		}
	})
}

// inSendOK completes the sender side (Fig. 4b step 3): the data message
// MAD_RNDV_PKT carries the receiver's sync_address in its header and the
// payload as a zero-copy body. Runs on a temporary thread so the polling
// thread never blocks in a send.
func (d *Device) inSendOK(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	sr := d.pending[h.ReqID]
	if sr == nil {
		panic(fmt.Sprintf("ch_mad[%d]: SendOK for unknown request %d", d.rank, h.ReqID))
	}
	delete(d.pending, h.ReqID)
	delete(d.retries, h.ReqID)
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRndv, "rndv.ack", trace.Args{
			HasPeer: true, Src: int32(h.SrcRank), Dst: int32(d.rank), Seq: h.ReqID,
		})
	}
	rt, _ := d.RouteTo(sr.Dst)
	if d.RelayPipelining {
		// Striping is gated on the rail set, not on the hop count alone:
		// a direct *backbone* pair with edge-disjoint alternates
		// (co-leader bundle exchanges over parallel bridges) stripes
		// exactly like the multi-hop p2p path, instead of funneling the
		// whole body down the primary rail — its threshold comes from the
		// rails' own stripe segments, because a direct primary has no
		// relay segment. Direct SAN/SMP pairs do NOT stripe even with
		// alternates: their "alternate" is a detour over the same shared
		// intra-cluster medium, so dealing segments onto it only adds
		// relay hops. Single-rail direct pairs keep the whole-body
		// rendez-vous; single-rail multi-hop routes keep the segmented
		// pipeline.
		if rails := d.Rails(sr.Dst); d.RelayStriping && len(rails) > 1 &&
			(rt.Hops > 1 || rt.Class == "wan") {
			thr := rt.SegBytes
			if thr == 0 {
				for _, r := range rails {
					if r.SegBytes > 0 && (thr == 0 || r.SegBytes < thr) {
						thr = r.SegBytes
					}
				}
			}
			if thr > 0 && len(sr.Data) > thr {
				d.sendRndvStriped(sr, rails, h.SyncID)
				return
			}
		}
		if rt.SegBytes > 0 && len(sr.Data) > rt.SegBytes && rt.Hops > 1 {
			d.sendRndvSegmented(sr, rt, h.SyncID)
			return
		}
	}
	data := header{
		Type:    PktRndv,
		SrcRank: sr.Env.Src,
		DstRank: sr.Dst,
		Len:     sr.Env.Len,
		SyncID:  h.SyncID,
	}
	d.proc.Spawn("ch_mad.rndvdata", func() {
		var t0 vtime.Time
		if d.Trace != nil {
			t0 = d.proc.S.Now()
		}
		conn2, err := rt.Channel.BeginPacking(rt.NextNode)
		if err == nil {
			err = conn2.Pack(data.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress)
		}
		if err == nil {
			err = conn2.Pack(sr.Data, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		}
		if err == nil {
			err = conn2.EndPacking()
		}
		if d.Trace != nil {
			d.Trace.Span(d.TraceTrack, trace.KRndv, "rndv.body", t0, trace.Args{
				HasPeer: true, Src: int32(sr.Env.Src), Dst: int32(sr.Dst),
				Bytes: int64(len(sr.Data)), Seq: h.SyncID,
			})
		}
		sr.Err = err
		sr.Done.Fire()
	})
}

// sendRndvSegmented ships a rendez-vous body over a multi-hop route as a
// train of independent MAD_RNDVSEG_PKT messages (offset in the header,
// segment as a zero-copy body). Each gateway relays segments one at a
// time, so while segment k is re-emitted on the outbound hop, segment
// k+1 is already serializing on the inbound hop: a 2-hop transfer costs
// roughly one hop plus one segment instead of two full store-and-forward
// passes. The per-segment EndPacking paces injection, so the train never
// overruns the first hop.
func (d *Device) sendRndvSegmented(sr *adi.SendReq, rt Route, sync uint32) {
	d.proc.Spawn("ch_mad.rndvseg", func() {
		total := len(sr.Data)
		for off := 0; off < total; off += rt.SegBytes {
			n := rt.SegBytes
			if off+n > total {
				n = total - off
			}
			seg := header{
				Type:    PktRndvSeg,
				SrcRank: sr.Env.Src,
				DstRank: sr.Dst,
				Len:     n,
				SyncID:  sync,
				Offset:  off,
				Budget:  rt.Hops,
			}
			var t0 vtime.Time
			if d.Trace != nil {
				t0 = d.proc.S.Now()
			}
			conn, err := rt.Channel.BeginPacking(rt.NextNode)
			if err == nil {
				err = conn.Pack(seg.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress)
			}
			if err == nil {
				err = conn.Pack(sr.Data[off:off+n], madeleine.SendCheaper, madeleine.ReceiveCheaper)
			}
			if err == nil {
				err = conn.EndPacking()
			}
			if d.Trace != nil {
				d.Trace.Span(d.TraceTrack, trace.KRndv, "rndv.seg", t0, trace.Args{
					HasPeer: true, Src: int32(sr.Env.Src), Dst: int32(sr.Dst),
					Bytes: int64(n), Rail: 0, Hop: int16(rt.Hops), Seq: sync, Val: int64(off),
				})
			}
			if err != nil {
				sr.Err = err
				sr.Done.Fire()
				return
			}
		}
		sr.Done.Fire()
	})
}

// sendRndvStriped stripes a rendez-vous body across the destination's
// edge-disjoint rails: the body is cut into uniform segments (the
// smallest rail segment, so every rail's bottleneck constraint holds)
// dealt to whichever rail has the earliest predicted finish — pipeline
// fill (Route.Cost - Route.BottleneckCost) plus dealt segments times the
// bottleneck pace — so two rails with equal bottlenecks converge on an
// even split regardless of path length, with the first segments biased
// toward the shorter fill. Each segment's header carries its rail index
// (PathID) and the rail's hop budget; gateways keep the stripe on the
// matching budget-fitting rail of their own route set, and the receiver
// reassembles by offset exactly as for the single-rail pipeline.
func (d *Device) sendRndvStriped(sr *adi.SendReq, rails []Route, sync uint32) {
	seg := 0
	for _, r := range rails {
		if r.SegBytes > 0 && (seg == 0 || r.SegBytes < seg) {
			seg = r.SegBytes
		}
	}
	if seg == 0 {
		// No rail carries a pacing segment (shouldn't happen — the rail
		// installer backfills stripe segments): ship the whole body as a
		// single stripe rather than divide by zero below.
		seg = len(sr.Data)
	}
	// Per-rail pacing (the bottleneck hop's cost per segment) and fixed
	// pipeline fill (the rest of the path): the deal below hands each
	// segment to the rail with the earliest predicted finish, which
	// biases the first segments toward the short rail and converges to
	// bottleneck-proportional shares on long trains.
	pace := make([]float64, len(rails))
	fill := make([]float64, len(rails))
	for i, r := range rails {
		switch {
		case r.BottleneckCost > 0:
			pace[i] = r.BottleneckCost
		case r.Cost > 0:
			pace[i] = r.Cost
		default:
			pace[i] = 1
		}
		if r.Cost > pace[i] {
			fill[i] = r.Cost - pace[i]
		}
	}
	d.proc.Spawn("ch_mad.rndvstripe", func() {
		total := len(sr.Data)
		dealt := make([]float64, len(rails))
		for off := 0; off < total; off += seg {
			n := seg
			if off+n > total {
				n = total - off
			}
			// Earliest-predicted-finish round-robin (deterministic;
			// identical rails degrade to pure round-robin).
			rail := 0
			for i := 1; i < len(rails); i++ {
				if fill[i]+(dealt[i]+1)*pace[i] < fill[rail]+(dealt[rail]+1)*pace[rail] {
					rail = i
				}
			}
			dealt[rail]++
			rt := rails[rail]
			h := header{
				Type:    PktRndvSeg,
				SrcRank: sr.Env.Src,
				DstRank: sr.Dst,
				Len:     n,
				SyncID:  sync,
				Offset:  off,
				PathID:  rail,
				Budget:  rt.Hops,
			}
			var t0 vtime.Time
			if d.Trace != nil {
				t0 = d.proc.S.Now()
			}
			conn, err := rt.Channel.BeginPacking(rt.NextNode)
			if err == nil {
				err = conn.Pack(h.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress)
			}
			if err == nil {
				err = conn.Pack(sr.Data[off:off+n], madeleine.SendCheaper, madeleine.ReceiveCheaper)
			}
			if err == nil {
				err = conn.EndPacking()
			}
			if d.Trace != nil {
				d.Trace.Span(d.TraceTrack, trace.KRndv, "rndv.seg", t0, trace.Args{
					HasPeer: true, Src: int32(sr.Env.Src), Dst: int32(sr.Dst),
					Bytes: int64(n), Rail: int16(rail), Hop: int16(rt.Hops), Seq: sync, Val: int64(off),
				})
			}
			if err != nil {
				sr.Err = err
				sr.Done.Fire()
				return
			}
		}
		sr.Done.Fire()
	})
}

// inRndvData lands rendez-vous data (Fig. 4b final step): the polling
// thread finds the rhandle from the sync_address in the header and the
// body goes straight to the user buffer — "avoiding any intermediate
// copies" — then releases the semaphore the main thread waits on.
func (d *Device) inRndvData(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	st := d.rndvRx[h.SyncID]
	if st == nil {
		panic(fmt.Sprintf("ch_mad[%d]: RNDV data for unknown sync %d", d.rank, h.SyncID))
	}
	delete(d.rndvRx, h.SyncID)
	n, lenErr := adi.CheckLen(st.r, st.env)
	if lenErr != nil {
		// Truncating: land in a scratch of the full length, keep the
		// prefix (one charged copy).
		scratch := make([]byte, h.Len)
		if err := conn.Unpack(scratch, madeleine.SendCheaper, madeleine.ReceiveCheaper); err != nil {
			panic(err)
		}
		d.proc.Compute(ch.Params.CopyTime(n))
		copy(st.r.Buf, scratch[:n])
	} else {
		// Zero-copy landing directly into the user buffer.
		if err := conn.Unpack(st.r.Buf[:n], madeleine.SendCheaper, madeleine.ReceiveCheaper); err != nil {
			panic(err)
		}
	}
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRndv, "rndv.land", trace.Args{
			HasPeer: true, Src: int32(h.SrcRank), Dst: int32(d.rank),
			Bytes: int64(h.Len), Seq: h.SyncID,
		})
	}
	adi.FinishRecv(st.r, st.env, lenErr)
}

// inRndvSeg lands one pipelined segment of a multi-hop rendez-vous body
// at its offset. Segments of a transfer may interleave with unrelated
// traffic; the rhandle completes when the last byte lands. Segments land
// zero-copy in the user buffer unless the receive truncates, in which
// case they collect in a scratch whose prefix is copied out (charged) at
// completion, mirroring the whole-body path.
func (d *Device) inRndvSeg(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	st := d.rndvRx[h.SyncID]
	if st == nil {
		panic(fmt.Sprintf("ch_mad[%d]: RNDV segment for unknown sync %d", d.rank, h.SyncID))
	}
	n, lenErr := adi.CheckLen(st.r, st.env)
	landing, segErr := st.segLanding(h.Offset, h.Len, lenErr != nil)
	if segErr != nil {
		panic(fmt.Sprintf("ch_mad[%d]: sync %d from rank %d: %v", d.rank, h.SyncID, h.SrcRank, segErr))
	}
	if err := conn.Unpack(landing, madeleine.SendCheaper, madeleine.ReceiveCheaper); err != nil {
		panic(err)
	}
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRndv, "rndv.seg.land", trace.Args{
			HasPeer: true, Src: int32(h.SrcRank), Dst: int32(d.rank),
			Bytes: int64(h.Len), Rail: int16(h.PathID), Hop: int16(h.Budget),
			Seq: h.SyncID, Val: int64(h.Offset),
		})
	}
	if !st.segDone(h.Len) {
		return
	}
	delete(d.rndvRx, h.SyncID)
	if lenErr != nil {
		d.proc.Compute(ch.Params.CopyTime(n))
		copy(st.r.Buf, st.scratch[:n])
	}
	adi.FinishRecv(st.r, st.env, lenErr)
}

// maxRndvRetries bounds the busy-nack retry loop of one rendez-vous
// send: at the capped backoff this is several virtual seconds of
// refusals — a gateway that busy for that long is genuinely wedged, and
// a targeted send error beats hanging to the simulation deadline.
// retryBackoff is the first retry delay, doubled (capped) per attempt —
// long enough for a full gateway window to drain a couple of segments.
// Each sender additionally staggers every backoff by a rank-dependent
// offset: virtual time has no noise, so identically-refused senders
// would otherwise retry at the same instants and re-collide in lockstep
// forever.
const maxRndvRetries = 256

var (
	retryBackoff = 200 * vtime.Microsecond
	retryStagger = 37 * vtime.Microsecond
)

// inNack handles a relay refusal for a pending rendez-vous send. A
// NackNoRoute (a gateway on the path had no onward route — §6
// misconfiguration) fails the send with a proper MPI error instead of
// crashing the simulation; the Tag field carries the unreachable rank. A
// NackBusy (admission control: a gateway's bounded relay queue was full)
// re-issues the request after an exponential backoff — the closed-loop
// backpressure that keeps a hot gateway's queue from growing unboundedly.
func (d *Device) inNack(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	if err := conn.EndUnpacking(); err != nil {
		panic(err)
	}
	d.handling(ch)
	sr := d.pending[h.ReqID]
	if sr == nil {
		return // already failed or completed; stale nack
	}
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KCredit, "rndv.nack", trace.Args{
			HasPeer: true, Src: int32(h.SrcRank), Dst: int32(d.rank),
			Seq: h.ReqID, Val: int64(h.Context),
		})
	}
	if h.Context == NackBusy {
		attempt := d.retries[h.ReqID]
		if attempt >= maxRndvRetries {
			delete(d.pending, h.ReqID)
			delete(d.retries, h.ReqID)
			sr.Err = fmt.Errorf("ch_mad: gateway rank %d relay queue full for rank %d (gave up after %d retries)",
				h.SrcRank, h.Tag, attempt)
			sr.Done.Fire()
			return
		}
		d.retries[h.ReqID] = attempt + 1
		d.NRndvRetries++
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		backoff := retryBackoff<<shift + vtime.Duration(d.rank%16)*retryStagger
		reqID := h.ReqID
		d.proc.Spawn("ch_mad.rndvretry", func() {
			d.proc.Sleep(backoff)
			if d.pending[reqID] != sr {
				return // completed or failed while backing off
			}
			rt, ok := d.RouteTo(sr.Dst)
			if !ok {
				delete(d.pending, reqID)
				delete(d.retries, reqID)
				sr.Err = fmt.Errorf("ch_mad: rank %d lost its route to rank %d during retry", d.rank, sr.Dst)
				sr.Done.Fire()
				return
			}
			req := header{
				Type:    PktRequest,
				SrcRank: sr.Env.Src,
				DstRank: sr.Dst,
				Tag:     sr.Env.Tag,
				Context: sr.Env.Context,
				Len:     sr.Env.Len,
				ReqID:   reqID,
			}
			if err := d.sendHeaderOnly(rt, req); err != nil {
				delete(d.pending, reqID)
				delete(d.retries, reqID)
				sr.Err = err
				sr.Done.Fire()
			}
		})
		return
	}
	delete(d.pending, h.ReqID)
	delete(d.retries, h.ReqID)
	sr.Err = fmt.Errorf("ch_mad: gateway rank %d has no route to rank %d (forwarding misconfigured)",
		h.SrcRank, h.Tag)
	sr.Done.Fire()
}

// forward relays a message addressed to another rank toward its
// destination (the §6 forwarding extension): store-and-forward at the
// gateway, on a temporary thread. With a RelayWindow configured the
// store is bounded by a credit window: body packets must take a credit
// before they are drained off the wire (a full gateway parks the polling
// thread, backpressuring the inbound channel), and rendez-vous requests
// are refused with a busy nack instead of admitting a transfer the queue
// has no room for. Striped segments are re-emitted on the rail their
// PathID names.
func (d *Device) forward(ch *madeleine.Channel, conn *madeleine.Connection, h header) {
	arrivedBudget := h.Budget // pre-decrement, for the relay-hop span's tag
	if h.Budget > 0 {
		h.Budget-- // one hop of the planned rail consumed by this relay
	}
	bodyLen := 0
	switch h.Type {
	case PktShort, PktRndv, PktRndvSeg:
		if h.Len > 0 {
			bodyLen = h.Len
			if d.MonolithicEager && h.Type == PktShort && bodyLen < d.switchPoint {
				bodyLen = d.switchPoint
			}
		}
	default:
		// PktRequest/PktSendOK/PktNack/PktTerm are header-only control
		// packets: nothing to drain, no relay credit to hold.
	}
	drain := func() []byte {
		var body []byte
		if bodyLen > 0 {
			body = make([]byte, bodyLen)
			if err := conn.Unpack(body, d.eagerBodySendMode(), madeleine.ReceiveCheaper); err != nil {
				panic(err)
			}
		}
		if err := conn.EndUnpacking(); err != nil {
			panic(err)
		}
		return body
	}

	rt, ok := d.railFor(h, conn.Remote)
	if !ok {
		drain()
		d.handling(ch)
		d.relayNoRoute(h)
		return
	}

	holdsCredit := false
	if d.relayCredits != nil {
		switch {
		case h.Type == PktRequest:
			// Admission control: a full gateway refuses to open a new
			// rendez-vous through itself — the body would have nowhere to
			// queue. The sender backs off and retries.
			if d.RelayQueueDepth() >= d.RelayWindow {
				if err := conn.EndUnpacking(); err != nil {
					panic(err)
				}
				d.handling(ch)
				d.NRelayBusy++
				d.Metrics.Add("relay.busynack", d.MetricsLabel, 1)
				if d.Trace != nil {
					d.Trace.Instant(d.TraceTrack, trace.KCredit, "relay.busy", trace.Args{
						HasPeer: true, Src: int32(h.SrcRank), Dst: int32(h.DstRank),
						Seq: h.ReqID, Val: int64(d.RelayQueueDepth()),
					})
				}
				d.nackSender(h, NackBusy)
				return
			}
		case bodyLen > 0:
			if !d.relayCredits.TryAcquire() {
				if d.RelayLossyEager && h.Type == PktShort {
					drain()
					d.handling(ch)
					d.NRelayDrops++
					d.NDropsQueueFull++
					return
				}
				// Defer: park the polling thread until a credit frees.
				// The inbound channel stalls behind us — the modeled
				// backpressure on upstream senders.
				d.NRelayDeferred++
				d.Metrics.Add("relay.deferred", d.MetricsLabel, 1)
				var w0 vtime.Time
				if d.Trace != nil {
					w0 = d.proc.S.Now()
				}
				d.relayParking++
				d.noteRelayDepth()
				d.relayCredits.Acquire()
				d.relayParking--
				if d.Trace != nil {
					d.Trace.Span(d.TraceTrack, trace.KCredit, "relay.credit.wait", w0, trace.Args{
						HasPeer: true, Src: int32(h.SrcRank), Dst: int32(h.DstRank),
						Bytes: int64(bodyLen),
					})
				}
			}
			holdsCredit = true
		}
	}

	body := drain() // the store: bounded by the credit window
	d.handling(ch)
	d.NForwarded++
	d.RelayBytes += uint64(len(body))
	d.Metrics.Add("relay.msgs", d.MetricsLabel, 1)
	d.Metrics.Add("relay.bytes", d.MetricsLabel, int64(len(body)))
	// Only stored bodies occupy the store-and-forward queue: header-only
	// control forwards (SendOK, nacks, admitted requests) hold no buffer
	// and no credit, so they must not count toward the bounded depth.
	if bodyLen > 0 {
		d.relayInFlight++
		d.noteRelayDepth()
		d.Metrics.SetMax("relay.qpeak", d.MetricsLabel, int64(d.relayInFlight))
		if d.Trace != nil {
			d.Trace.Counter(d.TraceTrack, trace.KRelay, "relay.depth", int64(d.RelayQueueDepth()))
		}
	}
	// Re-emit on the outbound channel (forward), off the polling thread.
	d.proc.Spawn("ch_mad.forward", func() {
		var t0 vtime.Time
		if d.Trace != nil {
			t0 = d.proc.S.Now()
		}
		conn2, err := rt.Channel.BeginPacking(rt.NextNode)
		if err == nil {
			err = conn2.Pack(h.encode(), madeleine.SendCheaper, madeleine.ReceiveExpress)
		}
		if err == nil && body != nil {
			err = conn2.Pack(body, madeleine.SendLater, madeleine.ReceiveCheaper)
		}
		if err == nil {
			err = conn2.EndPacking()
		}
		if bodyLen > 0 {
			d.relayInFlight--
		}
		if holdsCredit {
			d.relayCredits.Release()
		}
		if d.Trace != nil {
			d.Trace.Span(d.TraceTrack, trace.KRelay, "relay.hop", t0, trace.Args{
				HasPeer: true, Src: int32(h.SrcRank), Dst: int32(h.DstRank),
				Bytes: int64(len(body)), Rail: int16(h.PathID), Hop: int16(arrivedBudget),
				Seq: h.SyncID, GW: rt.Channel.Name,
			})
			if bodyLen > 0 {
				d.Trace.Counter(d.TraceTrack, trace.KRelay, "relay.depth", int64(d.RelayQueueDepth()))
			}
		}
		if err != nil {
			panic(fmt.Sprintf("ch_mad[%d]: forward: %v", d.rank, err))
		}
	})
}

// railFor picks the onward route for a relayed message without carrying
// full source routes in the header: prefer the rail matching the
// stripe's PathID, but never one that hands the message straight back to
// the node it came from, and — when the segment carries a hop budget —
// never one whose path is longer than the budget the planned rail has
// left. Under a stable plan the budget check keeps a stripe on a
// *suffix* of its planned rail: a gateway whose PathID-indexed rail is a
// detour (its own alternates need not mirror the sender's) falls back to
// a rail that still fits, ultimately the direct hop, so the segment
// never takes more hops than its rail was planned with. If a mid-flight
// Replan swapped the rails out from under an in-flight stripe, no rail
// may fit the stale budget (or every rail may backtrack); delivery then
// beats purity — the shortest non-backtracking rail, or as a last resort
// the preferred rail, carries the segment at the price of extra hops.
func (d *Device) railFor(h header, from string) (Route, bool) {
	d.ensureRoute(h.DstRank)
	rails, multi := d.rails[h.DstRank]
	if !multi {
		// Single-route fast path: no rail slice to consult (and none
		// allocated — this runs per relayed packet). The selection loop
		// below would return the lone route unconditionally (it is the
		// preferred rail and the last resort alike), so just do that.
		rt, ok := d.routes[h.DstRank]
		return rt, ok
	}
	pref := h.PathID % len(rails)
	fits := func(rt Route) bool {
		return h.Budget <= 0 || rt.Hops <= h.Budget
	}
	if rt := rails[pref]; rt.NextNode != from && fits(rt) {
		return rt, true
	}
	for _, rt := range rails {
		if rt.NextNode != from && fits(rt) {
			return rt, true
		}
	}
	// Replan transient: no rail honors the stale budget. Take the most
	// direct escape that at least avoids the immediate sender.
	best, found := Route{}, false
	for _, rt := range rails {
		if rt.NextNode != from && (!found || rt.Hops < best.Hops) {
			best, found = rt, true
		}
	}
	if found {
		return best, true
	}
	return rails[pref], true
}

// nackSender refuses a relayed rendez-vous request back to its sender
// with the given reason code (carried in the nack's Context field).
func (d *Device) nackSender(h header, reason int) {
	back, ok := d.RouteTo(h.SrcRank)
	if !ok {
		return // cannot even reach the sender; the counters record it
	}
	nack := header{
		Type:    PktNack,
		SrcRank: d.rank,
		DstRank: h.SrcRank,
		Tag:     h.DstRank, // the refused rank, for the error message
		Context: reason,
		ReqID:   h.ReqID,
	}
	d.proc.Spawn("ch_mad.nack", func() {
		if err := d.sendHeaderOnly(back, nack); err != nil {
			panic(fmt.Sprintf("ch_mad[%d]: nack: %v", d.rank, err))
		}
	})
}

// relayNoRoute handles a relayed message this gateway has no onward route
// for (misconfigured multi-hop topology). Rendez-vous requests are nacked
// back to the sender, whose MPI Send then fails with a proper error;
// anything else is counted and dropped — the sender of an eager message
// already completed locally, so there is no request left to fail, and a
// hung receive under a broken topology beats crashing every rank.
func (d *Device) relayNoRoute(h header) {
	d.NRelayDrops++
	d.NDropsNoRoute++
	d.Metrics.Add("relay.drops", d.MetricsLabel, 1)
	if d.Trace != nil {
		d.Trace.Instant(d.TraceTrack, trace.KRelay, "relay.drop", trace.Args{
			HasPeer: true, Src: int32(h.SrcRank), Dst: int32(h.DstRank),
		})
	}
	if h.Type != PktRequest {
		return
	}
	d.nackSender(h, NackNoRoute)
}

// SendTerm emits a MAD_TERM_PKT to a neighbour's channel, terminating its
// polling loop (used by orderly shutdown tests).
func (d *Device) SendTerm(dst int) error {
	rt, ok := d.RouteTo(dst)
	if !ok {
		return fmt.Errorf("ch_mad: no route to rank %d", dst)
	}
	return d.sendHeaderOnly(rt, header{Type: PktTerm, SrcRank: d.rank, DstRank: dst})
}

// Pending returns outstanding rendez-vous counts (tests).
func (d *Device) Pending() (sends, recvs int) { return len(d.pending), len(d.rndvRx) }

var _ adi.Device = (*Device)(nil)
