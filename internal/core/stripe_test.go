package core

// Tests of the multi-path transport: striping a rendez-vous body across
// edge-disjoint rails, the bounded store-and-forward queue (credit
// window), busy-nack admission control with sender retry, and the
// drop-reason accounting that tells admission drops from routing holes.

import (
	"bytes"
	"fmt"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// wireRig builds n ch_mad devices attached to the given networks but does
// NOT install routes or start them — tests wire routes (and relay
// windows) explicitly, then call start().
type wireRig struct {
	s     *vtime.Scheduler
	procs []*marcel.Proc
	engs  []*adi.Engine
	devs  []*Device
	chans [][]*madeleine.Channel // [rank][net index]
}

func newWireRig(t *testing.T, n int, paramSets ...netsim.Params) *wireRig {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(200 * vtime.Second))
	r := &wireRig{s: s}
	var nets []*netsim.Network
	for k, p := range paramSets {
		nets = append(nets, netsim.NewNetwork(s, fmt.Sprintf("net%d", k), p))
	}
	for i := 0; i < n; i++ {
		p := marcel.NewProc(s, fmt.Sprintf("n%d", i))
		eng := adi.NewEngine(p, i)
		dev := New(p, eng, i)
		inst := madeleine.New(p)
		var chs []*madeleine.Channel
		for k, net := range nets {
			ch, err := inst.NewChannel(fmt.Sprintf("ch%d", k), net)
			if err != nil {
				t.Fatal(err)
			}
			dev.AddChannel(ch)
			chs = append(chs, ch)
		}
		r.procs = append(r.procs, p)
		r.engs = append(r.engs, eng)
		r.devs = append(r.devs, dev)
		r.chans = append(r.chans, chs)
	}
	return r
}

func (r *wireRig) start() {
	for _, d := range r.devs {
		d.Start()
	}
}

func (r *wireRig) run(t *testing.T) {
	t.Helper()
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

// diamondRig wires the minimal two-rail topology: n0 reaches n3 through
// either gateway n1 or gateway n2 (net0 on the left of the diamond, net1
// on the right), with both rails installed on n0.
func diamondRig(t *testing.T, seg int) *wireRig {
	t.Helper()
	r := newWireRig(t, 4, netsim.SCISISCI(), netsim.MyrinetBIP())
	left := func(i int) *madeleine.Channel { return r.chans[i][0] }
	right := func(i int) *madeleine.Channel { return r.chans[i][1] }
	r.devs[0].AddRoute(1, Route{Channel: left(0), NextNode: "n1"})
	r.devs[0].AddRoute(2, Route{Channel: left(0), NextNode: "n2"})
	r.devs[0].SetRails(3, []Route{
		{Channel: left(0), NextNode: "n1", Hops: 2, SegBytes: seg, Cost: 1e-3},
		{Channel: left(0), NextNode: "n2", Hops: 2, SegBytes: seg, Cost: 1e-3},
	})
	for _, gw := range []int{1, 2} {
		r.devs[gw].AddRoute(0, Route{Channel: left(gw), NextNode: "n0"})
		r.devs[gw].AddRoute(3, Route{Channel: right(gw), NextNode: "n3"})
	}
	r.devs[3].AddRoute(0, Route{Channel: right(3), NextNode: "n1", Hops: 2})
	r.devs[3].AddRoute(1, Route{Channel: right(3), NextNode: "n1"})
	r.devs[3].AddRoute(2, Route{Channel: right(3), NextNode: "n2"})
	return r
}

// TestStripedRelaySplitsAcrossRails: a striped rendez-vous body crosses
// BOTH gateways of the diamond (roughly half the bytes each, since the
// rails cost the same), arrives intact, and the single-rail ablation
// keeps everything on the primary gateway.
func TestStripedRelaySplitsAcrossRails(t *testing.T) {
	const size = 96 << 10
	run := func(striping bool) (*wireRig, []byte) {
		r := diamondRig(t, 8<<10)
		r.devs[0].RelayStriping = striping
		r.start()
		payload := pattern(size)
		var got []byte
		r.procs[0].Spawn("send", func() {
			sr := &adi.SendReq{
				Env: adi.Envelope{Src: 0, Tag: 7, Context: 0, Len: size},
				Dst: 3, Data: payload, Done: vtime.NewEvent(r.s, "send"),
			}
			r.devs[0].Send(sr)
			sr.Done.Wait()
			if sr.Err != nil {
				t.Error(sr.Err)
			}
		})
		r.procs[3].Spawn("recv", func() {
			rr := &adi.RecvReq{
				Src: 0, Tag: 7, Context: 0,
				Buf:  make([]byte, size),
				Done: vtime.NewEvent(r.s, "recv"),
			}
			r.engs[3].PostRecv(rr)
			rr.Done.Wait()
			if rr.Err != nil {
				t.Error(rr.Err)
			}
			got = rr.Buf
		})
		r.run(t)
		if !bytes.Equal(got, payload) {
			t.Fatalf("striping=%v: payload corrupted", striping)
		}
		return r, got
	}

	striped, _ := run(true)
	b1, b2 := striped.devs[1].RelayBytes, striped.devs[2].RelayBytes
	if b1 == 0 || b2 == 0 {
		t.Fatalf("striping used one rail only: gw1=%d gw2=%d bytes", b1, b2)
	}
	total := b1 + b2
	if total < size {
		t.Fatalf("relayed %d bytes, want >= %d", total, size)
	}
	// Equal-cost rails: neither carries more than ~2/3 of the body.
	if b1 > 2*total/3 || b2 > 2*total/3 {
		t.Errorf("unbalanced stripe: gw1=%d gw2=%d", b1, b2)
	}

	single, _ := run(false)
	if single.devs[2].NForwarded != 0 {
		t.Errorf("single-rail ablation still used the second gateway (%d msgs)",
			single.devs[2].NForwarded)
	}
	if single.devs[1].RelayBytes < size {
		t.Errorf("single rail relayed %d bytes, want >= %d", single.devs[1].RelayBytes, size)
	}
}

// TestRailForBudget: a relaying gateway honors a stripe's PathID only
// within the segment's remaining hop budget — a rail longer than the
// planned remainder (a local detour the sender's rail never meant) is
// rejected in favor of one that fits, and no rail may hand the segment
// back to the node it came from.
func TestRailForBudget(t *testing.T) {
	r := newWireRig(t, 4, netsim.MyrinetBIP())
	d := r.devs[1]
	direct := Route{Channel: r.chans[1][0], NextNode: "n3", Hops: 1}
	detour := Route{Channel: r.chans[1][0], NextNode: "n2", Hops: 2}
	d.SetRails(3, []Route{direct, detour})
	// One hop of budget left: the PathID-named detour does not fit.
	if rt, ok := d.railFor(header{DstRank: 3, PathID: 1, Budget: 1}, "n0"); !ok || rt.NextNode != "n3" {
		t.Fatalf("budget 1 chose %+v, want the direct hop", rt)
	}
	// Budget to spare: the PathID rail is honored.
	if rt, _ := d.railFor(header{DstRank: 3, PathID: 1, Budget: 2}, "n0"); rt.NextNode != "n2" {
		t.Fatalf("budget 2 chose %+v, want the PathID rail", rt)
	}
	// No budget info (plain relayed traffic): primary routing.
	if rt, _ := d.railFor(header{DstRank: 3}, "n0"); rt.NextNode != "n3" {
		t.Fatalf("no budget chose %+v, want primary", rt)
	}
	// Never back to the sender, even when the PathID rail points there.
	if rt, _ := d.railFor(header{DstRank: 3, PathID: 1, Budget: 9}, "n2"); rt.NextNode != "n3" {
		t.Fatalf("backtrack guard chose %+v", rt)
	}
}

// chainRig wires n0 --sci-- n1(gateway) --tcp-- n2 with the gateway's
// relay window set to w. seg is the relay pipelining segment of the
// multi-hop route (0 = whole-body store-and-forward).
func chainRig(t *testing.T, w, seg int) *wireRig {
	t.Helper()
	r := newWireRig(t, 3, netsim.SCISISCI(), netsim.FastEthernetTCP())
	sci := func(i int) *madeleine.Channel { return r.chans[i][0] }
	tcp := func(i int) *madeleine.Channel { return r.chans[i][1] }
	r.devs[0].AddRoute(1, Route{Channel: sci(0), NextNode: "n1"})
	r.devs[0].AddRoute(2, Route{Channel: sci(0), NextNode: "n1", Hops: 2, SegBytes: seg})
	r.devs[1].AddRoute(0, Route{Channel: sci(1), NextNode: "n0"})
	r.devs[1].AddRoute(2, Route{Channel: tcp(1), NextNode: "n2"})
	r.devs[2].AddRoute(1, Route{Channel: tcp(2), NextNode: "n1"})
	r.devs[2].AddRoute(0, Route{Channel: tcp(2), NextNode: "n1", Hops: 2})
	r.devs[1].RelayWindow = w
	return r
}

// TestRelayWindowBoundsQueue: with a credit window of 2, a long segment
// train relays through the gateway with its store-and-forward queue never
// exceeding 2, some segments deferred, and the payload intact — the
// bounded-queue acceptance criterion at device level.
func TestRelayWindowBoundsQueue(t *testing.T) {
	const size = 256 << 10
	r := chainRig(t, 2, 4<<10)
	r.start()
	payload := pattern(size)
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 9, Context: 0, Len: size},
			Dst: 2, Data: payload, Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Error(sr.Err)
		}
	})
	r.procs[2].Spawn("recv", func() {
		rr := &adi.RecvReq{
			Src: 0, Tag: 9, Context: 0,
			Buf:  make([]byte, size),
			Done: vtime.NewEvent(r.s, "recv"),
		}
		r.engs[2].PostRecv(rr)
		rr.Done.Wait()
		if rr.Err != nil {
			t.Error(rr.Err)
		}
		if !bytes.Equal(rr.Buf, payload) {
			t.Error("payload corrupted through the bounded relay")
		}
	})
	r.run(t)
	gw := r.devs[1]
	if gw.RelayQueuePeak > 2 {
		t.Errorf("relay queue peak %d exceeds the window of 2", gw.RelayQueuePeak)
	}
	if gw.NRelayDeferred == 0 {
		t.Error("a 64-segment train through a window of 2 should defer")
	}
	if gw.NRelayDrops != 0 {
		t.Errorf("bounded relay dropped %d messages (lossless mode)", gw.NRelayDrops)
	}
}

// TestRelayBusyNackRetry: while a window-1 gateway is occupied relaying
// one rendez-vous body, a second rendez-vous request through it is
// busy-nacked; the sender backs off, retries, and both transfers complete
// intact — closed-loop admission control.
func TestRelayBusyNackRetry(t *testing.T) {
	const size = 128 << 10
	r := chainRig(t, 1, 0) // whole-body store-and-forward holds the credit long
	r.start()
	p1, p2 := pattern(size), pattern(size/2)
	send := func(tag int, data []byte, after vtime.Duration) {
		r.procs[0].Spawn(fmt.Sprintf("send%d", tag), func() {
			if after > 0 {
				r.procs[0].Sleep(after)
			}
			sr := &adi.SendReq{
				Env: adi.Envelope{Src: 0, Tag: tag, Context: 0, Len: len(data)},
				Dst: 2, Data: data, Done: vtime.NewEvent(r.s, "send"),
			}
			r.devs[0].Send(sr)
			sr.Done.Wait()
			if sr.Err != nil {
				t.Errorf("tag %d: %v", tag, sr.Err)
			}
		})
	}
	recv := func(tag int, want []byte) {
		r.procs[2].Spawn(fmt.Sprintf("recv%d", tag), func() {
			rr := &adi.RecvReq{
				Src: 0, Tag: tag, Context: 0,
				Buf:  make([]byte, len(want)),
				Done: vtime.NewEvent(r.s, "recv"),
			}
			r.engs[2].PostRecv(rr)
			rr.Done.Wait()
			if rr.Err != nil {
				t.Errorf("tag %d: %v", tag, rr.Err)
			}
			if !bytes.Equal(rr.Buf, want) {
				t.Errorf("tag %d: corrupted", tag)
			}
		})
	}
	send(1, p1, 0)
	recv(1, p1)
	// The second request reaches the gateway while transfer 1's body is
	// being re-emitted on the slow TCP hop.
	send(2, p2, 3*vtime.Millisecond)
	recv(2, p2)
	r.run(t)
	if r.devs[1].NRelayBusy == 0 {
		t.Error("gateway never busy-nacked despite a held window-1 credit")
	}
	if r.devs[0].NRndvRetries == 0 {
		t.Error("sender never retried a busy-nacked request")
	}
	if r.devs[1].NRelayDrops != 0 {
		t.Errorf("admission control dropped %d messages", r.devs[1].NRelayDrops)
	}
}

// TestRelayDropReasons: queue-full drops (lossy-eager ablation at a full
// gateway) and no-route drops (routing hole) are counted under distinct
// reasons — admission-control drops must be distinguishable from routing
// failures.
func TestRelayDropReasons(t *testing.T) {
	const size = 256 << 10
	r := chainRig(t, 1, 0)
	r.devs[1].RelayLossyEager = true
	r.start()
	payload := pattern(size)
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 9, Context: 0, Len: size},
			Dst: 2, Data: payload, Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Error(sr.Err)
		}
		// The gateway holds its only credit while the body crosses the
		// slow hop; an eager message relayed now overflows the queue.
		r.procs[0].Sleep(2 * vtime.Millisecond)
		eag := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 10, Context: 0, Len: 64},
			Dst: 2, Data: pattern(64), Done: vtime.NewEvent(r.s, "eager"),
		}
		r.devs[0].Send(eag)
		eag.Done.Wait()
		if eag.Err != nil {
			t.Errorf("eager send should complete locally: %v", eag.Err)
		}
	})
	r.procs[2].Spawn("recv", func() {
		rr := &adi.RecvReq{
			Src: 0, Tag: 9, Context: 0,
			Buf:  make([]byte, size),
			Done: vtime.NewEvent(r.s, "recv"),
		}
		r.engs[2].PostRecv(rr)
		rr.Done.Wait()
		if rr.Err != nil {
			t.Error(rr.Err)
		}
	})
	r.run(t)
	gw := r.devs[1]
	if gw.NDropsQueueFull != 1 {
		t.Errorf("queue-full drops = %d, want 1", gw.NDropsQueueFull)
	}
	if gw.NDropsNoRoute != 0 {
		t.Errorf("no-route drops = %d, want 0", gw.NDropsNoRoute)
	}
	if gw.NRelayDrops != gw.NDropsQueueFull+gw.NDropsNoRoute {
		t.Errorf("total drops %d != %d+%d", gw.NRelayDrops, gw.NDropsNoRoute, gw.NDropsQueueFull)
	}
}
