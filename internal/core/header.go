// Package core implements the paper's contribution: the ch_mad MPICH
// device (§4), a single ADI device built on the Madeleine multi-protocol
// library that handles every inter-node communication of an MPI session,
// across all networks simultaneously.
//
// Structure (Fig. 3): one Madeleine channel per network protocol, one
// polling thread per channel, eager and rendez-vous transfer modes
// (Fig. 4), the five packet types of Fig. 5, the header/body split that
// avoids the sender-side eager copy (§4.2.2), and the single elected
// eager->rendez-vous switch point that the ADI's MPID_Device structure
// forces on the device (§4.2.2).
package core

import (
	"encoding/binary"
	"fmt"

	"mpichmad/internal/adi"
)

// PktType discriminates the ch_mad packet types of Fig. 5. Giving the
// discriminator a named type (instead of a bare int) lets the madlint
// pktswitch analyzer prove every switch over it is exhaustive: adding a
// packet type without handling it everywhere becomes a lint-time error
// instead of a runtime panic at rank 900 of a 1000-rank job.
type PktType uint8

// ch_mad packet types (Fig. 5).
const (
	// PktShort carries eager-mode data: the ADI short-packet header
	// travels in the ch_mad header buffer, the user data as the
	// Madeleine message body (the §4.2.2 split).
	PktShort PktType = iota + 1
	// PktRequest opens a rendez-vous: envelope only (Fig. 4b "Request").
	PktRequest
	// PktSendOK acknowledges a rendez-vous: carries the receiver's
	// sync_address (MPID_RNDV_T hook) and echoes the sender's request id.
	PktSendOK
	// PktRndv carries rendez-vous data: sync_address in the header, the
	// payload as a zero-copy body.
	PktRndv
	// PktTerm terminates a polling loop at MPI_Finalize.
	PktTerm
	// PktRndvSeg carries one pipelined segment of a multi-hop rendez-vous
	// body (§6 forwarding extension): sync_address and byte offset in the
	// header, the segment as a zero-copy body. Gateways relay each segment
	// independently, so segment k+1 is in flight on the inbound hop while
	// segment k is already being re-emitted outbound.
	PktRndvSeg
	// PktNack reports a relay refusal back to the original sender of a
	// rendez-vous request. Carries the request id plus a reason code in
	// the Context field: NackNoRoute (a gateway had no onward route; the
	// sender fails that send with an MPI error instead of the whole
	// simulation crashing) or NackBusy (admission control: the gateway's
	// bounded relay queue is full; the sender backs off and retries).
	PktNack
)

// PktNack reason codes, carried in the header's Context field (a nack
// never carries an MPI context).
const (
	// NackNoRoute: the relaying gateway has no onward route (misconfigured
	// multi-hop topology). Fatal for the send.
	NackNoRoute = 0
	// NackBusy: the relaying gateway's store-and-forward queue is at its
	// credit bound and refused to admit a new rendez-vous transfer. The
	// sender retries after a backoff.
	NackBusy = 1
)

// String names the packet type as the paper's Fig. 5 spells it.
func (t PktType) String() string {
	switch t {
	case PktShort:
		return "MAD_SHORT_PKT"
	case PktRequest:
		return "MAD_REQUEST_PKT"
	case PktSendOK:
		return "MAD_SENDOK_PKT"
	case PktRndv:
		return "MAD_RNDV_PKT"
	case PktTerm:
		return "MAD_TERM_PKT"
	case PktRndvSeg:
		return "MAD_RNDVSEG_PKT"
	case PktNack:
		return "MAD_NACK_PKT"
	default:
		return fmt.Sprintf("pkt(%d)", uint8(t))
	}
}

// header is the fixed ch_mad message header, always packed EXPRESS as the
// first Madeleine block ("the header is always sent following the
// Madeleine EXPRESS semantics (it contains data needed to unpack the
// body)", §4.2.1). SrcRank/DstRank enable the gateway-forwarding
// extension (§6 future work).
type header struct {
	Type    PktType
	SrcRank int
	DstRank int
	Tag     int
	Context int
	Len     int
	ReqID   uint32 // sender-side rendez-vous request id
	SyncID  uint32 // receiver-side sync_address (MPID_RNDV_T)
	Offset  int    // byte offset of a pipelined RNDV segment (PktRndvSeg)
	PathID  int    // rail tag of a striped RNDV segment: which of the
	// sender's edge-disjoint paths this segment rides; relaying gateways
	// use it to keep the stripe on the matching rail of their own route
	// set (0 = primary path, the only value non-striped traffic carries)
	Budget int // remaining hop budget of a routed segment: the sender
	// stamps the rail's planned path length and every relay decrements,
	// so a gateway only continues a stripe on a rail that fits the
	// remaining budget — under a stable plan a stripe stays on a suffix
	// of its planned rail and never takes extra hops (a mid-flight
	// Replan may strand a stale budget; railFor then degrades to the
	// most direct deliverable rail). 0 = no budget: primary-rail routing.
}

// HeaderSize is the wire size of the ch_mad header block.
const HeaderSize = 1 + 5*4 + 2*4 + 4 + 2

func (h *header) encode() []byte {
	buf := make([]byte, HeaderSize)
	buf[0] = byte(h.Type)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], uint32(int32(h.SrcRank)))
	le.PutUint32(buf[5:], uint32(int32(h.DstRank)))
	le.PutUint32(buf[9:], uint32(int32(h.Tag)))
	le.PutUint32(buf[13:], uint32(int32(h.Context)))
	le.PutUint32(buf[17:], uint32(int32(h.Len)))
	le.PutUint32(buf[21:], h.ReqID)
	le.PutUint32(buf[25:], h.SyncID)
	le.PutUint32(buf[29:], uint32(int32(h.Offset)))
	buf[33] = byte(h.PathID)
	buf[34] = byte(h.Budget)
	return buf
}

func decodeHeader(buf []byte) (header, error) {
	if len(buf) != HeaderSize {
		return header{}, fmt.Errorf("core: header is %d bytes, want %d", len(buf), HeaderSize)
	}
	le := binary.LittleEndian
	return header{
		Type:    PktType(buf[0]),
		SrcRank: int(int32(le.Uint32(buf[1:]))),
		DstRank: int(int32(le.Uint32(buf[5:]))),
		Tag:     int(int32(le.Uint32(buf[9:]))),
		Context: int(int32(le.Uint32(buf[13:]))),
		Len:     int(int32(le.Uint32(buf[17:]))),
		ReqID:   le.Uint32(buf[21:]),
		SyncID:  le.Uint32(buf[25:]),
		Offset:  int(int32(le.Uint32(buf[29:]))),
		PathID:  int(buf[33]),
		Budget:  int(buf[34]),
	}, nil
}

func (h *header) envelope() adi.Envelope {
	return adi.Envelope{Src: h.SrcRank, Tag: h.Tag, Context: h.Context, Len: h.Len}
}
