package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// rig wires n ranks (one per node) with ch_mad devices over one or more
// networks, fully connected, routing over the first network by default.
type rig struct {
	s     *vtime.Scheduler
	procs []*marcel.Proc
	engs  []*adi.Engine
	devs  []*Device
	nets  []*netsim.Network
}

func newRig(t *testing.T, n int, paramSets ...netsim.Params) *rig {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(200 * vtime.Second))
	r := &rig{s: s}
	for _, p := range paramSets {
		r.nets = append(r.nets, netsim.NewNetwork(s, p.Network, p))
	}
	for i := 0; i < n; i++ {
		p := marcel.NewProc(s, fmt.Sprintf("n%d", i))
		eng := adi.NewEngine(p, i)
		dev := New(p, eng, i)
		inst := madeleine.New(p)
		for k, net := range r.nets {
			ch, err := inst.NewChannel(fmt.Sprintf("ch%d", k), net)
			if err != nil {
				t.Fatal(err)
			}
			dev.AddChannel(ch)
		}
		r.procs = append(r.procs, p)
		r.engs = append(r.engs, eng)
		r.devs = append(r.devs, dev)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r.devs[i].AddRoute(j, Route{Channel: r.devs[i].Channels()[0], NextNode: fmt.Sprintf("n%d", j)})
		}
	}
	for i := 0; i < n; i++ {
		r.devs[i].Start()
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) sendReq(from, to, tag int, data []byte) *adi.SendReq {
	return &adi.SendReq{
		Env:  adi.Envelope{Src: from, Tag: tag, Context: 0, Len: len(data)},
		Dst:  to,
		Data: data,
		Done: vtime.NewEvent(r.s, "send"),
	}
}

func (r *rig) recvReq(src, tag, n int) *adi.RecvReq {
	return &adi.RecvReq{
		Src: src, Tag: tag, Context: 0,
		Buf:  make([]byte, n),
		Done: vtime.NewEvent(r.s, "recv"),
	}
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 5)
	}
	return b
}

// exchange runs a single device-level message and validates integrity.
func exchange(t *testing.T, params netsim.Params, size int, preposted bool) {
	t.Helper()
	r := newRig(t, 2, params)
	payload := pattern(size)
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 1, 11, payload)
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Error(sr.Err)
		}
	})
	r.procs[1].Spawn("recv", func() {
		if !preposted {
			r.procs[1].Sleep(5 * vtime.Millisecond)
		}
		rr := r.recvReq(0, 11, size)
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		if rr.Err != nil {
			t.Error(rr.Err)
		}
		if !bytes.Equal(rr.Buf, payload) {
			t.Errorf("size %d preposted %v: corrupted", size, preposted)
		}
		if rr.Status.Source != 0 || rr.Status.Tag != 11 || rr.Status.Len != size {
			t.Errorf("status %+v", rr.Status)
		}
	})
	r.run(t)
}

func TestEagerExpectedAndUnexpected(t *testing.T) {
	for _, params := range []netsim.Params{netsim.SCISISCI(), netsim.FastEthernetTCP(), netsim.MyrinetBIP()} {
		exchange(t, params, 0, true)
		exchange(t, params, 4, true)
		exchange(t, params, 4, false)
		exchange(t, params, 4000, true)
		exchange(t, params, 4000, false)
	}
}

func TestRendezvousExpectedAndUnexpected(t *testing.T) {
	for _, params := range []netsim.Params{netsim.SCISISCI(), netsim.FastEthernetTCP(), netsim.MyrinetBIP()} {
		big := params.SwitchPoint + 1
		exchange(t, params, big, true)
		exchange(t, params, big, false)
		exchange(t, params, 1<<20, true)
	}
}

func TestRendezvousBookkeepingDrained(t *testing.T) {
	r := newRig(t, 2, netsim.SCISISCI())
	payload := pattern(100000)
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 1, 0, payload)
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		rr := r.recvReq(0, 0, len(payload))
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
	})
	r.run(t)
	for i, d := range r.devs {
		s, rc := d.Pending()
		if s != 0 || rc != 0 {
			t.Errorf("dev %d: pending sends=%d recvs=%d after completion", i, s, rc)
		}
	}
	if r.devs[0].NRndv != 1 || r.devs[0].NEager != 0 {
		t.Errorf("mode counters: eager=%d rndv=%d", r.devs[0].NEager, r.devs[0].NRndv)
	}
}

func TestZeroByteIsSinglePacket(t *testing.T) {
	// §4.2.1: control-only messages have no body, avoiding the second
	// pack; a 0-byte MPI message is one wire packet.
	r := newRig(t, 2, netsim.SCISISCI())
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 1, 0, nil)
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		rr := r.recvReq(0, 0, 0)
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
	})
	r.run(t)
	if got := r.nets[0].Stats.Packets; got != 1 {
		t.Fatalf("0-byte message used %d packets, want 1", got)
	}
}

func TestEagerBodyIsZeroCopySeparatePacket(t *testing.T) {
	// §4.2.2 split: an 8 KB eager body on SCI rides as its own
	// zero-copy packet next to the header packet.
	r := newRig(t, 2, netsim.SCISISCI())
	size := 8 << 10 // exactly the SCI switch point: still eager
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 1, 0, pattern(size))
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		rr := r.recvReq(0, 0, size)
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
	})
	r.run(t)
	if got := r.nets[0].Stats.Packets; got != 2 {
		t.Fatalf("eager used %d packets, want 2 (head + body)", got)
	}
	if r.devs[0].NEager != 1 {
		t.Fatalf("mode counters: eager=%d", r.devs[0].NEager)
	}
}

func TestSwitchPointElection(t *testing.T) {
	mk := func(paramSets ...netsim.Params) *Device {
		s := vtime.New()
		p := marcel.NewProc(s, "n0")
		eng := adi.NewEngine(p, 0)
		d := New(p, eng, 0)
		inst := madeleine.New(p)
		for k, ps := range paramSets {
			net := netsim.NewNetwork(s, fmt.Sprintf("net%d", k), ps)
			ch, err := inst.NewChannel(fmt.Sprintf("ch%d", k), net)
			if err != nil {
				t.Fatal(err)
			}
			d.AddChannel(ch)
		}
		return d
	}
	// §4.2.2: SCI present -> 8 KB, even alongside Myrinet.
	if got := mk(netsim.MyrinetBIP(), netsim.SCISISCI(), netsim.FastEthernetTCP()).ElectSwitchPoint(); got != 8<<10 {
		t.Errorf("SCI+BIP+TCP elected %d, want 8K", got)
	}
	// No SCI: most performant network's switch point (Myrinet, 7 KB).
	if got := mk(netsim.FastEthernetTCP(), netsim.MyrinetBIP()).ElectSwitchPoint(); got != 7<<10 {
		t.Errorf("BIP+TCP elected %d, want 7K", got)
	}
	// TCP only.
	if got := mk(netsim.FastEthernetTCP()).ElectSwitchPoint(); got != 64<<10 {
		t.Errorf("TCP elected %d, want 64K", got)
	}
	// No channels at all: conservative default.
	if got := mk().ElectSwitchPoint(); got != 64<<10 {
		t.Errorf("empty elected %d, want 64K", got)
	}
}

func TestTruncationEagerAndRndv(t *testing.T) {
	for _, size := range []int{1000, 100000} {
		r := newRig(t, 2, netsim.SCISISCI())
		payload := pattern(size)
		r.procs[0].Spawn("send", func() {
			sr := r.sendReq(0, 1, 0, payload)
			r.devs[0].Send(sr)
			sr.Done.Wait()
		})
		r.procs[1].Spawn("recv", func() {
			rr := r.recvReq(0, 0, size/4)
			r.engs[1].PostRecv(rr)
			rr.Done.Wait()
			if !errors.Is(rr.Err, adi.ErrTruncate) {
				t.Errorf("size %d: err=%v, want truncate", size, rr.Err)
			}
			if !bytes.Equal(rr.Buf, payload[:size/4]) {
				t.Errorf("size %d: prefix corrupted", size)
			}
		})
		r.run(t)
	}
}

func TestNoRouteError(t *testing.T) {
	r := newRig(t, 2, netsim.SCISISCI())
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 9, 0, []byte("x"))
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err == nil {
			t.Error("want error for unroutable destination")
		}
	})
	r.run(t)
}

func TestMonolithicEagerAblationCorrectness(t *testing.T) {
	// The X2 ablation still delivers correct data, just slower/padded.
	r := newRig(t, 2, netsim.SCISISCI())
	for _, d := range r.devs {
		d.MonolithicEager = true
	}
	size := 1000
	payload := pattern(size)
	r.procs[0].Spawn("send", func() {
		sr := r.sendReq(0, 1, 0, payload)
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		rr := r.recvReq(0, 0, size)
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, payload) {
			t.Error("monolithic eager corrupted payload")
		}
	})
	r.run(t)
	// Padded wire: the body packet is switchPoint bytes, so total bytes
	// must exceed the split scheme's by a wide margin.
	if got := r.nets[0].Stats.Bytes; got < uint64(r.devs[0].SwitchPoint()) {
		t.Errorf("wire bytes %d; expected padded buffer >= %d", got, r.devs[0].SwitchPoint())
	}
}

func TestForwardingAcrossHeterogeneousNetworks(t *testing.T) {
	// §6 future-work extension: rank0 (SCI island) reaches rank2
	// (Myrinet island) through gateway rank1, for both transfer modes.
	s := vtime.New()
	s.SetDeadline(vtime.Time(200 * vtime.Second))
	sci := netsim.NewNetwork(s, "SCI", netsim.SCISISCI())
	myri := netsim.NewNetwork(s, "Myrinet", netsim.MyrinetBIP())

	procs := make([]*marcel.Proc, 3)
	engs := make([]*adi.Engine, 3)
	devs := make([]*Device, 3)
	for i := 0; i < 3; i++ {
		procs[i] = marcel.NewProc(s, fmt.Sprintf("n%d", i))
		engs[i] = adi.NewEngine(procs[i], i)
		devs[i] = New(procs[i], engs[i], i)
	}
	mk := func(i int, name string, net *netsim.Network) *madeleine.Channel {
		inst := madeleine.New(procs[i])
		ch, err := inst.NewChannel(name, net)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	// rank0: SCI only; rank1: both; rank2: Myrinet only.
	ch0 := mk(0, "sci", sci)
	devs[0].AddChannel(ch0)
	inst1 := madeleine.New(procs[1])
	ch1s, err := inst1.NewChannel("sci", sci)
	if err != nil {
		t.Fatal(err)
	}
	ch1m, err := inst1.NewChannel("myri", myri)
	if err != nil {
		t.Fatal(err)
	}
	devs[1].AddChannel(ch1s)
	devs[1].AddChannel(ch1m)
	ch2 := mk(2, "myri", myri)
	devs[2].AddChannel(ch2)

	devs[0].AddRoute(1, Route{Channel: ch0, NextNode: "n1"})
	devs[0].AddRoute(2, Route{Channel: ch0, NextNode: "n1"}) // via gateway
	devs[1].AddRoute(0, Route{Channel: ch1s, NextNode: "n0"})
	devs[1].AddRoute(2, Route{Channel: ch1m, NextNode: "n2"})
	devs[2].AddRoute(1, Route{Channel: ch2, NextNode: "n1"})
	devs[2].AddRoute(0, Route{Channel: ch2, NextNode: "n1"}) // via gateway
	for i := 0; i < 3; i++ {
		devs[i].Start()
	}

	mkSend := func(from, to, tag int, data []byte) *adi.SendReq {
		return &adi.SendReq{
			Env: adi.Envelope{Src: from, Tag: tag, Context: 0, Len: len(data)},
			Dst: to, Data: data, Done: vtime.NewEvent(s, "send"),
		}
	}
	small := pattern(64)
	big := pattern(100000) // > 8K elected switch point: rendez-vous through the gateway
	procs[0].Spawn("send", func() {
		sr := mkSend(0, 2, 1, small)
		devs[0].Send(sr)
		sr.Done.Wait()
		sr2 := mkSend(0, 2, 2, big)
		devs[0].Send(sr2)
		sr2.Done.Wait()
		if sr.Err != nil || sr2.Err != nil {
			t.Error(sr.Err, sr2.Err)
		}
	})
	procs[2].Spawn("recv", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 1, Context: 0, Buf: make([]byte, 64), Done: vtime.NewEvent(s, "r")}
		engs[2].PostRecv(rr)
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, small) {
			t.Error("forwarded eager corrupted")
		}
		rr2 := &adi.RecvReq{Src: 0, Tag: 2, Context: 0, Buf: make([]byte, len(big)), Done: vtime.NewEvent(s, "r2")}
		engs[2].PostRecv(rr2)
		rr2.Done.Wait()
		if !bytes.Equal(rr2.Buf, big) {
			t.Error("forwarded rendez-vous corrupted")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if devs[1].NForwarded == 0 {
		t.Fatal("gateway forwarded nothing")
	}
}

// devPingPong measures one-way latency at the device level (what Table 2
// reports as ch_mad latency).
func devPingPong(t *testing.T, params netsim.Params, size, iters int) vtime.Duration {
	t.Helper()
	r := newRig(t, 2, params)
	var elapsed vtime.Duration
	roundtrip := func(me, peer int) {
		sr := r.sendReq(me, peer, 0, pattern(size))
		r.devs[me].Send(sr)
		sr.Done.Wait()
		rr := r.recvReq(peer, 0, size)
		r.engs[me].PostRecv(rr)
		rr.Done.Wait()
	}
	r.procs[0].Spawn("ping", func() {
		start := r.s.Now()
		for i := 0; i < iters; i++ {
			roundtrip(0, 1)
		}
		elapsed = r.s.Now().Sub(start)
	})
	r.procs[1].Spawn("pong", func() {
		for i := 0; i < iters; i++ {
			rr := r.recvReq(0, 0, size)
			r.engs[1].PostRecv(rr)
			rr.Done.Wait()
			sr := r.sendReq(1, 0, 0, pattern(size))
			r.devs[1].Send(sr)
			sr.Done.Wait()
		}
	})
	r.run(t)
	return elapsed / vtime.Duration(2*iters)
}

// TestTable2Latencies validates the ch_mad summary table of the paper.
func TestTable2Latencies(t *testing.T) {
	cases := []struct {
		params netsim.Params
		size   int
		want   float64 // us
		tolPct float64
	}{
		{netsim.FastEthernetTCP(), 0, 130, 5},
		{netsim.FastEthernetTCP(), 4, 148.7, 5},
		{netsim.SCISISCI(), 0, 13, 8},
		{netsim.SCISISCI(), 4, 20, 8},
		{netsim.MyrinetBIP(), 0, 16.9, 10},
		{netsim.MyrinetBIP(), 4, 18.9, 12},
	}
	for _, c := range cases {
		got := devPingPong(t, c.params, c.size, 4).Micros()
		if math.Abs(got-c.want)/c.want*100 > c.tolPct {
			t.Errorf("%s %dB ch_mad latency = %.2fus, want %.1f ±%.0f%%",
				c.params.Network, c.size, got, c.want, c.tolPct)
		}
	}
}

// TestTable2Bandwidth validates the 8 MB ch_mad bandwidths (TCP 11.2,
// BIP 115, SISCI 82.5 MB/s) — the rendez-vous zero-copy path delivers
// nearly all of Madeleine's bandwidth.
func TestTable2Bandwidth(t *testing.T) {
	cases := []struct {
		params netsim.Params
		want   float64
		tolPct float64
	}{
		{netsim.FastEthernetTCP(), 11.2, 3},
		{netsim.SCISISCI(), 82.5, 3},
		{netsim.MyrinetBIP(), 115, 8}, // paper reports 115 of the raw 122
	}
	for _, c := range cases {
		oneWay := devPingPong(t, c.params, 8*netsim.MB, 1)
		got := float64(8*netsim.MB) / oneWay.Seconds() / netsim.MB
		if math.Abs(got-c.want)/c.want*100 > c.tolPct {
			t.Errorf("%s ch_mad 8MB bandwidth = %.1f MB/s, want %.1f ±%.0f%%",
				c.params.Network, got, c.want, c.tolPct)
		}
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	h := header{Type: PktSendOK, SrcRank: 3, DstRank: 9, Tag: -1, Context: 12, Len: 1 << 20, ReqID: 77, SyncID: 99}
	got, err := decodeHeader(h.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip: %+v != %+v", got, h)
	}
	if _, err := decodeHeader([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
	for _, k := range []PktType{PktShort, PktRequest, PktSendOK, PktRndv, PktTerm, 99} {
		if k.String() == "" {
			t.Fatal("empty packet name")
		}
	}
}

func TestShutdownIdempotent(t *testing.T) {
	r := newRig(t, 2, netsim.SCISISCI())
	r.procs[0].Spawn("main", func() {
		r.devs[0].Shutdown()
		r.devs[0].Shutdown()
		// Channels stay open after shutdown (gateways may still forward):
		// an orderly MAD_TERM_PKT can still be emitted and terminates the
		// peer's polling loop.
		if err := r.devs[0].SendTerm(1); err != nil {
			t.Errorf("SendTerm after shutdown: %v", err)
		}
		if err := r.devs[0].SendTerm(42); err == nil {
			t.Error("SendTerm to unroutable rank should fail")
		}
		ch := r.devs[0].Channels()[0]
		ch.Close()
		if _, err := ch.BeginPacking("n1"); !errors.Is(err, madeleine.ErrChannelClosed) {
			t.Errorf("after close: %v", err)
		}
	})
	r.run(t)
	if r.devs[0].Name() != "ch_mad" || r.devs[0].Rank() != 0 {
		t.Fatal("identity accessors broken")
	}
}
