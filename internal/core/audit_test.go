package core

import (
	"strings"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// TestAuditCleanDevice: a freshly wired device is at rest and passes.
func TestAuditCleanDevice(t *testing.T) {
	d := New(nil, nil, 3)
	if err := d.AuditInvariants(); err != nil {
		t.Fatalf("clean device failed audit: %v", err)
	}
}

// TestAuditCatchesLeakedState seeds one violation per invariant family and
// checks each is named in the report.
func TestAuditCatchesLeakedState(t *testing.T) {
	s := vtime.New()
	d := New(nil, nil, 3)
	d.pending[7] = &adi.SendReq{}
	d.retries[7] = 2
	d.rndvRx[9] = &rndvState{env: adi.Envelope{Len: 4096}, remaining: 1024}
	d.relayInFlight = 1
	d.relayParking = 1
	d.RelayWindow = 4
	d.relayCredits = vtime.NewSem(s, "audit.relay", 2) // 2 of 4 credits leaked
	d.RelayQueuePeak = 9
	d.NRelayDrops = 5 // breakdown says 1
	d.NDropsNoRoute = 1
	d.RelayBytes = 128 // with zero forwards

	err := d.AuditInvariants()
	if err == nil {
		t.Fatal("wedged device passed audit")
	}
	for _, want := range []string{
		"ch_mad[3]",
		"pending (req ids [7])",
		"retry counter(s) leaked",
		"stripe reassembly for sync 9 incomplete: 1024 of 4096",
		"still held for re-emission",
		"parked for a relay credit",
		"credit window not back to full: 2 of 4",
		"peak 9 exceeded the credit window 4",
		"NRelayDrops=5 != NDropsNoRoute=1 + NDropsQueueFull=0",
		"RelayBytes=128 with zero forwards",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("audit report missing %q:\n%v", want, err)
		}
	}
}

// TestAuditFailureIncludesFlightTail: a seeded violation on a traced
// device carries the flight recorder's last events in the error — the
// exchange that leaked the state is in the report, not just the leak.
func TestAuditFailureIncludesFlightTail(t *testing.T) {
	d := New(nil, nil, 3)
	tr := trace.New(func() vtime.Time { return 1500 })
	tr.BeginSession("audit")
	d.Trace = tr
	d.TraceTrack = 3
	tr.Instant(3, trace.KRndv, "rndv.req", trace.Args{HasPeer: true, Src: 3, Dst: 8, Bytes: 4096, Seq: 7})
	tr.Instant(3, trace.KCredit, "relay.busy", trace.Args{HasPeer: true, Src: 3, Dst: 8, Seq: 7})
	d.pending[7] = &adi.SendReq{} // the leak the events explain

	err := d.AuditInvariants()
	if err == nil {
		t.Fatal("seeded device passed audit")
	}
	for _, want := range []string{
		"ch_mad[3]",
		"pending (req ids [7])",
		"last 2 trace events before the audit",
		"rndv.req src=3 dst=8 bytes=4096 seq=7",
		"relay.busy",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("audit report missing %q:\n%v", want, err)
		}
	}

	// Untraced devices keep the classic one-line report.
	d2 := New(nil, nil, 3)
	d2.pending[7] = &adi.SendReq{}
	if err := d2.AuditInvariants(); err == nil ||
		strings.Contains(err.Error(), "trace events") {
		t.Fatalf("untraced audit changed shape: %v", err)
	}
}

// TestAuditWholeBodyRndvOpen: a rendez-vous that never completed reports
// as an open sync, not a stripe.
func TestAuditWholeBodyRndvOpen(t *testing.T) {
	d := New(nil, nil, 0)
	d.rndvRx[1] = &rndvState{env: adi.Envelope{Len: 64}, remaining: 64}
	err := d.AuditInvariants()
	if err == nil || !strings.Contains(err.Error(), "rendez-vous sync 1 still open (64 bytes expected)") {
		t.Fatalf("want open-sync report, got %v", err)
	}
}
