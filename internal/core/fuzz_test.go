package core

import (
	"bytes"
	"testing"

	"mpichmad/internal/adi"
)

// FuzzHeaderCodec checks that the ch_mad wire header codec is an exact
// bijection on well-sized buffers: any HeaderSize-byte input decodes, and
// re-encoding reproduces it bit for bit. Anything else must be rejected
// with an error, never a panic.
func FuzzHeaderCodec(f *testing.F) {
	h := header{Type: PktRndvSeg, SrcRank: 3, DstRank: 9, Tag: 42, Context: 1,
		Len: 1 << 16, ReqID: 7, SyncID: 12, Offset: 4096, PathID: 2, Budget: 3}
	f.Add(h.encode())
	f.Add((&header{Type: PktShort, SrcRank: -1, Tag: -1}).encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeHeader(data)
		if err != nil {
			if len(data) == HeaderSize {
				t.Fatalf("well-sized header rejected: %v", err)
			}
			return
		}
		if re := got.encode(); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a bijection:\n in %x\nout %x", data, re)
		}
	})
}

// FuzzRndvSegmentReassembly drives the receiver-side pipelined rendez-vous
// bookkeeping with arbitrary segmentations: the body is cut into segments
// whose sizes and landing order come from the fuzzer, and the reassembled
// bytes must equal the original body, completing exactly at the last
// segment — for both the zero-copy and the truncating (scratch) paths.
// Out-of-range segments must come back as errors, not slice panics.
func FuzzRndvSegmentReassembly(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x00, 8, 8, 8, 8})
	f.Add([]byte{0xff, 0x03, 0x01, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x40, 0x00, 0x02, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		bodyLen := 1 + (int(data[0])|int(data[1])<<8)%2048
		truncated := data[2]&1 == 1
		reverse := data[2]&2 == 2
		data = data[3:]

		// Hostile headers on a fresh transfer: rejected, not panicking.
		probe := &rndvState{env: adi.Envelope{Len: bodyLen},
			r: &adi.RecvReq{Buf: make([]byte, bodyLen)}, remaining: bodyLen}
		for _, bad := range [][2]int{{-1, 1}, {0, bodyLen + 1}, {bodyLen, 1}, {1, -2}} {
			if _, err := probe.segLanding(bad[0], bad[1], truncated); err == nil {
				t.Fatalf("segment [%d,+%d) of a %d-byte body accepted", bad[0], bad[1], bodyLen)
			}
		}

		body := make([]byte, bodyLen)
		for i := range body {
			body[i] = byte(i*7 + 3)
		}
		type seg struct{ off, n int }
		var segs []seg
		for off, i := 0, 0; off < bodyLen; i++ {
			n := 1
			if i < len(data) {
				n = 1 + int(data[i])%(bodyLen-off)
			} else {
				n = bodyLen - off
			}
			segs = append(segs, seg{off, n})
			off += n
		}
		if reverse {
			for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
				segs[i], segs[j] = segs[j], segs[i]
			}
		}

		recvLen := bodyLen
		if truncated {
			recvLen = bodyLen / 2 // shorter posted buffer: scratch path
		}
		st := &rndvState{env: adi.Envelope{Len: bodyLen},
			r: &adi.RecvReq{Buf: make([]byte, recvLen)}, remaining: bodyLen}
		for i, sg := range segs {
			landing, err := st.segLanding(sg.off, sg.n, truncated)
			if err != nil {
				t.Fatalf("segment [%d,+%d) rejected: %v", sg.off, sg.n, err)
			}
			copy(landing, body[sg.off:sg.off+sg.n])
			if done := st.segDone(sg.n); done != (i == len(segs)-1) {
				t.Fatalf("segment %d/%d: done=%v", i+1, len(segs), done)
			}
		}
		reassembled := st.r.Buf
		if truncated {
			reassembled = st.scratch
		}
		if !bytes.Equal(reassembled, body) {
			t.Fatalf("reassembly of %d segments corrupted the %d-byte body", len(segs), bodyLen)
		}
	})
}
