package core

import (
	"fmt"
	"sort"
	"strings"
)

// AuditInvariants implements adi.Auditor: the Finalize-time counterpart of
// the madlint static suite. Once a session's traffic has drained, every
// piece of ch_mad protocol state must have returned to rest; anything left
// over is a protocol bug (a leaked credit, a half-reassembled stripe, a
// rendez-vous that never completed) that would surface at scale as a hang
// or a silent miscount. Returns nil when the device is clean, otherwise an
// error enumerating every violated invariant.
//
// Called by the cluster session after a clean run; callable from tests on
// hand-wired devices too.
func (d *Device) AuditInvariants() error {
	var bad []string

	// Rendez-vous protocol state: no sends parked awaiting a SendOK, no
	// receiver syncs open, no stripe reassembly short of bytes.
	if n := len(d.pending); n != 0 {
		bad = append(bad, fmt.Sprintf("%d rendez-vous send(s) still pending (req ids %v)",
			n, sortedKeys(d.pending)))
	}
	if n := len(d.retries); n != 0 {
		bad = append(bad, fmt.Sprintf("%d busy-nack retry counter(s) leaked (req ids %v)",
			n, sortedKeys(d.retries)))
	}
	for _, sync := range sortedKeys(d.rndvRx) {
		st := d.rndvRx[sync]
		if st.remaining > 0 && st.remaining < st.env.Len {
			bad = append(bad, fmt.Sprintf("stripe reassembly for sync %d incomplete: %d of %d bytes outstanding",
				sync, st.remaining, st.env.Len))
		} else {
			bad = append(bad, fmt.Sprintf("rendez-vous sync %d still open (%d bytes expected)",
				sync, st.env.Len))
		}
	}

	// Relay credit window: every stored body released its credit, no
	// polling thread is parked, and the observed peak respected the bound.
	if d.relayInFlight != 0 {
		bad = append(bad, fmt.Sprintf("%d relayed body(ies) still held for re-emission", d.relayInFlight))
	}
	if d.relayParking != 0 {
		bad = append(bad, fmt.Sprintf("%d polling thread(s) still parked for a relay credit", d.relayParking))
	}
	if d.relayCredits != nil {
		if got := d.relayCredits.Value(); got != d.RelayWindow {
			bad = append(bad, fmt.Sprintf("relay credit window not back to full: %d of %d credits free",
				got, d.RelayWindow))
		}
		if w := d.relayCredits.Waiting(); w != 0 {
			bad = append(bad, fmt.Sprintf("%d task(s) still queued on the relay credit semaphore", w))
		}
	}
	if d.RelayWindow > 0 && d.RelayQueuePeak > d.RelayWindow {
		bad = append(bad, fmt.Sprintf("relay queue peak %d exceeded the credit window %d",
			d.RelayQueuePeak, d.RelayWindow))
	}

	// Counter consistency: the drop total must equal its breakdown, and a
	// device that never relayed must not have accumulated relay state.
	if d.NRelayDrops != d.NDropsNoRoute+d.NDropsQueueFull {
		bad = append(bad, fmt.Sprintf("drop counters inconsistent: NRelayDrops=%d != NDropsNoRoute=%d + NDropsQueueFull=%d",
			d.NRelayDrops, d.NDropsNoRoute, d.NDropsQueueFull))
	}
	if d.NForwarded == 0 && d.RelayBytes != 0 {
		bad = append(bad, fmt.Sprintf("RelayBytes=%d with zero forwards", d.RelayBytes))
	}

	if len(bad) == 0 {
		return nil
	}
	msg := fmt.Sprintf("ch_mad[%d] invariant audit: %s", d.rank, strings.Join(bad, "; "))
	// With a tracer attached, the flight recorder's tail travels with
	// the failure: the last events before the leaked state are usually
	// the ones that leaked it. Tail is nil-safe, so an untraced device
	// reports exactly as before.
	if tail := d.Trace.Tail(auditTailEvents); len(tail) > 0 {
		msg += fmt.Sprintf("\nlast %d trace events before the audit:\n  %s",
			len(tail), strings.Join(tail, "\n  "))
	}
	return fmt.Errorf("%s", msg)
}

// auditTailEvents bounds the flight-recorder dump an audit failure
// carries — enough to see the failing exchange without drowning the
// invariant list.
const auditTailEvents = 16

// sortedKeys returns a map's uint32 keys ascending — deterministic audit
// output (a map-ordered dump would itself violate the determinism rules).
func sortedKeys[V any](m map[uint32]V) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
