package mpi

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBasicTypes(t *testing.T) {
	cases := []struct {
		dt   Datatype
		size int
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size {
			t.Errorf("%s: size=%d extent=%d, want %d", c.dt.Name(), c.dt.Size(), c.dt.Extent(), c.size)
		}
		if !IsContiguous(c.dt) {
			t.Errorf("%s should be contiguous", c.dt.Name())
		}
	}
}

func TestContiguousPackIsAliasing(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	out := PackBuf(buf, 2, Int32)
	if &out[0] != &buf[0] {
		t.Fatal("contiguous pack must not copy")
	}
	if len(out) != 8 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestVectorRoundtrip(t *testing.T) {
	// A 4x4 matrix of int32; pick column 1 via a vector type.
	mat := make([]byte, 16*4)
	for i := 0; i < 16; i++ {
		mat[4*i] = byte(i)
	}
	col := Vector(4, 1, 4, Int32) // 4 blocks of 1 element, stride 4
	if col.Size() != 16 || col.Extent() != 13*4 {
		t.Fatalf("size=%d extent=%d", col.Size(), col.Extent())
	}
	packed := PackBuf(mat[4:], 1, col) // start at column 1
	want := []byte{1, 5, 9, 13}
	for i, w := range want {
		if packed[4*i] != w {
			t.Fatalf("packed col = % x", packed)
		}
	}
	// Unpack into a fresh matrix: only the column cells change.
	out := make([]byte, 16*4)
	UnpackBuf(out[4:], 1, col, packed)
	for i, w := range want {
		if out[4*(4*i+1)] != w {
			t.Fatalf("unpacked col wrong at row %d", i)
		}
	}
}

func TestIndexedRoundtrip(t *testing.T) {
	src := make([]byte, 40)
	for i := range src {
		src[i] = byte(i)
	}
	dt := Indexed([]int{2, 1, 3}, []int{0, 4, 6}, Int32)
	if dt.Size() != 6*4 {
		t.Fatalf("size = %d", dt.Size())
	}
	if dt.Extent() != 9*4 {
		t.Fatalf("extent = %d", dt.Extent())
	}
	packed := PackBuf(src, 1, dt)
	out := make([]byte, 40)
	UnpackBuf(out, 1, dt, packed)
	// Elements 0,1,4,6,7,8 must match; others zero.
	for _, e := range []int{0, 1, 4, 6, 7, 8} {
		if !bytes.Equal(out[4*e:4*e+4], src[4*e:4*e+4]) {
			t.Fatalf("element %d lost", e)
		}
	}
	if out[4*2] != 0 || out[4*3] != 0 || out[4*5] != 0 {
		t.Fatal("untouched elements were written")
	}
}

func TestStructRoundtrip(t *testing.T) {
	// struct { a [3]byte; pad [5]byte; b [8]byte } with extent 16.
	dt := Struct(16, []StructField{{Disp: 0, Len: 3}, {Disp: 8, Len: 8}})
	if dt.Size() != 11 || dt.Extent() != 16 {
		t.Fatalf("size=%d extent=%d", dt.Size(), dt.Extent())
	}
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i + 1)
	}
	packed := PackBuf(src, 2, dt)
	if len(packed) != 22 {
		t.Fatalf("packed len = %d", len(packed))
	}
	out := make([]byte, 32)
	UnpackBuf(out, 2, dt, packed)
	for _, i := range []int{0, 1, 2, 8, 9, 15, 16, 17, 24, 31} {
		if out[i] != src[i] {
			t.Fatalf("byte %d lost", i)
		}
	}
	if out[3] != 0 || out[20] != 0 {
		t.Fatal("padding written")
	}
}

func TestContiguousOfVector(t *testing.T) {
	inner := Vector(2, 1, 2, Int32)
	dt := Contiguous(3, inner)
	if dt.Size() != 3*8 {
		t.Fatalf("size=%d", dt.Size())
	}
	src := make([]byte, dt.Extent())
	for i := range src {
		src[i] = byte(i)
	}
	packed := PackBuf(src, 1, dt)
	out := make([]byte, dt.Extent())
	UnpackBuf(out, 1, dt, packed)
	repacked := PackBuf(out, 1, dt)
	if !bytes.Equal(packed, repacked) {
		t.Fatal("nested datatype roundtrip failed")
	}
}

func TestTypedHelpers(t *testing.T) {
	i32 := []int32{-1, 0, 1 << 30}
	if got := BytesInt32(Int32Bytes(i32)); got[0] != -1 || got[2] != 1<<30 {
		t.Fatalf("int32 roundtrip: %v", got)
	}
	i64 := []int64{-1 << 62, 42}
	if got := BytesInt64(Int64Bytes(i64)); got[0] != -1<<62 || got[1] != 42 {
		t.Fatalf("int64 roundtrip: %v", got)
	}
	f := []float64{3.14159, -2.5e300}
	if got := BytesFloat64(Float64Bytes(f)); got[0] != 3.14159 || got[1] != -2.5e300 {
		t.Fatalf("float64 roundtrip: %v", got)
	}
}

// Property: pack/unpack of any vector type is lossless on the selected
// elements.
func TestVectorPackProperty(t *testing.T) {
	f := func(count, blocklen, strideExtra uint8, seed uint8) bool {
		cnt := int(count%5) + 1
		bl := int(blocklen%4) + 1
		stride := bl + int(strideExtra%4)
		dt := Vector(cnt, bl, stride, Int32)
		src := make([]byte, dt.Extent()+16)
		for i := range src {
			src[i] = byte(int(seed) + i*7)
		}
		packed := PackBuf(src, 1, dt)
		out := make([]byte, len(src))
		UnpackBuf(out, 1, dt, packed)
		repacked := PackBuf(out, 1, dt)
		return bytes.Equal(packed, repacked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OpSum/OpMax over int64 agree with direct arithmetic and are
// commutative.
func TestOpsProperty(t *testing.T) {
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		x := Int64Bytes(a)
		y := Int64Bytes(b)
		if err := OpSum.Apply(x, y, n, Int64); err != nil {
			return false
		}
		got := BytesInt64(x)
		for i := range got {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		// Commutativity of max.
		p, q := Int64Bytes(a), Int64Bytes(b)
		OpMax.Apply(p, Int64Bytes(b), n, Int64)
		OpMax.Apply(q, Int64Bytes(a), n, Int64)
		return bytes.Equal(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsOnFloats(t *testing.T) {
	a := Float64Bytes([]float64{1.5, -2, 10})
	b := Float64Bytes([]float64{2, 3, -5})
	if err := OpProd.Apply(a, b, 3, Float64); err != nil {
		t.Fatal(err)
	}
	got := BytesFloat64(a)
	want := []float64{3, -6, -50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prod = %v", got)
		}
	}
	c := Float64Bytes([]float64{1, 5})
	if err := OpMin.Apply(c, Float64Bytes([]float64{2, 4}), 2, Float64); err != nil {
		t.Fatal(err)
	}
	if g := BytesFloat64(c); g[0] != 1 || g[1] != 4 {
		t.Fatalf("min = %v", g)
	}
}

func TestOpsBitwiseAndLogical(t *testing.T) {
	a := Int32Bytes([]int32{0b1100, 1})
	if err := OpBAnd.Apply(a, Int32Bytes([]int32{0b1010, 0}), 2, Int32); err != nil {
		t.Fatal(err)
	}
	if g := BytesInt32(a); g[0] != 0b1000 || g[1] != 0 {
		t.Fatalf("band = %v", g)
	}
	b := Int32Bytes([]int32{0b1100})
	OpBOr.Apply(b, Int32Bytes([]int32{0b0011}), 1, Int32)
	if BytesInt32(b)[0] != 0b1111 {
		t.Fatal("bor")
	}
	x := Int64Bytes([]int64{1, 0, 7})
	OpLAnd.Apply(x, Int64Bytes([]int64{1, 1, 0}), 3, Int64)
	if g := BytesInt64(x); g[0] != 1 || g[1] != 0 || g[2] != 0 {
		t.Fatalf("land = %v", g)
	}
	y := Int64Bytes([]int64{0, 0})
	OpLOr.Apply(y, Int64Bytes([]int64{0, 3}), 2, Int64)
	if g := BytesInt64(y); g[0] != 0 || g[1] != 1 {
		t.Fatalf("lor = %v", g)
	}
}

func TestOpsRejectBadTypes(t *testing.T) {
	if err := OpSum.Apply(nil, nil, 0, Struct(4, nil)); err == nil {
		t.Fatal("sum on struct accepted")
	}
	if err := OpBAnd.Apply(nil, nil, 0, Float64); err == nil {
		t.Fatal("band on float accepted")
	}
}

func TestStatusCount(t *testing.T) {
	st := &Status{Bytes: 24}
	if st.Count(Float64) != 3 || st.Count(Int32) != 6 || st.Count(Byte) != 24 {
		t.Fatal("Count wrong")
	}
}
