package mpi_test

// Tests of the MPI_Init autotuner: the timed sweep must be deterministic
// in the topology, agree across ranks, and actually install a crossover
// table that chooseAlgo consults.

import (
	"fmt"
	"reflect"
	"testing"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

// autotunedTables builds a topology with Autotune on, runs an empty rank
// program, and returns every rank's crossover-table snapshot.
func autotunedTables(t *testing.T, topo cluster.Topology) [][]mpi.TuneChoice {
	t.Helper()
	topo.Autotune = true
	sess, err := cluster.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(func(rank int, comm *mpi.Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	out := make([][]mpi.TuneChoice, len(sess.Ranks))
	for i, rk := range sess.Ranks {
		out[i] = rk.MPI.TuneSnapshot()
	}
	return out
}

// TestAutotuneDeterministic: the same topology always yields the same
// crossover table — virtual time has no noise, so two sweeps must agree
// bracket for bracket — and all ranks of one job install identical tables.
func TestAutotuneDeterministic(t *testing.T) {
	first := autotunedTables(t, twoClusterTopo(3, 3))
	second := autotunedTables(t, twoClusterTopo(3, 3))
	if len(first[0]) == 0 {
		t.Fatal("autotuner installed an empty table on a multi-cluster topology")
	}
	for r := 1; r < len(first); r++ {
		if !reflect.DeepEqual(first[r], first[0]) {
			t.Fatalf("rank %d table differs from rank 0:\n%v\nvs\n%v", r, first[r], first[0])
		}
	}
	if !reflect.DeepEqual(first[0], second[0]) {
		t.Fatalf("same topology produced different tables:\n%v\nvs\n%v", first[0], second[0])
	}
}

// TestAutotuneSingleClusterStillTunes: on a uniform fabric the only
// choice is tree-vs-ring Allreduce; the sweep must still run and produce
// a table covering it.
func TestAutotuneSingleClusterStillTunes(t *testing.T) {
	tables := autotunedTables(t, nNodeTopo(6, "sisci"))
	found := false
	for _, c := range tables[0] {
		if c.Op == "Allreduce" {
			found = true
		}
	}
	if !found {
		t.Fatalf("single-cluster sweep produced no Allreduce brackets: %v", tables[0])
	}
}

// TestAutotuneMeasuresClassSwitchPoints: on a heterogeneous topology the
// init sweep's per-device-class probes measure an eager/rendez-vous
// threshold for every represented class, every rank installs the same
// values, and the thresholds surface as SwitchPoint rows of the
// crossover-table snapshot.
func TestAutotuneMeasuresClassSwitchPoints(t *testing.T) {
	topo := twoClusterTopo(3, 3)
	topo.Autotune = true
	sess, err := cluster.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(func(rank int, comm *mpi.Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := sess.Ranks[0].MPI.ClassSwitchPoints()
	for _, class := range []string{"san", "wan"} {
		if want[class] <= 0 {
			t.Errorf("no measured threshold for class %q: %v", class, want)
		}
	}
	for _, rk := range sess.Ranks[1:] {
		if !reflect.DeepEqual(rk.MPI.ClassSwitchPoints(), want) {
			t.Fatalf("rank %d class thresholds %v differ from rank 0's %v",
				rk.Rank, rk.MPI.ClassSwitchPoints(), want)
		}
	}
	rows := 0
	for _, tc := range sess.Ranks[0].MPI.TuneSnapshot() {
		if tc.Op == "SwitchPoint" {
			rows++
			if want[tc.Algo] != tc.MaxBytes {
				t.Errorf("snapshot row %v does not match installed threshold %d", tc, want[tc.Algo])
			}
		}
	}
	if rows != len(want) {
		t.Errorf("snapshot has %d SwitchPoint rows, want %d", rows, len(want))
	}
}

// TestSwitchPointTuneRoundTrip: SwitchPoint rows survive the persistence
// path — LoadTuneTable installs them as per-class thresholds and
// TuneSnapshot exports them back byte-identically.
func TestSwitchPointTuneRoundTrip(t *testing.T) {
	table := []mpi.TuneChoice{
		{Op: "SwitchPoint", MaxBytes: 16 << 10, Algo: "san"},
		{Op: "SwitchPoint", MaxBytes: 64 << 10, Algo: "wan"},
	}
	p := mpi.NewProcess(nil, nil, 0, 1, nil, nil)
	if err := p.LoadTuneTable(table); err != nil {
		t.Fatal(err)
	}
	got := p.ClassSwitchPoints()
	if got["san"] != 16<<10 || got["wan"] != 64<<10 {
		t.Fatalf("ClassSwitchPoints = %v, want san=16K wan=64K", got)
	}
	snap := p.TuneSnapshot()
	if !reflect.DeepEqual(snap, table) {
		t.Fatalf("TuneSnapshot = %v, want the loaded table %v", snap, table)
	}
	p2 := mpi.NewProcess(nil, nil, 0, 1, nil, nil)
	if err := p2.LoadTuneTable(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p2.ClassSwitchPoints(), got) {
		t.Fatalf("reloaded thresholds %v differ from %v", p2.ClassSwitchPoints(), got)
	}
}

// TestValidateTuneChoicesRejectsBadSwitchRows: the persistence sanity
// check must reject SwitchPoint rows naming an unknown device class or a
// non-positive threshold, so a corrupted cache cannot poison sessions.
func TestValidateTuneChoicesRejectsBadSwitchRows(t *testing.T) {
	bad := [][]mpi.TuneChoice{
		{{Op: "SwitchPoint", MaxBytes: 8 << 10, Algo: "quantum"}},
		{{Op: "SwitchPoint", MaxBytes: 0, Algo: "san"}},
		{{Op: "SwitchPoint", MaxBytes: -1, Algo: "wan"}},
	}
	for _, table := range bad {
		if err := mpi.ValidateTuneChoices(table); err == nil {
			t.Errorf("ValidateTuneChoices(%v) = nil, want error", table)
		}
	}
	good := []mpi.TuneChoice{{Op: "SwitchPoint", MaxBytes: 8 << 10, Algo: "smp"}}
	if err := mpi.ValidateTuneChoices(good); err != nil {
		t.Errorf("ValidateTuneChoices(%v) = %v, want nil", good, err)
	}
}

// TestRelayWindowTuneRoundTrip: RelayWindow rows survive the persistence
// path — LoadTuneTable installs them as per-backbone relay windows and
// TuneSnapshot exports them back byte-identically, in network-name order.
func TestRelayWindowTuneRoundTrip(t *testing.T) {
	table := []mpi.TuneChoice{
		{Op: "RelayWindow", MaxBytes: 12, Algo: "gw01"},
		{Op: "RelayWindow", MaxBytes: 24, Algo: "wan"},
	}
	p := mpi.NewProcess(nil, nil, 0, 1, nil, nil)
	if err := p.LoadTuneTable(table); err != nil {
		t.Fatal(err)
	}
	got := p.RelayWindows()
	if got["gw01"] != 12 || got["wan"] != 24 || len(got) != 2 {
		t.Fatalf("RelayWindows = %v, want gw01=12 wan=24", got)
	}
	snap := p.TuneSnapshot()
	if !reflect.DeepEqual(snap, table) {
		t.Fatalf("TuneSnapshot = %v, want the loaded table %v", snap, table)
	}
	p2 := mpi.NewProcess(nil, nil, 0, 1, nil, nil)
	if err := p2.LoadTuneTable(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p2.RelayWindows(), got) {
		t.Fatalf("reloaded windows %v differ from %v", p2.RelayWindows(), got)
	}
	bad := [][]mpi.TuneChoice{
		{{Op: "RelayWindow", MaxBytes: 0, Algo: "wan"}},
		{{Op: "RelayWindow", MaxBytes: -3, Algo: "wan"}},
		{{Op: "RelayWindow", MaxBytes: 8, Algo: ""}},
	}
	for _, tbl := range bad {
		if err := mpi.ValidateTuneChoices(tbl); err == nil {
			t.Errorf("ValidateTuneChoices(%v) = nil, want error", tbl)
		}
	}
}

// TestAutotunedCollectivesStayCorrect: collectives dispatched through the
// measured table (CollAuto after Autotune) still compute correct results
// on a contended-backbone topology — the table changes selection, never
// semantics.
func TestAutotunedCollectivesStayCorrect(t *testing.T) {
	topo := twoClusterTopo(3, 2)
	// Cap the backbone so the sweep times real trunk contention.
	wan := netsim.FastEthernetTCP()
	wan.NetworkBandwidth = wan.Bandwidth
	for i := range topo.Networks {
		if topo.Networks[i].Name == "wan" {
			topo.Networks[i].Params = &wan
		}
	}
	topo.Autotune = true
	sess, err := cluster.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	const n, cnt = 5, 1000
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		in := make([]int64, cnt)
		for i := range in {
			in[i] = int64(rank*cnt + i)
		}
		out := make([]byte, 8*cnt)
		if err := comm.Allreduce(mpi.Int64Bytes(in), out, cnt, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		got := mpi.BytesInt64(out)
		for i := 0; i < cnt; i++ {
			want := int64(0)
			for r := 0; r < n; r++ {
				want += int64(r*cnt + i)
			}
			if got[i] != want {
				return fmt.Errorf("rank %d: allreduce[%d] = %d, want %d", rank, i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
