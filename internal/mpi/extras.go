package mpi

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/vtime"
)

// Now returns the current virtual time of this process's simulation —
// the reproduction's MPI_Wtime.
func (p *Process) Now() vtime.Time { return p.M.S.Now() }

// Ssend performs a synchronous-mode send (MPI_Ssend): it completes only
// after the receiver has matched the message. The devices implement it by
// forcing the rendez-vous transfer mode regardless of size.
func (c *Comm) Ssend(buf []byte, count int, dt Datatype, dest, tag int) error {
	if err := c.checkLive("Ssend"); err != nil {
		return err
	}
	if err := c.checkPeer("Ssend", dest); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: Ssend: negative tag %d", tag)
	}
	data := PackBuf(buf, count, dt)
	if !IsContiguous(dt) {
		c.p.M.Compute(c.p.memTime(len(data)))
	}
	dstWorld := c.group[dest]
	sr := &adi.SendReq{
		Env:  adi.Envelope{Src: c.p.rank, Tag: tag, Context: c.ctx, Len: len(data)},
		Dst:  dstWorld,
		Data: data,
		Sync: true,
		Done: vtime.NewEvent(c.p.M.S, "mpi.ssend"),
	}
	dev := c.p.route(dstWorld)
	if dev == nil {
		return fmt.Errorf("mpi: no device for destination world rank %d", dstWorld)
	}
	dev.Send(sr)
	sr.Done.Wait()
	return sr.Err
}

// WaitAny blocks until at least one request completes and returns its
// index (MPI_Waitany). Completed requests are finalized lazily via Wait.
// The wait is event-driven: the task subscribes to every request's
// completion event and sleeps until the first one fires, consuming no
// simulated CPU (the old implementation polled every microsecond).
func WaitAny(reqs ...*Request) (int, *Status, error) {
	if len(reqs) == 0 {
		return -1, nil, fmt.Errorf("mpi: WaitAny with no requests")
	}
	p := reqs[0].c.p
	scan := func() (int, *Status, error, bool) {
		for i, r := range reqs {
			done, st, err := r.Test()
			if done {
				return i, st, err, true
			}
		}
		return -1, nil, nil, false
	}
	if i, st, err, done := scan(); done {
		return i, st, err
	}
	// Subscribe exactly once per request — and unsubscribe on return, so
	// a drain loop over n requests stays linear instead of piling dead
	// closures onto the still-pending ones. A wakeup implies some
	// request's completion event fired, so the rescan always finds one.
	any := vtime.NewEvent(p.M.S, "mpi.waitany")
	cancels := make([]func(), 0, len(reqs))
	for _, r := range reqs {
		cancels = append(cancels, r.doneEvent().OnFire(any.Fire))
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	any.Wait()
	i, st, err, done := scan()
	if !done {
		return -1, nil, fmt.Errorf("mpi: WaitAny woke with no completed request")
	}
	return i, st, err
}

// Allgatherv gathers variable-sized contributions from every rank into
// every rank's recvBuf (MPI_Allgatherv). counts/displs are in elements;
// nil displs means dense rank order.
func (c *Comm) Allgatherv(sendBuf []byte, sendCount int, recvBuf []byte, counts, displs []int, dt Datatype) error {
	if err := c.checkLive("Allgatherv"); err != nil {
		return err
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("mpi: Allgatherv: %d counts for %d ranks", len(counts), c.Size())
	}
	if err := c.Gatherv(sendBuf, sendCount, recvBuf, counts, displs, dt, 0); err != nil {
		return err
	}
	total := 0
	if displs == nil {
		for _, n := range counts {
			total += n
		}
	} else {
		for i, n := range counts {
			if e := displs[i] + n; e > total {
				total = e
			}
		}
	}
	return c.Bcast(recvBuf, total, dt, 0)
}

// ReduceScatter combines count-per-rank blocks with op and scatters block
// r to rank r (MPI_Reduce_scatter with equal counts). Compiled through the
// schedule engine as a ring schedule — no rank-0 reduce bottleneck, and
// (n−1)/n of the vector per link instead of the old reduce-then-scatter
// body's full log(n) copies.
func (c *Comm) ReduceScatter(sendBuf, recvBuf []byte, countPerRank int, dt Datatype, op Op) error {
	req, err := c.IreduceScatter(sendBuf, recvBuf, countPerRank, dt, op)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Cart is a Cartesian process topology over a communicator
// (MPI_Cart_create and friends), the natural fit for the stencil
// workloads the paper's clusters ran.
type Cart struct {
	Comm     *Comm
	Dims     []int
	Periodic []bool
}

// CartCreate builds a row-major Cartesian topology. The product of dims
// must equal the communicator size.
func CartCreate(comm *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) != len(periodic) {
		return nil, fmt.Errorf("mpi: CartCreate: %d dims, %d periodic flags", len(dims), len(periodic))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate: non-positive dimension %d", d)
		}
		n *= d
	}
	if n != comm.Size() {
		return nil, fmt.Errorf("mpi: CartCreate: grid %d != communicator size %d", n, comm.Size())
	}
	return &Cart{
		Comm:     comm,
		Dims:     append([]int(nil), dims...),
		Periodic: append([]bool(nil), periodic...),
	}, nil
}

// Coords returns the Cartesian coordinates of a rank (MPI_Cart_coords).
func (ct *Cart) Coords(rank int) []int {
	coords := make([]int, len(ct.Dims))
	for i := len(ct.Dims) - 1; i >= 0; i-- {
		coords[i] = rank % ct.Dims[i]
		rank /= ct.Dims[i]
	}
	return coords
}

// RankOf returns the rank at the given coordinates, applying periodic
// wraparound; ok=false if a non-periodic coordinate falls off the grid
// (MPI_Cart_rank / MPI_PROC_NULL).
func (ct *Cart) RankOf(coords []int) (int, bool) {
	rank := 0
	for i, c := range coords {
		d := ct.Dims[i]
		if c < 0 || c >= d {
			if !ct.Periodic[i] {
				return -1, false
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank, true
}

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift); ok=false mirrors MPI_PROC_NULL.
func (ct *Cart) Shift(dim, disp int) (src, dst int, srcOK, dstOK bool) {
	me := ct.Coords(ct.Comm.Rank())
	up := append([]int(nil), me...)
	up[dim] += disp
	down := append([]int(nil), me...)
	down[dim] -= disp
	dst, dstOK = ct.RankOf(up)
	src, srcOK = ct.RankOf(down)
	return src, dst, srcOK, dstOK
}
