package mpi

// Two-level (hierarchy-aware) collective algorithms. Each operation runs
// an intra-cluster binomial phase on the fast fabric plus a single
// leader-level exchange over the slow backbone, so the number of
// inter-cluster messages is O(#clusters) instead of O(log n) (or O(n) for
// adversarial rank placements). See topology.go for the selection logic.

// binomialOver computes a binomial tree over an explicit rank list rooted
// at position rootPos, returning myPos's parent (-1 at the root) and
// children (largest stride first, matching the flat binomial fan-out).
func binomialOver(members []int, rootPos, myPos int) (parent int, children []int) {
	parent = -1
	n := len(members)
	rel := (myPos - rootPos + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent = members[(rel-mask+rootPos)%n]
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			children = append(children, members[(rel+mask+rootPos)%n])
		}
		mask >>= 1
	}
	return parent, children
}

// barrierHier: fan-in then fan-out over the two-level tree rooted at
// comm rank 0. The slow backbone carries exactly 2·(#clusters−1) empty
// messages, versus the dissemination algorithm's n·ceil(log2 n).
func (c *Comm) barrierHier() error {
	parent, children := c.topo().twoLevelTree(c.myRank, 0)
	// Fan-in: intra-cluster children first (they are cheap), backbone last.
	for i := len(children) - 1; i >= 0; i-- {
		if _, err := c.recvRaw(nil, children[i], tagHBarrier, c.collCtx()); err != nil {
			return err
		}
	}
	if parent >= 0 {
		if err := c.sendRaw(nil, parent, tagHBarrier, c.collCtx()); err != nil {
			return err
		}
		if _, err := c.recvRaw(nil, parent, tagHBarrier, c.collCtx()); err != nil {
			return err
		}
	}
	for _, ch := range children {
		if err := c.sendRaw(nil, ch, tagHBarrier, c.collCtx()); err != nil {
			return err
		}
	}
	return nil
}

// bcastHier broadcasts through the two-level tree, optionally pipelining
// the payload in segBytes segments (segBytes <= 0 disables segmentation).
// Segments ride the eager path, so a rank can forward segment k to its
// children while its parent is already injecting segment k+1: the slow
// backbone transfer overlaps the fast intra-cluster fan-out, which is the
// point of the paper's store-and-forward §6 scenario.
func (c *Comm) bcastHier(buf []byte, count int, dt Datatype, root, segBytes int) error {
	parent, children := c.topo().twoLevelTree(c.myRank, root)
	total := count * dt.Size()
	var data []byte
	if c.myRank == root {
		data = PackBuf(buf, count, dt)
	} else {
		data = make([]byte, total)
	}
	seg := segBytes
	if seg <= 0 || seg > total {
		seg = total
	}
	nseg := 1
	if seg > 0 {
		nseg = (total + seg - 1) / seg
	}
	for s := 0; s < nseg; s++ {
		lo := s * seg
		hi := lo + seg
		if hi > total {
			hi = total
		}
		chunk := data[lo:hi]
		if parent >= 0 {
			if _, err := c.recvRaw(chunk, parent, tagHBcast, c.collCtx()); err != nil {
				return err
			}
		}
		for _, ch := range children {
			if err := c.sendRaw(chunk, ch, tagHBcast, c.collCtx()); err != nil {
				return err
			}
		}
	}
	if c.myRank != root {
		c.p.M.Compute(c.p.memTime(total))
		UnpackBuf(buf, count, dt, data)
	}
	return nil
}

// reduceHier reduces along the reversed two-level tree: every rank folds
// its children's partials into its accumulator (intra-cluster children
// first, so the single backbone message carries a fully reduced cluster
// contribution) and forwards one message to its parent.
func (c *Comm) reduceHier(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	parent, children := c.topo().twoLevelTree(c.myRank, root)
	acc := make([]byte, count*dt.Size())
	copy(acc, PackBuf(sendBuf, count, dt))
	c.p.M.Compute(c.p.memTime(len(acc)))
	for i := len(children) - 1; i >= 0; i-- {
		part := make([]byte, len(acc))
		if _, err := c.recvRaw(part, children[i], tagHReduce, c.collCtx()); err != nil {
			return err
		}
		if err := op.Apply(acc, part, count, dt); err != nil {
			return err
		}
	}
	if parent >= 0 {
		return c.sendRaw(acc, parent, tagHReduce, c.collCtx())
	}
	c.p.M.Compute(c.p.memTime(len(acc)))
	UnpackBuf(recvBuf, count, dt, acc)
	return nil
}

// allreduceHier is reduce-to-0 plus broadcast-from-0, both two-level: the
// backbone carries one reduced vector per cluster inbound and one result
// vector per cluster outbound — once per slow link per direction.
func (c *Comm) allreduceHier(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.reduceHier(sendBuf, recvBuf, count, dt, op, 0); err != nil {
		return err
	}
	return c.bcastHier(recvBuf, count, dt, 0, c.bcastSegment(count*dt.Size()))
}

// gatherHier gathers via cluster-leader staging: members send their block
// to their cluster's operation leader (the root stands in for its own
// cluster), each leader concatenates its cluster's blocks in rank order
// and ships one bundle to the root over the backbone.
func (c *Comm) gatherHier(sendBuf, recvBuf []byte, count int, dt Datatype, root int) error {
	ct := c.topo()
	sz := count * dt.Size()
	ex := dt.Extent()

	rootCluster := ct.clusterOf[root]
	leader := ct.leaders[ct.myCluster]
	if ct.myCluster == rootCluster {
		leader = root
	}
	mine := PackBuf(sendBuf, count, dt)

	if c.myRank != leader {
		return c.sendRaw(mine, leader, tagHGather, c.collCtx())
	}

	// Leader: stage my cluster's blocks, in ascending comm-rank order.
	members := ct.clusters[ct.myCluster]
	bundle := make([]byte, len(members)*sz)
	for i, m := range members {
		slot := bundle[i*sz : (i+1)*sz]
		if m == c.myRank {
			c.p.M.Compute(c.p.memTime(sz))
			copy(slot, mine)
			continue
		}
		if _, err := c.recvRaw(slot, m, tagHGather, c.collCtx()); err != nil {
			return err
		}
	}
	if c.myRank != root {
		return c.sendRaw(bundle, root, tagHGatherB, c.collCtx())
	}

	// Root: place my own cluster's bundle, then one bundle per remote
	// cluster leader, scattered to each member's slot in recvBuf.
	place := func(di int, b []byte) {
		for i, m := range ct.clusters[di] {
			UnpackBuf(recvBuf[m*count*ex:], count, dt, b[i*sz:(i+1)*sz])
		}
	}
	place(ct.myCluster, bundle)
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		remoteLeader := ct.leaders[di]
		rb := make([]byte, len(ct.clusters[di])*sz)
		if _, err := c.recvRaw(rb, remoteLeader, tagHGatherB, c.collCtx()); err != nil {
			return err
		}
		c.p.M.Compute(c.p.memTime(len(rb)))
		place(di, rb)
	}
	return nil
}

// allgatherHier: intra-cluster gather to the leader, a direct bundle
// exchange among leaders (receives pre-posted, so concurrent rendez-vous
// sends cannot deadlock), then an intra-cluster broadcast of the fully
// assembled vector.
func (c *Comm) allgatherHier(sendBuf, recvBuf []byte, count int, dt Datatype) error {
	ct := c.topo()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()

	members := ct.clusters[ct.myCluster]
	leader := ct.leaders[ct.myCluster]
	myPos, leaderPos := 0, 0
	for i, m := range members {
		if m == c.myRank {
			myPos = i
		}
		if m == leader {
			leaderPos = i
		}
	}
	mine := PackBuf(sendBuf, count, dt)

	full := make([]byte, n*sz) // packed world vector, comm-rank order
	if c.myRank == leader {
		bundle := make([]byte, len(members)*sz)
		for i, m := range members {
			slot := bundle[i*sz : (i+1)*sz]
			if m == c.myRank {
				c.p.M.Compute(c.p.memTime(sz))
				copy(slot, mine)
				continue
			}
			if _, err := c.recvRaw(slot, m, tagHAllgather, c.collCtx()); err != nil {
				return err
			}
		}
		// Leader exchange: every leader ships its cluster bundle to every
		// other leader; L·(L−1) backbone messages total, one per directed
		// leader pair.
		bundles := make([][]byte, ct.nClusters)
		bundles[ct.myCluster] = bundle
		reqs := make([]*Request, 0, ct.nClusters-1)
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			bundles[di] = make([]byte, len(ct.clusters[di])*sz)
			req, err := c.irecvRaw(bundles[di], ct.leaders[di], tagHAllgather)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			if err := c.sendRaw(bundle, ct.leaders[di], tagHAllgather, c.collCtx()); err != nil {
				return err
			}
		}
		if err := WaitAll(reqs...); err != nil {
			return err
		}
		for di := 0; di < ct.nClusters; di++ {
			for i, m := range ct.clusters[di] {
				copy(full[m*sz:(m+1)*sz], bundles[di][i*sz:(i+1)*sz])
			}
		}
		c.p.M.Compute(c.p.memTime(n * sz))
	} else {
		if err := c.sendRaw(mine, leader, tagHAllgather, c.collCtx()); err != nil {
			return err
		}
	}

	// Intra-cluster broadcast of the assembled vector.
	parent, children := binomialOver(members, leaderPos, myPos)
	if parent >= 0 {
		if _, err := c.recvRaw(full, parent, tagHAllgather, c.collCtx()); err != nil {
			return err
		}
	}
	for _, ch := range children {
		if err := c.sendRaw(full, ch, tagHAllgather, c.collCtx()); err != nil {
			return err
		}
	}

	c.p.M.Compute(c.p.memTime(n * sz))
	for r := 0; r < n; r++ {
		UnpackBuf(recvBuf[r*count*ex:], count, dt, full[r*sz:(r+1)*sz])
	}
	return nil
}
