package mpi

// Two-level (hierarchy-aware) schedule compilers. Each operation runs an
// intra-cluster binomial phase on the fast fabric plus a single
// leader-level exchange over the slow backbone, so the number of
// inter-cluster messages is O(#clusters) instead of O(log n) (or O(n) for
// adversarial rank placements). See topology.go for the selection logic
// and schedule.go for the execution model these compile into.

// binomialOver computes a binomial tree over an explicit rank list rooted
// at position rootPos, returning myPos's parent (-1 at the root) and
// children (largest stride first, matching the flat binomial fan-out).
func binomialOver(members []int, rootPos, myPos int) (parent int, children []int) {
	parent = -1
	n := len(members)
	rel := (myPos - rootPos + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent = members[(rel-mask+rootPos)%n]
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			children = append(children, members[(rel+mask+rootPos)%n])
		}
		mask >>= 1
	}
	return parent, children
}

// compileBarrierHier: fan-in then fan-out over the two-level tree rooted
// at comm rank 0. The slow backbone carries exactly 2·(#clusters−1) empty
// messages, versus the dissemination algorithm's n·ceil(log2 n).
func (c *Comm) compileBarrierHier() *schedule {
	parent, children := c.topo().twoLevelTree(c.myRank, 0)
	b := newSched("barrier.h")
	for i := len(children) - 1; i >= 0; i-- {
		b.recv(children[i], nil)
	}
	b.endRound()
	if parent >= 0 {
		b.send(parent, nil)
		b.endRound()
		b.recv(parent, nil)
		b.endRound()
	}
	for _, ch := range children {
		b.send(ch, nil)
	}
	return b.build(nil)
}

// bcastHierRounds appends the two-level tree broadcast of data rooted at
// root, optionally pipelining in segBytes segments (segBytes <= 0
// disables segmentation). Segments ride the eager path, so a rank can
// forward segment k to its children while its parent is already injecting
// segment k+1: the slow backbone transfer overlaps the fast intra-cluster
// fan-out, the paper's store-and-forward §6 scenario.
func (c *Comm) bcastHierRounds(b *schedBuilder, data []byte, root, segBytes int) {
	parent, children := c.topo().twoLevelTree(c.myRank, root)
	total := len(data)
	seg := segBytes
	if seg <= 0 || seg > total {
		seg = total
	}
	nseg := 1
	if seg > 0 {
		nseg = (total + seg - 1) / seg
	}
	for s := 0; s < nseg; s++ {
		lo := s * seg
		hi := lo + seg
		if hi > total {
			hi = total
		}
		chunk := data[lo:hi]
		if parent >= 0 {
			b.recv(parent, chunk)
			b.endRound()
		}
		for _, ch := range children {
			b.send(ch, chunk)
		}
		b.endRound()
	}
}

// compileBcastHier broadcasts through the two-level tree.
func (c *Comm) compileBcastHier(buf []byte, count int, dt Datatype, root, segBytes int) *schedule {
	var data []byte
	if c.myRank == root {
		data = PackBuf(buf, count, dt)
	} else {
		data = make([]byte, count*dt.Size())
	}
	b := newSched("bcast.h")
	c.bcastHierRounds(b, data, root, segBytes)
	return b.build(func() {
		if c.myRank != root {
			c.p.M.Compute(c.p.memTime(len(data)))
			UnpackBuf(buf, count, dt, data)
		}
	})
}

// reduceHierRounds appends the reduction along the reversed two-level
// tree: every rank folds its children's partials into its accumulator
// (intra-cluster children first, so the single backbone message carries a
// fully reduced cluster contribution) and forwards one message to its
// parent. Returns the accumulator, complete at the root.
func (c *Comm) reduceHierRounds(b *schedBuilder, sendBuf []byte, count int, dt Datatype, op Op, root int) []byte {
	parent, children := c.topo().twoLevelTree(c.myRank, root)
	acc := make([]byte, count*dt.Size())
	b.copyStep(acc, PackBuf(sendBuf, count, dt))
	b.endRound()
	for i := len(children) - 1; i >= 0; i-- {
		part := make([]byte, len(acc))
		b.recv(children[i], part)
		b.reduce(acc, part, count, dt, op)
	}
	b.endRound()
	if parent >= 0 {
		b.send(parent, acc)
		b.endRound()
	}
	return acc
}

// compileReduceHier: two-level reduction to root.
func (c *Comm) compileReduceHier(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) *schedule {
	b := newSched("reduce.h")
	acc := c.reduceHierRounds(b, sendBuf, count, dt, op, root)
	return b.build(func() {
		if c.myRank == root {
			c.p.M.Compute(c.p.memTime(len(acc)))
			UnpackBuf(recvBuf, count, dt, acc)
		}
	})
}

// compileAllreduceHier chains reduce-to-0 with broadcast-from-0, both
// two-level: the backbone carries one reduced vector per cluster inbound
// and one result vector per cluster outbound — once per slow link per
// direction.
func (c *Comm) compileAllreduceHier(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) *schedule {
	b := newSched("allreduce.h")
	acc := c.reduceHierRounds(b, sendBuf, count, dt, op, 0)
	c.bcastHierRounds(b, acc, 0, c.bcastSegment(len(acc)))
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	})
}

// compileGatherHier gathers via cluster-leader staging: members send
// their block to their cluster's operation leader (the root stands in for
// its own cluster), each leader concatenates its cluster's blocks in rank
// order and ships one bundle to the root over the backbone.
func (c *Comm) compileGatherHier(sendBuf, recvBuf []byte, count int, dt Datatype, root int) *schedule {
	ct := c.topo()
	sz := count * dt.Size()
	ex := dt.Extent()

	rootCluster := ct.clusterOf[root]
	leader := ct.leaders[ct.myCluster]
	if ct.myCluster == rootCluster {
		leader = root
	}
	mine := PackBuf(sendBuf, count, dt)
	b := newSched("gather.h")

	if c.myRank != leader {
		b.send(leader, mine)
		return b.build(nil)
	}

	// Leader: stage my cluster's blocks, in ascending comm-rank order.
	members := ct.clusters[ct.myCluster]
	bundle := make([]byte, len(members)*sz)
	for i, m := range members {
		slot := bundle[i*sz : (i+1)*sz]
		if m == c.myRank {
			b.copyStep(slot, mine)
			continue
		}
		b.recv(m, slot)
	}
	b.endRound()
	if c.myRank != root {
		b.send(root, bundle)
		return b.build(nil)
	}

	// Root: one bundle per remote cluster leader, scattered to each
	// member's slot in recvBuf at completion.
	remote := make([][]byte, ct.nClusters)
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		remote[di] = make([]byte, len(ct.clusters[di])*sz)
		b.recv(ct.leaders[di], remote[di])
	}
	b.endRound()
	return b.build(func() {
		place := func(di int, bun []byte) {
			for i, m := range ct.clusters[di] {
				UnpackBuf(recvBuf[m*count*ex:], count, dt, bun[i*sz:(i+1)*sz])
			}
		}
		place(ct.myCluster, bundle)
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			c.p.M.Compute(c.p.memTime(len(remote[di])))
			place(di, remote[di])
		}
	})
}

// compileAllgatherHier: intra-cluster gather to the leader, a direct
// bundle exchange among leaders (receives pre-posted, so concurrent
// rendez-vous sends cannot deadlock), then an intra-cluster broadcast of
// the fully assembled vector.
func (c *Comm) compileAllgatherHier(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	ct := c.topo()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()

	members, myPos, leaderPos := c.clusterPos()
	leader := ct.leaders[ct.myCluster]
	mine := PackBuf(sendBuf, count, dt)
	full := make([]byte, n*sz) // packed world vector, comm-rank order
	b := newSched("allgather.h")

	if c.myRank == leader {
		bundle := make([]byte, len(members)*sz)
		for i, m := range members {
			slot := bundle[i*sz : (i+1)*sz]
			if m == c.myRank {
				b.copyStep(slot, mine)
				continue
			}
			b.recv(m, slot)
		}
		b.endRound()
		// Leader exchange: every leader ships its cluster bundle to every
		// other leader; L·(L−1) backbone messages total, one per directed
		// leader pair.
		bundles := make([][]byte, ct.nClusters)
		bundles[ct.myCluster] = bundle
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			bundles[di] = make([]byte, len(ct.clusters[di])*sz)
			b.recv(ct.leaders[di], bundles[di])
		}
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			b.send(ct.leaders[di], bundle)
		}
		b.endRound()
		// Assemble the world vector from the cluster bundles.
		for di := 0; di < ct.nClusters; di++ {
			for i, m := range ct.clusters[di] {
				b.copyStep(full[m*sz:(m+1)*sz], bundles[di][i*sz:(i+1)*sz])
			}
		}
		b.endRound()
	} else {
		b.send(leader, mine)
		b.endRound()
	}

	// Intra-cluster broadcast of the assembled vector.
	parent, children := binomialOver(members, leaderPos, myPos)
	if parent >= 0 {
		b.recv(parent, full)
		b.endRound()
	}
	for _, ch := range children {
		b.send(ch, full)
	}
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(n * sz))
		for r := 0; r < n; r++ {
			UnpackBuf(recvBuf[r*count*ex:], count, dt, full[r*sz:(r+1)*sz])
		}
	})
}

// ---- Two-level ring compilers ----
//
// The bandwidth-optimal rings from collectives.go run *inside* each
// cluster, where every hop rides the fast fabric; the slow backbone still
// carries exactly one leader-level exchange. A flat ring on a
// cluster-of-clusters would be the worst of both worlds: with interleaved
// rank placement every ring hop crosses the backbone, so the ring's 2(n−1)
// rounds each pay the slow link.

// clusterPos returns the member list of this rank's cluster plus the
// positions of this rank and the cluster leader within it.
func (c *Comm) clusterPos() (members []int, myPos, leaderPos int) {
	ct := c.topo()
	members = ct.clusters[ct.myCluster]
	leader := ct.leaders[ct.myCluster]
	for i, m := range members {
		if m == c.myRank {
			myPos = i
		}
		if m == leader {
			leaderPos = i
		}
	}
	return members, myPos, leaderPos
}

// compileAllreduceRingHier is the two-level ring allreduce: intra-cluster
// ring reduce-scatter, chunk gather to the cluster leader, a single
// binomial leader exchange over the backbone (reduce to cluster 0's
// leader, result broadcast back to the leaders), then a chunk scatter and
// intra-cluster ring allgather. Each fast link carries ~2·(m−1)/m of the
// vector instead of the binomial phases' log(m) full copies; the backbone
// still sees one vector per cluster per direction.
func (c *Comm) compileAllreduceRingHier(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) *schedule {
	ct := c.topo()
	members, myPos, _ := c.clusterPos()
	m := len(members)
	leader := ct.leaders[ct.myCluster]
	es := dt.Size()
	acc := make([]byte, count*es)
	bounds := splitBounds(count, m)
	chunk := func(i int) []byte { return acc[bounds[i]*es : bounds[i+1]*es] }

	b := newSched("allreduce.ringh")
	b.copyStep(acc, PackBuf(sendBuf, count, dt))
	b.endRound()

	// Phase A: intra-cluster ring reduce-scatter — member at position i
	// ends up holding the cluster-reduced chunk i.
	c.ringRSRounds(b, members, myPos, acc, bounds, dt, op)

	// Phase B: chunks converge on the leader, which reassembles the
	// cluster-reduced full vector in acc.
	if c.myRank != leader {
		b.send(leader, chunk(myPos))
		b.endRound()
	} else {
		for i, mr := range members {
			if mr == c.myRank {
				continue
			}
			b.recv(mr, chunk(i))
		}
		b.endRound()
		// Phase C: the single backbone exchange — binomial reduce over the
		// cluster leaders to cluster 0's leader, result broadcast back down
		// the same leader tree.
		parent, children := binomialOver(ct.leaders, 0, ct.myCluster)
		for i := len(children) - 1; i >= 0; i-- {
			part := make([]byte, len(acc))
			b.recv(children[i], part)
			b.reduce(acc, part, count, dt, op)
		}
		b.endRound()
		if parent >= 0 {
			b.send(parent, acc)
			b.endRound()
			b.recv(parent, acc)
			b.endRound()
		}
		for _, ch := range children {
			b.send(ch, acc)
		}
		b.endRound()
	}

	// Phase D: scatter the result chunks back and circulate them with the
	// intra-cluster ring allgather.
	if c.myRank == leader {
		for i, mr := range members {
			if mr == c.myRank {
				continue
			}
			b.send(mr, chunk(i))
		}
		b.endRound()
	} else {
		b.recv(leader, chunk(myPos))
		b.endRound()
	}
	c.ringAGRounds(b, members, myPos, acc, bounds, es)
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	})
}

// compileReduceScatterRingHier is the two-level ring reduce-scatter:
// intra-cluster ring reduce-scatter of the full vector (in m near-equal
// chunks), chunk gather to the leader, then a leader pairwise bundle
// exchange in which cluster X ships cluster Y exactly the blocks Y's
// members will keep — |Y|·blockSize bytes per directed leader pair instead
// of the full vector — and finally each leader scatters the globally
// reduced block to its member. Bundle layout from X to Y: Y's members'
// blocks in ascending member order.
func (c *Comm) compileReduceScatterRingHier(sendBuf, recvBuf []byte, countPerRank int, dt Datatype, op Op) *schedule {
	ct := c.topo()
	n := c.Size()
	members, myPos, _ := c.clusterPos()
	m := len(members)
	leader := ct.leaders[ct.myCluster]
	es := dt.Size()
	sz := countPerRank * es
	total := countPerRank * n
	acc := make([]byte, total*es)
	bounds := splitBounds(total, m)
	chunk := func(i int) []byte { return acc[bounds[i]*es : bounds[i+1]*es] }
	block := func(r int) []byte { return acc[r*sz : (r+1)*sz] }

	b := newSched("redscat.ringh")
	b.copyStep(acc, PackBuf(sendBuf, total, dt))
	b.endRound()

	// Phase A: intra-cluster ring reduce-scatter over m chunks.
	c.ringRSRounds(b, members, myPos, acc, bounds, dt, op)

	if c.myRank != leader {
		// Phase B: my cluster-reduced chunk to the leader; Phase D: my
		// globally reduced block comes back.
		b.send(leader, chunk(myPos))
		b.endRound()
		b.recv(leader, block(c.myRank))
		b.endRound()
		return b.build(func() {
			c.p.M.Compute(c.p.memTime(sz))
			UnpackBuf(recvBuf, countPerRank, dt, block(c.myRank))
		})
	}

	// Leader: reassemble the cluster-reduced full vector.
	for i, mr := range members {
		if mr == c.myRank {
			continue
		}
		b.recv(mr, chunk(i))
	}
	b.endRound()

	// Phase C: stage one outbound bundle per remote cluster (that
	// cluster's members' blocks), then exchange among leaders with the
	// receives pre-posted, folding each arriving bundle into my members'
	// blocks.
	out := make([][]byte, ct.nClusters)
	in := make([][]byte, ct.nClusters)
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		dm := ct.clusters[di]
		out[di] = make([]byte, len(dm)*sz)
		for j, dr := range dm {
			b.copyStep(out[di][j*sz:(j+1)*sz], block(dr))
		}
	}
	b.endRound()
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		in[di] = make([]byte, len(members)*sz)
		b.recv(ct.leaders[di], in[di])
	}
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		b.send(ct.leaders[di], out[di])
	}
	for di := 0; di < ct.nClusters; di++ {
		if di == ct.myCluster {
			continue
		}
		for j, mr := range members {
			b.reduce(block(mr), in[di][j*sz:(j+1)*sz], countPerRank, dt, op)
		}
	}
	b.endRound()

	// Phase D: ship each member its globally reduced block.
	for _, mr := range members {
		if mr == c.myRank {
			continue
		}
		b.send(mr, block(mr))
	}
	b.endRound()
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(sz))
		UnpackBuf(recvBuf, countPerRank, dt, block(c.myRank))
	})
}

// compileAlltoallHier is the two-level all-to-all closing the last
// ROADMAP heavy collective: members ship their whole send matrix to the
// cluster leader, leaders pairwise-exchange per-cluster bundles (one
// message per directed leader pair, so each backbone link is crossed
// O(clusters) times instead of the pairwise rotation's O(n)), and each
// leader scatters the reassembled per-member receive vectors back.
//
// Bundle layout from cluster S to cluster D: blocks ordered by (source
// member index in S ascending, destination member index in D ascending).
func (c *Comm) compileAlltoallHier(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	ct := c.topo()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	members := ct.clusters[ct.myCluster]
	leader := ct.leaders[ct.myCluster]
	mine := PackBuf(sendBuf, n*count, dt) // my full send matrix, dense
	b := newSched("alltoall.h")

	var myRecv []byte // my dense receive vector, source-rank order
	if c.myRank != leader {
		myRecv = make([]byte, n*sz)
		b.send(leader, mine)
		b.endRound()
		b.recv(leader, myRecv)
		b.endRound()
	} else {
		// Phase 1: gather every member's send matrix.
		mats := make([][]byte, len(members))
		for i, m := range members {
			if m == c.myRank {
				mats[i] = mine
				continue
			}
			mats[i] = make([]byte, n*sz)
			b.recv(m, mats[i])
		}
		b.endRound()
		// Phase 2: stage outbound bundles, then exchange among leaders
		// (receives pre-posted alongside the sends, as in allgather).
		out := make([][]byte, ct.nClusters)
		in := make([][]byte, ct.nClusters)
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			dm := ct.clusters[di]
			out[di] = make([]byte, len(members)*len(dm)*sz)
			k := 0
			for i := range members {
				for _, dst := range dm {
					b.copyStep(out[di][k*sz:(k+1)*sz], mats[i][dst*sz:(dst+1)*sz])
					k++
				}
			}
		}
		b.endRound()
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			in[di] = make([]byte, len(ct.clusters[di])*len(members)*sz)
			b.recv(ct.leaders[di], in[di])
		}
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			b.send(ct.leaders[di], out[di])
		}
		b.endRound()
		// Phase 3: assemble each member's receive vector and scatter.
		vec := make([][]byte, len(members))
		for j := range members {
			vec[j] = make([]byte, n*sz)
			for i, src := range members {
				b.copyStep(vec[j][src*sz:(src+1)*sz], mats[i][members[j]*sz:(members[j]+1)*sz])
			}
			for di := 0; di < ct.nClusters; di++ {
				if di == ct.myCluster {
					continue
				}
				for i, src := range ct.clusters[di] {
					blk := in[di][(i*len(members)+j)*sz : (i*len(members)+j+1)*sz]
					b.copyStep(vec[j][src*sz:(src+1)*sz], blk)
				}
			}
		}
		b.endRound()
		for j, m := range members {
			if m == c.myRank {
				myRecv = vec[j]
				continue
			}
			b.send(m, vec[j])
		}
		b.endRound()
	}
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(n * sz))
		for r := 0; r < n; r++ {
			UnpackBuf(recvBuf[r*count*ex:], count, dt, myRecv[r*sz:(r+1)*sz])
		}
	})
}

// compileAlltoallHierSeg is the pipelined variant of the two-level
// all-to-all: the leader bundle exchange is cut into eager-path segments
// (block granularity, each at most segBytes) and the staging copies are
// interleaved with the segment injections, so assembling segment k+1
// overlaps segment k's flight across the backbone — the ROADMAP's
// "intra-cluster staging overlaps the backbone transfer", reusing the
// relay-pipelining idea at the schedule level. Because the segments ride
// the eager path they also complete locally, eliminating the per-bundle
// rendez-vous handshakes the whole-bundle exchange pays over the slow
// link; the inbound segments buffer in the unexpected stash while this
// leader is still staging, and one late round collects them all.
//
// Callers must guarantee one block fits a segment (count*dt.Size() <=
// segBytes), which keeps every segment at or under the eager switch
// point — Ialltoall falls back to the whole-bundle form otherwise.
func (c *Comm) compileAlltoallHierSeg(sendBuf, recvBuf []byte, count int, dt Datatype, segBytes int) *schedule {
	ct := c.topo()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	members := ct.clusters[ct.myCluster]
	leader := ct.leaders[ct.myCluster]
	mine := PackBuf(sendBuf, n*count, dt)
	b := newSched("alltoall.hseg")

	var myRecv []byte
	if c.myRank != leader {
		// Members are untouched by the segmentation: whole matrix up,
		// whole receive vector back.
		myRecv = make([]byte, n*sz)
		b.send(leader, mine)
		b.endRound()
		b.recv(leader, myRecv)
		b.endRound()
	} else {
		bps := 1
		if sz > 0 {
			bps = segBytes / sz
			if bps < 1 {
				bps = 1
			}
		}
		// Phase 1: gather every member's send matrix.
		mats := make([][]byte, len(members))
		for i, m := range members {
			if m == c.myRank {
				mats[i] = mine
				continue
			}
			mats[i] = make([]byte, n*sz)
			b.recv(m, mats[i])
		}
		b.endRound()
		// Phase 2: stage and inject the outbound bundles segment by
		// segment. Bundle to cluster D holds len(members)*len(D) blocks
		// ordered (source member asc, destination member asc); segment s
		// covers blocks [s*bps, (s+1)*bps).
		out := make([][]byte, ct.nClusters)
		nSeg := 0
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			nb := len(members) * len(ct.clusters[di])
			out[di] = make([]byte, nb*sz)
			if s := (nb + bps - 1) / bps; s > nSeg {
				nSeg = s
			}
		}
		blockSrc := func(di, k int) []byte {
			dm := ct.clusters[di]
			i, j := k/len(dm), k%len(dm)
			dst := dm[j]
			return mats[i][dst*sz : (dst+1)*sz]
		}
		for s := 0; s < nSeg; s++ {
			for di := 0; di < ct.nClusters; di++ {
				if di == ct.myCluster {
					continue
				}
				nb := len(out[di]) / sz
				lo := s * bps
				if lo >= nb {
					continue
				}
				hi := lo + bps
				if hi > nb {
					hi = nb
				}
				for k := lo; k < hi; k++ {
					b.copyStep(out[di][k*sz:(k+1)*sz], blockSrc(di, k))
				}
			}
			b.endRound()
			for di := 0; di < ct.nClusters; di++ {
				if di == ct.myCluster {
					continue
				}
				nb := len(out[di]) / sz
				lo := s * bps
				if lo >= nb {
					continue
				}
				hi := lo + bps
				if hi > nb {
					hi = nb
				}
				b.send(ct.leaders[di], out[di][lo*sz:hi*sz])
			}
			b.endRound()
		}
		// Collect every inbound segment (mirroring each sender's slicing
		// of its own bundle; FIFO matching per source pairs them in
		// order). Most have already landed in the unexpected stash.
		in := make([][]byte, ct.nClusters)
		for di := 0; di < ct.nClusters; di++ {
			if di == ct.myCluster {
				continue
			}
			nb := len(ct.clusters[di]) * len(members)
			in[di] = make([]byte, nb*sz)
			for lo := 0; lo < nb; lo += bps {
				hi := lo + bps
				if hi > nb {
					hi = nb
				}
				b.recv(ct.leaders[di], in[di][lo*sz:hi*sz])
			}
		}
		b.endRound()
		// Phase 3: assemble each member's receive vector and scatter —
		// identical to the whole-bundle form.
		vec := make([][]byte, len(members))
		for j := range members {
			vec[j] = make([]byte, n*sz)
			for i, src := range members {
				b.copyStep(vec[j][src*sz:(src+1)*sz], mats[i][members[j]*sz:(members[j]+1)*sz])
			}
			for di := 0; di < ct.nClusters; di++ {
				if di == ct.myCluster {
					continue
				}
				for i, src := range ct.clusters[di] {
					blk := in[di][(i*len(members)+j)*sz : (i*len(members)+j+1)*sz]
					b.copyStep(vec[j][src*sz:(src+1)*sz], blk)
				}
			}
		}
		b.endRound()
		for j, m := range members {
			if m == c.myRank {
				myRecv = vec[j]
				continue
			}
			b.send(m, vec[j])
		}
		b.endRound()
	}
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(n * sz))
		for r := 0; r < n; r++ {
			UnpackBuf(recvBuf[r*count*ex:], count, dt, myRecv[r*sz:(r+1)*sz])
		}
	})
}
