// Collective schedules: the intermediate representation every collective
// algorithm (flat or hierarchical) compiles into, and the executor that
// the per-communicator progress engine (nbc.go) drives.
//
// A schedule is a DAG of rounds linearized in dependency order. Each round
// holds steps of four kinds — send, recv, local reduce, local copy — with
// the invariant that a round's transfers are independent of each other:
// the executor pre-posts every receive of the round, streams out the
// sends, waits for the receives, then runs the round's local steps in
// listed order. Data dependencies between rounds are expressed purely
// through shared staging buffers: a send step in round k+1 that names a
// buffer filled by a receive in round k automatically forwards the
// received bytes, which is how store-and-forward trees and pipelined
// segments are written as plain data.
//
// Compiling an algorithm therefore fixes, at submit time, every message
// (peer, payload, order) and every CPU charge the operation will incur;
// executing it needs no algorithm-specific code at all. This is the
// libNBC/MPI-3 nonblocking-collectives design: new algorithms (two-level
// Alltoall, ring Allreduce, autotuner sweeps) are new compilers producing
// the same IR, not new execution paths.
package mpi

import (
	"fmt"
	"strings"

	"mpichmad/internal/adi"
	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// stepKind discriminates schedule steps.
type stepKind int

const (
	stepSend   stepKind = iota // transmit buf to peer
	stepRecv                   // land a message from peer into buf
	stepReduce                 // dst = op(dst, src), count elements of dt
	stepCopy                   // dst = src, charged as a local memcpy
)

// step is one schedule operation. Transfers use peer (comm rank) and buf;
// local steps use dst/src (reduce additionally count/dt/op).
type step struct {
	kind stepKind
	peer int
	buf  []byte

	dst, src []byte
	count    int
	dt       Datatype
	op       Op
}

// round is a set of steps whose transfers may be in flight concurrently.
// Multi-leader compilers annotate rounds with the shard lane they ride:
// leader1 is 1 + the co-leader (shard) index — zero means untagged — and
// gw names the gateway network that lane crosses, so trace spans show the
// parallel gateway lanes side by side.
type round struct {
	steps   []step
	leader1 int16
	gw      string
}

// schedule is a compiled collective operation.
type schedule struct {
	name   string
	rounds []round
	// fin runs after the last round: unpacking staging into the user's
	// receive buffer plus the associated CPU charge. May be nil.
	fin func()
}

// schedBuilder accumulates rounds. The zero value (via newSched) starts
// with an open empty round; endRound closes it and opens the next.
type schedBuilder struct {
	sch *schedule
	cur round
}

func newSched(name string) *schedBuilder {
	return &schedBuilder{sch: &schedule{name: name}}
}

// endRound seals the open round (dropped when empty) and opens a new one.
func (b *schedBuilder) endRound() {
	if len(b.cur.steps) > 0 {
		b.sch.rounds = append(b.sch.rounds, b.cur)
		b.cur = round{}
	}
}

func (b *schedBuilder) send(to int, buf []byte) {
	b.cur.steps = append(b.cur.steps, step{kind: stepSend, peer: to, buf: buf})
}

func (b *schedBuilder) recv(from int, buf []byte) {
	b.cur.steps = append(b.cur.steps, step{kind: stepRecv, peer: from, buf: buf})
}

func (b *schedBuilder) reduce(dst, src []byte, count int, dt Datatype, op Op) {
	b.cur.steps = append(b.cur.steps, step{kind: stepReduce, dst: dst, src: src, count: count, dt: dt, op: op})
}

func (b *schedBuilder) copyStep(dst, src []byte) {
	b.cur.steps = append(b.cur.steps, step{kind: stepCopy, dst: dst, src: src})
}

// tagRound marks the open round with the co-leader (shard) index and the
// gateway network its transfers ride (multi-leader trace annotation).
func (b *schedBuilder) tagRound(leaderIdx int, gw string) {
	b.cur.leader1 = int16(leaderIdx + 1)
	b.cur.gw = gw
}

// build seals the schedule with its completion closure.
func (b *schedBuilder) build(fin func()) *schedule {
	b.endRound()
	b.sch.fin = fin
	return b.sch
}

// local reports whether the schedule moves no bytes over the network
// (size-1 communicators, self-rooted trivial cases); such schedules run
// inline at submit instead of through the progress engine.
func (sch *schedule) local() bool {
	for _, rd := range sch.rounds {
		for _, st := range rd.steps {
			if st.kind == stepSend || st.kind == stepRecv {
				return false
			}
		}
	}
	return true
}

// execSchedule runs a compiled schedule to completion on the calling
// (engine) thread. All messages travel on the communicator's collective
// context under the schedule's unique tag; FIFO matching per (source, tag)
// pairs same-peer transfers of different rounds correctly because both
// sides order them identically.
//
// Receives are pre-posted with an adi completion hook counting down to a
// per-round event, so a round with many receives blocks exactly once
// however the completions interleave with the round's outbound sends.
func (c *Comm) execSchedule(sch *schedule, tag int) error {
	tr := c.p.tracer
	var op0 vtime.Time
	if tr != nil {
		op0 = c.p.M.S.Now()
	}
	err := c.execRounds(sch, tag, tr)
	if tr != nil {
		tr.Span(c.p.traceTrack, trace.KSched, "sched."+sch.name, op0, trace.Args{
			Seq: uint32(tag), Val: int64(len(sch.rounds)),
		})
	}
	return err
}

func (c *Comm) execRounds(sch *schedule, tag int, tr *trace.Tracer) error {
	for ri := range sch.rounds {
		rd := &sch.rounds[ri]
		var rd0 vtime.Time
		if tr != nil {
			rd0 = c.p.M.S.Now()
		}

		nRecv := 0
		for _, st := range rd.steps {
			if st.kind == stepRecv {
				nRecv++
			}
		}
		var recvsDone *vtime.Event
		var rrs []*adi.RecvReq
		if nRecv > 0 {
			recvsDone = vtime.NewEvent(c.p.M.S, "mpi.sched."+sch.name)
			pending := nRecv
			for _, st := range rd.steps {
				if st.kind != stepRecv {
					continue
				}
				rr := &adi.RecvReq{
					Src: c.group[st.peer], Tag: tag, Context: c.collCtx(),
					Buf:  st.buf,
					Done: vtime.NewEvent(c.p.M.S, "mpi.sched.recv"),
					OnComplete: func() {
						pending--
						if pending == 0 {
							recvsDone.Fire()
						}
					},
				}
				c.p.Eng.PostRecv(rr)
				rrs = append(rrs, rr)
			}
		}

		for _, st := range rd.steps {
			if st.kind != stepSend {
				continue
			}
			if err := c.sendRaw(st.buf, st.peer, tag, c.collCtx()); err != nil {
				return err
			}
		}

		if recvsDone != nil {
			recvsDone.Wait()
			for _, rr := range rrs {
				if rr.Err != nil {
					return rr.Err
				}
			}
		}

		for _, st := range rd.steps {
			switch st.kind {
			case stepReduce:
				if err := st.op.Apply(st.dst, st.src, st.count, st.dt); err != nil {
					return err
				}
			case stepCopy:
				c.p.M.Compute(c.p.memTime(len(st.src)))
				copy(st.dst, st.src)
			case stepSend, stepRecv:
				// Network steps were issued at round start; nothing to
				// apply locally.
			}
		}
		if tr != nil {
			tr.Span(c.p.traceTrack, trace.KSched, "sched.round", rd0, trace.Args{
				Seq: uint32(tag), Val: int64(ri),
				Bytes: roundBytes(rd), Class: roundPeers(c, rd),
				Leader: rd.leader1, GW: rd.gw,
			})
		}
	}
	if sch.fin != nil {
		sch.fin()
	}
	return nil
}

// roundBytes totals a round's outbound payload (trace annotation).
func roundBytes(rd *round) int64 {
	var n int64
	for _, st := range rd.steps {
		if st.kind == stepSend {
			n += int64(len(st.buf))
		}
	}
	return n
}

// roundPeers summarizes who a round talks to, in world ranks, for the
// round's trace span: "s5,r0" = one send to world rank 5, one receive
// from world rank 0 — the leaders and neighbours each round engages.
// Bounded at 6 entries; only built when tracing is on.
func roundPeers(c *Comm, rd *round) string {
	var parts []string
	extra := 0
	for _, st := range rd.steps {
		if st.kind != stepSend && st.kind != stepRecv {
			continue
		}
		if len(parts) >= 6 {
			extra++
			continue
		}
		dir := "s"
		if st.kind == stepRecv {
			dir = "r"
		}
		parts = append(parts, fmt.Sprintf("%s%d", dir, c.group[st.peer]))
	}
	if extra > 0 {
		parts = append(parts, fmt.Sprintf("+%d", extra))
	}
	return strings.Join(parts, ",")
}
