// Package mpi is the application-facing MPI layer of the reproduction:
// communicators, point-to-point messaging, datatypes, reduction ops and
// the collective operations, built on the adi matching engine and the
// simulated devices below.
//
// # The collective schedule model
//
// Since PR 2 every collective — blocking or nonblocking, flat or
// hierarchical — is *schedule-driven*. Calling a collective compiles the
// selected algorithm into a schedule (schedule.go): a list of rounds
// whose steps are plain data — send, recv, local reduce, local copy —
// with inter-round data flow expressed through shared staging buffers.
// The communicator's progress engine (nbc.go) executes submitted
// schedules in order on a dedicated cooperative thread, so transfers
// advance whenever the application thread blocks, computes or yields:
// the paper's decoupling of communication progress from the application,
// applied to collectives (the libNBC/MPI-3 design).
//
// Algorithm selection happens once, at compile time, through the tuning
// table in topology.go (operation kind × payload size × cluster shape →
// flat, two-level, two-level segmented, ring, or two-level ring). The
// flat compilers live in collectives.go, the two-level ones in hcoll.go;
// each algorithm has exactly one body, shared by the blocking and
// nonblocking entry points. Adding an algorithm means adding a compiler
// and a tuning-table row — the executor, request handling and progress
// rules are untouched.
//
// # Ring schedules
//
// Allreduce and ReduceScatter additionally compile to bandwidth-optimal
// ring schedules (ring reduce-scatter, optionally followed by a ring
// allgather): 2·(n−1) latency rounds, but only 2·(n−1)/n of the vector
// per link instead of the binomial tree's 2·log(n) full copies — the
// large-vector winner on any uniform fabric. On a cluster-of-clusters the
// flat ring is the *worst* choice (with interleaved placement every hop
// crosses the slow backbone), so the two-level ring forms run the rings
// inside each cluster around the same single leader exchange the tree
// forms use. Ring reductions apply op in member order around the ring and
// therefore assume a commutative op (all predefined ops are).
//
// # Routing and the gateway cost model
//
// On forwarded topologies (cluster.Topology.Forwarding, the paper's §6
// extension) rank pairs without a shared network communicate through
// multi-homed gateway nodes. Since PR 4 the paths come from a real
// routing subsystem (internal/route) instead of a hop-count BFS: every
// ordered pair gets the shortest-COST path under a model derived from
// netsim.Params — per-hop latency and overheads, size-dependent
// serialization at a reference payload, and a trunk-contention penalty
// on shared-bandwidth backbones. Three things in this package consume
// the result:
//
//   - Hierarchy.Leaders: the cluster session elects each cluster's
//     leader to minimize gateway traversals (ranks on gateway nodes win;
//     path cost breaks ties), and commTopo prefers that rank over the
//     lowest-comm-rank convention whenever it is in the communicator.
//     On a bridged 3-cluster topology this cuts the gateway hops of a
//     two-level Bcast by a third.
//   - Hierarchy.Inter: when leader exchanges are genuinely multi-hop,
//     the backbone link is recalibrated to the worst routed leader-pair
//     path (summed latency, bottleneck bandwidth and segment), so the
//     analytic thresholds and the broadcast segmentation rule reason
//     about the path a message actually takes.
//   - The devices: routes carry the path length and the bottleneck
//     pipeline segment, and ch_mad ships large multi-hop rendez-vous
//     bodies as independent per-segment messages, so a gateway re-emits
//     segment k while segment k+1 is still inbound (pipelined relay
//     instead of whole-body store-and-forward; 2.5-3.3x on balanced
//     3-gateway chains).
//
// The segmented two-level Alltoall applies the same idea inside a
// schedule: on contended backbones the leader bundle exchange is cut
// into eager segments with the staging copies interleaved between
// injections, trading the per-bundle rendez-vous handshakes for
// overlapped staging and transfer.
//
// # Routing at scale (1000+ ranks)
//
// Since the scale overhaul the planner no longer materializes all-pairs
// state. internal/route groups ranks into "blocs" — maximal sets with
// identical network signatures, interchangeable under a graph
// automorphism — and runs one quotient-graph Dijkstra per source bloc,
// lazily on first query, instead of N rank-level sweeps: on the scale
// machine (64 islands x 16 ranks = 1024 ranks behind one backbone) that
// is 128 blocs, and Plan.NextHop/Path/Cost resolve hierarchically with
// unchanged signatures and bit-identical results (pinned against the
// dense reference planner by a property test). Everything downstream is
// equally lazy: devices resolve rails through a per-destination resolver
// and cache them (a re-plan is an O(1) cache flush, not an O(N²)
// reinstall), link classes are memoized per bloc pair, leader election
// scores one candidate per bloc, and the autotuner keeps probing one
// representative pair per device class — so a session only ever pays for
// the pairs that actually communicate. The growth is machine-checked:
// BenchmarkScaleMachine samples the planner at 256 and 1024 ranks into
// BENCH_scale.json and cmd/benchcheck fails CI if the cost ratio
// approaches quadratic or the 1024-rank scale experiment exceeds its
// wall-clock ceiling.
//
// # Adaptive re-routing, striping, and admission control
//
// Since the multi-path refactor the route->relay->collective stack is a
// closed loop rather than a static plan:
//
//   - Multi-path planning: the planner computes up to K edge-disjoint
//     paths per pair (route.Options.MaxPaths; 2 by default on forwarded
//     topologies), and the cluster wiring installs them as rails on the
//     device. Large multi-hop rendez-vous bodies are striped across the
//     rails — segments are dealt to the rail with the earliest predicted
//     finish (pipeline fill + segments x bottleneck-hop cost, so a
//     one-bridge rail and a two-bridge detour split near-evenly once the
//     pipelines are full), tagged with their rail (header PathID) so
//     relaying gateways keep each stripe on the matching, non-backtracking
//     rail, and reassembled by offset at the receiver. On the bridged
//     triangle this roughly doubles forwarded bandwidth (>= 1.5x at
//     64 KiB, ~2x at 1 MiB — gated by cmd/benchcheck).
//   - Adaptive re-routing: cluster.Session.Replan feeds every gateway's
//     relay-queue high-water mark (Session.RelayStats' source counters)
//     back into the edge costs as a congestion term and recomputes the
//     plan, so a hot bridge prices itself out and traffic shifts to the
//     parallel rails. Replanning happens only when the application calls
//     it at a quiescent collective boundary — schedules stay
//     deterministic within a run. Routes update immediately (routing is
//     per message); leaders are re-elected from the new plan and
//     Process.RefreshHierarchy invalidates the world communicator's
//     cached topology so the next collective compiles against them.
//   - Gateway admission control: each relay's store-and-forward queue is
//     bounded by a credit window (core.Device.RelayWindow, set from
//     cluster.Topology.RelayWindow). A body packet must hold a credit
//     while stored; at a full gateway the polling thread parks until one
//     frees (backpressuring the inbound channel), and a relayed
//     rendez-vous REQUEST is refused with a busy nack — the sender backs
//     off exponentially and retries, so a transfer is only admitted when
//     the gateway can hold it. Drops (lossy-eager ablation, routing
//     holes) are counted by reason in stats.RelayTable.
//
// # Bandwidth aggregation: multi-leader collectives
//
// A single elected leader per cluster serializes the entire inter-cluster
// phase of a two-level collective through one gateway, leaving every
// other bridge the cluster fronts idle. The multi-leader forms
// (hmulti.go, CollHierMulti, tuning-table name "2level-multi") remove
// that funnel:
//
//   - Leader sets: cluster election widens each cluster's leader into a
//     set with one member per distinct gateway network the cluster
//     fronts (Hierarchy.LeaderSets, primary leader first, gateway labels
//     in Hierarchy.LeaderGateways). On the bridged triangle every island
//     borders two bridges, so every set has two gateway-diverse members.
//   - Sharding: the payload (or reduction vector, or bundle matrix) is
//     split into one shard per co-leader. Each shard's inter-cluster
//     journey is planned along its own gateway — for every cluster pair
//     the compiler picks the emissary co-leaders that share a bridge, so
//     a shard crosses each backbone gap in a single relayless hop. Bcast
//     pipelines eager-sized segments down per-shard gateway chains;
//     Allreduce/Allgather reduce-scatter across co-leaders and exchange
//     per-shard; Alltoall stripes each cluster-pair bundle across the
//     pair's distinct relay couples and ships the stripes in one duplex
//     segmented round.
//   - Redistribute rounds: intra-cluster fan-in/fan-out to and from the
//     co-leaders frames the backbone phase. The schedules keep every
//     pure-sink receive out of the pipelined rounds (deferred to
//     trailing bulk rounds) so no bridge ever waits a round trip for a
//     rank that is busy forwarding — the send order on every directed
//     pair equals the receiver's posted order, which is what makes the
//     one-tag FIFO matching safe.
//   - Rail hints: co-leader bundle exchanges inherit the multi-path
//     rails, so a direct pair with two installed rails stripes its
//     rendez-vous bundles exactly like a forwarded pair would.
//
// The aggregate effect on the bridged triangle at 1 MiB: Bcast engages
// all three bridges at half the bytes each (2x over the single-leader
// form), and Alltoall balances the three bridges exactly where the
// funneled form tripled the load on the leader's bridge (1.6x). The
// autotuner treats "2level-multi" as one more candidate — it wins the
// large-payload brackets on multi-gateway topologies and loses the
// latency brackets to the segmented single-leader form, and the
// crossover is measured, not assumed (the multileader experiment and the
// ML_* benchcheck rules gate the selected-not-forced speedups).
//
// # The per-link device mux
//
// A session's links are not interchangeable: the paper's headline
// configuration runs shared memory within a node, a SAN within each
// cluster and TCP between clusters, all at once. The cluster wiring
// classifies every ordered rank pair into a device class — "self"
// (intra-process, chself), "smp" (intra-node, smp_plug), "san"
// (intra-cluster SAN such as SCI or Myrinet/BIP) or "wan" (a commodity
// backbone) — and installs the classification on each rank: small
// sessions may still hand over an eager table (Process.SetLinkClasses),
// the cluster wiring installs a lazy resolver
// (Process.SetLinkClassResolver) that classifies each destination on the
// first LinkClassOf query and memoizes it for the life of the process.
// Three layers consume it:
//
//   - Routing: internal/route's edge costs are device-aware — an eager
//     payload pays the class's intermediary-copy cost, a rendez-vous
//     payload its handshake round-trips — so the planner prefers the
//     transport a payload actually runs fastest on, not a uniform
//     reference curve.
//   - The devices: ch_mad routes carry their path's device class and
//     smallest native switch point, and Device.SwitchPointTo resolves
//     the eager->rendez-vous threshold per link (measured per-class
//     override, then the path's native threshold, then the historical
//     single elected value) instead of §4.2.2's one device-wide
//     election. cluster.Topology.Uniform restores the historical
//     single-protocol wiring as an ablation.
//   - Tuning: the MPI_Init autotuner probes one representative rank
//     pair per class (ClassProbe) with eager- and rendez-vous-forced
//     ping-pongs and broadcasts the measured per-class thresholds with
//     the crossover table; they install through adi.ClassTuner, appear
//     as "SwitchPoint" rows of TuneSnapshot, and persist through the
//     TuneCache like every other row.
//
// # The MPI_Init autotuner
//
// Process.Autotune (or cluster.Topology.Autotune) replaces the analytic
// selection thresholds with measured ones: at init, every candidate
// algorithm of every tunable operation is compiled and executed on the
// live topology over a small payload sweep — so the timings include rank
// placement, elected switch points and, when netsim models it, backbone
// trunk contention (netsim.Params.NetworkBandwidth). Rank 0 picks the
// fastest candidate per size, places crossovers at geometric midpoints,
// and broadcasts the (operation → size bracket → algorithm) table; every
// rank installs identical bytes, so CollAuto dispatch stays agreed
// everywhere. The sweep is deterministic in the topology (virtual time
// has no noise). Communicators resolve the table once, at their first
// collective; Process.TuneSnapshot exports it for reports, and
// Process.LoadTuneTable installs an exported table directly — the
// persistence path: cluster.Topology.TuneCache keys tables by a
// topology-shape hash (device classes, per-network switch points and
// the Uniform flag included), so repeated sessions of the same shape
// skip the sweep and load byte-identical rows.
//
// # The Icoll API
//
// The nonblocking collectives mirror MPI-3:
//
//	req, err := comm.Iallreduce(send, recv, count, dt, op)
//	... overlapped computation ...
//	err = req.Wait()        // or: done, err := req.Test()
//
// Ibarrier, Ibcast, Ireduce, Iallreduce, Igather, Iallgather and
// Ialltoall return a *CollRequest. Output buffers are defined only after
// Wait/Test reports completion; input buffers must stay untouched until
// then. All members must issue collectives on a communicator in the same
// order (the MPI rule); the engine relies on it to number schedules
// identically across ranks.
//
// Blocking Barrier/Bcast/Reduce/Allreduce/Gather/Allgather/Alltoall are
// compile-then-Wait wrappers around their I-twins. Gatherv, Scatterv,
// Scan and the point-to-point API are unchanged.
//
// # Determinism rules
//
// The simulator's core guarantee is that a run is a pure function of its
// inputs: same topology, same program, same seeds — bit-identical stats
// tables, virtual timestamps and routes, every time. That guarantee is
// what makes autotuned tables shareable (the TuneCache), experiment
// output diffable in CI, and rare protocol bugs reproducible at will.
// Simulation code (everything under internal/ except the linter itself)
// therefore follows four rules, machine-checked by `go run ./cmd/madlint
// ./...` (cmd/madlint, analyzers in internal/lint):
//
//   - No wall clock. time.Now/Sleep/After read or wait on host time;
//     simulation code uses vtime.Scheduler's virtual clock exclusively.
//   - No global math/rand. Anything random draws from an explicitly
//     seeded generator (netsim.PRNG) owned by the component, so seeds
//     travel with topologies, not with process start order.
//   - No preemptive concurrency. Raw `go` statements, sync.Mutex,
//     sync.WaitGroup and native channels are forbidden outside
//     internal/vtime: all parallelism is cooperative tasks scheduled by
//     the run token, which is what makes task interleavings replayable.
//   - No map-order effects. Iterating a Go map is randomized per run;
//     loop bodies must not push, fire, send, spawn or print per entry,
//     and slices collected from a map must be sorted before use
//     (iterate sorted keys, or append then sort.*).
//
// Two further madlint analyzers guard protocol structure: pktswitch
// proves every switch over an enum-shaped discriminator (core.PktType,
// adi control kinds, the madeleine/chp4 wire kinds, the collective
// algorithm/kind tables here) covers every constant or carries an
// explicit default; vtimectx proves no scheduler-context callback
// (Scheduler.At/After timers, Event.OnFire subscribers, netsim
// Endpoint.OnDeliver hooks) can reach a vtime-blocking primitive, which
// would panic "called outside a running task" at depth. A justified
// exception is silenced in place with `//madlint:ignore <analyzer>
// <reason>`; out-of-tree simulation files opt in with
// `//madlint:simulation`.
//
// The runtime counterpart is the Finalize-time invariant audit: after a
// clean run the cluster session calls Process.AuditDevices, and every
// device implementing adi.Auditor (ch_mad: core.Device.AuditInvariants)
// must be back at rest — relay credit window full, no rendez-vous syncs
// or stripe reassemblies open, drop counters consistent with their
// breakdown. The vtime scheduler's deadlock detector completes the
// picture: when no task is runnable and no event pending, Run returns a
// structured vtime.DeadlockError naming every task and what it waits on.
//
// # Observability
//
// The transport stack is instrumented end to end by internal/trace: a
// virtual-time event tracer, an always-on metrics registry, and a
// bounded flight-recorder ring. Tracing is off by default and costs one
// nil-check branch per hot path (measured by BenchmarkNilTracer; the
// scale-seed benchcheck gate proves disabled tracing leaves every
// simulated time bit-identical). Attach a tracer per topology
// (cluster.Topology.Trace) or process-wide (cluster.SetDefaultTracer —
// the `cmd/experiments -trace out.json` path).
//
// Event taxonomy, by trace.Kind and name:
//
//   - pkt: "eager.send"/"eager.recv" — short-protocol message
//     lifecycle, one span per send with src/dst/bytes/class.
//   - rndv: "rndv.req", "rndv.ok", "rndv.ack", "rndv.body",
//     "rndv.land" — the rendez-vous handshake and whole-body transfer;
//     "rndv.seg"/"rndv.seg.land" — striped segments, tagged with their
//     rail (header PathID), hop budget and byte offset; "rndv.nack" —
//     a busy-refused request.
//   - relay: "relay.hop" — one gateway forward (span covers the parked
//     store-and-forward time), with rail/hop tags; "relay.depth" — the
//     queue-occupancy counter track; "relay.drop".
//   - credit: "relay.credit.wait" — a body parked for an admission
//     credit; "relay.busy" — a refused rendez-vous request.
//   - sched: "sched.<op>" and "sched.round" — the collective progress
//     engine's schedule execution, one span per round with the ranks it
//     talks to ("s5,r0" = send to world rank 5, receive from 0);
//     "sched.submit" — a nonblocking collective entering the queue.
//   - net: "trunk.wait" — a packet queued behind other pipes' traffic
//     for a shared backbone trunk; "trunk.occ" — trunk occupancy.
//   - ctrl: "replan" — a Session.Replan, with the number of congested
//     gateways that fed the new plan.
//
// Reading traces: trace.Tracer.WriteChrome emits Chrome trace-event
// JSON with timestamps in virtual microseconds — load it in
// ui.perfetto.dev (or chrome://tracing). Each session is a process;
// each rank, each network and the session-control line are tracks
// within it. The registry (trace.Registry) aggregates counters per
// device class and per gateway (eager/rndv/relay bytes and messages,
// deferred bodies, busy nacks, queue high-water, trunk waits) and
// always runs — cluster.Session.RelayStats and the RelayTable
// trunk-wait column read it with tracing off.
//
// The flight recorder closes the loop with the failure paths: a traced
// session points vtime.Scheduler.OnDeadlock at the tracer's ring, so a
// DeadlockError report ends with the last events before the hang, and
// core.Device.AuditInvariants appends the device's trace tail to a
// failed audit — the exchange that leaked the state, not just the leak.
//
// # Migration notes
//
// Callers of the former internal algorithm helpers (barrierFlat,
// bcastHier, reduceFlat, allgatherHier, ...) now use the public API plus
// Process.SetCollMode(CollFlat/CollHier) to pin an algorithm family; the
// helpers were replaced by compile* schedule compilers with identical
// message patterns. WaitAll now returns one *Status per request (nil for
// sends) alongside the first error; WaitAny waits event-driven on the
// virtual-time scheduler instead of polling.
package mpi
