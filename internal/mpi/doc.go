// Package mpi is the application-facing MPI layer of the reproduction:
// communicators, point-to-point messaging, datatypes, reduction ops and
// the collective operations, built on the adi matching engine and the
// simulated devices below.
//
// # The collective schedule model
//
// Since PR 2 every collective — blocking or nonblocking, flat or
// hierarchical — is *schedule-driven*. Calling a collective compiles the
// selected algorithm into a schedule (schedule.go): a list of rounds
// whose steps are plain data — send, recv, local reduce, local copy —
// with inter-round data flow expressed through shared staging buffers.
// The communicator's progress engine (nbc.go) executes submitted
// schedules in order on a dedicated cooperative thread, so transfers
// advance whenever the application thread blocks, computes or yields:
// the paper's decoupling of communication progress from the application,
// applied to collectives (the libNBC/MPI-3 design).
//
// Algorithm selection happens once, at compile time, through the tuning
// table in topology.go (operation kind × payload size × cluster shape →
// flat, two-level, or two-level segmented). The flat compilers live in
// collectives.go, the two-level ones in hcoll.go; each algorithm has
// exactly one body, shared by the blocking and nonblocking entry points.
// Adding an algorithm (ring allreduce, autotuned variants, ...) means
// adding a compiler and a tuning-table row — the executor, request
// handling and progress rules are untouched.
//
// # The Icoll API
//
// The nonblocking collectives mirror MPI-3:
//
//	req, err := comm.Iallreduce(send, recv, count, dt, op)
//	... overlapped computation ...
//	err = req.Wait()        // or: done, err := req.Test()
//
// Ibarrier, Ibcast, Ireduce, Iallreduce, Igather, Iallgather and
// Ialltoall return a *CollRequest. Output buffers are defined only after
// Wait/Test reports completion; input buffers must stay untouched until
// then. All members must issue collectives on a communicator in the same
// order (the MPI rule); the engine relies on it to number schedules
// identically across ranks.
//
// Blocking Barrier/Bcast/Reduce/Allreduce/Gather/Allgather/Alltoall are
// compile-then-Wait wrappers around their I-twins. Gatherv, Scatterv,
// Scan and the point-to-point API are unchanged.
//
// # Migration notes
//
// Callers of the former internal algorithm helpers (barrierFlat,
// bcastHier, reduceFlat, allgatherHier, ...) now use the public API plus
// Process.SetCollMode(CollFlat/CollHier) to pin an algorithm family; the
// helpers were replaced by compile* schedule compilers with identical
// message patterns. WaitAll now returns one *Status per request (nil for
// sends) alongside the first error; WaitAny waits event-driven on the
// virtual-time scheduler instead of polling.
package mpi
