// The MPI_Init autotuner: instead of trusting the analytic thresholds in
// topology.go, Autotune *times* the candidate schedule compilers on the
// live topology — contention arbiter, rank placement, elected switch
// points and all — over a small message-size sweep, and records the
// measured crossover points in a per-(operation, algorithm) tuning table
// (MPICH coll_tuned's measured decision files, run at init instead of
// offline).
//
// Every rank participates in every timed run (the sweep is itself a
// sequence of collectives, so the usual same-order rule applies), but only
// rank 0's clock decides: it builds the crossover table and broadcasts it,
// so all ranks install byte-identical tables and future chooseAlgo calls
// agree everywhere. The whole sweep is deterministic in the topology —
// virtual time has no noise — which the determinism test pins down.
package mpi

import (
	"fmt"
	"math"

	"mpichmad/internal/vtime"
)

// tuneSizes is the sweep: one size per decade of the latency-, mixed- and
// bandwidth-dominated regimes. Crossovers between adjacent sweep points
// are placed at their geometric midpoint.
var tuneSizes = []int{1 << 10, 16 << 10, 256 << 10}

// tuneRow is one bracket of the measured table: use algo for payloads up
// to maxBytes (math.MaxInt on the last, open bracket).
type tuneRow struct {
	maxBytes int
	algo     collAlgo
}

// tuneTable is the measured crossover table, indexed by operation.
// Operations without an entry (nothing to choose between on this
// topology) fall back to the analytic defaults.
type tuneTable struct {
	rows map[collKind][]tuneRow
}

// lookup returns the measured algorithm bracket for a payload size.
func (tt *tuneTable) lookup(kind collKind, nBytes int) (collAlgo, bool) {
	for _, r := range tt.rows[kind] {
		if nBytes <= r.maxBytes {
			return r.algo, true
		}
	}
	return 0, false
}

// tuneTable resolves the process's autotuned table once per communicator
// (the per-communicator cache: a communicator created before Autotune ran
// deliberately keeps its resolved nil and stays on the analytic defaults,
// so selection never changes mid-stream under an already-used
// communicator).
func (c *Comm) tuneTable() *tuneTable {
	if !c.ttSet {
		c.tt, c.ttSet = c.p.tuned, true
	}
	return c.tt
}

// TuneChoice is one exported row of the autotuned table (TuneSnapshot).
type TuneChoice struct {
	// Op is the MPI operation name ("Allreduce", "Bcast", ...).
	Op string
	// MaxBytes is the bracket's upper payload bound; math.MaxInt marks
	// the open last bracket.
	MaxBytes int
	// Algo names the selected algorithm: "flat", "2level", "2level-seg",
	// "ring", "2level-ring".
	Algo string
}

// TuneSnapshot returns the installed crossover table in deterministic
// (operation, then size) order, nil when Autotune has not run.
func (p *Process) TuneSnapshot() []TuneChoice {
	if p.tuned == nil {
		return nil
	}
	var out []TuneChoice
	for k := collKind(0); k < numCollKinds; k++ {
		for _, r := range p.tuned.rows[k] {
			out = append(out, TuneChoice{Op: kindNames[k], MaxBytes: r.maxBytes, Algo: algoNames[r.algo]})
		}
	}
	return out
}

// LoadTuneTable installs a previously exported crossover table
// (TuneSnapshot's format) without running the init sweep: the
// autotuner-persistence path. The table must come from a topology of the
// same shape — the cluster session keys its cache by a topology-shape
// hash — and every rank must load the same rows, mirroring the broadcast
// agreement of a live sweep. Costs no virtual time.
func (p *Process) LoadTuneTable(choices []TuneChoice) error {
	if err := ValidateTuneChoices(choices); err != nil {
		return fmt.Errorf("mpi: LoadTuneTable: %w", err)
	}
	tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
	for _, tc := range choices {
		kind, _ := kindByName(tc.Op) // validated above
		algo, _ := algoByName(tc.Algo)
		tt.rows[kind] = append(tt.rows[kind], tuneRow{maxBytes: tc.MaxBytes, algo: algo})
	}
	p.tuned = tt
	p.World.tt, p.World.ttSet = tt, true
	return nil
}

// ValidateTuneChoices reports whether an exported crossover table could
// be installed by LoadTuneTable: every row must name a known operation
// and algorithm and carry a positive bracket bound. The persistence
// layer's sanity check — a cache deserialized from disk drops tables
// failing it instead of failing every session that loads them.
func ValidateTuneChoices(choices []TuneChoice) error {
	for _, tc := range choices {
		if _, ok := kindByName(tc.Op); !ok {
			return fmt.Errorf("mpi: tune table: unknown operation %q", tc.Op)
		}
		if _, ok := algoByName(tc.Algo); !ok {
			return fmt.Errorf("mpi: tune table: unknown algorithm %q", tc.Algo)
		}
		if tc.MaxBytes <= 0 {
			return fmt.Errorf("mpi: tune table: non-positive bracket %d for %s", tc.MaxBytes, tc.Op)
		}
	}
	return nil
}

// kindByName inverts kindNames (snapshot decoding).
func kindByName(name string) (collKind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// algoByName inverts algoNames (snapshot decoding).
func algoByName(name string) (collAlgo, bool) {
	for a, n := range algoNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

// Autotune runs the MPI_Init tuning sweep over MPI_COMM_WORLD: every
// candidate algorithm of every tunable operation is compiled and executed
// at each sweep size, rank 0 picks the fastest per (operation, size) and
// broadcasts the resulting crossover table, which chooseAlgo then
// consults ahead of the analytic defaults. Collective: every rank must
// call it at the same point (the cluster session's Topology.Autotune flag
// does so right before the rank main).
func (p *Process) Autotune() error {
	return p.World.autotune()
}

// tuneCandidates lists the algorithms worth timing for an operation on
// this communicator's shape; fewer than two means there is no choice to
// measure.
func (c *Comm) tuneCandidates(kind collKind) []collAlgo {
	ct := c.topo()
	multi := ct != nil && ct.nClusters >= 2
	switch kind {
	case kindBcast:
		if multi {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented}
		}
	case kindAllreduce:
		if multi {
			return []collAlgo{algoFlat, algoRing, algoHier, algoRingHier}
		}
		return []collAlgo{algoFlat, algoRing}
	case kindAllgather:
		if multi {
			return []collAlgo{algoFlat, algoHier}
		}
	case kindAlltoall:
		if multi {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented}
		}
	case kindReduceScatter:
		if multi {
			return []collAlgo{algoRing, algoRingHier}
		}
	}
	return nil
}

// runTuneOp executes one probe collective of ~nBytes total payload with
// whatever algorithm is currently forced.
func (c *Comm) runTuneOp(kind collKind, nBytes int) error {
	n := c.Size()
	per := nBytes / n
	if per < 1 {
		per = 1
	}
	switch kind {
	case kindBcast:
		buf := make([]byte, nBytes)
		return c.Bcast(buf, nBytes, Byte, 0)
	case kindAllreduce:
		in := make([]byte, nBytes)
		out := make([]byte, nBytes)
		return c.Allreduce(in, out, nBytes, Byte, OpMax)
	case kindAllgather:
		// Iallgather dispatches on the per-rank contribution, so the sweep
		// size is the per-rank payload here (not divided by n) to keep the
		// bracket keys aligned with the dispatch metric.
		in := make([]byte, nBytes)
		out := make([]byte, nBytes*n)
		return c.Allgather(in, out, nBytes, Byte)
	case kindAlltoall:
		send := make([]byte, per*n)
		recv := make([]byte, per*n)
		return c.Alltoall(send, recv, per, Byte)
	case kindReduceScatter:
		send := make([]byte, per*n)
		recv := make([]byte, per)
		return c.ReduceScatter(send, recv, per, Byte, OpMax)
	}
	return fmt.Errorf("mpi: autotune: operation %q is not tunable", kindNames[kind])
}

// timeAlgo measures one (operation, algorithm, size) probe: barrier in,
// run, barrier out; the bracketing barriers keep ranks in lockstep so the
// reading is the collective's full completion time.
func (c *Comm) timeAlgo(kind collKind, a collAlgo, nBytes int) (vtime.Duration, error) {
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	start := c.p.M.S.Now()
	c.p.forcedAlgo = &a
	err := c.runTuneOp(kind, nBytes)
	c.p.forcedAlgo = nil
	if err != nil {
		return 0, err
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return c.p.M.S.Now().Sub(start), nil
}

func (c *Comm) autotune() error {
	type probe struct {
		kind       collKind
		candidates []collAlgo
	}
	var probes []probe
	for k := collKind(0); k < numCollKinds; k++ {
		if cands := c.tuneCandidates(k); len(cands) >= 2 {
			probes = append(probes, probe{kind: k, candidates: cands})
		}
	}

	// Rank 0 collects winners; every rank runs every probe in the same
	// order (MPI's collective-ordering rule makes the sweep legal).
	winners := make(map[collKind][]collAlgo, len(probes))
	for _, pr := range probes {
		for _, size := range tuneSizes {
			best, bestT := pr.candidates[0], vtime.Duration(math.MaxInt64)
			for _, a := range pr.candidates {
				t, err := c.timeAlgo(pr.kind, a, size)
				if err != nil {
					return fmt.Errorf("mpi: autotune %s/%s at %d B: %w",
						kindNames[pr.kind], algoNames[a], size, err)
				}
				if t < bestT {
					best, bestT = a, t
				}
			}
			winners[pr.kind] = append(winners[pr.kind], best)
		}
	}

	// Rank 0 turns winners into crossover brackets and broadcasts the
	// encoded table; everyone installs the same bytes.
	var enc []int64
	if c.myRank == 0 {
		tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
		for _, pr := range probes {
			tt.rows[pr.kind] = crossoverRows(tuneSizes, winners[pr.kind])
		}
		enc = encodeTuneTable(tt)
	}
	nRows := make([]byte, 8)
	if c.myRank == 0 {
		copy(nRows, Int64Bytes([]int64{int64(len(enc))}))
	}
	if err := c.Bcast(nRows, 1, Int64, 0); err != nil {
		return err
	}
	total := int(BytesInt64(nRows)[0])
	buf := make([]byte, 8*total)
	if c.myRank == 0 {
		copy(buf, Int64Bytes(enc))
	}
	if total > 0 {
		if err := c.Bcast(buf, total, Int64, 0); err != nil {
			return err
		}
	}
	c.p.tuned = decodeTuneTable(BytesInt64(buf))
	// The sweep's own barriers/broadcasts resolved this communicator's
	// cache to nil; refresh it so the tuned table governs from the next
	// collective on.
	c.tt, c.ttSet = c.p.tuned, true
	return nil
}

// crossoverRows compresses per-size winners into brackets, placing each
// crossover at the geometric midpoint of the adjacent sweep sizes.
func crossoverRows(sizes []int, winners []collAlgo) []tuneRow {
	var rows []tuneRow
	for i, w := range winners {
		if len(rows) > 0 && rows[len(rows)-1].algo == w {
			continue
		}
		if len(rows) > 0 {
			rows[len(rows)-1].maxBytes = int(math.Sqrt(float64(sizes[i-1]) * float64(sizes[i])))
		}
		rows = append(rows, tuneRow{maxBytes: math.MaxInt, algo: w})
	}
	return rows
}

// encodeTuneTable flattens a table into (kind, maxBytes, algo) triples in
// deterministic kind order for the install broadcast.
func encodeTuneTable(tt *tuneTable) []int64 {
	var enc []int64
	for k := collKind(0); k < numCollKinds; k++ {
		for _, r := range tt.rows[k] {
			enc = append(enc, int64(k), int64(r.maxBytes), int64(r.algo))
		}
	}
	return enc
}

func decodeTuneTable(enc []int64) *tuneTable {
	tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
	for i := 0; i+2 < len(enc); i += 3 {
		k := collKind(enc[i])
		tt.rows[k] = append(tt.rows[k], tuneRow{maxBytes: int(enc[i+1]), algo: collAlgo(enc[i+2])})
	}
	return tt
}
