// The MPI_Init autotuner: instead of trusting the analytic thresholds in
// topology.go, Autotune *times* the candidate schedule compilers on the
// live topology — contention arbiter, rank placement, elected switch
// points and all — over a small message-size sweep, and records the
// measured crossover points in a per-(operation, algorithm) tuning table
// (MPICH coll_tuned's measured decision files, run at init instead of
// offline).
//
// Every rank participates in every timed run (the sweep is itself a
// sequence of collectives, so the usual same-order rule applies), but only
// rank 0's clock decides: it builds the crossover table and broadcasts it,
// so all ranks install byte-identical tables and future chooseAlgo calls
// agree everywhere. The whole sweep is deterministic in the topology —
// virtual time has no noise — which the determinism test pins down.
package mpi

import (
	"fmt"
	"math"
	"sort"

	"mpichmad/internal/adi"
	"mpichmad/internal/vtime"
)

// tuneSizes is the sweep: one size per decade of the latency-, mixed- and
// bandwidth-dominated regimes. Crossovers between adjacent sweep points
// are placed at their geometric midpoint.
var tuneSizes = []int{1 << 10, 16 << 10, 256 << 10}

// switchTuneSizes is the per-device-class eager/rendez-vous probe sweep:
// sizes bracketing every native switch point in the zoo (BIP 7K, SCI 8K,
// smp 16K, TCP 64K), so the measured crossover can land on either side of
// the calibrated one.
var switchTuneSizes = []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}

// switchPointOp is the TuneChoice.Op marker for a per-device-class
// eager->rendez-vous threshold row: MaxBytes is the threshold, Algo names
// the device class.
const switchPointOp = "SwitchPoint"

// relayWindowOp is the TuneChoice.Op marker for a per-backbone relay
// credit window row: MaxBytes is the window (in-flight relayed bodies),
// Algo names the spanning network it was sized for. Produced by the
// init-time bandwidth-delay-product sizing in the cluster wiring,
// persisted with the rest of the tune table.
const relayWindowOp = "RelayWindow"

// deviceClassNames lists the per-link device-mux classes in tier order
// (mirroring internal/route's DeviceClass taxonomy); the canonical
// encoding order for per-class threshold rows.
var deviceClassNames = []string{"self", "smp", "san", "wan"}

// classIndex inverts deviceClassNames; -1 for an unknown name.
func classIndex(name string) int {
	for i, n := range deviceClassNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ClassProbe names the representative ordered rank pair the MPI_Init
// autotuner times to measure one device class's eager/rendez-vous
// crossover. The cluster wiring installs the same probe list on every
// rank (SetClassProbes); during Autotune all ranks step through the list
// in lockstep while ranks A and B run the timed ping-pongs.
type ClassProbe struct {
	Class string
	A, B  int
}

// SetLinkClasses installs the device class of the link from this rank
// toward every world rank ("self", "smp", "san", "wan") — the per-link
// device mux's view of the topology, used by diagnostics and the
// per-class threshold installer. Called by the cluster wiring.
func (p *Process) SetLinkClasses(classes []string) {
	p.linkClass = append([]string(nil), classes...)
	p.linkClassFn, p.linkClassMemo = nil, nil
}

// SetLinkClassResolver installs a lazy per-destination class resolver in
// place of the eager N-entry table: LinkClassOf consults fn on the first
// query for a destination and memoizes the answer for the life of the
// process. The memo is deliberately never invalidated — the eager table
// was captured at build time and survived re-plans unchanged, and the
// lazy path pins the same frozen semantics.
func (p *Process) SetLinkClassResolver(fn func(dst int) string) {
	p.linkClass = nil
	p.linkClassFn = fn
	p.linkClassMemo = nil
}

// LinkClassOf returns the device class of the link toward a world rank,
// "" when the session didn't install the mux classification.
func (p *Process) LinkClassOf(dst int) string {
	if dst < 0 || dst >= p.size {
		return ""
	}
	if p.linkClass != nil {
		if dst >= len(p.linkClass) {
			return ""
		}
		return p.linkClass[dst]
	}
	if p.linkClassFn == nil {
		return ""
	}
	if c, ok := p.linkClassMemo[dst]; ok {
		return c
	}
	c := p.linkClassFn(dst)
	if p.linkClassMemo == nil {
		p.linkClassMemo = make(map[int]string)
	}
	p.linkClassMemo[dst] = c
	return c
}

// SetClassProbes installs the per-class autotuner probe pairs; every rank
// must receive the identical list (the probe sweep is collective).
func (p *Process) SetClassProbes(probes []ClassProbe) {
	p.classProbes = append([]ClassProbe(nil), probes...)
}

// ClassSwitchPoints returns the measured per-device-class eager
// thresholds installed by Autotune or LoadTuneTable, nil when none.
func (p *Process) ClassSwitchPoints() map[string]int {
	if p.classSwitch == nil {
		return nil
	}
	out := make(map[string]int, len(p.classSwitch))
	for k, v := range p.classSwitch {
		out[k] = v
	}
	return out
}

// installClassSwitch records one measured per-class threshold and pushes
// it into every device that accepts per-class tuning (adi.ClassTuner).
func (p *Process) installClassSwitch(class string, bytes int) {
	if p.classSwitch == nil {
		p.classSwitch = make(map[string]int)
	}
	p.classSwitch[class] = bytes
	for _, d := range p.devices {
		if ct, ok := d.(adi.ClassTuner); ok {
			ct.SetClassSwitchPoint(class, bytes)
		}
	}
}

// SetRelayWindows records the per-backbone relay credit windows the
// cluster wiring sized from each gateway's bandwidth-delay product, and
// pushes them into every device that accepts relay tuning
// (adi.RelayTuner). The windows become "RelayWindow" rows of
// TuneSnapshot, so a cached tune table restores them via LoadTuneTable.
func (p *Process) SetRelayWindows(windows map[string]int) {
	nets := make([]string, 0, len(windows))
	for n := range windows {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, net := range nets {
		p.installRelayWindow(net, windows[net])
	}
}

// RelayWindows returns the installed per-backbone windows, nil when the
// static default is in force.
func (p *Process) RelayWindows() map[string]int {
	if p.relayWindows == nil {
		return nil
	}
	out := make(map[string]int, len(p.relayWindows))
	for k, v := range p.relayWindows {
		out[k] = v
	}
	return out
}

func (p *Process) installRelayWindow(net string, window int) {
	if window <= 0 {
		return
	}
	if p.relayWindows == nil {
		p.relayWindows = make(map[string]int)
	}
	p.relayWindows[net] = window
	for _, d := range p.devices {
		if rt, ok := d.(adi.RelayTuner); ok {
			rt.SetRelayWindowHint(net, window)
		}
	}
}

// tuneRow is one bracket of the measured table: use algo for payloads up
// to maxBytes (math.MaxInt on the last, open bracket).
type tuneRow struct {
	maxBytes int
	algo     collAlgo
}

// tuneTable is the measured crossover table, indexed by operation.
// Operations without an entry (nothing to choose between on this
// topology) fall back to the analytic defaults.
type tuneTable struct {
	rows map[collKind][]tuneRow
}

// lookup returns the measured algorithm bracket for a payload size.
func (tt *tuneTable) lookup(kind collKind, nBytes int) (collAlgo, bool) {
	for _, r := range tt.rows[kind] {
		if nBytes <= r.maxBytes {
			return r.algo, true
		}
	}
	return 0, false
}

// tuneTable resolves the process's autotuned table once per communicator
// (the per-communicator cache: a communicator created before Autotune ran
// deliberately keeps its resolved nil and stays on the analytic defaults,
// so selection never changes mid-stream under an already-used
// communicator).
func (c *Comm) tuneTable() *tuneTable {
	if !c.ttSet {
		c.tt, c.ttSet = c.p.tuned, true
	}
	return c.tt
}

// TuneChoice is one exported row of the autotuned table (TuneSnapshot).
type TuneChoice struct {
	// Op is the MPI operation name ("Allreduce", "Bcast", ...), or
	// "SwitchPoint" for a per-device-class eager threshold row.
	Op string
	// MaxBytes is the bracket's upper payload bound; math.MaxInt marks
	// the open last bracket. For a "SwitchPoint" row it is the measured
	// eager->rendez-vous threshold of the class.
	MaxBytes int
	// Algo names the selected algorithm: "flat", "2level", "2level-seg",
	// "ring", "2level-ring". For a "SwitchPoint" row it names the device
	// class ("smp", "san", "wan").
	Algo string
}

// TuneSnapshot returns the installed crossover table in deterministic
// (operation, then size) order, followed by the measured per-device-class
// switch points in class-tier order and the per-backbone relay windows in
// network-name order; nil when Autotune has not run.
func (p *Process) TuneSnapshot() []TuneChoice {
	if p.tuned == nil && p.classSwitch == nil && p.relayWindows == nil {
		return nil
	}
	var out []TuneChoice
	if p.tuned != nil {
		for k := collKind(0); k < numCollKinds; k++ {
			for _, r := range p.tuned.rows[k] {
				out = append(out, TuneChoice{Op: kindNames[k], MaxBytes: r.maxBytes, Algo: algoNames[r.algo]})
			}
		}
	}
	classes := make([]string, 0, len(p.classSwitch))
	for c := range p.classSwitch {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classIndex(classes[i]) < classIndex(classes[j]) })
	for _, c := range classes {
		out = append(out, TuneChoice{Op: switchPointOp, MaxBytes: p.classSwitch[c], Algo: c})
	}
	nets := make([]string, 0, len(p.relayWindows))
	for n := range p.relayWindows {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, n := range nets {
		out = append(out, TuneChoice{Op: relayWindowOp, MaxBytes: p.relayWindows[n], Algo: n})
	}
	return out
}

// LoadTuneTable installs a previously exported crossover table
// (TuneSnapshot's format) without running the init sweep: the
// autotuner-persistence path. The table must come from a topology of the
// same shape — the cluster session keys its cache by a topology-shape
// hash — and every rank must load the same rows, mirroring the broadcast
// agreement of a live sweep. Costs no virtual time.
func (p *Process) LoadTuneTable(choices []TuneChoice) error {
	if err := ValidateTuneChoices(choices); err != nil {
		return fmt.Errorf("mpi: LoadTuneTable: %w", err)
	}
	tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
	for _, tc := range choices {
		if tc.Op == switchPointOp {
			p.installClassSwitch(tc.Algo, tc.MaxBytes)
			continue
		}
		if tc.Op == relayWindowOp {
			p.installRelayWindow(tc.Algo, tc.MaxBytes)
			continue
		}
		kind, _ := kindByName(tc.Op) // validated above
		algo, _ := algoByName(tc.Algo)
		tt.rows[kind] = append(tt.rows[kind], tuneRow{maxBytes: tc.MaxBytes, algo: algo})
	}
	p.tuned = tt
	p.World.tt, p.World.ttSet = tt, true
	return nil
}

// ValidateTuneChoices reports whether an exported crossover table could
// be installed by LoadTuneTable: every row must name a known operation
// and algorithm and carry a positive bracket bound. The persistence
// layer's sanity check — a cache deserialized from disk drops tables
// failing it instead of failing every session that loads them.
func ValidateTuneChoices(choices []TuneChoice) error {
	for _, tc := range choices {
		if tc.Op == switchPointOp {
			if classIndex(tc.Algo) < 0 {
				return fmt.Errorf("mpi: tune table: unknown device class %q", tc.Algo)
			}
			if tc.MaxBytes <= 0 {
				return fmt.Errorf("mpi: tune table: non-positive switch point %d for class %s", tc.MaxBytes, tc.Algo)
			}
			continue
		}
		if tc.Op == relayWindowOp {
			if tc.Algo == "" {
				return fmt.Errorf("mpi: tune table: relay window row without a network name")
			}
			if tc.MaxBytes <= 0 {
				return fmt.Errorf("mpi: tune table: non-positive relay window %d for net %s", tc.MaxBytes, tc.Algo)
			}
			continue
		}
		if _, ok := kindByName(tc.Op); !ok {
			return fmt.Errorf("mpi: tune table: unknown operation %q", tc.Op)
		}
		if _, ok := algoByName(tc.Algo); !ok {
			return fmt.Errorf("mpi: tune table: unknown algorithm %q", tc.Algo)
		}
		if tc.MaxBytes <= 0 {
			return fmt.Errorf("mpi: tune table: non-positive bracket %d for %s", tc.MaxBytes, tc.Op)
		}
	}
	return nil
}

// kindByName inverts kindNames (snapshot decoding).
func kindByName(name string) (collKind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// algoByName inverts algoNames (snapshot decoding).
func algoByName(name string) (collAlgo, bool) {
	for a, n := range algoNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

// Autotune runs the MPI_Init tuning sweep over MPI_COMM_WORLD: every
// candidate algorithm of every tunable operation is compiled and executed
// at each sweep size, rank 0 picks the fastest per (operation, size) and
// broadcasts the resulting crossover table, which chooseAlgo then
// consults ahead of the analytic defaults. Collective: every rank must
// call it at the same point (the cluster session's Topology.Autotune flag
// does so right before the rank main).
func (p *Process) Autotune() error {
	return p.World.autotune()
}

// tuneCandidates lists the algorithms worth timing for an operation on
// this communicator's shape; fewer than two means there is no choice to
// measure.
func (c *Comm) tuneCandidates(kind collKind) []collAlgo {
	ct := c.topo()
	multi := ct != nil && ct.nClusters >= 2
	// Multi-leader candidates exist only where a leader set actually has a
	// second gateway to aggregate; on single-gateway topologies the probe
	// sequence (and therefore any cached table) is unchanged.
	multiGW := multi && ct.maxLeaderSet() > 1
	switch kind {
	case kindBcast:
		if multiGW {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented, algoHierMulti}
		}
		if multi {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented}
		}
	case kindAllreduce:
		if multiGW {
			return []collAlgo{algoFlat, algoRing, algoHier, algoRingHier, algoHierMulti}
		}
		if multi {
			return []collAlgo{algoFlat, algoRing, algoHier, algoRingHier}
		}
		return []collAlgo{algoFlat, algoRing}
	case kindAllgather:
		if multiGW {
			return []collAlgo{algoFlat, algoHier, algoHierMulti}
		}
		if multi {
			return []collAlgo{algoFlat, algoHier}
		}
	case kindAlltoall:
		if multiGW {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented, algoHierMulti}
		}
		if multi {
			return []collAlgo{algoFlat, algoHier, algoHierSegmented}
		}
	case kindReduceScatter:
		if multi {
			return []collAlgo{algoRing, algoRingHier}
		}
	default:
		// Barrier, Gather, Reduce: the analytic choice is not worth
		// second-guessing with timed probes.
	}
	return nil
}

// runTuneOp executes one probe collective of ~nBytes total payload with
// whatever algorithm is currently forced.
func (c *Comm) runTuneOp(kind collKind, nBytes int) error {
	n := c.Size()
	per := nBytes / n
	if per < 1 {
		per = 1
	}
	switch kind {
	case kindBcast:
		buf := make([]byte, nBytes)
		return c.Bcast(buf, nBytes, Byte, 0)
	case kindAllreduce:
		in := make([]byte, nBytes)
		out := make([]byte, nBytes)
		return c.Allreduce(in, out, nBytes, Byte, OpMax)
	case kindAllgather:
		// Iallgather dispatches on the per-rank contribution, so the sweep
		// size is the per-rank payload here (not divided by n) to keep the
		// bracket keys aligned with the dispatch metric.
		in := make([]byte, nBytes)
		out := make([]byte, nBytes*n)
		return c.Allgather(in, out, nBytes, Byte)
	case kindAlltoall:
		send := make([]byte, per*n)
		recv := make([]byte, per*n)
		return c.Alltoall(send, recv, per, Byte)
	case kindReduceScatter:
		send := make([]byte, per*n)
		recv := make([]byte, per)
		return c.ReduceScatter(send, recv, per, Byte, OpMax)
	default:
		return fmt.Errorf("mpi: autotune: operation %q is not tunable", kindNames[kind])
	}
}

// timeAlgo measures one (operation, algorithm, size) probe: barrier in,
// run, barrier out; the bracketing barriers keep ranks in lockstep so the
// reading is the collective's full completion time.
func (c *Comm) timeAlgo(kind collKind, a collAlgo, nBytes int) (vtime.Duration, error) {
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	start := c.p.M.S.Now()
	c.p.forcedAlgo = &a
	err := c.runTuneOp(kind, nBytes)
	c.p.forcedAlgo = nil
	if err != nil {
		return 0, err
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return c.p.M.S.Now().Sub(start), nil
}

func (c *Comm) autotune() error {
	type probe struct {
		kind       collKind
		candidates []collAlgo
	}
	var probes []probe
	for k := collKind(0); k < numCollKinds; k++ {
		if cands := c.tuneCandidates(k); len(cands) >= 2 {
			probes = append(probes, probe{kind: k, candidates: cands})
		}
	}

	// Rank 0 collects winners; every rank runs every probe in the same
	// order (MPI's collective-ordering rule makes the sweep legal).
	winners := make(map[collKind][]collAlgo, len(probes))
	for _, pr := range probes {
		for _, size := range tuneSizes {
			best, bestT := pr.candidates[0], vtime.Duration(math.MaxInt64)
			for _, a := range pr.candidates {
				t, err := c.timeAlgo(pr.kind, a, size)
				if err != nil {
					return fmt.Errorf("mpi: autotune %s/%s at %d B: %w",
						kindNames[pr.kind], algoNames[a], size, err)
				}
				if t < bestT {
					best, bestT = a, t
				}
			}
			winners[pr.kind] = append(winners[pr.kind], best)
		}
	}

	// Per-device-class switch-point probes: for each installed probe pair
	// (A, B) the two ranks time eager- versus rendez-vous-forced
	// ping-pongs across the probe sweep while the other ranks hold at the
	// bracketing barriers; A elects the measured crossover and ships it to
	// rank 0 for the table broadcast.
	classThr := make(map[string]int, len(c.p.classProbes))
	for _, pr := range c.p.classProbes {
		thr, err := c.probeClassSwitch(pr)
		if err != nil {
			return fmt.Errorf("mpi: autotune switch probe %s(%d,%d): %w", pr.Class, pr.A, pr.B, err)
		}
		if c.myRank == pr.A && pr.A != 0 {
			if err := c.Send(Int64Bytes([]int64{int64(thr)}), 1, Int64, 0, tuneProbeTag); err != nil {
				return err
			}
		}
		if c.myRank == 0 {
			if pr.A != 0 {
				buf := make([]byte, 8)
				if _, err := c.Recv(buf, 1, Int64, pr.A, tuneProbeTag); err != nil {
					return err
				}
				thr = int(BytesInt64(buf)[0])
			}
			if thr > 0 {
				classThr[pr.Class] = thr
			}
		}
	}

	// Rank 0 turns winners into crossover brackets and broadcasts the
	// encoded table (collective rows, then per-class switch rows tagged
	// with negative kinds); everyone installs the same bytes.
	var enc []int64
	if c.myRank == 0 {
		tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
		for _, pr := range probes {
			tt.rows[pr.kind] = crossoverRows(tuneSizes, winners[pr.kind])
		}
		enc = encodeTuneTable(tt)
		for i, name := range deviceClassNames {
			if thr, ok := classThr[name]; ok {
				enc = append(enc, int64(-(i + 1)), int64(thr), 0)
			}
		}
	}
	nRows := make([]byte, 8)
	if c.myRank == 0 {
		copy(nRows, Int64Bytes([]int64{int64(len(enc))}))
	}
	if err := c.Bcast(nRows, 1, Int64, 0); err != nil {
		return err
	}
	total := int(BytesInt64(nRows)[0])
	buf := make([]byte, 8*total)
	if c.myRank == 0 {
		copy(buf, Int64Bytes(enc))
	}
	if total > 0 {
		if err := c.Bcast(buf, total, Int64, 0); err != nil {
			return err
		}
	}
	vals := BytesInt64(buf)
	c.p.tuned = decodeTuneTable(vals)
	for i := 0; i+2 < len(vals); i += 3 {
		if k := vals[i]; k < 0 {
			if idx := int(-k) - 1; idx < len(deviceClassNames) {
				c.p.installClassSwitch(deviceClassNames[idx], int(vals[i+1]))
			}
		}
	}
	// The sweep's own barriers/broadcasts resolved this communicator's
	// cache to nil; refresh it so the tuned table governs from the next
	// collective on.
	c.tt, c.ttSet = c.p.tuned, true
	return nil
}

// crossoverRows compresses per-size winners into brackets, placing each
// crossover at the geometric midpoint of the adjacent sweep sizes.
func crossoverRows(sizes []int, winners []collAlgo) []tuneRow {
	var rows []tuneRow
	for i, w := range winners {
		if len(rows) > 0 && rows[len(rows)-1].algo == w {
			continue
		}
		if len(rows) > 0 {
			rows[len(rows)-1].maxBytes = int(math.Sqrt(float64(sizes[i-1]) * float64(sizes[i])))
		}
		rows = append(rows, tuneRow{maxBytes: math.MaxInt, algo: w})
	}
	return rows
}

// encodeTuneTable flattens a table into (kind, maxBytes, algo) triples in
// deterministic kind order for the install broadcast.
func encodeTuneTable(tt *tuneTable) []int64 {
	var enc []int64
	for k := collKind(0); k < numCollKinds; k++ {
		for _, r := range tt.rows[k] {
			enc = append(enc, int64(k), int64(r.maxBytes), int64(r.algo))
		}
	}
	return enc
}

func decodeTuneTable(enc []int64) *tuneTable {
	tt := &tuneTable{rows: make(map[collKind][]tuneRow)}
	for i := 0; i+2 < len(enc); i += 3 {
		k := collKind(enc[i])
		if k < 0 || k >= numCollKinds {
			continue // per-class switch row (negative kind) or junk
		}
		tt.rows[k] = append(tt.rows[k], tuneRow{maxBytes: int(enc[i+1]), algo: collAlgo(enc[i+2])})
	}
	return tt
}

// tuneProbeTag is the reserved message tag of the switch-point probe
// traffic (the ping-pongs and the verdict ship to rank 0); Autotune runs
// before the rank main, so it cannot collide with application tags.
const tuneProbeTag = 0x7357

// probeClassSwitch runs one device class's eager/rendez-vous probe. All
// ranks step through the same barrier sequence; ranks pr.A and pr.B
// additionally time reps ping-pongs per (size, mode), forcing the mode
// through the device's per-class threshold override. Only pr.A returns a
// non-zero threshold (0 also when the device toward the peer does not
// accept per-class tuning and the probe is meaningless).
func (c *Comm) probeClassSwitch(pr ClassProbe) (int, error) {
	mine := c.myRank == pr.A || c.myRank == pr.B
	peer := pr.B
	if c.myRank == pr.B {
		peer = pr.A
	}
	var tuner adi.ClassTuner
	if mine {
		if ct, ok := c.p.route(peer).(adi.ClassTuner); ok {
			tuner = ct
		}
	}
	const reps = 2
	var eagerT, rndvT []vtime.Duration
	for _, size := range switchTuneSizes {
		for mode := 0; mode < 2; mode++ {
			if err := c.Barrier(); err != nil {
				return 0, err
			}
			if tuner != nil {
				if mode == 0 {
					tuner.SetClassSwitchPoint(pr.Class, size) // payload == threshold: eager
				} else {
					tuner.SetClassSwitchPoint(pr.Class, 1) // force rendez-vous
				}
			}
			var dt vtime.Duration
			if mine && tuner != nil {
				buf := make([]byte, size)
				start := c.p.M.S.Now()
				for i := 0; i < reps; i++ {
					var err error
					if c.myRank == pr.A {
						err = c.Send(buf, size, Byte, peer, tuneProbeTag)
						if err == nil {
							_, err = c.Recv(buf, size, Byte, peer, tuneProbeTag)
						}
					} else {
						_, err = c.Recv(buf, size, Byte, peer, tuneProbeTag)
						if err == nil {
							err = c.Send(buf, size, Byte, peer, tuneProbeTag)
						}
					}
					if err != nil {
						return 0, err
					}
				}
				dt = c.p.M.S.Now().Sub(start)
				tuner.SetClassSwitchPoint(pr.Class, 0) // drop the probe override
			}
			if err := c.Barrier(); err != nil {
				return 0, err
			}
			if c.myRank == pr.A && tuner != nil {
				if mode == 0 {
					eagerT = append(eagerT, dt)
				} else {
					rndvT = append(rndvT, dt)
				}
			}
		}
	}
	if c.myRank != pr.A || tuner == nil {
		return 0, nil
	}
	return electSwitchThreshold(switchTuneSizes, eagerT, rndvT), nil
}

// electSwitchThreshold places the measured eager->rendez-vous crossover:
// the geometric midpoint between the last eager-winning and the first
// rendez-vous-winning probe size; below the sweep when rendez-vous wins
// everywhere, above it when eager does.
func electSwitchThreshold(sizes []int, eagerT, rndvT []vtime.Duration) int {
	for i := range sizes {
		if rndvT[i] < eagerT[i] {
			if i == 0 {
				return sizes[0] / 2
			}
			return int(math.Sqrt(float64(sizes[i-1]) * float64(sizes[i])))
		}
	}
	return 2 * sizes[len(sizes)-1]
}
