package mpi

import "fmt"

// Internal collective tags; collectives run on the communicator's paired
// context (ctx+1), so they never collide with user point-to-point traffic.
const (
	tagBarrier = iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagScan
	// Hierarchical (two-level) collective phases use their own tags so a
	// leader's backbone exchange can never be matched by an intra-cluster
	// receive of the same operation (see hcoll.go).
	tagHBarrier
	tagHBcast
	tagHReduce
	tagHGather  // member -> cluster leader
	tagHGatherB // cluster leader -> root (staged bundle)
	tagHAllgather
)

func (c *Comm) collCtx() int { return c.ctx + 1 }

// Barrier blocks until all members have entered it (MPI_Barrier).
// Dispatches to the two-level fan-in/fan-out tree on multi-cluster
// topologies, otherwise to the flat dissemination algorithm.
func (c *Comm) Barrier() error {
	if err := c.checkLive("Barrier"); err != nil {
		return err
	}
	if c.chooseAlgo(kindBarrier, 0) != algoFlat {
		return c.barrierHier()
	}
	return c.barrierFlat()
}

// barrierFlat is the dissemination algorithm: ceil(log2 n) rounds of
// 0-byte exchanges.
func (c *Comm) barrierFlat() error {
	n := c.Size()
	for k := 1; k < n; k <<= 1 {
		to := (c.myRank + k) % n
		from := (c.myRank - k + n) % n
		if err := c.sendRaw(nil, to, tagBarrier, c.collCtx()); err != nil {
			return err
		}
		if _, err := c.recvRaw(nil, from, tagBarrier, c.collCtx()); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts count elements of dt from root to every member
// (MPI_Bcast). Dispatches through the tuning table: two-level tree on
// multi-cluster topologies (pipelined in segments for large payloads),
// flat binomial tree otherwise.
func (c *Comm) Bcast(buf []byte, count int, dt Datatype, root int) error {
	if err := c.checkLive("Bcast"); err != nil {
		return err
	}
	if err := c.checkPeer("Bcast", root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	switch c.chooseAlgo(kindBcast, count*dt.Size()) {
	case algoHier:
		return c.bcastHier(buf, count, dt, root, 0)
	case algoHierSegmented:
		return c.bcastHier(buf, count, dt, root, c.segmentBytes())
	}
	return c.bcastFlat(buf, count, dt, root)
}

// bcastFlat is the topology-blind binomial tree: latency O(log n).
func (c *Comm) bcastFlat(buf []byte, count int, dt Datatype, root int) error {
	n := c.Size()
	rel := (c.myRank - root + n) % n
	var data []byte
	if rel == 0 {
		data = PackBuf(buf, count, dt)
	} else {
		data = make([]byte, count*dt.Size())
	}

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			if _, err := c.recvRaw(data, src, tagBcast, c.collCtx()); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			if err := c.sendRaw(data, dst, tagBcast, c.collCtx()); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	if rel != 0 {
		c.p.M.Compute(c.p.memTime(len(data)))
		UnpackBuf(buf, count, dt, data)
	}
	return nil
}

// Reduce combines count elements from every member's sendBuf with op,
// leaving the result in root's recvBuf (MPI_Reduce). Dispatches to the
// two-level tree on multi-cluster topologies, flat binomial otherwise.
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	if err := c.checkLive("Reduce"); err != nil {
		return err
	}
	if err := c.checkPeer("Reduce", root); err != nil {
		return err
	}
	if c.chooseAlgo(kindReduce, count*dt.Size()) != algoFlat {
		return c.reduceHier(sendBuf, recvBuf, count, dt, op, root)
	}
	return c.reduceFlat(sendBuf, recvBuf, count, dt, op, root)
}

// reduceFlat is the topology-blind binomial reduction tree.
func (c *Comm) reduceFlat(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	n := c.Size()
	acc := make([]byte, count*dt.Size())
	copy(acc, PackBuf(sendBuf, count, dt))
	c.p.M.Compute(c.p.memTime(len(acc)))

	rel := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			dst := (rel - mask + root) % n
			if err := c.sendRaw(acc, dst, tagReduce, c.collCtx()); err != nil {
				return err
			}
			break
		}
		if rel+mask < n {
			src := (rel + mask + root) % n
			part := make([]byte, len(acc))
			if _, err := c.recvRaw(part, src, tagReduce, c.collCtx()); err != nil {
				return err
			}
			if err := op.Apply(acc, part, count, dt); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	if c.myRank == root {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast (MPI_Allreduce). On
// multi-cluster topologies both halves run two-level, so the backbone
// carries one reduced vector per cluster in each direction.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive("Allreduce"); err != nil {
		return err
	}
	if c.chooseAlgo(kindAllreduce, count*dt.Size()) != algoFlat {
		return c.allreduceHier(sendBuf, recvBuf, count, dt, op)
	}
	if err := c.reduceFlat(sendBuf, recvBuf, count, dt, op, 0); err != nil {
		return err
	}
	return c.bcastFlat(recvBuf, count, dt, 0)
}

// Gather collects count elements from every member into root's recvBuf,
// ordered by rank (MPI_Gather). recvBuf needs size*count elements at root.
// On multi-cluster topologies small gathers stage through cluster leaders
// so the backbone carries one bundle per cluster instead of one message
// per rank; large gathers fall back to the flat path (the staging copy
// outweighs the saved message setups).
func (c *Comm) Gather(sendBuf []byte, recvBuf []byte, count int, dt Datatype, root int) error {
	if err := c.checkLive("Gather"); err != nil {
		return err
	}
	if err := c.checkPeer("Gather", root); err != nil {
		return err
	}
	if c.chooseAlgo(kindGather, count*dt.Size()) != algoFlat {
		return c.gatherHier(sendBuf, recvBuf, count, dt, root)
	}
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = count
	}
	return c.Gatherv(sendBuf, count, recvBuf, counts, nil, dt, root)
}

// Gatherv is the variable-count gather (MPI_Gatherv). displs are element
// offsets into recvBuf per rank; nil means dense packing in rank order.
func (c *Comm) Gatherv(sendBuf []byte, sendCount int, recvBuf []byte, counts, displs []int, dt Datatype, root int) error {
	if err := c.checkLive("Gatherv"); err != nil {
		return err
	}
	if err := c.checkPeer("Gatherv", root); err != nil {
		return err
	}
	if c.myRank != root {
		data := PackBuf(sendBuf, sendCount, dt)
		return c.sendRaw(data, root, tagGather, c.collCtx())
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("mpi: Gatherv: %d counts for %d ranks", len(counts), c.Size())
	}
	if displs == nil {
		displs = make([]int, c.Size())
		off := 0
		for i, n := range counts {
			displs[i] = off
			off += n
		}
	}
	ex := dt.Extent()
	for r := 0; r < c.Size(); r++ {
		dst := recvBuf[displs[r]*ex:]
		if r == root {
			data := PackBuf(sendBuf, sendCount, dt)
			c.p.M.Compute(c.p.memTime(len(data)))
			UnpackBuf(dst, counts[r], dt, data)
			continue
		}
		tmp := make([]byte, counts[r]*dt.Size())
		if _, err := c.recvRaw(tmp, r, tagGather, c.collCtx()); err != nil {
			return err
		}
		UnpackBuf(dst, counts[r], dt, tmp)
	}
	return nil
}

// Scatter distributes count elements per rank from root's sendBuf
// (MPI_Scatter).
func (c *Comm) Scatter(sendBuf []byte, recvBuf []byte, count int, dt Datatype, root int) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = count
	}
	return c.Scatterv(sendBuf, counts, nil, recvBuf, count, dt, root)
}

// Scatterv is the variable-count scatter (MPI_Scatterv).
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []int, recvBuf []byte, recvCount int, dt Datatype, root int) error {
	if err := c.checkLive("Scatterv"); err != nil {
		return err
	}
	if err := c.checkPeer("Scatterv", root); err != nil {
		return err
	}
	if c.myRank != root {
		tmp := make([]byte, recvCount*dt.Size())
		if _, err := c.recvRaw(tmp, root, tagScatter, c.collCtx()); err != nil {
			return err
		}
		c.p.M.Compute(c.p.memTime(len(tmp)))
		UnpackBuf(recvBuf, recvCount, dt, tmp)
		return nil
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("mpi: Scatterv: %d counts for %d ranks", len(counts), c.Size())
	}
	if displs == nil {
		displs = make([]int, c.Size())
		off := 0
		for i, n := range counts {
			displs[i] = off
			off += n
		}
	}
	ex := dt.Extent()
	for r := 0; r < c.Size(); r++ {
		chunk := PackBuf(sendBuf[displs[r]*ex:], counts[r], dt)
		if r == root {
			c.p.M.Compute(c.p.memTime(len(chunk)))
			UnpackBuf(recvBuf, recvCount, dt, chunk)
			continue
		}
		if err := c.sendRaw(chunk, r, tagScatter, c.collCtx()); err != nil {
			return err
		}
	}
	return nil
}

// Allgather gathers count elements from each member into every member's
// recvBuf in rank order (MPI_Allgather). Dispatches to leader staging on
// multi-cluster topologies; otherwise the flat ring algorithm, whose n-1
// steps each cross the backbone once per inter-cluster ring edge.
func (c *Comm) Allgather(sendBuf []byte, recvBuf []byte, count int, dt Datatype) error {
	if err := c.checkLive("Allgather"); err != nil {
		return err
	}
	if c.chooseAlgo(kindAllgather, count*dt.Size()) != algoFlat {
		return c.allgatherHier(sendBuf, recvBuf, count, dt)
	}
	return c.allgatherFlat(sendBuf, recvBuf, count, dt)
}

// allgatherFlat is the ring algorithm: n-1 steps, each forwarding the
// block received in the previous step.
func (c *Comm) allgatherFlat(sendBuf []byte, recvBuf []byte, count int, dt Datatype) error {
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()

	// Place my own block.
	mine := PackBuf(sendBuf, count, dt)
	c.p.M.Compute(c.p.memTime(sz))
	UnpackBuf(recvBuf[c.myRank*count*ex:], count, dt, mine)
	if n == 1 {
		return nil
	}

	right := (c.myRank + 1) % n
	left := (c.myRank - 1 + n) % n
	cur := make([]byte, sz)
	copy(cur, mine)
	for step := 0; step < n-1; step++ {
		incoming := make([]byte, sz)
		rreq, err := c.irecvRaw(incoming, left, tagAllgather)
		if err != nil {
			return err
		}
		if err := c.sendRaw(cur, right, tagAllgather, c.collCtx()); err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		owner := (c.myRank - step - 1 + 2*n) % n
		UnpackBuf(recvBuf[owner*count*ex:], count, dt, incoming)
		cur = incoming
	}
	return nil
}

// irecvRaw posts a non-blocking raw receive on the collective context.
func (c *Comm) irecvRaw(buf []byte, src, tag int) (*Request, error) {
	return c.irecvOn(buf, c.group[src], tag, c.collCtx())
}

// Alltoall sends a distinct count-element block to every member and
// receives one from each (MPI_Alltoall). Pairwise rotation: n steps.
func (c *Comm) Alltoall(sendBuf []byte, recvBuf []byte, count int, dt Datatype) error {
	if err := c.checkLive("Alltoall"); err != nil {
		return err
	}
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	for step := 0; step < n; step++ {
		to := (c.myRank + step) % n
		from := (c.myRank - step + n) % n
		out := PackBuf(sendBuf[to*count*ex:], count, dt)
		if to == c.myRank {
			c.p.M.Compute(c.p.memTime(sz))
			UnpackBuf(recvBuf[c.myRank*count*ex:], count, dt, out)
			continue
		}
		in := make([]byte, sz)
		rreq, err := c.irecvOn(in, c.group[from], tagAlltoall, c.collCtx())
		if err != nil {
			return err
		}
		if err := c.sendRaw(out, to, tagAlltoall, c.collCtx()); err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		UnpackBuf(recvBuf[from*count*ex:], count, dt, in)
	}
	return nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(x_0, ..., x_r) (MPI_Scan). Linear chain.
func (c *Comm) Scan(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive("Scan"); err != nil {
		return err
	}
	acc := make([]byte, count*dt.Size())
	copy(acc, PackBuf(sendBuf, count, dt))
	c.p.M.Compute(c.p.memTime(len(acc)))
	if c.myRank > 0 {
		prefix := make([]byte, len(acc))
		if _, err := c.recvRaw(prefix, c.myRank-1, tagScan, c.collCtx()); err != nil {
			return err
		}
		if err := op.Apply(acc, prefix, count, dt); err != nil {
			return err
		}
	}
	if c.myRank < c.Size()-1 {
		if err := c.sendRaw(acc, c.myRank+1, tagScan, c.collCtx()); err != nil {
			return err
		}
	}
	UnpackBuf(recvBuf, count, dt, acc)
	return nil
}
