package mpi

import "fmt"

// Static collective tags for the operations that still run as direct call
// trees (variable-count gather/scatter, scan). Everything else compiles
// into a schedule (schedule.go) whose messages carry a unique per-operation
// tag at tagNBCBase and above; collectives run on the communicator's
// paired context (ctx+1), so neither can collide with user point-to-point
// traffic.
const (
	tagGather = iota
	tagScatter
	tagScan
)

func (c *Comm) collCtx() int { return c.ctx + 1 }

// Every blocking collective below is its nonblocking twin compiled and
// immediately waited on: the schedule compilers in this file (flat) and
// hcoll.go (two-level) hold the only algorithm bodies, so a new algorithm
// is a new compiler and nothing else.

// Barrier blocks until all members have entered it (MPI_Barrier).
func (c *Comm) Barrier() error {
	req, err := c.Ibarrier()
	if err != nil {
		return err
	}
	return req.Wait()
}

// Bcast broadcasts count elements of dt from root to every member
// (MPI_Bcast). The tuning table picks the two-level tree (pipelined in
// segments for large payloads) on multi-cluster topologies, the flat
// binomial tree otherwise.
func (c *Comm) Bcast(buf []byte, count int, dt Datatype, root int) error {
	req, err := c.Ibcast(buf, count, dt, root)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Reduce combines count elements from every member's sendBuf with op,
// leaving the result in root's recvBuf (MPI_Reduce).
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) error {
	req, err := c.Ireduce(sendBuf, recvBuf, count, dt, op, root)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Allreduce is Reduce to rank 0 chained with Bcast (MPI_Allreduce),
// compiled as one schedule.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	req, err := c.Iallreduce(sendBuf, recvBuf, count, dt, op)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Gather collects count elements from every member into root's recvBuf,
// ordered by rank (MPI_Gather). recvBuf needs size*count elements at root.
func (c *Comm) Gather(sendBuf []byte, recvBuf []byte, count int, dt Datatype, root int) error {
	req, err := c.Igather(sendBuf, recvBuf, count, dt, root)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Allgather gathers count elements from each member into every member's
// recvBuf in rank order (MPI_Allgather).
func (c *Comm) Allgather(sendBuf []byte, recvBuf []byte, count int, dt Datatype) error {
	req, err := c.Iallgather(sendBuf, recvBuf, count, dt)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Alltoall sends a distinct count-element block to every member and
// receives one from each (MPI_Alltoall). Flat pairwise rotation, or the
// two-level leader-bundled exchange on multi-cluster topologies.
func (c *Comm) Alltoall(sendBuf []byte, recvBuf []byte, count int, dt Datatype) error {
	req, err := c.Ialltoall(sendBuf, recvBuf, count, dt)
	if err != nil {
		return err
	}
	return req.Wait()
}

// ---- Flat (topology-blind) schedule compilers ----

// compileBarrierFlat is the dissemination algorithm: ceil(log2 n) rounds
// of 0-byte exchanges.
func (c *Comm) compileBarrierFlat() *schedule {
	n := c.Size()
	b := newSched("barrier")
	for k := 1; k < n; k <<= 1 {
		b.recv((c.myRank-k+n)%n, nil)
		b.send((c.myRank+k)%n, nil)
		b.endRound()
	}
	return b.build(nil)
}

// bcastFlatRounds appends the binomial-tree broadcast of data (already
// populated at the root by earlier rounds or at compile time) rooted at
// root: one receive round from the parent, then the fan-out sends in
// largest-stride-first order.
func (c *Comm) bcastFlatRounds(b *schedBuilder, data []byte, root int) {
	n := c.Size()
	rel := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			b.recv((rel-mask+root)%n, data)
			b.endRound()
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			b.send((rel+mask+root)%n, data)
		}
		mask >>= 1
	}
	b.endRound()
}

// compileBcastFlat: the topology-blind binomial tree, latency O(log n).
func (c *Comm) compileBcastFlat(buf []byte, count int, dt Datatype, root int) *schedule {
	var data []byte
	if c.myRank == root {
		data = PackBuf(buf, count, dt)
	} else {
		data = make([]byte, count*dt.Size())
	}
	b := newSched("bcast")
	c.bcastFlatRounds(b, data, root)
	return b.build(func() {
		if c.myRank != root {
			c.p.M.Compute(c.p.memTime(len(data)))
			UnpackBuf(buf, count, dt, data)
		}
	})
}

// reduceFlatRounds appends the binomial reduction tree rooted at root and
// returns the accumulator buffer, which holds the full reduction at the
// root once the rounds have run.
func (c *Comm) reduceFlatRounds(b *schedBuilder, sendBuf []byte, count int, dt Datatype, op Op, root int) []byte {
	n := c.Size()
	acc := make([]byte, count*dt.Size())
	b.copyStep(acc, PackBuf(sendBuf, count, dt))
	b.endRound()
	rel := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			b.send((rel-mask+root)%n, acc)
			b.endRound()
			break
		}
		if rel+mask < n {
			part := make([]byte, len(acc))
			b.recv((rel+mask+root)%n, part)
			b.reduce(acc, part, count, dt, op)
			b.endRound()
		}
		mask <<= 1
	}
	return acc
}

// compileReduceFlat: the topology-blind binomial reduction tree.
func (c *Comm) compileReduceFlat(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) *schedule {
	b := newSched("reduce")
	acc := c.reduceFlatRounds(b, sendBuf, count, dt, op, root)
	return b.build(func() {
		if c.myRank == root {
			c.p.M.Compute(c.p.memTime(len(acc)))
			UnpackBuf(recvBuf, count, dt, acc)
		}
	})
}

// compileAllreduceFlat chains the flat reduce-to-0 rounds with the flat
// broadcast-from-0 rounds over one shared accumulator.
func (c *Comm) compileAllreduceFlat(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) *schedule {
	b := newSched("allreduce")
	acc := c.reduceFlatRounds(b, sendBuf, count, dt, op, 0)
	c.bcastFlatRounds(b, acc, 0)
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	})
}

// compileGatherFlat: every member ships its block straight to the root.
func (c *Comm) compileGatherFlat(sendBuf, recvBuf []byte, count int, dt Datatype, root int) *schedule {
	sz := count * dt.Size()
	ex := dt.Extent()
	mine := PackBuf(sendBuf, count, dt)
	b := newSched("gather")
	if c.myRank != root {
		b.send(root, mine)
		return b.build(nil)
	}
	slots := make([][]byte, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		slots[r] = make([]byte, sz)
		b.recv(r, slots[r])
	}
	b.endRound()
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(sz))
		UnpackBuf(recvBuf[root*count*ex:], count, dt, mine)
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			UnpackBuf(recvBuf[r*count*ex:], count, dt, slots[r])
		}
	})
}

// compileAllgatherFlat is the ring algorithm: n-1 rounds, each forwarding
// the block received in the previous round.
func (c *Comm) compileAllgatherFlat(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	mine := PackBuf(sendBuf, count, dt)
	own := make([]byte, sz)
	right := (c.myRank + 1) % n
	left := (c.myRank - 1 + n) % n

	b := newSched("allgather")
	b.copyStep(own, mine)
	b.endRound()
	incoming := make([][]byte, n-1)
	cur := own
	for s := 0; s < n-1; s++ {
		incoming[s] = make([]byte, sz)
		b.recv(left, incoming[s])
		b.send(right, cur)
		b.endRound()
		cur = incoming[s]
	}
	return b.build(func() {
		UnpackBuf(recvBuf[c.myRank*count*ex:], count, dt, own)
		for s := 0; s < n-1; s++ {
			owner := (c.myRank - s - 1 + 2*n) % n
			UnpackBuf(recvBuf[owner*count*ex:], count, dt, incoming[s])
		}
	})
}

// compileAlltoallFlat is the pairwise rotation: n rounds, exchanging with
// partners at increasing rank distance.
func (c *Comm) compileAlltoallFlat(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	b := newSched("alltoall")
	selfStage := make([]byte, sz)
	in := make([][]byte, n)
	for step := 0; step < n; step++ {
		to := (c.myRank + step) % n
		from := (c.myRank - step + n) % n
		out := PackBuf(sendBuf[to*count*ex:], count, dt)
		if to == c.myRank {
			b.copyStep(selfStage, out)
			b.endRound()
			continue
		}
		in[from] = make([]byte, sz)
		b.recv(from, in[from])
		b.send(to, out)
		b.endRound()
	}
	return b.build(func() {
		UnpackBuf(recvBuf[c.myRank*count*ex:], count, dt, selfStage)
		for from := 0; from < n; from++ {
			if from == c.myRank {
				continue
			}
			UnpackBuf(recvBuf[from*count*ex:], count, dt, in[from])
		}
	})
}

// ---- Bandwidth-optimal ring compilers ----
//
// The binomial trees above move the full vector O(log n) times per rank;
// the ring algorithms move 2·(n−1)/n of it, at the price of O(n) latency
// rounds — the classic large-vector tradeoff (MPICH's ring allreduce,
// Rabenseifner's reduce-scatter + allgather). Both phases are written as
// round helpers over an explicit member list so the two-level compilers in
// hcoll.go can run the same rings inside a cluster.

// splitBounds partitions count elements into m contiguous near-equal
// blocks: block i spans elements [bounds[i], bounds[i+1]).
func splitBounds(count, m int) []int {
	bounds := make([]int, m+1)
	for i := 0; i <= m; i++ {
		bounds[i] = i * count / m
	}
	return bounds
}

// ringRSRounds appends the ring reduce-scatter over members: m−1 rounds,
// each forwarding one partially reduced block to the right neighbor while
// folding the block arriving from the left into acc (the packed full
// vector, pre-loaded with this rank's contribution). Afterwards acc's
// block myPos holds the complete reduction over all members. The block
// indexing is shifted so each member finishes owning its *own* position's
// block, which is what ReduceScatter semantics need. Requires a
// commutative op (all predefined ops are).
func (c *Comm) ringRSRounds(b *schedBuilder, members []int, myPos int, acc []byte, bounds []int, dt Datatype, op Op) {
	m := len(members)
	if m < 2 {
		return
	}
	es := dt.Size()
	right := members[(myPos+1)%m]
	left := members[(myPos-1+m)%m]
	blk := func(i int) []byte { return acc[bounds[i]*es : bounds[i+1]*es] }
	for s := 0; s < m-1; s++ {
		sendIdx := (myPos - s - 1 + 2*m) % m
		recvIdx := (myPos - s - 2 + 2*m) % m
		part := make([]byte, len(blk(recvIdx)))
		b.recv(left, part)
		b.send(right, blk(sendIdx))
		b.reduce(blk(recvIdx), part, bounds[recvIdx+1]-bounds[recvIdx], dt, op)
		b.endRound()
	}
}

// ringAGRounds appends the ring allgather over members: m−1 rounds
// circulating the completed blocks, starting from each member owning block
// myPos (the ring reduce-scatter postcondition). Receives land directly in
// data's block slots.
func (c *Comm) ringAGRounds(b *schedBuilder, members []int, myPos int, data []byte, bounds []int, es int) {
	m := len(members)
	if m < 2 {
		return
	}
	right := members[(myPos+1)%m]
	left := members[(myPos-1+m)%m]
	blk := func(i int) []byte { return data[bounds[i]*es : bounds[i+1]*es] }
	for s := 0; s < m-1; s++ {
		sendIdx := (myPos - s + m) % m
		recvIdx := (myPos - s - 1 + 2*m) % m
		b.recv(left, blk(recvIdx))
		b.send(right, blk(sendIdx))
		b.endRound()
	}
}

// compileAllreduceRing is the flat bandwidth-optimal ring allreduce: ring
// reduce-scatter then ring allgather, 2·(n−1) latency rounds but only
// 2·(n−1)/n of the vector on each link.
func (c *Comm) compileAllreduceRing(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) *schedule {
	n := c.Size()
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	acc := make([]byte, count*dt.Size())
	bounds := splitBounds(count, n)
	b := newSched("allreduce.ring")
	b.copyStep(acc, PackBuf(sendBuf, count, dt))
	b.endRound()
	c.ringRSRounds(b, members, c.myRank, acc, bounds, dt, op)
	c.ringAGRounds(b, members, c.myRank, acc, bounds, dt.Size())
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	})
}

// compileReduceScatterRing is the flat ring reduce-scatter: after n−1
// rounds each rank owns its fully reduced block, with (n−1)/n of the
// vector moved per link — no root bottleneck, no full-vector broadcast.
func (c *Comm) compileReduceScatterRing(sendBuf, recvBuf []byte, countPerRank int, dt Datatype, op Op) *schedule {
	n := c.Size()
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	total := countPerRank * n
	es := dt.Size()
	acc := make([]byte, total*es)
	bounds := splitBounds(total, n) // equal blocks: bounds[i] = i*countPerRank
	b := newSched("redscat.ring")
	b.copyStep(acc, PackBuf(sendBuf, total, dt))
	b.endRound()
	c.ringRSRounds(b, members, c.myRank, acc, bounds, dt, op)
	mine := acc[bounds[c.myRank]*es : bounds[c.myRank+1]*es]
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(mine)))
		UnpackBuf(recvBuf, countPerRank, dt, mine)
	})
}

// ---- Remaining direct (non-scheduled) collectives ----

// Gatherv is the variable-count gather (MPI_Gatherv). displs are element
// offsets into recvBuf per rank; nil means dense packing in rank order.
func (c *Comm) Gatherv(sendBuf []byte, sendCount int, recvBuf []byte, counts, displs []int, dt Datatype, root int) error {
	if err := c.checkLive("Gatherv"); err != nil {
		return err
	}
	if err := c.checkPeer("Gatherv", root); err != nil {
		return err
	}
	if c.myRank != root {
		data := PackBuf(sendBuf, sendCount, dt)
		return c.sendRaw(data, root, tagGather, c.collCtx())
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("mpi: Gatherv: %d counts for %d ranks", len(counts), c.Size())
	}
	if displs == nil {
		displs = make([]int, c.Size())
		off := 0
		for i, n := range counts {
			displs[i] = off
			off += n
		}
	}
	ex := dt.Extent()
	for r := 0; r < c.Size(); r++ {
		dst := recvBuf[displs[r]*ex:]
		if r == root {
			data := PackBuf(sendBuf, sendCount, dt)
			c.p.M.Compute(c.p.memTime(len(data)))
			UnpackBuf(dst, counts[r], dt, data)
			continue
		}
		tmp := make([]byte, counts[r]*dt.Size())
		if _, err := c.recvRaw(tmp, r, tagGather, c.collCtx()); err != nil {
			return err
		}
		UnpackBuf(dst, counts[r], dt, tmp)
	}
	return nil
}

// Scatter distributes count elements per rank from root's sendBuf
// (MPI_Scatter).
func (c *Comm) Scatter(sendBuf []byte, recvBuf []byte, count int, dt Datatype, root int) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = count
	}
	return c.Scatterv(sendBuf, counts, nil, recvBuf, count, dt, root)
}

// Scatterv is the variable-count scatter (MPI_Scatterv).
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []int, recvBuf []byte, recvCount int, dt Datatype, root int) error {
	if err := c.checkLive("Scatterv"); err != nil {
		return err
	}
	if err := c.checkPeer("Scatterv", root); err != nil {
		return err
	}
	if c.myRank != root {
		tmp := make([]byte, recvCount*dt.Size())
		if _, err := c.recvRaw(tmp, root, tagScatter, c.collCtx()); err != nil {
			return err
		}
		c.p.M.Compute(c.p.memTime(len(tmp)))
		UnpackBuf(recvBuf, recvCount, dt, tmp)
		return nil
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("mpi: Scatterv: %d counts for %d ranks", len(counts), c.Size())
	}
	if displs == nil {
		displs = make([]int, c.Size())
		off := 0
		for i, n := range counts {
			displs[i] = off
			off += n
		}
	}
	ex := dt.Extent()
	for r := 0; r < c.Size(); r++ {
		chunk := PackBuf(sendBuf[displs[r]*ex:], counts[r], dt)
		if r == root {
			c.p.M.Compute(c.p.memTime(len(chunk)))
			UnpackBuf(recvBuf, recvCount, dt, chunk)
			continue
		}
		if err := c.sendRaw(chunk, r, tagScatter, c.collCtx()); err != nil {
			return err
		}
	}
	return nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(x_0, ..., x_r) (MPI_Scan). Linear chain.
func (c *Comm) Scan(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkLive("Scan"); err != nil {
		return err
	}
	acc := make([]byte, count*dt.Size())
	copy(acc, PackBuf(sendBuf, count, dt))
	c.p.M.Compute(c.p.memTime(len(acc)))
	if c.myRank > 0 {
		prefix := make([]byte, len(acc))
		if _, err := c.recvRaw(prefix, c.myRank-1, tagScan, c.collCtx()); err != nil {
			return err
		}
		if err := op.Apply(acc, prefix, count, dt); err != nil {
			return err
		}
	}
	if c.myRank < c.Size()-1 {
		if err := c.sendRaw(acc, c.myRank+1, tagScan, c.collCtx()); err != nil {
			return err
		}
	}
	UnpackBuf(recvBuf, count, dt, acc)
	return nil
}
