// Nonblocking collectives (the Icoll API) and the per-communicator
// progress engine that executes compiled schedules.
//
// Each Icoll call compiles its algorithm into a schedule (schedule.go),
// assigns it the next tag in the communicator's collective sequence and
// hands it to the engine, which runs submitted schedules in order on a
// dedicated Marcel thread. Because Marcel threads are cooperative, the
// engine makes progress exactly when the application thread blocks,
// computes or yields — the paper's decoupling of communication progress
// from the application thread, applied to collectives. The application
// gets a CollRequest and overlaps computation until Wait/Test.
//
// MPI requires every member to issue collectives on a communicator in the
// same order, so the per-communicator sequence numbers agree across ranks
// and in-order execution can never deadlock (it is equivalent to the
// blocking call sequence). The unique per-operation tag keeps messages of
// operation k+1 — possibly already arriving from a faster peer — from
// matching operation k's receives.
package mpi

import (
	"fmt"

	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// tagNBCBase offsets schedule tags past the static collective tags
// (Gatherv/Scatterv/Scan) that share the collective context.
const tagNBCBase = 1 << 10

// CollRequest is an outstanding nonblocking collective (MPI_Request for
// the MPI-3 I-collectives).
type CollRequest struct {
	c    *Comm
	sch  *schedule
	done *vtime.Event
	err  error
}

// Wait blocks until the collective completes (MPI_Wait).
func (r *CollRequest) Wait() error {
	r.done.Wait()
	return r.err
}

// Test reports completion without blocking indefinitely (MPI_Test). Like
// MPICH's request polling it is also a progress call: when the operation
// is still in flight the caller sleeps one poll quantum of virtual time,
// which hands the cooperative CPU to the engine thread — a Test poll loop
// therefore drives the schedule instead of livelocking the scheduler.
func (r *CollRequest) Test() (bool, error) {
	if !r.done.Fired() {
		r.c.p.M.Sleep(vtime.Microsecond)
		if !r.done.Fired() {
			return false, nil
		}
	}
	return true, r.err
}

// collEngine is a communicator's collective progress state: the sequence
// allocator and the queue of submitted-but-unfinished schedules.
type collEngine struct {
	seq     int
	queue   []*collJob
	running bool
}

type collJob struct {
	req *CollRequest
	tag int
}

// submit queues a compiled schedule on the communicator's progress engine
// and returns its request. Purely local schedules (size-1 communicators)
// run inline. The engine thread is spawned on demand and exits when the
// queue drains, so idle communicators cost nothing.
func (c *Comm) submit(sch *schedule) *CollRequest {
	req := &CollRequest{c: c, sch: sch,
		done: vtime.NewEvent(c.p.M.S, "mpi.icoll."+sch.name)}
	if sch.local() {
		req.err = c.execSchedule(sch, 0)
		req.done.Fire()
		return req
	}
	if c.eng == nil {
		c.eng = &collEngine{}
	}
	eng := c.eng
	tag := tagNBCBase + eng.seq
	eng.queue = append(eng.queue, &collJob{req: req, tag: tag})
	eng.seq++
	if tr := c.p.tracer; tr != nil {
		tr.Instant(c.p.traceTrack, trace.KSched, "sched.submit", trace.Args{
			Seq: uint32(tag), Class: sch.name, Val: int64(len(eng.queue)),
		})
	}
	if !eng.running {
		eng.running = true
		c.p.M.Spawn("nbc.progress", func() { c.progress() })
	}
	return req
}

// progress drains the engine queue, executing schedules in submission
// order and firing each request's completion event.
func (c *Comm) progress() {
	eng := c.eng
	for len(eng.queue) > 0 {
		job := eng.queue[0]
		eng.queue = eng.queue[1:]
		job.req.err = c.execSchedule(job.req.sch, job.tag)
		job.req.done.Fire()
	}
	eng.running = false
}

// noRoot marks the rootless collectives in startColl calls; it is not a
// valid root value a caller could mean (checkPeer rejects every negative
// root on the rooted operations).
const noRoot = -1

// startColl is the shared Icoll entry: validity checks, then compile and
// submit. compile runs with the communicator checks already done.
func (c *Comm) startColl(op string, hasRoot bool, root int, compile func() *schedule) (*CollRequest, error) {
	if err := c.checkLive(op); err != nil {
		return nil, err
	}
	if hasRoot {
		if err := c.checkPeer(op, root); err != nil {
			return nil, err
		}
	}
	return c.submit(compile()), nil
}

// checkBuf validates a user buffer against the element count before
// compiling, so misuse fails synchronously at the call site instead of
// panicking later on the engine thread.
func (c *Comm) checkBuf(op, which string, buf []byte, elems int, dt Datatype) error {
	if need := elems * dt.Extent(); len(buf) < need {
		return fmt.Errorf("mpi: %s: %s buffer is %d bytes, need %d", op, which, len(buf), need)
	}
	return nil
}

// Ibarrier starts a nonblocking barrier (MPI_Ibarrier).
func (c *Comm) Ibarrier() (*CollRequest, error) {
	return c.startColl("Ibarrier", false, noRoot, func() *schedule {
		if c.chooseAlgo(kindBarrier, 0) != algoFlat {
			return c.compileBarrierHier()
		}
		return c.compileBarrierFlat()
	})
}

// Ibcast starts a nonblocking broadcast (MPI_Ibcast). The root's buf must
// stay untouched until completion; other ranks' buf is filled at Wait.
func (c *Comm) Ibcast(buf []byte, count int, dt Datatype, root int) (*CollRequest, error) {
	if err := c.checkBuf("Ibcast", "data", buf, count, dt); err != nil {
		return nil, err
	}
	return c.startColl("Ibcast", true, root, func() *schedule {
		switch c.chooseAlgo(kindBcast, count*dt.Size()) {
		case algoHier:
			return c.compileBcastHier(buf, count, dt, root, 0)
		case algoHierSegmented:
			return c.compileBcastHier(buf, count, dt, root, c.segmentBytes())
		case algoHierMulti:
			return c.compileBcastHierMulti(buf, count, dt, root)
		default: // algoFlat, and any choice without a bcast compiler
			return c.compileBcastFlat(buf, count, dt, root)
		}
	})
}

// Ireduce starts a nonblocking reduction to root (MPI_Ireduce).
func (c *Comm) Ireduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op, root int) (*CollRequest, error) {
	if err := c.checkBuf("Ireduce", "send", sendBuf, count, dt); err != nil {
		return nil, err
	}
	if c.myRank == root {
		if err := c.checkBuf("Ireduce", "recv", recvBuf, count, dt); err != nil {
			return nil, err
		}
	}
	return c.startColl("Ireduce", true, root, func() *schedule {
		if c.chooseAlgo(kindReduce, count*dt.Size()) != algoFlat {
			return c.compileReduceHier(sendBuf, recvBuf, count, dt, op, root)
		}
		return c.compileReduceFlat(sendBuf, recvBuf, count, dt, op, root)
	})
}

// Iallreduce starts a nonblocking all-reduce (MPI_Iallreduce): a reduce
// to rank 0 chained with a broadcast, compiled into one schedule.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) (*CollRequest, error) {
	if err := c.checkBuf("Iallreduce", "send", sendBuf, count, dt); err != nil {
		return nil, err
	}
	if err := c.checkBuf("Iallreduce", "recv", recvBuf, count, dt); err != nil {
		return nil, err
	}
	return c.startColl("Iallreduce", false, noRoot, func() *schedule {
		switch c.chooseAlgo(kindAllreduce, count*dt.Size()) {
		case algoHier:
			return c.compileAllreduceHier(sendBuf, recvBuf, count, dt, op)
		case algoRing:
			return c.compileAllreduceRing(sendBuf, recvBuf, count, dt, op)
		case algoRingHier:
			return c.compileAllreduceRingHier(sendBuf, recvBuf, count, dt, op)
		case algoHierMulti:
			return c.compileAllreduceHierMulti(sendBuf, recvBuf, count, dt, op)
		default: // algoFlat, and segmented choices sanitizeAlgo never emits here
			return c.compileAllreduceFlat(sendBuf, recvBuf, count, dt, op)
		}
	})
}

// IreduceScatter starts a nonblocking reduce-scatter with equal counts
// (MPI_Ireduce_scatter_block): the count-per-rank blocks of every member's
// sendBuf are combined with op and block r lands in rank r's recvBuf. Ring
// schedules throughout — the flat bandwidth-optimal ring, or the two-level
// variant (intra-cluster ring + leader bundle exchange) on multi-cluster
// topologies.
func (c *Comm) IreduceScatter(sendBuf, recvBuf []byte, countPerRank int, dt Datatype, op Op) (*CollRequest, error) {
	if err := c.checkBuf("IreduceScatter", "send", sendBuf, c.Size()*countPerRank, dt); err != nil {
		return nil, err
	}
	if err := c.checkBuf("IreduceScatter", "recv", recvBuf, countPerRank, dt); err != nil {
		return nil, err
	}
	return c.startColl("IreduceScatter", false, noRoot, func() *schedule {
		if c.chooseAlgo(kindReduceScatter, c.Size()*countPerRank*dt.Size()) == algoRingHier {
			return c.compileReduceScatterRingHier(sendBuf, recvBuf, countPerRank, dt, op)
		}
		return c.compileReduceScatterRing(sendBuf, recvBuf, countPerRank, dt, op)
	})
}

// Igather starts a nonblocking gather to root (MPI_Igather).
func (c *Comm) Igather(sendBuf, recvBuf []byte, count int, dt Datatype, root int) (*CollRequest, error) {
	if err := c.checkBuf("Igather", "send", sendBuf, count, dt); err != nil {
		return nil, err
	}
	if c.myRank == root {
		if err := c.checkBuf("Igather", "recv", recvBuf, c.Size()*count, dt); err != nil {
			return nil, err
		}
	}
	return c.startColl("Igather", true, root, func() *schedule {
		if c.chooseAlgo(kindGather, count*dt.Size()) != algoFlat {
			return c.compileGatherHier(sendBuf, recvBuf, count, dt, root)
		}
		return c.compileGatherFlat(sendBuf, recvBuf, count, dt, root)
	})
}

// Iallgather starts a nonblocking all-gather (MPI_Iallgather).
func (c *Comm) Iallgather(sendBuf, recvBuf []byte, count int, dt Datatype) (*CollRequest, error) {
	if err := c.checkBuf("Iallgather", "send", sendBuf, count, dt); err != nil {
		return nil, err
	}
	if err := c.checkBuf("Iallgather", "recv", recvBuf, c.Size()*count, dt); err != nil {
		return nil, err
	}
	return c.startColl("Iallgather", false, noRoot, func() *schedule {
		switch c.chooseAlgo(kindAllgather, count*dt.Size()) {
		case algoHierMulti:
			return c.compileAllgatherHierMulti(sendBuf, recvBuf, count, dt)
		case algoFlat:
			return c.compileAllgatherFlat(sendBuf, recvBuf, count, dt)
		default: // every other hierarchical choice
			return c.compileAllgatherHier(sendBuf, recvBuf, count, dt)
		}
	})
}

// Ialltoall starts a nonblocking all-to-all (MPI_Ialltoall). On
// multi-cluster topologies the two-level schedule bundles traffic through
// cluster leaders so each backbone link is crossed O(clusters) times
// instead of O(n) (see compileAlltoallHier).
func (c *Comm) Ialltoall(sendBuf, recvBuf []byte, count int, dt Datatype) (*CollRequest, error) {
	want := c.Size() * count * dt.Extent()
	if len(sendBuf) < want || len(recvBuf) < want {
		return nil, fmt.Errorf("mpi: Ialltoall: buffers need %d bytes (send %d, recv %d)",
			want, len(sendBuf), len(recvBuf))
	}
	return c.startColl("Ialltoall", false, noRoot, func() *schedule {
		switch c.chooseAlgo(kindAlltoall, c.Size()*count*dt.Size()) {
		case algoHierSegmented:
			// Segmented exchange needs a block to fit one eager segment;
			// bigger blocks use the whole-bundle rendez-vous form.
			if seg := c.segmentBytes(); count*dt.Size() <= seg {
				return c.compileAlltoallHierSeg(sendBuf, recvBuf, count, dt, seg)
			}
			return c.compileAlltoallHier(sendBuf, recvBuf, count, dt)
		case algoHier:
			return c.compileAlltoallHier(sendBuf, recvBuf, count, dt)
		case algoHierMulti:
			return c.compileAlltoallHierMulti(sendBuf, recvBuf, count, dt)
		default: // algoFlat, and any choice without an alltoall compiler
			return c.compileAlltoallFlat(sendBuf, recvBuf, count, dt)
		}
	})
}
