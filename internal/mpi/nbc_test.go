package mpi_test

// Tests of the schedule-driven nonblocking collectives (Icoll): byte
// equivalence with the blocking API across randomized shapes, genuine
// compute/communication overlap in virtual time, multiple outstanding
// schedules, and the request-plumbing changes (WaitAll statuses,
// event-driven WaitAny).

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

// icollSuiteOutputs runs all seven collectives on a two-cluster session —
// blocking when nb is false, as started-then-waited I-variants when nb is
// true — and returns every observable output buffer keyed for comparison.
func icollSuiteOutputs(t *testing.T, nA, nB int, mode mpi.CollMode, nb bool,
	seed byte, count, root int, op mpi.Op) map[string][]byte {
	t.Helper()
	n := nA + nB
	sess, err := cluster.Build(twoClusterTopo(nA, nB))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	out := make(map[string][]byte)
	record := func(what string, rank int, buf []byte) {
		out[fmt.Sprintf("%s/r%d", what, rank)] = append([]byte(nil), buf...)
	}
	input := func(rank int) []int64 {
		v := make([]int64, count)
		for i := range v {
			v[i] = int64((int(seed)+rank*11+i*5)%9) - 4
		}
		return v
	}
	// run executes op either blocking (start and immediately wait) or as
	// the nonblocking variant waited later by the caller.
	wait := func(req *mpi.CollRequest, err error) error {
		if err != nil {
			return err
		}
		return req.Wait()
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		// Bcast
		buf := make([]byte, 8*count)
		if rank == root {
			copy(buf, mpi.Int64Bytes(input(rank)))
		}
		if nb {
			if err := wait(comm.Ibcast(buf, count, mpi.Int64, root)); err != nil {
				return err
			}
		} else if err := comm.Bcast(buf, count, mpi.Int64, root); err != nil {
			return err
		}
		record("bcast", rank, buf)
		// Reduce
		red := make([]byte, 8*count)
		if nb {
			if err := wait(comm.Ireduce(mpi.Int64Bytes(input(rank)), red, count, mpi.Int64, op, root)); err != nil {
				return err
			}
		} else if err := comm.Reduce(mpi.Int64Bytes(input(rank)), red, count, mpi.Int64, op, root); err != nil {
			return err
		}
		if rank == root {
			record("reduce", rank, red)
		}
		// Allreduce
		all := make([]byte, 8*count)
		if nb {
			if err := wait(comm.Iallreduce(mpi.Int64Bytes(input(rank)), all, count, mpi.Int64, op)); err != nil {
				return err
			}
		} else if err := comm.Allreduce(mpi.Int64Bytes(input(rank)), all, count, mpi.Int64, op); err != nil {
			return err
		}
		record("allreduce", rank, all)
		// Gather
		gat := make([]byte, 8*count*n)
		if nb {
			if err := wait(comm.Igather(mpi.Int64Bytes(input(rank)), gat, count, mpi.Int64, root)); err != nil {
				return err
			}
		} else if err := comm.Gather(mpi.Int64Bytes(input(rank)), gat, count, mpi.Int64, root); err != nil {
			return err
		}
		if rank == root {
			record("gather", rank, gat)
		}
		// Allgather
		ag := make([]byte, 8*count*n)
		if nb {
			if err := wait(comm.Iallgather(mpi.Int64Bytes(input(rank)), ag, count, mpi.Int64)); err != nil {
				return err
			}
		} else if err := comm.Allgather(mpi.Int64Bytes(input(rank)), ag, count, mpi.Int64); err != nil {
			return err
		}
		record("allgather", rank, ag)
		// Alltoall
		matrix := make([]int64, count*n)
		for i := range matrix {
			matrix[i] = int64((int(seed) + rank*17 + i) % 113)
		}
		a2a := make([]byte, 8*count*n)
		if nb {
			if err := wait(comm.Ialltoall(mpi.Int64Bytes(matrix), a2a, count, mpi.Int64)); err != nil {
				return err
			}
		} else if err := comm.Alltoall(mpi.Int64Bytes(matrix), a2a, count, mpi.Int64); err != nil {
			return err
		}
		record("alltoall", rank, a2a)
		// Barrier (observable only through completion)
		if nb {
			return wait(comm.Ibarrier())
		}
		return comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestIcollMatchesBlocking: for randomized cluster shapes, payload sizes,
// roots, ops and algorithm families, every I-collective produces
// byte-identical results to its blocking counterpart.
func TestIcollMatchesBlocking(t *testing.T) {
	modes := []mpi.CollMode{mpi.CollAuto, mpi.CollFlat, mpi.CollHier}
	ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
	f := func(seed, shapeA, shapeB, rootSel, opIdx, length, modeSel uint8) bool {
		nA := int(shapeA)%3 + 1
		nB := int(shapeB)%3 + 1
		root := int(rootSel) % (nA + nB)
		op := ops[int(opIdx)%len(ops)]
		count := int(length)%7 + 1
		mode := modes[int(modeSel)%len(modes)]
		blocking := icollSuiteOutputs(t, nA, nB, mode, false, byte(seed), count, root, op)
		icoll := icollSuiteOutputs(t, nA, nB, mode, true, byte(seed), count, root, op)
		if len(blocking) != len(icoll) {
			t.Errorf("output key sets differ: blocking %d, icoll %d", len(blocking), len(icoll))
			return false
		}
		for k, bv := range blocking {
			iv, ok := icoll[k]
			if !ok {
				t.Errorf("icoll missing output %s", k)
				return false
			}
			if !bytes.Equal(bv, iv) {
				t.Errorf("shape %d+%d root %d op %s count %d mode %d: %s differs: blocking %v icoll %v",
					nA, nB, root, op.Name(), count, mode, k, mpi.BytesInt64(bv), mpi.BytesInt64(iv))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestIcollAlltoallHierFlatEquivalence: the new two-level Alltoall is
// byte-identical to the flat pairwise rotation on randomized two-cluster
// shapes (the last collective closing the hier/flat equivalence matrix).
func TestIcollAlltoallHierFlatEquivalence(t *testing.T) {
	f := func(seed, shapeA, shapeB, length uint8) bool {
		nA := int(shapeA)%3 + 1
		nB := int(shapeB)%3 + 1
		count := int(length)%5 + 1
		run := func(mode mpi.CollMode) map[int][]byte {
			sess, err := cluster.Build(twoClusterTopo(nA, nB))
			if err != nil {
				t.Fatal(err)
			}
			for _, rk := range sess.Ranks {
				rk.MPI.SetCollMode(mode)
			}
			got := make(map[int][]byte)
			n := nA + nB
			err = sess.Run(func(rank int, comm *mpi.Comm) error {
				send := make([]int64, count*n)
				for i := range send {
					send[i] = int64(int(seed) + rank*n*count + i)
				}
				recv := make([]byte, 8*count*n)
				if err := comm.Alltoall(mpi.Int64Bytes(send), recv, count, mpi.Int64); err != nil {
					return err
				}
				got[rank] = append([]byte(nil), recv...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		flat, hier := run(mpi.CollFlat), run(mpi.CollHier)
		for r, fv := range flat {
			if !bytes.Equal(fv, hier[r]) {
				t.Errorf("shape %d+%d count %d rank %d: alltoall differs: flat %v hier %v",
					nA, nB, count, r, mpi.BytesInt64(fv), mpi.BytesInt64(hier[r]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestIallreduceOverlapsCompute: virtual time proves the progress engine
// decouples collective progress from the application thread. A rank that
// starts an Iallreduce, runs a chunked compute loop (the shape of any
// real iteration loop: each chunk releases the single virtual CPU, so the
// engine's staging copies can interleave) for roughly the collective's
// duration and then waits must finish in well under the sum of the two,
// because the schedule's backbone transfers advance while the
// application computes.
func TestIallreduceOverlapsCompute(t *testing.T) {
	const count = 8 << 10 // 64 KB of int64 over the TCP backbone
	const chunks = 512    // compute-loop granularity
	elapsed := func(overlap bool, compute vtime.Duration) vtime.Duration {
		sess, err := cluster.Build(twoClusterTopo(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		var total vtime.Duration
		err = sess.Run(func(rank int, comm *mpi.Comm) error {
			in := make([]int64, count)
			for i := range in {
				in[i] = int64(rank + i)
			}
			computeLoop := func() {
				for i := 0; i < chunks; i++ {
					sess.Ranks[rank].Proc.Compute(compute / chunks)
				}
			}
			out := make([]byte, 8*count)
			start := sess.S.Now()
			if overlap {
				req, err := comm.Iallreduce(mpi.Int64Bytes(in), out, count, mpi.Int64, mpi.OpSum)
				if err != nil {
					return err
				}
				computeLoop()
				if err := req.Wait(); err != nil {
					return err
				}
			} else {
				if err := comm.Allreduce(mpi.Int64Bytes(in), out, count, mpi.Int64, mpi.OpSum); err != nil {
					return err
				}
				computeLoop()
			}
			if rank == 0 {
				total = sess.S.Now().Sub(start)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	collTime := elapsed(false, 0)
	compute := collTime // comparable compute so overlap is measurable
	serial := elapsed(false, compute)
	overlapped := elapsed(true, compute)
	t.Logf("allreduce=%v, +compute serial=%v, overlapped=%v", collTime, serial, overlapped)
	if overlapped >= serial {
		t.Fatalf("Iallreduce+compute (%v) not faster than blocking+compute (%v): no overlap", overlapped, serial)
	}
	// At least half the compute must have hidden behind the collective.
	if saved := serial - overlapped; saved < compute/2 {
		t.Errorf("only %v of %v compute overlapped the collective", saved, compute)
	}
}

// TestIcollMultipleOutstanding: several collectives on one communicator
// may be in flight at once; the engine executes them in submission order
// and each result is correct.
func TestIcollMultipleOutstanding(t *testing.T) {
	sess, err := cluster.Build(twoClusterTopo(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		n := comm.Size()
		bc := make([]byte, 8)
		if rank == 1 {
			copy(bc, mpi.Int64Bytes([]int64{42}))
		}
		r1, err := comm.Ibcast(bc, 1, mpi.Int64, 1)
		if err != nil {
			return err
		}
		ar := make([]byte, 8)
		r2, err := comm.Iallreduce(mpi.Int64Bytes([]int64{int64(rank)}), ar, 1, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		r3, err := comm.Ibarrier()
		if err != nil {
			return err
		}
		// Wait out of submission order: completion must not depend on it.
		if err := r3.Wait(); err != nil {
			return err
		}
		if err := r1.Wait(); err != nil {
			return err
		}
		if err := r2.Wait(); err != nil {
			return err
		}
		if got := mpi.BytesInt64(bc)[0]; got != 42 {
			return fmt.Errorf("rank %d: bcast under outstanding ops = %d, want 42", rank, got)
		}
		want := int64(n * (n - 1) / 2)
		if got := mpi.BytesInt64(ar)[0]; got != want {
			return fmt.Errorf("rank %d: allreduce under outstanding ops = %d, want %d", rank, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIcollBadRootRejected: rooted collectives reject out-of-range roots
// (including negative ones) with a clean error on every rank.
func TestIcollBadRootRejected(t *testing.T) {
	sess, err := cluster.Build(nNodeTopo(2, "sisci"))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, 8)
		for _, root := range []int{-1, comm.Size()} {
			if _, err := comm.Ibcast(buf, 1, mpi.Int64, root); err == nil {
				return fmt.Errorf("Ibcast accepted root %d", root)
			}
			if err := comm.Reduce(buf, buf, 1, mpi.Int64, mpi.OpSum, root); err == nil {
				return fmt.Errorf("Reduce accepted root %d", root)
			}
			if _, err := comm.Igather(buf, buf, 1, mpi.Int64, root); err == nil {
				return fmt.Errorf("Igather accepted root %d", root)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollRequestTestDrivesProgress: a bare Test poll loop (the
// canonical MPI_Test pattern, no compute or blocking in between) must
// still complete the collective — Test is a progress call that yields
// the cooperative CPU to the engine.
func TestCollRequestTestDrivesProgress(t *testing.T) {
	sess, err := cluster.Build(twoClusterTopo(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		out := make([]byte, 8)
		req, err := comm.Iallreduce(mpi.Int64Bytes([]int64{int64(rank + 1)}), out, 1, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		polls := 0
		for {
			done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			polls++
		}
		if got := mpi.BytesInt64(out)[0]; got != 10 {
			return fmt.Errorf("rank %d: allreduce via Test loop = %d, want 10 (after %d polls)", rank, got, polls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAllStatuses: WaitAll returns one status per request, in order,
// with receive metadata filled in and nil for sends.
func TestWaitAllStatuses(t *testing.T) {
	_, err := cluster.Launch(nNodeTopo(3, "sisci"), func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			bufs := [][]byte{make([]byte, 8), make([]byte, 16)}
			r1, err := comm.Irecv(bufs[0], 1, mpi.Int64, 1, 7)
			if err != nil {
				return err
			}
			r2, err := comm.Irecv(bufs[1], 2, mpi.Int64, 2, 9)
			if err != nil {
				return err
			}
			sts, err := mpi.WaitAll(r1, r2)
			if err != nil {
				return err
			}
			if len(sts) != 2 {
				return fmt.Errorf("WaitAll returned %d statuses, want 2", len(sts))
			}
			if sts[0] == nil || sts[0].Source != 1 || sts[0].Tag != 7 || sts[0].Bytes != 8 {
				return fmt.Errorf("status[0] = %+v, want src=1 tag=7 bytes=8", sts[0])
			}
			if sts[1] == nil || sts[1].Source != 2 || sts[1].Tag != 9 || sts[1].Bytes != 16 {
				return fmt.Errorf("status[1] = %+v, want src=2 tag=9 bytes=16", sts[1])
			}
			return nil
		}
		vals := make([]int64, rank)
		for i := range vals {
			vals[i] = int64(rank)
		}
		sreq, err := comm.Isend(mpi.Int64Bytes(vals), rank, mpi.Int64, 0, 5+2*rank)
		if err != nil {
			return err
		}
		sts, err := mpi.WaitAll(sreq)
		if err != nil {
			return err
		}
		if sts[0] != nil {
			return fmt.Errorf("send status = %+v, want nil", sts[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
