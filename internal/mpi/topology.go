package mpi

// Topology-aware collectives: hierarchy discovery metadata and the
// MPICH-style tuning table that selects between flat (topology-blind) and
// two-level (cluster-of-clusters) collective algorithms.
//
// The paper's motivating configuration is a federation of clusters whose
// intra-cluster fabrics (SISCI/SCI, BIP/Myrinet) are one to two orders of
// magnitude faster than the inter-cluster backbone (TCP/Fast-Ethernet).
// A flat binomial tree is oblivious to that gap: its tree edges cross the
// slow backbone O(log n) — and for unlucky rank placements O(n) — times
// per operation. The two-level algorithms in hcoll.go instead run a fast
// binomial phase inside each cluster and exchange data between designated
// cluster leaders exactly once per slow link per direction.
//
// The cluster session (internal/cluster) discovers the hierarchy from the
// declarative topology — which nodes share a fast network — and installs
// it on every rank's Process via SetHierarchy. Communicators derive their
// own dense view (commTopo) lazily, so Split/Dup sub-communicators get
// hierarchy awareness for free. Selection between algorithms goes through
// a small tuning table (message size × topology shape → algorithm),
// mirroring MPICH's coll_tuned framework; the flat algorithms remain both
// the single-cluster fast path and the cross-check reference for the
// equivalence property tests.

// Link describes one network class of the hierarchy in plain numbers
// (derived from the netsim cost model by the cluster session), enough for
// the tuning table to reason about latency/bandwidth tradeoffs without
// depending on the simulator.
type Link struct {
	// Net is the network name from the topology (e.g. "sci", "ethernet").
	Net string
	// LatencyUS is the one-way wire latency in microseconds.
	LatencyUS float64
	// BandwidthMBs is the sustained bandwidth in paper MB/s (2^20 B).
	BandwidthMBs float64
	// SegmentBytes is the recommended pipeline segment size for
	// store-and-forward stages over this link (netsim.Params.PipelineSegment).
	SegmentBytes int
}

// Hierarchy is the per-job cluster structure, indexed by world rank. It is
// immutable after MPI_Init; all ranks hold identical copies.
type Hierarchy struct {
	// ClusterOf maps world rank -> cluster index.
	ClusterOf []int
	// ClusterNames names each cluster after its fast network.
	ClusterNames []string
	// Intra describes each cluster's fast fabric.
	Intra []Link
	// Inter describes the slow inter-cluster backbone. Zero-valued when
	// the job spans a single cluster.
	Inter Link
}

// NumClusters returns the number of clusters in the hierarchy.
func (h *Hierarchy) NumClusters() int { return len(h.ClusterNames) }

// SetHierarchy installs the discovered cluster structure on this rank.
// Called by the cluster session between wiring and the first collective;
// nil (the default) keeps every collective on the flat algorithms.
func (p *Process) SetHierarchy(h *Hierarchy) { p.hier = h }

// Hierarchy returns the installed cluster structure (nil if none).
func (p *Process) Hierarchy() *Hierarchy { return p.hier }

// CollMode forces or frees the collective algorithm selection (tests,
// benchmarks, ablations).
type CollMode int

const (
	// CollAuto consults the tuning table (the default).
	CollAuto CollMode = iota
	// CollFlat forces the topology-blind algorithms.
	CollFlat
	// CollHier forces the two-level algorithms whenever the communicator
	// spans more than one cluster.
	CollHier
)

// SetCollMode overrides collective algorithm selection for this rank.
// Every rank of a communicator must use the same mode.
func (p *Process) SetCollMode(m CollMode) { p.collMode = m }

// CollMode returns the current selection mode.
func (p *Process) CollMode() CollMode { return p.collMode }

// commTopo is a communicator's dense view of the hierarchy: cluster
// membership restricted to the communicator's group and re-indexed.
type commTopo struct {
	nClusters int
	clusterOf []int   // comm rank -> dense cluster index
	clusters  [][]int // dense cluster index -> comm ranks, ascending
	leaders   []int   // dense cluster index -> lowest comm rank
	myCluster int
}

// topo returns the communicator's cached dense hierarchy view, or nil when
// no hierarchy is installed.
func (c *Comm) topo() *commTopo {
	if c.ct != nil {
		return c.ct
	}
	h := c.p.hier
	if h == nil {
		return nil
	}
	ct := &commTopo{clusterOf: make([]int, len(c.group))}
	dense := make(map[int]int) // world cluster id -> dense index
	for r, w := range c.group {
		wc := 0
		if w < len(h.ClusterOf) {
			wc = h.ClusterOf[w]
		}
		di, ok := dense[wc]
		if !ok {
			di = len(ct.clusters)
			dense[wc] = di
			ct.clusters = append(ct.clusters, nil)
			// r ascends, so the first member seen is the cluster's
			// lowest comm rank: its leader.
			ct.leaders = append(ct.leaders, r)
		}
		ct.clusterOf[r] = di
		ct.clusters[di] = append(ct.clusters[di], r)
	}
	ct.nClusters = len(ct.clusters)
	ct.myCluster = ct.clusterOf[c.myRank]
	c.ct = ct
	return ct
}

// collAlgo is one row outcome of the tuning table.
type collAlgo int

const (
	algoFlat collAlgo = iota
	algoHier
	algoHierSegmented // two-level with pipelined segments (Bcast only)
)

// collKind indexes the tuning table by operation.
type collKind int

const (
	kindBarrier collKind = iota
	kindBcast
	kindReduce
	kindAllreduce
	kindGather
	kindAllgather
	kindAlltoall
)

// defaultSegmentBytes bounds the pipelined-broadcast segment when the
// hierarchy carries no backbone estimate.
const defaultSegmentBytes = 8 << 10

// segmentBytes returns the pipeline segment for hierarchical broadcast:
// the backbone's recommended segment, clamped so segments stay on the
// ch_mad eager path (at or below the rendez-vous switch point) and keep
// the store-and-forward pipeline busy.
func (c *Comm) segmentBytes() int {
	seg := defaultSegmentBytes
	if h := c.p.hier; h != nil && h.Inter.SegmentBytes > 0 {
		seg = h.Inter.SegmentBytes
	}
	return seg
}

// bcastSegment is the single source of the broadcast segmentation rule:
// the segment size to pipeline a total-byte payload with, or 0 when the
// payload is too small for segmentation to pay off. Deterministic in
// (total, hierarchy), so every rank picks the same shape.
func (c *Comm) bcastSegment(total int) int {
	if seg := c.segmentBytes(); total > 2*seg {
		return seg
	}
	return 0
}

// chooseAlgo is the tuning-table lookup: operation kind and message size
// (total payload bytes) to algorithm, given the communicator's shape.
// Mirrors MPICH's coll_tuned decision functions: thresholds first, with
// the flat algorithms as the universal fallback.
func (c *Comm) chooseAlgo(kind collKind, nBytes int) collAlgo {
	ct := c.topo()
	if ct == nil || ct.nClusters < 2 {
		return algoFlat // single cluster: the flat tree already runs on the fast fabric
	}
	switch c.p.collMode {
	case CollFlat:
		return algoFlat
	case CollHier:
		if kind == kindBcast && c.bcastSegment(nBytes) > 0 {
			return algoHierSegmented
		}
		return algoHier
	}
	switch kind {
	case kindBarrier, kindReduce, kindAllreduce, kindAllgather:
		// Leader aggregation always reduces slow-link crossings; the
		// extra intra-cluster hop is cheap by construction.
		return algoHier
	case kindBcast:
		if c.bcastSegment(nBytes) > 0 {
			// Large: pipeline segments through the two-level tree so the
			// slow backbone transfer overlaps the fast intra-cluster fan-out.
			return algoHierSegmented
		}
		return algoHier
	case kindGather:
		// Leader staging doubles the memory traffic for the cluster's
		// data; past a few MB the copy cost outweighs the saved
		// slow-link message setups, so fall back to the flat tree.
		if nBytes*c.Size() > 4<<20 {
			return algoFlat
		}
		return algoHier
	case kindAlltoall:
		// nBytes is the full per-rank matrix. Leader bundling always wins
		// on backbone crossings (O(clusters) vs O(n^2)), but netsim gives
		// each directed pair its own pipe — the flat rotation's many
		// crossings stream in parallel while the bundles serialize on the
		// single leader-pair pipe — so on time it only pays while message
		// setup latency dominates. A per-network bandwidth cap (ROADMAP)
		// would move this crossover well up.
		if nBytes > 2<<10 {
			return algoFlat
		}
		return algoHier
	}
	return algoFlat
}

// twoLevelTree builds the rank's position in the two-level spanning tree
// rooted at root: a binomial tree over cluster leaders (with the root
// acting as its own cluster's leader) feeding binomial trees inside each
// cluster. A leader's children list the backbone (inter-cluster) children
// first so slow-link transfers start as early as possible. parent is -1
// at the root.
func (ct *commTopo) twoLevelTree(me, root int) (parent int, children []int) {
	// Operation leaders: the root stands in for its own cluster's leader.
	rootCluster := ct.clusterOf[root]
	opLeader := make([]int, ct.nClusters)
	copy(opLeader, ct.leaders)
	opLeader[rootCluster] = root

	myCluster := ct.clusterOf[me]
	parent = -1
	if me == opLeader[myCluster] {
		p, kids := binomialOver(opLeader, rootCluster, myCluster)
		parent = p
		children = append(children, kids...)
	}

	// Intra-cluster binomial tree rooted at the cluster's operation
	// leader. A leader is its intra-tree's root (p = -1), so its backbone
	// parent from the leader level is preserved.
	members := ct.clusters[myCluster]
	leaderPos, myPos := 0, 0
	for i, r := range members {
		if r == opLeader[myCluster] {
			leaderPos = i
		}
		if r == me {
			myPos = i
		}
	}
	p, kids := binomialOver(members, leaderPos, myPos)
	if p >= 0 {
		parent = p
	}
	children = append(children, kids...)
	return parent, children
}
