package mpi

// Topology-aware collectives: hierarchy discovery metadata and the
// MPICH-style tuning table that selects between flat (topology-blind) and
// two-level (cluster-of-clusters) collective algorithms.
//
// The paper's motivating configuration is a federation of clusters whose
// intra-cluster fabrics (SISCI/SCI, BIP/Myrinet) are one to two orders of
// magnitude faster than the inter-cluster backbone (TCP/Fast-Ethernet).
// A flat binomial tree is oblivious to that gap: its tree edges cross the
// slow backbone O(log n) — and for unlucky rank placements O(n) — times
// per operation. The two-level algorithms in hcoll.go instead run a fast
// binomial phase inside each cluster and exchange data between designated
// cluster leaders exactly once per slow link per direction.
//
// The cluster session (internal/cluster) discovers the hierarchy from the
// declarative topology — which nodes share a fast network — and installs
// it on every rank's Process via SetHierarchy. Communicators derive their
// own dense view (commTopo) lazily, so Split/Dup sub-communicators get
// hierarchy awareness for free. Selection between algorithms goes through
// a small tuning table (message size × topology shape → algorithm),
// mirroring MPICH's coll_tuned framework; the flat algorithms remain both
// the single-cluster fast path and the cross-check reference for the
// equivalence property tests.

// Link describes one network class of the hierarchy in plain numbers
// (derived from the netsim cost model by the cluster session), enough for
// the tuning table to reason about latency/bandwidth tradeoffs without
// depending on the simulator.
type Link struct {
	// Net is the network name from the topology (e.g. "sci", "ethernet").
	Net string
	// LatencyUS is the one-way wire latency in microseconds.
	LatencyUS float64
	// BandwidthMBs is the sustained bandwidth in paper MB/s (2^20 B).
	BandwidthMBs float64
	// SegmentBytes is the recommended pipeline segment size for
	// store-and-forward stages over this link (netsim.Params.PipelineSegment).
	SegmentBytes int
	// SharedMBs is the link's aggregate trunk capacity in paper MB/s when
	// the network models shared-bandwidth contention
	// (netsim.Params.NetworkBandwidth); 0 means private per-pair pipes.
	// A capped backbone makes every extra crossing queue, which moves the
	// flat-vs-two-level crossover sharply toward two-level.
	SharedMBs float64
}

// Hierarchy is the per-job cluster structure, indexed by world rank. It is
// immutable after MPI_Init; all ranks hold identical copies.
type Hierarchy struct {
	// ClusterOf maps world rank -> cluster index.
	ClusterOf []int
	// ClusterNames names each cluster after its fast network.
	ClusterNames []string
	// Intra describes each cluster's fast fabric.
	Intra []Link
	// Inter describes the slow inter-cluster backbone. Zero-valued when
	// the job spans a single cluster.
	Inter Link
	// Leaders, when non-nil, is the gateway-aware preferred leader world
	// rank of each cluster, elected by the cluster session from the
	// routing plan (ranks on gateway nodes, weighted by path cost).
	// Communicators use the preferred leader when it is a member and the
	// lowest comm rank of the cluster otherwise; nil keeps the
	// lowest-rank convention everywhere.
	Leaders []int
	// LeaderSets, when non-nil, lists each cluster's gateway-diverse
	// leader set in world ranks: one co-leader per distinct cluster-
	// spanning network the cluster touches, primary leader first. The
	// multi-leader collectives shard the inter-cluster phase across the
	// set so each co-leader ships its shard over its own gateway
	// concurrently. Clusters behind a single gateway (or none) carry a
	// one-element set; nil keeps every algorithm on the primary leader.
	LeaderSets [][]int
	// LeaderGateways names, parallel to LeaderSets, the spanning network
	// each co-leader fronts ("" when the co-leader is the primary leader
	// without a gateway of its own) — trace annotations and reports.
	LeaderGateways [][]string
}

// NumClusters returns the number of clusters in the hierarchy.
func (h *Hierarchy) NumClusters() int { return len(h.ClusterNames) }

// SetHierarchy installs the discovered cluster structure on this rank.
// Called by the cluster session between wiring and the first collective;
// nil (the default) keeps every collective on the flat algorithms.
func (p *Process) SetHierarchy(h *Hierarchy) { p.hier = h }

// RefreshHierarchy reinstalls a (possibly re-elected) cluster structure
// mid-run and invalidates the world communicator's cached dense view, so
// the next collective compiles against the new leaders and backbone
// estimate — how an adaptive re-plan (cluster.Session.Replan) propagates
// between collective rounds. Must be called on every rank at a quiescent
// point (all ranks share the Hierarchy value, so agreement is free);
// sub-communicators created before the refresh keep their frozen view,
// preserving the MPI same-order rule for schedules already compiled.
func (p *Process) RefreshHierarchy(h *Hierarchy) {
	p.hier = h
	if p.World != nil {
		p.World.ct = nil
	}
}

// Hierarchy returns the installed cluster structure (nil if none).
func (p *Process) Hierarchy() *Hierarchy { return p.hier }

// CollMode forces or frees the collective algorithm selection (tests,
// benchmarks, ablations).
type CollMode int

const (
	// CollAuto consults the tuning table (the default): the autotuned
	// crossover table when MPI_Init ran the sweep, the analytic defaults
	// otherwise.
	CollAuto CollMode = iota
	// CollFlat forces the topology-blind binomial-tree algorithms.
	CollFlat
	// CollHier forces the two-level tree algorithms whenever the
	// communicator spans more than one cluster.
	CollHier
	// CollRing forces the flat bandwidth-optimal ring algorithms where an
	// operation has one (Allreduce, ReduceScatter); other operations fall
	// back to the flat trees.
	CollRing
	// CollHierRing forces the two-level ring algorithms (intra-cluster
	// ring phases around the single leader exchange) on multi-cluster
	// communicators; operations without a ring form use the two-level
	// trees.
	CollHierRing
	// CollHierMulti forces the multi-leader two-level algorithms: the
	// inter-cluster phase is sharded across each cluster's leader set so
	// every gateway carries a slice of the payload concurrently.
	// Operations without a multi-leader form — or communicators whose
	// leader sets all collapse to one rank — use the two-level trees.
	CollHierMulti
)

// SetCollMode overrides collective algorithm selection for this rank.
// Every rank of a communicator must use the same mode.
func (p *Process) SetCollMode(m CollMode) { p.collMode = m }

// CollMode returns the current selection mode.
func (p *Process) CollMode() CollMode { return p.collMode }

// commTopo is a communicator's dense view of the hierarchy: cluster
// membership restricted to the communicator's group and re-indexed.
type commTopo struct {
	nClusters int
	clusterOf []int   // comm rank -> dense cluster index
	clusters  [][]int // dense cluster index -> comm ranks, ascending
	leaders   []int   // dense cluster index -> lowest comm rank
	myCluster int
	// leaderSets maps each dense cluster to its in-communicator leader
	// set (comm ranks, primary leader first); always at least the
	// one-element [leaders[di]]. leaderGW names the gateway network each
	// co-leader fronts, parallel to leaderSets ("" when unknown).
	leaderSets [][]int
	leaderGW   [][]string
}

// maxLeaderSet is the widest leader set any cluster of the communicator
// carries — the shard count K of the multi-leader algorithms.
func (ct *commTopo) maxLeaderSet() int {
	k := 1
	for _, ls := range ct.leaderSets {
		if len(ls) > k {
			k = len(ls)
		}
	}
	return k
}

// coLeader returns shard k's co-leader in dense cluster di: leader sets
// narrower than the shard count wrap, so a single-gateway cluster funnels
// every shard through its one leader while wider clusters spread them.
func (ct *commTopo) coLeader(di, k int) int {
	ls := ct.leaderSets[di]
	return ls[k%len(ls)]
}

// coLeaderGW names the gateway network behind shard k's co-leader in
// dense cluster di (trace annotation; "" when unknown).
func (ct *commTopo) coLeaderGW(di, k int) string {
	gw := ct.leaderGW[di]
	if len(gw) == 0 {
		return ""
	}
	return gw[k%len(gw)]
}

// topo returns the communicator's cached dense hierarchy view, or nil when
// no hierarchy is installed.
func (c *Comm) topo() *commTopo {
	if c.ct != nil {
		return c.ct
	}
	h := c.p.hier
	if h == nil {
		return nil
	}
	ct := &commTopo{clusterOf: make([]int, len(c.group))}
	dense := make(map[int]int) // world cluster id -> dense index
	var denseWorld []int       // dense index -> world cluster id
	for r, w := range c.group {
		wc := 0
		if w < len(h.ClusterOf) {
			wc = h.ClusterOf[w]
		}
		di, ok := dense[wc]
		if !ok {
			di = len(ct.clusters)
			dense[wc] = di
			denseWorld = append(denseWorld, wc)
			ct.clusters = append(ct.clusters, nil)
			// r ascends, so the first member seen is the cluster's
			// lowest comm rank: its default leader.
			ct.leaders = append(ct.leaders, r)
		}
		ct.clusterOf[r] = di
		ct.clusters[di] = append(ct.clusters[di], r)
	}
	// Gateway-aware preference: a cluster whose elected leader is in this
	// communicator uses it instead of the lowest comm rank, so two-level
	// exchanges start and end on gateway ranks when they can.
	if h.Leaders != nil {
		for di, wc := range denseWorld {
			if wc >= len(h.Leaders) {
				continue
			}
			if cr := c.commRankOfWorld(h.Leaders[wc]); cr >= 0 && ct.clusterOf[cr] == di {
				ct.leaders[di] = cr
			}
		}
	}
	// Leader sets: the elected gateway-diverse co-leaders of each cluster,
	// restricted to this communicator. The primary comm leader always
	// anchors position 0 so single-leader and multi-leader forms agree on
	// who fronts the cluster; co-leaders outside the communicator (or
	// outside the cluster after a Split) simply drop out, possibly
	// collapsing the set to one rank.
	ct.leaderSets = make([][]int, len(ct.clusters))
	ct.leaderGW = make([][]string, len(ct.clusters))
	for di := range ct.clusters {
		ct.leaderSets[di] = []int{ct.leaders[di]}
		ct.leaderGW[di] = []string{""}
	}
	if h.LeaderSets != nil {
		for di, wc := range denseWorld {
			if wc >= len(h.LeaderSets) {
				continue
			}
			for i, w := range h.LeaderSets[wc] {
				cr := c.commRankOfWorld(w)
				if cr < 0 || ct.clusterOf[cr] != di || cr == ct.leaders[di] {
					continue
				}
				gw := ""
				if wc < len(h.LeaderGateways) && i < len(h.LeaderGateways[wc]) {
					gw = h.LeaderGateways[wc][i]
				}
				ct.leaderSets[di] = append(ct.leaderSets[di], cr)
				ct.leaderGW[di] = append(ct.leaderGW[di], gw)
			}
			// Tag the anchor slot with the elected primary's gateway when
			// they are the same rank.
			if len(h.LeaderSets[wc]) > 0 && len(h.LeaderGateways) > wc && len(h.LeaderGateways[wc]) > 0 {
				if cr := c.commRankOfWorld(h.LeaderSets[wc][0]); cr == ct.leaders[di] {
					ct.leaderGW[di][0] = h.LeaderGateways[wc][0]
				}
			}
		}
	}
	ct.nClusters = len(ct.clusters)
	ct.myCluster = ct.clusterOf[c.myRank]
	c.ct = ct
	return ct
}

// collAlgo is one row outcome of the tuning table.
type collAlgo int

const (
	algoFlat collAlgo = iota
	algoHier
	algoHierSegmented // two-level with pipelined segments (Bcast only)
	algoRing          // flat bandwidth-optimal ring (Allreduce, ReduceScatter)
	algoRingHier      // two-level: intra-cluster rings around the leader exchange
	algoHierMulti     // two-level with the leader phase sharded across the leader set
)

// algoNames maps tuning-table rows to stable names for snapshots/reports.
var algoNames = map[collAlgo]string{
	algoFlat:          "flat",
	algoHier:          "2level",
	algoHierSegmented: "2level-seg",
	algoRing:          "ring",
	algoRingHier:      "2level-ring",
	algoHierMulti:     "2level-multi",
}

// collKind indexes the tuning table by operation.
type collKind int

const (
	kindBarrier collKind = iota
	kindBcast
	kindReduce
	kindAllreduce
	kindGather
	kindAllgather
	kindAlltoall
	kindReduceScatter
	numCollKinds
)

// kindNames mirrors the MPI operation names for snapshots/reports.
var kindNames = map[collKind]string{
	kindBarrier:       "Barrier",
	kindBcast:         "Bcast",
	kindReduce:        "Reduce",
	kindAllreduce:     "Allreduce",
	kindGather:        "Gather",
	kindAllgather:     "Allgather",
	kindAlltoall:      "Alltoall",
	kindReduceScatter: "ReduceScatter",
}

// defaultSegmentBytes bounds the pipelined-broadcast segment when the
// hierarchy carries no backbone estimate.
const defaultSegmentBytes = 8 << 10

// multiLeaderMinBytes is the analytic fallback's payload floor for the
// multi-leader algorithms: below it the extra intra-cluster shard
// scatter/redistribute rounds cost more than the aggregated backbone
// bandwidth saves. The autotuner measures the real crossover.
const multiLeaderMinBytes = 128 << 10

// segmentBytes returns the pipeline segment for hierarchical broadcast:
// the backbone's recommended segment, clamped so segments stay on the
// ch_mad eager path (at or below the rendez-vous switch point) and keep
// the store-and-forward pipeline busy.
func (c *Comm) segmentBytes() int {
	seg := defaultSegmentBytes
	if h := c.p.hier; h != nil && h.Inter.SegmentBytes > 0 {
		seg = h.Inter.SegmentBytes
	}
	return seg
}

// bcastSegment is the single source of the broadcast segmentation rule:
// the segment size to pipeline a total-byte payload with, or 0 when the
// payload is too small for segmentation to pay off. Deterministic in
// (total, hierarchy), so every rank picks the same shape.
func (c *Comm) bcastSegment(total int) int {
	if seg := c.segmentBytes(); total > 2*seg {
		return seg
	}
	return 0
}

// cappedBackbone reports whether the hierarchy's inter-cluster link
// models shared-trunk contention (every extra crossing queues).
func (c *Comm) cappedBackbone() bool {
	return c.p.hier != nil && c.p.hier.Inter.SharedMBs > 0
}

// ringKind reports whether an operation has a ring compiler.
func ringKind(kind collKind) bool {
	return kind == kindAllreduce || kind == kindReduceScatter
}

// sanitizeAlgo degrades an algorithm choice to one this communicator and
// operation can actually run: hier families need a multi-cluster shape,
// ring families need a ring compiler, segmentation is Bcast-only. Keeps
// forced modes and stale tuning tables safe on any communicator (e.g. a
// Split sub-communicator confined to one island).
func (c *Comm) sanitizeAlgo(kind collKind, a collAlgo) collAlgo {
	ct := c.topo()
	multi := ct != nil && ct.nClusters >= 2
	if a == algoHierSegmented && kind != kindBcast && kind != kindAlltoall {
		a = algoHier
	}
	// Multi-leader needs an operation with a sharded compiler AND a
	// communicator where at least one cluster actually has several
	// gateways to spread across; otherwise it is exactly the two-level
	// tree with extra staging, so degrade to algoHier.
	if a == algoHierMulti {
		ok := kind == kindBcast || kind == kindAllreduce ||
			kind == kindAllgather || kind == kindAlltoall
		if !ok || !multi || ct.maxLeaderSet() < 2 {
			a = algoHier
		}
	}
	if a == algoRingHier {
		switch {
		case !ringKind(kind) && multi:
			a = algoHier
		case !ringKind(kind):
			a = algoFlat
		case !multi:
			a = algoRing
		}
	}
	if a == algoRing && !ringKind(kind) {
		a = algoFlat
	}
	if (a == algoHier || a == algoHierSegmented) && !multi {
		a = algoFlat
	}
	// ReduceScatter only has ring compilers: tree-family choices map to
	// the ring of the same level, so CollHier still gets the
	// hierarchy-aware form and CollFlat the topology-blind one.
	if kind == kindReduceScatter {
		switch a {
		case algoHier, algoHierSegmented, algoHierMulti:
			a = algoRingHier
		case algoFlat:
			a = algoRing
		case algoRing, algoRingHier:
			// Already a ring form: runnable as is.
		}
	}
	return a
}

// chooseAlgo is the tuning-table lookup: operation kind and message size
// (total payload bytes) to algorithm, given the communicator's shape.
// Mirrors MPICH's coll_tuned decision functions. Precedence: the
// autotuner's force hook (one timed candidate), the explicit CollMode
// override, the measured crossover table installed by Autotune at
// MPI_Init, then the analytic fallback thresholds — every result passes
// through sanitizeAlgo so it is runnable on this communicator.
func (c *Comm) chooseAlgo(kind collKind, nBytes int) collAlgo {
	if f := c.p.forcedAlgo; f != nil {
		return c.sanitizeAlgo(kind, *f)
	}
	switch c.p.collMode {
	case CollFlat:
		return c.sanitizeAlgo(kind, algoFlat)
	case CollHier:
		if kind == kindBcast && c.bcastSegment(nBytes) > 0 {
			return c.sanitizeAlgo(kind, algoHierSegmented)
		}
		// Segmenting the Alltoall bundle exchange only pays where the
		// backbone serializes crossings (shared trunk): it trades the
		// per-bundle rendez-vous handshakes for per-segment eager copies,
		// a loss on private full-rate pipes. The autotuner measures both
		// candidates regardless.
		if kind == kindAlltoall && c.cappedBackbone() && c.bcastSegment(nBytes) > 0 {
			return c.sanitizeAlgo(kind, algoHierSegmented)
		}
		return c.sanitizeAlgo(kind, algoHier)
	case CollRing:
		return c.sanitizeAlgo(kind, algoRing)
	case CollHierRing:
		return c.sanitizeAlgo(kind, algoRingHier)
	case CollHierMulti:
		return c.sanitizeAlgo(kind, algoHierMulti)
	case CollAuto:
		// Fall past the switch: measured table, then analytic thresholds.
	}
	if tt := c.tuneTable(); tt != nil {
		if a, ok := tt.lookup(kind, nBytes); ok {
			return c.sanitizeAlgo(kind, a)
		}
	}
	return c.sanitizeAlgo(kind, c.analyticAlgo(kind, nBytes))
}

// analyticAlgo is the fallback decision table used when no autotuned
// crossover table is installed. The caller sanitizes the result.
func (c *Comm) analyticAlgo(kind collKind, nBytes int) collAlgo {
	ct := c.topo()
	if ct == nil || ct.nClusters < 2 {
		if ringKind(kind) && nBytes >= 64<<10 {
			// Large vectors: the ring's 2(n−1)/n bandwidth factor beats
			// the tree's 2·log(n) even on a uniform fast fabric.
			return algoRing
		}
		return algoFlat // single cluster: the flat tree already runs on the fast fabric
	}
	// capped: the backbone models shared-trunk contention, so every extra
	// crossing queues — concurrency can no longer hide flat algorithms'
	// O(n) crossings.
	capped := c.cappedBackbone()
	// multiGW: some cluster fronts several gateways, so sharding the
	// leader phase across the leader set aggregates backbone bandwidth.
	// Only worth the extra intra-cluster scatter/redistribute staging for
	// payloads large enough to be backbone-bandwidth-bound.
	multiGW := ct.maxLeaderSet() >= 2
	switch kind {
	case kindBarrier, kindReduce:
		// Leader aggregation always reduces slow-link crossings; the
		// extra intra-cluster hop is cheap by construction.
		return algoHier
	case kindAllgather:
		if multiGW && nBytes*c.Size() >= multiLeaderMinBytes {
			return algoHierMulti
		}
		return algoHier
	case kindAllreduce:
		if multiGW && nBytes >= multiLeaderMinBytes {
			return algoHierMulti
		}
		if nBytes >= 64<<10 {
			// Large vectors: intra-cluster ring phases around the same
			// single leader exchange.
			return algoRingHier
		}
		return algoHier
	case kindReduceScatter:
		return algoRingHier
	case kindBcast:
		if multiGW && nBytes >= multiLeaderMinBytes {
			return algoHierMulti
		}
		if c.bcastSegment(nBytes) > 0 {
			// Large: pipeline segments through the two-level tree so the
			// slow backbone transfer overlaps the fast intra-cluster fan-out.
			return algoHierSegmented
		}
		return algoHier
	case kindGather:
		// Leader staging doubles the memory traffic for the cluster's
		// data; past a few MB the copy cost outweighs the saved
		// slow-link message setups, so fall back to the flat tree.
		if nBytes*c.Size() > 4<<20 {
			return algoFlat
		}
		return algoHier
	case kindAlltoall:
		// nBytes is the full per-rank matrix. Leader bundling always wins
		// on backbone crossings (O(clusters) vs O(n^2)) and on per-message
		// setups, but unlike Bcast/Allreduce it cannot reduce backbone
		// *bytes*: every (src, dst) block is unique, so the bundles carry
		// exactly the same payload the flat rotation does. Past the
		// setup-dominated regime both algorithms hit the same trunk
		// serialization floor and the flat rotation wins by skipping the
		// leader staging. A capped trunk stretches the setup-dominated
		// regime a little (queued crossings amplify the 32-vs-2 message
		// count); the Autotune sweep measures the real crossover on the
		// live topology either way.
		if multiGW && nBytes >= multiLeaderMinBytes {
			// Sharded bundles: the backbone bytes are irreducible, but
			// splitting each leader-pair bundle across G gateways divides
			// the serialization floor the flat rotation sits on.
			return algoHierMulti
		}
		limit := 2 << 10
		if capped {
			limit = 4 << 10
		}
		if nBytes > limit {
			return algoFlat
		}
		return algoHier
	default:
		return algoFlat
	}
}

// twoLevelTree builds the rank's position in the two-level spanning tree
// rooted at root: a binomial tree over cluster leaders (with the root
// acting as its own cluster's leader) feeding binomial trees inside each
// cluster. A leader's children list the backbone (inter-cluster) children
// first so slow-link transfers start as early as possible. parent is -1
// at the root.
func (ct *commTopo) twoLevelTree(me, root int) (parent int, children []int) {
	// Operation leaders: the root stands in for its own cluster's leader.
	rootCluster := ct.clusterOf[root]
	opLeader := make([]int, ct.nClusters)
	copy(opLeader, ct.leaders)
	opLeader[rootCluster] = root

	myCluster := ct.clusterOf[me]
	parent = -1
	if me == opLeader[myCluster] {
		p, kids := binomialOver(opLeader, rootCluster, myCluster)
		parent = p
		children = append(children, kids...)
	}

	// Intra-cluster binomial tree rooted at the cluster's operation
	// leader. A leader is its intra-tree's root (p = -1), so its backbone
	// parent from the leader level is preserved.
	members := ct.clusters[myCluster]
	leaderPos, myPos := 0, 0
	for i, r := range members {
		if r == opLeader[myCluster] {
			leaderPos = i
		}
		if r == me {
			myPos = i
		}
	}
	p, kids := binomialOver(members, leaderPos, myPos)
	if p >= 0 {
		parent = p
	}
	children = append(children, kids...)
	return parent, children
}
