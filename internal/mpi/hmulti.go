package mpi

// Multi-leader two-level schedule compilers: the bandwidth-aggregation
// forms of Bcast/Allreduce/Allgather/Alltoall. The single-leader
// compilers in hcoll.go cross the backbone once per slow link — but they
// funnel that one crossing through one elected leader and therefore one
// gateway, leaving every other gateway of the cluster idle. These
// compilers shard the inter-cluster payload across the cluster's *leader
// set* (Hierarchy.LeaderSets: one co-leader per distinct gateway), so
// shard k ships over co-leader k's gateway while shard k+1 concurrently
// rides another — aggregate backbone bandwidth across every link the
// machine offers, the Madeleine pitch applied to collectives.
//
// Structure shared by Allreduce/Allgather/Alltoall: an intra-cluster
// phase concentrates data on the primary leader (or the root), a scatter
// round deals shard k to co-leader k, the inter-cluster phase runs per
// shard between the clusters' co-leaders (each pair's transfer riding
// its own gateway), and an intra-cluster redistribute phase fans the
// shards back out. Bcast instead pipelines each shard along a rotated
// relay chain of bridge-facing co-leaders (see compileBcastHierMulti).
// Shards are dealt round-robin (coLeader wraps), so clusters behind a
// single gateway still work — they just funnel, as before.
//
// Determinism/FIFO discipline: every merged round enumerates (shard k
// ascending, cluster ascending), and both endpoints of a pair derive the
// same shard bounds from the same commTopo, so per-(source, tag) FIFO
// matching pairs transfers correctly. Zero-length shards (payload
// smaller than the shard count) are skipped symmetrically.

// myShards returns the ascending shard indices this rank co-leads in its
// cluster, given K total shards; empty for non-co-leaders.
func (ct *commTopo) myShards(me, K int) []int {
	var ks []int
	for k := 0; k < K; k++ {
		if ct.coLeader(ct.myCluster, k) == me {
			ks = append(ks, k)
		}
	}
	return ks
}

// posIn returns r's index within members (-1 when absent).
func posIn(members []int, r int) int {
	for i, m := range members {
		if m == r {
			return i
		}
	}
	return -1
}

// shardTreeRounds appends, for each shard k in ascending order, a
// binomial broadcast of bufs[k] over members rooted at roots[k] — the
// intra-cluster redistribute phase. The per-shard phases are serialized
// (each its own recv/send round pair) so a rank's role deep in one shard
// tree cannot deadlock against its role near the root of another; the
// shards ride the fast fabric, where the serialization is cheap. Rounds
// are tagged with their shard's leader index and gateway for the trace.
func (c *Comm) shardTreeRounds(b *schedBuilder, members []int, roots []int, bufs [][]byte) {
	ct := c.topo()
	myPos := posIn(members, c.myRank)
	for k, buf := range bufs {
		if len(buf) == 0 {
			continue
		}
		parent, children := binomialOver(members, posIn(members, roots[k]), myPos)
		gw := ct.coLeaderGW(ct.myCluster, k)
		if parent >= 0 {
			b.recv(parent, buf)
			b.tagRound(k, gw)
			b.endRound()
		}
		for _, ch := range children {
			b.send(ch, buf)
		}
		if len(children) > 0 {
			b.tagRound(k, gw)
		}
		b.endRound()
	}
}

// emissary picks the co-leader pair carrying a shard from cluster ci to
// cluster cj: a sender in ci and receiver in cj fronting the *same*
// gateway network (the two ends of a direct bridge), rotated by the
// shard index so different shards ride different bridges when the pair
// offers several. Returns x = -1 when the clusters share no bridge —
// the caller then sends from the shard's current holder and the fabric
// routes the transfer.
func (ct *commTopo) emissary(ci, cj, k int) (x, y int, g string) {
	fromGW := make(map[string]int, len(ct.leaderGW[ci]))
	for idx, gn := range ct.leaderGW[ci] {
		if _, dup := fromGW[gn]; gn != "" && !dup {
			fromGW[gn] = ct.leaderSets[ci][idx]
		}
	}
	var xs, ys []int
	var gs []string
	for idx, gn := range ct.leaderGW[cj] {
		if gn == "" {
			continue
		}
		if xr, ok := fromGW[gn]; ok {
			xs, ys, gs = append(xs, xr), append(ys, ct.leaderSets[cj][idx]), append(gs, gn)
		}
	}
	if len(xs) == 0 {
		return -1, ct.coLeader(cj, k), ct.coLeaderGW(cj, k)
	}
	i := k % len(xs)
	return xs[i], ys[i], gs[i]
}

// shardChain lays out shard k's inter-cluster relay chain: the clusters
// in visiting order (root cluster first, the rest rotated by k so each
// shard walks the machine in a different direction), the rank holding
// the shard in each cluster (the bridge-facing receiver), the rank it
// departs each non-terminal cluster from (the bridge-facing sender —
// the holder itself when the clusters share no direct bridge), and the
// gateway network it entered through.
func (ct *commTopo) shardChain(rootCluster, root, k int) (order, holder, egress []int, via []string) {
	order = make([]int, 0, ct.nClusters)
	order = append(order, rootCluster)
	var others []int
	for di := 0; di < ct.nClusters; di++ {
		if di != rootCluster {
			others = append(others, di)
		}
	}
	for i := range others {
		order = append(order, others[(i+k)%len(others)])
	}
	holder = make([]int, ct.nClusters)
	egress = make([]int, ct.nClusters)
	via = make([]string, ct.nClusters)
	for di := range egress {
		egress[di] = -1
	}
	holder[rootCluster] = root
	for i := 1; i < len(order); i++ {
		ci, cj := order[i-1], order[i]
		x, y, g := ct.emissary(ci, cj, k)
		if x < 0 {
			x = holder[ci]
		}
		egress[ci], holder[cj], via[cj] = x, y, g
	}
	return order, holder, egress, via
}

// compileBcastHierMulti broadcasts with the inter-cluster phase sharded
// across the leader sets. Shard k travels a linear relay path over the
// clusters — root cluster first, the rest rotated by k — where each
// bridge hop runs directly between the two co-leaders fronting a shared
// gateway (the shard reaches its cluster's bridge-facing egress in one
// fast-fabric hop first), so concurrent shards cross the machine in
// different directions over different gateways and every directed bridge
// pipe carries ~1/K of the payload. The path is pipelined in eager-path
// segments exactly like the segmented single-leader form: each path rank
// forwards segment s while segment s+1 is still crossing the previous
// bridge. After the segment cycles, each cluster's holder streams the
// shard — again as eager segments, so the stream never blocks — to the
// members the path skipped, except in the path's last cluster where a
// whole-shard binomial tree from the terminal rank finishes the job.
//
// Two details keep opposite directions of a shared bridge concurrently
// busy instead of ping-ponging: only path ranks take per-segment rounds
// (everyone else matches its segments in one deferred round after the
// cycles, buffered by the eager protocol in the meantime), and the
// path's *terminal* rank — the one rank with per-segment receives but no
// forwarding — defers its receives the same way, so its role as a sender
// of some other shard never blocks on arrivals. Every rank emits its
// rounds in the same global (cycle, shard, path-position) order and
// every wait points to a strictly earlier position of that order, so the
// union of all waits is acyclic; repeated (src, dst) pairs match FIFO
// because both endpoints enumerate the cycle and the shard-ascending
// post phases identically.
func (c *Comm) compileBcastHierMulti(buf []byte, count int, dt Datatype, root int) *schedule {
	ct := c.topo()
	K := ct.maxLeaderSet()
	var data []byte
	if c.myRank == root {
		data = PackBuf(buf, count, dt)
	} else {
		data = make([]byte, count*dt.Size())
	}
	bounds := splitBounds(len(data), K)
	rootCluster := ct.clusterOf[root]
	members := ct.clusters[ct.myCluster]
	seg := c.segmentBytes()
	b := newSched("bcast.hm")

	// My role on shard k's relay path and in its intra-cluster fan-out —
	// identical on every rank by construction.
	type shardPlan struct {
		pred, succ  int   // my path neighbors (-1 when absent / off-path)
		terminal    bool  // I am the path's last rank: defer my receives
		termCluster bool  // my cluster is the path's last stop
		sinks       []int // my cluster's members the path never touches
		holder      int   // the shard's holder in my cluster
		lo, hi      int
		nseg        int
		gw          string
	}
	plans := make([]shardPlan, K)
	maxSeg := 0
	for k := 0; k < K; k++ {
		pl := shardPlan{pred: -1, succ: -1, lo: bounds[k], hi: bounds[k+1]}
		if sz := pl.hi - pl.lo; sz > 0 {
			order, holder, egress, via := ct.shardChain(rootCluster, root, k)
			di := ct.myCluster
			pl.holder = holder[di]
			pl.gw = via[di]
			if pl.gw == "" {
				pl.gw = ct.coLeaderGW(di, k)
			}
			// The linear path: holder, then egress when distinct, per
			// cluster in visiting order.
			var path []int
			for _, cl := range order {
				path = append(path, holder[cl])
				if x := egress[cl]; x >= 0 && x != holder[cl] {
					path = append(path, x)
				}
			}
			if i := posIn(path, c.myRank); i >= 0 {
				if i > 0 {
					pl.pred = path[i-1]
				}
				if i+1 < len(path) {
					pl.succ = path[i+1]
				}
				pl.terminal = i == len(path)-1
			}
			local := []int{holder[di]}
			if x := egress[di]; x >= 0 && x != holder[di] {
				local = append(local, x)
			}
			for _, m := range members {
				if posIn(local, m) < 0 {
					pl.sinks = append(pl.sinks, m)
				}
			}
			pl.termCluster = di == order[len(order)-1]
			pl.nseg = 1
			if sz > 2*seg {
				pl.nseg = (sz + seg - 1) / seg
			}
			if pl.nseg > maxSeg {
				maxSeg = pl.nseg
			}
		}
		plans[k] = pl
	}

	chunkOf := func(pl *shardPlan, s int) []byte {
		lo, hi := pl.lo, pl.hi
		if pl.nseg > 1 {
			lo = pl.lo + s*seg
			if hi = lo + seg; hi > pl.hi {
				hi = pl.hi
			}
		}
		return data[lo:hi]
	}

	// Segment cycles along the relay paths.
	for s := 0; s < maxSeg; s++ {
		for k := 0; k < K; k++ {
			pl := &plans[k]
			if pl.hi == pl.lo || s >= pl.nseg {
				continue
			}
			chunk := chunkOf(pl, s)
			if pl.pred >= 0 && !pl.terminal {
				b.recv(pl.pred, chunk)
				b.tagRound(k, pl.gw)
				b.endRound()
			}
			if pl.succ >= 0 {
				b.send(pl.succ, chunk)
				b.tagRound(k, pl.gw)
				b.endRound()
			}
		}
	}

	// Post phase, serialized per shard. The terminal rank matches all its
	// (long since buffered) segments in one round. In every non-terminal
	// cluster the holder then streams the shard's segments — all on the
	// eager path, so nothing here ever blocks a sender — to the members
	// the path never touched, which match them in one deferred round. The
	// terminal cluster instead fans the assembled shard out through a
	// whole-shard binomial tree rooted at the terminal rank.
	//
	// FIFO safety: every rank's cycle rounds precede its post rounds and
	// the post phases run in ascending shard order on every rank, so any
	// directed pair that carries several streams (a path lane of one shard
	// plus a fan-out lane of another) sends and matches them in the same
	// global (cycle, then shard-ascending post) order.
	for k := 0; k < K; k++ {
		pl := &plans[k]
		if pl.hi == pl.lo {
			continue
		}
		if pl.terminal && pl.pred >= 0 {
			for s := 0; s < pl.nseg; s++ {
				b.recv(pl.pred, chunkOf(pl, s))
			}
			b.tagRound(k, pl.gw)
			b.endRound()
		}
		if !pl.termCluster {
			if c.myRank == pl.holder && len(pl.sinks) > 0 {
				for s := 0; s < pl.nseg; s++ {
					for _, sk := range pl.sinks {
						b.send(sk, chunkOf(pl, s))
					}
				}
				b.tagRound(k, pl.gw)
				b.endRound()
			} else if posIn(pl.sinks, c.myRank) >= 0 {
				for s := 0; s < pl.nseg; s++ {
					b.recv(pl.holder, chunkOf(pl, s))
				}
				b.tagRound(k, pl.gw)
				b.endRound()
			}
			continue
		}
		// Terminal cluster: binomial fan-out of the whole shard from the
		// terminal rank to the members the path never touched.
		group := make([]int, 0, len(members))
		for _, m := range members {
			if m == pl.holder || posIn(pl.sinks, m) >= 0 {
				group = append(group, m)
			}
		}
		if posIn(group, c.myRank) < 0 || len(group) < 2 {
			continue
		}
		shard := data[pl.lo:pl.hi]
		parent, children := binomialOver(group, posIn(group, pl.holder), posIn(group, c.myRank))
		if parent >= 0 {
			b.recv(parent, shard)
			b.tagRound(k, pl.gw)
			b.endRound()
		}
		for _, ch := range children {
			b.send(ch, shard)
		}
		if len(children) > 0 {
			b.tagRound(k, pl.gw)
		}
		b.endRound()
	}
	return b.build(func() {
		if c.myRank != root {
			c.p.M.Compute(c.p.memTime(len(data)))
			UnpackBuf(buf, count, dt, data)
		}
	})
}

// compileAllreduceHierMulti: intra-cluster binomial reduce to the primary
// leader, a shard scatter to the co-leaders, a per-shard binomial
// reduce-then-broadcast over the clusters' k-th co-leaders (rooted at
// cluster 0), and per-shard intra-cluster trees fanning the reduced
// shards back to every member. The backbone carries each cluster's
// reduced vector once per direction — as the single-leader form — but
// split across every gateway of the leader set concurrently.
func (c *Comm) compileAllreduceHierMulti(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) *schedule {
	ct := c.topo()
	K := ct.maxLeaderSet()
	es := dt.Size()
	members, myPos, leaderPos := c.clusterPos()
	leader := ct.leaders[ct.myCluster]
	acc := make([]byte, count*es)
	eb := splitBounds(count, K)
	shard := func(k int) []byte { return acc[eb[k]*es : eb[k+1]*es] }
	scount := func(k int) int { return eb[k+1] - eb[k] }
	mine := ct.myShards(c.myRank, K)
	b := newSched("allreduce.hm")
	b.copyStep(acc, PackBuf(sendBuf, count, dt))
	b.endRound()

	// Phase 1: intra-cluster binomial reduce to the primary leader.
	parent, children := binomialOver(members, leaderPos, myPos)
	for i := len(children) - 1; i >= 0; i-- {
		part := make([]byte, len(acc))
		b.recv(children[i], part)
		b.reduce(acc, part, count, dt, op)
	}
	b.endRound()
	if parent >= 0 {
		b.send(parent, acc)
		b.endRound()
	}

	// Phase 2: the primary deals shard k of the cluster-reduced vector to
	// co-leader k.
	if c.myRank == leader {
		for k := 0; k < K; k++ {
			if cl := ct.coLeader(ct.myCluster, k); cl != leader && scount(k) > 0 {
				b.send(cl, shard(k))
			}
		}
		b.endRound()
	} else if len(mine) > 0 {
		for _, k := range mine {
			if scount(k) > 0 {
				b.recv(leader, shard(k))
			}
		}
		b.endRound()
	}

	// Phase 3: per-shard binomial reduce over the k-th co-leaders to
	// cluster 0's co-leader, result broadcast back down the same tree.
	// The cluster-level tree shape is identical for every k, so the
	// rounds merge across my shards.
	if len(mine) > 0 {
		group := make([]int, ct.nClusters)
		tree := func(k int) (int, []int) {
			for di := range group {
				group[di] = ct.coLeader(di, k)
			}
			return binomialOver(group, 0, ct.myCluster)
		}
		tag := func() { b.tagRound(mine[0], ct.coLeaderGW(ct.myCluster, mine[0])) }
		for _, k := range mine {
			if scount(k) == 0 {
				continue
			}
			_, kids := tree(k)
			for i := len(kids) - 1; i >= 0; i-- {
				part := make([]byte, scount(k)*es)
				b.recv(kids[i], part)
				b.reduce(shard(k), part, scount(k), dt, op)
			}
		}
		tag()
		b.endRound()
		for _, k := range mine {
			if scount(k) == 0 {
				continue
			}
			if p, _ := tree(k); p >= 0 {
				b.send(p, shard(k))
			}
		}
		tag()
		b.endRound()
		for _, k := range mine {
			if scount(k) == 0 {
				continue
			}
			if p, _ := tree(k); p >= 0 {
				b.recv(p, shard(k))
			}
		}
		tag()
		b.endRound()
		for _, k := range mine {
			if scount(k) == 0 {
				continue
			}
			_, kids := tree(k)
			for _, ch := range kids {
				b.send(ch, shard(k))
			}
		}
		tag()
		b.endRound()
	}

	// Phase 4: per-shard intra-cluster trees from the co-leaders.
	roots := make([]int, K)
	bufs := make([][]byte, K)
	for k := 0; k < K; k++ {
		roots[k], bufs[k] = ct.coLeader(ct.myCluster, k), shard(k)
	}
	c.shardTreeRounds(b, members, roots, bufs)
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(len(acc)))
		UnpackBuf(recvBuf, count, dt, acc)
	})
}

// allgatherShardLayout computes the multi-leader allgather's staging
// geometry: bb[di] are the byte bounds splitting cluster di's bundle into
// K shards, off[k][di] the offset of cluster di's piece within the
// shard-k staging buffer, and size[k] that buffer's total length.
func allgatherShardLayout(ct *commTopo, sz, K int) (bb [][]int, off [][]int, size []int) {
	bb = make([][]int, ct.nClusters)
	for di := range bb {
		bb[di] = splitBounds(len(ct.clusters[di])*sz, K)
	}
	off = make([][]int, K)
	size = make([]int, K)
	for k := 0; k < K; k++ {
		off[k] = make([]int, ct.nClusters+1)
		for di := 0; di < ct.nClusters; di++ {
			off[k][di] = size[k]
			size[k] += bb[di][k+1] - bb[di][k]
		}
		off[k][ct.nClusters] = size[k]
	}
	return bb, off, size
}

// compileAllgatherHierMulti: intra-cluster gather to the primary leader,
// a shard scatter of the home bundle to the co-leaders, a pairwise
// co-leader exchange (co-leader k of every cluster swaps shard k of its
// home bundle with its peers, receives pre-posted so the concurrent
// rendez-vous bodies cannot deadlock), and per-shard intra-cluster trees
// broadcasting each assembled shard-k staging buffer to every member.
// Each directed gateway carries 1/K of the inter-cluster bytes.
func (c *Comm) compileAllgatherHierMulti(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	ct := c.topo()
	K := ct.maxLeaderSet()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	members := ct.clusters[ct.myCluster]
	leader := ct.leaders[ct.myCluster]
	myD := ct.myCluster
	mineKs := ct.myShards(c.myRank, K)
	mine := PackBuf(sendBuf, count, dt)
	bb, off, size := allgatherShardLayout(ct, sz, K)
	// stage[k]: cluster di's bundle bytes [bb[di][k], bb[di][k+1]) at
	// offset off[k][di] — every member ends up holding all K buffers.
	stage := make([][]byte, K)
	for k := 0; k < K; k++ {
		stage[k] = make([]byte, size[k])
	}
	homeShard := func(k int) []byte {
		return stage[k][off[k][myD] : off[k][myD]+bb[myD][k+1]-bb[myD][k]]
	}
	b := newSched("allgather.hm")

	if c.myRank == leader {
		// Phase 1: gather the home bundle.
		bundle := make([]byte, len(members)*sz)
		for i, m := range members {
			slot := bundle[i*sz : (i+1)*sz]
			if m == c.myRank {
				b.copyStep(slot, mine)
				continue
			}
			b.recv(m, slot)
		}
		b.endRound()
		// Phase 2: deal shard k of the home bundle to co-leader k (my own
		// shards land in my staging directly).
		for k := 0; k < K; k++ {
			src := bundle[bb[myD][k]:bb[myD][k+1]]
			if len(src) == 0 {
				continue
			}
			if cl := ct.coLeader(myD, k); cl != leader {
				b.send(cl, src)
			} else {
				b.copyStep(homeShard(k), src)
			}
		}
		b.endRound()
	} else {
		b.send(leader, mine)
		b.endRound()
		if len(mineKs) > 0 {
			for _, k := range mineKs {
				if len(homeShard(k)) > 0 {
					b.recv(leader, homeShard(k))
				}
			}
			b.endRound()
		}
	}

	// Phase 3: pairwise co-leader shard exchange across clusters.
	if len(mineKs) > 0 {
		for _, k := range mineKs {
			for di := 0; di < ct.nClusters; di++ {
				if di == myD {
					continue
				}
				dst := stage[k][off[k][di]:off[k][di+1]]
				if len(dst) > 0 {
					b.recv(ct.coLeader(di, k), dst)
				}
			}
		}
		for _, k := range mineKs {
			if len(homeShard(k)) == 0 {
				continue
			}
			for di := 0; di < ct.nClusters; di++ {
				if di != myD {
					b.send(ct.coLeader(di, k), homeShard(k))
				}
			}
		}
		b.tagRound(mineKs[0], ct.coLeaderGW(myD, mineKs[0]))
		b.endRound()
	}

	// Phase 4: per-shard intra-cluster trees of the staging buffers.
	roots := make([]int, K)
	for k := 0; k < K; k++ {
		roots[k] = ct.coLeader(myD, k)
	}
	c.shardTreeRounds(b, members, roots, stage)
	return b.build(func() {
		c.p.M.Compute(c.p.memTime(n * sz))
		bun := make([]byte, 0, n*sz)
		for di := 0; di < ct.nClusters; di++ {
			bun = bun[:0]
			for k := 0; k < K; k++ {
				bun = append(bun, stage[k][off[k][di]:off[k][di+1]]...)
			}
			for i, m := range ct.clusters[di] {
				UnpackBuf(recvBuf[m*count*ex:], count, dt, bun[i*sz:(i+1)*sz])
			}
		}
	})
}

// compileAlltoallHierMulti is the direct-sharded two-level all-to-all.
// Alltoall cannot reduce backbone *bytes* (every block is unique), so the
// levers are where the bytes cross and what they pay on the way: for each
// directed cluster pair the bundle is striped over the pair's distinct
// emissary relays — co-leader pairs fronting a shared gateway, found
// exactly like the Bcast chain hops, so every bundle crosses its bridge
// in one hop with no store-and-forward device relays — and the gather /
// exchange / scatter pipeline never funnels through the primary leader:
// members feed their slices straight to the emissaries, the emissaries
// exchange full-duplex (receives pre-posted alongside the sends in one
// round, so opposite directions of a bridge stay concurrently busy), and
// the inbound shards scatter block-wise straight to their final ranks.
//
// Every rank emits the same global round sequence — stage, intra
// exchange, gather, bridge exchange, scatter — with identical ascending
// (cluster, relay, source, destination) enumeration inside each round,
// so any directed pair reused across rounds sends and matches its
// messages in the same order (one tag, FIFO per source).
func (c *Comm) compileAlltoallHierMulti(sendBuf, recvBuf []byte, count int, dt Datatype) *schedule {
	ct := c.topo()
	K := ct.maxLeaderSet()
	n := c.Size()
	sz := count * dt.Size()
	ex := dt.Extent()
	members := ct.clusters[ct.myCluster]
	myD := ct.myCluster
	mine := PackBuf(sendBuf, n*count, dt)
	myRecv := make([]byte, n*sz)
	b := newSched("alltoall.hm")

	// The distinct emissary relays striping bundle ci -> cj; shard p of
	// the bundle rides relay p. Identical on every rank.
	type relay struct {
		x, y int
		gw   string
	}
	relays := func(ci, cj int) []relay {
		var rs []relay
		for k := 0; k < K; k++ {
			x, y, g := ct.emissary(ci, cj, k)
			if x < 0 {
				x = ct.coLeader(ci, k)
			}
			dup := false
			for _, r := range rs {
				if r.x == x && r.y == y {
					dup = true
					break
				}
			}
			if !dup {
				rs = append(rs, relay{x, y, g})
			}
		}
		return rs
	}
	overlap := func(alo, ahi, blo, bhi int) (int, int) {
		if blo > alo {
			alo = blo
		}
		if bhi < ahi {
			ahi = bhi
		}
		return alo, ahi
	}

	// Round 0: stage my per-cluster outbound bundles (src-member-ascending
	// slices of the directed bundle) and keep my own block.
	out := make([][]byte, ct.nClusters)
	for cj := 0; cj < ct.nClusters; cj++ {
		if cj == myD {
			continue
		}
		dm := ct.clusters[cj]
		out[cj] = make([]byte, len(dm)*sz)
		for jj, dst := range dm {
			b.copyStep(out[cj][jj*sz:(jj+1)*sz], mine[dst*sz:(dst+1)*sz])
		}
	}
	b.copyStep(myRecv[c.myRank*sz:(c.myRank+1)*sz], mine[c.myRank*sz:(c.myRank+1)*sz])
	b.endRound()

	// Round 1: intra-cluster blocks exchange pairwise on the fast fabric.
	for _, m := range members {
		if m == c.myRank {
			continue
		}
		b.recv(m, myRecv[m*sz:(m+1)*sz])
	}
	for _, m := range members {
		if m == c.myRank {
			continue
		}
		b.send(m, mine[m*sz:(m+1)*sz])
	}
	b.endRound()

	// Round 2: gather — each member feeds the pieces of its bundle slice
	// to the emissary whose shard they fall in; emissaries assemble their
	// outbound shards.
	shardOut := make([][][]byte, ct.nClusters)
	myGW := ""
	for cj := 0; cj < ct.nClusters; cj++ {
		if cj == myD {
			continue
		}
		rs := relays(myD, cj)
		lj := len(ct.clusters[cj])
		pb := splitBounds(len(members)*lj*sz, len(rs))
		shardOut[cj] = make([][]byte, len(rs))
		for p, r := range rs {
			if r.x == c.myRank {
				shardOut[cj][p] = make([]byte, pb[p+1]-pb[p])
				if myGW == "" {
					myGW = r.gw
				}
			}
		}
		for p, r := range rs {
			for i := range members {
				lo, hi := overlap(i*lj*sz, (i+1)*lj*sz, pb[p], pb[p+1])
				if hi <= lo {
					continue
				}
				switch {
				case r.x == c.myRank && members[i] == c.myRank:
					b.copyStep(shardOut[cj][p][lo-pb[p]:hi-pb[p]], out[cj][lo-i*lj*sz:hi-i*lj*sz])
				case r.x == c.myRank:
					b.recv(members[i], shardOut[cj][p][lo-pb[p]:hi-pb[p]])
				case members[i] == c.myRank:
					b.send(r.x, out[cj][lo-i*lj*sz:hi-i*lj*sz])
				}
			}
		}
	}
	if myGW != "" {
		b.tagRound(0, myGW)
	}
	b.endRound()

	// Round 3: the bridge exchange — full duplex, every inbound chunk
	// pre-posted alongside the outbound sends. Big shards cross in
	// eager-path segments rather than one rendez-vous body: the segments
	// complete locally at the sender, keep both directions of a shared
	// bridge concurrently busy, and skip the whole-body handshake.
	seg := c.segmentBytes()
	chunks := func(buf []byte, emit func(chunk []byte)) {
		if len(buf) <= 2*seg {
			emit(buf)
			return
		}
		for off := 0; off < len(buf); off += seg {
			hi := off + seg
			if hi > len(buf) {
				hi = len(buf)
			}
			emit(buf[off:hi])
		}
	}
	inShard := make([][][]byte, ct.nClusters)
	for ci := 0; ci < ct.nClusters; ci++ {
		if ci == myD {
			continue
		}
		rs := relays(ci, myD)
		pb := splitBounds(len(ct.clusters[ci])*len(members)*sz, len(rs))
		inShard[ci] = make([][]byte, len(rs))
		for p, r := range rs {
			if r.y != c.myRank {
				continue
			}
			inShard[ci][p] = make([]byte, pb[p+1]-pb[p])
			chunks(inShard[ci][p], func(chunk []byte) { b.recv(r.x, chunk) })
			if myGW == "" {
				myGW = r.gw
			}
		}
	}
	for cj := 0; cj < ct.nClusters; cj++ {
		if cj == myD {
			continue
		}
		for p, r := range relays(myD, cj) {
			if r.x == c.myRank {
				chunks(shardOut[cj][p], func(chunk []byte) { b.send(r.y, chunk) })
			}
		}
	}
	if myGW != "" {
		b.tagRound(0, myGW)
	}
	b.endRound()

	// Round 4: scatter — every inbound shard's block pieces go straight
	// to their final ranks; destinations land them in receive-vector
	// position, offset by where the shard boundary cut the block.
	for ci := 0; ci < ct.nClusters; ci++ {
		if ci == myD {
			continue
		}
		rs := relays(ci, myD)
		sm := ct.clusters[ci]
		pb := splitBounds(len(sm)*len(members)*sz, len(rs))
		for p, r := range rs {
			fromMe := r.y == c.myRank
			for i, srcR := range sm {
				for j, dst := range members {
					blo := (i*len(members) + j) * sz
					lo, hi := overlap(blo, blo+sz, pb[p], pb[p+1])
					if hi <= lo {
						continue
					}
					dstBuf := myRecv[srcR*sz+(lo-blo) : srcR*sz+(hi-blo)]
					switch {
					case fromMe && dst == c.myRank:
						b.copyStep(dstBuf, inShard[ci][p][lo-pb[p]:hi-pb[p]])
					case fromMe:
						b.send(dst, inShard[ci][p][lo-pb[p]:hi-pb[p]])
					case dst == c.myRank:
						b.recv(r.y, dstBuf)
					}
				}
			}
		}
	}
	if myGW != "" {
		b.tagRound(0, myGW)
	}
	b.endRound()

	return b.build(func() {
		c.p.M.Compute(c.p.memTime(n * sz))
		for r := 0; r < n; r++ {
			UnpackBuf(recvBuf[r*count*ex:], count, dt, myRecv[r*sz:(r+1)*sz])
		}
	})
}
