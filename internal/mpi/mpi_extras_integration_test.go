package mpi_test

import (
	"fmt"
	"testing"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/vtime"
)

func TestSsendCompletesOnlyAfterMatch(t *testing.T) {
	// The receiver posts its receive 2 ms late; a synchronous send must
	// not complete before that, even for a tiny message.
	sess, err := cluster.Build(cluster.TwoNodes("sisci"))
	if err != nil {
		t.Fatal(err)
	}
	var sendDone, recvPosted vtime.Time
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			if err := comm.Ssend([]byte("x"), 1, mpi.Byte, 1, 0); err != nil {
				return err
			}
			sendDone = sess.S.Now()
			return nil
		}
		sess.Ranks[rank].Proc.Sleep(2 * vtime.Millisecond)
		recvPosted = sess.S.Now()
		_, err := comm.Recv(make([]byte, 1), 1, mpi.Byte, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvPosted {
		t.Fatalf("Ssend completed at %v, before the receive was posted at %v", sendDone, recvPosted)
	}
	// It was forced through the rendez-vous path.
	if sess.Ranks[0].ChMad.NRndv != 1 {
		t.Fatalf("Ssend did not use rendez-vous: rndv=%d", sess.Ranks[0].ChMad.NRndv)
	}
}

func TestSsendIntraNodeAndSelf(t *testing.T) {
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{{Name: "smp", Procs: 2}},
		Networks: []cluster.NetworkSpec{
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"smp"}},
		},
	}
	sess, err := cluster.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	var done, posted vtime.Time
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			// smp_plug synchronous send.
			if err := comm.Ssend([]byte("ab"), 2, mpi.Byte, 1, 0); err != nil {
				return err
			}
			done = sess.S.Now()
			// ch_self synchronous send: post first to avoid deadlock.
			req, err := comm.Irecv(make([]byte, 2), 2, mpi.Byte, 0, 1)
			if err != nil {
				return err
			}
			if err := comm.Ssend([]byte("cd"), 2, mpi.Byte, 0, 1); err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		sess.Ranks[rank].Proc.Sleep(vtime.Millisecond)
		posted = sess.S.Now()
		_, err := comm.Recv(make([]byte, 2), 2, mpi.Byte, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if done < posted {
		t.Fatalf("smp Ssend completed at %v before match at %v", done, posted)
	}
}

func TestWaitAny(t *testing.T) {
	sess, err := cluster.Build(nNodeTopo(3, "sisci"))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			b1 := make([]byte, 1)
			b2 := make([]byte, 1)
			r1, err := comm.Irecv(b1, 1, mpi.Byte, 1, 0)
			if err != nil {
				return err
			}
			r2, err := comm.Irecv(b2, 1, mpi.Byte, 2, 0)
			if err != nil {
				return err
			}
			// Rank 2 sends first (rank 1 sleeps), so index 1 wins.
			idx, st, err := mpi.WaitAny(r1, r2)
			if err != nil {
				return err
			}
			if idx != 1 || st.Source != 2 {
				return fmt.Errorf("WaitAny picked %d from %d", idx, st.Source)
			}
			if _, err := r1.Wait(); err != nil {
				return err
			}
			return nil
		}
		if rank == 1 {
			sess.Ranks[rank].Proc.Sleep(5 * vtime.Millisecond)
		}
		return comm.Send([]byte{byte(rank)}, 1, mpi.Byte, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgathervAndReduceScatter(t *testing.T) {
	const n = 4
	_, err := cluster.Launch(nNodeTopo(n, "bip"), func(rank int, comm *mpi.Comm) error {
		// Allgatherv: rank r contributes r+1 copies of r.
		counts := []int{1, 2, 3, 4}
		total := 10
		mine := make([]int64, rank+1)
		for i := range mine {
			mine[i] = int64(rank)
		}
		out := make([]byte, 8*total)
		if err := comm.Allgatherv(mpi.Int64Bytes(mine), rank+1, out, counts, nil, mpi.Int64); err != nil {
			return err
		}
		vals := mpi.BytesInt64(out)
		idx := 0
		for r := 0; r < n; r++ {
			for k := 0; k <= r; k++ {
				if vals[idx] != int64(r) {
					return fmt.Errorf("allgatherv[%d] = %d, want %d", idx, vals[idx], r)
				}
				idx++
			}
		}

		// ReduceScatter: each rank contributes vector [0,1,...,4n-1]
		// scaled by (rank+1); rank r receives block r of the sum.
		scale := int64(rank + 1)
		contrib := make([]int64, 2*n)
		for i := range contrib {
			contrib[i] = scale * int64(i)
		}
		rec := make([]byte, 8*2)
		if err := comm.ReduceScatter(mpi.Int64Bytes(contrib), rec, 2, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		sumScale := int64(n * (n + 1) / 2)
		got := mpi.BytesInt64(rec)
		for j := 0; j < 2; j++ {
			want := sumScale * int64(2*rank+j)
			if got[j] != want {
				return fmt.Errorf("reducescatter[%d] = %d, want %d", j, got[j], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCart2DStencilNeighbors runs a 2x3 Cartesian halo exchange where each
// rank sums its neighbours' ranks — a structural check of Shift on a real
// communicator.
func TestCart2DStencilNeighbors(t *testing.T) {
	const n = 6
	_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
		cart, err := mpi.CartCreate(comm, []int{2, 3}, []bool{true, true})
		if err != nil {
			return err
		}
		sum := 0
		for dim := 0; dim < 2; dim++ {
			for _, disp := range []int{1, -1} {
				src, dst, srcOK, dstOK := cart.Shift(dim, disp)
				if !srcOK || !dstOK {
					return fmt.Errorf("fully periodic grid has null neighbours")
				}
				in := make([]byte, 8)
				if _, err := comm.Sendrecv(
					mpi.Int64Bytes([]int64{int64(rank)}), 1, mpi.Int64, dst, 10+dim,
					in, 1, mpi.Int64, src, 10+dim); err != nil {
					return err
				}
				sum += int(mpi.BytesInt64(in)[0])
			}
		}
		// Verify against directly computed neighbour ranks.
		want := 0
		me := cart.Coords(rank)
		for dim := 0; dim < 2; dim++ {
			for _, disp := range []int{1, -1} {
				c := append([]int(nil), me...)
				c[dim] -= disp // the rank whose send we received
				r, _ := cart.RankOf(c)
				want += r
			}
		}
		if sum != want {
			return fmt.Errorf("rank %d: neighbour sum %d, want %d", rank, sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
