package mpi

import (
	"fmt"
)

// PersistentRequest is a reusable communication request
// (MPI_Send_init / MPI_Recv_init): the argument list is bound once, then
// each Start initiates one transfer. The classic optimization for
// iterative stencil codes that post the same halo exchange every step.
type PersistentRequest struct {
	c      *Comm
	isSend bool

	buf   []byte
	count int
	dt    Datatype
	peer  int // dest or src (communicator rank; AnySource allowed on recv)
	tag   int

	active *Request
}

// SendInit creates a persistent standard-mode send request.
func (c *Comm) SendInit(buf []byte, count int, dt Datatype, dest, tag int) (*PersistentRequest, error) {
	if err := c.checkLive("SendInit"); err != nil {
		return nil, err
	}
	if err := c.checkPeer("SendInit", dest); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: SendInit: negative tag %d", tag)
	}
	return &PersistentRequest{c: c, isSend: true, buf: buf, count: count, dt: dt, peer: dest, tag: tag}, nil
}

// RecvInit creates a persistent receive request. src may be AnySource.
func (c *Comm) RecvInit(buf []byte, count int, dt Datatype, src, tag int) (*PersistentRequest, error) {
	if err := c.checkLive("RecvInit"); err != nil {
		return nil, err
	}
	if src != AnySource {
		if err := c.checkPeer("RecvInit", src); err != nil {
			return nil, err
		}
	}
	return &PersistentRequest{c: c, isSend: false, buf: buf, count: count, dt: dt, peer: src, tag: tag}, nil
}

// Start initiates one transfer with the bound arguments (MPI_Start).
// Starting an already-active request is an error.
func (p *PersistentRequest) Start() error {
	if p.active != nil && !p.active.finished {
		return fmt.Errorf("mpi: Start on an active persistent request")
	}
	var req *Request
	var err error
	if p.isSend {
		req, err = p.c.Isend(p.buf, p.count, p.dt, p.peer, p.tag)
	} else {
		req, err = p.c.Irecv(p.buf, p.count, p.dt, p.peer, p.tag)
	}
	if err != nil {
		return err
	}
	p.active = req
	return nil
}

// Wait completes the current transfer (MPI_Wait on a started persistent
// request). The request may be started again afterwards.
func (p *PersistentRequest) Wait() (*Status, error) {
	if p.active == nil {
		return nil, fmt.Errorf("mpi: Wait on a never-started persistent request")
	}
	return p.active.Wait()
}

// Test polls the current transfer without blocking.
func (p *PersistentRequest) Test() (bool, *Status, error) {
	if p.active == nil {
		return false, nil, fmt.Errorf("mpi: Test on a never-started persistent request")
	}
	return p.active.Test()
}

// StartAll starts a set of persistent requests (MPI_Startall).
func StartAll(reqs ...*PersistentRequest) error {
	for _, r := range reqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllPersistent completes a set of started persistent requests.
func WaitAllPersistent(reqs ...*PersistentRequest) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pack serializes count elements of dt from buf into a contiguous byte
// slice (MPI_Pack), charging the local memcpy.
func (c *Comm) Pack(buf []byte, count int, dt Datatype) []byte {
	out := PackBuf(buf, count, dt)
	if !IsContiguous(dt) {
		c.p.M.Compute(c.p.memTime(len(out)))
	}
	return out
}

// Unpack deserializes contiguous bytes into count elements of dt inside
// buf (MPI_Unpack).
func (c *Comm) Unpack(packed []byte, buf []byte, count int, dt Datatype) {
	if !IsContiguous(dt) {
		c.p.M.Compute(c.p.memTime(len(packed)))
	}
	UnpackBuf(buf, count, dt, packed)
}
