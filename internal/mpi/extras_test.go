package mpi

import "testing"

func TestCartCoordsRankRoundtrip(t *testing.T) {
	c := &Cart{Dims: []int{3, 4}, Periodic: []bool{false, true}}
	for r := 0; r < 12; r++ {
		coords := c.Coords(r)
		back, ok := c.RankOf(coords)
		if !ok || back != r {
			t.Fatalf("rank %d -> %v -> %d (ok=%v)", r, coords, back, ok)
		}
	}
	// Row-major: rank = x*4 + y.
	if got := c.Coords(7); got[0] != 1 || got[1] != 3 {
		t.Fatalf("Coords(7) = %v", got)
	}
}

func TestCartPeriodicWrap(t *testing.T) {
	c := &Cart{Dims: []int{3, 4}, Periodic: []bool{false, true}}
	// Off-grid on the periodic dimension wraps.
	if r, ok := c.RankOf([]int{1, -1}); !ok || r != 1*4+3 {
		t.Fatalf("periodic wrap: (%d,%v)", r, ok)
	}
	// Off-grid on the non-periodic dimension is PROC_NULL.
	if _, ok := c.RankOf([]int{-1, 0}); ok {
		t.Fatal("non-periodic edge should be null")
	}
	if _, ok := c.RankOf([]int{3, 0}); ok {
		t.Fatal("non-periodic overflow should be null")
	}
}

func TestCartCreateValidation(t *testing.T) {
	comm := &Comm{group: make([]int, 12)}
	if _, err := CartCreate(comm, []int{3, 4}, []bool{true}); err == nil {
		t.Error("mismatched periodic length accepted")
	}
	if _, err := CartCreate(comm, []int{3, 5}, []bool{true, true}); err == nil {
		t.Error("wrong grid volume accepted")
	}
	if _, err := CartCreate(comm, []int{0, 4}, []bool{true, true}); err == nil {
		t.Error("zero dimension accepted")
	}
	ct, err := CartCreate(comm, []int{3, 4}, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Dims) != 2 {
		t.Fatal("dims lost")
	}
}
