package mpi_test

import (
	"fmt"
	"testing"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

// TestPersistentHaloExchange drives a persistent-request halo exchange for
// many iterations — the workload MPI_Send_init exists for — and checks
// the data every step.
func TestPersistentHaloExchange(t *testing.T) {
	const n = 4
	const steps = 10
	_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
		right := (rank + 1) % n
		left := (rank - 1 + n) % n
		out := make([]byte, 8)
		in := make([]byte, 8)

		sreq, err := comm.SendInit(out, 1, mpi.Int64, right, 0)
		if err != nil {
			return err
		}
		rreq, err := comm.RecvInit(in, 1, mpi.Int64, left, 0)
		if err != nil {
			return err
		}
		for step := 0; step < steps; step++ {
			copy(out, mpi.Int64Bytes([]int64{int64(rank*1000 + step)}))
			if err := mpi.StartAll(rreq, sreq); err != nil {
				return err
			}
			if err := mpi.WaitAllPersistent(rreq, sreq); err != nil {
				return err
			}
			want := int64(left*1000 + step)
			if got := mpi.BytesInt64(in)[0]; got != want {
				return fmt.Errorf("rank %d step %d: got %d, want %d", rank, step, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentMisuse(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if rank != 0 {
			// Peer side of the single successful Start below.
			_, err := comm.Recv(make([]byte, 1), 1, mpi.Byte, 0, 0)
			return err
		}
		if _, err := comm.SendInit(nil, 0, mpi.Byte, 9, 0); err == nil {
			return fmt.Errorf("out-of-range dest accepted")
		}
		if _, err := comm.SendInit(nil, 0, mpi.Byte, 1, -1); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		p, err := comm.SendInit([]byte{7}, 1, mpi.Byte, 1, 0)
		if err != nil {
			return err
		}
		if _, err := p.Wait(); err == nil {
			return fmt.Errorf("Wait before Start accepted")
		}
		if _, _, err := p.Test(); err == nil {
			return fmt.Errorf("Test before Start accepted")
		}
		if err := p.Start(); err != nil {
			return err
		}
		if err := p.Start(); err == nil {
			return fmt.Errorf("double Start accepted")
		}
		if _, err := p.Wait(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommPackUnpack exercises the MPI_Pack/MPI_Unpack surface with a
// derived type.
func TestCommPackUnpack(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		dt := mpi.Vector(3, 1, 2, mpi.Int32) // every other int32
		src := make([]byte, dt.Extent())
		for i := range src {
			src[i] = byte(i)
		}
		packed := comm.Pack(src, 1, dt)
		if len(packed) != dt.Size() {
			return fmt.Errorf("packed %d bytes, want %d", len(packed), dt.Size())
		}
		dst := make([]byte, dt.Extent())
		comm.Unpack(packed, dst, 1, dt)
		repacked := comm.Pack(dst, 1, dt)
		for i := range packed {
			if repacked[i] != packed[i] {
				return fmt.Errorf("pack/unpack roundtrip broken at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
