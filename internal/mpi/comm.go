package mpi

import (
	"fmt"
	"sort"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/trace"
	"mpichmad/internal/vtime"
)

// Wildcards (same values as the ADI's).
const (
	AnySource = adi.AnySource
	AnyTag    = adi.AnyTag
)

// Undefined is the color passed to Split by ranks that want no resulting
// communicator (MPI_UNDEFINED).
const Undefined = -1

// Process is the per-rank MPI library state: the glue between the
// application-facing API and the devices below, created by the cluster
// session at MPI_Init time.
type Process struct {
	M   *marcel.Proc
	Eng *adi.Engine

	rank, size int
	route      func(dstWorldRank int) adi.Device
	devices    []adi.Device // distinct devices, for Finalize

	// World is MPI_COMM_WORLD.
	World *Comm

	// nextCtx is this process's context-id allocator; agreement across
	// ranks is established collectively at communicator creation.
	nextCtx int

	// hier is the discovered cluster structure (nil: flat collectives
	// only) and collMode the algorithm-selection override; see topology.go.
	hier     *Hierarchy
	collMode CollMode

	// tuned is the measured crossover table installed by Autotune (nil:
	// analytic fallback); forcedAlgo is the autotuner's candidate hook,
	// overriding every other selection while a timed run is in flight.
	tuned      *tuneTable
	forcedAlgo *collAlgo

	// linkClass[dst] names the device class of the link toward each world
	// rank ("self", "smp", "san", "wan"), installed by the cluster wiring
	// when the session runs the per-link device mux (nil otherwise);
	// classProbes lists the representative rank pairs the autotuner times
	// to measure per-class eager thresholds, identical on every rank;
	// classSwitch holds the measured per-class thresholds once installed.
	// linkClassFn/linkClassMemo are the lazy alternative at scale: the
	// session installs a resolver instead of an N-entry table, and each
	// destination's class is resolved on first query and memoized for the
	// life of the process (matching the eager table's frozen-at-build
	// semantics across re-plans).
	linkClass     []string
	linkClassFn   func(dst int) string
	linkClassMemo map[int]string
	classProbes   []ClassProbe
	classSwitch   map[string]int
	// relayWindows holds the per-backbone relay credit windows sized from
	// each gateway's bandwidth-delay product (RelayWindow tune rows).
	relayWindows map[string]int

	// tracer, when installed by SetTrace, records schedule-round spans
	// of every collective this rank executes on traceTrack (the rank's
	// Chrome track). Nil: the progress engine pays one branch per op.
	tracer     *trace.Tracer
	traceTrack int

	memcpyBW  float64
	finalized bool
}

// SetTrace attaches the session tracer to this rank's progress engine;
// track is the rank's trace track. Called by the cluster wiring.
func (p *Process) SetTrace(t *trace.Tracer, track int) {
	p.tracer = t
	p.traceTrack = track
}

// NewProcess wires a rank's MPI state. route selects the device for each
// destination world rank; devices lists the distinct devices for
// Finalize-time shutdown.
func NewProcess(m *marcel.Proc, eng *adi.Engine, rank, size int,
	route func(int) adi.Device, devices []adi.Device) *Process {
	p := &Process{
		M: m, Eng: eng,
		rank: rank, size: size,
		route: route, devices: devices,
		nextCtx:  2, // 0/1 are world's p2p and collective contexts
		memcpyBW: 350 * netsim.MB,
	}
	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	p.World = &Comm{p: p, group: group, myRank: rank, ctx: 0}
	return p
}

// Rank returns the world rank.
func (p *Process) Rank() int { return p.rank }

// Size returns the world size.
func (p *Process) Size() int { return p.size }

// memTime is the CPU cost of an n-byte local memcpy (datatype packing,
// collective staging).
func (p *Process) memTime(n int) vtime.Duration {
	if n <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / p.memcpyBW * float64(vtime.Second))
}

// Finalize performs the MPI_Finalize sequence: a world barrier, then
// device shutdown.
func (p *Process) Finalize() error {
	if p.finalized {
		return fmt.Errorf("mpi: Finalize called twice on rank %d", p.rank)
	}
	if err := p.World.Barrier(); err != nil {
		return err
	}
	p.finalized = true
	for _, d := range p.devices {
		d.Shutdown()
	}
	return nil
}

// AuditDevices runs the Finalize-time invariant audit on every device of
// this rank that implements adi.Auditor, returning the first violation.
// Meaningful only after the simulation has fully drained (a gateway may
// forward for other ranks after its own Finalize), so the cluster session
// calls it after the scheduler returns rather than inside Finalize.
func (p *Process) AuditDevices() error {
	for _, d := range p.devices {
		a, ok := d.(adi.Auditor)
		if !ok {
			continue
		}
		if err := a.AuditInvariants(); err != nil {
			return fmt.Errorf("mpi: rank %d device %s: %w", p.rank, d.Name(), err)
		}
	}
	return nil
}

// Comm is an MPI communicator: a process group plus an isolated context.
// Point-to-point traffic uses ctx, collectives ctx+1, mirroring MPICH's
// paired context ids.
type Comm struct {
	p      *Process
	group  []int // comm rank -> world rank
	myRank int   // my rank within the communicator
	ctx    int

	// ct caches the communicator's dense hierarchy view (topology.go),
	// computed on first collective dispatch.
	ct *commTopo

	// tt caches the process's autotuned table as resolved by this
	// communicator's first collective (tuning.go); ttSet distinguishes
	// "resolved to nil" from "not yet resolved".
	tt    *tuneTable
	ttSet bool

	// eng is the communicator's collective progress engine (nbc.go),
	// created on the first scheduled collective.
	eng *collEngine
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Context returns the communicator's point-to-point context id.
func (c *Comm) Context() int { return c.ctx }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// commRankOfWorld translates a world rank back to this communicator's
// numbering; -1 if absent.
func (c *Comm) commRankOfWorld(w int) int {
	for i, g := range c.group {
		if g == w {
			return i
		}
	}
	return -1
}

// allocContext agrees on a fresh context id across the parent
// communicator: the max of every member's allocator (then everyone bumps
// past it). Correct because any two communicators sharing a process can
// never be given the same id by that process's allocator.
func (c *Comm) allocContext() (int, error) {
	local := Int64Bytes([]int64{int64(c.p.nextCtx)})
	out := make([]byte, 8)
	if err := c.Allreduce(local, out, 1, Int64, OpMax); err != nil {
		return 0, err
	}
	ctx := int(BytesInt64(out)[0])
	c.p.nextCtx = ctx + 2
	return ctx, nil
}

// Dup creates a duplicate communicator with a fresh context
// (MPI_Comm_dup). Collective over c.
func (c *Comm) Dup() (*Comm, error) {
	ctx, err := c.allocContext()
	if err != nil {
		return nil, err
	}
	g := make([]int, len(c.group))
	copy(g, c.group)
	return &Comm{p: c.p, group: g, myRank: c.myRank, ctx: ctx}, nil
}

// Split partitions the communicator by color, ordering each new group by
// (key, old rank) (MPI_Comm_split). Ranks passing Undefined get nil.
// Collective over c.
func (c *Comm) Split(color, key int) (*Comm, error) {
	ctx, err := c.allocContext()
	if err != nil {
		return nil, err
	}
	mine := Int64Bytes([]int64{int64(color), int64(key)})
	all := make([]byte, 16*c.Size())
	if err := c.Allgather(mine, all, 2, Int64); err != nil {
		return nil, err
	}
	vals := BytesInt64(all)
	if color == Undefined {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var members []member
	for r := 0; r < c.Size(); r++ {
		if int(vals[2*r]) == color {
			members = append(members, member{key: int(vals[2*r+1]), oldRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].oldRank < members[j].oldRank
	})
	group := make([]int, len(members))
	myNew := -1
	for i, m := range members {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.myRank {
			myNew = i
		}
	}
	return &Comm{p: c.p, group: group, myRank: myNew, ctx: ctx}, nil
}

// Group returns a copy of the communicator's world-rank membership
// (MPI_Comm_group).
func (c *Comm) Group() []int {
	g := make([]int, len(c.group))
	copy(g, c.group)
	return g
}
