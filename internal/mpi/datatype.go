// Package mpi implements the MPI library surface of the reproduction:
// communicators, groups, datatypes, point-to-point operations (blocking
// and non-blocking), and collectives, layered over the ADI exactly as in
// MPICH's architecture (Fig. 1: "generic part" -> "generic ADI code" ->
// devices).
//
// Buffers are []byte; a Datatype describes the element layout inside
// them, mirroring MPI's (buffer, count, datatype) triples. Helpers
// convert []int32/[]int64/[]float64 to and from wire representation.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype describes the memory layout of one element.
type Datatype interface {
	// Size is the number of bytes of actual data per element.
	Size() int
	// Extent is the span of one element in the user buffer (>= Size
	// for non-contiguous types).
	Extent() int
	// Name identifies the type in diagnostics.
	Name() string
	// packOne serializes one element from src (Extent bytes) into dst
	// (Size bytes).
	packOne(dst, src []byte)
	// unpackOne deserializes one element from src (Size bytes) into
	// dst (Extent bytes).
	unpackOne(dst, src []byte)
}

// basic is a contiguous fixed-width type.
type basic struct {
	name  string
	width int
}

func (b *basic) Size() int               { return b.width }
func (b *basic) Extent() int             { return b.width }
func (b *basic) Name() string            { return b.name }
func (b *basic) packOne(dst, src []byte) { copy(dst, src[:b.width]) }
func (b *basic) unpackOne(dst, src []byte) {
	copy(dst[:b.width], src)
}

// Predefined basic datatypes.
var (
	Byte    Datatype = &basic{"MPI_BYTE", 1}
	Char    Datatype = &basic{"MPI_CHAR", 1}
	Int32   Datatype = &basic{"MPI_INT32", 4}
	Int64   Datatype = &basic{"MPI_INT64", 8}
	Float32 Datatype = &basic{"MPI_FLOAT", 4}
	Float64 Datatype = &basic{"MPI_DOUBLE", 8}
)

// Contiguous builds a type of count consecutive elements of base
// (MPI_Type_contiguous).
func Contiguous(count int, base Datatype) Datatype {
	return &contiguous{base: base, count: count}
}

type contiguous struct {
	base  Datatype
	count int
}

func (c *contiguous) Size() int    { return c.count * c.base.Size() }
func (c *contiguous) Extent() int  { return c.count * c.base.Extent() }
func (c *contiguous) Name() string { return fmt.Sprintf("contig(%d,%s)", c.count, c.base.Name()) }
func (c *contiguous) packOne(dst, src []byte) {
	bs, be := c.base.Size(), c.base.Extent()
	for i := 0; i < c.count; i++ {
		c.base.packOne(dst[i*bs:(i+1)*bs], src[i*be:])
	}
}
func (c *contiguous) unpackOne(dst, src []byte) {
	bs, be := c.base.Size(), c.base.Extent()
	for i := 0; i < c.count; i++ {
		c.base.unpackOne(dst[i*be:], src[i*bs:(i+1)*bs])
	}
}

// Vector builds a strided type: count blocks of blocklen base elements,
// with stride base elements between block starts (MPI_Type_vector).
func Vector(count, blocklen, stride int, base Datatype) Datatype {
	if blocklen > stride {
		panic("mpi: Vector blocklen exceeds stride")
	}
	return &vector{base: base, count: count, blocklen: blocklen, stride: stride}
}

type vector struct {
	base                    Datatype
	count, blocklen, stride int
}

func (v *vector) Size() int { return v.count * v.blocklen * v.base.Size() }
func (v *vector) Extent() int {
	if v.count == 0 {
		return 0
	}
	return ((v.count-1)*v.stride + v.blocklen) * v.base.Extent()
}
func (v *vector) Name() string {
	return fmt.Sprintf("vector(%d,%d,%d,%s)", v.count, v.blocklen, v.stride, v.base.Name())
}
func (v *vector) packOne(dst, src []byte) {
	bs, be := v.base.Size(), v.base.Extent()
	o := 0
	for i := 0; i < v.count; i++ {
		for j := 0; j < v.blocklen; j++ {
			v.base.packOne(dst[o:o+bs], src[(i*v.stride+j)*be:])
			o += bs
		}
	}
}
func (v *vector) unpackOne(dst, src []byte) {
	bs, be := v.base.Size(), v.base.Extent()
	o := 0
	for i := 0; i < v.count; i++ {
		for j := 0; j < v.blocklen; j++ {
			v.base.unpackOne(dst[(i*v.stride+j)*be:], src[o:o+bs])
			o += bs
		}
	}
}

// Indexed builds a type of variable-length blocks at element
// displacements (MPI_Type_indexed).
func Indexed(blocklens, displs []int, base Datatype) Datatype {
	if len(blocklens) != len(displs) {
		panic("mpi: Indexed blocklens/displs length mismatch")
	}
	return &indexed{base: base, blocklens: blocklens, displs: displs}
}

type indexed struct {
	base      Datatype
	blocklens []int
	displs    []int
}

func (x *indexed) Size() int {
	n := 0
	for _, b := range x.blocklens {
		n += b
	}
	return n * x.base.Size()
}
func (x *indexed) Extent() int {
	end := 0
	for i, b := range x.blocklens {
		if e := x.displs[i] + b; e > end {
			end = e
		}
	}
	return end * x.base.Extent()
}
func (x *indexed) Name() string {
	return fmt.Sprintf("indexed(%d,%s)", len(x.blocklens), x.base.Name())
}
func (x *indexed) packOne(dst, src []byte) {
	bs, be := x.base.Size(), x.base.Extent()
	o := 0
	for i, bl := range x.blocklens {
		for j := 0; j < bl; j++ {
			x.base.packOne(dst[o:o+bs], src[(x.displs[i]+j)*be:])
			o += bs
		}
	}
}
func (x *indexed) unpackOne(dst, src []byte) {
	bs, be := x.base.Size(), x.base.Extent()
	o := 0
	for i, bl := range x.blocklens {
		for j := 0; j < bl; j++ {
			x.base.unpackOne(dst[(x.displs[i]+j)*be:], src[o:o+bs])
			o += bs
		}
	}
}

// StructField is one member of a Struct datatype: Len bytes at byte
// offset Disp in the user buffer.
type StructField struct {
	Disp, Len int
}

// Struct builds a byte-granularity structure type (MPI_Type_struct with
// MPI_BYTE members).
func Struct(extent int, fields []StructField) Datatype {
	return &structT{extent: extent, fields: fields}
}

type structT struct {
	extent int
	fields []StructField
}

func (s *structT) Size() int {
	n := 0
	for _, f := range s.fields {
		n += f.Len
	}
	return n
}
func (s *structT) Extent() int  { return s.extent }
func (s *structT) Name() string { return fmt.Sprintf("struct(%d)", len(s.fields)) }
func (s *structT) packOne(dst, src []byte) {
	o := 0
	for _, f := range s.fields {
		copy(dst[o:o+f.Len], src[f.Disp:])
		o += f.Len
	}
}
func (s *structT) unpackOne(dst, src []byte) {
	o := 0
	for _, f := range s.fields {
		copy(dst[f.Disp:f.Disp+f.Len], src[o:o+f.Len])
		o += f.Len
	}
}

// IsContiguous reports whether count elements of dt occupy a dense byte
// range (no packing buffer needed).
func IsContiguous(dt Datatype) bool { return dt.Size() == dt.Extent() }

// PackBuf serializes count elements of dt from user buffer buf into a
// dense []byte. For contiguous types it returns a subslice of buf without
// copying.
func PackBuf(buf []byte, count int, dt Datatype) []byte {
	need := count * dt.Size()
	if IsContiguous(dt) {
		return buf[:need]
	}
	out := make([]byte, need)
	sz, ex := dt.Size(), dt.Extent()
	for i := 0; i < count; i++ {
		dt.packOne(out[i*sz:(i+1)*sz], buf[i*ex:])
	}
	return out
}

// UnpackBuf deserializes n dense bytes into count elements of dt inside
// user buffer buf. src may be shorter than count*Size on truncation.
func UnpackBuf(buf []byte, count int, dt Datatype, src []byte) {
	sz, ex := dt.Size(), dt.Extent()
	for i := 0; i < count; i++ {
		lo := i * sz
		if lo >= len(src) {
			return
		}
		hi := lo + sz
		if hi > len(src) {
			return // partial trailing element: dropped, like MPICH
		}
		dt.unpackOne(buf[i*ex:], src[lo:hi])
	}
}

// --- Typed slice helpers -------------------------------------------------

// Int32Bytes views a []int32 as wire bytes (little endian).
func Int32Bytes(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return b
}

// BytesInt32 decodes wire bytes into a []int32.
func BytesInt32(b []byte) []int32 {
	v := make([]int32, len(b)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v
}

// Int64Bytes views a []int64 as wire bytes.
func Int64Bytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesInt64 decodes wire bytes into a []int64.
func BytesInt64(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// Float64Bytes views a []float64 as wire bytes.
func Float64Bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesFloat64 decodes wire bytes into a []float64.
func BytesFloat64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
