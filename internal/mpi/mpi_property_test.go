package mpi_test

// Property-based tests of the collective operations: for random rank
// counts, payloads and operations, the distributed result must equal a
// naive sequential reference computed from the same inputs.

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

// TestAllreduceMatchesReference: Allreduce(op) over random int64 vectors
// equals the sequential fold, for every rank count 2..6 and op.
func TestAllreduceMatchesReference(t *testing.T) {
	ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
	f := func(seed uint8, nRanks, opIdx, length uint8) bool {
		n := int(nRanks%5) + 2
		op := ops[int(opIdx)%len(ops)]
		cnt := int(length%6) + 1

		// Deterministic per-rank inputs derived from the seed.
		input := func(rank int) []int64 {
			v := make([]int64, cnt)
			for i := range v {
				// Small values keep OpProd in range.
				v[i] = int64((int(seed)+rank*7+i*3)%7) - 3
			}
			return v
		}
		// Sequential reference.
		ref := mpi.Int64Bytes(input(0))
		for r := 1; r < n; r++ {
			if err := op.Apply(ref, mpi.Int64Bytes(input(r)), cnt, mpi.Int64); err != nil {
				t.Error(err)
				return false
			}
		}
		want := mpi.BytesInt64(ref)

		ok := true
		_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8*cnt)
			if err := comm.Allreduce(mpi.Int64Bytes(input(rank)), out, cnt, mpi.Int64, op); err != nil {
				return err
			}
			got := mpi.BytesInt64(out)
			for i := range want {
				if got[i] != want[i] {
					ok = false
					return fmt.Errorf("rank %d: %s[%d] = %d, want %d", rank, op.Name(), i, got[i], want[i])
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestScanMatchesReference: inclusive prefix sums equal the sequential
// prefix for random inputs.
func TestScanMatchesReference(t *testing.T) {
	f := func(seed uint8, nRanks uint8) bool {
		n := int(nRanks%5) + 2
		val := func(rank int) int64 { return int64((int(seed) + rank*13) % 100) }
		_, err := cluster.Launch(nNodeTopo(n, "bip"), func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8)
			if err := comm.Scan(mpi.Int64Bytes([]int64{val(rank)}), out, 1, mpi.Int64, mpi.OpSum); err != nil {
				return err
			}
			var want int64
			for r := 0; r <= rank; r++ {
				want += val(r)
			}
			if got := mpi.BytesInt64(out)[0]; got != want {
				return fmt.Errorf("rank %d: scan = %d, want %d", rank, got, want)
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastGatherRoundtripProperty: Bcast then Gather over random payloads
// and roots is the identity on the data.
func TestBcastGatherRoundtripProperty(t *testing.T) {
	f := func(seed uint8, nRanks, rootSel, size uint8) bool {
		n := int(nRanks%5) + 2
		root := int(rootSel) % n
		sz := int(size)%300 + 1
		_, err := cluster.Launch(nNodeTopo(n, "tcp"), func(rank int, comm *mpi.Comm) error {
			buf := make([]byte, sz)
			if rank == root {
				for i := range buf {
					buf[i] = byte(int(seed) + i)
				}
			}
			if err := comm.Bcast(buf, sz, mpi.Byte, root); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(int(seed)+i) {
					return fmt.Errorf("rank %d: bcast byte %d wrong", rank, i)
				}
			}
			// Everyone contributes (rank ^ payload) bytes; root checks.
			mine := make([]byte, sz)
			for i := range mine {
				mine[i] = buf[i] ^ byte(rank)
			}
			gat := make([]byte, sz*n)
			if err := comm.Gather(mine, gat, sz, mpi.Byte, root); err != nil {
				return err
			}
			if rank == root {
				for r := 0; r < n; r++ {
					for i := 0; i < sz; i++ {
						if gat[r*sz+i] != byte(int(seed)+i)^byte(r) {
							return fmt.Errorf("gather block %d byte %d wrong", r, i)
						}
					}
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallInverseProperty: Alltoall applied twice with transposed
// writes restores the original matrix row.
func TestAlltoallInverseProperty(t *testing.T) {
	f := func(seed uint8, nRanks uint8) bool {
		n := int(nRanks%4) + 2
		_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
			orig := make([]int64, n)
			for k := range orig {
				orig[k] = int64(int(seed) + rank*n + k)
			}
			first := make([]byte, 8*n)
			if err := comm.Alltoall(mpi.Int64Bytes(orig), first, 1, mpi.Int64); err != nil {
				return err
			}
			second := make([]byte, 8*n)
			if err := comm.Alltoall(first, second, 1, mpi.Int64); err != nil {
				return err
			}
			got := mpi.BytesInt64(second)
			for k := range orig {
				if got[k] != orig[k] {
					return fmt.Errorf("rank %d: alltoall^2 not identity at %d", rank, k)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
