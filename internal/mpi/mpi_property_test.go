package mpi_test

// Property-based tests of the collective operations: for random rank
// counts, payloads and operations, the distributed result must equal a
// naive sequential reference computed from the same inputs.

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

// TestAllreduceMatchesReference: Allreduce(op) over random int64 vectors
// equals the sequential fold, for every rank count 2..6 and op.
func TestAllreduceMatchesReference(t *testing.T) {
	ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
	f := func(seed uint8, nRanks, opIdx, length uint8) bool {
		n := int(nRanks%5) + 2
		op := ops[int(opIdx)%len(ops)]
		cnt := int(length%6) + 1

		// Deterministic per-rank inputs derived from the seed.
		input := func(rank int) []int64 {
			v := make([]int64, cnt)
			for i := range v {
				// Small values keep OpProd in range.
				v[i] = int64((int(seed)+rank*7+i*3)%7) - 3
			}
			return v
		}
		// Sequential reference.
		ref := mpi.Int64Bytes(input(0))
		for r := 1; r < n; r++ {
			if err := op.Apply(ref, mpi.Int64Bytes(input(r)), cnt, mpi.Int64); err != nil {
				t.Error(err)
				return false
			}
		}
		want := mpi.BytesInt64(ref)

		ok := true
		_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8*cnt)
			if err := comm.Allreduce(mpi.Int64Bytes(input(rank)), out, cnt, mpi.Int64, op); err != nil {
				return err
			}
			got := mpi.BytesInt64(out)
			for i := range want {
				if got[i] != want[i] {
					ok = false
					return fmt.Errorf("rank %d: %s[%d] = %d, want %d", rank, op.Name(), i, got[i], want[i])
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestScanMatchesReference: inclusive prefix sums equal the sequential
// prefix for random inputs.
func TestScanMatchesReference(t *testing.T) {
	f := func(seed uint8, nRanks uint8) bool {
		n := int(nRanks%5) + 2
		val := func(rank int) int64 { return int64((int(seed) + rank*13) % 100) }
		_, err := cluster.Launch(nNodeTopo(n, "bip"), func(rank int, comm *mpi.Comm) error {
			out := make([]byte, 8)
			if err := comm.Scan(mpi.Int64Bytes([]int64{val(rank)}), out, 1, mpi.Int64, mpi.OpSum); err != nil {
				return err
			}
			var want int64
			for r := 0; r <= rank; r++ {
				want += val(r)
			}
			if got := mpi.BytesInt64(out)[0]; got != want {
				return fmt.Errorf("rank %d: scan = %d, want %d", rank, got, want)
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastGatherRoundtripProperty: Bcast then Gather over random payloads
// and roots is the identity on the data.
func TestBcastGatherRoundtripProperty(t *testing.T) {
	f := func(seed uint8, nRanks, rootSel, size uint8) bool {
		n := int(nRanks%5) + 2
		root := int(rootSel) % n
		sz := int(size)%300 + 1
		_, err := cluster.Launch(nNodeTopo(n, "tcp"), func(rank int, comm *mpi.Comm) error {
			buf := make([]byte, sz)
			if rank == root {
				for i := range buf {
					buf[i] = byte(int(seed) + i)
				}
			}
			if err := comm.Bcast(buf, sz, mpi.Byte, root); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(int(seed)+i) {
					return fmt.Errorf("rank %d: bcast byte %d wrong", rank, i)
				}
			}
			// Everyone contributes (rank ^ payload) bytes; root checks.
			mine := make([]byte, sz)
			for i := range mine {
				mine[i] = buf[i] ^ byte(rank)
			}
			gat := make([]byte, sz*n)
			if err := comm.Gather(mine, gat, sz, mpi.Byte, root); err != nil {
				return err
			}
			if rank == root {
				for r := 0; r < n; r++ {
					for i := 0; i < sz; i++ {
						if gat[r*sz+i] != byte(int(seed)+i)^byte(r) {
							return fmt.Errorf("gather block %d byte %d wrong", r, i)
						}
					}
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// twoClusterTopo builds the adversarial heterogeneous shape for the
// hierarchy tests: two SCI islands joined by a TCP backbone, with node
// declarations interleaved so consecutive ranks alternate clusters (the
// worst case for a topology-blind binomial tree).
func twoClusterTopo(nA, nB int) cluster.Topology {
	var nodes []cluster.NodeSpec
	var aNodes, bNodes, all []string
	for i := 0; i < nA || i < nB; i++ {
		if i < nA {
			name := fmt.Sprintf("a%d", i)
			nodes = append(nodes, cluster.NodeSpec{Name: name, Procs: 1})
			aNodes = append(aNodes, name)
			all = append(all, name)
		}
		if i < nB {
			name := fmt.Sprintf("b%d", i)
			nodes = append(nodes, cluster.NodeSpec{Name: name, Procs: 1})
			bNodes = append(bNodes, name)
			all = append(all, name)
		}
	}
	return cluster.Topology{
		Nodes: nodes,
		Networks: []cluster.NetworkSpec{
			{Name: "sciA", Protocol: "sisci", Nodes: aNodes},
			{Name: "sciB", Protocol: "sisci", Nodes: bNodes},
			{Name: "wan", Protocol: "tcp", Nodes: all},
		},
	}
}

// collectiveOutputs runs the full collective suite once on a two-cluster
// session with the given algorithm selection forced, and returns every
// observable output buffer, keyed for comparison.
func collectiveOutputs(t *testing.T, nA, nB int, mode mpi.CollMode,
	seed byte, count, root int, op mpi.Op) map[string][]byte {
	t.Helper()
	n := nA + nB
	sess, err := cluster.Build(twoClusterTopo(nA, nB))
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Hierarchy().NumClusters(); got != 2 {
		t.Fatalf("expected 2 clusters, discovered %d", got)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	out := make(map[string][]byte)
	record := func(what string, rank int, buf []byte) {
		out[fmt.Sprintf("%s/r%d", what, rank)] = append([]byte(nil), buf...)
	}
	input := func(rank int) []int64 {
		v := make([]int64, count)
		for i := range v {
			v[i] = int64((int(seed)+rank*11+i*5)%9) - 4 // small: OpProd stays exact
		}
		return v
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		// Bcast
		buf := make([]byte, 8*count)
		if rank == root {
			copy(buf, mpi.Int64Bytes(input(rank)))
		}
		if err := comm.Bcast(buf, count, mpi.Int64, root); err != nil {
			return err
		}
		record("bcast", rank, buf)
		// Reduce
		red := make([]byte, 8*count)
		if err := comm.Reduce(mpi.Int64Bytes(input(rank)), red, count, mpi.Int64, op, root); err != nil {
			return err
		}
		if rank == root {
			record("reduce", rank, red)
		}
		// Allreduce
		all := make([]byte, 8*count)
		if err := comm.Allreduce(mpi.Int64Bytes(input(rank)), all, count, mpi.Int64, op); err != nil {
			return err
		}
		record("allreduce", rank, all)
		// Gather
		gat := make([]byte, 8*count*n)
		if err := comm.Gather(mpi.Int64Bytes(input(rank)), gat, count, mpi.Int64, root); err != nil {
			return err
		}
		if rank == root {
			record("gather", rank, gat)
		}
		// Allgather
		ag := make([]byte, 8*count*n)
		if err := comm.Allgather(mpi.Int64Bytes(input(rank)), ag, count, mpi.Int64); err != nil {
			return err
		}
		record("allgather", rank, ag)
		// Barrier (observable only through completion)
		return comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHierFlatEquivalence: for randomized cluster shapes, payload sizes,
// roots and reduction ops, the two-level collectives produce byte-identical
// results to the flat reference algorithms.
func TestHierFlatEquivalence(t *testing.T) {
	f := func(seed, shapeA, shapeB, rootSel, opIdx, length uint8) bool {
		ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
		nA := int(shapeA)%3 + 1
		nB := int(shapeB)%3 + 1
		root := int(rootSel) % (nA + nB)
		op := ops[int(opIdx)%len(ops)]
		count := int(length)%7 + 1
		flat := collectiveOutputs(t, nA, nB, mpi.CollFlat, byte(seed), count, root, op)
		hier := collectiveOutputs(t, nA, nB, mpi.CollHier, byte(seed), count, root, op)
		if len(flat) != len(hier) {
			t.Errorf("output key sets differ: flat %d, hier %d", len(flat), len(hier))
			return false
		}
		for k, fv := range flat {
			hv, ok := hier[k]
			if !ok {
				t.Errorf("hier missing output %s", k)
				return false
			}
			if string(fv) != string(hv) {
				t.Errorf("shape %d+%d root %d op %s count %d: %s differs: flat %v hier %v",
					nA, nB, root, op.Name(), count, k, mpi.BytesInt64(fv), mpi.BytesInt64(hv))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHierSegmentedBcastLarge: a payload well past the rendez-vous switch
// point takes the segmented pipeline; the received bytes must survive the
// store-and-forward re-segmentation on every rank.
func TestHierSegmentedBcastLarge(t *testing.T) {
	const sz = 192 << 10 // > 2 segments at the 8 KB backbone segment
	sess, err := cluster.Build(twoClusterTopo(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		buf := make([]byte, sz)
		if rank == 1 { // non-leader root exercises the root-as-leader remap
			for i := range buf {
				buf[i] = byte(i * 31 / 7)
			}
		}
		if err := comm.Bcast(buf, sz, mpi.Byte, 1); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*31/7) {
				return fmt.Errorf("rank %d: byte %d corrupted after segmented bcast", rank, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierSplitSubComm: hierarchy awareness must survive Comm.Split — a
// sub-communicator spanning both islands still reduces correctly through
// its own dense leader structure.
func TestHierSplitSubComm(t *testing.T) {
	sess, err := cluster.Build(twoClusterTopo(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mpi.CollHier)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		sub, err := comm.Split(rank%2, rank)
		if err != nil {
			return err
		}
		out := make([]byte, 8)
		if err := sub.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), out, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		var want int64
		for r := rank % 2; r < comm.Size(); r += 2 {
			want += int64(r)
		}
		if got := mpi.BytesInt64(out)[0]; got != want {
			return fmt.Errorf("rank %d: sub-comm allreduce = %d, want %d", rank, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallInverseProperty: Alltoall applied twice with transposed
// writes restores the original matrix row.
func TestAlltoallInverseProperty(t *testing.T) {
	f := func(seed uint8, nRanks uint8) bool {
		n := int(nRanks%4) + 2
		_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
			orig := make([]int64, n)
			for k := range orig {
				orig[k] = int64(int(seed) + rank*n + k)
			}
			first := make([]byte, 8*n)
			if err := comm.Alltoall(mpi.Int64Bytes(orig), first, 1, mpi.Int64); err != nil {
				return err
			}
			second := make([]byte, 8*n)
			if err := comm.Alltoall(first, second, 1, mpi.Int64); err != nil {
				return err
			}
			got := mpi.BytesInt64(second)
			for k := range orig {
				if got[k] != orig[k] {
					return fmt.Errorf("rank %d: alltoall^2 not identity at %d", rank, k)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
