package mpi_test

// Property tests for the bandwidth-optimal ring schedules: for randomized
// cluster shapes, payload sizes and reduction ops, the ring Allreduce and
// ReduceScatter (flat and two-level) must be byte-identical to the flat
// binomial references computed from the same inputs.

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

// ringInput derives a deterministic per-rank int64 vector from a seed.
func ringInput(seed uint8, rank, cnt int) []int64 {
	v := make([]int64, cnt)
	for i := range v {
		v[i] = int64((int(seed)+rank*11+i*5)%9) - 4 // small: keeps OpProd in range
	}
	return v
}

// allreduceOn runs Allreduce under one collective mode on a 2-cluster
// topology and returns every rank's packed result.
func allreduceOn(t *testing.T, nA, nB int, mode mpi.CollMode, seed uint8, cnt int, op mpi.Op) map[int][]byte {
	t.Helper()
	out := make(map[int][]byte)
	sess, err := cluster.Build(twoClusterTopo(nA, nB))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		res := make([]byte, 8*cnt)
		if err := comm.Allreduce(mpi.Int64Bytes(ringInput(seed, rank, cnt)), res, cnt, mpi.Int64, op); err != nil {
			return err
		}
		out[rank] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRingAllreduceEquivalence: the flat ring and the two-level ring
// produce byte-identical Allreduce results to the flat binomial tree, for
// randomized shapes, ops and counts (including counts smaller than the
// ring's block count, which leaves some blocks empty).
func TestRingAllreduceEquivalence(t *testing.T) {
	ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd}
	f := func(seed, shapeA, shapeB, opIdx, length uint8) bool {
		nA := int(shapeA)%4 + 1
		nB := int(shapeB)%4 + 1
		op := ops[int(opIdx)%len(ops)]
		cnt := int(length)%23 + 1
		flat := allreduceOn(t, nA, nB, mpi.CollFlat, seed, cnt, op)
		for _, mode := range []mpi.CollMode{mpi.CollRing, mpi.CollHierRing} {
			got := allreduceOn(t, nA, nB, mode, seed, cnt, op)
			for rank, want := range flat {
				if string(got[rank]) != string(want) {
					t.Errorf("shape %d+%d op %s count %d mode %v rank %d: ring %v, flat %v",
						nA, nB, op.Name(), cnt, mode, rank,
						mpi.BytesInt64(got[rank]), mpi.BytesInt64(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRingReduceScatterEquivalence: ReduceScatter through the ring
// schedules (flat and two-level) equals the sequential reference fold on
// every rank's own block.
func TestRingReduceScatterEquivalence(t *testing.T) {
	ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin}
	f := func(seed, shapeA, shapeB, opIdx, length uint8) bool {
		nA := int(shapeA)%4 + 1
		nB := int(shapeB)%4 + 1
		n := nA + nB
		op := ops[int(opIdx)%len(ops)]
		per := int(length)%7 + 1

		// Sequential reference: fold all ranks' full vectors.
		ref := mpi.Int64Bytes(ringInput(seed, 0, per*n))
		for r := 1; r < n; r++ {
			if err := op.Apply(ref, mpi.Int64Bytes(ringInput(seed, r, per*n)), per*n, mpi.Int64); err != nil {
				t.Error(err)
				return false
			}
		}
		want := mpi.BytesInt64(ref)

		// CollFlat/CollHier map to the ring of the same level (ReduceScatter
		// has no tree compiler), so all four modes must agree.
		for _, mode := range []mpi.CollMode{mpi.CollRing, mpi.CollHierRing, mpi.CollFlat, mpi.CollHier} {
			sess, err := cluster.Build(twoClusterTopo(nA, nB))
			if err != nil {
				t.Fatal(err)
			}
			for _, rk := range sess.Ranks {
				rk.MPI.SetCollMode(mode)
			}
			err = sess.Run(func(rank int, comm *mpi.Comm) error {
				res := make([]byte, 8*per)
				if err := comm.ReduceScatter(mpi.Int64Bytes(ringInput(seed, rank, per*n)), res, per, mpi.Int64, op); err != nil {
					return err
				}
				got := mpi.BytesInt64(res)
				for i := 0; i < per; i++ {
					if got[i] != want[rank*per+i] {
						return fmt.Errorf("rank %d mode %v: block[%d] = %d, want %d",
							rank, mode, i, got[i], want[rank*per+i])
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestIreduceScatterOverlap: the nonblocking variant completes correctly
// with computation between start and Wait.
func TestIreduceScatterOverlap(t *testing.T) {
	const n, per = 4, 8
	sess, err := cluster.Build(nNodeTopo(n, "sisci"))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		in := make([]int64, per*n)
		for i := range in {
			in[i] = int64(rank + i)
		}
		res := make([]byte, 8*per)
		req, err := comm.IreduceScatter(mpi.Int64Bytes(in), res, per, mpi.Int64, mpi.OpSum)
		if err != nil {
			return err
		}
		sess.Ranks[rank].Proc.Compute(0) // yield to the progress engine
		if err := req.Wait(); err != nil {
			return err
		}
		got := mpi.BytesInt64(res)
		for i := 0; i < per; i++ {
			// sum over ranks of (rank + rank*per + i)
			want := int64(0)
			for r := 0; r < n; r++ {
				want += int64(r + rank*per + i)
			}
			if got[i] != want {
				return fmt.Errorf("rank %d: [%d] = %d, want %d", rank, i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
