package mpi_test

// Tests of the segmented two-level Alltoall: the pipelined leader bundle
// exchange must stay byte-identical to the flat pairwise rotation, and it
// must actually segment (more, smaller backbone messages) when the
// payload is large enough.

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
)

// cappedTwoCluster is twoClusterTopo with the wan trunk capped at the
// TCP rate: the contended-backbone regime the segmented Alltoall
// exchange targets (CollHier picks it only there).
func cappedTwoCluster(nA, nB int) cluster.Topology {
	topo := twoClusterTopo(nA, nB)
	wan := netsim.FastEthernetTCP()
	wan.NetworkBandwidth = wan.Bandwidth
	for i := range topo.Networks {
		if topo.Networks[i].Name == "wan" {
			topo.Networks[i].Params = &wan
		}
	}
	return topo
}

// alltoallOn runs Alltoall under one collective mode on a capped
// 2-cluster topology and returns every rank's receive vector plus the
// backbone message count.
func alltoallOn(t *testing.T, nA, nB int, mode mpi.CollMode, seed uint8, blockBytes int) (map[int][]byte, uint64) {
	t.Helper()
	out := make(map[int][]byte)
	sess, err := cluster.Build(cappedTwoCluster(nA, nB))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mode)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		n := comm.Size()
		send := make([]byte, n*blockBytes)
		for i := range send {
			send[i] = byte(int(seed) + rank*31 + i*7)
		}
		recv := make([]byte, n*blockBytes)
		if err := comm.Alltoall(send, recv, blockBytes, mpi.Byte); err != nil {
			return err
		}
		out[rank] = recv
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, sess.Networks["wan"].Stats.Packets
}

// TestSegmentedAlltoallEquivalence: for random shapes and block sizes —
// including blocks big enough that CollHier picks the segmented exchange
// — the two-level result is byte-identical to the flat rotation.
func TestSegmentedAlltoallEquivalence(t *testing.T) {
	f := func(seed, shapeA, shapeB, sizeSel uint8) bool {
		nA := int(shapeA)%3 + 1
		nB := int(shapeB)%3 + 1
		// From tiny blocks up to 6 KB blocks: with nA+nB ranks the big end
		// crosses the 2*segment total-payload threshold, so the segmented
		// compiler is exercised (segment = 8 KB on this topology).
		sizes := []int{1, 97, 1 << 10, 6 << 10}
		blockBytes := sizes[int(sizeSel)%len(sizes)]
		flat, _ := alltoallOn(t, nA, nB, mpi.CollFlat, seed, blockBytes)
		hier, _ := alltoallOn(t, nA, nB, mpi.CollHier, seed, blockBytes)
		for r := range flat {
			if !bytes.Equal(flat[r], hier[r]) {
				t.Errorf("rank %d: seg/hier alltoall differs from flat (nA=%d nB=%d block=%d)",
					r, nA, nB, blockBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedAlltoallSegments: at a payload that triggers segmentation,
// the backbone carries more (smaller) messages than the two whole-bundle
// transfers of the unsegmented exchange — the pipelining signature.
func TestSegmentedAlltoallSegments(t *testing.T) {
	// 3+3 ranks, 6 KB blocks: each directed leader bundle is 3*3*6 KB =
	// 54 KB, far above the 8 KB segment; the whole-bundle form would send
	// exactly one wan message per directed leader pair.
	_, segPackets := alltoallOn(t, 3, 3, mpi.CollHier, 5, 6<<10)
	_, flatPackets := alltoallOn(t, 3, 3, mpi.CollFlat, 5, 6<<10)
	// Each eager segment is a head+body packet pair; 54 KB / (6 KB-block
	// segments of 6 KB, i.e. one block per segment) = 9 segments per
	// directed pair, so well above the unsegmented 2 messages (4-6
	// packets including the rendez-vous control traffic).
	if segPackets < 20 {
		t.Errorf("segmented exchange produced only %d wan packets; expected a segment train", segPackets)
	}
	t.Logf("wan packets: segmented 2level=%d flat=%d", segPackets, flatPackets)
}

// TestSegmentedAlltoallDatatypes: the segmented path respects non-trivial
// datatypes (vector layout round-trips through the packed exchange).
func TestSegmentedAlltoallDatatypes(t *testing.T) {
	const n = 4
	sess, err := cluster.Build(cappedTwoCluster(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range sess.Ranks {
		rk.MPI.SetCollMode(mpi.CollHier)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		blockInts := 1024 // 8 KB blocks of int64: tickles the segment boundary
		send := make([]int64, n*blockInts)
		for i := range send {
			send[i] = int64(rank*1_000_000 + i)
		}
		recv := make([]byte, 8*n*blockInts)
		if err := comm.Alltoall(mpi.Int64Bytes(send), recv, blockInts, mpi.Int64); err != nil {
			return err
		}
		got := mpi.BytesInt64(recv)
		for src := 0; src < n; src++ {
			for i := 0; i < blockInts; i++ {
				want := int64(src*1_000_000 + rank*blockInts + i)
				if got[src*blockInts+i] != want {
					return fmt.Errorf("rank %d: block from %d elem %d = %d, want %d",
						rank, src, i, got[src*blockInts+i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
