package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is a reduction operation over packed element buffers: it folds src
// into dst element-wise (dst = dst OP src), interpreting bytes per the
// datatype. All predefined ops are commutative and associative.
type Op interface {
	Name() string
	// Apply folds count elements of dt from src into dst in place.
	Apply(dst, src []byte, count int, dt Datatype) error
}

// Predefined reduction operations.
var (
	OpSum  Op = numericOp{"MPI_SUM", addI, addF}
	OpProd Op = numericOp{"MPI_PROD", mulI, mulF}
	OpMin  Op = numericOp{"MPI_MIN", minI, minF}
	OpMax  Op = numericOp{"MPI_MAX", maxI, maxF}
	OpBAnd Op = bitOp{"MPI_BAND", func(a, b byte) byte { return a & b }}
	OpBOr  Op = bitOp{"MPI_BOR", func(a, b byte) byte { return a | b }}
	OpBXor Op = bitOp{"MPI_BXOR", func(a, b byte) byte { return a ^ b }}
	OpLAnd Op = numericOp{"MPI_LAND", func(a, b int64) int64 { return b2i(a != 0 && b != 0) },
		func(a, b float64) float64 { return fb2i(a != 0 && b != 0) }}
	OpLOr Op = numericOp{"MPI_LOR", func(a, b int64) int64 { return b2i(a != 0 || b != 0) },
		func(a, b float64) float64 { return fb2i(a != 0 || b != 0) }}
)

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fb2i(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func addI(a, b int64) int64 { return a + b }
func mulI(a, b int64) int64 { return a * b }
func minI(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}
func maxI(a, b int64) int64 {
	if b > a {
		return b
	}
	return a
}
func addF(a, b float64) float64 { return a + b }
func mulF(a, b float64) float64 { return a * b }
func minF(a, b float64) float64 { return math.Min(a, b) }
func maxF(a, b float64) float64 { return math.Max(a, b) }

// numericOp dispatches on the datatype's machine representation.
type numericOp struct {
	name string
	fi   func(a, b int64) int64
	ff   func(a, b float64) float64
}

func (o numericOp) Name() string { return o.name }

func (o numericOp) Apply(dst, src []byte, count int, dt Datatype) error {
	le := binary.LittleEndian
	switch dt {
	case Int32:
		for i := 0; i < count; i++ {
			a := int64(int32(le.Uint32(dst[4*i:])))
			b := int64(int32(le.Uint32(src[4*i:])))
			le.PutUint32(dst[4*i:], uint32(int32(o.fi(a, b))))
		}
	case Int64:
		for i := 0; i < count; i++ {
			a := int64(le.Uint64(dst[8*i:]))
			b := int64(le.Uint64(src[8*i:]))
			le.PutUint64(dst[8*i:], uint64(o.fi(a, b)))
		}
	case Byte, Char:
		for i := 0; i < count; i++ {
			dst[i] = byte(o.fi(int64(dst[i]), int64(src[i])))
		}
	case Float32:
		for i := 0; i < count; i++ {
			a := float64(math.Float32frombits(le.Uint32(dst[4*i:])))
			b := float64(math.Float32frombits(le.Uint32(src[4*i:])))
			le.PutUint32(dst[4*i:], math.Float32bits(float32(o.ff(a, b))))
		}
	case Float64:
		for i := 0; i < count; i++ {
			a := math.Float64frombits(le.Uint64(dst[8*i:]))
			b := math.Float64frombits(le.Uint64(src[8*i:]))
			le.PutUint64(dst[8*i:], math.Float64bits(o.ff(a, b)))
		}
	default:
		return fmt.Errorf("mpi: %s not defined for datatype %s", o.name, dt.Name())
	}
	return nil
}

// bitOp applies a bytewise boolean function (valid for integer types).
type bitOp struct {
	name string
	f    func(a, b byte) byte
}

func (o bitOp) Name() string { return o.name }

func (o bitOp) Apply(dst, src []byte, count int, dt Datatype) error {
	switch dt {
	case Int32, Int64, Byte, Char:
		n := count * dt.Size()
		for i := 0; i < n; i++ {
			dst[i] = o.f(dst[i], src[i])
		}
		return nil
	default:
		return fmt.Errorf("mpi: %s not defined for datatype %s", o.name, dt.Name())
	}
}
