package mpi_test

// Integration tests: full MPI programs over simulated clusters, built by
// the cluster package (ch_self + smp_plug + ch_mad over Madeleine).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/cluster"
	"mpichmad/internal/mpi"
)

// nNodeTopo builds n single-proc nodes all on one SCI network.
func nNodeTopo(n int, protocol string) cluster.Topology {
	t := cluster.Topology{}
	var nodes []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		t.Nodes = append(t.Nodes, cluster.NodeSpec{Name: name, Procs: 1})
		nodes = append(nodes, name)
	}
	t.Networks = []cluster.NetworkSpec{{Name: protocol, Protocol: protocol, Nodes: nodes}}
	return t
}

func TestHelloSendRecv(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if comm.Size() != 2 || comm.Rank() != rank {
			return fmt.Errorf("identity: rank=%d size=%d", comm.Rank(), comm.Size())
		}
		if rank == 0 {
			return comm.Send([]byte("hello, rank 1!"), 14, mpi.Byte, 1, 0)
		}
		buf := make([]byte, 14)
		st, err := comm.Recv(buf, 14, mpi.Byte, 0, 0)
		if err != nil {
			return err
		}
		if string(buf) != "hello, rank 1!" {
			return fmt.Errorf("got %q", buf)
		}
		if st.Source != 0 || st.Tag != 0 || st.Bytes != 14 {
			return fmt.Errorf("status %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAllSizes(t *testing.T) {
	// Pass a token around a 5-rank ring, each hop incrementing it, over
	// each network preset.
	for _, proto := range []string{"tcp", "sisci", "bip"} {
		_, err := cluster.Launch(nNodeTopo(5, proto), func(rank int, comm *mpi.Comm) error {
			n := comm.Size()
			right := (rank + 1) % n
			left := (rank - 1 + n) % n
			if rank == 0 {
				if err := comm.Send(mpi.Int64Bytes([]int64{1}), 1, mpi.Int64, right, 7); err != nil {
					return err
				}
				buf := make([]byte, 8)
				if _, err := comm.Recv(buf, 1, mpi.Int64, left, 7); err != nil {
					return err
				}
				if got := mpi.BytesInt64(buf)[0]; got != int64(n) {
					return fmt.Errorf("token = %d, want %d", got, n)
				}
				return nil
			}
			buf := make([]byte, 8)
			if _, err := comm.Recv(buf, 1, mpi.Int64, left, 7); err != nil {
				return err
			}
			v := mpi.BytesInt64(buf)[0] + 1
			return comm.Send(mpi.Int64Bytes([]int64{v}), 1, mpi.Int64, right, 7)
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestLargeMessageRendezvous(t *testing.T) {
	// 1 MB exchange: exercises the rendez-vous path end-to-end through
	// the MPI layer.
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	sess, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			return comm.Send(payload, len(payload), mpi.Byte, 1, 0)
		}
		buf := make([]byte, len(payload))
		if _, err := comm.Recv(buf, len(buf), mpi.Byte, 0, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Ranks[0].ChMad.NRndv != 1 {
		t.Fatalf("rndv count = %d, want 1", sess.Ranks[0].ChMad.NRndv)
	}
}

func TestIsendIrecvWaitTest(t *testing.T) {
	sess, err := cluster.Build(cluster.TwoNodes("bip"))
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		const n = 4096
		if rank == 0 {
			var reqs []*mpi.Request
			for k := 0; k < 3; k++ {
				buf := bytes.Repeat([]byte{byte('a' + k)}, n)
				r, err := comm.Isend(buf, n, mpi.Byte, 1, k)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			_, err := mpi.WaitAll(reqs...)
			return err
		}
		bufs := make([][]byte, 3)
		var reqs []*mpi.Request
		for k := 0; k < 3; k++ {
			bufs[k] = make([]byte, n)
			r, err := comm.Irecv(bufs[k], n, mpi.Byte, 0, k)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		// Poll with Test until all complete, sleeping between polls so
		// virtual time can advance.
		done := 0
		for done < 3 {
			done = 0
			for _, r := range reqs {
				ok, _, err := r.Test()
				if err != nil {
					return err
				}
				if ok {
					done++
				}
			}
			sess.Ranks[rank].Proc.Sleep(1000) // 1 us between polls
		}
		for k := 0; k < 3; k++ {
			for _, b := range bufs[k] {
				if b != byte('a'+k) {
					return fmt.Errorf("message %d corrupted", k)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		peer := 1 - rank
		out := bytes.Repeat([]byte{byte(rank + 1)}, 1000)
		in := make([]byte, 1000)
		st, err := comm.Sendrecv(out, 1000, mpi.Byte, peer, 5, in, 1000, mpi.Byte, peer, 5)
		if err != nil {
			return err
		}
		if st.Source != peer {
			return fmt.Errorf("status source %d", st.Source)
		}
		for _, b := range in {
			if b != byte(peer+1) {
				return fmt.Errorf("exchange corrupted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardsAndProbe(t *testing.T) {
	_, err := cluster.Launch(nNodeTopo(3, "sisci"), func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			// Two messages from different sources, matched by wildcards.
			buf := make([]byte, 8)
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				st, err := comm.Recv(buf, 1, mpi.Int64, mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				seen[st.Source] = true
				if got := mpi.BytesInt64(buf)[0]; got != int64(st.Source*10+st.Tag) {
					return fmt.Errorf("payload %d does not match source %d tag %d", got, st.Source, st.Tag)
				}
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
			// Probe before receive.
			st, err := comm.Probe(1, 9)
			if err != nil {
				return err
			}
			if st.Bytes != 8 {
				return fmt.Errorf("probe bytes %d", st.Bytes)
			}
			ok, _, err := comm.Iprobe(1, 9)
			if err != nil || !ok {
				return fmt.Errorf("iprobe after probe: %v %v", ok, err)
			}
			if _, err := comm.Recv(buf, 1, mpi.Int64, 1, 9); err != nil {
				return err
			}
			ok, _, _ = comm.Iprobe(mpi.AnySource, mpi.AnyTag)
			if ok {
				return fmt.Errorf("iprobe found stale message")
			}
			return nil
		}
		if err := comm.Send(mpi.Int64Bytes([]int64{int64(rank*10 + rank)}), 1, mpi.Int64, 0, rank); err != nil {
			return err
		}
		if rank == 1 {
			return comm.Send(mpi.Int64Bytes([]int64{77}), 1, mpi.Int64, 0, 9)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			return comm.Send(make([]byte, 100), 100, mpi.Byte, 1, 0)
		}
		buf := make([]byte, 50)
		_, err := comm.Recv(buf, 50, mpi.Byte, 0, 0)
		if !errors.Is(err, adi.ErrTruncate) {
			return fmt.Errorf("want truncation error, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDerivedTypeOverTheWire(t *testing.T) {
	// Send a strided column of a matrix; receive into a contiguous row.
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		const dim = 8
		col := mpi.Vector(dim, 1, dim, mpi.Int32)
		if rank == 0 {
			mat := make([]byte, dim*dim*4)
			for i := 0; i < dim*dim; i++ {
				mat[4*i] = byte(i)
			}
			// Column 2.
			return comm.Send(mat[2*4:], 1, col, 1, 0)
		}
		row := make([]byte, dim*4)
		st, err := comm.Recv(row, dim, mpi.Int32, 0, 0)
		if err != nil {
			return err
		}
		if st.Count(mpi.Int32) != dim {
			return fmt.Errorf("count %d", st.Count(mpi.Int32))
		}
		for i := 0; i < dim; i++ {
			if row[4*i] != byte(i*dim+2) {
				return fmt.Errorf("column element %d = %d", i, row[4*i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesCorrectness(t *testing.T) {
	const n = 5 // non power of two on purpose
	_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
		// Bcast.
		buf := make([]byte, 8)
		if rank == 2 {
			copy(buf, mpi.Int64Bytes([]int64{4242}))
		}
		if err := comm.Bcast(buf, 1, mpi.Int64, 2); err != nil {
			return err
		}
		if mpi.BytesInt64(buf)[0] != 4242 {
			return fmt.Errorf("bcast got %d", mpi.BytesInt64(buf)[0])
		}

		// Reduce sum of rank+1 -> n(n+1)/2 at root 1.
		out := make([]byte, 8)
		if err := comm.Reduce(mpi.Int64Bytes([]int64{int64(rank + 1)}), out, 1, mpi.Int64, mpi.OpSum, 1); err != nil {
			return err
		}
		if rank == 1 && mpi.BytesInt64(out)[0] != n*(n+1)/2 {
			return fmt.Errorf("reduce sum = %d", mpi.BytesInt64(out)[0])
		}

		// Allreduce max.
		if err := comm.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), out, 1, mpi.Int64, mpi.OpMax); err != nil {
			return err
		}
		if mpi.BytesInt64(out)[0] != n-1 {
			return fmt.Errorf("allreduce max = %d", mpi.BytesInt64(out)[0])
		}

		// Gather at root 0.
		gat := make([]byte, 8*n)
		if err := comm.Gather(mpi.Int64Bytes([]int64{int64(rank * rank)}), gat, 1, mpi.Int64, 0); err != nil {
			return err
		}
		if rank == 0 {
			vals := mpi.BytesInt64(gat)
			for r := 0; r < n; r++ {
				if vals[r] != int64(r*r) {
					return fmt.Errorf("gather[%d] = %d", r, vals[r])
				}
			}
		}

		// Scatter from root 0.
		var src []byte
		if rank == 0 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(100 + i)
			}
			src = mpi.Int64Bytes(vals)
		}
		one := make([]byte, 8)
		if err := comm.Scatter(src, one, 1, mpi.Int64, 0); err != nil {
			return err
		}
		if mpi.BytesInt64(one)[0] != int64(100+rank) {
			return fmt.Errorf("scatter got %d", mpi.BytesInt64(one)[0])
		}

		// Allgather.
		all := make([]byte, 8*n)
		if err := comm.Allgather(mpi.Int64Bytes([]int64{int64(rank + 7)}), all, 1, mpi.Int64); err != nil {
			return err
		}
		vals := mpi.BytesInt64(all)
		for r := 0; r < n; r++ {
			if vals[r] != int64(r+7) {
				return fmt.Errorf("allgather[%d] = %d", r, vals[r])
			}
		}

		// Alltoall: rank r sends value r*n+k to rank k.
		outv := make([]int64, n)
		for k := range outv {
			outv[k] = int64(rank*n + k)
		}
		inb := make([]byte, 8*n)
		if err := comm.Alltoall(mpi.Int64Bytes(outv), inb, 1, mpi.Int64); err != nil {
			return err
		}
		inv := mpi.BytesInt64(inb)
		for r := 0; r < n; r++ {
			if inv[r] != int64(r*n+rank) {
				return fmt.Errorf("alltoall[%d] = %d", r, inv[r])
			}
		}

		// Scan (inclusive prefix sum of 1s -> rank+1).
		sc := make([]byte, 8)
		if err := comm.Scan(mpi.Int64Bytes([]int64{1}), sc, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		if mpi.BytesInt64(sc)[0] != int64(rank+1) {
			return fmt.Errorf("scan = %d", mpi.BytesInt64(sc)[0])
		}

		// Gatherv with uneven counts: rank r contributes r+1 values.
		counts := make([]int, n)
		total := 0
		for r := range counts {
			counts[r] = r + 1
			total += r + 1
		}
		myVals := make([]int64, rank+1)
		for i := range myVals {
			myVals[i] = int64(rank)
		}
		var gv []byte
		if rank == 0 {
			gv = make([]byte, 8*total)
		}
		if err := comm.Gatherv(mpi.Int64Bytes(myVals), rank+1, gv, counts, nil, mpi.Int64, 0); err != nil {
			return err
		}
		if rank == 0 {
			vals := mpi.BytesInt64(gv)
			idx := 0
			for r := 0; r < n; r++ {
				for k := 0; k < r+1; k++ {
					if vals[idx] != int64(r) {
						return fmt.Errorf("gatherv[%d] = %d, want %d", idx, vals[idx], r)
					}
					idx++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Rank 1 enters the barrier late; everyone must leave after it
	// entered.
	const n = 4
	sess, err := cluster.Build(nNodeTopo(n, "sisci"))
	if err != nil {
		t.Fatal(err)
	}
	var entered, left [n]float64
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		if rank == 1 {
			sess.Ranks[rank].Proc.Sleep(1000 * 1000) // 1 ms in ns
		}
		entered[rank] = float64(sess.S.Now())
		if err := comm.Barrier(); err != nil {
			return err
		}
		left[rank] = float64(sess.S.Now())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if left[r] < entered[1] {
			t.Fatalf("rank %d left the barrier at %v before rank 1 entered at %v", r, left[r], entered[1])
		}
	}
}

func TestCommDupAndSplit(t *testing.T) {
	const n = 6
	_, err := cluster.Launch(nNodeTopo(n, "sisci"), func(rank int, comm *mpi.Comm) error {
		dup, err := comm.Dup()
		if err != nil {
			return err
		}
		if dup.Context() == comm.Context() {
			return fmt.Errorf("dup shares context %d", dup.Context())
		}
		// Traffic on dup must not match receives on world: send on dup,
		// receive on dup while world also has a pending recv... simpler:
		// tag isolation via distinct contexts is already exercised by
		// running collectives on both concurrently.
		if err := dup.Barrier(); err != nil {
			return err
		}

		// Split into even/odd by rank, reversed order inside.
		sub, err := comm.Split(rank%2, -rank)
		if err != nil {
			return err
		}
		wantSize := (n + 1 - rank%2) / 2
		if sub.Size() != wantSize {
			return fmt.Errorf("sub size %d, want %d", sub.Size(), wantSize)
		}
		// Key = -rank: highest old rank first.
		sum := make([]byte, 8)
		if err := sub.Allreduce(mpi.Int64Bytes([]int64{int64(rank)}), sum, 1, mpi.Int64, mpi.OpSum); err != nil {
			return err
		}
		want := int64(0)
		for r := rank % 2; r < n; r += 2 {
			want += int64(r)
		}
		if got := mpi.BytesInt64(sum)[0]; got != want {
			return fmt.Errorf("sub allreduce = %d, want %d", got, want)
		}
		// Check ordering by key.
		myWorld := sub.WorldRank(sub.Rank())
		if myWorld != rank {
			return fmt.Errorf("world rank mapping broken: %d != %d", myWorld, rank)
		}
		first := sub.WorldRank(0)
		for r := 0; r < sub.Size(); r++ {
			if w := sub.WorldRank(r); w > first {
				first = -1 // not descending
			}
		}
		// Undefined color yields nil comm.
		none, err := comm.Split(mpi.Undefined, 0)
		if err != nil {
			return err
		}
		if none != nil {
			return fmt.Errorf("undefined split returned a communicator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSmpAndSelfDevices(t *testing.T) {
	// One dual-proc node plus one remote node: self, smp and network
	// paths all exercised.
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{{Name: "smp0", Procs: 2}, {Name: "far", Procs: 1}},
		Networks: []cluster.NetworkSpec{
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"smp0", "far"}},
		},
	}
	_, err := cluster.Launch(topo, func(rank int, comm *mpi.Comm) error {
		// Self-send on every rank.
		req, err := comm.Isend([]byte{byte(rank)}, 1, mpi.Byte, rank, 1)
		if err != nil {
			return err
		}
		self := make([]byte, 1)
		if _, err := comm.Recv(self, 1, mpi.Byte, rank, 1); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if self[0] != byte(rank) {
			return fmt.Errorf("self-send corrupted")
		}
		// Ring across smp + network.
		n := comm.Size()
		out := mpi.Int64Bytes([]int64{int64(rank)})
		in := make([]byte, 8)
		if _, err := comm.Sendrecv(out, 1, mpi.Int64, (rank+1)%n, 2,
			in, 1, mpi.Int64, (rank-1+n)%n, 2); err != nil {
			return err
		}
		if got := mpi.BytesInt64(in)[0]; got != int64((rank-1+n)%n) {
			return fmt.Errorf("ring got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterOfClustersRouting(t *testing.T) {
	// Two SCI nodes + two Myrinet nodes, all on a TCP backbone: intra-
	// island traffic must ride the fast network, inter-island the
	// backbone (no forwarding needed).
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "s0", Procs: 1}, {Name: "s1", Procs: 1},
			{Name: "m0", Procs: 1}, {Name: "m1", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"s0", "s1"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"m0", "m1"}},
			{Name: "tcp", Protocol: "tcp", Nodes: []string{"s0", "s1", "m0", "m1"}},
		},
	}
	sess, err := cluster.Launch(topo, func(rank int, comm *mpi.Comm) error {
		// All-pairs token exchange.
		n := comm.Size()
		for other := 0; other < n; other++ {
			if other == rank {
				continue
			}
			out := mpi.Int64Bytes([]int64{int64(rank*100 + other)})
			in := make([]byte, 8)
			if _, err := comm.Sendrecv(out, 1, mpi.Int64, other, 3,
				in, 1, mpi.Int64, other, 3); err != nil {
				return err
			}
			if got := mpi.BytesInt64(in)[0]; got != int64(other*100+rank) {
				return fmt.Errorf("pair %d<->%d got %d", rank, other, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fast islands must have carried traffic; backbone too.
	if sess.Networks["sci"].Stats.Packets == 0 {
		t.Error("SCI island unused: routing chose a slower path")
	}
	if sess.Networks["myri"].Stats.Packets == 0 {
		t.Error("Myrinet island unused")
	}
	if sess.Networks["tcp"].Stats.Packets == 0 {
		t.Error("TCP backbone unused")
	}
}

func TestForwardingSession(t *testing.T) {
	// No backbone: islands joined only through a dual-homed gateway.
	topo := cluster.Topology{
		Nodes: []cluster.NodeSpec{
			{Name: "a", Procs: 1}, {Name: "gw", Procs: 1}, {Name: "b", Procs: 1},
		},
		Networks: []cluster.NetworkSpec{
			{Name: "sci", Protocol: "sisci", Nodes: []string{"a", "gw"}},
			{Name: "myri", Protocol: "bip", Nodes: []string{"gw", "b"}},
		},
		Forwarding: true,
	}
	sess, err := cluster.Launch(topo, func(rank int, comm *mpi.Comm) error {
		if rank == 0 {
			if err := comm.Send(bytes.Repeat([]byte{9}, 100), 100, mpi.Byte, 2, 0); err != nil {
				return err
			}
			big := bytes.Repeat([]byte{7}, 200000)
			return comm.Send(big, len(big), mpi.Byte, 2, 1)
		}
		if rank == 2 {
			buf := make([]byte, 100)
			if _, err := comm.Recv(buf, 100, mpi.Byte, 0, 0); err != nil {
				return err
			}
			big := make([]byte, 200000)
			if _, err := comm.Recv(big, len(big), mpi.Byte, 0, 1); err != nil {
				return err
			}
			for _, b := range big {
				if b != 7 {
					return fmt.Errorf("forwarded rndv corrupted")
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Ranks[1].ChMad.NForwarded == 0 {
		t.Fatal("gateway never forwarded")
	}
}

func TestErrorsSurfaceNicely(t *testing.T) {
	_, err := cluster.Launch(cluster.TwoNodes("sisci"), func(rank int, comm *mpi.Comm) error {
		if err := comm.Send(nil, 0, mpi.Byte, 5, 0); err == nil {
			return fmt.Errorf("out-of-range dest accepted")
		}
		if err := comm.Send(nil, 0, mpi.Byte, 1-rank, -3); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, err := comm.Irecv(nil, 0, mpi.Byte, 7, 0); err == nil {
			return fmt.Errorf("out-of-range src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
