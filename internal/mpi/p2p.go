package mpi

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/vtime"
)

// Status reports a completed receive, with Source in communicator ranks.
type Status struct {
	Source int
	Tag    int
	// Bytes is the received payload size; Count(dt) derives elements.
	Bytes int
}

// Count returns the number of dt elements received.
func (s *Status) Count(dt Datatype) int {
	if dt.Size() == 0 {
		return 0
	}
	return s.Bytes / dt.Size()
}

// Request is a non-blocking operation handle (MPI_Request).
type Request struct {
	c  *Comm
	sr *adi.SendReq
	rr *adi.RecvReq
	// finish runs once at completion (derived-type unpack).
	finish   func()
	finished bool
	status   *Status
	err      error
}

func (c *Comm) checkLive(op string) error {
	if c == nil {
		return fmt.Errorf("mpi: %s on nil communicator", op)
	}
	if c.p.finalized {
		return fmt.Errorf("mpi: %s after Finalize", op)
	}
	return nil
}

func (c *Comm) checkPeer(op string, r int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: %s: rank %d out of range [0,%d)", op, r, len(c.group))
	}
	return nil
}

// sendRaw transmits packed bytes on an explicit context. Blocking: it
// returns when the send is locally complete.
func (c *Comm) sendRaw(data []byte, dest, tag, ctx int) error {
	dstWorld := c.group[dest]
	sr := &adi.SendReq{
		Env:  adi.Envelope{Src: c.p.rank, Tag: tag, Context: ctx, Len: len(data)},
		Dst:  dstWorld,
		Data: data,
		Done: vtime.NewEvent(c.p.M.S, "mpi.send"),
	}
	dev := c.p.route(dstWorld)
	if dev == nil {
		return fmt.Errorf("mpi: no device for destination world rank %d", dstWorld)
	}
	dev.Send(sr)
	sr.Done.Wait()
	return sr.Err
}

// recvRaw posts and completes a receive of packed bytes on an explicit
// context; src/tag in communicator terms (wildcards allowed).
func (c *Comm) recvRaw(buf []byte, src, tag, ctx int) (*Status, error) {
	worldSrc := adi.AnySource
	if src != AnySource {
		worldSrc = c.group[src]
	}
	rr := &adi.RecvReq{
		Src: worldSrc, Tag: tag, Context: ctx,
		Buf:  buf,
		Done: vtime.NewEvent(c.p.M.S, "mpi.recv"),
	}
	c.p.Eng.PostRecv(rr)
	rr.Done.Wait()
	st := c.statusOf(rr)
	return st, rr.Err
}

func (c *Comm) statusOf(rr *adi.RecvReq) *Status {
	n := rr.Status.Len
	if n > len(rr.Buf) {
		n = len(rr.Buf)
	}
	return &Status{
		Source: c.commRankOfWorld(rr.Status.Source),
		Tag:    rr.Status.Tag,
		Bytes:  n,
	}
}

// Send performs a blocking standard-mode send (MPI_Send): it returns when
// the buffer is reusable. Eager sends complete locally; rendez-vous sends
// complete when the receiver's acknowledgement round-trip finishes.
func (c *Comm) Send(buf []byte, count int, dt Datatype, dest, tag int) error {
	if err := c.checkLive("Send"); err != nil {
		return err
	}
	if err := c.checkPeer("Send", dest); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: Send: negative tag %d", tag)
	}
	data := PackBuf(buf, count, dt)
	if !IsContiguous(dt) {
		c.p.M.Compute(c.p.memTime(len(data)))
	}
	return c.sendRaw(data, dest, tag, c.ctx)
}

// Isend starts a non-blocking send (MPI_Isend). Per the paper (§4.2.3),
// "the MPI control thread creates a thread for each non-blocking send
// operation": the blocking device send runs on a temporary Marcel thread.
func (c *Comm) Isend(buf []byte, count int, dt Datatype, dest, tag int) (*Request, error) {
	if err := c.checkLive("Isend"); err != nil {
		return nil, err
	}
	if err := c.checkPeer("Isend", dest); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: Isend: negative tag %d", tag)
	}
	data := PackBuf(buf, count, dt)
	if !IsContiguous(dt) {
		c.p.M.Compute(c.p.memTime(len(data)))
	}
	dstWorld := c.group[dest]
	sr := &adi.SendReq{
		Env:  adi.Envelope{Src: c.p.rank, Tag: tag, Context: c.ctx, Len: len(data)},
		Dst:  dstWorld,
		Data: data,
		Done: vtime.NewEvent(c.p.M.S, "mpi.isend"),
	}
	dev := c.p.route(dstWorld)
	if dev == nil {
		return nil, fmt.Errorf("mpi: no device for destination world rank %d", dstWorld)
	}
	c.p.M.Spawn("mpi.isend", func() { dev.Send(sr) })
	return &Request{c: c, sr: sr}, nil
}

// Recv performs a blocking receive (MPI_Recv). src may be AnySource, tag
// may be AnyTag.
func (c *Comm) Recv(buf []byte, count int, dt Datatype, src, tag int) (*Status, error) {
	req, err := c.Irecv(buf, count, dt, src, tag)
	if err != nil {
		return nil, err
	}
	return req.Wait()
}

// Irecv starts a non-blocking receive (MPI_Irecv).
func (c *Comm) Irecv(buf []byte, count int, dt Datatype, src, tag int) (*Request, error) {
	if err := c.checkLive("Irecv"); err != nil {
		return nil, err
	}
	if src != AnySource {
		if err := c.checkPeer("Irecv", src); err != nil {
			return nil, err
		}
	}
	worldSrc := adi.AnySource
	if src != AnySource {
		worldSrc = c.group[src]
	}
	need := count * dt.Size()
	landing := buf
	var finish func()
	if !IsContiguous(dt) {
		tmp := make([]byte, need)
		landing = tmp
		finish = func() {
			c.p.M.Compute(c.p.memTime(need))
			UnpackBuf(buf, count, dt, tmp)
		}
	} else {
		landing = buf[:need]
	}
	rr := &adi.RecvReq{
		Src: worldSrc, Tag: tag, Context: c.ctx,
		Buf:  landing,
		Done: vtime.NewEvent(c.p.M.S, "mpi.irecv"),
	}
	c.p.Eng.PostRecv(rr)
	return &Request{c: c, rr: rr, finish: finish}, nil
}

// Wait blocks until the request completes (MPI_Wait), returning the
// receive status (nil for sends).
func (r *Request) Wait() (*Status, error) {
	if r.finished {
		return r.status, r.err
	}
	switch {
	case r.sr != nil:
		r.sr.Done.Wait()
		r.err = r.sr.Err
	case r.rr != nil:
		r.rr.Done.Wait()
		r.err = r.rr.Err
		if r.finish != nil {
			r.finish()
		}
		r.status = r.c.statusOf(r.rr)
	}
	r.finished = true
	return r.status, r.err
}

// Test polls for completion without blocking (MPI_Test).
func (r *Request) Test() (done bool, st *Status, err error) {
	if r.finished {
		return true, r.status, r.err
	}
	ev := r.doneEvent()
	if !ev.Fired() {
		return false, nil, nil
	}
	st, err = r.Wait()
	return true, st, err
}

// doneEvent returns the request's completion event; every Request holds
// exactly one of sr/rr, so this never returns nil.
func (r *Request) doneEvent() *vtime.Event {
	if r.sr != nil {
		return r.sr.Done
	}
	return r.rr.Done
}

// WaitAll completes every request (MPI_Waitall), returning one status per
// request in order (nil for sends) and the first error encountered.
func WaitAll(reqs ...*Request) ([]*Status, error) {
	statuses := make([]*Status, len(reqs))
	var first error
	for i, r := range reqs {
		st, err := r.Wait()
		statuses[i] = st
		if err != nil && first == nil {
			first = err
		}
	}
	return statuses, first
}

// Sendrecv exchanges messages with (possibly different) partners without
// deadlock (MPI_Sendrecv).
func (c *Comm) Sendrecv(sendBuf []byte, sendCount int, sendDT Datatype, dest, sendTag int,
	recvBuf []byte, recvCount int, recvDT Datatype, src, recvTag int) (*Status, error) {
	rreq, err := c.Irecv(recvBuf, recvCount, recvDT, src, recvTag)
	if err != nil {
		return nil, err
	}
	sreq, err := c.Isend(sendBuf, sendCount, sendDT, dest, sendTag)
	if err != nil {
		return nil, err
	}
	if _, err := sreq.Wait(); err != nil {
		return nil, err
	}
	return rreq.Wait()
}

// Probe blocks until a matching message is available without receiving it
// (MPI_Probe).
func (c *Comm) Probe(src, tag int) (*Status, error) {
	if err := c.checkLive("Probe"); err != nil {
		return nil, err
	}
	worldSrc := adi.AnySource
	if src != AnySource {
		if err := c.checkPeer("Probe", src); err != nil {
			return nil, err
		}
		worldSrc = c.group[src]
	}
	env := c.p.Eng.WaitUnexpected(worldSrc, tag, c.ctx)
	return &Status{Source: c.commRankOfWorld(env.Src), Tag: env.Tag, Bytes: env.Len}, nil
}

// Iprobe checks for a matching message without blocking (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (bool, *Status, error) {
	if err := c.checkLive("Iprobe"); err != nil {
		return false, nil, err
	}
	worldSrc := adi.AnySource
	if src != AnySource {
		if err := c.checkPeer("Iprobe", src); err != nil {
			return false, nil, err
		}
		worldSrc = c.group[src]
	}
	env, ok := c.p.Eng.FindUnexpected(worldSrc, tag, c.ctx)
	if !ok {
		return false, nil, nil
	}
	return true, &Status{Source: c.commRankOfWorld(env.Src), Tag: env.Tag, Bytes: env.Len}, nil
}
