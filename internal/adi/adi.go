// Package adi reimplements MPICH's Abstract Device Interface (§2.2 of the
// paper): the request objects, message envelopes and matching queues that
// the generic MPI layer drives, plus the Device abstraction that network
// modules (ch_mad, ch_self, smp_plug, ch_p4) plug into, and the low-level
// "channel interface" (§2.2.1) with its generic short/eager/rendez-vous
// protocol engine.
package adi

import (
	"fmt"

	"mpichmad/internal/marcel"
	"mpichmad/internal/vtime"
)

// Wildcards for receive matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Envelope is the control information carried with every message
// (MPID_PKT_HEAD_T in MPICH terms).
type Envelope struct {
	Src     int // world rank of the sender
	Tag     int
	Context int // communicator context id
	Len     int // payload bytes
}

func (e Envelope) String() string {
	return fmt.Sprintf("{src=%d tag=%d ctx=%d len=%d}", e.Src, e.Tag, e.Context, e.Len)
}

// Status reports the outcome of a completed receive.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// SendReq is an in-flight send (MPIR_SHANDLE). Done fires at local
// completion: the buffer is reusable and MPI_Send/Wait may return.
type SendReq struct {
	Env  Envelope
	Dst  int // destination world rank
	Data []byte
	// Sync requests synchronous-mode semantics (MPI_Ssend): completion
	// only after the receiver has matched the message. Devices realize
	// it by forcing the rendez-vous transfer mode.
	Sync bool
	Done *vtime.Event
	Err  error
}

// RecvReq is an in-flight receive (MPIR_RHANDLE / rhandle). Done fires
// when the payload is in Buf and Status is filled.
type RecvReq struct {
	Src, Tag, Context int // Src/Tag may be wildcards
	Buf               []byte
	Status            Status
	Done              *vtime.Event
	Err               error
	// OnComplete, if set, runs just before Done fires — in device or
	// scheduler context, so it must not block. The MPI layer's collective
	// progress engine uses it to advance schedule rounds event-driven
	// instead of polling each request.
	OnComplete func()
}

// matches reports whether an incoming envelope satisfies this receive.
func (r *RecvReq) matches(env Envelope) bool {
	return r.Context == env.Context &&
		(r.Src == AnySource || r.Src == env.Src) &&
		(r.Tag == AnyTag || r.Tag == env.Tag)
}

// ErrTruncate is stored in RecvReq.Err when the incoming message is longer
// than the posted buffer (MPI_ERR_TRUNCATE).
var ErrTruncate = fmt.Errorf("adi: message truncated: buffer shorter than incoming data")

// Device is a network module handling sends toward some set of
// destinations. Receiving is device-internal: devices push incoming
// messages into the process's Engine.
//
// MPICH's MPID_Device structure (§4.2.2) exposes exactly ONE
// eager->rendez-vous threshold even when the device multiplexes several
// networks; SwitchPoint is that device-wide value and remains the
// fallback. A device that participates in the per-link device mux
// additionally implements LinkTuner, resolving the threshold per
// destination from the link actually carrying it — the fix for the
// single-protocol limitation.
type Device interface {
	Name() string
	// Send initiates sr; sr.Done fires at local completion. Called from
	// the MPI (application) thread of the sending process.
	Send(sr *SendReq)
	// SwitchPoint returns the device-wide eager->rendez-vous threshold in
	// bytes (the MPID_Device fallback; see LinkTuner).
	SwitchPoint() int
	// Shutdown stops device threads. Called once at MPI_Finalize.
	Shutdown()
}

// LinkTuner is optionally implemented by devices that resolve the
// eager->rendez-vous threshold per destination link instead of using the
// single device-wide SwitchPoint: the route toward dst knows which
// networks carry it, so the threshold is the smallest native switch point
// along that path (or a measured per-device-class override).
type LinkTuner interface {
	SwitchPointTo(dst int) int
}

// ClassTuner is optionally implemented by devices that accept measured
// per-device-class eager thresholds from the MPI_Init autotuner. class is
// a device-class name ("smp", "san", "wan"); bytes <= 0 removes the
// override, falling back to the link's native switch point.
type ClassTuner interface {
	SetClassSwitchPoint(class string, bytes int)
}

// RelayTuner is optionally implemented by devices whose gateway relay
// credit window can be resized from a measured bandwidth-delay product:
// the init-time tuner replaces the static default with one window per
// spanning (backbone) network, and each device adopts the window of the
// networks it fronts. Installing the current value is a no-op.
type RelayTuner interface {
	SetRelayWindowHint(net string, window int)
}

// Auditor is optionally implemented by devices that can verify their
// protocol invariants once traffic has drained: credit windows back to
// full, no rendez-vous or reassembly state left open, counters internally
// consistent. The cluster session audits every device after a clean run —
// the runtime counterpart of the madlint static checks.
type Auditor interface {
	AuditInvariants() error
}

// unexpected is a queued message that arrived before a matching receive
// was posted. deliver completes a receive from the stashed message,
// charging whatever copies the owning device's protocol implies.
type unexpected struct {
	env     Envelope
	deliver func(*RecvReq)
}

// probeWaiter is a blocked MPI_Probe.
type probeWaiter struct {
	src, tag, ctx int
	env           *Envelope
	ev            *vtime.Event
}

func (w *probeWaiter) matches(env Envelope) bool {
	return w.ctx == env.Context &&
		(w.src == AnySource || w.src == env.Src) &&
		(w.tag == AnyTag || w.tag == env.Tag)
}

// Engine holds the per-process matching state shared by every device of
// that process: the posted-receive queue and the unexpected-message queue
// (§2.2: "process the queues of pending messages").
type Engine struct {
	P    *marcel.Proc
	Rank int

	posted []*RecvReq
	unexp  []*unexpected
	probes []*probeWaiter

	// Counters for tests and EXPERIMENTS.md diagnostics.
	NPosted, NUnexpected, NMatched uint64
}

// NewEngine creates the matching engine for one process.
func NewEngine(p *marcel.Proc, rank int) *Engine {
	return &Engine{P: p, Rank: rank}
}

// PostRecv registers a receive request, first trying to satisfy it from
// the unexpected queue. Called from the application thread.
func (e *Engine) PostRecv(r *RecvReq) {
	for i, u := range e.unexp {
		if r.matches(u.env) {
			e.unexp = append(e.unexp[:i], e.unexp[i+1:]...)
			e.NMatched++
			u.deliver(r)
			return
		}
	}
	e.NPosted++
	e.posted = append(e.posted, r)
}

// MatchPosted finds and removes the first posted receive matching env.
// Called by device polling threads at message arrival.
func (e *Engine) MatchPosted(env Envelope) *RecvReq {
	for i, r := range e.posted {
		if r.matches(env) {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			e.NMatched++
			return r
		}
	}
	return nil
}

// AddUnexpected queues an arrived-but-unmatched message and wakes any
// matching probe.
func (e *Engine) AddUnexpected(env Envelope, deliver func(*RecvReq)) {
	e.NUnexpected++
	e.unexp = append(e.unexp, &unexpected{env: env, deliver: deliver})
	for i, w := range e.probes {
		if w.matches(env) {
			*w.env = env
			e.probes = append(e.probes[:i], e.probes[i+1:]...)
			w.ev.Fire()
			return
		}
	}
}

// FindUnexpected returns the envelope of the first queued unexpected
// message matching (src, tag, ctx) without removing it (MPI_Iprobe).
func (e *Engine) FindUnexpected(src, tag, ctx int) (Envelope, bool) {
	w := probeWaiter{src: src, tag: tag, ctx: ctx}
	for _, u := range e.unexp {
		if w.matches(u.env) {
			return u.env, true
		}
	}
	return Envelope{}, false
}

// WaitUnexpected blocks until a matching message is in the unexpected
// queue (MPI_Probe). The caller must not have a matching posted receive,
// or the message may bypass the unexpected queue entirely.
func (e *Engine) WaitUnexpected(src, tag, ctx int) Envelope {
	if env, ok := e.FindUnexpected(src, tag, ctx); ok {
		return env
	}
	var env Envelope
	w := &probeWaiter{src: src, tag: tag, ctx: ctx, env: &env,
		ev: vtime.NewEvent(e.P.S, "probe")}
	e.probes = append(e.probes, w)
	w.ev.Wait()
	return env
}

// QueueLens reports (posted, unexpected) queue lengths for tests.
func (e *Engine) QueueLens() (int, int) { return len(e.posted), len(e.unexp) }

// FinishRecv fills in status/error and fires completion; shared helper for
// device delivery paths. Every device's receive path funnels through here,
// making it the single completion hook point for engine progress.
func FinishRecv(r *RecvReq, env Envelope, err error) {
	r.Status = Status{Source: env.Src, Tag: env.Tag, Len: env.Len}
	if err != nil {
		r.Err = err
	}
	if r.OnComplete != nil {
		r.OnComplete()
	}
	r.Done.Fire()
}

// CheckLen validates the posted buffer length against the envelope,
// returning ErrTruncate (and the clamped copy length) on overflow.
func CheckLen(r *RecvReq, env Envelope) (int, error) {
	if env.Len > len(r.Buf) {
		return len(r.Buf), ErrTruncate
	}
	return env.Len, nil
}
