package adi

import (
	"bytes"
	"errors"
	"testing"

	"mpichmad/internal/marcel"
	"mpichmad/internal/vtime"
)

// mockFabric is an in-memory ChannelDevice pair with a fixed delivery
// delay and free copies, for exercising the protocol engine in isolation.
type mockFabric struct {
	s     *vtime.Scheduler
	delay vtime.Duration
	eps   map[int]*mockEP
}

type ctrlMsg struct {
	src int
	pkt []byte
}

type mockEP struct {
	f    *mockFabric
	rank int
	ctrl *vtime.Queue[ctrlMsg]
	bulk map[int]*vtime.Queue[[]byte]
}

func newMockFabric(s *vtime.Scheduler, delay vtime.Duration) *mockFabric {
	return &mockFabric{s: s, delay: delay, eps: make(map[int]*mockEP)}
}

func (f *mockFabric) endpoint(rank int) *mockEP {
	if ep, ok := f.eps[rank]; ok {
		return ep
	}
	ep := &mockEP{
		f:    f,
		rank: rank,
		ctrl: vtime.NewQueue[ctrlMsg](f.s, "mock.ctrl"),
		bulk: make(map[int]*vtime.Queue[[]byte]),
	}
	f.eps[rank] = ep
	return ep
}

func (ep *mockEP) bulkFrom(src int) *vtime.Queue[[]byte] {
	if q, ok := ep.bulk[src]; ok {
		return q
	}
	q := vtime.NewQueue[[]byte](ep.f.s, "mock.bulk")
	ep.bulk[src] = q
	return q
}

func (ep *mockEP) SendControl(dst int, pkt []byte) {
	to := ep.f.endpoint(dst)
	src := ep.rank
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	ep.f.s.After(ep.f.delay, func() { to.ctrl.Push(ctrlMsg{src: src, pkt: cp}) })
}

func (ep *mockEP) SendBulk(dst int, data []byte) {
	to := ep.f.endpoint(dst)
	src := ep.rank
	cp := make([]byte, len(data))
	copy(cp, data)
	ep.f.s.After(ep.f.delay, func() { to.bulkFrom(src).Push(cp) })
}

func (ep *mockEP) RecvControl() (int, []byte) {
	m := ep.ctrl.Pop()
	return m.src, m.pkt
}

func (ep *mockEP) RecvBulk(src int, dst []byte) {
	data := ep.bulkFrom(src).Pop()
	if len(data) != len(dst) {
		panic("mock: bulk length mismatch")
	}
	copy(dst, data)
}

func (ep *mockEP) CopyCost(n int) vtime.Duration { return 0 }
func (ep *mockEP) Close()                        {}

// rig is a two-rank protocol-engine test rig.
type rig struct {
	s      *vtime.Scheduler
	p0, p1 *marcel.Proc
	e0, e1 *Engine
	d0, d1 *ProtoDevice
}

func newRig(t *testing.T, cfg ProtoConfig) *rig {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(10 * vtime.Second))
	f := newMockFabric(s, 5*vtime.Microsecond)
	p0, p1 := marcel.NewProc(s, "r0"), marcel.NewProc(s, "r1")
	e0, e1 := NewEngine(p0, 0), NewEngine(p1, 1)
	d0 := NewProtoDevice("proto0", e0, f.endpoint(0), cfg)
	d1 := NewProtoDevice("proto1", e1, f.endpoint(1), cfg)
	return &rig{s: s, p0: p0, p1: p1, e0: e0, e1: e1, d0: d0, d1: d1}
}

func (r *rig) send(t *testing.T, d *ProtoDevice, p *marcel.Proc, dst, tag int, data []byte) *SendReq {
	sr := &SendReq{
		Env:  Envelope{Src: d.eng.Rank, Tag: tag, Context: 0, Len: len(data)},
		Dst:  dst,
		Data: data,
		Done: vtime.NewEvent(p.S, "send"),
	}
	d.Send(sr)
	return sr
}

func (r *rig) recv(e *Engine, src, tag, n int) *RecvReq {
	rr := &RecvReq{
		Src: src, Tag: tag, Context: 0,
		Buf:  make([]byte, n),
		Done: vtime.NewEvent(e.P.S, "recv"),
	}
	e.PostRecv(rr)
	return rr
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 7)
	}
	return b
}

// exchange runs one send/recv pair through whichever protocol the size
// selects and checks payload integrity and status.
func exchange(t *testing.T, size int, preposted bool) {
	t.Helper()
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	payload := pattern(size)
	r.p0.Spawn("send", func() {
		sr := r.send(t, r.d0, r.p0, 1, 42, payload)
		sr.Done.Wait()
	})
	r.p1.Spawn("recv", func() {
		if !preposted {
			r.p1.Sleep(200 * vtime.Microsecond) // let the message arrive unexpected
		}
		rr := r.recv(r.e1, 0, 42, size)
		rr.Done.Wait()
		if rr.Err != nil {
			t.Error(rr.Err)
		}
		if !bytes.Equal(rr.Buf, payload) {
			t.Errorf("size %d preposted=%v: payload corrupted", size, preposted)
		}
		if rr.Status.Source != 0 || rr.Status.Tag != 42 || rr.Status.Len != size {
			t.Errorf("status = %+v", rr.Status)
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShortProtocol(t *testing.T) {
	exchange(t, 10, true)  // expected
	exchange(t, 10, false) // unexpected
	exchange(t, 100, true) // boundary
	exchange(t, 0, true)   // zero-byte
	exchange(t, 0, false)  // zero-byte unexpected
}

func TestEagerProtocol(t *testing.T) {
	exchange(t, 101, true)
	exchange(t, 5000, true)
	exchange(t, 5000, false) // unexpected: drained into temp, extra copy
	exchange(t, 10000, true) // boundary
}

func TestRendezvousProtocol(t *testing.T) {
	exchange(t, 10001, true)
	exchange(t, 100000, true)
	exchange(t, 100000, false) // unexpected rndv: OK deferred until post
}

func TestTruncationShortEagerRndv(t *testing.T) {
	for _, size := range []int{50, 5000, 50000} {
		r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
		payload := pattern(size)
		r.p0.Spawn("send", func() {
			r.send(t, r.d0, r.p0, 1, 1, payload).Done.Wait()
		})
		r.p1.Spawn("recv", func() {
			rr := r.recv(r.e1, 0, 1, size/2)
			rr.Done.Wait()
			if !errors.Is(rr.Err, ErrTruncate) {
				t.Errorf("size %d: err = %v, want ErrTruncate", size, rr.Err)
			}
			if !bytes.Equal(rr.Buf, payload[:size/2]) {
				t.Errorf("size %d: truncated prefix corrupted", size)
			}
		})
		if err := r.s.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWildcardRecv(t *testing.T) {
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	r.p0.Spawn("send", func() {
		r.send(t, r.d0, r.p0, 1, 7, []byte("hi")).Done.Wait()
	})
	r.p1.Spawn("recv", func() {
		rr := r.recv(r.e1, AnySource, AnyTag, 2)
		rr.Done.Wait()
		if rr.Status.Source != 0 || rr.Status.Tag != 7 {
			t.Errorf("wildcard status = %+v", rr.Status)
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	// MPI guarantee: messages on the same (src, tag, context) are
	// matched in send order, across protocol boundaries.
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	sizes := []int{10, 20000, 50, 5000, 30000} // short, rndv, short, eager, rndv
	r.p0.Spawn("send", func() {
		for i, n := range sizes {
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(i)
			}
			r.send(t, r.d0, r.p0, 1, 3, buf).Done.Wait()
		}
	})
	r.p1.Spawn("recv", func() {
		r.p1.Sleep(5 * vtime.Millisecond) // force everything unexpected
		for i, n := range sizes {
			rr := r.recv(r.e1, 0, 3, n)
			rr.Done.Wait()
			if rr.Err != nil {
				t.Error(rr.Err)
			}
			if rr.Status.Len != n {
				t.Errorf("message %d: len %d, want %d (overtaken?)", i, rr.Status.Len, n)
			}
			for j := range rr.Buf {
				if rr.Buf[j] != byte(i) {
					t.Errorf("message %d: wrong payload", i)
					break
				}
			}
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPostedQueueFIFO(t *testing.T) {
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	r.p1.Spawn("recv", func() {
		ra := r.recv(r.e1, 0, 5, 1)
		rb := r.recv(r.e1, 0, 5, 1)
		ra.Done.Wait()
		rb.Done.Wait()
		if ra.Buf[0] != 'a' || rb.Buf[0] != 'b' {
			t.Errorf("posted receives matched out of order: %q %q", ra.Buf, rb.Buf)
		}
	})
	r.p0.Spawn("send", func() {
		r.p0.Sleep(50 * vtime.Microsecond)
		r.send(t, r.d0, r.p0, 1, 5, []byte("a")).Done.Wait()
		r.send(t, r.d0, r.p0, 1, 5, []byte("b")).Done.Wait()
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	r.p0.Spawn("send", func() {
		r.p0.Sleep(20 * vtime.Microsecond)
		r.send(t, r.d0, r.p0, 1, 9, pattern(64)).Done.Wait()
	})
	r.p1.Spawn("recv", func() {
		if _, ok := r.e1.FindUnexpected(0, 9, 0); ok {
			t.Error("Iprobe found a message before any was sent")
		}
		env := r.e1.WaitUnexpected(AnySource, 9, 0)
		if env.Src != 0 || env.Tag != 9 || env.Len != 64 {
			t.Errorf("probe envelope = %v", env)
		}
		// Probe must not consume: a receive still gets it.
		if _, ok := r.e1.FindUnexpected(0, 9, 0); !ok {
			t.Error("probe consumed the message")
		}
		rr := r.recv(r.e1, 0, 9, 64)
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, pattern(64)) {
			t.Error("payload corrupted")
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContextSeparation(t *testing.T) {
	// A receive on context 1 must not match a message on context 0.
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	r.p0.Spawn("send", func() {
		sr := &SendReq{
			Env:  Envelope{Src: 0, Tag: 1, Context: 0, Len: 1},
			Dst:  1,
			Data: []byte("x"),
			Done: vtime.NewEvent(r.s, "send"),
		}
		r.d0.Send(sr)
		sr.Done.Wait()
		sr2 := &SendReq{
			Env:  Envelope{Src: 0, Tag: 1, Context: 1, Len: 1},
			Dst:  1,
			Data: []byte("y"),
			Done: vtime.NewEvent(r.s, "send"),
		}
		r.d0.Send(sr2)
		sr2.Done.Wait()
	})
	r.p1.Spawn("recv", func() {
		rr := &RecvReq{Src: 0, Tag: 1, Context: 1, Buf: make([]byte, 1),
			Done: vtime.NewEvent(r.s, "recv")}
		r.e1.PostRecv(rr)
		rr.Done.Wait()
		if rr.Buf[0] != 'y' {
			t.Errorf("context separation violated: got %q", rr.Buf)
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	// Both ranks send large (rndv) messages to each other at once; the
	// pumps must not deadlock.
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 1000})
	run := func(p *marcel.Proc, d *ProtoDevice, e *Engine, peer int) func() {
		return func() {
			payload := pattern(50000)
			rr := r.recv(e, peer, 0, 50000)
			sr := r.send(t, d, p, peer, 0, payload)
			sr.Done.Wait()
			rr.Done.Wait()
			if !bytes.Equal(rr.Buf, payload) {
				t.Error("cross payload corrupted")
			}
		}
	}
	r.p0.Spawn("x", run(r.p0, r.d0, r.e0, 1))
	r.p1.Spawn("x", run(r.p1, r.d1, r.e1, 0))
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCtrlEncodingRoundtrip(t *testing.T) {
	env := Envelope{Src: 3, Tag: -1, Context: 7, Len: 123456}
	pkt := encodeCtrl(cRndvReq, env, 99, []byte("inline"))
	kind, gotEnv, id, inline, err := decodeCtrl(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if kind != cRndvReq || gotEnv != env || id != 99 || string(inline) != "inline" {
		t.Fatalf("roundtrip: kind=%d env=%v id=%d inline=%q", kind, gotEnv, id, inline)
	}
	if _, _, _, _, err := decodeCtrl([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated control accepted")
	}
}

func TestEngineCounters(t *testing.T) {
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 10000})
	r.p0.Spawn("send", func() {
		r.send(t, r.d0, r.p0, 1, 1, []byte("a")).Done.Wait()
	})
	r.p1.Spawn("recv", func() {
		r.p1.Sleep(100 * vtime.Microsecond)
		rr := r.recv(r.e1, 0, 1, 1)
		rr.Done.Wait()
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.e1.NUnexpected != 1 || r.e1.NMatched != 1 {
		t.Fatalf("counters: unexpected=%d matched=%d", r.e1.NUnexpected, r.e1.NMatched)
	}
	p, u := r.e1.QueueLens()
	if p != 0 || u != 0 {
		t.Fatalf("queues not drained: posted=%d unexp=%d", p, u)
	}
}

func TestDeviceMeta(t *testing.T) {
	r := newRig(t, ProtoConfig{ShortLimit: 100, RndvThreshold: 12345})
	if r.d0.Name() != "proto0" {
		t.Fatal("name")
	}
	if r.d0.SwitchPoint() != 12345 {
		t.Fatal("switch point")
	}
	r.d0.Shutdown()
	r.d0.Shutdown() // idempotent
	r.p0.Spawn("noop", func() {})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProtoConfigDefaults(t *testing.T) {
	s := vtime.New()
	p := marcel.NewProc(s, "r0")
	e := NewEngine(p, 0)
	f := newMockFabric(s, 0)
	d := NewProtoDevice("d", e, f.endpoint(0), ProtoConfig{})
	if d.cfg.ShortLimit != 1024 || d.cfg.RndvThreshold != 64<<10 {
		t.Fatalf("defaults: %+v", d.cfg)
	}
	s.Go("noop", func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
