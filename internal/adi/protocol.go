package adi

import (
	"encoding/binary"
	"fmt"

	"mpichmad/internal/vtime"
)

// ChannelDevice is the paper's §2.2.1 "channel interface": the ~five
// low-level functions ("responsible for sending and receiving contiguous
// messages carrying data or control information") on top of which MPICH's
// portable ADI implements the short/eager/rendez-vous exchange protocols.
// ch_p4 provides this interface over TCP.
type ChannelDevice interface {
	// SendControl transmits a small control packet (possibly carrying
	// piggybacked data) to a destination rank, blocking until injected.
	SendControl(dst int, pkt []byte)
	// SendBulk transmits a bulk data block following a control packet,
	// blocking until injected.
	SendBulk(dst int, data []byte)
	// RecvControl blocks for the next control packet from any source.
	RecvControl() (src int, pkt []byte)
	// RecvBulk blocks for the next bulk block from src, copying it into
	// dst and charging the device's receive-side copy.
	RecvBulk(src int, dst []byte)
	// CopyCost returns the CPU time to copy n bytes between process
	// buffers on this device's path.
	CopyCost(n int) vtime.Duration
	// Close releases transport resources.
	Close()
}

// ctrlKind discriminates the generic protocol engine's control packets.
// A named type so exhaustiveness of the receive pump's dispatch switch is
// machine-checkable (madlint/pktswitch).
type ctrlKind uint8

// Control packet kinds for the generic protocol engine.
const (
	cShort    ctrlKind = iota + 1 // envelope + inline payload
	cEager                        // envelope; payload follows on the bulk stream
	cRndvReq                      // envelope + send id ("request" in Fig. 4b)
	cRndvOK                       // send id echo ("Ok_To_Send" in Fig. 4b)
	cRndvData                     // send id; payload follows on the bulk stream
	cTerm                         // shut down the receive pump
)

const ctrlFixed = 1 + 4*4 + 4 // kind | env{src,tag,ctx,len} | id

func encodeCtrl(kind ctrlKind, env Envelope, id uint32, inline []byte) []byte {
	buf := make([]byte, ctrlFixed+len(inline))
	buf[0] = byte(kind)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], uint32(int32(env.Src)))
	le.PutUint32(buf[5:], uint32(int32(env.Tag)))
	le.PutUint32(buf[9:], uint32(int32(env.Context)))
	le.PutUint32(buf[13:], uint32(int32(env.Len)))
	le.PutUint32(buf[17:], id)
	copy(buf[ctrlFixed:], inline)
	return buf
}

func decodeCtrl(buf []byte) (kind ctrlKind, env Envelope, id uint32, inline []byte, err error) {
	if len(buf) < ctrlFixed {
		return 0, Envelope{}, 0, nil, fmt.Errorf("adi: truncated control packet (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	kind = ctrlKind(buf[0])
	env = Envelope{
		Src:     int(int32(le.Uint32(buf[1:]))),
		Tag:     int(int32(le.Uint32(buf[5:]))),
		Context: int(int32(le.Uint32(buf[9:]))),
		Len:     int(int32(le.Uint32(buf[13:]))),
	}
	id = le.Uint32(buf[17:])
	return kind, env, id, buf[ctrlFixed:], nil
}

// ProtoConfig sets the generic engine's protocol switch points
// ("protocol selection in MPICH is based on a set of device-specific
// parameters defined at initialization time", §2.2.1).
type ProtoConfig struct {
	// ShortLimit: payloads up to this travel inside the control packet
	// ("short" protocol: data delivered together with the envelope).
	ShortLimit int
	// RndvThreshold: payloads above it use rendez-vous; in between they
	// use eager.
	RndvThreshold int
}

// ProtoDevice is the portable ADI implementation over a ChannelDevice:
// the short, eager and rendez-vous data exchange protocols of §2.2.1.
// ch_p4 = ProtoDevice + a TCP ChannelDevice.
type ProtoDevice struct {
	name string
	eng  *Engine
	dev  ChannelDevice
	cfg  ProtoConfig

	nextID  uint32
	pending map[uint32]*SendReq     // sender side: rndv awaiting OK
	rndvRx  map[[2]uint32]*rndvRecv // receiver side: (src,id) -> matched recv
	stopped bool
}

// rndvRecv pairs a matched receive with the envelope from its rndv
// request until the data message lands.
type rndvRecv struct {
	r   *RecvReq
	env Envelope
}

// NewProtoDevice builds the generic protocol engine and starts its receive
// pump thread.
func NewProtoDevice(name string, eng *Engine, dev ChannelDevice, cfg ProtoConfig) *ProtoDevice {
	if cfg.ShortLimit <= 0 {
		cfg.ShortLimit = 1024
	}
	if cfg.RndvThreshold <= 0 {
		cfg.RndvThreshold = 64 << 10
	}
	d := &ProtoDevice{
		name:    name,
		eng:     eng,
		dev:     dev,
		cfg:     cfg,
		pending: make(map[uint32]*SendReq),
		rndvRx:  make(map[[2]uint32]*rndvRecv),
	}
	eng.P.SpawnDaemon(name+".pump", d.pump)
	return d
}

// Name implements Device.
func (d *ProtoDevice) Name() string { return d.name }

// SwitchPoint implements Device.
func (d *ProtoDevice) SwitchPoint() int { return d.cfg.RndvThreshold }

// Shutdown implements Device.
func (d *ProtoDevice) Shutdown() {
	if d.stopped {
		return
	}
	d.stopped = true
	d.dev.Close()
}

// Send implements Device: pick a protocol by message size and run it.
func (d *ProtoDevice) Send(sr *SendReq) {
	n := len(sr.Data)
	switch {
	case sr.Sync:
		// Synchronous mode: always rendez-vous, so completion implies
		// the receiver matched.
		d.nextID++
		id := d.nextID
		d.pending[id] = sr
		d.dev.SendControl(sr.Dst, encodeCtrl(cRndvReq, sr.Env, id, nil))
	case n <= d.cfg.ShortLimit:
		d.dev.SendControl(sr.Dst, encodeCtrl(cShort, sr.Env, 0, sr.Data))
		sr.Done.Fire()
	case n <= d.cfg.RndvThreshold:
		d.dev.SendControl(sr.Dst, encodeCtrl(cEager, sr.Env, 0, nil))
		d.dev.SendBulk(sr.Dst, sr.Data)
		sr.Done.Fire()
	default:
		d.nextID++
		id := d.nextID
		d.pending[id] = sr
		d.dev.SendControl(sr.Dst, encodeCtrl(cRndvReq, sr.Env, id, nil))
		// Done fires when the OK comes back and the data has been sent.
	}
}

// pump is the device's receive loop: dispatch each incoming control packet
// per Fig. 4's transfer mode diagrams.
func (d *ProtoDevice) pump() {
	for {
		src, pkt := d.dev.RecvControl()
		kind, env, id, inline, err := decodeCtrl(pkt)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", d.name, err))
		}
		switch kind {
		case cTerm:
			return
		case cShort:
			d.inShort(env, inline)
		case cEager:
			d.inEager(src, env)
		case cRndvReq:
			d.inRndvReq(src, env, id)
		case cRndvOK:
			d.inRndvOK(src, id)
		case cRndvData:
			d.inRndvData(src, id)
		default:
			panic(fmt.Sprintf("%s: unknown control kind %d from %d", d.name, kind, src))
		}
	}
}

func (d *ProtoDevice) inShort(env Envelope, inline []byte) {
	if r := d.eng.MatchPosted(env); r != nil {
		n, err := CheckLen(r, env)
		d.eng.P.Compute(d.dev.CopyCost(n))
		copy(r.Buf, inline[:n])
		FinishRecv(r, env, err)
		return
	}
	stash := make([]byte, len(inline))
	copy(stash, inline)
	d.eng.AddUnexpected(env, func(r *RecvReq) {
		n, err := CheckLen(r, env)
		d.eng.P.Compute(d.dev.CopyCost(n))
		copy(r.Buf, stash[:n])
		FinishRecv(r, env, err)
	})
}

func (d *ProtoDevice) inEager(src int, env Envelope) {
	if r := d.eng.MatchPosted(env); r != nil {
		n, err := CheckLen(r, env)
		if n == env.Len {
			d.dev.RecvBulk(src, r.Buf[:n])
		} else {
			// Truncating receive still must drain the stream.
			tmp := make([]byte, env.Len)
			d.dev.RecvBulk(src, tmp)
			d.eng.P.Compute(d.dev.CopyCost(n))
			copy(r.Buf, tmp[:n])
		}
		FinishRecv(r, env, err)
		return
	}
	// Unexpected eager: the stream must be drained now into a temporary
	// buffer; the eventual receive pays one more copy. This is ch_p4's
	// well-known unexpected-message penalty.
	tmp := make([]byte, env.Len)
	d.dev.RecvBulk(src, tmp)
	d.eng.AddUnexpected(env, func(r *RecvReq) {
		n, err := CheckLen(r, env)
		d.eng.P.Compute(d.dev.CopyCost(n))
		copy(r.Buf, tmp[:n])
		FinishRecv(r, env, err)
	})
}

func (d *ProtoDevice) inRndvReq(src int, env Envelope, id uint32) {
	key := [2]uint32{uint32(src), id}
	if r := d.eng.MatchPosted(env); r != nil {
		d.rndvRx[key] = &rndvRecv{r: r, env: env}
		d.dev.SendControl(src, encodeCtrl(cRndvOK, env, id, nil))
		return
	}
	d.eng.AddUnexpected(env, func(r *RecvReq) {
		d.rndvRx[key] = &rndvRecv{r: r, env: env}
		d.dev.SendControl(src, encodeCtrl(cRndvOK, env, id, nil))
	})
}

func (d *ProtoDevice) inRndvOK(src int, id uint32) {
	sr := d.pending[id]
	if sr == nil {
		panic(fmt.Sprintf("%s: rndv OK for unknown send id %d", d.name, id))
	}
	delete(d.pending, id)
	d.dev.SendControl(sr.Dst, encodeCtrl(cRndvData, sr.Env, id, nil))
	d.dev.SendBulk(sr.Dst, sr.Data)
	sr.Done.Fire()
}

func (d *ProtoDevice) inRndvData(src int, id uint32) {
	key := [2]uint32{uint32(src), id}
	rr := d.rndvRx[key]
	if rr == nil {
		panic(fmt.Sprintf("%s: rndv data for unknown id %d from %d", d.name, id, src))
	}
	delete(d.rndvRx, key)
	n, err := CheckLen(rr.r, rr.env)
	if err != nil {
		// Drain the full stream, keep what fits.
		tmp := make([]byte, rr.env.Len)
		d.dev.RecvBulk(src, tmp)
		d.eng.P.Compute(d.dev.CopyCost(n))
		copy(rr.r.Buf, tmp[:n])
	} else {
		d.dev.RecvBulk(src, rr.r.Buf[:n])
	}
	FinishRecv(rr.r, rr.env, err)
}
