package vtime

// This file provides virtual-time synchronization primitives. They mirror
// the shapes of sync.Mutex / semaphores / condition variables but block in
// virtual time: a waiting task consumes no simulated CPU and wakes exactly
// when the corresponding release/fire/push event occurs.
//
// All primitives use strict FIFO handoff, which keeps simulations
// deterministic and fair (no barging).

// Sem is a counting semaphore in virtual time. The zero value is unusable;
// create with NewSem.
type Sem struct {
	s       *Scheduler
	name    string
	n       int
	waiters []*Task
}

// NewSem creates a semaphore holding n initial permits.
func NewSem(s *Scheduler, name string, n int) *Sem {
	return &Sem{s: s, name: name, n: n}
}

// Acquire takes one permit, blocking in virtual time until available.
func (m *Sem) Acquire() {
	t := m.s.cur("Sem.Acquire")
	if m.n > 0 && len(m.waiters) == 0 {
		m.n--
		return
	}
	m.waiters = append(m.waiters, t)
	m.s.block(t, "sem "+m.name, -1, nil)
	// Handoff semantics: the releaser consumed our permit for us.
}

// TryAcquire takes a permit without blocking, reporting success.
func (m *Sem) TryAcquire() bool {
	if m.n > 0 && len(m.waiters) == 0 {
		m.n--
		return true
	}
	return false
}

// Release returns one permit, handing it directly to the first waiter if
// any. Safe from scheduler (At) context.
func (m *Sem) Release() {
	if len(m.waiters) > 0 {
		t := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		m.s.wake(t)
		return
	}
	m.n++
}

// Value returns the number of free permits (for tests and introspection).
func (m *Sem) Value() int { return m.n }

// Waiting returns how many tasks are queued on the semaphore.
func (m *Sem) Waiting() int { return len(m.waiters) }

// Mutex is a binary semaphore with Lock/Unlock naming.
type Mutex struct{ sem *Sem }

// NewMutex creates an unlocked virtual-time mutex.
func NewMutex(s *Scheduler, name string) *Mutex {
	return &Mutex{sem: NewSem(s, name, 1)}
}

// Lock acquires the mutex, blocking in virtual time.
func (m *Mutex) Lock() { m.sem.Acquire() }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.sem.Release() }

// Event is a one-shot broadcast flag: Wait blocks until Fire, after which
// all current and future Waits return immediately.
type Event struct {
	s       *Scheduler
	name    string
	fired   bool
	waiters []*Task
	subs    []func()
}

// NewEvent creates an unfired event.
func NewEvent(s *Scheduler, name string) *Event {
	return &Event{s: s, name: name}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Wait blocks the calling task until the event fires.
func (e *Event) Wait() {
	if e.fired {
		return
	}
	t := e.s.cur("Event.Wait")
	e.waiters = append(e.waiters, t)
	e.s.block(t, "event "+e.name, -1, nil)
}

// Fire marks the event and wakes every waiter. Safe from scheduler
// context. Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	ws := e.waiters
	e.waiters = nil
	for _, t := range ws {
		e.s.wake(t)
	}
	subs := e.subs
	e.subs = nil
	for _, fn := range subs {
		if fn != nil {
			fn()
		}
	}
}

// OnFire registers fn to run when the event fires; if it already fired,
// fn runs immediately. fn executes in whatever context calls Fire (task
// or scheduler callback) and must not block — it may fire other events,
// which is how multi-event waits (MPI_Waitany, collective progress
// rounds) are built without polling. The returned cancel drops the
// subscription so callers waiting on many events don't leave dead
// closures on the ones that never fired.
func (e *Event) OnFire(fn func()) (cancel func()) {
	if e.fired {
		fn()
		return func() {}
	}
	e.subs = append(e.subs, fn)
	i := len(e.subs) - 1
	return func() {
		if !e.fired && i < len(e.subs) {
			e.subs[i] = nil
		}
	}
}

// Queue is an unbounded FIFO of T with blocking Pop, used as the delivery
// queue of simulated NICs and as inter-thread mailboxes.
type Queue[T any] struct {
	s       *Scheduler
	name    string
	items   []T
	waiters []*Task
}

// NewQueue creates an empty queue.
func NewQueue[T any](s *Scheduler, name string) *Queue[T] {
	return &Queue[T]{s: s, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes one waiting Pop, if any. Safe from scheduler
// (At) context.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		t := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		q.s.wake(t)
	}
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Pop removes and returns the head item, blocking in virtual time until
// one is available.
func (q *Queue[T]) Pop() T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		t := q.s.cur("Queue.Pop")
		q.waiters = append(q.waiters, t)
		q.s.block(t, "queue "+q.name, -1, nil)
	}
}

// PopTimeout is Pop with a virtual-time timeout; ok=false on timeout.
func (q *Queue[T]) PopTimeout(d Duration) (T, bool) {
	deadline := q.s.Now().Add(d)
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		remain := deadline.Sub(q.s.Now())
		if remain < 0 {
			var zero T
			return zero, false
		}
		t := q.s.cur("Queue.PopTimeout")
		q.waiters = append(q.waiters, t)
		timedOut := q.s.block(t, "queue "+q.name, remain, func() {
			for i, w := range q.waiters {
				if w == t {
					q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
					break
				}
			}
		})
		if timedOut {
			// One last chance: an item may have been pushed at the
			// exact deadline tick after the timer fired.
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
	}
}
