package vtime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end Time
	s.Go("sleeper", func() {
		s.Sleep(5 * Microsecond)
		end = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(5*Microsecond) {
		t.Fatalf("end = %v, want 5us", end)
	}
}

func TestSequentialSleeps(t *testing.T) {
	s := New()
	var marks []Time
	s.Go("a", func() {
		for i := 0; i < 3; i++ {
			s.Sleep(10 * Microsecond)
			marks = append(marks, s.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("mark[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestConcurrentTasksInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		s.Go("a", func() {
			order = append(order, "a0")
			s.Sleep(2 * Microsecond)
			order = append(order, "a1")
		})
		s.Go("b", func() {
			order = append(order, "b0")
			s.Sleep(1 * Microsecond)
			order = append(order, "b1")
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := "a0 b0 b1 a1"
	if got := strings.Join(first, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	for i := 0; i < 20; i++ {
		if got := strings.Join(run(), " "); got != strings.Join(first, " ") {
			t.Fatalf("nondeterministic order on run %d: %q vs %q", i, got, first)
		}
	}
}

func TestYieldRoundRobin(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Go("t", func() {
			for k := 0; k < 2; k++ {
				order = append(order, i)
				s.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	ev := NewEvent(s, "never")
	s.Go("waiter", func() { ev.Wait() })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "waiter") {
		t.Fatalf("deadlock report should name the blocked task: %v", err)
	}
}

func TestDaemonDoesNotBlockExit(t *testing.T) {
	s := New()
	s.GoDaemon("poller", func() {
		for {
			s.Sleep(1 * Microsecond)
		}
	})
	done := false
	s.Go("main", func() {
		s.Sleep(10 * Microsecond)
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("main task did not complete")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	s := New()
	s.SetDeadline(Time(100 * Microsecond))
	s.Go("main", func() { s.Sleep(Second) })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestAtCallbackOrder(t *testing.T) {
	s := New()
	var order []int
	s.Go("main", func() {
		s.At(Time(5*Microsecond), func() { order = append(order, 5) })
		s.At(Time(3*Microsecond), func() { order = append(order, 3) })
		s.At(Time(3*Microsecond), func() { order = append(order, 31) }) // same time: FIFO by arming order
		s.Sleep(10 * Microsecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 31, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSemMutualExclusionAndFIFO(t *testing.T) {
	s := New()
	sem := NewSem(s, "cpu", 1)
	var order []int
	var inside int
	for i := 0; i < 4; i++ {
		i := i
		s.Go("worker", func() {
			sem.Acquire()
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, i)
			s.Sleep(10 * Microsecond)
			inside--
			sem.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
	if got := s.Now(); got != Time(40*Microsecond) {
		t.Fatalf("serialized time = %v, want 40us", got)
	}
}

func TestSemCountingPermits(t *testing.T) {
	s := New()
	sem := NewSem(s, "pool", 2)
	var concurrent, maxConcurrent int
	for i := 0; i < 6; i++ {
		s.Go("w", func() {
			sem.Acquire()
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			s.Sleep(10 * Microsecond)
			concurrent--
			sem.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxConcurrent)
	}
	if got := s.Now(); got != Time(30*Microsecond) {
		t.Fatalf("total = %v, want 30us (6 x 10us on 2 permits)", got)
	}
}

func TestTryAcquireRespectsQueue(t *testing.T) {
	s := New()
	sem := NewSem(s, "m", 1)
	s.Go("main", func() {
		if !sem.TryAcquire() {
			t.Error("first TryAcquire should succeed")
		}
		if sem.TryAcquire() {
			t.Error("second TryAcquire should fail")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after release should succeed")
		}
		sem.Release()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventBroadcast(t *testing.T) {
	s := New()
	ev := NewEvent(s, "go")
	woke := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func() {
			ev.Wait()
			woke++
		})
	}
	s.Go("firer", func() {
		s.Sleep(5 * Microsecond)
		ev.Fire()
		ev.Fire() // double fire is a no-op
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
	if !ev.Fired() {
		t.Fatal("event should report fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	s := New()
	ev := NewEvent(s, "done")
	s.Go("main", func() {
		ev.Fire()
		ev.Wait() // must not block
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	var got []int
	s.Go("consumer", func() {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop())
		}
	})
	s.Go("producer", func() {
		for i := 0; i < 5; i++ {
			s.Sleep(1 * Microsecond)
			q.Push(i)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got = %v, want in-order 0..4", got)
		}
	}
}

func TestQueuePopTimeoutExpires(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Go("main", func() {
		start := s.Now()
		_, ok := q.PopTimeout(7 * Microsecond)
		if ok {
			t.Error("PopTimeout should have timed out")
		}
		if el := s.Now().Sub(start); el != 7*Microsecond {
			t.Errorf("waited %v, want 7us", el)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePopTimeoutGetsItem(t *testing.T) {
	s := New()
	q := NewQueue[string](s, "q")
	s.Go("consumer", func() {
		v, ok := q.PopTimeout(100 * Microsecond)
		if !ok || v != "hello" {
			t.Errorf("got (%q,%v), want (hello,true)", v, ok)
		}
		if s.Now() != Time(3*Microsecond) {
			t.Errorf("woke at %v, want 3us", s.Now())
		}
	})
	s.Go("producer", func() {
		s.Sleep(3 * Microsecond)
		q.Push("hello")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueTimeoutThenNormalPop(t *testing.T) {
	// A consumer that timed out must not linger on the wait list and
	// steal later wakeups.
	s := New()
	q := NewQueue[int](s, "q")
	var got int
	s.Go("c1", func() {
		if _, ok := q.PopTimeout(1 * Microsecond); ok {
			t.Error("c1 should time out")
		}
	})
	s.Go("c2", func() {
		got = q.Pop()
	})
	s.Go("p", func() {
		s.Sleep(5 * Microsecond)
		q.Push(42)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("c2 got %d, want 42", got)
	}
}

func TestSpawnFromTask(t *testing.T) {
	s := New()
	sum := 0
	s.Go("parent", func() {
		for i := 1; i <= 3; i++ {
			i := i
			s.Go("child", func() {
				s.Sleep(Duration(i) * Microsecond)
				sum += i
			})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestMutex(t *testing.T) {
	s := New()
	mu := NewMutex(s, "m")
	n := 0
	for i := 0; i < 10; i++ {
		s.Go("w", func() {
			mu.Lock()
			v := n
			s.Sleep(1 * Microsecond) // would expose races without the lock
			n = v + 1
			mu.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

// Property: any multiset of producer items is consumed exactly, in FIFO
// order per producer, and the clock never runs backwards.
func TestQueueProperty(t *testing.T) {
	f := func(items []uint8, delays []uint8) bool {
		if len(items) > 64 {
			items = items[:64]
		}
		s := New()
		q := NewQueue[int](s, "q")
		var got []int
		s.Go("consumer", func() {
			last := Time(-1)
			for range items {
				got = append(got, q.Pop())
				if s.Now() < last {
					t.Error("clock ran backwards")
				}
				last = s.Now()
			}
		})
		s.Go("producer", func() {
			for i, v := range items {
				d := Duration(1)
				if len(delays) > 0 {
					d = Duration(delays[i%len(delays)]) * Microsecond
				}
				s.Sleep(d)
				q.Push(int(v))
			}
		})
		if err := s.Run(); err != nil {
			t.Error(err)
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range items {
			if got[i] != int(items[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore with k permits never admits more than k holders
// and total serialization time is ceil(n/k)*hold for identical tasks.
func TestSemProperty(t *testing.T) {
	f := func(nTasks, permits uint8) bool {
		n := int(nTasks%12) + 1
		k := int(permits%4) + 1
		s := New()
		sem := NewSem(s, "r", k)
		inside, maxIn := 0, 0
		for i := 0; i < n; i++ {
			s.Go("w", func() {
				sem.Acquire()
				inside++
				if inside > maxIn {
					maxIn = inside
				}
				s.Sleep(10 * Microsecond)
				inside--
				sem.Release()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if maxIn > k {
			return false
		}
		rounds := (n + k - 1) / k
		return s.Now() == Time(Duration(rounds)*10*Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New()
	s.Go("main", func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestDurationHelpers(t *testing.T) {
	if Microseconds(2.5) != 2500*Nanosecond {
		t.Fatal("Microseconds conversion wrong")
	}
	if d := (1500 * Nanosecond); d.Micros() != 1.5 {
		t.Fatalf("Micros = %v", d.Micros())
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
	tm := Time(0).Add(3 * Microsecond)
	if tm.Sub(Time(Microsecond)) != 2*Microsecond {
		t.Fatal("Sub wrong")
	}
	if tm.String() == "" || (3*Microsecond).String() == "" {
		t.Fatal("String empty")
	}
}
