package vtime

import (
	"errors"
	"strings"
	"testing"
)

// TestDeadlockDetectorStructuredDump pins the runtime half of the madlint
// invariant story: a wedged scheduler must not hang silently — Run returns
// a *DeadlockError carrying every task's name, state, and wait reason, so
// a 1000-rank replay names the stuck ranks instead of spinning forever.
func TestDeadlockDetectorStructuredDump(t *testing.T) {
	s := New()
	evA := NewEvent(s, "evA")
	evB := NewEvent(s, "evB")
	// The classic two-task cycle: alice waits for the event only bob
	// fires, bob waits for the event only alice fires.
	s.Go("alice", func() {
		evA.Wait()
		evB.Fire()
	})
	s.Go("bob", func() {
		evB.Wait()
		evA.Fire()
	})

	err := s.Run()
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if len(de.Tasks) != 2 {
		t.Fatalf("want 2 tasks in the dump, got %d: %+v", len(de.Tasks), de.Tasks)
	}
	byName := map[string]TaskState{}
	for _, ts := range de.Tasks {
		byName[ts.Name] = ts
	}
	for name, wantWait := range map[string]string{
		"alice": "event evA",
		"bob":   "event evB",
	} {
		ts, ok := byName[name]
		if !ok {
			t.Fatalf("task %q missing from dump: %+v", name, de.Tasks)
		}
		if ts.State != "blocked" {
			t.Fatalf("task %q state = %q, want blocked", name, ts.State)
		}
		if ts.BlockedOn != wantWait {
			t.Fatalf("task %q blocked on %q, want %q", name, ts.BlockedOn, wantWait)
		}
		if ts.Daemon {
			t.Fatalf("task %q reported as daemon", name)
		}
	}
	// The rendered report stays diagnosable too (what CI logs show).
	for _, want := range []string{"deadlock", `"alice"`, "event evA", `"bob"`, "event evB"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("rendered report missing %q:\n%s", want, err.Error())
		}
	}
}

// TestDeadlockIncludesFlightTail: when an OnDeadlock hook is installed
// (the cluster layer wires it to the trace flight recorder), its lines
// land both in the structured error and in the rendered report — the
// last events before the hang travel with the failure.
func TestDeadlockIncludesFlightTail(t *testing.T) {
	s := New()
	s.OnDeadlock = func() []string {
		return []string{
			"1200.000us s1/t0  rndv   rndv.req src=0 dst=8 bytes=65536",
			"1207.500us s1/t8  credit relay.wait",
		}
	}
	ev := NewEvent(s, "never")
	s.Go("main", func() { ev.Wait() })

	err := s.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(de.FlightTail) != 2 {
		t.Fatalf("FlightTail = %v, want the 2 hook lines", de.FlightTail)
	}
	for _, want := range []string{
		"last 2 trace events before the hang",
		"rndv.req src=0 dst=8",
		"credit relay.wait",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("rendered report missing %q:\n%s", want, err.Error())
		}
	}
}

// TestDeadlockWithoutRecorderStaysClean: no hook, no flight-tail
// section — the classic dump is unchanged.
func TestDeadlockWithoutRecorderStaysClean(t *testing.T) {
	s := New()
	ev := NewEvent(s, "never")
	s.Go("main", func() { ev.Wait() })
	err := s.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if de.FlightTail != nil {
		t.Fatalf("FlightTail = %v, want nil", de.FlightTail)
	}
	if strings.Contains(err.Error(), "trace events before the hang") {
		t.Fatalf("unexpected flight-tail section:\n%s", err.Error())
	}
}

// TestDeadlockDumpIncludesDaemons: daemons never keep the simulation
// alive, but when a deadlock fires they appear in the dump — a polling
// thread's wait reason is usually the loudest clue.
func TestDeadlockDumpIncludesDaemons(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "nic.rx")
	s.GoDaemon("poller", func() { q.Pop() })
	ev := NewEvent(s, "never")
	s.Go("main", func() { ev.Wait() })

	var de *DeadlockError
	if err := s.Run(); !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	found := false
	for _, ts := range de.Tasks {
		if ts.Name == "poller" {
			found = true
			if !ts.Daemon {
				t.Fatal("poller not marked as daemon")
			}
			if ts.BlockedOn != "queue nic.rx" {
				t.Fatalf("poller blocked on %q, want %q", ts.BlockedOn, "queue nic.rx")
			}
		}
	}
	if !found {
		t.Fatalf("daemon missing from dump: %+v", de.Tasks)
	}
}
