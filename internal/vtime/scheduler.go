package vtime

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// taskState describes where a task currently lives.
type taskState int

const (
	stateNew taskState = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

func (st taskState) String() string {
	switch st {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Task is a cooperative unit of execution scheduled in virtual time.
// A task runs on its own goroutine but only while it holds the scheduler's
// token, so at most one task executes at any moment.
type Task struct {
	s      *Scheduler
	id     int
	name   string
	daemon bool
	state  taskState

	resume chan struct{}

	// waitGen is bumped each time the task is woken; pending timeout
	// timers carry the generation at which they were armed so stale
	// timers can be ignored.
	waitGen  uint64
	timedOut bool
	// blockedOn is a human-readable description used in deadlock reports.
	blockedOn string
	// cancelWait detaches the task from whatever wait list it is on;
	// invoked when a timeout fires first.
	cancelWait func()
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique id (assigned in spawn order).
func (t *Task) ID() int { return t.id }

// timer is an entry in the scheduler's timer heap: either a task wakeup
// (possibly a timeout for a blocked task) or a callback.
type timer struct {
	when Time
	seq  uint64

	task      *Task
	gen       uint64 // waitGen at arming time (timeouts only)
	isTimeout bool

	fn func()
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Scheduler is the discrete-event simulation kernel. Create one with New,
// spawn tasks with Go, then call Run. All methods other than construction
// and Go-before-Run must be called from inside a running task (or, where
// documented, from an At callback).
type Scheduler struct {
	now Time
	seq uint64
	// rdy is the FIFO ready queue as a head-index ring: live entries are
	// rdy[rdyHead:], pops advance rdyHead in O(1), and the dead prefix is
	// compacted away once it dominates the slice so the backing array stays
	// bounded by the peak queue depth (the old copy-down pop was O(n) per
	// scheduling decision — the simulator's hot path at thousands of tasks).
	rdy     []*Task
	rdyHead int
	tmrs    timerHeap

	running *Task
	park    chan struct{}
	stop    chan struct{}

	nextID  int
	live    int // live non-daemon tasks
	liveAll int
	tasks   map[int]*Task

	deadline Time
	started  bool
	stopped  bool

	// OnDeadlock, when set, supplies extra context lines for deadlock
	// reports — the cluster layer points it at the trace flight
	// recorder's tail so the last events before the hang travel with
	// the error. It runs only when a deadlock is being built and must
	// not touch the scheduler.
	OnDeadlock func() []string
}

// New creates an empty scheduler with the clock at 0 and no deadline.
func New() *Scheduler {
	return &Scheduler{
		park:     make(chan struct{}),
		stop:     make(chan struct{}),
		tasks:    make(map[int]*Task),
		deadline: Time(1<<63 - 1),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// SetDeadline aborts Run with an error if virtual time would advance past
// t. Useful as a watchdog against livelock (e.g. runaway polling loops).
func (s *Scheduler) SetDeadline(t Time) { s.deadline = t }

// Go spawns a new task. It may be called before Run or from a running
// task. The task becomes runnable immediately (FIFO order).
func (s *Scheduler) Go(name string, fn func()) *Task {
	return s.spawn(name, false, fn)
}

// GoDaemon spawns a daemon task: Run returns once every non-daemon task
// has finished, regardless of daemons still blocked or sleeping (they are
// torn down cleanly). Polling threads are daemons.
func (s *Scheduler) GoDaemon(name string, fn func()) *Task {
	return s.spawn(name, true, fn)
}

func (s *Scheduler) spawn(name string, daemon bool, fn func()) *Task {
	t := &Task{
		s:      s,
		id:     s.nextID,
		name:   name,
		daemon: daemon,
		state:  stateReady,
		resume: make(chan struct{}),
	}
	s.nextID++
	s.tasks[t.id] = t
	s.liveAll++
	if !daemon {
		s.live++
	}
	s.rdy = append(s.rdy, t)
	go s.taskMain(t, fn)
	return t
}

func (s *Scheduler) taskMain(t *Task, fn func()) {
	select {
	case <-t.resume:
	case <-s.stop:
		runtime.Goexit()
	}
	fn()
	t.state = stateDone
	delete(s.tasks, t.id)
	s.liveAll--
	if !t.daemon {
		s.live--
	}
	s.park <- struct{}{}
}

// Run executes the simulation until every non-daemon task completes.
// It returns an error on deadlock (live tasks but no pending events) or if
// the virtual deadline is exceeded.
func (s *Scheduler) Run() error {
	if s.started {
		return fmt.Errorf("vtime: scheduler already run")
	}
	s.started = true
	defer func() {
		s.stopped = true
		close(s.stop) // release parked goroutines
	}()

	for {
		if s.live == 0 {
			return nil
		}
		if s.rdyHead < len(s.rdy) {
			t := s.popReady()
			t.state = stateRunning
			s.running = t
			t.resume <- struct{}{}
			<-s.park
			s.running = nil
			continue
		}
		if s.tmrs.Len() == 0 {
			return s.deadlockError()
		}
		e := heap.Pop(&s.tmrs).(*timer)
		if e.when > s.deadline {
			return fmt.Errorf("vtime: virtual deadline %v exceeded (next event at %v)", s.deadline, e.when)
		}
		if e.when > s.now {
			s.now = e.when
		}
		switch {
		case e.fn != nil:
			e.fn()
		case e.isTimeout:
			t := e.task
			if t.state == stateBlocked && t.waitGen == e.gen {
				if t.cancelWait != nil {
					t.cancelWait()
					t.cancelWait = nil
				}
				t.timedOut = true
				s.makeReady(t)
			}
		default: // plain sleep wakeup
			t := e.task
			if t.state == stateBlocked && t.waitGen == e.gen {
				t.timedOut = false
				s.makeReady(t)
			}
		}
	}
}

// TaskState is one live task's entry in a DeadlockError dump: enough to
// tell which rank/thread wedged and what it was waiting for without
// re-running under a debugger.
type TaskState struct {
	ID     int
	Name   string
	State  string // "new", "ready", "running", "blocked", "done"
	Daemon bool
	// BlockedOn is the human-readable wait reason ("sem n0.cpu",
	// "queue tcp.incoming", "event bcast.done", "sleep until ...");
	// empty unless State is "blocked".
	BlockedOn string
}

// DeadlockError is the scheduler's structured deadlock report: every live
// task is blocked and no event is pending, so virtual time can never
// advance. Tests and tooling match it with errors.As and inspect Tasks
// instead of parsing the rendered string.
type DeadlockError struct {
	Now   Time
	Tasks []TaskState
	// FlightTail holds the scheduler's OnDeadlock context lines —
	// typically the trace flight recorder's last events before the
	// hang. Empty when no recorder is attached.
	FlightTail []string
}

// Error renders the classic diagnosable dump: one line per task with its
// state and wait reason.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vtime: deadlock at %v: no runnable task, no pending event\n", e.Now)
	for _, ts := range e.Tasks {
		fmt.Fprintf(&b, "  task %d %q: %s", ts.ID, ts.Name, ts.State)
		if ts.BlockedOn != "" {
			fmt.Fprintf(&b, " on %s", ts.BlockedOn)
		}
		b.WriteByte('\n')
	}
	if len(e.FlightTail) > 0 {
		fmt.Fprintf(&b, "  last %d trace events before the hang:\n", len(e.FlightTail))
		for _, line := range e.FlightTail {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// deadlockError snapshots every live task, sorted by id, into a
// DeadlockError.
func (s *Scheduler) deadlockError() *DeadlockError {
	ids := make([]int, 0, len(s.tasks))
	for id := range s.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e := &DeadlockError{Now: s.now}
	for _, id := range ids {
		t := s.tasks[id]
		ts := TaskState{ID: t.id, Name: t.name, State: t.state.String(), Daemon: t.daemon}
		if t.state == stateBlocked {
			ts.BlockedOn = t.blockedOn
		}
		e.Tasks = append(e.Tasks, ts)
	}
	if s.OnDeadlock != nil {
		e.FlightTail = s.OnDeadlock()
	}
	return e
}

// popReady dequeues the next ready task in FIFO order. Amortized O(1):
// the head index advances past consumed entries, and the dead prefix is
// dropped either when the queue drains (the common case — reset and reuse
// the whole backing array) or when it outgrows the live tail.
func (s *Scheduler) popReady() *Task {
	t := s.rdy[s.rdyHead]
	s.rdy[s.rdyHead] = nil // release for GC
	s.rdyHead++
	if s.rdyHead == len(s.rdy) {
		s.rdy, s.rdyHead = s.rdy[:0], 0
	} else if s.rdyHead >= 64 && s.rdyHead > len(s.rdy)-s.rdyHead {
		n := copy(s.rdy, s.rdy[s.rdyHead:])
		for i := n; i < len(s.rdy); i++ {
			s.rdy[i] = nil
		}
		s.rdy, s.rdyHead = s.rdy[:n], 0
	}
	return t
}

func (s *Scheduler) makeReady(t *Task) {
	t.waitGen++
	t.state = stateReady
	t.blockedOn = ""
	t.cancelWait = nil
	s.rdy = append(s.rdy, t)
}

// cur returns the currently running task, panicking if called from outside
// task context (e.g. from an At callback, which must not block).
func (s *Scheduler) cur(op string) *Task {
	if s.running == nil {
		panic("vtime: " + op + " called outside a running task")
	}
	return s.running
}

// switchOut parks the current task and hands control back to the
// scheduler loop. The task resumes when woken (made ready and picked).
func (s *Scheduler) switchOut(t *Task) {
	s.park <- struct{}{}
	select {
	case <-t.resume:
	case <-s.stop:
		runtime.Goexit()
	}
}

func (s *Scheduler) addTimer(e *timer) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.tmrs, e)
}

// Sleep suspends the current task for d of virtual time. d <= 0 yields.
func (s *Scheduler) Sleep(d Duration) {
	t := s.cur("Sleep")
	if d <= 0 {
		s.Yield()
		return
	}
	s.addTimer(&timer{when: s.now.Add(d), task: t, gen: t.waitGen})
	t.state = stateBlocked
	t.blockedOn = fmt.Sprintf("sleep until %v", s.now.Add(d))
	s.switchOut(t)
}

// Yield places the current task at the back of the ready queue and runs
// the next one, without advancing time.
func (s *Scheduler) Yield() {
	t := s.cur("Yield")
	t.state = stateReady
	s.rdy = append(s.rdy, t)
	s.switchOut(t)
}

// At schedules fn to run at virtual time when (or now, if in the past).
// fn executes in scheduler context and must not block; it may wake tasks
// (Queue.Push, Event.Fire, Sem.Release) and schedule further callbacks.
func (s *Scheduler) At(when Time, fn func()) {
	if when < s.now {
		when = s.now
	}
	s.addTimer(&timer{when: when, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// block parks the current task until woken by a wake() call or, if
// timeout >= 0, until the timeout expires. cancel detaches the task from
// its wait list when the timeout wins. Returns true if it timed out.
// The caller must have registered the task on a wait list already.
func (s *Scheduler) block(t *Task, what string, timeout Duration, cancel func()) bool {
	t.state = stateBlocked
	t.blockedOn = what
	t.timedOut = false
	t.cancelWait = cancel
	if timeout >= 0 {
		s.addTimer(&timer{when: s.now.Add(timeout), task: t, gen: t.waitGen, isTimeout: true})
	}
	s.switchOut(t)
	return t.timedOut
}

// wake moves a blocked task to the ready queue. Safe to call from task or
// scheduler (At callback) context.
func (s *Scheduler) wake(t *Task) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("vtime: wake of task %q in state %v", t.name, t.state))
	}
	s.makeReady(t)
}
