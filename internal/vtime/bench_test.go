package vtime

import "testing"

// Wall-clock microbenchmarks of the DES kernel: these bound the simulator
// overhead per event, which determines how large a virtual cluster the
// harness can sweep.

func BenchmarkSleepWake(b *testing.B) {
	s := New()
	s.Go("main", func() {
		for i := 0; i < b.N; i++ {
			s.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Go("producer", func() {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			s.Yield()
		}
	})
	s.Go("consumer", func() {
		for i := 0; i < b.N; i++ {
			q.Pop()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSemHandoff(b *testing.B) {
	s := New()
	sem := NewSem(s, "cpu", 1)
	for w := 0; w < 4; w++ {
		s.Go("worker", func() {
			for i := 0; i < b.N/4; i++ {
				sem.Acquire()
				s.Sleep(Nanosecond)
				sem.Release()
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReadyQueueThroughput stresses the scheduler's ready-queue ring
// with a deep queue: hundreds of tasks yielding in round-robin, so every
// scheduling decision pops from a long FIFO. With the old copy-down pop
// this was O(depth) per switch; the head-index ring makes it O(1), which
// is what keeps 1000-rank simulations event-bound instead of queue-bound.
func BenchmarkReadyQueueThroughput(b *testing.B) {
	const tasks = 512
	s := New()
	rounds := b.N/tasks + 1
	for w := 0; w < tasks; w++ {
		s.Go("spinner", func() {
			for i := 0; i < rounds; i++ {
				s.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSpawnJoin(b *testing.B) {
	s := New()
	s.Go("main", func() {
		for i := 0; i < b.N; i++ {
			ev := NewEvent(s, "done")
			s.Go("child", func() { ev.Fire() })
			ev.Wait()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
