// Package vtime implements a deterministic discrete-event virtual-time
// kernel: cooperative tasks, timers, and synchronization primitives whose
// blocking behaviour advances a simulated clock instead of the wall clock.
//
// The kernel is the substrate for the whole MPICH/Madeleine reproduction:
// every simulated process, Marcel thread, NIC and polling loop is a vtime
// task. Exactly one task runs at any instant (handed a token by the
// scheduler), so simulations are fully deterministic: the same program
// produces the same event order and the same virtual timestamps on every
// run, on any machine.
package vtime

import "fmt"

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient virtual-time duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Microseconds converts a floating-point microsecond count to a Duration.
// It is the most common unit in the paper's calibration tables.
func Microseconds(us float64) Duration {
	return Duration(us * float64(Microsecond))
}

// Micros reports d in microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports t in microseconds since simulation start.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Add advances a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }
