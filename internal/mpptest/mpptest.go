// Package mpptest reimplements the measurement methodology of the paper's
// §5: ping-pong sweeps over message sizes, at the MPI level (like the
// mpptest program the authors used for the ch_mad and ch_p4 curves) and at
// the raw Madeleine level (for the raw_Madeleine curves), reporting
// one-way transfer time per size in virtual time.
package mpptest

import (
	"fmt"

	"mpichmad/internal/cluster"
	"mpichmad/internal/madeleine"
	"mpichmad/internal/marcel"
	"mpichmad/internal/mpi"
	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// Config tunes a sweep.
type Config struct {
	// Iters round trips per size (the deterministic simulator needs no
	// large repetition counts; >1 smooths protocol warm-up effects).
	Iters int
	// Tag used by the ping-pong messages.
	Tag int
	// Mutate, if set, adjusts the built session before it runs (e.g.
	// overriding the elected switch point for ablations).
	Mutate func(*cluster.Session)
}

func (c *Config) defaults() {
	if c.Iters <= 0 {
		c.Iters = 3
	}
}

// MPIPingPong measures one-way transfer time between ranks 0 and 1 of the
// given topology for every size, using blocking MPI_Send/MPI_Recv exactly
// like mpptest. The returned series is named after name.
func MPIPingPong(name string, topo cluster.Topology, sizes []int, cfg Config) (*stats.Series, error) {
	cfg.defaults()
	sess, err := cluster.Build(topo)
	if err != nil {
		return nil, err
	}
	if len(sess.Ranks) < 2 {
		return nil, fmt.Errorf("mpptest: topology has %d ranks, need >= 2", len(sess.Ranks))
	}
	if cfg.Mutate != nil {
		cfg.Mutate(sess)
	}
	series := &stats.Series{Name: name}
	err = sess.Run(func(rank int, comm *mpi.Comm) error {
		for _, size := range sizes {
			if err := comm.Barrier(); err != nil {
				return err
			}
			buf := make([]byte, size)
			switch rank {
			case 0:
				start := sess.S.Now()
				for i := 0; i < cfg.Iters; i++ {
					if err := comm.Send(buf, size, mpi.Byte, 1, cfg.Tag); err != nil {
						return err
					}
					if _, err := comm.Recv(buf, size, mpi.Byte, 1, cfg.Tag); err != nil {
						return err
					}
				}
				elapsed := sess.S.Now().Sub(start)
				series.Add(size, elapsed/vtime.Duration(2*cfg.Iters))
			case 1:
				for i := 0; i < cfg.Iters; i++ {
					if _, err := comm.Recv(buf, size, mpi.Byte, 0, cfg.Tag); err != nil {
						return err
					}
					if err := comm.Send(buf, size, mpi.Byte, 0, cfg.Tag); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// RawMadeleine measures one-way transfer time of the bare Madeleine
// library over one network (the raw_Madeleine curves): a single pack /
// unpack per message, no MPI, no devices, no polling threads.
func RawMadeleine(name string, params netsim.Params, sizes []int, cfg Config) (*stats.Series, error) {
	cfg.defaults()
	series := &stats.Series{Name: name}
	for _, size := range sizes {
		oneWay, err := rawOnce(params, size, cfg.Iters)
		if err != nil {
			return nil, err
		}
		series.Add(size, oneWay)
	}
	return series, nil
}

func rawOnce(params netsim.Params, size, iters int) (vtime.Duration, error) {
	s := vtime.New()
	s.SetDeadline(vtime.Time(500 * vtime.Second))
	net := netsim.NewNetwork(s, params.Network, params)
	pa, pb := marcel.NewProc(s, "a"), marcel.NewProc(s, "b")
	ia, ib := madeleine.New(pa), madeleine.New(pb)
	chA, err := ia.NewChannel("raw", net)
	if err != nil {
		return 0, err
	}
	chB, err := ib.NewChannel("raw", net)
	if err != nil {
		return 0, err
	}
	var elapsed vtime.Duration
	var rankErr error
	side := func(ch *madeleine.Channel, peer string, lead bool) func() {
		return func() {
			buf := make([]byte, size)
			start := ch.Inst.P.S.Now()
			for i := 0; i < iters; i++ {
				if lead {
					if err := rawSend(ch, peer, buf); err != nil {
						rankErr = err
						return
					}
					if err := rawRecv(ch, buf); err != nil {
						rankErr = err
						return
					}
				} else {
					if err := rawRecv(ch, buf); err != nil {
						rankErr = err
						return
					}
					if err := rawSend(ch, peer, buf); err != nil {
						rankErr = err
						return
					}
				}
			}
			if lead {
				elapsed = ch.Inst.P.S.Now().Sub(start)
			}
		}
	}
	pa.Spawn("ping", side(chA, "b", true))
	pb.Spawn("pong", side(chB, "a", false))
	if err := s.Run(); err != nil {
		return 0, err
	}
	if rankErr != nil {
		return 0, rankErr
	}
	return elapsed / vtime.Duration(2*iters), nil
}

func rawSend(ch *madeleine.Channel, peer string, buf []byte) error {
	conn, err := ch.BeginPacking(peer)
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		if err := conn.Pack(buf, madeleine.SendCheaper, madeleine.ReceiveCheaper); err != nil {
			return err
		}
	}
	return conn.EndPacking()
}

func rawRecv(ch *madeleine.Channel, buf []byte) error {
	conn, err := ch.BeginUnpacking()
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		if err := conn.Unpack(buf, madeleine.SendCheaper, madeleine.ReceiveCheaper); err != nil {
			return err
		}
	}
	return conn.EndUnpacking()
}

// Bandwidth8MB measures the paper's Table 1/2 bandwidth figure: one-way
// bandwidth of an 8 MB transfer, in MB/s.
func Bandwidth8MB(oneWay8MB vtime.Duration) float64 {
	return float64(8*netsim.MB) / oneWay8MB.Seconds() / netsim.MB
}
