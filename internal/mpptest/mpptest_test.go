package mpptest

import (
	"math"
	"testing"

	"mpichmad/internal/cluster"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

func TestRawMatchesTable1(t *testing.T) {
	s, err := RawMadeleine("raw", netsim.SCISISCI(), []int{4, 8 * netsim.MB}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lat, _ := s.At(4)
	if got := lat.LatencyUS(); math.Abs(got-4.4) > 0.6 {
		t.Errorf("SCI raw 4B = %.2fus, want ~4.4", got)
	}
	bw, _ := s.At(8 * netsim.MB)
	if got := bw.BandwidthMBs(); math.Abs(got-82.6) > 2 {
		t.Errorf("SCI raw 8MB = %.1f MB/s, want ~82.6", got)
	}
}

func TestMPIPingPongBasics(t *testing.T) {
	s, err := MPIPingPong("ch_mad", cluster.TwoNodes("bip"), []int{0, 4, 1024}, Config{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	p0, _ := s.At(0)
	p4, _ := s.At(4)
	pk, _ := s.At(1024)
	if !(p0.OneWay < p4.OneWay && p4.OneWay < pk.OneWay) {
		t.Fatalf("latency not increasing with size: %v %v %v", p0.OneWay, p4.OneWay, pk.OneWay)
	}
}

func TestMutateHook(t *testing.T) {
	called := false
	_, err := MPIPingPong("x", cluster.TwoNodes("sisci"), []int{4}, Config{
		Mutate: func(sess *cluster.Session) {
			called = true
			for _, rk := range sess.Ranks {
				rk.ChMad.SetSwitchPoint(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("mutate hook not invoked")
	}
}

func TestForcedRendezvousSlowerAtTinySizes(t *testing.T) {
	// Forcing rendez-vous for everything must hurt small messages
	// (three-way handshake) relative to eager.
	eager, err := MPIPingPong("eager", cluster.TwoNodes("sisci"), []int{64}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rndv, err := MPIPingPong("rndv", cluster.TwoNodes("sisci"), []int{64}, Config{
		Mutate: func(sess *cluster.Session) {
			for _, rk := range sess.Ranks {
				rk.ChMad.SetSwitchPoint(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pe, _ := eager.At(64)
	pr, _ := rndv.At(64)
	if pr.OneWay <= pe.OneWay {
		t.Fatalf("forced rndv (%v) not slower than eager (%v) at 64B", pr.OneWay, pe.OneWay)
	}
}

func TestBandwidth8MBHelper(t *testing.T) {
	if got := Bandwidth8MB(vtime.Second); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("Bandwidth8MB = %f", got)
	}
}

func TestErrorsPropagate(t *testing.T) {
	if _, err := MPIPingPong("x", cluster.Topology{}, []int{4}, Config{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	one := cluster.Topology{
		Nodes:    []cluster.NodeSpec{{Name: "a", Procs: 1}},
		Networks: []cluster.NetworkSpec{{Name: "t", Protocol: "tcp", Nodes: []string{"a"}}},
	}
	if _, err := MPIPingPong("x", one, []int{4}, Config{}); err == nil {
		t.Fatal("single-rank topology accepted")
	}
}
