package smpplug

import (
	"bytes"
	"testing"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/vtime"
)

type rig struct {
	s     *vtime.Scheduler
	node  *Node
	procs []*marcel.Proc
	engs  []*adi.Engine
	devs  []*Device
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	s := vtime.New()
	s.SetDeadline(vtime.Time(10 * vtime.Second))
	r := &rig{s: s, node: NewNode(s, "smp0")}
	for i := 0; i < n; i++ {
		p := marcel.NewProc(s, "p")
		eng := adi.NewEngine(p, i)
		r.procs = append(r.procs, p)
		r.engs = append(r.engs, eng)
		r.devs = append(r.devs, r.node.Join(p, eng, i))
	}
	return r
}

func TestIntraNodeExchange(t *testing.T) {
	r := newRig(t, 2)
	payload := bytes.Repeat([]byte{0x5A}, 10000)
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env:  adi.Envelope{Src: 0, Tag: 3, Context: 0, Len: len(payload)},
			Dst:  1,
			Data: payload,
			Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err != nil {
			t.Error(sr.Err)
		}
	})
	r.procs[1].Spawn("recv", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 3, Context: 0, Buf: make([]byte, len(payload)),
			Done: vtime.NewEvent(r.s, "recv")}
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		if !bytes.Equal(rr.Buf, payload) {
			t.Error("payload corrupted through the segment")
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.devs[1].NMessages != 1 {
		t.Fatalf("NMessages = %d", r.devs[1].NMessages)
	}
}

func TestUnexpectedIntraNode(t *testing.T) {
	r := newRig(t, 2)
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 0, Context: 0, Len: 3},
			Dst: 1, Data: []byte("abc"), Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		r.procs[1].Sleep(500 * vtime.Microsecond)
		rr := &adi.RecvReq{Src: adi.AnySource, Tag: adi.AnyTag, Context: 0,
			Buf: make([]byte, 3), Done: vtime.NewEvent(r.s, "recv")}
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		if string(rr.Buf) != "abc" {
			t.Errorf("got %q", rr.Buf)
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthIsTwoCopies(t *testing.T) {
	// 1 MB through the segment: copy-in + copy-out at 350 MB/s each
	// ~ 5.7 ms total -> effective ~175 MB/s.
	r := newRig(t, 2)
	const n = 1 << 20
	var done vtime.Time
	r.procs[0].Spawn("send", func() {
		sr := &adi.SendReq{
			Env: adi.Envelope{Src: 0, Tag: 0, Context: 0, Len: n},
			Dst: 1, Data: make([]byte, n), Done: vtime.NewEvent(r.s, "send"),
		}
		r.devs[0].Send(sr)
		sr.Done.Wait()
	})
	r.procs[1].Spawn("recv", func() {
		rr := &adi.RecvReq{Src: 0, Tag: 0, Context: 0, Buf: make([]byte, n),
			Done: vtime.NewEvent(r.s, "recv")}
		r.engs[1].PostRecv(rr)
		rr.Done.Wait()
		done = r.s.Now()
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	ms := done.Micros() / 1000
	if ms < 4.5 || ms > 8 {
		t.Fatalf("1MB intra-node took %.2fms, want ~5.7ms (two memcpy passes)", ms)
	}
}

func TestSendToAbsentRank(t *testing.T) {
	r := newRig(t, 1)
	r.procs[0].Spawn("main", func() {
		sr := &adi.SendReq{Env: adi.Envelope{Src: 0, Len: 1}, Dst: 9,
			Data: []byte{1}, Done: vtime.NewEvent(r.s, "send")}
		r.devs[0].Send(sr)
		sr.Done.Wait()
		if sr.Err == nil {
			t.Error("want error for absent rank")
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleJoinPanics(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double join should panic")
		}
	}()
	r.node.Join(r.procs[0], r.engs[0], 0)
}

func TestDeviceIdentity(t *testing.T) {
	r := newRig(t, 1)
	if r.devs[0].Name() != "smp_plug" || r.devs[0].SwitchPoint() <= 0 {
		t.Fatal("identity wrong")
	}
	r.devs[0].Shutdown()
}
