// Package smpplug implements the smp_plug device: intra-node,
// inter-process communication through a shared-memory segment, the second
// companion device of the paper's Fig. 3 configuration (§4.1, from the
// SMP implementation of MPI-BIP). Data crosses the segment with one copy
// in and one copy out, both charged at memcpy bandwidth.
package smpplug

import (
	"fmt"

	"mpichmad/internal/adi"
	"mpichmad/internal/marcel"
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// segMsg is one message deposited in the shared segment.
type segMsg struct {
	env  adi.Envelope
	data []byte // already copied into the segment by the sender
	// ack, when non-nil, is fired once the message is matched and
	// copied out (synchronous-mode sends).
	ack *vtime.Event
}

// Node is the shared-memory segment of one physical node: the rendezvous
// point for all smp_plug devices of processes on that node.
type Node struct {
	name   string
	inbox  map[int]*vtime.Queue[*segMsg] // per destination rank
	params netsim.Params
}

// NewNode creates a node segment.
func NewNode(s *vtime.Scheduler, name string) *Node {
	_ = s
	return &Node{
		name:   name,
		inbox:  make(map[int]*vtime.Queue[*segMsg]),
		params: netsim.SharedMemory(),
	}
}

// Device is the smp_plug device of one process.
type Device struct {
	node *Node
	proc *marcel.Proc
	eng  *adi.Engine
	rank int

	stopped bool
	// NMessages counts delivered intra-node messages.
	NMessages uint64
}

// Join attaches a process to the node segment and starts its receive
// thread. Every rank on the node must Join before traffic flows.
func (n *Node) Join(p *marcel.Proc, eng *adi.Engine, rank int) *Device {
	if _, dup := n.inbox[rank]; dup {
		panic(fmt.Sprintf("smpplug: rank %d already joined node %s", rank, n.name))
	}
	n.inbox[rank] = vtime.NewQueue[*segMsg](p.S, fmt.Sprintf("smp.%s.r%d", n.name, rank))
	d := &Device{node: n, proc: p, eng: eng, rank: rank}
	p.SpawnDaemon("smp_plug.recv", d.recvLoop)
	return d
}

// Name implements adi.Device.
func (d *Device) Name() string { return "smp_plug" }

// SwitchPoint implements adi.Device: the segment protocol is single-mode;
// the threshold reported is the preset's (used only for introspection).
func (d *Device) SwitchPoint() int { return d.node.params.SwitchPoint }

// Shutdown implements adi.Device.
func (d *Device) Shutdown() { d.stopped = true }

// Send implements adi.Device: copy into the segment (charged), signal the
// destination process.
func (d *Device) Send(sr *adi.SendReq) {
	q, ok := d.node.inbox[sr.Dst]
	if !ok {
		sr.Err = fmt.Errorf("smp_plug: rank %d is not on node %s", sr.Dst, d.node.name)
		sr.Done.Fire()
		return
	}
	p := &d.node.params
	d.proc.Compute(p.SendOverhead)
	d.proc.Compute(p.CopyTime(len(sr.Data))) // copy into the segment
	seg := make([]byte, len(sr.Data))
	copy(seg, sr.Data)
	msg := &segMsg{env: sr.Env, data: seg}
	if sr.Sync {
		msg.ack = sr.Done
	}
	// The receiver observes the message one segment latency later.
	d.proc.S.After(p.WireLatency, func() { q.Push(msg) })
	if !sr.Sync {
		sr.Done.Fire()
	}
}

// recvLoop drains this rank's inbox: copy out of the segment into the
// matched buffer, or stash as unexpected.
func (d *Device) recvLoop() {
	p := &d.node.params
	spec := marcel.PollSpec{IdleCost: p.PollCost, Interval: p.PollInterval}
	q := d.node.inbox[d.rank]
	for !d.stopped {
		msg := marcel.WaitPoll(d.proc, q, spec)
		d.NMessages++
		d.proc.Compute(p.RecvOverhead)
		env := msg.env
		if r := d.eng.MatchPosted(env); r != nil {
			n, err := adi.CheckLen(r, env)
			d.proc.Compute(p.CopyTime(n)) // copy out of the segment
			copy(r.Buf, msg.data[:n])
			adi.FinishRecv(r, env, err)
			if msg.ack != nil {
				msg.ack.Fire()
			}
			continue
		}
		d.eng.AddUnexpected(env, func(r *adi.RecvReq) {
			n, err := adi.CheckLen(r, env)
			d.proc.Compute(p.CopyTime(n))
			copy(r.Buf, msg.data[:n])
			adi.FinishRecv(r, env, err)
			if msg.ack != nil {
				msg.ack.Fire()
			}
		})
	}
}

var _ adi.Device = (*Device)(nil)
