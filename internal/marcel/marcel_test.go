package marcel

import (
	"testing"

	"mpichmad/internal/vtime"
)

func TestComputeSerializesWithinProcess(t *testing.T) {
	s := vtime.New()
	p := NewProc(s, "n0")
	var done []vtime.Time
	for i := 0; i < 3; i++ {
		p.Spawn("w", func() {
			p.Compute(10 * vtime.Microsecond)
			done = append(done, s.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []vtime.Time{
		vtime.Time(10 * vtime.Microsecond),
		vtime.Time(20 * vtime.Microsecond),
		vtime.Time(30 * vtime.Microsecond),
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if p.CPUBusy != 30*vtime.Microsecond {
		t.Fatalf("CPUBusy = %v, want 30us", p.CPUBusy)
	}
}

func TestProcessesRunConcurrently(t *testing.T) {
	s := vtime.New()
	a := NewProc(s, "a")
	b := NewProc(s, "b")
	var ta, tb vtime.Time
	a.Spawn("w", func() { a.Compute(10 * vtime.Microsecond); ta = s.Now() })
	b.Spawn("w", func() { b.Compute(10 * vtime.Microsecond); tb = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ta != vtime.Time(10*vtime.Microsecond) || tb != vtime.Time(10*vtime.Microsecond) {
		t.Fatalf("processes serialized across each other: ta=%v tb=%v", ta, tb)
	}
}

func TestWaitPollWakeOnArrival(t *testing.T) {
	s := vtime.New()
	p := NewProc(s, "n0")
	q := vtime.NewQueue[int](s, "rx")
	spec := PollSpec{DetectCost: 1 * vtime.Microsecond, Interval: 0}
	var got int
	var at vtime.Time
	p.Spawn("poller", func() {
		got = WaitPoll(p, q, spec)
		at = s.Now()
	})
	p.Spawn("src", func() {
		p.Sleep(5 * vtime.Microsecond)
		q.Push(99)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
	// Arrival at 5us + 1us detection cost.
	if at != vtime.Time(6*vtime.Microsecond) {
		t.Fatalf("completed at %v, want 6us", at)
	}
}

func TestWaitPollIdleBurn(t *testing.T) {
	// An idle periodic poller must burn Cost of CPU every Interval,
	// delaying other threads of the same process (the Fig. 9 mechanism).
	s := vtime.New()
	p := NewProc(s, "n0")
	q := vtime.NewQueue[int](s, "tcp-rx")
	spec := PollSpec{IdleCost: 10 * vtime.Microsecond, Interval: 10 * vtime.Microsecond}
	p.SpawnDaemon("tcp-poller", func() { WaitPoll(p, q, spec) })
	var workDone vtime.Time
	p.Spawn("main", func() {
		// 10 compute slices of 10us each = 100us of work. With the
		// poller burning 50% duty, completion must be well past 100us.
		for i := 0; i < 10; i++ {
			p.Compute(10 * vtime.Microsecond)
		}
		workDone = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if workDone <= vtime.Time(100*vtime.Microsecond) {
		t.Fatalf("work finished at %v; expected inflation from polling interference", workDone)
	}
	if workDone > vtime.Time(250*vtime.Microsecond) {
		t.Fatalf("work finished at %v; interference unreasonably large", workDone)
	}
}

func TestWaitPollItemAlreadyThere(t *testing.T) {
	s := vtime.New()
	p := NewProc(s, "n0")
	q := vtime.NewQueue[int](s, "rx")
	q.Push(7)
	var got int
	p.Spawn("main", func() {
		got = WaitPoll(p, q, PollSpec{DetectCost: vtime.Microsecond, Interval: 100 * vtime.Microsecond})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d", got)
	}
	if s.Now() != vtime.Time(vtime.Microsecond) {
		t.Fatalf("took %v, want 1us (no idle wait)", s.Now())
	}
}

func TestTryPollOnce(t *testing.T) {
	s := vtime.New()
	p := NewProc(s, "n0")
	q := vtime.NewQueue[int](s, "rx")
	p.Spawn("main", func() {
		if _, ok := TryPollOnce(p, q, PollSpec{DetectCost: vtime.Microsecond}); ok {
			t.Error("empty queue should not poll successfully")
		}
		if s.Now() != 0 {
			t.Error("failed poll must not cost CPU in this model")
		}
		q.Push(1)
		v, ok := TryPollOnce(p, q, PollSpec{DetectCost: vtime.Microsecond})
		if !ok || v != 1 {
			t.Errorf("got (%d,%v)", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeZeroIsNoop(t *testing.T) {
	s := vtime.New()
	p := NewProc(s, "n0")
	p.Spawn("main", func() {
		p.Compute(0)
		p.Compute(-5)
		if s.Now() != 0 {
			t.Error("zero/negative compute advanced time")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
