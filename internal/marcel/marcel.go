// Package marcel reproduces the role of the Marcel user-level thread
// library in the PM2 environment (§3.3, §4.2.3 of the paper): it gives
// each simulated process a set of cooperative threads multiplexed on a
// single virtual CPU, plus the polling discipline Madeleine relies on.
//
// Because Marcel threads are user-level, threads of one process never run
// in parallel: all CPU time (compute, packing, copies, poll costs) is
// serialized through the process's CPU resource. This is what makes the
// paper's Figure 9 phenomenon — an idle TCP polling thread degrading SCI
// latency — emerge structurally rather than being hard-coded.
package marcel

import (
	"fmt"

	"mpichmad/internal/vtime"
)

// Proc is a simulated process: a namespace of threads sharing one virtual
// CPU. It corresponds to one MPI rank.
type Proc struct {
	S    *vtime.Scheduler
	Name string

	cpu     *vtime.Sem
	nthread int

	// CPUBusy accumulates total virtual CPU time charged by threads of
	// this process; exposed for tests and the Fig. 9 analysis.
	CPUBusy vtime.Duration
}

// NewProc creates a process with an idle CPU.
func NewProc(s *vtime.Scheduler, name string) *Proc {
	return &Proc{S: s, Name: name, cpu: vtime.NewSem(s, name+".cpu", 1)}
}

// Spawn starts a regular (non-daemon) thread in this process.
func (p *Proc) Spawn(name string, fn func()) *vtime.Task {
	p.nthread++
	return p.S.Go(fmt.Sprintf("%s/%s", p.Name, name), fn)
}

// SpawnDaemon starts a daemon thread (e.g. a polling thread): it does not
// keep the simulation alive.
func (p *Proc) SpawnDaemon(name string, fn func()) *vtime.Task {
	p.nthread++
	return p.S.GoDaemon(fmt.Sprintf("%s/%s", p.Name, name), fn)
}

// Compute occupies this process's CPU for d of virtual time. Threads of
// the same process queue FIFO behind each other; threads of different
// processes proceed concurrently. d <= 0 is a no-op.
func (p *Proc) Compute(d vtime.Duration) {
	if d <= 0 {
		return
	}
	p.cpu.Acquire()
	p.CPUBusy += d
	p.S.Sleep(d)
	p.cpu.Release()
}

// Yield gives other threads of any process a chance to run without
// advancing virtual time.
func (p *Proc) Yield() { p.S.Yield() }

// Sleep suspends the calling thread without occupying the CPU.
func (p *Proc) Sleep(d vtime.Duration) { p.S.Sleep(d) }

// PollSpec describes a protocol's polling discipline (§3.3: "the polling
// frequency may be selected on a per-protocol basis, enabling low latency
// networks with cheap polling mechanisms to be polled more frequently than
// TCP-like networks only providing the expensive select system call").
type PollSpec struct {
	// IdleCost is the CPU burned by one unsuccessful poll of the
	// protocol while waiting (e.g. the select system call for TCP, a
	// cache-coherent flag read for SCI).
	IdleCost vtime.Duration
	// DetectCost is the CPU paid when a poll finds a message. The
	// calibrated network models fold detection into their receive
	// overheads, so this is usually zero.
	DetectCost vtime.Duration
	// Interval is the idle polling period. Zero means pure
	// wake-on-arrival (no idle CPU burn).
	Interval vtime.Duration
}

// WaitPoll blocks until q yields an item, following spec's polling
// discipline: while idle the thread wakes every Interval and burns
// IdleCost of CPU; an arrival wakes it immediately, at which point it pays
// DetectCost to extract the item. With Interval == 0 the wait is a pure
// blocking wait plus DetectCost.
//
// The idle burn is the load-bearing detail: an idle TCP poller with a
// costly select keeps stealing CPU slices from the other threads of its
// process, which is exactly the multi-protocol interference the paper
// measures in Figure 9.
func WaitPoll[T any](p *Proc, q *vtime.Queue[T], spec PollSpec) T {
	for {
		if v, ok := q.TryPop(); ok {
			p.Compute(spec.DetectCost)
			return v
		}
		if spec.Interval <= 0 {
			v := q.Pop()
			p.Compute(spec.DetectCost)
			return v
		}
		if v, ok := q.PopTimeout(spec.Interval); ok {
			p.Compute(spec.DetectCost)
			return v
		}
		// Idle poll: burn the poll cost and go around.
		p.Compute(spec.IdleCost)
	}
}

// TryPollOnce performs a single non-blocking poll of q, paying DetectCost
// only when something was there to extract.
func TryPollOnce[T any](p *Proc, q *vtime.Queue[T], spec PollSpec) (T, bool) {
	if v, ok := q.TryPop(); ok {
		p.Compute(spec.DetectCost)
		return v, true
	}
	var zero T
	return zero, false
}
