// Package baselines provides the comparator MPI implementations of the
// paper's Figures 7 and 8 — ScaMPI (Scali's commercial SCI MPI), SCI-MPICH
// (RWTH Aachen's ch_smi device), MPI-GM (Myricom) and MPICH-PM (RWCP
// SCore) — as analytic piecewise-LogGP reference models calibrated to the
// published curves.
//
// These systems are closed-source or unobtainable (the paper itself
// obtained several of the curves from the implementations' own teams,
// §5.1), so they are encoded as *data series generators*, clearly labeled
// ReferenceModel, rather than simulated devices. The systems under test —
// ch_mad, ch_p4, raw Madeleine — are real implementations in this
// repository; these models only recreate the comparison lines of the
// paper's plots. See DESIGN.md §2.
package baselines

import (
	"math"

	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
	"mpichmad/internal/vtime"
)

// Segment is one linear piece of a transfer-time model:
// T(n) = Lat0 + n/Bw for n <= UpTo.
type Segment struct {
	UpTo  int     // inclusive upper bound in bytes
	Lat0  float64 // intercept, microseconds
	BwMBs float64 // asymptotic bandwidth of the piece, MB/s (2^20)
}

// ReferenceModel is a piecewise-linear one-way transfer-time model of a
// published MPI implementation.
type ReferenceModel struct {
	Name     string
	Segments []Segment
}

// OneWay evaluates the model at message size n.
func (m *ReferenceModel) OneWay(n int) vtime.Duration {
	for _, s := range m.Segments {
		if n <= s.UpTo {
			return vtime.Microseconds(s.Lat0 + float64(n)/(s.BwMBs*netsim.MB)*1e6)
		}
	}
	last := m.Segments[len(m.Segments)-1]
	return vtime.Microseconds(last.Lat0 + float64(n)/(last.BwMBs*netsim.MB)*1e6)
}

// Series evaluates the model over a size sweep.
func (m *ReferenceModel) Series(sizes []int) *stats.Series {
	s := &stats.Series{Name: m.Name}
	for _, sz := range sizes {
		s.Add(sz, m.OneWay(sz))
	}
	return s
}

// ScaMPI models Scali's commercial SCI MPI (Fig. 7): very low small-
// message latency (direct SISCI implementation, tightly tuned), bandwidth
// plateauing near 70 MB/s — overtaken by ch_mad's zero-copy rendez-vous
// beyond 16 KB.
func ScaMPI() *ReferenceModel {
	return &ReferenceModel{
		Name: "ScaMPI",
		Segments: []Segment{
			{UpTo: 8 << 10, Lat0: 8, BwMBs: 55},
			{UpTo: math.MaxInt32, Lat0: 30, BwMBs: 70},
		},
	}
}

// SCIMPICH models RWTH Aachen's SCI-MPICH / ch_smi device (Fig. 7):
// slightly higher latency than ScaMPI, similar plateau.
func SCIMPICH() *ReferenceModel {
	return &ReferenceModel{
		Name: "SCI-MPICH",
		Segments: []Segment{
			{UpTo: 8 << 10, Lat0: 12, BwMBs: 50},
			{UpTo: math.MaxInt32, Lat0: 35, BwMBs: 75},
		},
	}
}

// MPIGM models Myricom's MPI over GM 1.2.3 (Fig. 8): flat small-message
// curve that crosses ch_mad's around 512 B, but a bandwidth ceiling near
// 50 MB/s that both ch_mad and MPICH-PM decisively beat.
func MPIGM() *ReferenceModel {
	return &ReferenceModel{
		Name: "MPI-GM",
		Segments: []Segment{
			{UpTo: 1 << 10, Lat0: 26, BwMBs: 250},
			{UpTo: math.MaxInt32, Lat0: 35, BwMBs: 50},
		},
	}
}

// MPICHPM models RWCP's zero-copy MPICH-PM/SCore (Fig. 8; measured by its
// authors on the RWC PC Cluster II): lowest Myrinet latency, best
// bandwidth below 4 KB and above 256 KB, comparable to ch_mad in between.
func MPICHPM() *ReferenceModel {
	return &ReferenceModel{
		Name: "MPICH-PM",
		Segments: []Segment{
			{UpTo: 4 << 10, Lat0: 15, BwMBs: 90},
			{UpTo: 256 << 10, Lat0: 22, BwMBs: 110},
			{UpTo: math.MaxInt32, Lat0: 40, BwMBs: 118},
		},
	}
}
