package baselines

import (
	"testing"

	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
)

func bwAt(m *ReferenceModel, n int) float64 {
	return float64(n) / m.OneWay(n).Seconds() / netsim.MB
}

func TestModelsMonotoneTime(t *testing.T) {
	for _, m := range []*ReferenceModel{ScaMPI(), SCIMPICH(), MPIGM(), MPICHPM()} {
		prev := m.OneWay(1)
		for _, n := range stats.Sizes1B1MB()[1:] {
			cur := m.OneWay(n)
			if cur < prev {
				t.Errorf("%s: time decreased between sizes (%v -> %v at %d)", m.Name, prev, cur, n)
			}
			prev = cur
		}
	}
}

func TestPaperShapeSCI(t *testing.T) {
	// Fig. 7: ScaMPI and SCI-MPICH plateau below ch_mad's 80+ MB/s.
	if bw := bwAt(ScaMPI(), 1<<20); bw < 60 || bw > 75 {
		t.Errorf("ScaMPI 1MB bw = %.1f, want ~70", bw)
	}
	if bw := bwAt(SCIMPICH(), 1<<20); bw < 65 || bw > 80 {
		t.Errorf("SCI-MPICH 1MB bw = %.1f, want ~75", bw)
	}
	// Small-message latency well below ch_mad's 20 us.
	if lat := ScaMPI().OneWay(4).Micros(); lat > 12 {
		t.Errorf("ScaMPI 4B = %.1fus", lat)
	}
}

func TestPaperShapeMyrinet(t *testing.T) {
	// Fig. 8: MPI-GM capped near 50 MB/s; MPICH-PM reaches ~115+.
	if bw := bwAt(MPIGM(), 1<<20); bw < 45 || bw > 55 {
		t.Errorf("MPI-GM 1MB bw = %.1f, want ~50", bw)
	}
	if bw := bwAt(MPICHPM(), 1<<20); bw < 110 || bw > 120 {
		t.Errorf("MPICH-PM 1MB bw = %.1f, want ~117", bw)
	}
	// PM sits ~5 us under ch_mad's ~20 us at small sizes (§5.4).
	if lat := MPICHPM().OneWay(4).Micros(); lat < 13 || lat > 17 {
		t.Errorf("MPICH-PM 4B = %.1fus, want ~15", lat)
	}
	// GM's flat region crosses ch_mad (~20 us + slope) around 512 B:
	// below ch_mad at 1 KB, above it at 64 B.
	if lat := MPIGM().OneWay(64).Micros(); lat < 20 {
		t.Errorf("MPI-GM 64B = %.1fus, should be above ch_mad's ~21", lat)
	}
}

func TestSeriesGeneration(t *testing.T) {
	sizes := []int{1, 1024, 1 << 20}
	s := MPIGM().Series(sizes)
	if s.Name != "MPI-GM" || len(s.Points) != 3 {
		t.Fatalf("series %q with %d points", s.Name, len(s.Points))
	}
	for i, p := range s.Points {
		if p.Size != sizes[i] || p.OneWay <= 0 {
			t.Fatalf("point %d: %+v", i, p)
		}
	}
}
