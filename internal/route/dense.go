package route

// densePlan is the original eager all-pairs planner, retained solely as
// the reference implementation for the eager==lazy equivalence property
// tests: it materializes a full Dijkstra tree from every source with the
// O(N^2) linear selection scan the package shipped with. Production
// queries never touch it — Plan resolves hierarchically (bloc.go) or via
// memoized per-source heap trees (ranktree.go).
type densePlan struct {
	p       *Plan
	dist    [][]float64
	prev    [][]int    // prev[src][v]: predecessor of v on the path from src (-1 at src, unreached)
	prevNet [][]string // prevNet[src][v]: network carrying prev[src][v] -> v
}

// computeDense eagerly plans all-pairs shortest-cost paths.
func computeDense(g Graph, opts Options) *densePlan {
	p := ComputeOpts(g, opts)
	d := &densePlan{
		p:       p,
		dist:    make([][]float64, g.N),
		prev:    make([][]int, g.N),
		prevNet: make([][]string, g.N),
	}
	for src := 0; src < g.N; src++ {
		d.dist[src], d.prev[src], d.prevNet[src] = p.shortestFrom(src, nil)
	}
	return d
}

func (d *densePlan) routable(src, dst int) bool {
	return src == dst || d.prev[src][dst] != unreached
}

func (d *densePlan) cost(src, dst int) (float64, bool) {
	if !d.routable(src, dst) {
		return 0, false
	}
	return d.dist[src][dst], true
}

func (d *densePlan) path(src, dst int) ([]Hop, bool) {
	if src == dst {
		return nil, true
	}
	if !d.routable(src, dst) {
		return nil, false
	}
	return pathFrom(d.prev[src], d.prevNet[src], src, dst), true
}

// paths is the dense equivalent of Plan.Paths: primary plus banned-edge
// alternates, computed with the same linear-scan reference.
func (d *densePlan) paths(src, dst int) ([][]Hop, bool) {
	if src == dst {
		return nil, true
	}
	primary, ok := d.path(src, dst)
	if !ok {
		return nil, false
	}
	paths := [][]Hop{primary}
	banned := make(map[edgeKey]bool)
	for len(paths) < d.p.maxPaths {
		at := src
		for _, h := range paths[len(paths)-1] {
			banned[keyOf(at, h.Rank, h.Net)] = true
			at = h.Rank
		}
		_, prev, prevNet := d.p.shortestFrom(src, banned)
		if prev[dst] == unreached {
			break
		}
		paths = append(paths, pathFrom(prev, prevNet, src, dst))
	}
	return paths, true
}

// shortestFrom runs one deterministic Dijkstra from src with the dense
// linear selection scan, skipping banned (pair, network) edges. Every hop
// leaving a non-source rank additionally pays that rank's congestion
// term. Selection ties keep the lower rank; relaxation ties keep the
// lower predecessor; the edge between two settled ranks is the cheapest
// shared network, first name winning cost ties — the deterministic
// contract every lazy resolver must reproduce bit-for-bit.
func (p *Plan) shortestFrom(src int, banned map[edgeKey]bool) (dist []float64, prev []int, prevNet []string) {
	dist = make([]float64, p.n)
	prev = make([]int, p.n)
	prevNet = make([]string, p.n)
	done := make([]bool, p.n)
	for i := range prev {
		prev[i] = unreached
		dist[i] = -1
	}
	dist[src], prev[src] = 0, -1
	for {
		cur := -1
		for v := 0; v < p.n; v++ {
			if done[v] || prev[v] == unreached {
				continue
			}
			if cur == -1 || dist[v] < dist[cur] {
				cur = v // ties keep the lower rank: v ascends
			}
		}
		if cur == -1 {
			break
		}
		done[cur] = true
		relay := 0.0
		if cur != src && p.congestion != nil {
			relay = p.congestion[cur] // cur would store-and-forward this hop
		}
		for v := 0; v < p.n; v++ {
			if v == cur || done[v] {
				continue
			}
			nm, c, ok := p.cheapestEdge(cur, v, banned)
			if !ok {
				continue
			}
			nd := dist[cur] + c + relay
			if prev[v] == unreached || nd < dist[v] ||
				(nd == dist[v] && cur < prev[v]) {
				dist[v], prev[v], prevNet[v] = nd, cur, nm
			}
		}
	}
	return dist, prev, prevNet
}
