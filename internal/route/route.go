// Package route is the cost-model routing subsystem between the fabric
// (netsim) and the cluster wiring: it answers shortest-cost path queries
// for ordered rank pairs over the proc/network graph, replacing the
// hop-count BFS the §6 forwarding extension started with.
//
// The edge cost is derived from the calibrated netsim.Params of the
// network carrying the hop: fixed per-hop cost (wire latency, injection
// and extraction overheads, ch_mad device handling) plus size-dependent
// serialization at a reference payload, plus the device-class transfer
// mode term (eager intermediary copy at or below the edge's native switch
// point, rendez-vous handshake above it — see HopCost and class.go),
// plus a trunk-contention penalty
// when the network models shared aggregate bandwidth (PR 3's arbiter) —
// a capped backbone hop is charged its trunk occupancy twice, once for
// its own serialization and once for the expected queueing behind a
// competing crossing. Paths therefore prefer one fast-fabric hop over a
// slow bridge, and an uncontended bridge over a contended one, which is
// what gateway-aware leader election needs.
//
// # Scaling model
//
// The planner no longer materializes all-pairs dist/prev matrices. Plan
// construction is O(N + nets): it only indexes attachments and partitions
// the ranks into blocs — maximal groups with identical network
// signatures (e.g. "the 15 non-gateway members of cluster 12"). All
// shortest-path state is computed lazily and hierarchically:
//
//   - Congestion-free plans route over the quotient graph whose nodes are
//     blocs (a 64-cluster × 16-rank machine has ~129 blocs, not 1024
//     ranks). One Dijkstra per source *bloc* is computed on first use and
//     shared by every co-member, because distances out of a bloc are
//     independent of which member asks: co-members are interchangeable
//     under the graph automorphism that swaps them, and a detour through
//     a co-member always costs strictly more than leaving directly.
//     Rank-level paths are reconstructed from the bloc chain on demand
//     (the representative of each interior bloc relays), reproducing the
//     dense planner's deterministic tie-breaks exactly — see bloc.go.
//   - Congested plans (re-plans fed by per-rank relay observations) break
//     bloc symmetry, so they fall back to one heap-based Dijkstra with
//     real adjacency per *queried source*, memoized — still never the
//     eager all-sources sweep (ranktree.go).
//   - Edge-disjoint alternates (Paths with MaxPaths > 1) need per-pair
//     banned-edge searches and use the same heap Dijkstra, cached per
//     ordered pair as before.
//
// The dense all-pairs implementation is retained in dense.go purely as
// the reference for the eager==lazy equivalence property test.
//
// Since the multi-path refactor the planner is no longer single-path or
// open-loop:
//
//   - Options.MaxPaths > 1 computes up to K edge-disjoint paths per
//     ordered pair (Paths): path 0 is the shortest-cost primary, each
//     alternate is the shortest path avoiding every (pair, network) edge
//     the earlier paths used. On a bridged triangle the third side
//     becomes a real second rail the device can stripe over.
//   - Options.Congestion feeds observed relay load back into the edge
//     costs: every hop that would relay *through* a congested rank is
//     charged that rank's congestion term, so a re-plan at a collective
//     boundary steers traffic around a hot gateway instead of queueing
//     behind it.
//
// The planner is deterministic: ties break toward the lower rank and the
// lexicographically smaller network name, so every session wires
// identical routes for identical topologies (and identical congestion
// observations).
package route

import (
	"sort"

	"mpichmad/internal/netsim"
)

// DefaultRefBytes is the reference payload for edge costs: one mid-size
// rendez-vous relay segment, large enough that bandwidth matters and
// small enough that latency still does.
const DefaultRefBytes = 16 << 10

// Graph is the proc-level connectivity the planner works on: proc i is
// attached to the networks named in NetsOf[i], and two procs share an
// edge per network they are both attached to.
type Graph struct {
	N      int
	NetsOf [][]string
	Nets   map[string]netsim.Params
}

// Options parameterize a plan beyond the graph itself.
type Options struct {
	// RefBytes is the reference payload for edge costs
	// (DefaultRefBytes when <= 0).
	RefBytes int
	// MaxPaths is the number of edge-disjoint paths to expose per ordered
	// pair (Paths); values < 1 mean 1 (the classic single-path planner).
	MaxPaths int
	// Congestion, when non-nil, is the observed relay congestion of each
	// rank in seconds (typically relay queue depth x one reference-payload
	// hop time, supplied by the cluster session from Session.RelayStats).
	// Every hop *leaving* a congested rank that is not the path's source —
	// i.e. every hop that would relay through it — is charged the term, so
	// hot gateways price themselves out of new paths.
	Congestion []float64
}

// Hop is one step of a routed path: the rank the hop lands on and the
// network carrying it.
type Hop struct {
	Rank int
	Net  string
}

// HopCost is the cost model of one hop over a network, in seconds, for an
// nBytes payload: fixed per-hop costs plus serialization plus the
// trunk-contention penalty described in the package comment, plus the
// transfer-mode term of the edge's own device class — the cost curve is
// device-aware, not a uniform reference. A payload at or below the edge's
// native switch point rides the eager path and pays the class's
// intermediary copy (CopyTime through the driver's buffers); a larger
// payload goes rendez-vous and pays the REQUEST/SENDOK handshake (two
// extra fixed-cost wire crossings) instead. Two edges with identical
// latency and bandwidth but different switch points or copy rates
// therefore price the same payload differently, which is what lets the
// planner tell a SAN-class edge from a TCP-class one.
func HopCost(p netsim.Params, nBytes int) float64 {
	fixed := p.WireLatency + p.SendOverhead + p.RecvOverhead + p.DeviceHandling
	cost := fixed.Seconds() + p.TxTime(nBytes).Seconds()
	if p.SwitchPoint > 0 && nBytes > p.SwitchPoint {
		cost += 2 * fixed.Seconds() // rendez-vous: REQUEST out, SENDOK back
	} else {
		cost += p.CopyTime(nBytes).Seconds() // eager: intermediary buffer copy
	}
	if p.NetworkBandwidth > 0 {
		trunk := p.TrunkTime(nBytes).Seconds()
		if wire := p.TxTime(nBytes).Seconds(); trunk > wire {
			cost += trunk - wire // a trunk slower than the pipe bounds the hop
		}
		cost += trunk // expected queueing behind one competing crossing
	}
	return cost
}

// edgeKey identifies an undirected pair edge on one network, for the
// edge-disjoint alternate search.
type edgeKey struct {
	lo, hi int
	net    string
}

func keyOf(a, b int, net string) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{lo: a, hi: b, net: net}
}

// Plan is the computed routing state: the indexed graph, its bloc
// partition, and lazily-built shortest-cost trees (per source bloc for
// congestion-free plans, per source rank otherwise), queryable per
// ordered pair, plus up to MaxPaths edge-disjoint alternates per pair.
type Plan struct {
	n          int
	ref        int
	maxPaths   int
	congestion []float64
	nets       map[string]netsim.Params
	netNames   []string // sorted, for deterministic iteration
	netCost    map[string]float64
	attached   []map[string]bool
	netMembers map[string][]int // attached ranks per net, ascending

	// Integer-indexed mirrors of the string-keyed tables, in netNames
	// order (so ascending net id == ascending net name): the lazy
	// Dijkstras walk these instead of hashing strings in their inner
	// loops.
	netIdx         map[string]int
	netCostByID    []float64
	netMembersByID [][]int // attached ranks per net id, ascending
	blocSigIDs     [][]int // per bloc, attached net ids ascending

	// Bloc partition: blocOf[r] is the bloc id of rank r; blocs are
	// numbered in ascending order of their lowest member, so a bloc's id
	// order equals its representative-rank order.
	blocOf       []int
	blocs        []bloc
	netBlocsByID [][]int // attached bloc ids per net id, ascending

	qts map[int]*quotientTree // lazily built per source bloc (congestion-free)
	rts map[int]*rankTree     // lazily built per source rank (congested fallback)
	alt map[[2]int][][]Hop    // lazily computed disjoint path sets per pair
}

// bloc is one equivalence class of ranks with identical network
// signatures. members is ascending; members[0] is the representative that
// relays when the bloc sits interior on a routed path.
type bloc struct {
	members []int
	sig     []string // sorted net names, no duplicates
}

// Compute plans shortest-cost routing state at the given reference
// payload size (DefaultRefBytes when refBytes <= 0) with the classic
// single-path, congestion-free options.
func Compute(g Graph, refBytes int) *Plan {
	return ComputeOpts(g, Options{RefBytes: refBytes})
}

// ComputeOpts builds the routing state under the given options. This is
// O(N + nets): attachment indexes and the bloc partition only. All
// shortest-path trees are computed lazily on first query and cached —
// per source bloc when congestion-free, per source rank otherwise.
func ComputeOpts(g Graph, opts Options) *Plan {
	p := newPlan(g, opts)
	p.buildBlocs(g)
	return p
}

// newPlan indexes the graph: per-network reference costs, per-rank
// attachment sets, and per-network member lists (the real adjacency the
// lazy Dijkstras walk).
func newPlan(g Graph, opts Options) *Plan {
	if opts.RefBytes <= 0 {
		opts.RefBytes = DefaultRefBytes
	}
	if opts.MaxPaths < 1 {
		opts.MaxPaths = 1
	}
	p := &Plan{
		n:        g.N,
		ref:      opts.RefBytes,
		maxPaths: opts.MaxPaths,
		nets:     g.Nets,
		qts:      make(map[int]*quotientTree),
		rts:      make(map[int]*rankTree),
		alt:      make(map[[2]int][][]Hop),
	}
	if opts.Congestion != nil {
		p.congestion = make([]float64, g.N)
		copy(p.congestion, opts.Congestion)
	}

	netCost := make(map[string]float64, len(g.Nets))
	names := make([]string, 0, len(g.Nets))
	for name, params := range g.Nets {
		netCost[name] = HopCost(params, opts.RefBytes)
		names = append(names, name)
	}
	sort.Strings(names)
	attached := make([]map[string]bool, g.N)
	members := make(map[string][]int, len(g.Nets))
	for i := 0; i < g.N; i++ {
		attached[i] = make(map[string]bool, len(g.NetsOf[i]))
		for _, nm := range g.NetsOf[i] {
			if !attached[i][nm] {
				attached[i][nm] = true
				members[nm] = append(members[nm], i)
			}
		}
	}
	p.netNames, p.netCost, p.attached, p.netMembers = names, netCost, attached, members
	p.netIdx = make(map[string]int, len(names))
	p.netCostByID = make([]float64, len(names))
	p.netMembersByID = make([][]int, len(names))
	for i, nm := range names {
		p.netIdx[nm] = i
		p.netCostByID[i] = netCost[nm]
		p.netMembersByID[i] = members[nm]
	}
	return p
}

const unreached = -2

// cheapestEdge returns the cheapest non-banned network both procs are
// attached to and its hop cost at the reference payload.
func (p *Plan) cheapestEdge(a, b int, banned map[edgeKey]bool) (net string, cost float64, ok bool) {
	// Iterate the smaller attachment set in sorted-name order (signatures
	// are sorted): same min-cost-then-earliest-name result as scanning
	// every network, without touching the ones neither proc is on.
	small, big := a, b
	if len(p.sigOf(b)) < len(p.sigOf(a)) {
		small, big = b, a
	}
	other := p.attached[big]
	for _, nm := range p.sigOf(small) {
		if !other[nm] {
			continue
		}
		if banned != nil && banned[keyOf(a, b, nm)] {
			continue
		}
		if c := p.netCost[nm]; !ok || c < cost {
			net, cost, ok = nm, c, true
		}
	}
	return net, cost, ok
}

// sigOf returns rank r's sorted, deduplicated network signature.
func (p *Plan) sigOf(r int) []string {
	return p.blocs[p.blocOf[r]].sig
}

// DirectEdge returns the cheapest network both procs are attached to and
// its hop cost at the reference payload; ok=false when they share none.
// Single-hop fallback for sessions without gateway forwarding, where the
// planner's multi-hop preference cannot be honored.
func (p *Plan) DirectEdge(a, b int) (net string, cost float64, ok bool) {
	return p.cheapestEdge(a, b, nil)
}

// N returns the number of procs planned over.
func (p *Plan) N() int { return p.n }

// RefBytes returns the reference payload the edge costs were taken at.
func (p *Plan) RefBytes() int { return p.ref }

// MaxPaths returns the number of edge-disjoint paths the plan exposes per
// pair (1 for the classic single-path planner).
func (p *Plan) MaxPaths() int { return p.maxPaths }

// CongestionOf returns the congestion term the plan was computed with for
// a rank (0 when none was supplied).
func (p *Plan) CongestionOf(rank int) float64 {
	if p.congestion == nil {
		return 0
	}
	return p.congestion[rank]
}

// Congested reports whether the plan was computed with relay-congestion
// feedback. Congestion terms are per rank, which breaks the bloc symmetry
// the hierarchical resolver relies on, so congested plans answer from
// per-source rank trees instead (and bloc-aggregated consumers like
// leader election must fall back to exact per-member queries).
func (p *Plan) Congested() bool { return p.congestion != nil }

// useHier reports whether queries resolve over the bloc quotient graph.
func (p *Plan) useHier() bool { return p.congestion == nil }

// Routable reports whether dst is reachable from src.
func (p *Plan) Routable(src, dst int) bool {
	if src == dst {
		return true
	}
	if p.useHier() {
		bs, bd := p.blocOf[src], p.blocOf[dst]
		if bs == bd {
			_, _, ok := p.cheapestEdge(src, dst, nil)
			return ok
		}
		return p.quotientFor(bs).prevNR[bd] != unreached
	}
	return p.rankTreeFor(src).prev[dst] != unreached
}

// Cost returns the path cost in seconds at the reference payload
// (including any congestion terms the plan was computed with); ok=false
// when unroutable.
func (p *Plan) Cost(src, dst int) (float64, bool) {
	if src == dst {
		return 0, true
	}
	if p.useHier() {
		bs, bd := p.blocOf[src], p.blocOf[dst]
		if bs == bd {
			_, c, ok := p.cheapestEdge(src, dst, nil)
			return c, ok
		}
		t := p.quotientFor(bs)
		if t.prevNR[bd] == unreached {
			return 0, false
		}
		return t.dist[bd], true
	}
	t := p.rankTreeFor(src)
	if t.prev[dst] == unreached {
		return 0, false
	}
	return t.dist[dst], true
}

// Path returns the hops from src to dst, excluding src and including dst;
// nil, false when unroutable. A direct pair returns one hop.
func (p *Plan) Path(src, dst int) ([]Hop, bool) {
	if src == dst {
		return nil, true
	}
	if p.useHier() {
		return p.hierPath(src, dst)
	}
	t := p.rankTreeFor(src)
	if t.prev[dst] == unreached {
		return nil, false
	}
	return pathFrom(t.prev, t.prevNet, src, dst), true
}

// pathFrom reconstructs the src->dst hop list from one Dijkstra result.
func pathFrom(prev []int, prevNet []string, src, dst int) []Hop {
	var rev []Hop
	for v := dst; v != src; v = prev[v] {
		rev = append(rev, Hop{Rank: v, Net: prevNet[v]})
	}
	hops := make([]Hop, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	return hops
}

// Paths returns up to MaxPaths edge-disjoint paths from src to dst, most
// preferred first: paths[0] is the primary shortest-cost path, each
// alternate is the shortest path over the graph with every (pair, network)
// edge of the earlier paths removed. nil, false when unroutable; nil, true
// for src == dst. With MaxPaths == 1 it is Path in a slice.
func (p *Plan) Paths(src, dst int) ([][]Hop, bool) {
	if src == dst {
		return nil, true
	}
	primary, ok := p.Path(src, dst)
	if !ok {
		return nil, false
	}
	key := [2]int{src, dst}
	if cached, ok := p.alt[key]; ok {
		return cached, true
	}
	paths := [][]Hop{primary}
	if p.maxPaths > 1 {
		banned := make(map[edgeKey]bool)
		for len(paths) < p.maxPaths {
			at := src
			for _, h := range paths[len(paths)-1] {
				banned[keyOf(at, h.Rank, h.Net)] = true
				at = h.Rank
			}
			t := p.dijkstraFrom(src, banned)
			if t.prev[dst] == unreached {
				break // the residual graph disconnects: no further disjoint rail
			}
			paths = append(paths, pathFrom(t.prev, t.prevNet, src, dst))
		}
	}
	p.alt[key] = paths
	return paths, true
}

// Hops returns the path length from src to dst (1 = direct neighbours,
// 0 = self), or -1 when unroutable.
func (p *Plan) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	if p.useHier() {
		n, ok := p.hierHops(src, dst)
		if !ok {
			return -1
		}
		return n
	}
	hops, ok := p.Path(src, dst)
	if !ok {
		return -1
	}
	return len(hops)
}

// NextHop returns the first hop toward dst and the network carrying it;
// ok=false when unroutable or src == dst.
func (p *Plan) NextHop(src, dst int) (hop int, net string, ok bool) {
	hops, routable := p.Path(src, dst)
	if !routable || len(hops) == 0 {
		return -1, "", false
	}
	return hops[0].Rank, hops[0].Net, true
}

// PathCost re-evaluates the path's cost at an arbitrary payload size
// (the planner picked the path at the reference size); ok=false when
// unroutable. Congestion terms are not included: this is the wire cost of
// the chosen path.
func (p *Plan) PathCost(src, dst, nBytes int) (float64, bool) {
	hops, ok := p.Path(src, dst)
	if !ok {
		return 0, false
	}
	return p.PathCostOf(hops, nBytes), true
}

// PathCostOf evaluates the wire cost of an explicit hop list at a payload
// size (used to weight stripe rails and rank alternates).
func (p *Plan) PathCostOf(hops []Hop, nBytes int) float64 {
	total := 0.0
	for _, h := range hops {
		total += HopCost(p.nets[h.Net], nBytes)
	}
	return total
}

// PathBottleneckOf returns the most expensive single hop of a path at a
// payload size — the pacing rate of a pipelined segment train riding it
// (the other hops only contribute pipeline fill). Rail striping weights
// each rail's share by the inverse of this, not of the full path cost.
func (p *Plan) PathBottleneckOf(hops []Hop, nBytes int) float64 {
	worst := 0.0
	for _, h := range hops {
		if c := HopCost(p.nets[h.Net], nBytes); c > worst {
			worst = c
		}
	}
	return worst
}

// PathSegment recommends the relay pipelining segment for the src->dst
// path: the smallest PipelineSegment of the networks along it (the
// bottleneck hop paces the pipeline); 0 when unroutable or direct.
func (p *Plan) PathSegment(src, dst int) int {
	hops, ok := p.Path(src, dst)
	if !ok {
		return 0
	}
	return p.PathSegmentOf(hops)
}

// PathSegmentOf is PathSegment for an explicit hop list; 0 for direct
// (single-hop) paths.
func (p *Plan) PathSegmentOf(hops []Hop) int {
	if len(hops) < 2 {
		return 0
	}
	return p.StripeSegmentOf(hops)
}

// StripeSegmentOf is the stripe segment for a path of a multi-rail set:
// the smallest PipelineSegment along it, even for a direct single-hop
// rail — a direct pair with edge-disjoint alternates stripes its bodies
// just like a relayed one, so its rails need a segment too.
func (p *Plan) StripeSegmentOf(hops []Hop) int {
	seg := 0
	for _, h := range hops {
		params := p.nets[h.Net]
		if s := params.PipelineSegment(); seg == 0 || s < seg {
			seg = s
		}
	}
	return seg
}

// RelayLoad counts, per rank, how many ordered routable pairs relay
// through it (the rank is an interior hop of the pair's path) — the
// static gateway load of the plan.
func (p *Plan) RelayLoad() []int {
	load := make([]int, p.n)
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			if s == d {
				continue
			}
			hops, ok := p.Path(s, d)
			if !ok {
				continue
			}
			for _, h := range hops[:len(hops)-1] {
				load[h.Rank]++
			}
		}
	}
	return load
}
