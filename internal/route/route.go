// Package route is the cost-model routing subsystem between the fabric
// (netsim) and the cluster wiring: it computes full shortest-cost paths
// for every ordered rank pair over the proc/network graph, replacing the
// hop-count BFS the §6 forwarding extension started with.
//
// The edge cost is derived from the calibrated netsim.Params of the
// network carrying the hop: fixed per-hop cost (wire latency, injection
// and extraction overheads, ch_mad device handling) plus size-dependent
// serialization at a reference payload, plus a trunk-contention penalty
// when the network models shared aggregate bandwidth (PR 3's arbiter) —
// a capped backbone hop is charged its trunk occupancy twice, once for
// its own serialization and once for the expected queueing behind a
// competing crossing. Paths therefore prefer one fast-fabric hop over a
// slow bridge, and an uncontended bridge over a contended one, which is
// what gateway-aware leader election needs.
//
// The planner is deterministic: ties break toward the lower rank and the
// lexicographically smaller network name, so every session wires
// identical routes for identical topologies.
package route

import (
	"sort"

	"mpichmad/internal/netsim"
)

// DefaultRefBytes is the reference payload for edge costs: one mid-size
// rendez-vous relay segment, large enough that bandwidth matters and
// small enough that latency still does.
const DefaultRefBytes = 16 << 10

// Graph is the proc-level connectivity the planner works on: proc i is
// attached to the networks named in NetsOf[i], and two procs share an
// edge per network they are both attached to.
type Graph struct {
	N      int
	NetsOf [][]string
	Nets   map[string]netsim.Params
}

// Hop is one step of a routed path: the rank the hop lands on and the
// network carrying it.
type Hop struct {
	Rank int
	Net  string
}

// HopCost is the cost model of one hop over a network, in seconds, for an
// nBytes payload: fixed per-hop costs plus serialization plus the
// trunk-contention penalty described in the package comment.
func HopCost(p netsim.Params, nBytes int) float64 {
	fixed := p.WireLatency + p.SendOverhead + p.RecvOverhead + p.DeviceHandling
	cost := fixed.Seconds() + p.TxTime(nBytes).Seconds()
	if p.NetworkBandwidth > 0 {
		trunk := p.TrunkTime(nBytes).Seconds()
		if wire := p.TxTime(nBytes).Seconds(); trunk > wire {
			cost += trunk - wire // a trunk slower than the pipe bounds the hop
		}
		cost += trunk // expected queueing behind one competing crossing
	}
	return cost
}

// Plan is the computed routing: per-source shortest-cost trees over the
// proc graph, queryable per ordered pair.
type Plan struct {
	n        int
	ref      int
	nets     map[string]netsim.Params
	netNames []string // sorted, for deterministic iteration
	netCost  map[string]float64
	attached []map[string]bool
	prev     [][]int    // prev[src][v]: predecessor of v on the path from src (-1 at src, -2 unreachable)
	prevNet  [][]string // prevNet[src][v]: network carrying prev[src][v] -> v
	dist     [][]float64
}

// Compute plans all-pairs shortest-cost paths at the given reference
// payload size (DefaultRefBytes when refBytes <= 0). Runs Dijkstra from
// every source; topologies are small (ranks, not hosts), so the dense
// O(N^3) is fine.
func Compute(g Graph, refBytes int) *Plan {
	if refBytes <= 0 {
		refBytes = DefaultRefBytes
	}
	p := &Plan{
		n:       g.N,
		ref:     refBytes,
		nets:    g.Nets,
		prev:    make([][]int, g.N),
		prevNet: make([][]string, g.N),
		dist:    make([][]float64, g.N),
	}

	// Per-network cost at the reference size, and the cheapest edge between
	// every pair (cost, then name, for determinism).
	netCost := make(map[string]float64, len(g.Nets))
	names := make([]string, 0, len(g.Nets))
	for name, params := range g.Nets {
		netCost[name] = HopCost(params, refBytes)
		names = append(names, name)
	}
	sort.Strings(names)
	attached := make([]map[string]bool, g.N)
	for i := 0; i < g.N; i++ {
		attached[i] = make(map[string]bool, len(g.NetsOf[i]))
		for _, nm := range g.NetsOf[i] {
			attached[i][nm] = true
		}
	}
	p.netNames, p.netCost, p.attached = names, netCost, attached
	edge := p.DirectEdge

	const unreached = -2
	for src := 0; src < g.N; src++ {
		dist := make([]float64, g.N)
		prev := make([]int, g.N)
		prevNet := make([]string, g.N)
		done := make([]bool, g.N)
		for i := range prev {
			prev[i] = unreached
			dist[i] = -1
		}
		dist[src], prev[src] = 0, -1
		for {
			cur := -1
			for v := 0; v < g.N; v++ {
				if done[v] || prev[v] == unreached {
					continue
				}
				if cur == -1 || dist[v] < dist[cur] {
					cur = v // ties keep the lower rank: v ascends
				}
			}
			if cur == -1 {
				break
			}
			done[cur] = true
			for v := 0; v < g.N; v++ {
				if v == cur || done[v] {
					continue
				}
				nm, c, ok := edge(cur, v)
				if !ok {
					continue
				}
				nd := dist[cur] + c
				if prev[v] == unreached || nd < dist[v] ||
					(nd == dist[v] && cur < prev[v]) {
					dist[v], prev[v], prevNet[v] = nd, cur, nm
				}
			}
		}
		p.dist[src], p.prev[src], p.prevNet[src] = dist, prev, prevNet
	}
	return p
}

// DirectEdge returns the cheapest network both procs are attached to and
// its hop cost at the reference payload; ok=false when they share none.
// Single-hop fallback for sessions without gateway forwarding, where the
// planner's multi-hop preference cannot be honored.
func (p *Plan) DirectEdge(a, b int) (net string, cost float64, ok bool) {
	for _, nm := range p.netNames {
		if !p.attached[a][nm] || !p.attached[b][nm] {
			continue
		}
		if c := p.netCost[nm]; !ok || c < cost {
			net, cost, ok = nm, c, true
		}
	}
	return net, cost, ok
}

// N returns the number of procs planned over.
func (p *Plan) N() int { return p.n }

// RefBytes returns the reference payload the edge costs were taken at.
func (p *Plan) RefBytes() int { return p.ref }

// Routable reports whether dst is reachable from src.
func (p *Plan) Routable(src, dst int) bool {
	return src == dst || p.prev[src][dst] != -2
}

// Cost returns the path cost in seconds at the reference payload;
// ok=false when unroutable.
func (p *Plan) Cost(src, dst int) (float64, bool) {
	if !p.Routable(src, dst) {
		return 0, false
	}
	return p.dist[src][dst], true
}

// Path returns the hops from src to dst, excluding src and including dst;
// nil, false when unroutable. A direct pair returns one hop.
func (p *Plan) Path(src, dst int) ([]Hop, bool) {
	if src == dst {
		return nil, true
	}
	if !p.Routable(src, dst) {
		return nil, false
	}
	var rev []Hop
	for v := dst; v != src; v = p.prev[src][v] {
		rev = append(rev, Hop{Rank: v, Net: p.prevNet[src][v]})
	}
	hops := make([]Hop, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	return hops, true
}

// Hops returns the path length from src to dst (1 = direct neighbours,
// 0 = self), or -1 when unroutable.
func (p *Plan) Hops(src, dst int) int {
	hops, ok := p.Path(src, dst)
	if !ok {
		return -1
	}
	return len(hops)
}

// NextHop returns the first hop toward dst and the network carrying it;
// ok=false when unroutable or src == dst.
func (p *Plan) NextHop(src, dst int) (hop int, net string, ok bool) {
	hops, routable := p.Path(src, dst)
	if !routable || len(hops) == 0 {
		return -1, "", false
	}
	return hops[0].Rank, hops[0].Net, true
}

// PathCost re-evaluates the path's cost at an arbitrary payload size
// (the planner picked the path at the reference size); ok=false when
// unroutable.
func (p *Plan) PathCost(src, dst, nBytes int) (float64, bool) {
	hops, ok := p.Path(src, dst)
	if !ok {
		return 0, false
	}
	total := 0.0
	for _, h := range hops {
		total += HopCost(p.nets[h.Net], nBytes)
	}
	return total, true
}

// PathSegment recommends the relay pipelining segment for the src->dst
// path: the smallest PipelineSegment of the networks along it (the
// bottleneck hop paces the pipeline); 0 when unroutable or direct.
func (p *Plan) PathSegment(src, dst int) int {
	hops, ok := p.Path(src, dst)
	if !ok || len(hops) < 2 {
		return 0
	}
	seg := 0
	for _, h := range hops {
		params := p.nets[h.Net]
		if s := params.PipelineSegment(); seg == 0 || s < seg {
			seg = s
		}
	}
	return seg
}

// RelayLoad counts, per rank, how many ordered routable pairs relay
// through it (the rank is an interior hop of the pair's path) — the
// static gateway load of the plan.
func (p *Plan) RelayLoad() []int {
	load := make([]int, p.n)
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			if s == d {
				continue
			}
			hops, ok := p.Path(s, d)
			if !ok {
				continue
			}
			for _, h := range hops[:len(hops)-1] {
				load[h.Rank]++
			}
		}
	}
	return load
}
