// Package route is the cost-model routing subsystem between the fabric
// (netsim) and the cluster wiring: it computes full shortest-cost paths
// for every ordered rank pair over the proc/network graph, replacing the
// hop-count BFS the §6 forwarding extension started with.
//
// The edge cost is derived from the calibrated netsim.Params of the
// network carrying the hop: fixed per-hop cost (wire latency, injection
// and extraction overheads, ch_mad device handling) plus size-dependent
// serialization at a reference payload, plus the device-class transfer
// mode term (eager intermediary copy at or below the edge's native switch
// point, rendez-vous handshake above it — see HopCost and class.go),
// plus a trunk-contention penalty
// when the network models shared aggregate bandwidth (PR 3's arbiter) —
// a capped backbone hop is charged its trunk occupancy twice, once for
// its own serialization and once for the expected queueing behind a
// competing crossing. Paths therefore prefer one fast-fabric hop over a
// slow bridge, and an uncontended bridge over a contended one, which is
// what gateway-aware leader election needs.
//
// Since the multi-path refactor the planner is no longer single-path or
// open-loop:
//
//   - Options.MaxPaths > 1 computes up to K edge-disjoint paths per
//     ordered pair (Paths): path 0 is the shortest-cost primary, each
//     alternate is the shortest path avoiding every (pair, network) edge
//     the earlier paths used. On a bridged triangle the third side
//     becomes a real second rail the device can stripe over.
//   - Options.Congestion feeds observed relay load back into the edge
//     costs: every hop that would relay *through* a congested rank is
//     charged that rank's congestion term, so a re-plan at a collective
//     boundary steers traffic around a hot gateway instead of queueing
//     behind it.
//
// The planner is deterministic: ties break toward the lower rank and the
// lexicographically smaller network name, so every session wires
// identical routes for identical topologies (and identical congestion
// observations).
package route

import (
	"sort"

	"mpichmad/internal/netsim"
)

// DefaultRefBytes is the reference payload for edge costs: one mid-size
// rendez-vous relay segment, large enough that bandwidth matters and
// small enough that latency still does.
const DefaultRefBytes = 16 << 10

// Graph is the proc-level connectivity the planner works on: proc i is
// attached to the networks named in NetsOf[i], and two procs share an
// edge per network they are both attached to.
type Graph struct {
	N      int
	NetsOf [][]string
	Nets   map[string]netsim.Params
}

// Options parameterize a plan beyond the graph itself.
type Options struct {
	// RefBytes is the reference payload for edge costs
	// (DefaultRefBytes when <= 0).
	RefBytes int
	// MaxPaths is the number of edge-disjoint paths to expose per ordered
	// pair (Paths); values < 1 mean 1 (the classic single-path planner).
	MaxPaths int
	// Congestion, when non-nil, is the observed relay congestion of each
	// rank in seconds (typically relay queue depth x one reference-payload
	// hop time, supplied by the cluster session from Session.RelayStats).
	// Every hop *leaving* a congested rank that is not the path's source —
	// i.e. every hop that would relay through it — is charged the term, so
	// hot gateways price themselves out of new paths.
	Congestion []float64
}

// Hop is one step of a routed path: the rank the hop lands on and the
// network carrying it.
type Hop struct {
	Rank int
	Net  string
}

// HopCost is the cost model of one hop over a network, in seconds, for an
// nBytes payload: fixed per-hop costs plus serialization plus the
// trunk-contention penalty described in the package comment, plus the
// transfer-mode term of the edge's own device class — the cost curve is
// device-aware, not a uniform reference. A payload at or below the edge's
// native switch point rides the eager path and pays the class's
// intermediary copy (CopyTime through the driver's buffers); a larger
// payload goes rendez-vous and pays the REQUEST/SENDOK handshake (two
// extra fixed-cost wire crossings) instead. Two edges with identical
// latency and bandwidth but different switch points or copy rates
// therefore price the same payload differently, which is what lets the
// planner tell a SAN-class edge from a TCP-class one.
func HopCost(p netsim.Params, nBytes int) float64 {
	fixed := p.WireLatency + p.SendOverhead + p.RecvOverhead + p.DeviceHandling
	cost := fixed.Seconds() + p.TxTime(nBytes).Seconds()
	if p.SwitchPoint > 0 && nBytes > p.SwitchPoint {
		cost += 2 * fixed.Seconds() // rendez-vous: REQUEST out, SENDOK back
	} else {
		cost += p.CopyTime(nBytes).Seconds() // eager: intermediary buffer copy
	}
	if p.NetworkBandwidth > 0 {
		trunk := p.TrunkTime(nBytes).Seconds()
		if wire := p.TxTime(nBytes).Seconds(); trunk > wire {
			cost += trunk - wire // a trunk slower than the pipe bounds the hop
		}
		cost += trunk // expected queueing behind one competing crossing
	}
	return cost
}

// edgeKey identifies an undirected pair edge on one network, for the
// edge-disjoint alternate search.
type edgeKey struct {
	lo, hi int
	net    string
}

func keyOf(a, b int, net string) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{lo: a, hi: b, net: net}
}

// Plan is the computed routing: per-source shortest-cost trees over the
// proc graph, queryable per ordered pair, plus up to MaxPaths
// edge-disjoint alternates per pair.
type Plan struct {
	n          int
	ref        int
	maxPaths   int
	congestion []float64
	nets       map[string]netsim.Params
	netNames   []string // sorted, for deterministic iteration
	netCost    map[string]float64
	attached   []map[string]bool
	prev       [][]int    // prev[src][v]: predecessor of v on the path from src (-1 at src, -2 unreachable)
	prevNet    [][]string // prevNet[src][v]: network carrying prev[src][v] -> v
	dist       [][]float64

	alt map[[2]int][][]Hop // lazily computed disjoint path sets per pair
}

// Compute plans all-pairs shortest-cost paths at the given reference
// payload size (DefaultRefBytes when refBytes <= 0) with the classic
// single-path, congestion-free options.
func Compute(g Graph, refBytes int) *Plan {
	return ComputeOpts(g, Options{RefBytes: refBytes})
}

// ComputeOpts plans all-pairs shortest-cost paths under the given options.
// Runs Dijkstra from every source; topologies are small (ranks, not
// hosts), so the dense O(N^3) is fine.
func ComputeOpts(g Graph, opts Options) *Plan {
	if opts.RefBytes <= 0 {
		opts.RefBytes = DefaultRefBytes
	}
	if opts.MaxPaths < 1 {
		opts.MaxPaths = 1
	}
	p := &Plan{
		n:        g.N,
		ref:      opts.RefBytes,
		maxPaths: opts.MaxPaths,
		nets:     g.Nets,
		prev:     make([][]int, g.N),
		prevNet:  make([][]string, g.N),
		dist:     make([][]float64, g.N),
		alt:      make(map[[2]int][][]Hop),
	}
	if opts.Congestion != nil {
		p.congestion = make([]float64, g.N)
		copy(p.congestion, opts.Congestion)
	}

	// Per-network cost at the reference size, and the cheapest edge between
	// every pair (cost, then name, for determinism).
	netCost := make(map[string]float64, len(g.Nets))
	names := make([]string, 0, len(g.Nets))
	for name, params := range g.Nets {
		netCost[name] = HopCost(params, opts.RefBytes)
		names = append(names, name)
	}
	sort.Strings(names)
	attached := make([]map[string]bool, g.N)
	for i := 0; i < g.N; i++ {
		attached[i] = make(map[string]bool, len(g.NetsOf[i]))
		for _, nm := range g.NetsOf[i] {
			attached[i][nm] = true
		}
	}
	p.netNames, p.netCost, p.attached = names, netCost, attached

	for src := 0; src < g.N; src++ {
		p.dist[src], p.prev[src], p.prevNet[src] = p.shortestFrom(src, nil)
	}
	return p
}

const unreached = -2

// shortestFrom runs one deterministic Dijkstra from src, skipping banned
// (pair, network) edges. Every hop leaving a non-source rank additionally
// pays that rank's congestion term — the relay feedback.
func (p *Plan) shortestFrom(src int, banned map[edgeKey]bool) (dist []float64, prev []int, prevNet []string) {
	dist = make([]float64, p.n)
	prev = make([]int, p.n)
	prevNet = make([]string, p.n)
	done := make([]bool, p.n)
	for i := range prev {
		prev[i] = unreached
		dist[i] = -1
	}
	dist[src], prev[src] = 0, -1
	for {
		cur := -1
		for v := 0; v < p.n; v++ {
			if done[v] || prev[v] == unreached {
				continue
			}
			if cur == -1 || dist[v] < dist[cur] {
				cur = v // ties keep the lower rank: v ascends
			}
		}
		if cur == -1 {
			break
		}
		done[cur] = true
		relay := 0.0
		if cur != src && p.congestion != nil {
			relay = p.congestion[cur] // cur would store-and-forward this hop
		}
		for v := 0; v < p.n; v++ {
			if v == cur || done[v] {
				continue
			}
			nm, c, ok := p.cheapestEdge(cur, v, banned)
			if !ok {
				continue
			}
			nd := dist[cur] + c + relay
			if prev[v] == unreached || nd < dist[v] ||
				(nd == dist[v] && cur < prev[v]) {
				dist[v], prev[v], prevNet[v] = nd, cur, nm
			}
		}
	}
	return dist, prev, prevNet
}

// cheapestEdge returns the cheapest non-banned network both procs are
// attached to and its hop cost at the reference payload.
func (p *Plan) cheapestEdge(a, b int, banned map[edgeKey]bool) (net string, cost float64, ok bool) {
	for _, nm := range p.netNames {
		if !p.attached[a][nm] || !p.attached[b][nm] {
			continue
		}
		if banned != nil && banned[keyOf(a, b, nm)] {
			continue
		}
		if c := p.netCost[nm]; !ok || c < cost {
			net, cost, ok = nm, c, true
		}
	}
	return net, cost, ok
}

// DirectEdge returns the cheapest network both procs are attached to and
// its hop cost at the reference payload; ok=false when they share none.
// Single-hop fallback for sessions without gateway forwarding, where the
// planner's multi-hop preference cannot be honored.
func (p *Plan) DirectEdge(a, b int) (net string, cost float64, ok bool) {
	return p.cheapestEdge(a, b, nil)
}

// N returns the number of procs planned over.
func (p *Plan) N() int { return p.n }

// RefBytes returns the reference payload the edge costs were taken at.
func (p *Plan) RefBytes() int { return p.ref }

// MaxPaths returns the number of edge-disjoint paths the plan exposes per
// pair (1 for the classic single-path planner).
func (p *Plan) MaxPaths() int { return p.maxPaths }

// CongestionOf returns the congestion term the plan was computed with for
// a rank (0 when none was supplied).
func (p *Plan) CongestionOf(rank int) float64 {
	if p.congestion == nil {
		return 0
	}
	return p.congestion[rank]
}

// Routable reports whether dst is reachable from src.
func (p *Plan) Routable(src, dst int) bool {
	return src == dst || p.prev[src][dst] != -2
}

// Cost returns the path cost in seconds at the reference payload
// (including any congestion terms the plan was computed with); ok=false
// when unroutable.
func (p *Plan) Cost(src, dst int) (float64, bool) {
	if !p.Routable(src, dst) {
		return 0, false
	}
	return p.dist[src][dst], true
}

// Path returns the hops from src to dst, excluding src and including dst;
// nil, false when unroutable. A direct pair returns one hop.
func (p *Plan) Path(src, dst int) ([]Hop, bool) {
	if src == dst {
		return nil, true
	}
	if !p.Routable(src, dst) {
		return nil, false
	}
	return p.pathFrom(p.prev[src], p.prevNet[src], src, dst), true
}

// pathFrom reconstructs the src->dst hop list from one Dijkstra result.
func (p *Plan) pathFrom(prev []int, prevNet []string, src, dst int) []Hop {
	var rev []Hop
	for v := dst; v != src; v = prev[v] {
		rev = append(rev, Hop{Rank: v, Net: prevNet[v]})
	}
	hops := make([]Hop, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	return hops
}

// Paths returns up to MaxPaths edge-disjoint paths from src to dst, most
// preferred first: paths[0] is the primary shortest-cost path, each
// alternate is the shortest path over the graph with every (pair, network)
// edge of the earlier paths removed. nil, false when unroutable; nil, true
// for src == dst. With MaxPaths == 1 it is Path in a slice.
func (p *Plan) Paths(src, dst int) ([][]Hop, bool) {
	if src == dst {
		return nil, true
	}
	if !p.Routable(src, dst) {
		return nil, false
	}
	key := [2]int{src, dst}
	if cached, ok := p.alt[key]; ok {
		return cached, true
	}
	primary := p.pathFrom(p.prev[src], p.prevNet[src], src, dst)
	paths := [][]Hop{primary}
	banned := make(map[edgeKey]bool)
	for len(paths) < p.maxPaths {
		at := src
		for _, h := range paths[len(paths)-1] {
			banned[keyOf(at, h.Rank, h.Net)] = true
			at = h.Rank
		}
		_, prev, prevNet := p.shortestFrom(src, banned)
		if prev[dst] == unreached {
			break // the residual graph disconnects: no further disjoint rail
		}
		paths = append(paths, p.pathFrom(prev, prevNet, src, dst))
	}
	p.alt[key] = paths
	return paths, true
}

// Hops returns the path length from src to dst (1 = direct neighbours,
// 0 = self), or -1 when unroutable.
func (p *Plan) Hops(src, dst int) int {
	hops, ok := p.Path(src, dst)
	if !ok {
		return -1
	}
	return len(hops)
}

// NextHop returns the first hop toward dst and the network carrying it;
// ok=false when unroutable or src == dst.
func (p *Plan) NextHop(src, dst int) (hop int, net string, ok bool) {
	hops, routable := p.Path(src, dst)
	if !routable || len(hops) == 0 {
		return -1, "", false
	}
	return hops[0].Rank, hops[0].Net, true
}

// PathCost re-evaluates the path's cost at an arbitrary payload size
// (the planner picked the path at the reference size); ok=false when
// unroutable. Congestion terms are not included: this is the wire cost of
// the chosen path.
func (p *Plan) PathCost(src, dst, nBytes int) (float64, bool) {
	hops, ok := p.Path(src, dst)
	if !ok {
		return 0, false
	}
	return p.PathCostOf(hops, nBytes), true
}

// PathCostOf evaluates the wire cost of an explicit hop list at a payload
// size (used to weight stripe rails and rank alternates).
func (p *Plan) PathCostOf(hops []Hop, nBytes int) float64 {
	total := 0.0
	for _, h := range hops {
		total += HopCost(p.nets[h.Net], nBytes)
	}
	return total
}

// PathBottleneckOf returns the most expensive single hop of a path at a
// payload size — the pacing rate of a pipelined segment train riding it
// (the other hops only contribute pipeline fill). Rail striping weights
// each rail's share by the inverse of this, not of the full path cost.
func (p *Plan) PathBottleneckOf(hops []Hop, nBytes int) float64 {
	worst := 0.0
	for _, h := range hops {
		if c := HopCost(p.nets[h.Net], nBytes); c > worst {
			worst = c
		}
	}
	return worst
}

// PathSegment recommends the relay pipelining segment for the src->dst
// path: the smallest PipelineSegment of the networks along it (the
// bottleneck hop paces the pipeline); 0 when unroutable or direct.
func (p *Plan) PathSegment(src, dst int) int {
	hops, ok := p.Path(src, dst)
	if !ok {
		return 0
	}
	return p.PathSegmentOf(hops)
}

// PathSegmentOf is PathSegment for an explicit hop list; 0 for direct
// (single-hop) paths.
func (p *Plan) PathSegmentOf(hops []Hop) int {
	if len(hops) < 2 {
		return 0
	}
	seg := 0
	for _, h := range hops {
		params := p.nets[h.Net]
		if s := params.PipelineSegment(); seg == 0 || s < seg {
			seg = s
		}
	}
	return seg
}

// RelayLoad counts, per rank, how many ordered routable pairs relay
// through it (the rank is an interior hop of the pair's path) — the
// static gateway load of the plan.
func (p *Plan) RelayLoad() []int {
	load := make([]int, p.n)
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			if s == d {
				continue
			}
			hops, ok := p.Path(s, d)
			if !ok {
				continue
			}
			for _, h := range hops[:len(hops)-1] {
				load[h.Rank]++
			}
		}
	}
	return load
}
