package route

// rankTree is one source rank's shortest-cost tree over the full rank
// graph: the fallback resolver for congested plans (per-rank congestion
// terms break bloc symmetry) and the engine of the banned-edge searches
// behind edge-disjoint alternates.
type rankTree struct {
	dist    []float64
	prev    []int
	prevNet []string
}

// rankTreeFor returns the (lazily built, memoized) tree rooted at src.
func (p *Plan) rankTreeFor(src int) *rankTree {
	if t, ok := p.rts[src]; ok {
		return t
	}
	t := p.dijkstraFrom(src, nil)
	p.rts[src] = t
	return t
}

// dijkstraFrom runs one heap-based Dijkstra from src over the real
// adjacency (per-network member lists), skipping banned (pair, network)
// edges. Every hop leaving a non-source rank additionally pays that
// rank's congestion term — the relay feedback.
//
// The result is bit-identical to the dense linear-scan reference
// (shortestFrom in dense.go): the heap pops in the same (dist, rank)
// order the dense selection scan settles nodes in, each settled node
// relaxes the same neighbors under the same overwrite rule, and relaxing
// per shared network in sorted-name order reproduces the
// cheapest-then-first-name edge choice — a cheaper later name overwrites
// (nd < dist), an equal-cost later name does not (cur == prev blocks the
// tie clause).
func (p *Plan) dijkstraFrom(src int, banned map[edgeKey]bool) *rankTree {
	t := &rankTree{
		dist:    make([]float64, p.n),
		prev:    make([]int, p.n),
		prevNet: make([]string, p.n),
	}
	done := make([]bool, p.n)
	for i := range t.prev {
		t.prev[i] = unreached
		t.dist[i] = -1
	}
	t.dist[src], t.prev[src] = 0, -1
	var h distHeap
	h.push(heapItem{dist: 0, tie: src, node: src})
	for !h.empty() {
		it := h.pop()
		cur := it.node
		if done[cur] || it.dist > t.dist[cur] {
			continue
		}
		done[cur] = true
		relay := 0.0
		if cur != src && p.congestion != nil {
			relay = p.congestion[cur] // cur would store-and-forward this hop
		}
		for _, ni := range p.blocSigIDs[p.blocOf[cur]] {
			c := p.netCostByID[ni]
			nm := p.netNames[ni]
			for _, v := range p.netMembersByID[ni] {
				if v == cur || done[v] {
					continue
				}
				if banned != nil && banned[keyOf(cur, v, nm)] {
					continue
				}
				nd := t.dist[cur] + c + relay
				if t.prev[v] == unreached || nd < t.dist[v] ||
					(nd == t.dist[v] && cur < t.prev[v]) {
					if t.prev[v] == unreached || nd < t.dist[v] {
						h.push(heapItem{dist: nd, tie: v, node: v})
					}
					t.dist[v], t.prev[v], t.prevNet[v] = nd, cur, nm
				}
			}
		}
	}
	return t
}
