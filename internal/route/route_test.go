package route

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mpichmad/internal/netsim"
)

// randomGraph builds a random heterogeneous proc/network graph with n
// procs and up to four networks of mixed protocols, some trunk-capped.
func randomGraph(rng *rand.Rand, n int) Graph {
	presets := []func() netsim.Params{
		netsim.FastEthernetTCP, netsim.SCISISCI, netsim.MyrinetBIP,
	}
	nNets := rng.Intn(4) + 1
	g := Graph{N: n, NetsOf: make([][]string, n), Nets: make(map[string]netsim.Params)}
	names := []string{"net0", "net1", "net2", "net3"}[:nNets]
	for i, name := range names {
		p := presets[(rng.Intn(len(presets)))]()
		if rng.Intn(3) == 0 {
			p.NetworkBandwidth = p.Bandwidth // capped trunk
		}
		g.Nets[name] = p
		// Attach a random non-empty subset of procs.
		attachedAny := false
		for r := 0; r < n; r++ {
			if rng.Intn(2) == 0 {
				g.NetsOf[r] = append(g.NetsOf[r], name)
				attachedAny = true
			}
		}
		if !attachedAny {
			g.NetsOf[rng.Intn(n)] = append(g.NetsOf[rng.Intn(n)], name)
		}
		_ = i
	}
	return g
}

// bruteCost is an exhaustive shortest-cost search (DFS over simple paths)
// on the same edge model the planner uses.
func bruteCost(g Graph, refBytes, src, dst int) (float64, bool) {
	attached := func(r int, net string) bool {
		for _, nm := range g.NetsOf[r] {
			if nm == net {
				return true
			}
		}
		return false
	}
	edge := func(a, b int) (float64, bool) {
		best, found := 0.0, false
		for name, params := range g.Nets {
			if !attached(a, name) || !attached(b, name) {
				continue
			}
			if c := HopCost(params, refBytes); !found || c < best {
				best, found = c, true
			}
		}
		return best, found
	}
	bestTotal, found := 0.0, false
	visited := make([]bool, g.N)
	var dfs func(cur int, cost float64)
	dfs = func(cur int, cost float64) {
		if cur == dst {
			if !found || cost < bestTotal {
				bestTotal, found = cost, true
			}
			return
		}
		visited[cur] = true
		for next := 0; next < g.N; next++ {
			if visited[next] {
				continue
			}
			if c, ok := edge(cur, next); ok {
				dfs(next, cost+c)
			}
		}
		visited[cur] = false
	}
	dfs(src, 0)
	return bestTotal, found
}

// TestPlanMatchesBruteForce: on random <=8-proc heterogeneous graphs, the
// planner's pair costs equal the exhaustive shortest-cost search, and
// routability agrees. Also checks path self-consistency: summing HopCost
// over the returned hops reproduces the reported cost.
func TestPlanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := rng.Intn(7) + 2
		g := randomGraph(rng, n)
		plan := Compute(g, DefaultRefBytes)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				want, reachable := bruteCost(g, DefaultRefBytes, s, d)
				if plan.Routable(s, d) != reachable {
					t.Fatalf("iter %d: routable(%d,%d) = %v, brute force says %v",
						iter, s, d, plan.Routable(s, d), reachable)
				}
				if !reachable {
					continue
				}
				got, _ := plan.Cost(s, d)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("iter %d: cost(%d,%d) = %g, brute force %g", iter, s, d, got, want)
				}
				viaPath, _ := plan.PathCost(s, d, DefaultRefBytes)
				if math.Abs(viaPath-got) > 1e-12 {
					t.Fatalf("iter %d: PathCost(%d,%d) = %g, Cost = %g", iter, s, d, viaPath, got)
				}
				hops, _ := plan.Path(s, d)
				if hops[len(hops)-1].Rank != d {
					t.Fatalf("iter %d: path(%d,%d) ends at %d", iter, s, d, hops[len(hops)-1].Rank)
				}
				if got := plan.Hops(s, d); got != len(hops) {
					t.Fatalf("iter %d: Hops(%d,%d) = %d, path has %d", iter, s, d, got, len(hops))
				}
			}
		}
	}
}

// TestPlanDeterministic: planning the same graph twice yields identical
// next hops, paths and costs.
func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		g := randomGraph(rng, 6)
		a, b := Compute(g, DefaultRefBytes), Compute(g, DefaultRefBytes)
		if !reflect.DeepEqual(a.prev, b.prev) || !reflect.DeepEqual(a.prevNet, b.prevNet) {
			t.Fatalf("iter %d: plans differ", iter)
		}
	}
}

// TestPathSegmentBottleneck: the relay segment of a multi-hop path is the
// smallest PipelineSegment along it, and direct pairs get none.
func TestPathSegmentBottleneck(t *testing.T) {
	sci, tcp, bip := netsim.SCISISCI(), netsim.FastEthernetTCP(), netsim.MyrinetBIP()
	g := Graph{
		N: 4,
		NetsOf: [][]string{
			{"sci"}, {"sci", "tcp"}, {"tcp", "myri"}, {"myri"},
		},
		Nets: map[string]netsim.Params{"sci": sci, "tcp": tcp, "myri": bip},
	}
	plan := Compute(g, DefaultRefBytes)
	if got := plan.Hops(0, 3); got != 3 {
		t.Fatalf("hops(0,3) = %d, want 3", got)
	}
	want := sci.PipelineSegment()
	if s := tcp.PipelineSegment(); s < want {
		want = s
	}
	if s := bip.PipelineSegment(); s < want {
		want = s
	}
	if got := plan.PathSegment(0, 3); got != want {
		t.Fatalf("PathSegment(0,3) = %d, want bottleneck %d", got, want)
	}
	if got := plan.PathSegment(0, 1); got != 0 {
		t.Fatalf("direct pair segment = %d, want 0", got)
	}
	// Gateways 1 and 2 each relay for the chain's separated pairs.
	load := plan.RelayLoad()
	if load[1] == 0 || load[2] == 0 || load[0] != 0 || load[3] != 0 {
		t.Fatalf("relay load = %v", load)
	}
}
