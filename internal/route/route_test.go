package route

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mpichmad/internal/netsim"
)

// randomGraph builds a random heterogeneous proc/network graph with n
// procs and up to four networks of mixed protocols, some trunk-capped.
func randomGraph(rng *rand.Rand, n int) Graph {
	presets := []func() netsim.Params{
		netsim.FastEthernetTCP, netsim.SCISISCI, netsim.MyrinetBIP,
	}
	nNets := rng.Intn(4) + 1
	g := Graph{N: n, NetsOf: make([][]string, n), Nets: make(map[string]netsim.Params)}
	names := []string{"net0", "net1", "net2", "net3"}[:nNets]
	for i, name := range names {
		p := presets[(rng.Intn(len(presets)))]()
		if rng.Intn(3) == 0 {
			p.NetworkBandwidth = p.Bandwidth // capped trunk
		}
		g.Nets[name] = p
		// Attach a random non-empty subset of procs.
		attachedAny := false
		for r := 0; r < n; r++ {
			if rng.Intn(2) == 0 {
				g.NetsOf[r] = append(g.NetsOf[r], name)
				attachedAny = true
			}
		}
		if !attachedAny {
			g.NetsOf[rng.Intn(n)] = append(g.NetsOf[rng.Intn(n)], name)
		}
		_ = i
	}
	return g
}

// bruteCost is an exhaustive shortest-cost search (DFS over simple paths)
// on the same edge model the planner uses.
func bruteCost(g Graph, refBytes, src, dst int) (float64, bool) {
	attached := func(r int, net string) bool {
		for _, nm := range g.NetsOf[r] {
			if nm == net {
				return true
			}
		}
		return false
	}
	edge := func(a, b int) (float64, bool) {
		best, found := 0.0, false
		for name, params := range g.Nets {
			if !attached(a, name) || !attached(b, name) {
				continue
			}
			if c := HopCost(params, refBytes); !found || c < best {
				best, found = c, true
			}
		}
		return best, found
	}
	bestTotal, found := 0.0, false
	visited := make([]bool, g.N)
	var dfs func(cur int, cost float64)
	dfs = func(cur int, cost float64) {
		if cur == dst {
			if !found || cost < bestTotal {
				bestTotal, found = cost, true
			}
			return
		}
		visited[cur] = true
		for next := 0; next < g.N; next++ {
			if visited[next] {
				continue
			}
			if c, ok := edge(cur, next); ok {
				dfs(next, cost+c)
			}
		}
		visited[cur] = false
	}
	dfs(src, 0)
	return bestTotal, found
}

// TestPlanMatchesBruteForce: on random <=8-proc heterogeneous graphs, the
// planner's pair costs equal the exhaustive shortest-cost search, and
// routability agrees. Also checks path self-consistency: summing HopCost
// over the returned hops reproduces the reported cost.
func TestPlanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := rng.Intn(7) + 2
		g := randomGraph(rng, n)
		plan := Compute(g, DefaultRefBytes)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				want, reachable := bruteCost(g, DefaultRefBytes, s, d)
				if plan.Routable(s, d) != reachable {
					t.Fatalf("iter %d: routable(%d,%d) = %v, brute force says %v",
						iter, s, d, plan.Routable(s, d), reachable)
				}
				if !reachable {
					continue
				}
				got, _ := plan.Cost(s, d)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("iter %d: cost(%d,%d) = %g, brute force %g", iter, s, d, got, want)
				}
				viaPath, _ := plan.PathCost(s, d, DefaultRefBytes)
				if math.Abs(viaPath-got) > 1e-12 {
					t.Fatalf("iter %d: PathCost(%d,%d) = %g, Cost = %g", iter, s, d, viaPath, got)
				}
				hops, _ := plan.Path(s, d)
				if hops[len(hops)-1].Rank != d {
					t.Fatalf("iter %d: path(%d,%d) ends at %d", iter, s, d, hops[len(hops)-1].Rank)
				}
				if got := plan.Hops(s, d); got != len(hops) {
					t.Fatalf("iter %d: Hops(%d,%d) = %d, path has %d", iter, s, d, got, len(hops))
				}
			}
		}
	}
}

// TestPlanDeterministic: planning the same graph twice yields identical
// next hops, paths and costs.
func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		g := randomGraph(rng, 6)
		a, b := Compute(g, DefaultRefBytes), Compute(g, DefaultRefBytes)
		for s := 0; s < g.N; s++ {
			for d := 0; d < g.N; d++ {
				pa, oka := a.Path(s, d)
				pb, okb := b.Path(s, d)
				if oka != okb || !reflect.DeepEqual(pa, pb) {
					t.Fatalf("iter %d: Path(%d,%d) differs between identical plans", iter, s, d)
				}
				ca, _ := a.Cost(s, d)
				cb, _ := b.Cost(s, d)
				if ca != cb {
					t.Fatalf("iter %d: Cost(%d,%d) differs between identical plans", iter, s, d)
				}
			}
		}
	}
}

// randomClusterGraph builds a clusters-of-clusters topology like the ones
// the session wires at scale: each cluster on its own fabric preset, a
// random subset of gateway ranks per cluster on one or two (sometimes
// trunk-capped) backbones. Heavy bloc structure — exactly what the
// hierarchical resolver exploits — while gateway choices keep plenty of
// asymmetry.
func randomClusterGraph(rng *rand.Rand, maxRanks int) Graph {
	presets := []func() netsim.Params{
		netsim.FastEthernetTCP, netsim.SCISISCI, netsim.MyrinetBIP,
	}
	g := Graph{Nets: make(map[string]netsim.Params)}
	nBackbones := rng.Intn(2) + 1
	backbones := make([]string, nBackbones)
	for b := range backbones {
		name := "bb" + string(rune('0'+b))
		p := netsim.FastEthernetTCP()
		if rng.Intn(2) == 0 {
			p.NetworkBandwidth = p.Bandwidth // capped trunk
		}
		g.Nets[name] = p
		backbones[b] = name
	}
	nClusters := rng.Intn(6) + 1
	for c := 0; c < nClusters && g.N < maxRanks; c++ {
		fabric := "cl" + string(rune('0'+c))
		g.Nets[fabric] = presets[rng.Intn(len(presets))]()
		size := rng.Intn(16) + 1
		if g.N+size > maxRanks {
			size = maxRanks - g.N
		}
		for m := 0; m < size; m++ {
			nets := []string{fabric}
			for _, bb := range backbones {
				if rng.Intn(4) == 0 { // this member is a gateway
					nets = append(nets, bb)
				}
			}
			g.NetsOf = append(g.NetsOf, nets)
			g.N++
		}
	}
	return g
}

// TestHierarchicalMatchesDense is the eager==lazy equivalence property
// test: on random multi-cluster topologies (and on the unstructured
// random graphs, where almost every rank is its own bloc), the lazy
// hierarchical plan answers Routable/Cost/Path/NextHop/Hops/Paths
// byte-identically to the retained dense all-pairs reference — including
// exact float equality of costs and the deterministic tie-breaks — with
// and without congestion feedback, across MaxPaths settings.
func TestHierarchicalMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		var g Graph
		if iter%3 == 0 {
			g = randomGraph(rng, rng.Intn(15)+2)
		} else {
			g = randomClusterGraph(rng, 64)
		}
		opts := Options{MaxPaths: rng.Intn(3) + 1}
		if iter%4 == 3 {
			opts.Congestion = make([]float64, g.N)
			for r := range opts.Congestion {
				if rng.Intn(3) == 0 {
					opts.Congestion[r] = float64(rng.Intn(10)) * 1e-3
				}
			}
		}
		lazy := ComputeOpts(g, opts)
		dense := computeDense(g, opts)
		for s := 0; s < g.N; s++ {
			for d := 0; d < g.N; d++ {
				if lazy.Routable(s, d) != dense.routable(s, d) {
					t.Fatalf("iter %d: Routable(%d,%d): lazy %v, dense %v",
						iter, s, d, lazy.Routable(s, d), dense.routable(s, d))
				}
				lc, lok := lazy.Cost(s, d)
				dc, dok := dense.cost(s, d)
				if lok != dok || lc != dc {
					t.Fatalf("iter %d: Cost(%d,%d): lazy %v/%v, dense %v/%v",
						iter, s, d, lc, lok, dc, dok)
				}
				lp, lok := lazy.Path(s, d)
				dp, dok := dense.path(s, d)
				if lok != dok || !reflect.DeepEqual(lp, dp) {
					t.Fatalf("iter %d: Path(%d,%d): lazy %v, dense %v", iter, s, d, lp, dp)
				}
				if got, want := lazy.Hops(s, d), -1; dok {
					want = len(dp)
					if s == d {
						want = 0
					}
					if got != want {
						t.Fatalf("iter %d: Hops(%d,%d) = %d, dense path has %d", iter, s, d, got, want)
					}
				} else if got != want {
					t.Fatalf("iter %d: Hops(%d,%d) = %d for unroutable pair", iter, s, d, got)
				}
				if s != d {
					lr, ln, lok := lazy.NextHop(s, d)
					if lok != (dok && len(dp) > 0) {
						t.Fatalf("iter %d: NextHop(%d,%d) ok=%v, dense %v", iter, s, d, lok, dok)
					}
					if lok && (lr != dp[0].Rank || ln != dp[0].Net) {
						t.Fatalf("iter %d: NextHop(%d,%d) = (%d,%s), dense (%d,%s)",
							iter, s, d, lr, ln, dp[0].Rank, dp[0].Net)
					}
				}
				lps, lok := lazy.Paths(s, d)
				dps, dok := dense.paths(s, d)
				if lok != dok || !reflect.DeepEqual(lps, dps) {
					t.Fatalf("iter %d: Paths(%d,%d): lazy %v, dense %v", iter, s, d, lps, dps)
				}
			}
		}
	}
}

// TestBlocInvariants: co-members of a bloc share their signature, and on
// congestion-free plans every member answers external queries identically
// to the bloc representative — the contract bloc-aggregated leader
// election relies on.
func TestBlocInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20; iter++ {
		g := randomClusterGraph(rng, 48)
		plan := Compute(g, DefaultRefBytes)
		for b := 0; b < plan.BlocCount(); b++ {
			members := plan.BlocMembers(b)
			repr := members[0]
			for _, m := range members {
				if plan.BlocOf(m) != b {
					t.Fatalf("iter %d: BlocOf(%d) = %d, want %d", iter, m, plan.BlocOf(m), b)
				}
				for d := 0; d < g.N; d++ {
					if plan.BlocOf(d) == b {
						continue
					}
					mc, mok := plan.Cost(m, d)
					rc, rok := plan.Cost(repr, d)
					if mok != rok || mc != rc {
						t.Fatalf("iter %d: Cost(%d,%d)=%v/%v but Cost(%d,%d)=%v/%v within bloc %d",
							iter, m, d, mc, mok, repr, d, rc, rok, b)
					}
					if plan.Hops(m, d) != plan.Hops(repr, d) {
						t.Fatalf("iter %d: Hops(%d,%d)=%d but Hops(%d,%d)=%d within bloc %d",
							iter, m, d, plan.Hops(m, d), repr, d, plan.Hops(repr, d), b)
					}
				}
			}
		}
	}
}

// triangleGraph mirrors the bridged-triangle benchmark topology: three
// islands (SCI, SCI, Myrinet) chained by TCP bridges on all three sides.
// Ranks: a0..a2 = 0..2, b0..b2 = 3..5, c0..c2 = 6..8; bridge endpoints
// a2-b1 (gwAB), b2-c1 (gwBC), a1-c0 (gwCA).
func triangleGraph() Graph {
	return Graph{
		N: 9,
		NetsOf: [][]string{
			{"sciA"}, {"sciA", "gwCA"}, {"sciA", "gwAB"},
			{"sciB"}, {"sciB", "gwAB"}, {"sciB", "gwBC"},
			{"myriC", "gwCA"}, {"myriC", "gwBC"}, {"myriC"},
		},
		Nets: map[string]netsim.Params{
			"sciA":  netsim.SCISISCI(),
			"sciB":  netsim.SCISISCI(),
			"myriC": netsim.MyrinetBIP(),
			"gwAB":  netsim.FastEthernetTCP(),
			"gwBC":  netsim.FastEthernetTCP(),
			"gwCA":  netsim.FastEthernetTCP(),
		},
	}
}

// edgeSet collects the (pair, net) edges of a path starting at src.
func edgeSet(src int, hops []Hop) map[edgeKey]bool {
	set := make(map[edgeKey]bool)
	at := src
	for _, h := range hops {
		set[keyOf(at, h.Rank, h.Net)] = true
		at = h.Rank
	}
	return set
}

// TestDisjointPathsTriangle: on the bridged triangle, the multi-path plan
// exposes two edge-disjoint rails between the far corners — the direct
// third-side bridge as the primary and the two-bridge detour through the
// middle island as the second rail.
func TestDisjointPathsTriangle(t *testing.T) {
	plan := ComputeOpts(triangleGraph(), Options{MaxPaths: 2})
	paths, ok := plan.Paths(0, 8)
	if !ok || len(paths) != 2 {
		t.Fatalf("Paths(0,8): ok=%v, %d paths, want 2", ok, len(paths))
	}
	// Primary: a0 -> a1 -> c0 -> c2 over the single gwCA bridge.
	if len(paths[0]) != 3 {
		t.Fatalf("primary path %v, want 3 hops via gwCA", paths[0])
	}
	// Alternate: a0 -> a2 -> b1 -> b2 -> c1 -> c2 over both other bridges.
	if len(paths[1]) != 5 {
		t.Fatalf("alternate path %v, want 5 hops via gwAB+gwBC", paths[1])
	}
	e0, e1 := edgeSet(0, paths[0]), edgeSet(0, paths[1])
	for k := range e0 {
		if e1[k] {
			t.Fatalf("paths share edge %+v", k)
		}
	}
	// Path 0 must be the plain shortest path.
	single, _ := plan.Path(0, 8)
	if !reflect.DeepEqual(single, paths[0]) {
		t.Fatalf("paths[0] = %v, Path = %v", paths[0], single)
	}
	// Both rails end at the destination.
	for i, hops := range paths {
		if hops[len(hops)-1].Rank != 8 {
			t.Fatalf("rail %d ends at %d", i, hops[len(hops)-1].Rank)
		}
	}
}

// TestCongestionRoutesAround: charging the primary rail's gateway with a
// congestion term steers the shortest path onto the other rail, and an
// uncongested re-plan restores it — the adaptive re-routing feedback loop.
func TestCongestionRoutesAround(t *testing.T) {
	g := triangleGraph()
	base := ComputeOpts(g, Options{MaxPaths: 2})
	hops, _ := base.Path(0, 8)
	usesGW := func(hops []Hop, rank int) bool {
		for _, h := range hops[:len(hops)-1] {
			if h.Rank == rank {
				return true
			}
		}
		return false
	}
	if !usesGW(hops, 1) {
		t.Fatalf("baseline path %v should relay through rank 1 (gwCA)", hops)
	}
	// Congest both gwCA endpoints heavily (10 ms each).
	cong := make([]float64, g.N)
	cong[1], cong[6] = 10e-3, 10e-3
	adapted := ComputeOpts(g, Options{MaxPaths: 2, Congestion: cong})
	ahops, _ := adapted.Path(0, 8)
	if usesGW(ahops, 1) || usesGW(ahops, 6) {
		t.Fatalf("adapted path %v still relays through the hot gwCA gateways", ahops)
	}
	if c, _ := adapted.Cost(0, 8); c <= 0 {
		t.Fatalf("adapted cost = %g", c)
	}
	if back := ComputeOpts(g, Options{MaxPaths: 2}); !reflect.DeepEqual(mustPath(t, back, 0, 8), hops) {
		t.Fatal("uncongested re-plan did not restore the primary rail")
	}
}

func mustPath(t *testing.T, p *Plan, s, d int) []Hop {
	t.Helper()
	hops, ok := p.Path(s, d)
	if !ok {
		t.Fatalf("no path %d->%d", s, d)
	}
	return hops
}

// TestPathsDisjointProperty: on random graphs, every pair's path set is
// pairwise edge-disjoint, path 0 equals the single-path answer, every
// path terminates at the destination, and the computation is
// deterministic.
func TestPathsDisjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 40; iter++ {
		n := rng.Intn(7) + 2
		g := randomGraph(rng, n)
		k := rng.Intn(3) + 1
		plan := ComputeOpts(g, Options{MaxPaths: k})
		again := ComputeOpts(g, Options{MaxPaths: k})
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				paths, ok := plan.Paths(s, d)
				paths2, ok2 := again.Paths(s, d)
				if ok != ok2 || !reflect.DeepEqual(paths, paths2) {
					t.Fatalf("iter %d: Paths(%d,%d) nondeterministic", iter, s, d)
				}
				if !ok {
					continue
				}
				if len(paths) == 0 || len(paths) > k {
					t.Fatalf("iter %d: %d paths for k=%d", iter, len(paths), k)
				}
				single, _ := plan.Path(s, d)
				if !reflect.DeepEqual(single, paths[0]) {
					t.Fatalf("iter %d: paths[0] != Path(%d,%d)", iter, s, d)
				}
				seen := make(map[edgeKey]bool)
				for pi, hops := range paths {
					if hops[len(hops)-1].Rank != d {
						t.Fatalf("iter %d: path %d of (%d,%d) ends at %d", iter, pi, s, d, hops[len(hops)-1].Rank)
					}
					for k2 := range edgeSet(s, hops) {
						if seen[k2] {
							t.Fatalf("iter %d: pair (%d,%d) reuses edge %+v", iter, s, d, k2)
						}
						seen[k2] = true
					}
				}
			}
		}
	}
}

// TestPathSegmentBottleneck: the relay segment of a multi-hop path is the
// smallest PipelineSegment along it, and direct pairs get none.
func TestPathSegmentBottleneck(t *testing.T) {
	sci, tcp, bip := netsim.SCISISCI(), netsim.FastEthernetTCP(), netsim.MyrinetBIP()
	g := Graph{
		N: 4,
		NetsOf: [][]string{
			{"sci"}, {"sci", "tcp"}, {"tcp", "myri"}, {"myri"},
		},
		Nets: map[string]netsim.Params{"sci": sci, "tcp": tcp, "myri": bip},
	}
	plan := Compute(g, DefaultRefBytes)
	if got := plan.Hops(0, 3); got != 3 {
		t.Fatalf("hops(0,3) = %d, want 3", got)
	}
	want := sci.PipelineSegment()
	if s := tcp.PipelineSegment(); s < want {
		want = s
	}
	if s := bip.PipelineSegment(); s < want {
		want = s
	}
	if got := plan.PathSegment(0, 3); got != want {
		t.Fatalf("PathSegment(0,3) = %d, want bottleneck %d", got, want)
	}
	if got := plan.PathSegment(0, 1); got != 0 {
		t.Fatalf("direct pair segment = %d, want 0", got)
	}
	// Gateways 1 and 2 each relay for the chain's separated pairs.
	load := plan.RelayLoad()
	if load[1] == 0 || load[2] == 0 || load[0] != 0 || load[3] != 0 {
		t.Fatalf("relay load = %v", load)
	}
}
