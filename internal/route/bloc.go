package route

import (
	"sort"
	"strings"
)

// This file is the hierarchical half of the planner: the bloc partition
// (ranks grouped by identical network signature) and the quotient-graph
// Dijkstra that answers congestion-free queries with one tree per source
// *bloc* instead of one per source rank.
//
// Why the quotient is exact, not an approximation:
//
//   - Distances out of a bloc are the same for every member. Swapping two
//     co-members is a graph automorphism (identical signatures mean
//     identical adjacency and edge costs), and a path that detours
//     through a co-member of its source always costs strictly more than
//     leaving the source directly (every edge the co-member can use, the
//     source can use at the same cost, and the detour hop itself is
//     strictly positive). So co-members are never interior hops and never
//     predecessors, and the rank-level problem collapses onto blocs.
//   - Cost sums are bit-identical to the dense planner's, not just
//     mathematically equal: both fold the same float64 edge costs
//     left-to-right along the same bloc sequence.
//   - The dense planner's deterministic tie-breaks survive the quotient.
//     In the dense Dijkstra the final predecessor of v is the
//     lowest-ranked u with dist(u)+cost(u,v) == dist(v) (every such u
//     pops strictly before v, and the overwrite rule keeps the lowest),
//     and all members of a qualifying bloc qualify together — so the
//     dense choice is exactly "the representative (lowest member) of the
//     qualifying bloc with the lowest representative", which is what
//     prevNR tracks. The one per-source asymmetry is the source itself:
//     its direct edges belong to it alone (co-members do not inherit
//     them), so the tree records *whether* the source-bloc direct edge
//     attains the distance (rootQ) and the per-source resolution in
//     hierStep compares the querying source's rank against the best
//     non-root bloc's representative.

// buildBlocs partitions the ranks into blocs — maximal groups with
// identical sorted network signatures — and indexes bloc adjacency per
// network. Bloc ids ascend with their lowest member, so id order is
// representative-rank order.
func (p *Plan) buildBlocs(g Graph) {
	p.blocOf = make([]int, p.n)
	index := make(map[string]int, p.n)
	for r := 0; r < p.n; r++ {
		sig := make([]string, 0, len(p.attached[r]))
		for nm := range p.attached[r] {
			sig = append(sig, nm)
		}
		sort.Strings(sig)
		key := strings.Join(sig, "\x1f")
		id, ok := index[key]
		if !ok {
			id = len(p.blocs)
			index[key] = id
			p.blocs = append(p.blocs, bloc{sig: sig})
		}
		p.blocOf[r] = id
		p.blocs[id].members = append(p.blocs[id].members, r)
	}
	p.netBlocsByID = make([][]int, len(p.netNames))
	p.blocSigIDs = make([][]int, len(p.blocs))
	for id := range p.blocs {
		ids := make([]int, len(p.blocs[id].sig))
		for i, nm := range p.blocs[id].sig {
			ni := p.netIdx[nm]
			ids[i] = ni
			p.netBlocsByID[ni] = append(p.netBlocsByID[ni], id)
		}
		p.blocSigIDs[id] = ids
	}
}

// BlocCount returns the number of blocs (distinct network signatures) in
// the plan — the size of the quotient graph the hierarchical resolver
// routes over.
func (p *Plan) BlocCount() int { return len(p.blocs) }

// BlocOf returns the bloc id of a rank. Two ranks share a bloc exactly
// when they are attached to the same set of networks; on a
// congestion-free plan, such ranks have identical costs and hop counts
// to (and from) every rank outside the bloc, which is what lets
// bloc-aggregated consumers (leader election, the autotuner's
// representative sampling) query one member per bloc.
func (p *Plan) BlocOf(rank int) int { return p.blocOf[rank] }

// BlocMembers returns the ascending member ranks of a bloc. The returned
// slice is the plan's own and must not be modified.
func (p *Plan) BlocMembers(b int) []int { return p.blocs[b].members }

// rep returns the bloc's representative: its lowest member, the rank the
// deterministic tie-breaks elect whenever the bloc relays.
func (p *Plan) rep(b int) int { return p.blocs[b].members[0] }

// quotientTree is one source bloc's shortest-cost tree over the quotient
// graph, shared by every member of that bloc.
type quotientTree struct {
	dist []float64
	// prevNR is the qualifying predecessor bloc with the lowest
	// representative, excluding the source bloc: -1 when only the source's
	// own direct edge attains the distance, unreached when the bloc is
	// unreachable (and, for the source bloc itself, the root marker).
	prevNR []int
	// rootQ records whether the direct edge from the source bloc attains
	// dist — the per-source half of the tie-break, resolved in hierStep.
	rootQ []bool
	// srcFree is set when no bloc's predecessor resolution depends on the
	// querying source (no bloc has both a qualifying root edge and a
	// qualifying non-root bloc — the overwhelmingly common case). Then
	// hops holds each bloc's precomputed path length and hierHops is O(1);
	// otherwise hop counts are resolved by walking the chain per source.
	srcFree bool
	hops    []int
}

// heapItem is a lazy-deletion priority queue entry: pop order is
// (dist, tie) where tie is the node's rank (rank trees) or its bloc's
// representative rank (quotient trees).
type heapItem struct {
	dist float64
	tie  int
	node int
}

// distHeap is a hand-rolled binary min-heap over heapItem. container/heap
// would box every push through interface{} — one allocation per
// relaxation — which is exactly the per-event garbage this refactor is
// removing from the planner's hot path.
type distHeap struct{ it []heapItem }

func (h *heapItem) less(o *heapItem) bool {
	if h.dist != o.dist {
		return h.dist < o.dist
	}
	return h.tie < o.tie
}

func (h *distHeap) empty() bool { return len(h.it) == 0 }

func (h *distHeap) push(x heapItem) {
	h.it = append(h.it, x)
	i := len(h.it) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.it[i].less(&h.it[parent]) {
			break
		}
		h.it[i], h.it[parent] = h.it[parent], h.it[i]
		i = parent
	}
}

func (h *distHeap) pop() heapItem {
	top := h.it[0]
	last := len(h.it) - 1
	h.it[0] = h.it[last]
	h.it = h.it[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.it) {
			break
		}
		c := l
		if r < len(h.it) && h.it[r].less(&h.it[l]) {
			c = r
		}
		if !h.it[c].less(&h.it[i]) {
			break
		}
		h.it[i], h.it[c] = h.it[c], h.it[i]
		i = c
	}
	return top
}

// quotientFor returns the (lazily built, cached) quotient tree rooted at
// bloc b0. O(Q log Q) in the quotient size Q, independent of how many
// ranks each bloc holds: per-net live lists are compacted as blocs
// settle, so a net shared by many blocs (the backbone) is not rescanned
// past its settled members.
func (p *Plan) quotientFor(b0 int) *quotientTree {
	if t, ok := p.qts[b0]; ok {
		return t
	}
	nb := len(p.blocs)
	t := &quotientTree{
		dist:   make([]float64, nb),
		prevNR: make([]int, nb),
		rootQ:  make([]bool, nb),
	}
	done := make([]bool, nb)
	for i := range t.prevNR {
		t.prevNR[i] = unreached
		t.dist[i] = -1
	}
	t.dist[b0], t.prevNR[b0] = 0, -1
	live := make([][]int, len(p.netNames)) // copied from netBlocsByID on first touch
	order := make([]int, 0, nb)            // finalization order, for the hops post-pass
	var h distHeap
	h.push(heapItem{dist: 0, tie: p.rep(b0), node: b0})
	for !h.empty() {
		it := h.pop()
		cur := it.node
		if done[cur] || it.dist > t.dist[cur] {
			continue
		}
		done[cur] = true
		order = append(order, cur)
		for _, ni := range p.blocSigIDs[cur] {
			c := p.netCostByID[ni]
			lb := live[ni]
			if lb == nil {
				lb = append([]int(nil), p.netBlocsByID[ni]...)
			}
			w := 0
			for _, b := range lb {
				if done[b] {
					continue // settled (including cur itself): drop from the live list
				}
				lb[w] = b
				w++
				nd := t.dist[cur] + c
				switch {
				case t.prevNR[b] == unreached || nd < t.dist[b]:
					t.dist[b] = nd
					if cur == b0 {
						t.prevNR[b], t.rootQ[b] = -1, true
					} else {
						t.prevNR[b], t.rootQ[b] = cur, false
					}
					h.push(heapItem{dist: nd, tie: p.rep(b), node: b})
				case nd == t.dist[b]:
					if cur == b0 {
						t.rootQ[b] = true
					} else if t.prevNR[b] == -1 || p.rep(cur) < p.rep(t.prevNR[b]) {
						t.prevNR[b] = cur
					}
				}
			}
			live[ni] = lb[:w]
		}
	}
	t.srcFree = true
	for _, b := range order {
		if b != b0 && t.rootQ[b] && t.prevNR[b] != -1 {
			t.srcFree = false
			break
		}
	}
	if t.srcFree {
		t.hops = make([]int, nb)
		for _, b := range order {
			if b == b0 {
				continue
			}
			if t.prevNR[b] == -1 {
				t.hops[b] = 1 // direct from the source
			} else {
				t.hops[b] = t.hops[t.prevNR[b]] + 1 // predecessor finalized earlier
			}
		}
	}
	p.qts[b0] = t
	return t
}

// hierStep resolves one step of the predecessor chain for the query
// source src: the dense tie-break picks the lowest qualifying rank, which
// is src itself when the source-bloc direct edge qualifies and src
// undercuts the best non-root bloc's representative.
func (p *Plan) hierStep(t *quotientTree, src, b int) (prevBloc int, isRoot bool) {
	if t.rootQ[b] && (t.prevNR[b] == -1 || src < p.rep(t.prevNR[b])) {
		return -1, true
	}
	return t.prevNR[b], false
}

// hierPath reconstructs the rank-level src->dst path from the bloc chain:
// the representative of each interior bloc relays, and each hop rides the
// cheapest (then lexicographically first) network the two endpoints
// share — exactly the dense planner's prev/prevNet choices.
func (p *Plan) hierPath(src, dst int) ([]Hop, bool) {
	bs, bd := p.blocOf[src], p.blocOf[dst]
	if bs == bd {
		nm, _, ok := p.cheapestEdge(src, dst, nil)
		if !ok {
			return nil, false
		}
		return []Hop{{Rank: dst, Net: nm}}, true
	}
	t := p.quotientFor(bs)
	if t.prevNR[bd] == unreached {
		return nil, false
	}
	rev := []int{dst}
	for b := bd; ; {
		pb, isRoot := p.hierStep(t, src, b)
		if isRoot {
			break
		}
		rev = append(rev, p.rep(pb))
		b = pb
	}
	hops := make([]Hop, len(rev))
	at := src
	for i := len(rev) - 1; i >= 0; i-- {
		r := rev[i]
		nm, _, _ := p.cheapestEdge(at, r, nil)
		hops[len(rev)-1-i] = Hop{Rank: r, Net: nm}
		at = r
	}
	return hops, true
}

// hierHops counts the src->dst path length without materializing it —
// leader election sums hop counts over whole blocs, so this is O(path)
// with no allocation.
func (p *Plan) hierHops(src, dst int) (int, bool) {
	bs, bd := p.blocOf[src], p.blocOf[dst]
	if bs == bd {
		if _, _, ok := p.cheapestEdge(src, dst, nil); !ok {
			return 0, false
		}
		return 1, true
	}
	t := p.quotientFor(bs)
	if t.prevNR[bd] == unreached {
		return 0, false
	}
	if t.srcFree {
		return t.hops[bd], true
	}
	n := 0
	for b := bd; ; {
		pb, isRoot := p.hierStep(t, src, b)
		n++
		if isRoot {
			break
		}
		b = pb
	}
	return n, true
}
