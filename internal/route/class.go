package route

import "mpichmad/internal/netsim"

// DeviceClass is the transport tier of one edge (or path) in the per-link
// device mux: the paper's point is that a single MPI session drives a
// *different* device per link — ch_self within a process, smp_plug within
// a node, the SAN driver (SISCI, BIP) within a cluster, TCP between
// clusters — so topology discovery classifies every edge and the routing,
// tuning and hierarchy layers reason per class instead of assuming one
// uniform transport.
type DeviceClass int

const (
	// ClassSelf is the chself-class intra-process loopback tier.
	ClassSelf DeviceClass = iota
	// ClassSMP is the smp-class intra-node shared-memory tier.
	ClassSMP
	// ClassSAN is the system-area-network tier carrying intra-cluster
	// traffic (SISCI/SCI, BIP/Myrinet, and any other non-TCP fabric).
	ClassSAN
	// ClassWAN is the TCP-class commodity tier carrying inter-cluster
	// (backbone, gateway) traffic.
	ClassWAN

	numDeviceClasses
)

// deviceClassNames indexes DeviceClass; the strings are the stable
// identifiers used in tune tables and core.Route.Class tags.
var deviceClassNames = [numDeviceClasses]string{"self", "smp", "san", "wan"}

// String returns the class's stable name ("self", "smp", "san", "wan").
func (c DeviceClass) String() string {
	if c < 0 || c >= numDeviceClasses {
		return "unknown"
	}
	return deviceClassNames[c]
}

// DeviceClassNames lists every class name in tier order (self, smp, san,
// wan) — the canonical encoding order for per-class tuning tables.
func DeviceClassNames() []string {
	out := make([]string, numDeviceClasses)
	copy(out, deviceClassNames[:])
	return out
}

// ClassByName inverts String; ok=false for an unknown name.
func ClassByName(name string) (DeviceClass, bool) {
	for i, n := range deviceClassNames {
		if n == name {
			return DeviceClass(i), true
		}
	}
	return 0, false
}

// ClassOf maps a calibrated cost model to its device class by protocol:
// "self" and "shm" name the loopback and shared-memory tiers, "tcp" is
// the commodity inter-cluster tier, and everything else (sisci, bip,
// custom SAN params) is the system-area tier.
func ClassOf(p netsim.Params) DeviceClass {
	switch p.Protocol {
	case "self":
		return ClassSelf
	case "shm":
		return ClassSMP
	case "tcp":
		return ClassWAN
	}
	return ClassSAN
}

// PathClassOf returns the dominating (slowest-tier) device class along a
// path: a path with any TCP-class hop is TCP-class end to end, otherwise
// any SAN-class hop makes it SAN-class, and so on. ClassSelf for an empty
// (self) path.
func (p *Plan) PathClassOf(hops []Hop) DeviceClass {
	worst := ClassSelf
	for _, h := range hops {
		if c := ClassOf(p.nets[h.Net]); c > worst {
			worst = c
		}
	}
	return worst
}

// PathSwitchOf returns the smallest native eager->rendez-vous switch
// point along a path — the largest payload that can ride the eager path
// on *every* hop. Hops whose params leave SwitchPoint zero (no threshold)
// don't constrain it; 0 when no hop has one.
func (p *Plan) PathSwitchOf(hops []Hop) int {
	sw := 0
	for _, h := range hops {
		if s := p.nets[h.Net].SwitchPoint; s > 0 && (sw == 0 || s < sw) {
			sw = s
		}
	}
	return sw
}
