package route

import (
	"fmt"
	"testing"

	"mpichmad/internal/netsim"
)

// scaleGraph builds the scale-experiment shape: nClusters SCI clusters of
// perCluster ranks, one gateway per cluster (the cluster's first rank) on
// a single trunk-capped TCP backbone.
func scaleGraph(nClusters, perCluster int) Graph {
	g := Graph{Nets: make(map[string]netsim.Params)}
	bb := netsim.FastEthernetTCP()
	bb.NetworkBandwidth = bb.Bandwidth
	g.Nets["bb"] = bb
	for c := 0; c < nClusters; c++ {
		fabric := fmt.Sprintf("cl%03d", c)
		g.Nets[fabric] = netsim.SCISISCI()
		for m := 0; m < perCluster; m++ {
			nets := []string{fabric}
			if m == 0 {
				nets = append(nets, "bb")
			}
			g.NetsOf = append(g.NetsOf, nets)
			g.N++
		}
	}
	return g
}

// planWorkload exercises the resolution pattern a scale session drives:
// leader-election style queries from every bloc representative to every
// other bloc (builds all quotient trees), route installation for every
// member toward its cluster leader, and hop/cost queries over all leader
// pairs (the inter-cluster recalibration scan).
func planWorkload(b *testing.B, plan *Plan, nClusters, perCluster int) {
	for bl := 0; bl < plan.BlocCount(); bl++ {
		r := plan.BlocMembers(bl)[0]
		for ob := 0; ob < plan.BlocCount(); ob++ {
			if ob == bl {
				continue
			}
			o := plan.BlocMembers(ob)[0]
			if _, ok := plan.Cost(r, o); !ok {
				b.Fatalf("unroutable bloc pair %d->%d", bl, ob)
			}
			if plan.Hops(r, o) < 0 {
				b.Fatalf("no hops for bloc pair %d->%d", bl, ob)
			}
		}
	}
	for c := 0; c < nClusters; c++ {
		leader := c * perCluster
		for m := 1; m < perCluster; m++ {
			if _, _, ok := plan.NextHop(leader+m, leader); !ok {
				b.Fatalf("member %d cannot reach leader %d", leader+m, leader)
			}
		}
	}
	for a := 0; a < nClusters; a++ {
		for o := 0; o < nClusters; o++ {
			if a == o {
				continue
			}
			if _, ok := plan.Cost(a*perCluster, o*perCluster); !ok {
				b.Fatalf("unroutable leader pair %d->%d", a, o)
			}
		}
	}
}

// BenchmarkComputeOpts measures lazy plan construction plus the full
// session-style resolution workload at growing rank counts — the series
// the scale benchcheck gate bounds sub-quadratic.
func BenchmarkComputeOpts(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		nClusters := n / 16
		g := scaleGraph(nClusters, 16)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan := ComputeOpts(g, Options{})
				planWorkload(b, plan, nClusters, 16)
			}
		})
	}
}

// BenchmarkComputeEager measures the retained dense all-pairs reference —
// the planner this PR replaced — on the same shapes, for the before/after
// record. (1024 ranks is omitted: the eager planner needs tens of seconds
// per iteration there, which is the point of the refactor.)
func BenchmarkComputeEager(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := scaleGraph(n/16, 16)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				computeDense(g, Options{})
			}
		})
	}
}
