package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single package and
// returns raw diagnostics; the driver attaches the analyzer name, filters
// suppressed findings and sorts.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Prog *Program
	Pkg  *Package
	Fset *token.FileSet
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: [analyzer] message form.
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PktSwitch, VtimeCtx}
}

// Run applies the analyzers to every package of prog, honoring
// //madlint:ignore directives, and returns the surviving diagnostics
// sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		ign := ignoreIndex(prog.Fset, pkg)
		for _, a := range analyzers {
			pass := &Pass{Prog: prog, Pkg: pkg, Fset: prog.Fset}
			for _, d := range a.Run(pass) {
				d.Analyzer = a.Name
				if !ign.suppressed(prog.Fset, d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ignores maps "file:line" to the analyzer names suppressed there. A
// directive comment
//
//	//madlint:ignore <analyzer> [reason]
//
// suppresses findings of that analyzer on its own line and on the line
// directly below (so it can sit above the offending statement).
type ignores map[string]map[string]bool

func ignoreIndex(fset *token.FileSet, pkg *Package) ignores {
	idx := make(ignores)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//madlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if idx[key] == nil {
						idx[key] = make(map[string]bool)
					}
					idx[key][fields[0]] = true
				}
			}
		}
	}
	return idx
}

func (idx ignores) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	return idx[key][d.Analyzer]
}

// markedSimulation reports whether the file carries a
// //madlint:simulation directive, opting it into the determinism rules
// regardless of its import path. Fixture and out-of-tree simulation code
// use it.
func markedSimulation(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == "//madlint:simulation" {
				return true
			}
		}
	}
	return false
}
