package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// load loads fixture packages relative to this package's directory.
func load(t *testing.T, patterns ...string) *Program {
	t.Helper()
	prog, err := Load("", patterns)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	return prog
}

// render flattens diagnostics to "file:line [analyzer] message" with the
// directory stripped, for substring assertions.
func render(prog *Program, diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		out = append(out, strings.Join([]string{
			filepath.Base(pos.Filename), "[" + d.Analyzer + "]", d.Message}, " "))
	}
	return out
}

func countContaining(lines []string, substr string) int {
	n := 0
	for _, l := range lines {
		if strings.Contains(l, substr) {
			n++
		}
	}
	return n
}

func TestDeterminismFixture(t *testing.T) {
	prog := load(t, "./testdata/determinism")
	lines := render(prog, Run(prog, []*Analyzer{Determinism}))

	for _, want := range []string{
		"time.Now reads the wall clock",
		"time.Sleep reads the wall clock",
		"global math/rand.Intn",
		"raw go statement",
		"sync.Mutex bypasses the vtime scheduler",
		"native channel",
	} {
		if countContaining(lines, want) == 0 {
			t.Errorf("missing expected finding %q in:\n%s", want, strings.Join(lines, "\n"))
		}
	}

	// Collect is flagged, CollectSorted's append-then-sort is not.
	if n := countContaining(lines, "collects map elements in randomized order"); n != 1 {
		t.Errorf("map-collect findings = %d, want 1 (Collect yes, CollectSorted no):\n%s",
			n, strings.Join(lines, "\n"))
	}

	// The //madlint:ignore directive suppresses the violation in ignored.go.
	if n := countContaining(lines, "ignored.go"); n != 0 {
		t.Errorf("suppressed finding leaked from ignored.go:\n%s", strings.Join(lines, "\n"))
	}

	// Trace-sink exemption (tracesink.go): ring.Push calls inside map
	// ranges resolve to internal/trace and are permitted; the same-named
	// local q.Push is the only Push flagged.
	if n := countContaining(lines, "Push called while ranging"); n != 1 {
		t.Errorf("Push-in-range findings = %d, want 1 (q.Push yes, ring.Push exempt):\n%s",
			n, strings.Join(lines, "\n"))
	}
	// ...and the exemption does not blunt the wall-clock rule next to the
	// exempt sink calls.
	if n := countContaining(lines, "tracesink.go [determinism] time.Now"); n != 1 {
		t.Errorf("time.Now in tracesink.go findings = %d, want 1:\n%s",
			n, strings.Join(lines, "\n"))
	}
}

// TestTraceScopeStillLinted pins the exemption's boundary: internal/trace
// is itself simulation scope (its own code is held to every determinism
// rule), while the risky-in-range exemption applies only to calls INTO it.
func TestTraceScopeStillLinted(t *testing.T) {
	if !inSimScope(tracePath) {
		t.Fatalf("inSimScope(%q) = false: the trace package escaped the determinism rules", tracePath)
	}
}

func TestDeterminismScopeRequiresMarker(t *testing.T) {
	// The pktswitch fixture has no //madlint:simulation marker and is
	// outside the simulation import paths, so the determinism analyzer
	// must not touch it.
	prog := load(t, "./testdata/pktswitch")
	if diags := Run(prog, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fired outside its scope: %v", render(prog, diags))
	}
}

func TestPktSwitchFixture(t *testing.T) {
	prog := load(t, "./testdata/pktswitch")
	lines := render(prog, Run(prog, []*Analyzer{PktSwitch}))
	if len(lines) != 1 {
		t.Fatalf("findings = %d, want exactly 1 (Dispatch):\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "does not handle kTerm") {
		t.Errorf("finding should name the missing constant kTerm: %s", lines[0])
	}
}

func TestVtimeCtxFixture(t *testing.T) {
	prog := load(t, "./testdata/vtimectx")
	lines := render(prog, Run(prog, []*Analyzer{VtimeCtx}))
	if len(lines) != 3 {
		t.Fatalf("findings = %d, want 3 (ArmTimer, Subscribe, Hook; ArmSafe clean):\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	for _, want := range []string{
		"timer callback (Scheduler.After)",
		"fire subscriber (Event.OnFire)",
		"delivery hook (Endpoint.OnDeliver)",
		"Queue.Pop",
		"Event.Wait",
		"Scheduler.Sleep",
	} {
		if countContaining(lines, want) == 0 {
			t.Errorf("missing expected finding %q in:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

// TestRepositoryIsClean is the gate that keeps the codebase lint-green:
// the full analyzer suite over every package must report nothing. If this
// fails, fix the code or justify an inline //madlint:ignore.
func TestRepositoryIsClean(t *testing.T) {
	prog, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags := Run(prog, All())
	for _, l := range render(prog, diags) {
		t.Errorf("unexpected finding: %s", l)
	}
}
