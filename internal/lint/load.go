// Package lint is madlint's engine: a stdlib-only loader plus the three
// analyzers (determinism, pktswitch, vtimectx) that machine-check the
// simulator's coding rules. The toolchain's go/analysis framework lives in
// an external module this repository deliberately does not depend on, so
// the package reimplements the small slice it needs: load packages with
// full type information, walk their syntax, report positioned diagnostics,
// honor //madlint:ignore suppressions.
//
// Loading strategy: `go list -export -deps -json` compiles the requested
// packages and hands back export data for every dependency. The root
// packages (the ones being linted) are re-parsed and type-checked from
// source so the analyzers get syntax trees wired to types.Info; their
// imports resolve through the compiler's export data, which keeps the
// loader fast and works without network access or external modules.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one root package under analysis: syntax plus type information.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded set of root packages sharing one FileSet. The
// vtimectx analyzer builds its whole-program call graph lazily and caches
// it here.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	blockers *blockGraph // lazily built by vtimectx
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load compiles and loads the packages matched by patterns (working
// directory dir; "" for the current one). Only non-test Go files are
// analyzed: test files may use real concurrency to exercise the scheduler
// from outside.
func Load(dir string, patterns []string) (*Program, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var roots []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, lp := range roots {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		prog.Pkgs = append(prog.Pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}
