package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// PktSwitch enforces exhaustive dispatch over the simulator's wire-level
// enumerations: core packet types (PktShort..PktNack), adi control kinds,
// madeleine and chp4 packet kinds, and any other enum-shaped type. A type
// counts as enum-shaped when it is a named type with an integer underlying
// type and at least two package-level constants declared of it. Every
// switch whose tag has such a type must either list every declared
// constant or carry an explicit default arm — a silently ignored packet
// kind is how protocol extensions rot.
var PktSwitch = &Analyzer{
	Name: "pktswitch",
	Doc:  "switches over packet/control-kind enums must cover all constants or have a default",
	Run:  runPktSwitch,
}

// enumInfo is the declared constant set of one enum-shaped type.
type enumInfo struct {
	consts map[string]string // exact constant value -> first declared name
}

func runPktSwitch(pass *Pass) []Diagnostic {
	enums := collectEnums(pass.Pkg.Types)
	if len(enums) == 0 {
		return nil
	}

	var out []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			enum, ok := enums[named.Obj()]
			if !ok {
				return true
			}

			covered := make(map[string]bool)
			verifiable := true
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					return true // explicit default: exhaustive by construction
				}
				for _, e := range cc.List {
					etv := pass.Pkg.Info.Types[e]
					if etv.Value == nil {
						verifiable = false // non-constant case: cannot reason
						continue
					}
					covered[etv.Value.ExactString()] = true
				}
			}
			if !verifiable {
				return true
			}
			var missing []string
			for val, name := range enum.consts {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				out = append(out, Diagnostic{Pos: sw.Pos(), Message: fmt.Sprintf(
					"switch on %s does not handle %s: add the missing cases or an explicit default",
					named.Obj().Name(), strings.Join(missing, ", "))})
			}
			return true
		})
	}
	return out
}

// collectEnums indexes the package's enum-shaped types: named integer
// types with >= 2 package-level constants.
func collectEnums(pkg *types.Package) map[*types.TypeName]*enumInfo {
	enums := make(map[*types.TypeName]*enumInfo)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		if named.Obj().Pkg() != pkg {
			continue
		}
		e := enums[named.Obj()]
		if e == nil {
			e = &enumInfo{consts: make(map[string]string)}
			enums[named.Obj()] = e
		}
		key := c.Val().ExactString()
		if _, dup := e.consts[key]; !dup {
			e.consts[key] = name
		}
	}
	for tn, e := range enums {
		if len(e.consts) < 2 {
			delete(enums, tn)
		}
	}
	return enums
}
