//madlint:simulation

// Package badsim is a madlint self-test fixture. Every construct below
// compiles fine and violates the determinism rules; the analyzer tests
// (and the CI self-test) assert that madlint rejects this package.
package badsim

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Clock leaks the wall clock into simulation state.
func Clock() int64 { return time.Now().UnixNano() }

// Pause blocks the real OS thread instead of virtual time.
func Pause() { time.Sleep(time.Millisecond) }

// Jitter draws from the process-global rand source.
func Jitter() int { return rand.Intn(8) }

// Spawn escapes the scheduler's run token.
func Spawn(done func()) {
	go done()
}

// Guarded smuggles preemptive locking into cooperative code.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Bump increments under the forbidden lock.
func (g *Guarded) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Pipe builds a native channel.
func Pipe() chan int {
	return make(chan int, 1)
}

// Collect gathers map values in randomized order and never sorts them.
func Collect(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// CollectSorted is the legal version of Collect: the append-then-sort
// pattern must NOT be flagged.
func CollectSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
