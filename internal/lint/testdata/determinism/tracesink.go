//madlint:simulation

package badsim

import (
	"time"

	"mpichmad/internal/trace"
)

// Record drains pending events into the flight recorder from a map range.
// Trace sinks are append-only in-memory buffers — order-insensitive — so
// the risky-in-range rule must NOT fire on ring.Push here, even though
// "Push" is on the risky-name list.
func Record(ring *trace.Ring, pending map[int]trace.Event) {
	for _, ev := range pending {
		ring.Push(ev)
	}
}

// intQueue's Push shares a risky name with the exempt trace sink but lives
// in this package: the exemption must key on the callee's package, not the
// method name.
type intQueue interface{ Push(int) }

// RecordAndPush mixes an exempt trace push with a genuinely risky one;
// only q.Push must be flagged.
func RecordAndPush(ring *trace.Ring, pending map[int]trace.Event, q intQueue) {
	for k, ev := range pending {
		ring.Push(ev)
		q.Push(k)
	}
}

// StampTrace proves the exemption does not blunt the wall-clock rule: a
// time.Now next to exempt sink calls is still a violation — internal/trace
// itself is in simulation scope and may never read the wall clock.
func StampTrace(ring *trace.Ring, pending map[int]trace.Event) int64 {
	for _, ev := range pending {
		ring.Push(ev)
	}
	return time.Now().UnixNano()
}
