//madlint:simulation

package badsim

import "time"

// Stamp exercises the suppression directive: the violation below is
// acknowledged, so madlint must stay quiet about this one.
func Stamp() int64 {
	//madlint:ignore determinism fixture for the suppression path
	return time.Now().Unix()
}
