// Package badctx is a madlint self-test fixture for the vtimectx
// analyzer: each registration below installs a scheduler-context callback
// that reaches a vtime-blocking primitive.
package badctx

import (
	"mpichmad/internal/netsim"
	"mpichmad/internal/vtime"
)

// ArmTimer installs a timer callback that parks on Queue.Pop — but timer
// callbacks run on the scheduler itself, where there is no task to park:
// flagged (direct blocking call).
func ArmTimer(s *vtime.Scheduler, q *vtime.Queue[int], sink func(int)) {
	s.After(vtime.Duration(10), func() {
		sink(q.Pop())
	})
}

// drain blocks; Subscribe hands it to OnFire through one call hop:
// flagged (propagated through the call graph).
func drain(ev *vtime.Event) { ev.Wait() }

// Subscribe registers a fire subscriber that blocks transitively.
func Subscribe(ev, other *vtime.Event) {
	other.OnFire(func() { drain(ev) })
}

// Hook wires a delivery hook that sleeps in virtual time: flagged
// (OnDeliver assignment).
func Hook(ep *netsim.Endpoint, s *vtime.Scheduler) {
	ep.OnDeliver = func(_ *netsim.Packet) { s.Sleep(vtime.Duration(5)) }
}

// ArmSafe installs a non-blocking callback: not flagged.
func ArmSafe(s *vtime.Scheduler, ev *vtime.Event) {
	s.After(vtime.Duration(10), ev.Fire)
}
