// Package badswitch is a madlint self-test fixture for the pktswitch
// analyzer: kind is enum-shaped (named integer type, >= 2 package-level
// constants), so every switch over it must cover all constants or carry
// a default.
package badswitch

type kind uint8

const (
	kShort kind = iota + 1
	kRndv
	kTerm
)

// Dispatch forgets kTerm and has no default arm: flagged.
func Dispatch(k kind) int {
	switch k {
	case kShort:
		return 1
	case kRndv:
		return 2
	}
	return 0
}

// DispatchDefault is exhaustive by construction: not flagged.
func DispatchDefault(k kind) int {
	switch k {
	case kShort:
		return 1
	default:
		return 0
	}
}

// DispatchFull covers every constant: not flagged.
func DispatchFull(k kind) int {
	switch k {
	case kShort, kRndv:
		return 1
	case kTerm:
		return 2
	}
	return 0
}
